// Package repro is a Go implementation of exchange-repair (XR-Certain)
// query answering in data exchange, reproducing ten Cate, Halpert, Kolaitis:
// "Practical Query Answering in Data Exchange Under Inconsistency-Tolerant
// Semantics" (EDBT 2016).
//
// A schema mapping M = (S, T, Σst, Σt) specifies how source data populates
// a target schema under target constraints. When a source instance admits
// no solution, the usual certain answers trivialize; XR-Certain semantics
// instead intersects the answers over all solutions of all *source repairs*
// (maximal sub-instances that admit a solution).
//
// The package exposes three engines:
//
//   - Exchange/Answer — the paper's segmentary approach (Section 6): a
//     tractable query-independent exchange phase (chase, repair envelopes,
//     violation clusters), then one small disjunctive-logic-program per
//     fact signature at query time;
//   - MonolithicAnswers — the paper's baseline (Sections 4–5): one large
//     program per (query, instance);
//   - BruteForceAnswers — exhaustive repair enumeration, exponential, for
//     validation on small instances.
//
// Mappings, instances, and queries are supplied in a textual format; see
// the package examples and internal/parser for the grammar.
package repro

import (
	"fmt"
	"time"

	"repro/internal/chase"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/symtab"
	"repro/internal/xr"
)

// System is a loaded schema mapping together with its symbol tables.
type System struct {
	w *parser.World
}

// Load parses a schema mapping from its textual form:
//
//	source R(attr, ...).          # declare a source relation
//	target T(attr, ...).          # declare a target relation
//	tgd [label:] body -> head.    # atoms joined with &; body over S (or T)
//	egd [label:] body -> x = y.   # body over T
//
// Identifiers in dependencies are variables; constants are quoted or
// numeric; `#` starts a comment.
func Load(mappingText string) (*System, error) {
	w, err := parser.ParseMapping(mappingText)
	if err != nil {
		return nil, err
	}
	return &System{w: w}, nil
}

// Instance is a source instance over a System's source schema.
type Instance struct {
	sys *System
	in  *instance.Instance
}

// ParseFacts loads a fact file ("R('a', 3)." — bare identifiers and numbers
// are constants in fact files).
func (s *System) ParseFacts(text string) (*Instance, error) {
	in, err := parser.ParseFacts(text, s.w)
	if err != nil {
		return nil, err
	}
	return &Instance{sys: s, in: in}, nil
}

// NumFacts returns the number of facts.
func (i *Instance) NumFacts() int { return i.in.Len() }

// Query is a union of conjunctive queries over the target schema.
type Query struct {
	sys *System
	q   *logic.UCQ
}

// Name returns the query name.
func (q *Query) Name() string { return q.q.Name }

// Arity returns the answer arity.
func (q *Query) Arity() int { return q.q.Arity }

// String renders the query in Datalog style.
func (q *Query) String() string { return q.q.String(q.sys.w.Cat, q.sys.w.U) }

// ParseQueries loads Datalog-style queries ("q(x) :- T(x, y), U(y)."),
// one UCQ per distinct name.
func (s *System) ParseQueries(text string) ([]*Query, error) {
	qs, err := parser.ParseQueries(text, s.w)
	if err != nil {
		return nil, err
	}
	out := make([]*Query, len(qs))
	for i, q := range qs {
		out[i] = &Query{sys: s, q: q}
	}
	return out, nil
}

// HasSolution reports whether the instance admits a solution w.r.t. the
// mapping (if not, plain certain answers trivialize and XR-Certain
// semantics is called for).
func (s *System) HasSolution(i *Instance) bool {
	return chase.HasSolution(s.w.M, i.in)
}

// Answers is a set of answer tuples, rendered as strings.
//
// Answers is part of the JSON wire format served by cmd/xrserved: the
// snake_case field names are a compatibility contract (see DESIGN.md §14),
// and durations travel as integer nanoseconds. Tuples and Unknown are
// always non-nil so they marshal as [] rather than null.
type Answers struct {
	Tuples [][]string `json:"tuples"`
	// Unknown lists the tuples left undecided when signatures were skipped
	// under WithPartialResults: each may or may not be an XR-Certain
	// answer. The true answer set lies between Tuples and Tuples ∪ Unknown.
	// Empty unless the query degraded.
	Unknown [][]string `json:"unknown"`
	// Degraded describes each signature group that was skipped (budget or
	// timeout exhausted after retry, or a contained panic), in canonical
	// signature-key order. Empty on a complete run.
	Degraded []SignatureError `json:"degraded,omitempty"`
	// Explanations holds one rendered explanation per candidate tuple, in
	// candidate order, when the query ran with WithExplanations(true)
	// (segmentary engine only). Empty otherwise.
	Explanations []Explanation `json:"explanations,omitempty"`
	// Stats carries per-query measurements (candidates, programs solved,
	// duration); see the xr package for field meanings.
	Candidates     int `json:"candidates"`
	SafeAccepted   int `json:"safe_accepted"`
	SolverAccepted int `json:"solver_accepted"`
	Programs       int `json:"programs"`
	// CacheHits counts the programs served from the exchange's
	// signature-program cache (always 0 for the monolithic engine).
	CacheHits int `json:"cache_hits"`
	// DegradedSignatures, UnknownTuples, and Retries summarize graceful
	// degradation: signatures skipped, candidate tuples left undecided,
	// and budget-doubling retry attempts.
	DegradedSignatures int           `json:"degraded_signatures"`
	UnknownTuples      int           `json:"unknown_tuples"`
	Retries            int           `json:"retries"`
	Duration           time.Duration `json:"duration_ns"`
}

// Partial reports whether the answers are a (sound) lower bound rather
// than the exact XR-Certain set.
func (a *Answers) Partial() bool { return len(a.Degraded) > 0 }

func (s *System) answersOf(res *xr.Result) *Answers {
	a := &Answers{
		Tuples:             [][]string{},
		Unknown:            [][]string{},
		Degraded:           res.Degraded,
		Candidates:         res.Stats.Candidates,
		SafeAccepted:       res.Stats.SafeAccepted,
		SolverAccepted:     res.Stats.SolverAccepted,
		Programs:           res.Stats.Programs,
		CacheHits:          res.Stats.CacheHits,
		DegradedSignatures: res.Stats.DegradedSignatures,
		UnknownTuples:      res.Stats.UnknownTuples,
		Retries:            res.Stats.Retries,
		Duration:           res.Stats.Duration,
	}
	render := func(t []symtab.Value) []string {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = s.w.U.Name(v)
		}
		return row
	}
	for _, t := range res.Answers.Tuples() {
		a.Tuples = append(a.Tuples, render(t))
	}
	if res.Unknown != nil {
		for _, t := range res.Unknown.Tuples() {
			a.Unknown = append(a.Unknown, render(t))
		}
	}
	return a
}

// Exchange is the reusable result of the segmentary exchange phase for one
// instance: the chased target, the suspect/safe split, and the violation
// clusters. Build it once, answer many queries.
type Exchange struct {
	sys *System
	ex  *xr.Exchange
}

// NewExchange runs the exchange phase (polynomial, query-independent).
// Only exchange-scope options apply: WithMetrics records the phase's
// Table-4 stats and makes the registry the exchange's default for later
// Answer/Possible/Repairs calls, and WithTracer records the exchange-phase
// breakdown. Passing a query-scope option (the exchange phase is
// uninterruptible, so there is nothing for them to do) returns an error
// matching ErrOptionScope.
func (s *System) NewExchange(i *Instance, opts ...Option) (*Exchange, error) {
	o, err := buildOptions("NewExchange", scopeExchange, opts)
	if err != nil {
		return nil, err
	}
	ex, err := xr.NewExchangeOpts(s.w.M, i.in, o)
	if err != nil {
		return nil, err
	}
	return &Exchange{sys: s, ex: ex}, nil
}

// Consistent reports whether the instance has a solution (no violations).
func (e *Exchange) Consistent() bool { return e.ex.Consistent() }

// Violations returns the number of violated ground egds.
func (e *Exchange) Violations() int { return e.ex.Stats.Violations }

// Clusters returns the number of violation clusters.
func (e *Exchange) Clusters() int { return e.ex.Stats.Clusters }

// SuspectFacts returns |I_suspect|, the size of the source repair envelope.
func (e *Exchange) SuspectFacts() int { return e.ex.SuspectSourceFacts() }

// Stats returns the raw exchange statistics.
func (e *Exchange) Stats() xr.ExchangeStats { return e.ex.Stats }

// Profile returns a deterministic snapshot of the exchange's workload
// hardness profiler: per-signature and per-cluster solve accounting
// accumulated across every query since the Exchange was built. Requires
// WithProfiling(true) at NewExchange time; without it the snapshot is
// empty, never nil. Counter aggregates are deterministic at any
// WithParallelism; wall-time histograms are measured and vary run to run.
func (e *Exchange) Profile() *Profile { return e.ex.Profile() }

// MergeProfile folds a previously captured Profile into the exchange's
// profiler (additive) — the restore path for hardness history persisted
// across process restarts. No-op unless the Exchange was built with
// WithProfiling(true).
func (e *Exchange) MergeProfile(p *Profile) { e.ex.MergeProfile(p) }

// ProfilingEnabled reports whether the Exchange was built with
// WithProfiling(true).
func (e *Exchange) ProfilingEnabled() bool { return e.ex.ProfilingEnabled() }

// Answer computes the XR-Certain answers of q (segmentary query phase).
// Query-scope options tune the call: WithContext / WithTimeout for
// cancellation (errors match ErrCanceled / ErrTimeout), WithParallelism to
// solve signature programs concurrently, WithSolverTrace for diagnostics.
// Repeated calls on the same Exchange reuse cached signature programs.
func (e *Exchange) Answer(q *Query, opts ...Option) (*Answers, error) {
	o, err := buildOptions("Answer", scopeQuery, opts)
	if err != nil {
		return nil, err
	}
	res, err := e.ex.AnswerOpts(q.q, o)
	if err != nil {
		return nil, err
	}
	a := e.sys.answersOf(res)
	e.attachExplanations(a, res)
	return a, nil
}

// Possible computes the XR-Possible answers of q: the tuples holding in at
// least one exchange-repair solution (the union dual of XR-Certain). It
// accepts the same (query-scope) options as Answer and shares the same
// program cache.
func (e *Exchange) Possible(q *Query, opts ...Option) (*Answers, error) {
	o, err := buildOptions("Possible", scopeQuery, opts)
	if err != nil {
		return nil, err
	}
	res, err := e.ex.PossibleOpts(q.q, o)
	if err != nil {
		return nil, err
	}
	a := e.sys.answersOf(res)
	e.attachExplanations(a, res)
	return a, nil
}

// Repairs enumerates up to limit source repairs (0 = all) using the
// solver, rendered as fact files. Unlike SourceRepairs it scales past a
// couple of dozen facts: the safe part is shared and only the suspect
// envelope is searched. Query-scope options apply; WithContext /
// WithTimeout bound the enumeration.
func (e *Exchange) Repairs(limit int, opts ...Option) ([]string, error) {
	o, err := buildOptions("Repairs", scopeQuery, opts)
	if err != nil {
		return nil, err
	}
	repairs, err := e.ex.RepairsOpts(limit, o)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(repairs))
	for i, rep := range repairs {
		out[i] = parser.FormatFacts(rep, e.sys.w.Cat, e.sys.w.U)
	}
	return out, nil
}

// MonolithicAnswers computes XR-Certain answers with the monolithic
// pipeline: per query, the mapping is reduced, the instance chased, one
// large disjunctive program built, and cautious reasoning run. WithTimeout
// bounds each query individually; a timed-out query reports an error
// matching ErrTimeout in the per-query error slice while its Answers stay
// a (possibly empty) lower bound. WithParallelism solves queries
// concurrently; WithContext cancels the whole call.
func (s *System) MonolithicAnswers(i *Instance, queries []*Query, opts ...Option) ([]*Answers, []error, error) {
	qs := make([]*logic.UCQ, len(queries))
	for j, q := range queries {
		qs[j] = q.q
	}
	o, err := buildOptions("MonolithicAnswers", scopeQuery, opts)
	if err != nil {
		return nil, nil, err
	}
	results, err := xr.Monolithic(s.w.M, i.in, qs, xr.MonolithicOptions{
		Ctx:         o.Ctx,
		Timeout:     o.Timeout,
		Parallelism: o.Parallelism,
		Trace:       o.Trace,
		Metrics:     o.Metrics,
		Tracer:      o.Tracer,
	})
	if err != nil {
		return nil, nil, err
	}
	out := make([]*Answers, len(results))
	errs := make([]error, len(results))
	for j, r := range results {
		out[j] = s.answersOf(r)
		errs[j] = r.Err
	}
	return out, errs, nil
}

// BruteForceAnswers computes XR-Certain answers by explicit source-repair
// enumeration (exponential; refuses instances over 22 facts). Intended for
// validating the other engines. Query-scope options apply; WithMetrics
// records repair and query counts, the cancellation and budget options
// have nothing to interrupt here.
func (s *System) BruteForceAnswers(i *Instance, queries []*Query, opts ...Option) ([]*Answers, error) {
	qs := make([]*logic.UCQ, len(queries))
	for j, q := range queries {
		qs[j] = q.q
	}
	o, err := buildOptions("BruteForceAnswers", scopeQuery, opts)
	if err != nil {
		return nil, err
	}
	results, err := xr.BruteForceOpts(s.w.M, i.in, qs, o)
	if err != nil {
		return nil, err
	}
	out := make([]*Answers, len(results))
	for j, r := range results {
		out[j] = s.answersOf(r)
	}
	return out, nil
}

// SourceRepairs enumerates the source repairs of a small instance and
// renders each as a fact file (for inspection and teaching).
func (s *System) SourceRepairs(i *Instance) ([]string, error) {
	repairs, err := xr.SourceRepairs(s.w.M, i.in)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(repairs))
	for j, rep := range repairs {
		out[j] = parser.FormatFacts(rep, s.w.Cat, s.w.U)
	}
	return out, nil
}

// MappingStats describes dependency counts.
func (s *System) MappingStats() string {
	return s.w.M.Stats().String()
}

// Materialize computes the core of the canonical universal solution for a
// consistent instance: the preferred target materialization in data
// exchange (Fagin–Kolaitis–Popa), with no redundant labeled nulls. It is
// rendered as a fact file; labeled nulls print as _N1, _N2, ...
//
// For inconsistent instances it returns an error — use NewExchange and the
// XR-Certain machinery instead.
func (s *System) Materialize(i *Instance) (string, error) {
	j, err := chase.Native(s.w.M, i.in)
	if err != nil {
		return "", fmt.Errorf("repro: %w: %v", ErrNoSolution, err)
	}
	target := j.Restrict(s.w.M.Target)
	core := chase.Core(target)
	return parser.FormatFacts(core, s.w.Cat, s.w.U), nil
}
