package repro

import (
	"reflect"
	"testing"
)

// K3 (a triangle, 3-colorable: the query is not certain) with out-degree
// ≥ 1 everywhere, alongside the K4 orientation from options_test.go.
var k3Edges = [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}

// TestWithSolverReuseTricolorEquivalence checks the public WithSolverReuse
// option on the Theorem 3 hardness gadget: the persistent-solver path and
// the fresh-solve path must return identical answers and stats on K3 and
// K4, for certain and possible semantics, cold and warm, at parallelism.
func TestWithSolverReuseTricolorEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		edges   [][2]string
		certain bool
	}{
		{"K3-3-colorable", k3Edges, false},
		{"K4-not-3-colorable", k4Edges, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exReuse, q := tricolorSetup(t, tc.edges)
			exFresh, _ := tricolorSetup(t, tc.edges)
			for pass := 0; pass < 2; pass++ { // second pass: warm cache + warm solver sessions
				for _, par := range []int{1, 4} {
					r, err := exReuse.Answer(q, WithParallelism(par))
					if err != nil {
						t.Fatal(err)
					}
					f, err := exFresh.Answer(q, WithParallelism(par), WithSolverReuse(false))
					if err != nil {
						t.Fatal(err)
					}
					if (len(r.Tuples) == 1) != tc.certain {
						t.Fatalf("reuse certainty = %v, want %v", len(r.Tuples) == 1, tc.certain)
					}
					if !reflect.DeepEqual(r.Tuples, f.Tuples) || !reflect.DeepEqual(r.Unknown, f.Unknown) {
						t.Fatalf("pass %d par %d: answers diverge:\nreuse: %+v\nfresh: %+v", pass, par, r, f)
					}
					rS, fS := *r, *f
					rS.Duration, fS.Duration = 0, 0
					if !reflect.DeepEqual(rS, fS) {
						t.Fatalf("pass %d par %d: stats diverge:\nreuse: %+v\nfresh: %+v", pass, par, rS, fS)
					}

					rp, err := exReuse.Possible(q, WithParallelism(par))
					if err != nil {
						t.Fatal(err)
					}
					fp, err := exFresh.Possible(q, WithParallelism(par), WithSolverReuse(false))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(rp.Tuples, fp.Tuples) {
						t.Fatalf("pass %d par %d: possible answers diverge", pass, par)
					}
					if len(rp.Tuples) != 1 {
						t.Fatalf("query should always be possible, got %d tuples", len(rp.Tuples))
					}
				}
			}
		})
	}
}

// TestWithSolverReuseScope: WithSolverReuse is a query-scoped option and
// must be rejected at exchange construction per the option-scope policy.
func TestWithSolverReuseScope(t *testing.T) {
	sys, err := Load(tricolorGadget)
	if err != nil {
		t.Fatal(err)
	}
	in, err := sys.ParseFacts(tricolorFacts(k3Edges))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewExchange(in, WithSolverReuse(false)); err == nil {
		t.Fatal("NewExchange accepted the query-scoped WithSolverReuse")
	}
}
