// Repair envelopes and violation clusters, following the paper's Examples
// 1–3: how the segmentary approach localizes the coNP-hard work.
//
//   - Example 1: I_suspect is a sound but not always minimal source repair
//     envelope.
//   - Example 2: n independent key violations form n clusters; a query
//     touching one cluster ignores the other 2^(n-1) repair combinations.
//   - Example 3: a target fact can lie in the influences of two distinct
//     clusters, and its signature then spans both.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	example1()
	example2()
	example3()
}

func header(s string) { fmt.Printf("\n===== %s =====\n", s) }

// Example 1: the second egd's Q(b,c) fact is suspect, yet it survives in
// every repair (the ideal envelope is smaller than I_suspect).
func example1() {
	header("Example 1: envelope over-approximation")
	sys, err := repro.Load(`
source P(a, b).
source Q(a, b).
target P1(a, b).
target Q1(a, b).
tgd P(x, y) -> P1(x, y).
tgd Q(x, y) -> Q1(x, y).
egd key:  P1(x, y) & P1(x, y2) -> y = y2.
egd cond: P1(x, y) & P1(x, y2) & Q1(y, y2) -> y = y2.
`)
	if err != nil {
		log.Fatal(err)
	}
	in, _ := sys.ParseFacts(`P(a, b). P(a, c). Q(b, c).`)
	ex, err := sys.NewExchange(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("I_suspect: %d of %d facts (the envelope is sound but not minimal)\n",
		ex.SuspectFacts(), in.NumFacts())
	repairs, _ := sys.SourceRepairs(in)
	fmt.Printf("actual repairs: %d — and Q(b,c) appears in every one:\n", len(repairs))
	for i, r := range repairs {
		fmt.Printf("--- repair %d ---\n%s", i+1, r)
	}
}

// Example 2: n independent violations → n clusters; the query phase solves
// one small program instead of exploring 2^n repairs.
func example2() {
	header("Example 2: independent violation clusters")
	sys, err := repro.Load(`
source P1(a, b).
source P2(a, b).
source P3(a, b).
target Q1(a, b).
target Q2(a, b).
target Q3(a, b).
tgd P1(x, y) -> Q1(x, y).
tgd P2(x, y) -> Q2(x, y).
tgd P3(x, y) -> Q3(x, y).
egd Q1(x, y) & Q1(x, y2) -> y = y2.
egd Q2(x, y) & Q2(x, y2) -> y = y2.
egd Q3(x, y) & Q3(x, y2) -> y = y2.
`)
	if err != nil {
		log.Fatal(err)
	}
	in, _ := sys.ParseFacts(`
P1(a, b). P1(a, c).
P2(a, b). P2(a, c).
P3(a, b). P3(a, c).
`)
	repairs, _ := sys.SourceRepairs(in)
	ex, err := sys.NewExchange(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repairs: %d (= 2^3 combinations), but clusters: %d\n", len(repairs), ex.Clusters())
	qs, _ := sys.ParseQueries(`q(x) :- Q1(x, y).`)
	ans, err := ex.Answer(qs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q(x) :- Q1(x,y): %d certain answer(s) decided by %d small program(s)\n",
		len(ans.Tuples), ans.Programs)
	fmt.Println("(the other clusters' 4 repair combinations were never explored)")
}

// Example 3: TT facts join both key constraints' influences; their
// signature spans two clusters and one combined (still small) program
// decides them.
func example3() {
	header("Example 3: overlapping influences")
	sys, err := repro.Load(`
source P(a, b).
source Q(a, b).
target R(a, b).
target S(a, b).
target TT(a, b, c).
tgd P(x, y) -> R(x, y).
tgd Q(x, y) -> S(x, y).
tgd R(x, y) & S(x, z) -> TT(x, y, z).
egd R(x, y) & R(x, y2) -> y = y2.
egd S(x, y) & S(x, y2) -> y = y2.
`)
	if err != nil {
		log.Fatal(err)
	}
	in, _ := sys.ParseFacts(`P(a, b). P(a, c). Q(a, b). Q(a, c).`)
	ex, err := sys.NewExchange(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d (disjoint source envelopes)\n", ex.Clusters())
	qs, _ := sys.ParseQueries(`
t(x, y, z) :- TT(x, y, z).
r(x) :- R(x, y).
`)
	tAns, err := ex.Answer(qs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t(x,y,z) over TT: %d certain answers via %d program (signature spans both clusters)\n",
		len(tAns.Tuples), tAns.Programs)
	rAns, err := ex.Answer(qs[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("r(x) over R: %d certain answer(s) — R(a,·) survives in every repair\n", len(rAns.Tuples))
}
