// The genome-browser scenario end to end: synthesize a source instance in
// the UCSC/RefSeq/EntrezGene/UniProt shape, run the segmentary exchange
// phase, and answer the paper's Table 3 query suite under XR-Certain
// semantics.
//
// Flags: -transcripts N (default 200), -suspect RATE (default 0.05).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/genome"
	"repro/internal/xr"
)

func main() {
	transcripts := flag.Int("transcripts", 200, "number of transcripts to synthesize")
	suspect := flag.Float64("suspect", 0.05, "fraction of transcripts with conflicting source data")
	flag.Parse()

	w, err := genome.NewWorld()
	if err != nil {
		log.Fatal(err)
	}
	profile := genome.Profile{
		Name:        "demo",
		Transcripts: *transcripts,
		SuspectRate: *suspect,
		Seed:        2016,
	}
	src := genome.Generate(w, profile)
	fmt.Printf("generated %d source facts for %d transcripts (%.0f%% suspect)\n",
		src.Len(), profile.Transcripts, 100*profile.SuspectRate)

	ex, err := xr.NewExchange(w.M, src)
	if err != nil {
		log.Fatal(err)
	}
	st := ex.Stats
	fmt.Printf("exchange phase: %v  (chase %v, envelopes %v)\n", st.Duration, st.ChaseDuration, st.EnvDuration)
	fmt.Printf("  quasi-solution: %d facts;  violations: %d in %d clusters;  I_suspect: %d facts (%.1f%%)\n\n",
		st.TotalFacts, st.Violations, st.Clusters, st.SuspectSource,
		100*float64(st.SuspectSource)/float64(st.SourceFacts))

	queries, err := genome.Queries(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %9s %11s %6s %7s %9s %12s\n",
		"query", "answers", "candidates", "safe", "solver", "programs", "duration")
	for _, q := range queries {
		res, err := ex.Answer(q)
		if err != nil {
			log.Fatalf("query %s: %v", q.Name, err)
		}
		fmt.Printf("%-6s %9d %11d %6d %7d %9d %12v\n",
			q.Name, res.Answers.Len(), res.Stats.Candidates, res.Stats.SafeAccepted,
			res.Stats.SolverAccepted, res.Stats.Programs, res.Stats.Duration)
	}
	fmt.Println("\n(ep1/xr1/xr4 are boolean; xr6 pairs transcripts sharing an isoform cluster,")
	fmt.Println(" whose cluster ids are labeled nulls merged by the Figure 2C egds.)")
}
