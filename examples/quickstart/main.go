// Quickstart: load a schema mapping, detect inconsistency, and compute
// XR-Certain answers with the segmentary engine.
//
// Two curation pipelines disagree about transcript tx1's exon count; the
// target key constraint exposes the conflict, and XR-Certain semantics
// returns exactly the answers every repair agrees on.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

const mapping = `
source Observed(transcript, exons).   # from the sequencing pipeline
source Curated(transcript, exons).    # from the curation team
target Gene(transcript, exons).

tgd obs: Observed(t, e) -> Gene(t, e).
tgd cur: Curated(t, e) -> Gene(t, e).
egd key: Gene(t, e1) & Gene(t, e2) -> e1 = e2.
`

const facts = `
Observed(tx1, 4).   Curated(tx1, 5).   # conflict!
Observed(tx2, 7).   Curated(tx2, 7).   # agreement
Observed(tx3, 2).                      # only one source
`

func main() {
	sys, err := repro.Load(mapping)
	if err != nil {
		log.Fatal(err)
	}
	in, err := sys.ParseFacts(facts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapping: %s\n", sys.MappingStats())
	fmt.Printf("instance: %d facts, has solution: %v\n\n", in.NumFacts(), sys.HasSolution(in))

	// The instance is inconsistent, so plain certain answers would
	// trivialize. Show the source repairs first.
	repairs, err := sys.SourceRepairs(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source repairs (%d):\n", len(repairs))
	for i, r := range repairs {
		fmt.Printf("--- repair %d ---\n%s", i+1, r)
	}

	// XR-Certain answers: the intersection over all repairs' solutions.
	ex, err := sys.NewExchange(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexchange phase: %d violations in %d cluster(s), %d suspect facts\n",
		ex.Violations(), ex.Clusters(), ex.SuspectFacts())

	queries, err := sys.ParseQueries(`
gene(t, e) :- Gene(t, e).
known(t)   :- Gene(t, e).
`)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range queries {
		ans, err := ex.Answer(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — %d certain answer(s):\n", q.String(), len(ans.Tuples))
		for _, row := range ans.Tuples {
			fmt.Printf("  %s(%s)\n", q.Name(), strings.Join(row, ", "))
		}
	}
	// tx1 is disputed: `gene` omits it, but `known(tx1)` still holds —
	// every repair keeps *some* exon count for tx1.
}
