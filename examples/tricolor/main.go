// The Theorem 3 hardness gadget: deciding membership in the intersection
// of all source repairs is coNP-hard, by reduction from 3-colorability.
//
// For a graph G, the instance I_G has no solution regardless of
// colorability (the F'-cycle and transitivity force a reflexive edge,
// violating the egds); G is 3-colorable iff some source repair omits the
// fact F(n,1) — that is, F(n,1) lies in the intersection of all source
// repairs iff G is NOT 3-colorable.
//
// The membership question is phrased as a boolean XR-Certain query over a
// marker relation fed only by F, so the segmentary engine itself decides
// 3-colorability.
//
// One adjustment to the printed gadget: the chain link for edge (x,y) is
// derived from a colour on x only, so a vertex that never occurs as a
// *first* component could stay colourless in a repair without gapping the
// chain, making F(n,1) omittable even for non-3-colourable graphs. We
// therefore orient the edges so that every vertex has out-degree ≥ 1
// (possible whenever each component contains a cycle — and forests are
// trivially 3-colourable anyway), so each vertex gates a chain link and
// must retain a colour in any F-omitting repair.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
)

const gadget = `
source E(x, y, u, v).        # edge (x,y), numbered u -> v
source Cr(x).                # colour candidates
source Cg(x).
source Cb(x).
source F(u, v).              # the cycle-closing fact F(n, 1)
target E1(x, y).
target F1(u, v).
target Fsrc(u, v).           # marker: survives iff F survives
target Cr1(x).
target Cg1(x).
target Cb1(x).

tgd E(x, y, u, v) & Cr(x) -> E1(x, y).
tgd E(x, y, u, v) & Cg(x) -> E1(x, y).
tgd E(x, y, u, v) & Cb(x) -> E1(x, y).
tgd E(x, y, u, v) & Cr(x) -> F1(u, v).
tgd E(x, y, u, v) & Cg(x) -> F1(u, v).
tgd E(x, y, u, v) & Cb(x) -> F1(u, v).
tgd Cr(x) -> Cr1(x).
tgd Cg(x) -> Cg1(x).
tgd Cb(x) -> Cb1(x).
tgd F(u, v) -> F1(u, v).
tgd F(u, v) -> Fsrc(u, v).
tgd trans: F1(u, v) & F1(v, w) -> F1(u, w).

egd E1(x, y) & Cr1(x) & Cr1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cg1(x) & Cg1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cb1(x) & Cb1(y) & F1(u, v) -> u = v.
egd F1(u, u) & F1(v, w) -> v = w.
`

// encode renders the instance I_G for a graph given as edge pairs.
func encode(edges [][2]string) string {
	var b strings.Builder
	vertices := map[string]bool{}
	var order []string
	// Orient greedily so every vertex gains an outgoing edge.
	hasOut := map[string]bool{}
	n := 0
	link := func(x, y string) {
		n++
		hasOut[x] = true
		fmt.Fprintf(&b, "E(%s, %s, n%d, n%d).\n", x, y, n, n+1)
	}
	for _, e := range edges {
		x, y := e[0], e[1]
		if hasOut[x] && !hasOut[y] {
			x, y = y, x
		}
		link(x, y)
		for _, v := range []string{e[0], e[1]} {
			if !vertices[v] {
				vertices[v] = true
				order = append(order, v)
			}
		}
	}
	for _, v := range order {
		if !hasOut[v] {
			panic("tricolor: graph needs an orientation with out-degree ≥ 1 everywhere")
		}
	}
	for _, v := range order {
		fmt.Fprintf(&b, "Cr(%s). Cg(%s). Cb(%s).\n", v, v, v)
	}
	fmt.Fprintf(&b, "F(n%d, n1).\n", n+1)
	return b.String()
}

func decide(name string, edges [][2]string) {
	sys, err := repro.Load(gadget)
	if err != nil {
		log.Fatal(err)
	}
	in, err := sys.ParseFacts(encode(edges))
	if err != nil {
		log.Fatal(err)
	}
	if sys.HasSolution(in) {
		log.Fatalf("%s: gadget instance unexpectedly has a solution", name)
	}
	ex, err := sys.NewExchange(in)
	if err != nil {
		log.Fatal(err)
	}
	q, err := sys.ParseQueries(fmt.Sprintf("inAllRepairs() :- Fsrc(n%d, n1).", len(edges)+1))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ans, err := ex.Answer(q[0])
	if err != nil {
		log.Fatal(err)
	}
	certain := len(ans.Tuples) == 1
	verdict := "3-COLORABLE"
	if certain {
		verdict = "NOT 3-colorable"
	}
	fmt.Printf("%-18s %2d facts, %d violation clusters; F(n%d,1) certain: %-5v → %s  (%v)\n",
		name, in.NumFacts(), ex.Clusters(), len(edges)+1, certain, verdict, time.Since(start).Round(time.Millisecond))
}

func main() {
	fmt.Println("Theorem 3: 3-colorability decided by XR-Certain membership")
	fmt.Println()
	decide("triangle (K3)", [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}})
	decide("complete graph K4", [][2]string{
		{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"},
	})
	decide("5-cycle C5", [][2]string{
		{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}, {"e", "a"},
	})
	decide("K4 minus an edge", [][2]string{
		{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"},
	})
}
