package repro

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The Theorem 3 hardness gadget (see examples/tricolor): G is 3-colorable
// iff the boolean query over Fsrc is NOT XR-Certain.
const tricolorGadget = `
source E(x, y, u, v).
source Cr(x).
source Cg(x).
source Cb(x).
source F(u, v).
target E1(x, y).
target F1(u, v).
target Fsrc(u, v).
target Cr1(x).
target Cg1(x).
target Cb1(x).

tgd E(x, y, u, v) & Cr(x) -> E1(x, y).
tgd E(x, y, u, v) & Cg(x) -> E1(x, y).
tgd E(x, y, u, v) & Cb(x) -> E1(x, y).
tgd E(x, y, u, v) & Cr(x) -> F1(u, v).
tgd E(x, y, u, v) & Cg(x) -> F1(u, v).
tgd E(x, y, u, v) & Cb(x) -> F1(u, v).
tgd Cr(x) -> Cr1(x).
tgd Cg(x) -> Cg1(x).
tgd Cb(x) -> Cb1(x).
tgd F(u, v) -> F1(u, v).
tgd F(u, v) -> Fsrc(u, v).
tgd trans: F1(u, v) & F1(v, w) -> F1(u, w).

egd E1(x, y) & Cr1(x) & Cr1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cg1(x) & Cg1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cb1(x) & Cb1(y) & F1(u, v) -> u = v.
egd F1(u, u) & F1(v, w) -> v = w.
`

// tricolorFacts renders the gadget instance for a graph whose edges are
// already oriented with out-degree ≥ 1 everywhere.
func tricolorFacts(edges [][2]string) string {
	var b strings.Builder
	seen := map[string]bool{}
	var vertices []string
	for i, e := range edges {
		fmt.Fprintf(&b, "E(%s, %s, n%d, n%d).\n", e[0], e[1], i+1, i+2)
		for _, v := range e {
			if !seen[v] {
				seen[v] = true
				vertices = append(vertices, v)
			}
		}
	}
	for _, v := range vertices {
		fmt.Fprintf(&b, "Cr(%s). Cg(%s). Cb(%s).\n", v, v, v)
	}
	fmt.Fprintf(&b, "F(n%d, n1).\n", len(edges)+1)
	return b.String()
}

func tricolorSetup(t *testing.T, edges [][2]string) (*Exchange, *Query) {
	t.Helper()
	sys, err := Load(tricolorGadget)
	if err != nil {
		t.Fatal(err)
	}
	in, err := sys.ParseFacts(tricolorFacts(edges))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sys.ParseQueries(fmt.Sprintf("inAllRepairs() :- Fsrc(n%d, n1).", len(edges)+1))
	if err != nil {
		t.Fatal(err)
	}
	return ex, qs[0]
}

// Each vertex has out-degree ≥ 1 in these orientations.
var (
	// K4 is not 3-colorable: the query is certain.
	k4Edges = [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"d", "a"}, {"b", "d"}, {"c", "d"}}
	// C5 is 3-colorable: the query is not certain.
	c5Edges = [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}, {"e", "a"}}
)

// TestOptionsTricolorParallelEquivalence checks that the public options API
// yields identical answers and stats at any parallelism on the hardness
// gadget, for both decision outcomes.
func TestOptionsTricolorParallelEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		edges   [][2]string
		certain bool
	}{
		{"K4-not-3-colorable", k4Edges, true},
		{"C5-3-colorable", c5Edges, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exSeq, q := tricolorSetup(t, tc.edges)
			exPar, _ := tricolorSetup(t, tc.edges)

			seq, err := exSeq.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			par, err := exPar.Answer(q, WithParallelism(0)) // 0 = GOMAXPROCS
			if err != nil {
				t.Fatal(err)
			}
			if (len(seq.Tuples) == 1) != tc.certain {
				t.Fatalf("certainty = %v, want %v", len(seq.Tuples) == 1, tc.certain)
			}
			if !reflect.DeepEqual(seq.Tuples, par.Tuples) {
				t.Fatalf("tuples diverge: %v vs %v", seq.Tuples, par.Tuples)
			}
			seqStats, parStats := *seq, *par
			seqStats.Duration, parStats.Duration = 0, 0
			if !reflect.DeepEqual(seqStats, parStats) {
				t.Fatalf("stats diverge:\nseq: %+v\npar: %+v", seqStats, parStats)
			}

			// The query is always possible: some repair keeps F.
			poss, err := exPar.Possible(q, WithParallelism(2))
			if err != nil {
				t.Fatal(err)
			}
			if len(poss.Tuples) != 1 {
				t.Fatalf("possible = %v, want the empty tuple", poss.Tuples)
			}
		})
	}
}

// TestOptionsCancellation checks the sentinel errors from every public
// entry point under dead contexts and immediate timeouts.
func TestOptionsCancellation(t *testing.T) {
	sys, in, qs := setup(t)
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ex.Answer(qs[0], WithContext(ctx)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Answer: err = %v, want ErrCanceled", err)
	}
	if _, err := ex.Possible(qs[0], WithContext(ctx), WithParallelism(4)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Possible: err = %v, want ErrCanceled", err)
	}
	if _, err := ex.Repairs(0, WithContext(ctx)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Repairs: err = %v, want ErrCanceled", err)
	}
	if _, err := ex.Answer(qs[0], WithTimeout(time.Nanosecond)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Answer 1ns: err = %v, want ErrTimeout", err)
	}

	answers, errs, err := sys.MonolithicAnswers(in, qs, WithContext(ctx))
	if err != nil {
		t.Fatalf("MonolithicAnswers call error = %v, want nil", err)
	}
	for i := range qs {
		if !errors.Is(errs[i], ErrCanceled) {
			t.Fatalf("monolithic query %d: err = %v, want ErrCanceled", i, errs[i])
		}
		if answers[i] == nil {
			t.Fatalf("monolithic query %d: nil answers", i)
		}
	}

	// The exchange still answers normally afterwards.
	ans, err := ex.Answer(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Tuples) != 1 {
		t.Fatalf("post-cancel answers = %v", ans.Tuples)
	}
}

// TestOptionsSolverTrace checks WithSolverTrace delivery and that a second
// query on the same Exchange reports cache hits through both the stats and
// the trace stream.
func TestOptionsSolverTrace(t *testing.T) {
	sys, in, qs := setup(t)
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}
	var first []TraceEvent
	a1, err := ex.Answer(qs[0], WithSolverTrace(func(ev TraceEvent) { first = append(first, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != a1.Programs || a1.Programs == 0 {
		t.Fatalf("first run: %d events for %d programs", len(first), a1.Programs)
	}
	for _, ev := range first {
		if ev.CacheHit {
			t.Fatalf("first run reported a cache hit: %+v", ev)
		}
		if ev.Engine != "segmentary" || ev.Query != qs[0].Name() {
			t.Fatalf("unexpected event metadata: %+v", ev)
		}
	}
	var second []TraceEvent
	a2, err := ex.Answer(qs[0], WithSolverTrace(func(ev TraceEvent) { second = append(second, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if a2.CacheHits != a2.Programs || a2.CacheHits == 0 {
		t.Fatalf("second run: cache hits %d of %d programs", a2.CacheHits, a2.Programs)
	}
	for _, ev := range second {
		if !ev.CacheHit {
			t.Fatalf("second run missed the cache: %+v", ev)
		}
	}
	if !reflect.DeepEqual(a1.Tuples, a2.Tuples) {
		t.Fatalf("cached answers diverge: %v vs %v", a1.Tuples, a2.Tuples)
	}

	// The monolithic engine traces too, and never hits the exchange cache.
	var mono []TraceEvent
	_, _, err = sys.MonolithicAnswers(in, qs, WithSolverTrace(func(ev TraceEvent) { mono = append(mono, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(mono) == 0 {
		t.Fatal("no monolithic trace events")
	}
	for _, ev := range mono {
		if ev.Engine != "monolithic" || ev.CacheHit {
			t.Fatalf("unexpected monolithic event: %+v", ev)
		}
	}
}

// TestErrTooLarge checks the brute-force engines refuse oversized instances
// with the typed sentinel.
func TestErrTooLarge(t *testing.T) {
	sys, _, qs := setup(t)
	var b strings.Builder
	for i := 0; i < 12; i++ { // 24 source facts > the 22-fact bound
		fmt.Fprintf(&b, "Observed(tx%d, 4). Curated(tx%d, 5).\n", i, i)
	}
	in, err := sys.ParseFacts(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SourceRepairs(in); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("SourceRepairs: err = %v, want ErrTooLarge", err)
	}
	if _, err := sys.BruteForceAnswers(in, qs); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("BruteForceAnswers: err = %v, want ErrTooLarge", err)
	}
}

// TestErrNoSolution checks Materialize reports the typed sentinel on
// inconsistent instances.
func TestErrNoSolution(t *testing.T) {
	sys, in, _ := setup(t)
	if _, err := sys.Materialize(in); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("Materialize: err = %v, want ErrNoSolution", err)
	}
}

// TestMonolithicTimeout checks the options form forwards an unsatisfiable
// deadline as per-query ErrTimeout (the old positional shim's behavior,
// now the only form — MonolithicAnswersTimeout was removed in PR 6).
func TestMonolithicTimeout(t *testing.T) {
	sys, in, qs := setup(t)
	_, tErrs, err := sys.MonolithicAnswers(in, qs, WithTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if !errors.Is(tErrs[i], ErrTimeout) {
			t.Fatalf("query %d: err = %v, want ErrTimeout", i, tErrs[i])
		}
	}
}

// TestOptionScope checks the exchange/query scope split: query-scope
// options are rejected by NewExchange with a typed error, dual-scope
// options are accepted on both sides, and the error names the offending
// option and call.
func TestOptionScope(t *testing.T) {
	sys, in, qs := setup(t)

	// Query-scope option at exchange time: typed rejection, not a no-op.
	_, err := sys.NewExchange(in, WithTimeout(time.Minute))
	if !errors.Is(err, ErrOptionScope) {
		t.Fatalf("NewExchange(WithTimeout): err = %v, want ErrOptionScope", err)
	}
	var se *OptionScopeError
	if !errors.As(err, &se) {
		t.Fatalf("NewExchange(WithTimeout): err = %T, want *OptionScopeError", err)
	}
	if se.Option != "WithTimeout" || se.Call != "NewExchange" || se.Scope != "query" {
		t.Fatalf("OptionScopeError = %+v", se)
	}

	// Every query-scope constructor is rejected at exchange time.
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"WithContext", WithContext(context.Background())},
		{"WithParallelism", WithParallelism(2)},
		{"WithSignatureTimeout", WithSignatureTimeout(time.Second)},
		{"WithSolveBudget", WithSolveBudget(1, 1)},
		{"WithPartialResults", WithPartialResults(true)},
		{"WithSolverTrace", WithSolverTrace(func(TraceEvent) {})},
		{"WithExplanations", WithExplanations(true)},
	} {
		if _, err := sys.NewExchange(in, tc.opt); !errors.Is(err, ErrOptionScope) {
			t.Fatalf("NewExchange(%s): err = %v, want ErrOptionScope", tc.name, err)
		}
	}

	// Dual-scope options are valid on both sides.
	reg := NewMetrics()
	tr := NewTracer()
	ex, err := sys.NewExchange(in, WithMetrics(reg), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ex.Answer(qs[0], WithMetrics(reg), WithTracer(tr), WithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Tuples) == 0 {
		t.Fatal("no answers")
	}

	// The zero Option is a harmless no-op in both scopes.
	if _, err := sys.NewExchange(in, Option{}); err != nil {
		t.Fatalf("NewExchange(zero Option): %v", err)
	}
	if _, err := ex.Answer(qs[0], Option{}); err != nil {
		t.Fatalf("Answer(zero Option): %v", err)
	}
}
