package repro

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xr"
)

var updateGoldenRoot = flag.Bool("update-golden", false, "rewrite golden explanation files")

var triangleEdges = [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}

// TestWhyTricolorWitnessConfirmed: Why on the known non-answer of the
// 3-colorable triangle gadget reports a counterexample exchange-repair, and
// the repair it names is independently confirmed by brute-force repair
// enumeration: the source instance minus the dropped facts is exactly one
// of the instance's source repairs.
func TestWhyTricolorWitnessConfirmed(t *testing.T) {
	sys, err := Load(tricolorGadget)
	if err != nil {
		t.Fatal(err)
	}
	in, err := sys.ParseFacts(tricolorFacts(triangleEdges))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sys.ParseQueries("inAllRepairs() :- Fsrc(n4, n1).")
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]

	// Public surface: the tuple is rejected with a counterexample.
	pe, err := ex.Why(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Verdict != "rejected" {
		t.Fatalf("verdict = %s, want rejected (the triangle is 3-colorable)", pe.Verdict)
	}
	for _, want := range []string{"counterexample repair drops:", "target facts lost:", "support closure:"} {
		if !strings.Contains(pe.Text, want) {
			t.Fatalf("explanation lacks %q:\n%s", want, pe.Text)
		}
	}

	// Engine surface: extract the witness fact IDs and rebuild the repair.
	xe, err := ex.ex.ExplainTuple(q.q, nil, xr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if xe.Witness == nil {
		t.Fatal("rejected explanation carries no witness")
	}
	kept := in.in.Clone()
	for _, f := range xe.Witness.DroppedSource {
		if !kept.RemoveFact(ex.ex.Prov.Fact(f)) {
			t.Fatalf("witness drops %v, which is not a source fact", ex.ex.Prov.Fact(f))
		}
	}
	repairs, err := xr.SourceRepairs(sys.w.M, in.in)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range repairs {
		if r.Equal(kept) {
			return // the witness is a genuine source repair
		}
	}
	t.Fatalf("the witness repair (%d facts kept of %d) matches none of the %d enumerated source repairs",
		kept.Len(), in.in.Len(), len(repairs))
}

// TestWhyVerdicts covers the remaining Why outcomes: a certain answer on
// the non-3-colorable K4 gadget, an arity error, and foreign constants.
func TestWhyVerdicts(t *testing.T) {
	exK4, qK4 := tricolorSetup(t, k4Edges)
	e, err := exK4.Why(qK4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Verdict != "certain" {
		t.Fatalf("K4 verdict = %s, want certain (K4 is not 3-colorable)", e.Verdict)
	}

	sys, in, qs := setup(t)
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Why(qs[0], nil); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	e, err = ex.Why(qs[0], []string{"no-such-constant", "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Verdict != "no-support" {
		t.Fatalf("foreign constant verdict = %s, want no-support", e.Verdict)
	}
	if !strings.Contains(e.Text, "no support") {
		t.Fatalf("no-support text missing: %q", e.Text)
	}
}

// TestExplanationsTricolorGolden: the full -explain output of the triangle
// gadget matches the committed golden file byte for byte, at parallelism
// 1, 4, and 8 and on warm and cold signature-cache paths. Regenerate with
// -update-golden (shared with internal/xr).
func TestExplanationsTricolorGolden(t *testing.T) {
	render := func(par int) string {
		ex, q := tricolorSetup(t, triangleEdges)
		var b strings.Builder
		for pass := 0; pass < 2; pass++ { // second pass hits the signature-program cache
			ans, err := ex.Answer(q, WithExplanations(true), WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if len(ans.Explanations) == 0 {
				t.Fatal("WithExplanations(true) attached no explanations")
			}
			for _, e := range ans.Explanations {
				b.WriteString(e.Text)
			}
		}
		return b.String()
	}
	got := render(1)
	for _, par := range []int{4, 8} {
		if other := render(par); other != got {
			t.Fatalf("parallelism %d changed explanation output:\n%s\n-- want --\n%s", par, other, got)
		}
	}
	half := got[:len(got)/2]
	if got != half+half {
		t.Fatal("warm signature cache changed explanation output")
	}

	golden := filepath.Join("testdata", "explain_tricolor.golden")
	if *updateGoldenRoot {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(half), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if half != string(want) {
		t.Fatalf("explanation output differs from %s (run with -update-golden to refresh):\n%s", golden, half)
	}
}

// TestWhyMatchesAnswerExplanations: Why's single-tuple text is identical to
// the corresponding entry of a full WithExplanations run.
func TestWhyMatchesAnswerExplanations(t *testing.T) {
	ex, q := tricolorSetup(t, triangleEdges)
	ans, err := ex.Answer(q, WithExplanations(true))
	if err != nil {
		t.Fatal(err)
	}
	why, err := ex.Why(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ans.Explanations {
		if e.Query == q.Name() && len(e.Tuple) == 0 {
			if e.Text != why.Text {
				t.Fatalf("Why text diverges from Answer explanation:\n%s\n-- vs --\n%s", why.Text, e.Text)
			}
			return
		}
	}
	t.Fatal("no explanation for the boolean query tuple")
}
