// Command xrquery computes XR-Certain answers for queries over a schema
// mapping and a source instance, using the segmentary engine (default),
// the monolithic engine, or brute-force repair enumeration.
//
// Usage:
//
//	xrquery -mapping m.map -facts i.facts -queries q.dl \
//	        [-engine seg|mono|brute] [-timeout 60s] [-parallel N] \
//	        [-stats] [-trace] [-possible] [-metrics-addr :9090] \
//	        [-partial] [-sig-timeout 5s] [-max-decisions N] [-max-conflicts N] \
//	        [-profile N]
//
// With -partial (segmentary engine only), a signature program that
// exhausts -sig-timeout or the -max-decisions/-max-conflicts solver budget
// is skipped instead of failing the query: the printed answers are a sound
// lower bound, undecided tuples are printed with a leading `?`, and the
// process exits with code 3 so scripts can tell a degraded run from a
// complete one (0) or an error (1).
//
// With -metrics-addr, an HTTP endpoint serves /metrics (Prometheus text),
// /metrics.json (deterministic snapshot), /debug/vars (expvar), and
// /debug/pprof/ for the duration of the run; a telemetry summary is
// printed to stderr on exit.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/profile"
)

// config collects the command-line options.
type config struct {
	engine       string
	timeout      time.Duration
	parallel     int
	stats        bool
	trace        bool
	possible     bool
	metricsAddr  string
	partial      bool
	sigTimeout   time.Duration
	maxDecisions int64
	maxConflicts int64
	explain      bool
	why          string
	traceOut     string
	profile      int

	// metrics is the run's registry, non-nil when metricsAddr is set.
	metrics *repro.Metrics
	// tracer is the run's span collector, non-nil when traceOut is set.
	tracer *repro.Tracer
}

func main() {
	var (
		mappingPath = flag.String("mapping", "", "schema mapping file (required)")
		factsPath   = flag.String("facts", "", "source instance fact file (required)")
		queriesPath = flag.String("queries", "", "query file (required)")
		cfg         config
	)
	flag.StringVar(&cfg.engine, "engine", "seg", "engine: seg, mono, or brute")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "per-query solving timeout (0 = none)")
	flag.IntVar(&cfg.parallel, "parallel", 1, "programs solved concurrently (0 = GOMAXPROCS)")
	flag.BoolVar(&cfg.stats, "stats", false, "print per-query statistics")
	flag.BoolVar(&cfg.trace, "trace", false, "print per-program solver diagnostics to stderr")
	flag.BoolVar(&cfg.possible, "possible", false, "also print XR-Possible answers (segmentary engine only)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve Prometheus/expvar/pprof on this address (e.g. :9090; empty = off)")
	flag.BoolVar(&cfg.partial, "partial", false, "return sound partial answers when a signature exceeds its budget (exit code 3)")
	flag.DurationVar(&cfg.sigTimeout, "sig-timeout", 0, "per-signature solving timeout (0 = none; segmentary engine only)")
	flag.Int64Var(&cfg.maxDecisions, "max-decisions", 0, "per-signature solver decision budget (0 = unlimited)")
	flag.Int64Var(&cfg.maxConflicts, "max-conflicts", 0, "per-signature solver conflict budget (0 = unlimited)")
	flag.BoolVar(&cfg.explain, "explain", false, "print one explanation per candidate tuple (segmentary engine only)")
	flag.StringVar(&cfg.why, "why", "", "explain one tuple, e.g. 'q(a, b)' (segmentary engine only; implies -explain machinery)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write a Chrome trace-event JSON timeline to this path (load in about:tracing or Perfetto)")
	flag.IntVar(&cfg.profile, "profile", 0, "print the top-N hardest signatures after the run (segmentary engine only; 0 = off)")
	flag.Parse()
	if *mappingPath == "" || *factsPath == "" || *queriesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	degraded, err := run(*mappingPath, *factsPath, *queriesPath, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xrquery:", err)
		os.Exit(1)
	}
	if degraded {
		// Answers were printed but are a lower bound; distinct exit code so
		// scripts can tell a degraded run from a complete one.
		os.Exit(3)
	}
}

// exchangeOptions translates the config into exchange-scope options
// (NewExchange accepts only WithMetrics / WithTracer).
func (c config) exchangeOptions() []repro.Option {
	var opts []repro.Option
	if c.metrics != nil {
		opts = append(opts, repro.WithMetrics(c.metrics))
	}
	if c.tracer != nil {
		opts = append(opts, repro.WithTracer(c.tracer))
	}
	if c.profile > 0 {
		opts = append(opts, repro.WithProfiling(true))
	}
	return opts
}

// queryOptions translates the config into per-call query-scope options.
func (c config) queryOptions() []repro.Option {
	var opts []repro.Option
	if c.timeout > 0 {
		opts = append(opts, repro.WithTimeout(c.timeout))
	}
	if c.parallel != 1 {
		opts = append(opts, repro.WithParallelism(c.parallel))
	}
	if c.sigTimeout > 0 {
		opts = append(opts, repro.WithSignatureTimeout(c.sigTimeout))
	}
	if c.maxDecisions > 0 || c.maxConflicts > 0 {
		opts = append(opts, repro.WithSolveBudget(c.maxDecisions, c.maxConflicts))
	}
	if c.partial {
		opts = append(opts, repro.WithPartialResults(true))
	}
	if c.trace {
		opts = append(opts, repro.WithSolverTrace(func(ev repro.TraceEvent) {
			fmt.Fprintf(os.Stderr,
				"[%s] query=%s sig=%v cands=%d atoms=%d rules=%d cached=%v tested=%d fails=%d loops=%d rejects=%d decisions=%d conflicts=%d props=%d restarts=%d in %v\n",
				ev.Engine, ev.Query, ev.Signature, ev.Candidates, ev.Atoms, ev.Rules,
				ev.CacheHit, ev.CandidatesTested, ev.StabilityFails, ev.LoopsLearned,
				ev.TheoryRejects, ev.Decisions, ev.Conflicts, ev.Propagations,
				ev.Restarts, ev.Duration)
		}))
	}
	if c.metrics != nil {
		opts = append(opts, repro.WithMetrics(c.metrics))
	}
	if c.explain {
		opts = append(opts, repro.WithExplanations(true))
	}
	if c.tracer != nil {
		opts = append(opts, repro.WithTracer(c.tracer))
	}
	return opts
}

func run(mappingPath, factsPath, queriesPath string, cfg config) (degraded bool, err error) {
	if cfg.metricsAddr != "" {
		cfg.metrics = repro.NewMetrics()
		srv, err := repro.ServeMetrics(cfg.metricsAddr, cfg.metrics)
		if err != nil {
			return false, err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "xrquery: metrics on http://%s/metrics\n", srv.Addr())
		defer func() {
			snap := cfg.metrics.Snapshot()
			fmt.Fprintf(os.Stderr, "xrquery: telemetry: programs=%d decisions=%d conflicts=%d propagations=%d restarts=%d\n",
				snap.Counters["xr_programs_total"], snap.Counters["xr_solver_decisions_total"],
				snap.Counters["xr_solver_conflicts_total"], snap.Counters["xr_solver_propagations_total"],
				snap.Counters["xr_solver_restarts_total"])
		}()
	}
	if cfg.traceOut != "" {
		cfg.tracer = repro.NewTracer()
		defer func() {
			if werr := writeTrace(cfg.tracer, cfg.traceOut); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	sys, err := loadSystem(mappingPath)
	if err != nil {
		return false, err
	}
	factsText, err := os.ReadFile(factsPath)
	if err != nil {
		return false, err
	}
	in, err := sys.ParseFacts(string(factsText))
	if err != nil {
		return false, fmt.Errorf("parsing %s: %w", factsPath, err)
	}
	queryText, err := os.ReadFile(queriesPath)
	if err != nil {
		return false, err
	}
	queries, err := sys.ParseQueries(string(queryText))
	if err != nil {
		return false, fmt.Errorf("parsing %s: %w", queriesPath, err)
	}

	fmt.Printf("# mapping: %s; instance: %d facts; consistent: %v\n",
		sys.MappingStats(), in.NumFacts(), sys.HasSolution(in))

	opts := cfg.queryOptions()
	switch cfg.engine {
	case "seg":
		ex, err := sys.NewExchange(in, cfg.exchangeOptions()...)
		if err != nil {
			return false, err
		}
		st := ex.Stats()
		fmt.Printf("# exchange phase: %v (violations=%d clusters=%d suspect=%d)\n",
			st.Duration, st.Violations, st.Clusters, ex.SuspectFacts())
		if cfg.why != "" {
			return false, explainWhy(ex, queries, cfg)
		}
		for _, q := range queries {
			ans, err := ex.Answer(q, opts...)
			if err != nil {
				return degraded, err // already carries the query name
			}
			if ans.Partial() {
				degraded = true
			}
			printAnswers(q.Name(), ans, cfg.stats)
			if cfg.possible {
				poss, err := ex.Possible(q, opts...)
				if err != nil {
					return degraded, fmt.Errorf("possible: %w", err)
				}
				if poss.Partial() {
					degraded = true
				}
				printAnswers(q.Name()+" [possible]", poss, cfg.stats)
			}
		}
		if cfg.profile > 0 {
			printProfile(ex, cfg.profile)
		}
	case "mono":
		answers, errs, err := sys.MonolithicAnswers(in, queries, opts...)
		if err != nil {
			return false, err
		}
		for i, q := range queries {
			if errors.Is(errs[i], repro.ErrTimeout) {
				fmt.Printf("%s: TIMEOUT after %v (answers below are a lower bound)\n", q.Name(), cfg.timeout)
			} else if errs[i] != nil {
				fmt.Printf("%s: %v (answers below are a lower bound)\n", q.Name(), errs[i])
			}
			printAnswers(q.Name(), answers[i], cfg.stats)
		}
	case "brute":
		answers, err := sys.BruteForceAnswers(in, queries, opts...)
		if err != nil {
			return false, err
		}
		for i, q := range queries {
			printAnswers(q.Name(), answers[i], cfg.stats)
		}
	default:
		return false, fmt.Errorf("unknown engine %q (want seg, mono, or brute)", cfg.engine)
	}
	return degraded, nil
}

func loadSystem(path string) (*repro.System, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sys, err := repro.Load(string(text))
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return sys, nil
}

func printAnswers(name string, ans *repro.Answers, stats bool) {
	if stats {
		fmt.Printf("%s: %d answers (candidates=%d safe=%d solver=%d programs=%d cached=%d) in %v\n",
			name, len(ans.Tuples), ans.Candidates, ans.SafeAccepted, ans.SolverAccepted,
			ans.Programs, ans.CacheHits, ans.Duration)
	} else {
		fmt.Printf("%s: %d answers\n", name, len(ans.Tuples))
	}
	if ans.Partial() {
		fmt.Printf("%s: PARTIAL — %d signature(s) undecided, %d tuple(s) unknown (answers are a sound lower bound)\n",
			name, ans.DegradedSignatures, ans.UnknownTuples)
		for _, d := range ans.Degraded {
			fmt.Printf("  # degraded {%s}: %d tuple(s), %d retr%s: %v\n",
				d.Signature, d.Tuples, d.Retries, plural(d.Retries, "y", "ies"), d.Err)
		}
	}
	for _, row := range ans.Tuples {
		fmt.Printf("  %s(%s)\n", name, strings.Join(row, ", "))
	}
	// Unknown tuples print with a leading `?`: they may or may not be
	// XR-Certain answers (the truth lies between Tuples and Tuples+Unknown).
	for _, row := range ans.Unknown {
		fmt.Printf("  ? %s(%s)\n", name, strings.Join(row, ", "))
	}
	// Explanations (WithExplanations) print as indented blocks, one per
	// candidate tuple, in deterministic candidate order.
	for _, e := range ans.Explanations {
		for _, line := range strings.Split(strings.TrimRight(e.Text, "\n"), "\n") {
			fmt.Printf("  | %s\n", line)
		}
	}
}

// printProfile renders the exchange's accumulated workload profile: the
// top-N hardest signatures by total wall time, one comment line each, in
// the deterministic order Snapshot.Top defines.
func printProfile(ex *repro.Exchange, n int) {
	snap := ex.Profile()
	fmt.Printf("# profile: %d signature record(s), %d solve(s)\n", snap.Records, snap.Solves)
	for _, sp := range snap.Top(n, profile.SortWall) {
		fmt.Printf("#   {%s} solves=%d wall=%v p95=%v decisions=%d conflicts=%d cached=%d reused=%d retries=%d degraded=%d\n",
			sp.Key, sp.Solves, time.Duration(sp.WallNs), time.Duration(int64(sp.Wall.P95)),
			sp.Decisions, sp.Conflicts, sp.CacheHits, sp.ReuseHits, sp.Retries, sp.Degraded)
	}
}

// explainWhy handles -why: explain one tuple of one query and print it.
func explainWhy(ex *repro.Exchange, queries []*repro.Query, cfg config) error {
	name, args, err := parseWhy(cfg.why)
	if err != nil {
		return err
	}
	for _, q := range queries {
		if q.Name() != name {
			continue
		}
		e, err := ex.Why(q, args, cfg.queryOptions()...)
		if err != nil {
			return err
		}
		fmt.Print(e.Text)
		return nil
	}
	return fmt.Errorf("-why: no query named %q in the query file", name)
}

// parseWhy splits "q(a, b)" into the query name and its argument constants.
// Surrounding quotes on constants are stripped ('x' and x both name the
// constant x, matching the fact-file convention).
func parseWhy(s string) (string, []string, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("-why: want 'query(const, ...)', got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return name, nil, nil
	}
	parts := strings.Split(inner, ",")
	args := make([]string, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		p = strings.Trim(p, "'\"")
		if p == "" {
			return "", nil, fmt.Errorf("-why: empty argument %d in %q", i+1, s)
		}
		args[i] = p
	}
	return name, args, nil
}

// writeTrace exports the collected span tree as Chrome trace-event JSON.
func writeTrace(t *repro.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xrquery: wrote trace timeline to %s\n", path)
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
