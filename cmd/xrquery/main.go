// Command xrquery computes XR-Certain answers for queries over a schema
// mapping and a source instance, using the segmentary engine (default),
// the monolithic engine, or brute-force repair enumeration.
//
// Usage:
//
//	xrquery -mapping m.map -facts i.facts -queries q.dl \
//	        [-engine seg|mono|brute] [-timeout 60s] [-stats] [-possible]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		mappingPath = flag.String("mapping", "", "schema mapping file (required)")
		factsPath   = flag.String("facts", "", "source instance fact file (required)")
		queriesPath = flag.String("queries", "", "query file (required)")
		engine      = flag.String("engine", "seg", "engine: seg, mono, or brute")
		timeout     = flag.Duration("timeout", 0, "per-query timeout for the monolithic engine (0 = none)")
		stats       = flag.Bool("stats", false, "print per-query statistics")
		possible    = flag.Bool("possible", false, "also print XR-Possible answers (segmentary engine only)")
	)
	flag.Parse()
	if *mappingPath == "" || *factsPath == "" || *queriesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*mappingPath, *factsPath, *queriesPath, *engine, *timeout, *stats, *possible); err != nil {
		fmt.Fprintln(os.Stderr, "xrquery:", err)
		os.Exit(1)
	}
}

func run(mappingPath, factsPath, queriesPath, engine string, timeout time.Duration, stats, possible bool) error {
	sys, err := loadSystem(mappingPath)
	if err != nil {
		return err
	}
	factsText, err := os.ReadFile(factsPath)
	if err != nil {
		return err
	}
	in, err := sys.ParseFacts(string(factsText))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", factsPath, err)
	}
	queryText, err := os.ReadFile(queriesPath)
	if err != nil {
		return err
	}
	queries, err := sys.ParseQueries(string(queryText))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", queriesPath, err)
	}

	fmt.Printf("# mapping: %s; instance: %d facts; consistent: %v\n",
		sys.MappingStats(), in.NumFacts(), sys.HasSolution(in))

	switch engine {
	case "seg":
		ex, err := sys.NewExchange(in)
		if err != nil {
			return err
		}
		st := ex.Stats()
		fmt.Printf("# exchange phase: %v (violations=%d clusters=%d suspect=%d)\n",
			st.Duration, st.Violations, st.Clusters, ex.SuspectFacts())
		for _, q := range queries {
			ans, err := ex.Answer(q)
			if err != nil {
				return fmt.Errorf("query %s: %w", q.Name(), err)
			}
			printAnswers(q.Name(), ans, stats)
			if possible {
				poss, err := ex.Possible(q)
				if err != nil {
					return fmt.Errorf("query %s (possible): %w", q.Name(), err)
				}
				printAnswers(q.Name()+" [possible]", poss, stats)
			}
		}
	case "mono":
		answers, errs, err := sys.MonolithicAnswers(in, queries, timeout)
		if err != nil {
			return err
		}
		for i, q := range queries {
			if errs[i] != nil {
				fmt.Printf("%s: TIMEOUT after %v (answers below are a lower bound)\n", q.Name(), timeout)
			}
			printAnswers(q.Name(), answers[i], stats)
		}
	case "brute":
		answers, err := sys.BruteForceAnswers(in, queries)
		if err != nil {
			return err
		}
		for i, q := range queries {
			printAnswers(q.Name(), answers[i], stats)
		}
	default:
		return fmt.Errorf("unknown engine %q (want seg, mono, or brute)", engine)
	}
	return nil
}

func loadSystem(path string) (*repro.System, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sys, err := repro.Load(string(text))
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return sys, nil
}

func printAnswers(name string, ans *repro.Answers, stats bool) {
	if stats {
		fmt.Printf("%s: %d answers (candidates=%d safe=%d solver=%d programs=%d) in %v\n",
			name, len(ans.Tuples), ans.Candidates, ans.SafeAccepted, ans.SolverAccepted,
			ans.Programs, ans.Duration)
	} else {
		fmt.Printf("%s: %d answers\n", name, len(ans.Tuples))
	}
	for _, row := range ans.Tuples {
		fmt.Printf("  %s(%s)\n", name, strings.Join(row, ", "))
	}
}
