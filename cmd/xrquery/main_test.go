package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func fixtureFiles(t *testing.T) (string, string, string) {
	m := writeTemp(t, "m.map", `
source A(x, v).
source B(x, v).
target T(x, v).
tgd A(x, v) -> T(x, v).
tgd B(x, v) -> T(x, v).
egd T(x, v) & T(x, w) -> v = w.
`)
	f := writeTemp(t, "i.facts", `
A(t1, 1). B(t1, 2).
A(t2, 3). B(t2, 3).
`)
	q := writeTemp(t, "q.dl", `q(x, v) :- T(x, v).`)
	return m, f, q
}

func TestRunAllEngines(t *testing.T) {
	m, f, q := fixtureFiles(t)
	for _, engine := range []string{"seg", "mono", "brute"} {
		cfg := config{engine: engine, timeout: time.Minute, parallel: 2, stats: true, trace: true, possible: engine == "seg"}
		degraded, err := run(m, f, q, cfg)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if degraded {
			t.Fatalf("engine %s: unexpectedly degraded", engine)
		}
	}
}

// TestRunWithMetrics exercises the -metrics-addr path: the registry is
// created, the HTTP server binds an ephemeral port, and the run completes
// with the telemetry summary on exit.
func TestRunWithMetrics(t *testing.T) {
	m, f, q := fixtureFiles(t)
	for _, engine := range []string{"seg", "mono", "brute"} {
		cfg := config{engine: engine, parallel: 1, metricsAddr: "127.0.0.1:0"}
		if _, err := run(m, f, q, cfg); err != nil {
			t.Fatalf("engine %s with metrics: %v", engine, err)
		}
	}
	if _, err := run(m, f, q, config{engine: "seg", parallel: 1, metricsAddr: "256.0.0.1:bad"}); err == nil {
		t.Fatal("unusable metrics address accepted")
	}
}

func TestRunErrors(t *testing.T) {
	m, f, q := fixtureFiles(t)
	seg := config{engine: "seg", parallel: 1}
	if _, err := run(m, f, q, config{engine: "warp", parallel: 1}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := run("/nonexistent.map", f, q, seg); err == nil {
		t.Fatal("missing mapping accepted")
	}
	bad := writeTemp(t, "bad.map", "gibberish")
	if _, err := run(bad, f, q, seg); err == nil {
		t.Fatal("bad mapping accepted")
	}
	badFacts := writeTemp(t, "bad.facts", "Nope(1).")
	if _, err := run(m, badFacts, q, seg); err == nil {
		t.Fatal("bad facts accepted")
	}
}

// TestRunPartial drives the -partial path end to end: a one-decision
// budget exhausts on the fixture's conflicted signature, the run degrades
// instead of failing, and the degraded flag (exit code 3 in main) is set.
func TestRunPartial(t *testing.T) {
	m, f, q := fixtureFiles(t)
	strict := config{engine: "seg", parallel: 1, maxDecisions: 1}
	if _, err := run(m, f, q, strict); err == nil {
		t.Fatal("budget exhaustion without -partial should fail the run")
	}
	partial := config{engine: "seg", parallel: 1, maxDecisions: 1, partial: true, stats: true}
	degraded, err := run(m, f, q, partial)
	if err != nil {
		t.Fatalf("partial run failed: %v", err)
	}
	if !degraded {
		t.Fatal("partial run with a 1-decision budget did not degrade")
	}
}
