package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func fixtureFiles(t *testing.T) (string, string, string) {
	m := writeTemp(t, "m.map", `
source A(x, v).
source B(x, v).
target T(x, v).
tgd A(x, v) -> T(x, v).
tgd B(x, v) -> T(x, v).
egd T(x, v) & T(x, w) -> v = w.
`)
	f := writeTemp(t, "i.facts", `
A(t1, 1). B(t1, 2).
A(t2, 3). B(t2, 3).
`)
	q := writeTemp(t, "q.dl", `q(x, v) :- T(x, v).`)
	return m, f, q
}

func TestRunAllEngines(t *testing.T) {
	m, f, q := fixtureFiles(t)
	for _, engine := range []string{"seg", "mono", "brute"} {
		cfg := config{engine: engine, timeout: time.Minute, parallel: 2, stats: true, trace: true, possible: engine == "seg"}
		degraded, err := run(m, f, q, cfg)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if degraded {
			t.Fatalf("engine %s: unexpectedly degraded", engine)
		}
	}
}

// TestRunWithMetrics exercises the -metrics-addr path: the registry is
// created, the HTTP server binds an ephemeral port, and the run completes
// with the telemetry summary on exit.
func TestRunWithMetrics(t *testing.T) {
	m, f, q := fixtureFiles(t)
	for _, engine := range []string{"seg", "mono", "brute"} {
		cfg := config{engine: engine, parallel: 1, metricsAddr: "127.0.0.1:0"}
		if _, err := run(m, f, q, cfg); err != nil {
			t.Fatalf("engine %s with metrics: %v", engine, err)
		}
	}
	if _, err := run(m, f, q, config{engine: "seg", parallel: 1, metricsAddr: "256.0.0.1:bad"}); err == nil {
		t.Fatal("unusable metrics address accepted")
	}
}

func TestRunErrors(t *testing.T) {
	m, f, q := fixtureFiles(t)
	seg := config{engine: "seg", parallel: 1}
	if _, err := run(m, f, q, config{engine: "warp", parallel: 1}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := run("/nonexistent.map", f, q, seg); err == nil {
		t.Fatal("missing mapping accepted")
	}
	bad := writeTemp(t, "bad.map", "gibberish")
	if _, err := run(bad, f, q, seg); err == nil {
		t.Fatal("bad mapping accepted")
	}
	badFacts := writeTemp(t, "bad.facts", "Nope(1).")
	if _, err := run(m, badFacts, q, seg); err == nil {
		t.Fatal("bad facts accepted")
	}
}

// TestRunExplain drives -explain and -why end to end on the conflicted
// fixture (q(t1, 1) and q(t1, 2) are rejected, q(t2, 3) is safe).
func TestRunExplain(t *testing.T) {
	m, f, q := fixtureFiles(t)
	if _, err := run(m, f, q, config{engine: "seg", parallel: 2, explain: true}); err != nil {
		t.Fatalf("-explain run failed: %v", err)
	}
	if _, err := run(m, f, q, config{engine: "seg", parallel: 1, why: "q(t1, 1)"}); err != nil {
		t.Fatalf("-why run failed: %v", err)
	}
	if _, err := run(m, f, q, config{engine: "seg", parallel: 1, why: "nope(t1)"}); err == nil {
		t.Fatal("-why with an unknown query name accepted")
	}
	if _, err := run(m, f, q, config{engine: "seg", parallel: 1, why: "gibberish"}); err == nil {
		t.Fatal("-why with unparsable input accepted")
	}
}

func TestParseWhy(t *testing.T) {
	cases := []struct {
		in   string
		name string
		args []string
		ok   bool
	}{
		{"q(a, b)", "q", []string{"a", "b"}, true},
		{" q( 'a' , \"b\" ) ", "q", []string{"a", "b"}, true},
		{"boolean()", "boolean", nil, true},
		{"no-parens", "", nil, false},
		{"(a)", "", nil, false},
		{"q(a,,b)", "", nil, false},
	}
	for _, tc := range cases {
		name, args, err := parseWhy(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("parseWhy(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && (name != tc.name || !reflect.DeepEqual(args, tc.args)) {
			t.Fatalf("parseWhy(%q) = %q %v, want %q %v", tc.in, name, args, tc.name, tc.args)
		}
	}
}

// TestRunTraceOut checks the -trace-out artifact: valid Chrome trace-event
// JSON with the signature span nested (via the parent arg) under the
// query-phase span.
func TestRunTraceOut(t *testing.T) {
	m, f, q := fixtureFiles(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	if _, err := run(m, f, q, config{engine: "seg", parallel: 2, traceOut: path}); err != nil {
		t.Fatalf("-trace-out run failed: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	queryID := ""
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "query ") {
			queryID, _ = ev.Args["id"].(string)
		}
	}
	if queryID == "" {
		t.Fatal("no query-phase span in the trace")
	}
	foundSig, foundExchange := false, false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "exchange" {
			foundExchange = true
		}
		if strings.HasPrefix(ev.Name, "signature {") {
			foundSig = true
			if parent, _ := ev.Args["parent"].(string); parent != queryID {
				t.Fatalf("signature span parented to %v, want query span %v", ev.Args["parent"], queryID)
			}
		}
	}
	if !foundSig {
		t.Fatal("no per-signature span in the trace")
	}
	if !foundExchange {
		t.Fatal("no exchange-phase span in the trace")
	}
}

// TestRunPartial drives the -partial path end to end: a one-decision
// budget exhausts on the fixture's conflicted signature, the run degrades
// instead of failing, and the degraded flag (exit code 3 in main) is set.
func TestRunPartial(t *testing.T) {
	m, f, q := fixtureFiles(t)
	strict := config{engine: "seg", parallel: 1, maxDecisions: 1}
	if _, err := run(m, f, q, strict); err == nil {
		t.Fatal("budget exhaustion without -partial should fail the run")
	}
	partial := config{engine: "seg", parallel: 1, maxDecisions: 1, partial: true, stats: true}
	degraded, err := run(m, f, q, partial)
	if err != nil {
		t.Fatalf("partial run failed: %v", err)
	}
	if !degraded {
		t.Fatal("partial run with a 1-decision budget did not degrade")
	}
}
