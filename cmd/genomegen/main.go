// Command genomegen materializes benchmark source instances for the
// genome-browser scenario (Section 5 of the paper) as fact files, together
// with the schema mapping and query suite, so they can be fed to xrquery.
//
// Usage:
//
//	genomegen -out DIR [-profile L3] [-scale 0.1]
//	genomegen -out DIR -transcripts 5000 -suspect 0.05 [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/genome"
	"repro/internal/parser"
)

func main() {
	var (
		out         = flag.String("out", "", "output directory (required)")
		profileName = flag.String("profile", "L3", "profile name: L0 L3 L9 L20 S3 M3 F3")
		scale       = flag.Float64("scale", 0.1, "profile scale factor (1 = paper-sized)")
		transcripts = flag.Int("transcripts", 0, "custom transcript count (overrides -profile)")
		suspect     = flag.Float64("suspect", 0.03, "custom suspect-transcript rate")
		seed        = flag.Int64("seed", 1, "custom generator seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *profileName, *scale, *transcripts, *suspect, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "genomegen:", err)
		os.Exit(1)
	}
}

func run(out, profileName string, scale float64, transcripts int, suspect float64, seed int64) error {
	w, err := genome.NewWorld()
	if err != nil {
		return err
	}
	var p genome.Profile
	if transcripts > 0 {
		p = genome.Profile{Name: "custom", Transcripts: transcripts, SuspectRate: suspect, Seed: seed}
	} else {
		var ok bool
		p, ok = genome.ProfileByName(profileName, scale)
		if !ok {
			return fmt.Errorf("unknown profile %q", profileName)
		}
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	src := genome.Generate(w, p)
	if err := os.WriteFile(filepath.Join(out, "mapping.map"), []byte(genome.MappingText), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, "queries.dl"), []byte(genome.QueriesText), 0o644); err != nil {
		return err
	}
	facts := parser.FormatFacts(src, w.Cat, w.U)
	factsPath := filepath.Join(out, fmt.Sprintf("%s.facts", p.Name))
	if err := os.WriteFile(factsPath, []byte(facts), 0o644); err != nil {
		return err
	}
	fmt.Printf("profile %s: %d transcripts, %d source facts, suspect rate %.1f%%\n",
		p.Name, p.Transcripts, src.Len(), 100*p.SuspectRate)
	fmt.Printf("wrote %s, %s, %s\n",
		filepath.Join(out, "mapping.map"), filepath.Join(out, "queries.dl"), factsPath)
	return nil
}
