// Command xrprof inspects workload-profile dumps: the deterministic JSON
// snapshots the engine's profiler produces (repro.WithProfiling), which
// xrserved serves at GET /v1/scenarios/{name}/profile, persists beside
// scenario snapshots under -data-dir, and xrbench embeds in reports.
//
// Usage:
//
//	xrprof report [-top N] [-sort wall|conflicts|degraded] profile.json
//	xrprof diff   [-top N] [-sort wall|conflicts|degraded] old.json new.json
//
// report renders the top-N hardest signatures as a table. diff subtracts
// the old snapshot's per-signature counters from the new one's and
// renders the delta — the workload the window between the two dumps
// added. Both accept a bare snapshot (the persisted / xrbench form) or
// the /profile endpoint's response body (the snapshot is unwrapped from
// its "profile" field automatically), so
//
//	curl -s localhost:8080/v1/scenarios/genome/profile | xrprof report -top 5 -
//
// works directly. "-" reads standard input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/profile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = runReport(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "xrprof: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xrprof:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xrprof report [-top N] [-sort wall|conflicts|degraded] profile.json
  xrprof diff   [-top N] [-sort wall|conflicts|degraded] old.json new.json
("-" reads the profile from standard input)`)
}

// sortFlags declares the flags shared by both subcommands.
func sortFlags(fs *flag.FlagSet) (top *int, sortBy *string) {
	top = fs.Int("top", 10, "signatures to show (0 = all)")
	sortBy = fs.String("sort", profile.SortWall, "order: wall, conflicts, or degraded")
	return top, sortBy
}

func runReport(args []string) error {
	fs := flag.NewFlagSet("xrprof report", flag.ExitOnError)
	top, sortBy := sortFlags(fs)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("report: want exactly one profile file, got %d", fs.NArg())
	}
	if !profile.ValidSort(*sortBy) {
		return fmt.Errorf("unknown -sort %q (want wall, conflicts, or degraded)", *sortBy)
	}
	snap, err := readSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("profile: %d signature record(s), %d solve(s), %d eviction(s)\n",
		snap.Records, snap.Solves, snap.Evictions)
	return render(os.Stdout, snap.Top(*top, *sortBy))
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("xrprof diff", flag.ExitOnError)
	top, sortBy := sortFlags(fs)
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want two profile files (old new), got %d", fs.NArg())
	}
	if !profile.ValidSort(*sortBy) {
		return fmt.Errorf("unknown -sort %q (want wall, conflicts, or degraded)", *sortBy)
	}
	oldSnap, err := readSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(fs.Arg(1))
	if err != nil {
		return err
	}
	delta := diffSnapshots(oldSnap, newSnap)
	fmt.Printf("profile delta: %+d solve(s) (%d -> %d), %d signature(s) with new work\n",
		newSnap.Solves-oldSnap.Solves, oldSnap.Solves, newSnap.Solves, len(delta.Signatures))
	return render(os.Stdout, delta.Top(*top, *sortBy))
}

// diffSnapshots subtracts old per-signature counters from new ones,
// keeping only signatures whose counters changed. A signature absent
// from the old snapshot (new, or since evicted there) contributes its
// full new-side counters.
func diffSnapshots(oldSnap, newSnap *profile.Snapshot) *profile.Snapshot {
	prev := make(map[string]*profile.SignatureProfile, len(oldSnap.Signatures))
	for i := range oldSnap.Signatures {
		prev[oldSnap.Signatures[i].Key] = &oldSnap.Signatures[i]
	}
	out := &profile.Snapshot{Signatures: []profile.SignatureProfile{}}
	for _, sp := range newSnap.Signatures {
		if p, ok := prev[sp.Key]; ok {
			sp.Counters = subCounters(sp.Counters, p.Counters)
			sp.Wall.Count -= p.Wall.Count
			sp.Wall.SumNs -= p.Wall.SumNs
		}
		if sp.Counters == (profile.Counters{}) {
			continue
		}
		out.Signatures = append(out.Signatures, sp)
	}
	out.Records = len(out.Signatures)
	return out
}

func subCounters(a, b profile.Counters) profile.Counters {
	return profile.Counters{
		Solves:           a.Solves - b.Solves,
		WallNs:           a.WallNs - b.WallNs,
		Candidates:       a.Candidates - b.Candidates,
		CandidatesTested: a.CandidatesTested - b.CandidatesTested,
		StabilityFails:   a.StabilityFails - b.StabilityFails,
		Decisions:        a.Decisions - b.Decisions,
		Conflicts:        a.Conflicts - b.Conflicts,
		Propagations:     a.Propagations - b.Propagations,
		Restarts:         a.Restarts - b.Restarts,
		AssumptionSolves: a.AssumptionSolves - b.AssumptionSolves,
		Reductions:       a.Reductions - b.Reductions,
		ClausesDeleted:   a.ClausesDeleted - b.ClausesDeleted,
		Retries:          a.Retries - b.Retries,
		Degraded:         a.Degraded - b.Degraded,
		BudgetExhausted:  a.BudgetExhausted - b.BudgetExhausted,
		CacheHits:        a.CacheHits - b.CacheHits,
		ReuseHits:        a.ReuseHits - b.ReuseHits,
	}
}

// render prints signatures as an aligned table.
func render(w io.Writer, sigs []profile.SignatureProfile) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SIGNATURE\tSOLVES\tWALL\tP95\tDECISIONS\tCONFLICTS\tCACHED\tREUSED\tRETRIES\tDEGRADED\tVIOL\tENV")
	for _, sp := range sigs {
		fmt.Fprintf(tw, "{%s}\t%d\t%v\t%v\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			sp.Key, sp.Solves,
			time.Duration(sp.WallNs).Round(time.Microsecond),
			time.Duration(int64(sp.Wall.P95)).Round(time.Microsecond),
			sp.Decisions, sp.Conflicts, sp.CacheHits, sp.ReuseHits,
			sp.Retries, sp.Degraded, sp.ClusterViolations, sp.EnvelopeFacts)
	}
	return tw.Flush()
}

// readSnapshot loads a profile dump: a bare snapshot, a wrapper carrying
// one under an object-valued "profile" key (the /profile response body —
// xrbench reports also have a "profile" key, but it holds the genome
// profile *name*), or an xrbench report, whose embedded hot-signatures
// block becomes the snapshot. Path "-" reads standard input.
func readSnapshot(path string) (*profile.Snapshot, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var wrapped struct {
		Profile       json.RawMessage            `json:"profile"`
		ProfileSolves int64                      `json:"profile_solves"`
		HotSignatures []profile.SignatureProfile `json:"hot_signatures"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil {
		switch {
		case len(wrapped.Profile) > 0 && wrapped.Profile[0] == '{':
			data = wrapped.Profile
		case len(wrapped.HotSignatures) > 0:
			return &profile.Snapshot{
				Records:    len(wrapped.HotSignatures),
				Solves:     wrapped.ProfileSolves,
				Signatures: wrapped.HotSignatures,
			}, nil
		}
	}
	snap, err := profile.ParseSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return snap, nil
}
