// Command xrbench regenerates the paper's evaluation tables and figures on
// the synthetic genome-browser benchmark.
//
// Usage:
//
//	xrbench [-experiment all] [-scale 0.1] [-mono-timeout 60s] [-parallel 1] [-quiet]
//
// Experiments: table1 table2 table3 table4 fig3a fig3b fig4a fig4b
// reduction speedup all. -scale 1 selects paper-sized instances (slow);
// the default 0.1 runs the complete grid in minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchkit"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "which experiment to run (comma-separated)")
		scale       = flag.Float64("scale", 0.1, "instance scale factor (1 = paper-sized)")
		monoTimeout = flag.Duration("mono-timeout", 60*time.Second, "per-query timeout for monolithic runs")
		parallel    = flag.Int("parallel", 1, "programs solved concurrently per call (0 = GOMAXPROCS)")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if err := run(*experiment, *scale, *monoTimeout, *parallel, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "xrbench:", err)
		os.Exit(1)
	}
}

func run(experiment string, scale float64, monoTimeout time.Duration, parallel int, quiet bool) error {
	r, err := benchkit.NewRunner(scale, monoTimeout)
	if err != nil {
		return err
	}
	r.Parallelism = parallel
	if !quiet {
		r.Progress = os.Stderr
	}
	type exp struct {
		name string
		run  func() (*benchkit.Table, error)
	}
	exps := []exp{
		{"reduction", r.ReductionTable},
		{"table1", r.Table1},
		{"table2", r.Table2},
		{"table3", r.Table3},
		{"table4", r.Table4},
		{"fig4a", r.Figure4Suspect},
		{"fig4b", r.Figure4Size},
		{"fig3a", r.Figure3Suspect},
		{"fig3b", r.Figure3Size},
		{"speedup", func() (*benchkit.Table, error) { return r.Speedup(benchkit.SizeProfiles) }},
		{"ablation", func() (*benchkit.Table, error) { return r.AblationFigure1(200) }},
	}
	want := map[string]bool{}
	for _, name := range strings.Split(experiment, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ran := 0
	var out io.Writer = os.Stdout
	fmt.Fprintf(out, "xrbench: scale=%.3g mono-timeout=%v parallel=%d\n\n", scale, monoTimeout, parallel)
	for _, e := range exps {
		if !want["all"] && !want[e.name] {
			continue
		}
		ran++
		start := time.Now()
		t, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("experiment wall time %.1fs", time.Since(start).Seconds()))
		t.Render(out)
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", experiment)
	}
	return nil
}
