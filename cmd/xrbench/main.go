// Command xrbench regenerates the paper's evaluation tables and figures on
// the synthetic genome-browser benchmark.
//
// Usage:
//
//	xrbench [-experiment all] [-scale 0.1] [-mono-timeout 60s] [-parallel 1] [-quiet]
//	xrbench -json BENCH_S3.json [-profile S3] [-scale 0.1] [-parallel 1]
//
// Experiments: table1 table2 table3 table4 fig3a fig3b fig4a fig4b
// reduction speedup all. -scale 1 selects paper-sized instances (slow);
// the default 0.1 runs the complete grid in minutes.
//
// With -json, xrbench instead runs the segmentary pipeline on one genome
// profile (-profile, default S3) and writes a machine-readable report to
// the given path: host info, exchange-phase stats (the Table 4 columns),
// per-query wall times, and the full telemetry snapshot with solver
// counters. -metrics-addr additionally serves Prometheus/expvar/pprof
// during either mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchkit"
	"repro/internal/telemetry"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "which experiment to run (comma-separated)")
		scale       = flag.Float64("scale", 0.1, "instance scale factor (1 = paper-sized)")
		monoTimeout = flag.Duration("mono-timeout", 60*time.Second, "per-query timeout for monolithic runs")
		parallel    = flag.Int("parallel", 1, "programs solved concurrently per call (0 = GOMAXPROCS)")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
		jsonPath    = flag.String("json", "", "write a machine-readable report to this path instead of running experiments")
		profile     = flag.String("profile", "S3", "genome profile for the -json report (S3, M3, L0, L3, L9, L20, F3)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus/expvar/pprof on this address during the run (empty = off)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run to this path")
		compare     = flag.String("compare", "", "diff a baseline benchkit report (JSON) against -against; exit 4 on regression")
		against     = flag.String("against", "", "current report for -compare (defaults to running -profile fresh)")
		threshold   = flag.Float64("threshold", 10, "regression threshold for -compare, in percent")
	)
	flag.Parse()
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if *compare != "" {
		regressed, err := runCompare(*compare, *against, *scale, *monoTimeout, *parallel, *profile, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xrbench:", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(4)
		}
		return
	}
	if err := run(*experiment, *scale, *monoTimeout, *parallel, *quiet, *jsonPath, *profile, *metricsAddr, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "xrbench:", err)
		os.Exit(1)
	}
}

func run(experiment string, scale float64, monoTimeout time.Duration, parallel int, quiet bool, jsonPath, profile, metricsAddr, traceOut string) error {
	r, err := benchkit.NewRunner(scale, monoTimeout)
	if err != nil {
		return err
	}
	r.Parallelism = parallel
	if !quiet {
		r.Progress = os.Stderr
	}
	if traceOut != "" {
		r.Tracer = telemetry.NewTracer()
		defer func() {
			if werr := writeTrace(r.Tracer, traceOut); werr != nil {
				fmt.Fprintln(os.Stderr, "xrbench:", werr)
			}
		}()
	}
	if metricsAddr != "" {
		r.Metrics = telemetry.NewRegistry()
		srv, err := telemetry.Serve(metricsAddr, r.Metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "xrbench: metrics on http://%s/metrics\n", srv.Addr())
	}
	if jsonPath != "" {
		return writeReport(r, profile, jsonPath)
	}
	type exp struct {
		name string
		run  func() (*benchkit.Table, error)
	}
	exps := []exp{
		{"reduction", r.ReductionTable},
		{"table1", r.Table1},
		{"table2", r.Table2},
		{"table3", r.Table3},
		{"table4", r.Table4},
		{"fig4a", r.Figure4Suspect},
		{"fig4b", r.Figure4Size},
		{"fig3a", r.Figure3Suspect},
		{"fig3b", r.Figure3Size},
		{"speedup", func() (*benchkit.Table, error) { return r.Speedup(benchkit.SizeProfiles) }},
		{"ablation", func() (*benchkit.Table, error) { return r.AblationFigure1(200) }},
	}
	want := map[string]bool{}
	for _, name := range strings.Split(experiment, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ran := 0
	var out io.Writer = os.Stdout
	fmt.Fprintf(out, "xrbench: scale=%.3g mono-timeout=%v parallel=%d\n\n", scale, monoTimeout, parallel)
	for _, e := range exps {
		if !want["all"] && !want[e.name] {
			continue
		}
		ran++
		start := time.Now()
		t, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("experiment wall time %.1fs", time.Since(start).Seconds()))
		t.Render(out)
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", experiment)
	}
	return nil
}

// writeReport runs the segmentary pipeline on one profile and writes the
// machine-readable report.
func writeReport(r *benchkit.Runner, profile, path string) error {
	rep, err := r.Report(profile)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	b := rep.Exchange.Breakdown
	fmt.Fprintf(os.Stderr, "xrbench: wrote %s (profile %s, %d queries)\n", path, profile, len(rep.Queries))
	fmt.Fprintf(os.Stderr, "xrbench: exchange %.3fs (chase %.3fs: %d rounds, %d/%d rule evals/skips, %d triggers, %d new facts, %d probes, %d index builds)\n",
		rep.Exchange.Seconds, rep.Exchange.ChaseSeconds, b.ChaseRounds, b.ChaseRuleEvals, b.ChaseRuleSkips, b.ChaseTriggers, b.ChaseDeltaFacts, b.IndexProbes, b.IndexBuilds)
	return nil
}

// writeTrace exports the runner's span timeline as Chrome trace-event JSON.
func writeTrace(t *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xrbench: wrote trace timeline to %s\n", path)
	return nil
}

// runCompare diffs a baseline report against a current one (read from
// -against, or produced by a fresh run of -profile when -against is empty)
// and prints the per-metric deltas. It reports regressed=true when any
// time-like metric or counter grew beyond the threshold percentage.
func runCompare(basePath, againstPath string, scale float64, monoTimeout time.Duration, parallel int, profile string, threshold float64) (bool, error) {
	base, err := benchkit.LoadReport(basePath)
	if err != nil {
		return false, err
	}
	var cur *benchkit.BenchReport
	if againstPath != "" {
		if cur, err = benchkit.LoadReport(againstPath); err != nil {
			return false, err
		}
	} else {
		r, err := benchkit.NewRunner(scale, monoTimeout)
		if err != nil {
			return false, err
		}
		r.Parallelism = parallel
		r.Progress = os.Stderr
		if cur, err = r.Report(profile); err != nil {
			return false, err
		}
	}
	diff := benchkit.CompareReports(base, cur, threshold)
	diff.Render(os.Stdout)
	return diff.Regressed(), nil
}
