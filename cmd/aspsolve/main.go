// Command aspsolve is a standalone disjunctive answer-set solver over the
// engine in internal/asp, accepting a subset of clingo's input language.
//
// Usage:
//
//	aspsolve [-models N] [-cautious] [-brave] program.lp
//	echo "a | b. c :- a. c :- b." | aspsolve -models 0 -cautious
//
// -models N enumerates up to N stable models (0 = all). -cautious and
// -brave report the atoms true in every / some stable model.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/asp"
)

func main() {
	var (
		models   = flag.Int("models", 1, "number of stable models to enumerate (0 = all)")
		cautious = flag.Bool("cautious", false, "report atoms true in every stable model")
		brave    = flag.Bool("brave", false, "report atoms true in some stable model")
	)
	flag.Parse()
	if err := run(flag.Args(), *models, *cautious, *brave); err != nil {
		fmt.Fprintln(os.Stderr, "aspsolve:", err)
		os.Exit(1)
	}
}

func run(args []string, models int, cautious, brave bool) (err error) {
	// A malformed program must exit with a diagnostic, never a crash: any
	// panic escaping the parser/grounder/solver is converted to an error.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()
	var text []byte
	switch len(args) {
	case 0:
		text, err = io.ReadAll(os.Stdin)
	case 1:
		text, err = os.ReadFile(args[0])
	default:
		return fmt.Errorf("at most one program file")
	}
	if err != nil {
		return err
	}
	prog, err := asp.ParseProgram(string(text))
	if err != nil {
		return err
	}
	gp, err := prog.Ground()
	if err != nil {
		return err
	}
	fmt.Printf("%% grounded: %s\n", gp.Stats())

	allAtoms := make([]asp.AtomID, gp.NumAtoms())
	for i := range allAtoms {
		allAtoms[i] = asp.AtomID(i)
	}
	if cautious {
		kept, hasModel := asp.NewStableSolver(gp).Cautious(allAtoms)
		if !hasModel {
			fmt.Println("UNSATISFIABLE")
			return nil
		}
		fmt.Print("cautious:")
		printAtoms(gp, kept)
	}
	if brave {
		kept, hasModel := asp.NewStableSolver(gp).Brave(allAtoms)
		if !hasModel {
			fmt.Println("UNSATISFIABLE")
			return nil
		}
		fmt.Print("brave:")
		printAtoms(gp, kept)
	}
	if cautious || brave {
		return nil
	}

	solver := asp.NewStableSolver(gp)
	n := 0
	solver.Enumerate(func(m []bool) bool {
		n++
		fmt.Printf("Answer %d: %s\n", n, asp.FormatModel(gp, m))
		return models == 0 || n < models
	})
	if n == 0 {
		fmt.Println("UNSATISFIABLE")
	} else {
		fmt.Printf("SATISFIABLE (%d model(s) shown)\n", n)
	}
	return nil
}

func printAtoms(gp *asp.GroundProgram, atoms []asp.AtomID) {
	for _, a := range atoms {
		fmt.Printf(" %s", gp.Name(a))
	}
	fmt.Println()
}
