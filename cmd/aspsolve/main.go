// Command aspsolve is a standalone disjunctive answer-set solver over the
// engine in internal/asp, accepting a subset of clingo's input language.
//
// Usage:
//
//	aspsolve [-models N] [-cautious] [-brave] [-assume a,b,-c] [-stats] program.lp
//	echo "a | b. c :- a. c :- b." | aspsolve -models 0 -cautious
//
// -models N enumerates up to N stable models (0 = all). -cautious and
// -brave report the atoms true in every / some stable model. -assume pins
// ground atoms for the whole run ('-' prefix pins false), answering "what
// holds if ..." without editing the program; the atoms are CDCL
// assumptions, not facts, so an unsatisfiable pinning reports
// UNSATISFIABLE instead of deriving by contradiction. -stats prints the
// solver work counters after solving.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/asp"
)

// config carries the parsed command-line flags through run.
type config struct {
	models          int
	cautious, brave bool
	assume          string
	stats           bool
}

func main() {
	var cfg config
	flag.IntVar(&cfg.models, "models", 1, "number of stable models to enumerate (0 = all)")
	flag.BoolVar(&cfg.cautious, "cautious", false, "report atoms true in every stable model")
	flag.BoolVar(&cfg.brave, "brave", false, "report atoms true in some stable model")
	flag.StringVar(&cfg.assume, "assume", "", "comma-separated atoms to pin true for the run; prefix '-' to pin false (e.g. a,b,-c)")
	flag.BoolVar(&cfg.stats, "stats", false, "print solver work counters after solving")
	flag.Parse()
	if err := run(os.Stdout, flag.Args(), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "aspsolve:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string, cfg config) (err error) {
	// A malformed program must exit with a diagnostic, never a crash: any
	// panic escaping the parser/grounder/solver is converted to an error.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()
	var text []byte
	switch len(args) {
	case 0:
		text, err = io.ReadAll(os.Stdin)
	case 1:
		text, err = os.ReadFile(args[0])
	default:
		return fmt.Errorf("at most one program file")
	}
	if err != nil {
		return err
	}
	prog, err := asp.ParseProgram(string(text))
	if err != nil {
		return err
	}
	gp, err := prog.Ground()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%% grounded: %s\n", gp.Stats())

	assumps, err := parseAssumptions(gp, cfg.assume)
	if err != nil {
		return err
	}
	// Every solver the run creates shares the assumption set, and -stats
	// sums the work counters across all of them.
	var solvers []*asp.StableSolver
	newSolver := func() *asp.StableSolver {
		s := asp.NewStableSolver(gp)
		s.SetAssumptions(assumps)
		solvers = append(solvers, s)
		return s
	}
	err = solve(w, gp, cfg, newSolver)
	if err == nil && cfg.stats {
		printStats(w, solvers)
	}
	return err
}

// parseAssumptions resolves a comma-separated -assume spec against the
// ground program's atom table. A '-' prefix pins the atom false.
func parseAssumptions(gp *asp.GroundProgram, spec string) ([]asp.AtomAssumption, error) {
	if spec == "" {
		return nil, nil
	}
	var out []asp.AtomAssumption
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		want := true
		if strings.HasPrefix(tok, "-") {
			want = false
			tok = strings.TrimSpace(tok[1:])
		}
		id, ok := gp.LookupAtom(tok)
		if !ok {
			return nil, fmt.Errorf("-assume: atom %q does not occur in the ground program", tok)
		}
		out = append(out, asp.AtomAssumption{Atom: id, True: want})
	}
	return out, nil
}

func solve(w io.Writer, gp *asp.GroundProgram, cfg config, newSolver func() *asp.StableSolver) error {
	allAtoms := make([]asp.AtomID, gp.NumAtoms())
	for i := range allAtoms {
		allAtoms[i] = asp.AtomID(i)
	}
	if cfg.cautious {
		kept, hasModel := newSolver().Cautious(allAtoms)
		if !hasModel {
			fmt.Fprintln(w, "UNSATISFIABLE")
			return nil
		}
		fmt.Fprint(w, "cautious:")
		printAtoms(w, gp, kept)
	}
	if cfg.brave {
		kept, hasModel := newSolver().Brave(allAtoms)
		if !hasModel {
			fmt.Fprintln(w, "UNSATISFIABLE")
			return nil
		}
		fmt.Fprint(w, "brave:")
		printAtoms(w, gp, kept)
	}
	if cfg.cautious || cfg.brave {
		return nil
	}

	solver := newSolver()
	n := 0
	solver.Enumerate(func(m []bool) bool {
		n++
		fmt.Fprintf(w, "Answer %d: %s\n", n, asp.FormatModel(gp, m))
		return cfg.models == 0 || n < cfg.models
	})
	if n == 0 {
		fmt.Fprintln(w, "UNSATISFIABLE")
	} else {
		fmt.Fprintf(w, "SATISFIABLE (%d model(s) shown)\n", n)
	}
	return nil
}

// printStats sums the CDCL work counters over every solver the run
// created (cautious and brave each use their own) in clingo's statistics
// spirit: one comment line, stable field order.
func printStats(w io.Writer, solvers []*asp.StableSolver) {
	var decisions, conflicts, propagations, restarts, assumptionSolves, reductions, deleted int64
	for _, s := range solvers {
		decisions += s.SatDecisions()
		conflicts += s.SatConflicts()
		propagations += s.SatPropagations()
		restarts += s.SatRestarts()
		assumptionSolves += s.SatAssumptionSolves()
		reductions += s.SatReductions()
		deleted += s.SatClausesDeleted()
	}
	fmt.Fprintf(w, "%% stats: decisions=%d conflicts=%d propagations=%d restarts=%d assumption_solves=%d reductions=%d clauses_deleted=%d\n",
		decisions, conflicts, propagations, restarts, assumptionSolves, reductions, deleted)
}

func printAtoms(w io.Writer, gp *asp.GroundProgram, atoms []asp.AtomID) {
	for _, a := range atoms {
		fmt.Fprintf(w, " %s", gp.Name(a))
	}
	fmt.Fprintln(w)
}
