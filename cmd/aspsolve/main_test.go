package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the CLI golden file")

// testProgram exercises disjunction, derivation, and an even loop (two
// stable models per choice of d/e), so assumptions visibly prune the
// model space.
const testProgram = `
a | b.
c :- a.
c :- b.
d :- not e.
e :- not d.
`

// TestRunGolden runs the CLI end to end across flag combinations and
// compares the concatenated output against one golden file. The solver is
// deterministic, so the work counters printed by -stats are stable.
func TestRunGolden(t *testing.T) {
	prog := filepath.Join(t.TempDir(), "p.lp")
	if err := os.WriteFile(prog, []byte(testProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		name string
		cfg  config
	}{
		{"enumerate-all", config{models: 0}},
		{"cautious-brave", config{cautious: true, brave: true}},
		{"assume-a-d", config{models: 0, assume: "a,d"}},
		{"assume-not-c-unsat", config{models: 0, assume: "-c"}},
		{"assume-cautious-stats", config{cautious: true, assume: "a", stats: true}},
		{"enumerate-stats", config{models: 0, stats: true}},
	}
	var out bytes.Buffer
	for _, r := range runs {
		out.WriteString("== " + r.name + "\n")
		if err := run(&out, []string{prog}, r.cfg); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
	}
	golden := filepath.Join("testdata", "run.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("CLI output drifted from %s (rerun with -update after verifying):\n-- got --\n%s\n-- want --\n%s",
			golden, out.Bytes(), want)
	}
}

// TestAssumeErrors pins the -assume failure modes: unknown atoms are
// rejected with the atom named, and blank segments are tolerated.
func TestAssumeErrors(t *testing.T) {
	prog := filepath.Join(t.TempDir(), "p.lp")
	if err := os.WriteFile(prog, []byte(testProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(&out, []string{prog}, config{assume: "a,zzz"})
	if err == nil || !strings.Contains(err.Error(), `"zzz"`) {
		t.Fatalf("unknown assumed atom not rejected by name: %v", err)
	}
	out.Reset()
	if err := run(&out, []string{prog}, config{models: 0, assume: " a , , -e "}); err != nil {
		t.Fatalf("whitespace/blank segments rejected: %v", err)
	}
	if !strings.Contains(out.String(), "SATISFIABLE") {
		t.Fatalf("assume a,-e should be satisfiable:\n%s", out.String())
	}
	if strings.Count(out.String(), "Answer") != 1 {
		t.Fatalf("assume a,-e should leave exactly one stable model:\n%s", out.String())
	}
}
