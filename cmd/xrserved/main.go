// Command xrserved is the multi-tenant XR query daemon: it hosts many
// named exchanges (scenarios) in one process and serves XR-Certain /
// XR-Possible queries over HTTP, sharing warm signature-program caches
// across requests.
//
// Usage:
//
//	xrserved [-addr :8080] [flags]
//
// Lifecycle endpoints (see DESIGN.md §14 and README.md for bodies):
//
//	POST   /v1/scenarios              load a scenario (mapping + facts [+ queries])
//	GET    /v1/scenarios              list loaded scenarios
//	GET    /v1/scenarios/{name}       describe one scenario
//	DELETE /v1/scenarios/{name}       unload a scenario
//	POST   /v1/scenarios/{name}/query run a query (buffered JSON or NDJSON stream)
//	GET    /v1/scenarios/{name}/explain?query=Q[&tuple=a,b]
//	GET    /v1/scenarios/{name}/profile?top=N&sort=wall|conflicts|degraded
//	GET    /v1/store                  persistence status (data dir, tracked/dirty/quarantined)
//	GET    /v1/inflight               live requests (id, tenant, lanes, progress)
//	GET    /v1/slowlog                recent slow requests (record + span tree)
//	GET    /v1/requests/{id}/trace    span tree of a recently completed request
//	GET    /healthz                   liveness + drain state, uptime, version
//	GET    /metrics                   Prometheus exposition (also /metrics.json, /debug/pprof/)
//
// Every request carries an X-Request-Id (generated, or honored from the
// client), echoed on the response and stamped into the access log, span
// trees, and solver trace events — one ID correlates all of them.
//
// With -data-dir the daemon persists every loaded scenario to a
// crash-safe store and rebuilds the registry from it on boot; damaged
// snapshots are quarantined (never fatal) and reported in /healthz and
// GET /v1/store.
//
// On SIGINT/SIGTERM the daemon stops admitting requests (503), lets
// in-flight queries finish (bounded by -drain-timeout), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		maxQueries  = flag.Int("max-queries", 0, "max concurrent queries across all tenants (0 = 2x GOMAXPROCS)")
		lanes       = flag.Int("lanes", 0, "total solver lanes shared across tenants (0 = GOMAXPROCS)")
		queryLanes  = flag.Int("query-lanes", 0, "max solver lanes one query may lease (0 = all)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-query timeout")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "hard cap on requested per-query timeouts")
		sigTimeout  = flag.Duration("signature-timeout", 0, "default per-signature solve timeout (0 = none)")
		decisions   = flag.Int64("max-decisions", 0, "default per-signature decision budget (0 = unlimited)")
		conflicts   = flag.Int64("max-conflicts", 0, "default per-signature conflict budget (0 = unlimited)")
		maxTenants  = flag.Int("max-scenarios", 64, "max loaded scenarios")
		maxBody     = flag.Int64("max-body-bytes", 16<<20, "max request body size in bytes")
		drainWindow = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight queries on shutdown")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		slowQuery   = flag.Duration("slow-query", 0, "slow-request threshold: offenders are logged at WARN and captured in /v1/slowlog (0 = disabled)")
		slowlogSize = flag.Int("slowlog-size", 64, "max entries retained in the /v1/slowlog ring")
		traceRing   = flag.Int("trace-ring-size", 128, "max completed-request traces retained for /v1/requests/{id}/trace")
		dataDir     = flag.String("data-dir", "", "persist scenarios here and recover them on boot (empty = in-memory only)")
		quarKeep    = flag.Duration("quarantine-retention", 0, "prune quarantined store artifacts older than this at boot (0 = keep forever)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "xrserved: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xrserved: %v\n", err)
		os.Exit(2)
	}

	metrics := repro.NewMetrics()
	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir, store.Options{
			Logger:              logger,
			Metrics:             metrics,
			QuarantineRetention: *quarKeep,
		})
		if err != nil {
			logger.Error("opening data dir failed", "data_dir", *dataDir, "error", err.Error())
			os.Exit(1)
		}
	}

	srv := server.New(server.Config{
		MaxConcurrentQueries:    *maxQueries,
		TotalLanes:              *lanes,
		PerQueryLanes:           *queryLanes,
		DefaultTimeout:          *timeout,
		MaxTimeout:              *maxTimeout,
		DefaultSignatureTimeout: *sigTimeout,
		DefaultMaxDecisions:     *decisions,
		DefaultMaxConflicts:     *conflicts,
		MaxScenarios:            *maxTenants,
		MaxBodyBytes:            *maxBody,
		Metrics:                 metrics,
		Logger:                  logger,
		SlowQuery:               *slowQuery,
		SlowLogSize:             *slowlogSize,
		TraceRingSize:           *traceRing,
		Store:                   st,
	})

	// Recover persisted scenarios before the listener opens, so the first
	// request already sees the rebuilt registry. Damage never aborts boot:
	// corrupt or unloadable artifacts are quarantined and reported.
	if st != nil {
		sum, err := srv.RecoverFromStore()
		if err != nil {
			logger.Error("scenario recovery failed", "data_dir", *dataDir, "error", err.Error())
			os.Exit(1)
		}
		logger.Info("scenario recovery complete", "data_dir", *dataDir,
			"loaded", sum.Loaded, "adopted", sum.Adopted,
			"quarantined", sum.Quarantined, "skipped", sum.Skipped)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err.Error())
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Written after the listener is live: a script that waits for this
		// file can connect immediately.
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Error("write -addr-file failed", "path", *addrFile, "error", err.Error())
			os.Exit(1)
		}
	}
	logger.Info("listening", "addr", bound, "slow_query", slowQuery.String(), "log_format", *logFormat)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "drain_timeout", drainWindow.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainWindow)
		defer cancel()
		// Drain first: new requests get 503 while in-flight queries finish,
		// so Shutdown below closes an already-quiescent server.
		if err := srv.Drain(ctx); err != nil {
			logger.Warn("drain incomplete; forcing shutdown", "error", err.Error())
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("shutdown failed", "error", err.Error())
			os.Exit(1)
		}
		if st != nil {
			// After the drain: no handler can race the final flush.
			st.Close()
		}
		logger.Info("drained cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "error", err.Error())
			os.Exit(1)
		}
	}
}

// buildLogger maps the -log-format/-log-level flags to a slog.Logger on
// stderr. JSON is the machine-readable access-log format (one object per
// line); text is for humans at a terminal.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}
