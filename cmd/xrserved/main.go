// Command xrserved is the multi-tenant XR query daemon: it hosts many
// named exchanges (scenarios) in one process and serves XR-Certain /
// XR-Possible queries over HTTP, sharing warm signature-program caches
// across requests.
//
// Usage:
//
//	xrserved [-addr :8080] [flags]
//
// Lifecycle endpoints (see DESIGN.md §14 and README.md for bodies):
//
//	POST   /v1/scenarios              load a scenario (mapping + facts [+ queries])
//	GET    /v1/scenarios              list loaded scenarios
//	GET    /v1/scenarios/{name}       describe one scenario
//	DELETE /v1/scenarios/{name}       unload a scenario
//	POST   /v1/scenarios/{name}/query run a query (buffered JSON or NDJSON stream)
//	GET    /v1/scenarios/{name}/explain?query=Q[&tuple=a,b]
//	GET    /healthz                   liveness + drain state
//	GET    /metrics                   Prometheus exposition (also /metrics.json, /debug/pprof/)
//
// On SIGINT/SIGTERM the daemon stops admitting requests (503), lets
// in-flight queries finish (bounded by -drain-timeout), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		maxQueries  = flag.Int("max-queries", 0, "max concurrent queries across all tenants (0 = 2x GOMAXPROCS)")
		lanes       = flag.Int("lanes", 0, "total solver lanes shared across tenants (0 = GOMAXPROCS)")
		queryLanes  = flag.Int("query-lanes", 0, "max solver lanes one query may lease (0 = all)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-query timeout")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "hard cap on requested per-query timeouts")
		sigTimeout  = flag.Duration("signature-timeout", 0, "default per-signature solve timeout (0 = none)")
		decisions   = flag.Int64("max-decisions", 0, "default per-signature decision budget (0 = unlimited)")
		conflicts   = flag.Int64("max-conflicts", 0, "default per-signature conflict budget (0 = unlimited)")
		maxTenants  = flag.Int("max-scenarios", 64, "max loaded scenarios")
		maxBody     = flag.Int64("max-body-bytes", 16<<20, "max request body size in bytes")
		drainWindow = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight queries on shutdown")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "xrserved: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	log.SetPrefix("xrserved: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	srv := server.New(server.Config{
		MaxConcurrentQueries:    *maxQueries,
		TotalLanes:              *lanes,
		PerQueryLanes:           *queryLanes,
		DefaultTimeout:          *timeout,
		MaxTimeout:              *maxTimeout,
		DefaultSignatureTimeout: *sigTimeout,
		DefaultMaxDecisions:     *decisions,
		DefaultMaxConflicts:     *conflicts,
		MaxScenarios:            *maxTenants,
		MaxBodyBytes:            *maxBody,
		Metrics:                 repro.NewMetrics(),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Written after the listener is live: a script that waits for this
		// file can connect immediately.
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("write -addr-file: %v", err)
		}
	}
	log.Printf("listening on %s", bound)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		log.Printf("received %s; draining (up to %s)", sig, *drainWindow)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWindow)
		defer cancel()
		// Drain first: new requests get 503 while in-flight queries finish,
		// so Shutdown below closes an already-quiescent server.
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain: %v (forcing shutdown)", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
}
