package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestWithMetricsEndToEnd runs a query with a registry attached and checks
// the three expositions: the deterministic snapshot, the Prometheus text
// endpoint, and the expvar/JSON endpoints served by ServeMetrics.
func TestWithMetricsEndToEnd(t *testing.T) {
	sys, in, qs := setup(t)
	reg := NewMetrics()
	ex, err := sys.NewExchange(in, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ex.Answer(qs[0], WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters["xr_exchanges_total"] != 1 {
		t.Fatalf("exchanges = %d, want 1", snap.Counters["xr_exchanges_total"])
	}
	if got := snap.Counters["xr_programs_total"]; got != int64(ans.Programs) {
		t.Fatalf("programs = %d, want %d", got, ans.Programs)
	}
	if got := snap.Counters["xr_queries_total"]; got != 1 {
		t.Fatalf("queries = %d, want 1", got)
	}

	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	prom := get("/metrics")
	want := fmt.Sprintf("xr_programs_total %d", ans.Programs)
	if !strings.Contains(prom, want) {
		t.Fatalf("Prometheus exposition missing %q:\n%s", want, prom)
	}
	if !strings.Contains(prom, "# TYPE xr_query_seconds histogram") {
		t.Fatalf("Prometheus exposition missing histogram type line:\n%s", prom)
	}

	var fromJSON MetricsSnapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &fromJSON); err != nil {
		t.Fatal(err)
	}
	if fromJSON.Counters["xr_programs_total"] != int64(ans.Programs) {
		t.Fatalf("/metrics.json programs = %d, want %d",
			fromJSON.Counters["xr_programs_total"], ans.Programs)
	}

	if vars := get("/debug/vars"); !strings.Contains(vars, "xr_metrics") {
		t.Fatalf("expvar endpoint missing xr_metrics:\n%.400s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "profile") {
		t.Fatalf("pprof index unexpected:\n%.200s", idx)
	}
}
