package repro

import (
	"strings"
	"testing"
	"time"
)

const demoMapping = `
source Observed(transcript, exons).
source Curated(transcript, exons).
target Gene(transcript, exons).
tgd obs: Observed(t, e) -> Gene(t, e).
tgd cur: Curated(t, e) -> Gene(t, e).
egd key: Gene(t, e1) & Gene(t, e2) -> e1 = e2.
`

const demoFacts = `
Observed(tx1, 4).
Curated(tx1, 5).
Observed(tx2, 7).
Curated(tx2, 7).
`

const demoQueries = `
q(t, e) :- Gene(t, e).
anyGene() :- Gene(t, e).
`

func setup(t *testing.T) (*System, *Instance, []*Query) {
	t.Helper()
	sys, err := Load(demoMapping)
	if err != nil {
		t.Fatal(err)
	}
	in, err := sys.ParseFacts(demoFacts)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sys.ParseQueries(demoQueries)
	if err != nil {
		t.Fatal(err)
	}
	return sys, in, qs
}

func TestAPIEndToEnd(t *testing.T) {
	sys, in, qs := setup(t)
	if in.NumFacts() != 4 {
		t.Fatalf("facts = %d", in.NumFacts())
	}
	if sys.HasSolution(in) {
		t.Fatal("conflicting instance reported consistent")
	}
	if got := sys.MappingStats(); got != "2 s-t tgds, 0 target tgds, 1 egds" {
		t.Fatalf("stats = %q", got)
	}

	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Consistent() || ex.Violations() != 1 || ex.Clusters() != 1 || ex.SuspectFacts() != 2 {
		t.Fatalf("exchange: consistent=%v violations=%d clusters=%d suspect=%d",
			ex.Consistent(), ex.Violations(), ex.Clusters(), ex.SuspectFacts())
	}

	ans, err := ex.Answer(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	// tx1's exon count is disputed; tx2's is certain.
	if len(ans.Tuples) != 1 || ans.Tuples[0][0] != "tx2" || ans.Tuples[0][1] != "7" {
		t.Fatalf("answers = %v", ans.Tuples)
	}
	boolAns, err := ex.Answer(qs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(boolAns.Tuples) != 1 || len(boolAns.Tuples[0]) != 0 {
		t.Fatalf("boolean query answers = %v", boolAns.Tuples)
	}
}

func TestAPIEnginesAgree(t *testing.T) {
	sys, in, qs := setup(t)
	seg := make([]*Answers, len(qs))
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		seg[i], err = ex.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	mono, errs, err := sys.MonolithicAnswers(in, qs, WithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	brute, err := sys.BruteForceAnswers(in, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if errs[i] != nil {
			t.Fatalf("monolithic error: %v", errs[i])
		}
		if len(mono[i].Tuples) != len(seg[i].Tuples) || len(brute[i].Tuples) != len(seg[i].Tuples) {
			t.Fatalf("query %s: mono=%d seg=%d brute=%d",
				qs[i].Name(), len(mono[i].Tuples), len(seg[i].Tuples), len(brute[i].Tuples))
		}
	}
}

func TestAPISourceRepairs(t *testing.T) {
	sys, in, _ := setup(t)
	repairs, err := sys.SourceRepairs(in)
	if err != nil {
		t.Fatal(err)
	}
	// tx1: keep Observed(4) or Curated(5) → two repairs.
	if len(repairs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(repairs))
	}
	for _, r := range repairs {
		if r == "" {
			t.Fatal("empty repair rendering")
		}
	}
}

func TestAPIQueryAccessors(t *testing.T) {
	sys, _, qs := setup(t)
	_ = sys
	if qs[0].Name() != "q" || qs[0].Arity() != 2 {
		t.Fatalf("query accessors wrong: %s/%d", qs[0].Name(), qs[0].Arity())
	}
	if qs[0].String() == "" {
		t.Fatal("empty query rendering")
	}
}

func TestAPILoadErrors(t *testing.T) {
	if _, err := Load("nonsense"); err == nil {
		t.Fatal("bad mapping accepted")
	}
	sys, _, _ := setup(t)
	if _, err := sys.ParseFacts("Nope(1)."); err == nil {
		t.Fatal("bad facts accepted")
	}
	if _, err := sys.ParseQueries("q(x) :- Missing(x)."); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestAPIExchangeRepairsAndPossible(t *testing.T) {
	sys, in, qs := setup(t)
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}
	repairs, err := ex.Repairs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(repairs))
	}
	possible, err := ex.Possible(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Possible: (tx1,4), (tx1,5), (tx2,7) = 3 tuples.
	if len(possible.Tuples) != 3 {
		t.Fatalf("possible = %v", possible.Tuples)
	}
}

func TestAPIMaterialize(t *testing.T) {
	sys, err := Load(`
source R(x).
source P(x, y).
target S(x, y).
tgd R(x) -> S(x, z).
tgd P(x, y) -> S(x, y).
`)
	if err != nil {
		t.Fatal(err)
	}
	// R(a) alone: S(a, _N1) — the null is necessary.
	in1, _ := sys.ParseFacts(`R(a).`)
	out1, err := sys.Materialize(in1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out1, "_N") {
		t.Fatalf("materialization lost a necessary null:\n%s", out1)
	}
	// R(a) plus P(a,b): the null folds onto b — core has one fact, no nulls.
	in2, _ := sys.ParseFacts(`R(a). P(a, b).`)
	out2, err := sys.Materialize(in2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "_N") || strings.Count(out2, "S(") != 1 {
		t.Fatalf("core not computed:\n%s", out2)
	}
	// Inconsistent instances are rejected.
	sys2, _ := Load(demoMapping)
	bad, _ := sys2.ParseFacts(demoFacts)
	if _, err := sys2.Materialize(bad); err == nil {
		t.Fatal("materialized an inconsistent instance")
	}
}
