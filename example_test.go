package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Example demonstrates XR-Certain query answering over an inconsistent
// source instance: two pipelines disagree on tx1's exon count, so only
// tx2's row is a certain answer.
func Example() {
	sys, err := repro.Load(`
source Observed(transcript, exons).
source Curated(transcript, exons).
target Gene(transcript, exons).
tgd obs: Observed(t, e) -> Gene(t, e).
tgd cur: Curated(t, e) -> Gene(t, e).
egd key: Gene(t, e1) & Gene(t, e2) -> e1 = e2.
`)
	if err != nil {
		log.Fatal(err)
	}
	in, err := sys.ParseFacts(`
Observed(tx1, 4).  Curated(tx1, 5).
Observed(tx2, 7).  Curated(tx2, 7).
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistent:", sys.HasSolution(in))

	ex, err := sys.NewExchange(in)
	if err != nil {
		log.Fatal(err)
	}
	q, err := sys.ParseQueries(`gene(t, e) :- Gene(t, e).`)
	if err != nil {
		log.Fatal(err)
	}
	certain, err := ex.Answer(q[0])
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range certain.Tuples {
		fmt.Println("certain:", row[0], row[1])
	}
	possible, err := ex.Possible(q[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("possible tuples:", len(possible.Tuples))

	// Output:
	// consistent: false
	// certain: tx2 7
	// possible tuples: 3
}
