package repro

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks for the substrates. The macro-benchmarks run the same
// code paths as cmd/xrbench at a small scale (override with the BENCH_SCALE
// environment variable, e.g. BENCH_SCALE=0.1); absolute numbers are not
// comparable to the paper's clingo/MySQL testbed, but the shapes are — see
// EXPERIMENTS.md.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/asp"
	"repro/internal/benchkit"
	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/gavreduce"
	"repro/internal/genome"
	"repro/internal/logic"
	"repro/internal/telemetry"
	"repro/internal/xr"
)

func benchScale() float64 {
	if s := os.Getenv("BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.01
}

func newBenchRunner(b *testing.B) *benchkit.Runner {
	b.Helper()
	r, err := benchkit.NewRunner(benchScale(), 10*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func runTable(b *testing.B, f func() (*benchkit.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := f(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1SourceInstances regenerates the Table 1 source statistics.
func BenchmarkTable1SourceInstances(b *testing.B) {
	r := newBenchRunner(b)
	runTable(b, r.Table1)
}

// BenchmarkTable2Profiles regenerates the Table 2 instance grid (the first
// iteration pays the exchange phases; later iterations are cached reads, so
// use -benchtime=1x for the honest cost).
func BenchmarkTable2Profiles(b *testing.B) {
	r := newBenchRunner(b)
	runTable(b, r.Table2)
}

// BenchmarkTable3QueryCounts regenerates the Table 3 answer counts on L3.
func BenchmarkTable3QueryCounts(b *testing.B) {
	r := newBenchRunner(b)
	if _, err := r.Table2(); err != nil { // warm the exchanges
		b.Fatal(err)
	}
	b.ResetTimer()
	runTable(b, r.Table3)
}

// BenchmarkTable4ExchangePhase measures one exchange phase on a fresh L3
// instance per iteration (the Table 4 row).
func BenchmarkTable4ExchangePhase(b *testing.B) {
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	p, _ := genome.ProfileByName("L3", benchScale())
	src := genome.Generate(w, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xr.NewExchange(w.M, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3SuspectRate regenerates Figure 3 (left): the monolithic
// query grid over L0/L3/L9/L20. Use -benchtime=1x; this is a macro-run.
func BenchmarkFig3SuspectRate(b *testing.B) {
	r := newBenchRunner(b)
	runTable(b, r.Figure3Suspect)
}

// BenchmarkFig3InstanceSize regenerates Figure 3 (right): monolithic over
// S3/M3/L3/F3.
func BenchmarkFig3InstanceSize(b *testing.B) {
	r := newBenchRunner(b)
	runTable(b, r.Figure3Size)
}

// BenchmarkFig4SuspectRate regenerates Figure 4 (left): the segmentary
// query grid over L0/L3/L9/L20.
func BenchmarkFig4SuspectRate(b *testing.B) {
	r := newBenchRunner(b)
	runTable(b, r.Figure4Suspect)
}

// BenchmarkFig4InstanceSize regenerates Figure 4 (right): segmentary over
// S3/M3/L3/F3.
func BenchmarkFig4InstanceSize(b *testing.B) {
	r := newBenchRunner(b)
	runTable(b, r.Figure4Size)
}

// BenchmarkReductionBlowup measures the GLAV→GAV compilation of the genome
// mapping (paper §5.2: 18.7s for 33 tgds + 26 egds → 339 tgds + 67 egds).
func BenchmarkReductionBlowup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := genome.NewWorld()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gavreduce.Reduce(w.M); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeedupHeadline runs the headline monolithic-vs-segmentary
// comparison on S3 and M3 (use cmd/xrbench -experiment speedup for the
// full size axis).
func BenchmarkSpeedupHeadline(b *testing.B) {
	r := newBenchRunner(b)
	runTable(b, func() (*benchkit.Table, error) {
		return r.Speedup([]string{"S3", "M3"})
	})
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------

// BenchmarkChase measures both chase drivers across the S/M/L genome size
// axis: the provenance-recording GAV chase of the reduced mapping under the
// default semi-naive strategy and under the retained naive fixpoint (their
// ratio is the semi-naive speedup), and the native GLAV chase. Scale with
// BENCH_SCALE=0.1 for the numbers quoted in the README.
func BenchmarkChase(b *testing.B) {
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	red, err := gavreduce.Reduce(w.M)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"S3", "M3", "L3"} {
		p, _ := genome.ProfileByName(name, benchScale())
		src := genome.Generate(w, p)
		b.Run("provenance/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chase.GAV(red.M, src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("provenance-naive/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chase.GAVWithOptions(red.M, src, chase.Options{Strategy: chase.StrategyNaive}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("native/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chase.Native(w.M, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGAVChaseProvenance measures the provenance-recording GAV chase
// of the reduced genome mapping on an M3-sized instance.
func BenchmarkGAVChaseProvenance(b *testing.B) {
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	red, err := gavreduce.Reduce(w.M)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := genome.ProfileByName("M3", benchScale())
	src := genome.Generate(w, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chase.GAV(red.M, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeChase measures the standard GLAV chase (with nulls and egd
// unification) on a small consistent instance.
func BenchmarkNativeChase(b *testing.B) {
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	src := genome.Generate(w, genome.Profile{Name: "bench", Transcripts: 30, SuspectRate: 0, Seed: 11})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chase.Native(w.M, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentaryQuery measures one segmentary query (ep2) against a
// warm exchange.
func BenchmarkSegmentaryQuery(b *testing.B) {
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	p, _ := genome.ProfileByName("L3", benchScale())
	src := genome.Generate(w, p)
	ex, err := xr.NewExchange(w.M, src)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := genome.Queries(w)
	if err != nil {
		b.Fatal(err)
	}
	var ep2 = qs[1]
	if ep2.Name != "ep2" {
		b.Fatal("query order changed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Answer(ep2); err != nil {
			b.Fatal(err)
		}
	}
}

// warmGenomeQuery builds a warm exchange for the given profile and returns
// it with one named query (cache warmed, so iterations measure solving).
func warmGenomeQuery(b *testing.B, profile, query string) (*xr.Exchange, *logic.UCQ) {
	b.Helper()
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	p, ok := genome.ProfileByName(profile, benchScale())
	if !ok {
		b.Fatalf("unknown profile %s", profile)
	}
	src := genome.Generate(w, p)
	ex, err := xr.NewExchange(w.M, src)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := genome.Queries(w)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range qs {
		if q.Name == query {
			if _, err := ex.Answer(q); err != nil { // warm the program cache
				b.Fatal(err)
			}
			return ex, q
		}
	}
	b.Fatalf("unknown query %s", query)
	return nil, nil
}

// BenchmarkSegmentaryParallelism compares the sequential query phase with a
// saturated worker pool on L20/ep2 (the most cluster-rich profile: at the
// default scale each call solves ~64 per-signature programs, one per
// violation cluster). Both sub-benchmarks share a warm exchange, so the
// comparison isolates solving from grounding.
func BenchmarkSegmentaryParallelism(b *testing.B) {
	ex, ep2 := warmGenomeQuery(b, "L20", "ep2")
	for _, p := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ex.AnswerOpts(ep2, xr.Options{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSignatureCache compares a query against a cold exchange (every
// signature program ground from scratch) with the same query against a warm
// one (every program served from the cache and cloned).
func BenchmarkSignatureCache(b *testing.B) {
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	p, _ := genome.ProfileByName("L20", benchScale())
	src := genome.Generate(w, p)
	qs, err := genome.Queries(w)
	if err != nil {
		b.Fatal(err)
	}
	ep2 := qs[1]
	if ep2.Name != "ep2" {
		b.Fatal("query order changed")
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ex, err := xr.NewExchange(w.M, src)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := ex.Answer(ep2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ex, err := xr.NewExchange(w.M, src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ex.Answer(ep2); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Answer(ep2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTelemetryOverhead measures the warm-cache query path with
// telemetry disabled (nil registry: every meter update is a nil-receiver
// no-op) against the same path with a live registry. The disabled variant is
// the baseline the rest of the suite runs under; it must stay within noise
// of pre-telemetry performance, and the enabled variant bounds the cost of
// turning metrics on.
func BenchmarkTelemetryOverhead(b *testing.B) {
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	p, _ := genome.ProfileByName("L20", benchScale())
	src := genome.Generate(w, p)
	qs, err := genome.Queries(w)
	if err != nil {
		b.Fatal(err)
	}
	ep2 := qs[1]
	run := func(b *testing.B, reg *telemetry.Registry) {
		ex, err := xr.NewExchangeOpts(w.M, src, xr.Options{Metrics: reg})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ex.Answer(ep2); err != nil { // warm the program cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Answer(ep2); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, telemetry.NewRegistry()) })
}

// BenchmarkStableSolver3Coloring measures stable-model enumeration on a
// disjunctive 3-coloring program (generic disjunctive path).
func BenchmarkStableSolver3Coloring(b *testing.B) {
	sp := &asp.SymProgram{}
	// A ring of 12 nodes.
	const n = 12
	for i := 0; i < n; i++ {
		sp.AddFact("node", nodeName(i))
		sp.AddFact("edge", nodeName(i), nodeName((i+1)%n))
	}
	sp.AddRule(asp.SymRule{
		Head: []asp.SymAtom{
			asp.SA("col", asp.SV("X"), asp.SC("r")),
			asp.SA("col", asp.SV("X"), asp.SC("g")),
			asp.SA("col", asp.SV("X"), asp.SC("b")),
		},
		Pos: []asp.SymAtom{asp.SA("node", asp.SV("X"))},
	})
	sp.AddRule(asp.SymRule{
		Pos: []asp.SymAtom{
			asp.SA("edge", asp.SV("X"), asp.SV("Y")),
			asp.SA("col", asp.SV("X"), asp.SV("C")),
			asp.SA("col", asp.SV("Y"), asp.SV("C")),
		},
	})
	gp, err := sp.Ground()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := asp.NewStableSolver(gp)
		if !s.HasStableModel() {
			b.Fatal("ring is 3-colorable")
		}
	}
}

func nodeName(i int) string { return "v" + strconv.Itoa(i) }

// BenchmarkCQJoin measures the conjunctive-query evaluator on the ep3 join
// over a chased M3 instance.
func BenchmarkCQJoin(b *testing.B) {
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	red, err := gavreduce.Reduce(w.M)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := genome.ProfileByName("M3", benchScale())
	src := genome.Generate(w, p)
	prov, err := chase.GAV(red.M, src)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := genome.Queries(w)
	if err != nil {
		b.Fatal(err)
	}
	rq, err := red.RewriteQuery(qs[2]) // ep3
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cq.EvalUCQ(rq, prov.Instance)
	}
}

// BenchmarkBruteForceRepairs measures exhaustive repair enumeration on a
// 12-fact conflicting instance (the validation oracle).
func BenchmarkBruteForceRepairs(b *testing.B) {
	sys, err := Load(`
source A(x, v).
source B(x, v).
target T(x, v).
tgd A(x, v) -> T(x, v).
tgd B(x, v) -> T(x, v).
egd T(x, v) & T(x, w) -> v = w.
`)
	if err != nil {
		b.Fatal(err)
	}
	in, err := sys.ParseFacts(`
A(t1, 1). B(t1, 2).
A(t2, 3). B(t2, 4).
A(t3, 5). B(t3, 6).
A(t4, 7). B(t4, 7).
A(t5, 8). B(t5, 9).
A(t6, 1). B(t6, 1).
`)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := sys.ParseQueries(`q(x, v) :- T(x, v).`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.BruteForceAnswers(in, qs); err != nil {
			b.Fatal(err)
		}
	}
}
