package repro

import (
	"fmt"
	"strings"

	"repro/internal/chase"
	"repro/internal/explain"
	"repro/internal/symtab"
	"repro/internal/xr"
)

// Explanation is the rendered account of why one candidate tuple was
// accepted, rejected, or left unknown by an XR-Certain (or XR-Possible)
// query. Text is a deterministic multi-line block: byte-identical across
// runs, at any WithParallelism setting, and across signature-cache states.
// Signature uses the same key vocabulary as TraceEvent.SignatureKey and
// SignatureError.Signature, so explanations cross-reference -trace output
// directly. See DESIGN.md §13 for the witness-extraction argument.
//
// Explanation is part of the JSON wire format served by cmd/xrserved: the
// snake_case field names are a compatibility contract (see DESIGN.md §14).
type Explanation struct {
	Query string   `json:"query"`
	Tuple []string `json:"tuple"`
	// Verdict is one of "safe", "certain", "rejected", "possible",
	// "impossible", "unknown", "no-support".
	Verdict string `json:"verdict"`
	// Signature is the canonical cluster-signature key ("2,7"); empty for
	// tuples that never reached a signature program.
	Signature string `json:"signature,omitempty"`
	// Cause classifies an "unknown" verdict: "budget", "timeout", "panic",
	// "canceled", or "error". Empty otherwise.
	Cause string `json:"cause,omitempty"`
	// Retries counts budget-doubling retries before the signature degraded.
	Retries int `json:"retries,omitempty"`
	// Text is the rendered explanation, including the counterexample
	// exchange-repair for rejected tuples (sources dropped, suspect facts
	// kept, target facts lost).
	Text string `json:"text"`
}

// renderer builds the exchange's deterministic explanation renderer over
// the system's symbol tables.
func (e *Exchange) renderer() *explain.Renderer {
	return &explain.Renderer{
		FormatFact: func(f chase.FactID) string {
			return e.ex.Prov.Fact(f).String(e.sys.w.Cat, e.sys.w.U)
		},
		FormatValue: func(v symtab.Value) string { return e.sys.w.U.Name(v) },
	}
}

// attachExplanations renders the engine-level explanations (if any) into
// the public Answers.
func (e *Exchange) attachExplanations(a *Answers, res *xr.Result) {
	if len(res.Explanations) == 0 {
		return
	}
	r := e.renderer()
	a.Explanations = make([]Explanation, 0, len(res.Explanations))
	for _, xe := range res.Explanations {
		a.Explanations = append(a.Explanations, e.renderExplanation(r, xe))
	}
}

func (e *Exchange) renderExplanation(r *explain.Renderer, xe *explain.Explanation) Explanation {
	tuple := make([]string, len(xe.Tuple))
	for i, v := range xe.Tuple {
		tuple[i] = e.sys.w.U.Name(v)
	}
	return Explanation{
		Query:     xe.Query,
		Tuple:     tuple,
		Verdict:   string(xe.Verdict),
		Signature: xe.Signature,
		Cause:     xe.Cause,
		Retries:   xe.Retries,
		Text:      r.Render(xe),
	}
}

// Why explains one specific tuple of q under XR-Certain semantics: why it
// is (or is not) an XR-certain answer. args are the tuple's constants, one
// per query head position. For a rejected tuple the explanation contains a
// concrete counterexample exchange-repair; a tuple that is not even a
// candidate (no support in the quasi-solution, or constants the instance
// never mentions) yields the "no-support" verdict. Accepts the same
// options as Answer.
func (e *Exchange) Why(q *Query, args []string, opts ...Option) (*Explanation, error) {
	if len(args) != q.Arity() {
		return nil, fmt.Errorf("repro: query %s has arity %d, got %d arguments", q.Name(), q.Arity(), len(args))
	}
	tuple := make([]symtab.Value, len(args))
	for i, s := range args {
		v, ok := e.sys.w.U.Lookup(s)
		if !ok {
			// The constant is foreign to the instance: the tuple cannot be a
			// candidate. Mirror the renderer's no-support wording.
			return &Explanation{
				Query:   q.Name(),
				Tuple:   append([]string(nil), args...),
				Verdict: string(explain.NoSupport),
				Text: fmt.Sprintf("%s(%s): %s — no support in the quasi-solution; not a candidate answer\n",
					q.Name(), strings.Join(args, ", "), explain.NoSupport),
			}, nil
		}
		tuple[i] = v
	}
	o, err := buildOptions("Why", scopeQuery, opts)
	if err != nil {
		return nil, err
	}
	xe, err := e.ex.ExplainTuple(q.q, tuple, o)
	if err != nil {
		return nil, err
	}
	out := e.renderExplanation(e.renderer(), xe)
	return &out, nil
}
