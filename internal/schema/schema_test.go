package schema

import "testing"

func TestCatalogAdd(t *testing.T) {
	c := NewCatalog()
	r, err := c.Add("Person", 2, "id", "name")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "Person" || r.Arity != 2 || r.ID != 0 {
		t.Fatalf("unexpected relation %+v", r)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	got, ok := c.ByName("Person")
	if !ok || got != r {
		t.Fatal("ByName lookup failed")
	}
	if c.ByID(r.ID) != r {
		t.Fatal("ByID lookup failed")
	}
}

func TestCatalogDuplicateName(t *testing.T) {
	c := NewCatalog()
	c.MustAdd("R", 1)
	if _, err := c.Add("R", 2); err == nil {
		t.Fatal("duplicate declaration accepted")
	}
}

func TestCatalogBadArity(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Add("R", -1); err == nil {
		t.Fatal("negative arity accepted")
	}
	if _, err := c.Add("S", 2, "only-one"); err == nil {
		t.Fatal("attribute count mismatch accepted")
	}
}

func TestSchemaMembership(t *testing.T) {
	c := NewCatalog()
	r := c.MustAdd("R", 1)
	s := c.MustAdd("S", 1)
	u := c.MustAdd("U", 1)

	src := NewSchema(r, s)
	tgt := NewSchema(u)

	if !src.Contains(r.ID) || !src.Contains(s.ID) || src.Contains(u.ID) {
		t.Fatal("membership wrong")
	}
	if !src.Disjoint(tgt) {
		t.Fatal("disjoint schemas reported as overlapping")
	}
	tgt.Add(r)
	if src.Disjoint(tgt) {
		t.Fatal("overlapping schemas reported disjoint")
	}
	if src.Len() != 2 {
		t.Fatalf("Len = %d", src.Len())
	}
	ids := src.IDs()
	if len(ids) != 2 || ids[0] != r.ID || ids[1] != s.ID {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestMustAddPanics(t *testing.T) {
	c := NewCatalog()
	c.MustAdd("R", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd on duplicate did not panic")
		}
	}()
	c.MustAdd("R", 1)
}
