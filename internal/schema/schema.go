// Package schema defines relation symbols and schemas (finite sets of
// relation symbols, each with a designated arity), following the paper's
// preliminaries. Source and target schemas of a mapping are disjoint
// sub-schemas of one shared Catalog so that relation identifiers are unique
// across both.
package schema

import (
	"fmt"
	"sort"
)

// RelID identifies a relation symbol within a Catalog. IDs are dense and
// start at 0, so they index slices directly.
type RelID int32

// Relation is a relation symbol: a name, an arity, and optional attribute
// names (used only for display; semantics are positional).
type Relation struct {
	ID    RelID
	Name  string
	Arity int
	Attrs []string // len == Arity when present; nil otherwise
}

// ArityError reports a tuple or term list whose length does not match its
// relation's declared arity. It is returned by the error-returning
// constructors (instance.Insert, logic.MakeAtom) and carried by the panics
// of their Must-style wrappers, so callers handling untrusted input can
// match it with errors.As.
type ArityError struct {
	Rel  string // relation name
	Want int    // declared arity
	Got  int    // supplied argument count
}

func (e *ArityError) Error() string {
	return fmt.Sprintf("%s expects %d arguments, got %d", e.Rel, e.Want, e.Got)
}

// Catalog owns every relation symbol in play: source relations, target
// relations, and any auxiliary relations introduced by reductions.
// The zero value is not usable; call NewCatalog.
type Catalog struct {
	rels   []*Relation
	byName map[string]*Relation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Relation)}
}

// Add declares a new relation symbol. It returns an error if the name is
// already declared (with any arity) or the arity is negative.
func (c *Catalog) Add(name string, arity int, attrs ...string) (*Relation, error) {
	if arity < 0 {
		return nil, fmt.Errorf("schema: relation %s has negative arity %d", name, arity)
	}
	if _, ok := c.byName[name]; ok {
		return nil, fmt.Errorf("schema: relation %s already declared", name)
	}
	if len(attrs) > 0 && len(attrs) != arity {
		return nil, fmt.Errorf("schema: relation %s has %d attribute names for arity %d", name, len(attrs), arity)
	}
	r := &Relation{ID: RelID(len(c.rels)), Name: name, Arity: arity, Attrs: attrs}
	c.rels = append(c.rels, r)
	c.byName[name] = r
	return r, nil
}

// MustAdd is Add but panics on error; intended for static setup code.
func (c *Catalog) MustAdd(name string, arity int, attrs ...string) *Relation {
	r, err := c.Add(name, arity, attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// ByName returns the relation with the given name, if declared.
func (c *Catalog) ByName(name string) (*Relation, bool) {
	r, ok := c.byName[name]
	return r, ok
}

// ByID returns the relation with the given ID. It panics on an ID not issued
// by this catalog.
func (c *Catalog) ByID(id RelID) *Relation {
	return c.rels[id]
}

// Len returns the number of declared relations.
func (c *Catalog) Len() int { return len(c.rels) }

// Relations returns all declared relations in declaration order.
// The returned slice must not be modified.
func (c *Catalog) Relations() []*Relation { return c.rels }

// Schema is a set of relation symbols drawn from one Catalog.
type Schema struct {
	ids map[RelID]bool
}

// NewSchema returns a schema containing the given relations.
func NewSchema(rels ...*Relation) *Schema {
	s := &Schema{ids: make(map[RelID]bool, len(rels))}
	for _, r := range rels {
		s.ids[r.ID] = true
	}
	return s
}

// Add inserts a relation into the schema.
func (s *Schema) Add(r *Relation) { s.ids[r.ID] = true }

// Contains reports whether the schema contains the relation with the given ID.
func (s *Schema) Contains(id RelID) bool { return s.ids[id] }

// Len returns the number of relations in the schema.
func (s *Schema) Len() int { return len(s.ids) }

// IDs returns the relation IDs in the schema in ascending order.
func (s *Schema) IDs() []RelID {
	out := make([]RelID, 0, len(s.ids))
	for id := range s.ids {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Disjoint reports whether s and t share no relations.
func (s *Schema) Disjoint(t *Schema) bool {
	for id := range s.ids {
		if t.ids[id] {
			return false
		}
	}
	return true
}
