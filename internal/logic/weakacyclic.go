package logic

import (
	"repro/internal/schema"
)

// position identifies (relation, argument index).
type position struct {
	rel schema.RelID
	idx int
}

// depEdge is an edge of the position dependency graph.
type depEdge struct {
	to      position
	special bool
}

// WeaklyAcyclic reports whether the given set of tgds is weakly acyclic,
// per Fagin, Kolaitis, Miller, Popa (2005): build the position dependency
// graph and check that no cycle passes through a special edge.
//
// For every tgd and every universally quantified variable x occurring in the
// body at position p:
//   - for every occurrence of x in the head at position q, add a regular
//     edge p → q;
//   - if x occurs in the head, then for every existentially quantified
//     variable y occurring in the head at position q', add a special edge
//     p → q'.
func WeaklyAcyclic(tgds []*TGD) bool {
	edges := make(map[position][]depEdge)
	nodes := make(map[position]bool)

	addEdge := func(from, to position, special bool) {
		edges[from] = append(edges[from], depEdge{to: to, special: special})
		nodes[from] = true
		nodes[to] = true
	}

	for _, d := range tgds {
		bodyPos := make(map[string][]position) // var -> body positions
		for _, a := range d.Body {
			for i, t := range a.Terms {
				if t.IsVar() {
					bodyPos[t.Var] = append(bodyPos[t.Var], position{a.Rel, i})
				}
			}
		}
		headPos := make(map[string][]position) // var -> head positions
		for _, a := range d.Head {
			for i, t := range a.Terms {
				if t.IsVar() {
					headPos[t.Var] = append(headPos[t.Var], position{a.Rel, i})
				}
			}
		}
		exist := make(map[string]bool)
		for _, y := range d.ExistentialVars() {
			exist[y] = true
		}
		for x, ps := range bodyPos {
			hs, inHead := headPos[x]
			if !inHead {
				continue
			}
			for _, p := range ps {
				for _, q := range hs {
					addEdge(p, q, false)
				}
				for y, qs := range headPos {
					if !exist[y] {
						continue
					}
					for _, q := range qs {
						addEdge(p, q, true)
					}
				}
			}
		}
	}

	// Tarjan SCC; weak acyclicity fails iff some special edge has both
	// endpoints in the same strongly connected component.
	comp := sccs(nodes, edges)
	for from, es := range edges {
		for _, e := range es {
			if e.special && comp[from] == comp[e.to] {
				return false
			}
		}
	}
	return true
}

// sccs computes strongly connected components (iterative Tarjan) and returns
// a component id per node.
func sccs(nodes map[position]bool, edges map[position][]depEdge) map[position]int {
	index := make(map[position]int)
	low := make(map[position]int)
	onStack := make(map[position]bool)
	comp := make(map[position]int)
	var stack []position
	next, ncomp := 0, 0

	type frame struct {
		node position
		ei   int
	}
	for start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		var call []frame
		call = append(call, frame{node: start})
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			es := edges[f.node]
			advanced := false
			for f.ei < len(es) {
				w := es[f.ei].to
				f.ei++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && low[f.node] > index[w] {
					low[f.node] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.node finished
			v := f.node
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].node
				if low[parent] > low[v] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}
