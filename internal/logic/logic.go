// Package logic provides the first-order building blocks shared by schema
// mappings, queries, and the chase: terms, atoms, tuple-generating
// dependencies (tgds), equality-generating dependencies (egds), and unions
// of conjunctive queries (UCQs).
package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/symtab"
)

// Term is either a variable (Var != "") or a constant value.
type Term struct {
	Var string       // variable name; empty for constants
	Val symtab.Value // constant value when Var == ""
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v symtab.Value) Term { return Term{Val: v} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) render(u *symtab.Universe) string {
	if t.IsVar() {
		return t.Var
	}
	if u == nil {
		return fmt.Sprintf("#%d", t.Val)
	}
	return u.Name(t.Val)
}

// Atom is a relational atom R(t1, ..., tk).
type Atom struct {
	Rel   schema.RelID
	Terms []Term
}

// MakeAtom builds an atom, returning a *schema.ArityError (wrapped) when
// the term count does not match the relation's declared arity. Use it when
// the terms come from untrusted input.
func MakeAtom(cat *schema.Catalog, rel *schema.Relation, terms ...Term) (Atom, error) {
	if len(terms) != rel.Arity {
		return Atom{}, fmt.Errorf("logic: %w", &schema.ArityError{Rel: rel.Name, Want: rel.Arity, Got: len(terms)})
	}
	return Atom{Rel: rel.ID, Terms: terms}, nil
}

// NewAtom is the Must-style form of MakeAtom for static setup code: it
// panics with a *schema.ArityError on mismatch.
func NewAtom(cat *schema.Catalog, rel *schema.Relation, terms ...Term) Atom {
	a, err := MakeAtom(cat, rel, terms...)
	if err != nil {
		panic(err)
	}
	return a
}

// Vars appends the variable names occurring in the atom to dst, in order of
// occurrence, without de-duplication.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Terms {
		if t.IsVar() {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// String renders the atom.
func (a Atom) String(cat *schema.Catalog, u *symtab.Universe) string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.render(u)
	}
	return fmt.Sprintf("%s(%s)", cat.ByID(a.Rel).Name, strings.Join(parts, ","))
}

// varSet collects the distinct variables of a list of atoms.
func varSet(atoms []Atom) map[string]bool {
	s := make(map[string]bool)
	for _, a := range atoms {
		for _, t := range a.Terms {
			if t.IsVar() {
				s[t.Var] = true
			}
		}
	}
	return s
}

// TGD is a tuple-generating dependency
// ∀x (Body → ∃y Head), where y are the head variables not in the body.
type TGD struct {
	Body []Atom
	Head []Atom
	// Label is an optional name for diagnostics.
	Label string
}

// ExistentialVars returns the head variables that do not occur in the body,
// sorted for determinism.
func (d *TGD) ExistentialVars() []string {
	bodyVars := varSet(d.Body)
	seen := make(map[string]bool)
	var out []string
	for _, a := range d.Head {
		for _, t := range a.Terms {
			if t.IsVar() && !bodyVars[t.Var] && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	sort.Strings(out)
	return out
}

// FrontierVars returns the body variables that occur in the head, sorted.
func (d *TGD) FrontierVars() []string {
	bodyVars := varSet(d.Body)
	headVars := varSet(d.Head)
	var out []string
	for v := range headVars {
		if bodyVars[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// IsGAV reports whether the tgd is a GAV constraint: a single head atom and
// no existential variables.
func (d *TGD) IsGAV() bool {
	return len(d.Head) == 1 && len(d.ExistentialVars()) == 0
}

// IsLAV reports whether the tgd is a LAV constraint: a single body atom.
func (d *TGD) IsLAV() bool { return len(d.Body) == 1 }

// IsFull reports whether the tgd has no existential variables.
func (d *TGD) IsFull() bool { return len(d.ExistentialVars()) == 0 }

// Validate checks structural sanity: nonempty body and head, and all head
// atoms' constant-free positions fine (nothing else to check structurally).
func (d *TGD) Validate() error {
	if len(d.Body) == 0 {
		return fmt.Errorf("tgd %s: empty body", d.Label)
	}
	if len(d.Head) == 0 {
		return fmt.Errorf("tgd %s: empty head", d.Label)
	}
	return nil
}

// String renders the tgd as "body -> head".
func (d *TGD) String(cat *schema.Catalog, u *symtab.Universe) string {
	return atomsString(d.Body, cat, u) + " -> " + atomsString(d.Head, cat, u)
}

// EGD is an equality-generating dependency ∀x (Body → L = R).
// L and R are usually variables of the body; grounded egds (Section 6 of the
// paper) may carry constants.
type EGD struct {
	Body  []Atom
	L, R  Term
	Label string
}

// Validate checks that variable sides occur in the body.
func (d *EGD) Validate() error {
	if len(d.Body) == 0 {
		return fmt.Errorf("egd %s: empty body", d.Label)
	}
	vars := varSet(d.Body)
	for _, t := range []Term{d.L, d.R} {
		if t.IsVar() && !vars[t.Var] {
			return fmt.Errorf("egd %s: equality variable %s not in body", d.Label, t.Var)
		}
	}
	return nil
}

// String renders the egd as "body -> l = r".
func (d *EGD) String(cat *schema.Catalog, u *symtab.Universe) string {
	return fmt.Sprintf("%s -> %s = %s", atomsString(d.Body, cat, u), d.L.render(u), d.R.render(u))
}

func atomsString(atoms []Atom, cat *schema.Catalog, u *symtab.Universe) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String(cat, u)
	}
	return strings.Join(parts, " & ")
}

// CQ is a conjunctive query head(t) :- body.
type CQ struct {
	Head []Term // answer tuple: variables or constants
	Body []Atom
}

// Validate checks that every head variable occurs in the body (safety).
func (q *CQ) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("cq: empty body")
	}
	vars := varSet(q.Body)
	for _, t := range q.Head {
		if t.IsVar() && !vars[t.Var] {
			return fmt.Errorf("cq: head variable %s not in body", t.Var)
		}
	}
	return nil
}

// UCQ is a union of conjunctive queries with a shared name and arity.
type UCQ struct {
	Name    string
	Arity   int
	Clauses []CQ
}

// Validate checks all clauses share the arity and are safe.
func (q *UCQ) Validate() error {
	if len(q.Clauses) == 0 {
		return fmt.Errorf("ucq %s: no clauses", q.Name)
	}
	for i := range q.Clauses {
		c := &q.Clauses[i]
		if len(c.Head) != q.Arity {
			return fmt.Errorf("ucq %s: clause %d has arity %d, want %d", q.Name, i, len(c.Head), q.Arity)
		}
		if err := c.Validate(); err != nil {
			return fmt.Errorf("ucq %s clause %d: %w", q.Name, i, err)
		}
	}
	return nil
}

// String renders the UCQ in Datalog style, one clause per line.
func (q *UCQ) String(cat *schema.Catalog, u *symtab.Universe) string {
	var lines []string
	for i := range q.Clauses {
		c := &q.Clauses[i]
		heads := make([]string, len(c.Head))
		for j, t := range c.Head {
			heads[j] = t.render(u)
		}
		bodies := make([]string, len(c.Body))
		for j, a := range c.Body {
			bodies[j] = a.String(cat, u)
		}
		lines = append(lines, fmt.Sprintf("%s(%s) :- %s", q.Name, strings.Join(heads, ","), strings.Join(bodies, ", ")))
	}
	return strings.Join(lines, "\n")
}
