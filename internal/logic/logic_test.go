package logic

import (
	"errors"
	"testing"

	"repro/internal/schema"
	"repro/internal/symtab"
)

func fixture() (*schema.Catalog, *symtab.Universe) {
	cat := schema.NewCatalog()
	cat.MustAdd("E", 2)
	cat.MustAdd("P", 1)
	cat.MustAdd("T", 2)
	return cat, symtab.NewUniverse()
}

func rel(cat *schema.Catalog, name string) *schema.Relation {
	r, ok := cat.ByName(name)
	if !ok {
		panic(name)
	}
	return r
}

func TestTGDClassification(t *testing.T) {
	cat, _ := fixture()
	e, p, tt := rel(cat, "E"), rel(cat, "P"), rel(cat, "T")

	gav := &TGD{
		Body: []Atom{NewAtom(cat, e, V("x"), V("y")), NewAtom(cat, p, V("x"))},
		Head: []Atom{NewAtom(cat, tt, V("x"), V("y"))},
	}
	if !gav.IsGAV() || gav.IsLAV() || !gav.IsFull() {
		t.Fatalf("gav classification wrong: gav=%v lav=%v full=%v", gav.IsGAV(), gav.IsLAV(), gav.IsFull())
	}

	lav := &TGD{
		Body: []Atom{NewAtom(cat, p, V("x"))},
		Head: []Atom{NewAtom(cat, tt, V("x"), V("z"))},
	}
	if lav.IsGAV() || !lav.IsLAV() || lav.IsFull() {
		t.Fatal("lav classification wrong")
	}
	if got := lav.ExistentialVars(); len(got) != 1 || got[0] != "z" {
		t.Fatalf("ExistentialVars = %v", got)
	}
	if got := lav.FrontierVars(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("FrontierVars = %v", got)
	}
}

func TestTGDValidate(t *testing.T) {
	cat, _ := fixture()
	p := rel(cat, "P")
	bad := &TGD{Head: []Atom{NewAtom(cat, p, V("x"))}}
	if bad.Validate() == nil {
		t.Fatal("empty body accepted")
	}
	bad2 := &TGD{Body: []Atom{NewAtom(cat, p, V("x"))}}
	if bad2.Validate() == nil {
		t.Fatal("empty head accepted")
	}
}

func TestEGDValidate(t *testing.T) {
	cat, _ := fixture()
	e := rel(cat, "E")
	good := &EGD{
		Body: []Atom{NewAtom(cat, e, V("x"), V("y")), NewAtom(cat, e, V("x"), V("z"))},
		L:    V("y"), R: V("z"),
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &EGD{Body: good.Body, L: V("y"), R: V("w")}
	if bad.Validate() == nil {
		t.Fatal("unsafe egd accepted")
	}
}

func TestAtomArityPanic(t *testing.T) {
	cat, _ := fixture()
	e := rel(cat, "E")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	NewAtom(cat, e, V("x"))
}

func TestUCQValidate(t *testing.T) {
	cat, _ := fixture()
	e := rel(cat, "E")
	q := &UCQ{Name: "q", Arity: 1, Clauses: []CQ{
		{Head: []Term{V("x")}, Body: []Atom{NewAtom(cat, e, V("x"), V("y"))}},
		{Head: []Term{V("y")}, Body: []Atom{NewAtom(cat, e, V("x"), V("y"))}},
	}}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	q.Clauses[1].Head = []Term{V("z")}
	if q.Validate() == nil {
		t.Fatal("unsafe clause accepted")
	}
}

func TestStringRendering(t *testing.T) {
	cat, u := fixture()
	e, tt := rel(cat, "E"), rel(cat, "T")
	d := &TGD{
		Body: []Atom{NewAtom(cat, e, V("x"), V("y"))},
		Head: []Atom{NewAtom(cat, tt, V("x"), V("z"))},
	}
	if got := d.String(cat, u); got != "E(x,y) -> T(x,z)" {
		t.Fatalf("tgd string = %q", got)
	}
	g := &EGD{Body: []Atom{NewAtom(cat, tt, V("x"), V("y")), NewAtom(cat, tt, V("x"), V("z"))}, L: V("y"), R: V("z")}
	if got := g.String(cat, u); got != "T(x,y) & T(x,z) -> y = z" {
		t.Fatalf("egd string = %q", got)
	}
	a := u.Const("a")
	q := &UCQ{Name: "q", Arity: 1, Clauses: []CQ{{Head: []Term{V("x")}, Body: []Atom{NewAtom(cat, e, V("x"), C(a))}}}}
	if got := q.String(cat, u); got != "q(x) :- E(x,a)" {
		t.Fatalf("ucq string = %q", got)
	}
}

func TestWeaklyAcyclicPositive(t *testing.T) {
	cat, _ := fixture()
	e, tt := rel(cat, "E"), rel(cat, "T")

	// E(x,y) -> T(x,z): special edges from E positions into T.2, no cycle.
	d1 := &TGD{
		Body: []Atom{NewAtom(cat, e, V("x"), V("y"))},
		Head: []Atom{NewAtom(cat, tt, V("x"), V("z"))},
	}
	// T(x,y) -> E(x,y): full tgd, regular edges only.
	d2 := &TGD{
		Body: []Atom{NewAtom(cat, tt, V("x"), V("y"))},
		Head: []Atom{NewAtom(cat, e, V("x"), V("y"))},
	}
	if !WeaklyAcyclic([]*TGD{d1}) {
		t.Fatal("single existential tgd should be weakly acyclic")
	}
	// d1+d2 creates a cycle through the special edge E.1 -> T.2 -> E.2 -> T.2...
	// T.2 -> E.2 (regular via d2), E.2 -> T.2 (special via d1, since y occurs
	// in... y does NOT occur in the head of d1, so no edge from E.2).
	// The actual cycle check: E.1 -> T.1 (regular), E.1 -> T.2 (special),
	// T.1 -> E.1, T.2 -> E.2. Special edge E.1->T.2 is not on a cycle
	// (T.2 -> E.2, and E.2 has no outgoing edges). So still weakly acyclic.
	if !WeaklyAcyclic([]*TGD{d1, d2}) {
		t.Fatal("d1+d2 should be weakly acyclic")
	}
}

func TestWeaklyAcyclicNegative(t *testing.T) {
	cat, _ := fixture()
	e := rel(cat, "E")
	// E(x,y) -> E(y,z): classic non-weakly-acyclic tgd. x... body var y occurs
	// in head position E.1, and existential z occurs at E.2, so special edge
	// E.2 -> E.2? No: y occurs in body at E.2, head at E.1: regular E.2->E.1,
	// special E.2->E.2. Cycle through special edge at E.2.
	d := &TGD{
		Body: []Atom{NewAtom(cat, e, V("x"), V("y"))},
		Head: []Atom{NewAtom(cat, e, V("y"), V("z"))},
	}
	if WeaklyAcyclic([]*TGD{d}) {
		t.Fatal("E(x,y)->E(y,z) reported weakly acyclic")
	}
}

func TestWeaklyAcyclicTwoStepCycle(t *testing.T) {
	cat, _ := fixture()
	p := rel(cat, "P")
	tt := rel(cat, "T")
	// P(x) -> T(x,z) ; T(x,y) -> P(y): cycle P.1 -(special)-> T.2 -> P.1.
	d1 := &TGD{
		Body: []Atom{NewAtom(cat, p, V("x"))},
		Head: []Atom{NewAtom(cat, tt, V("x"), V("z"))},
	}
	d2 := &TGD{
		Body: []Atom{NewAtom(cat, tt, V("x"), V("y"))},
		Head: []Atom{NewAtom(cat, p, V("y"))},
	}
	if WeaklyAcyclic([]*TGD{d1, d2}) {
		t.Fatal("two-step special cycle reported weakly acyclic")
	}
	if !WeaklyAcyclic([]*TGD{d2}) {
		t.Fatal("full tgd alone should be weakly acyclic")
	}
}

func TestWeaklyAcyclicRegularCycleOK(t *testing.T) {
	cat, _ := fixture()
	e, tt := rel(cat, "E"), rel(cat, "T")
	// E(x,y) -> T(x,y) ; T(x,y) -> E(x,y): regular cycle, fine.
	d1 := &TGD{Body: []Atom{NewAtom(cat, e, V("x"), V("y"))}, Head: []Atom{NewAtom(cat, tt, V("x"), V("y"))}}
	d2 := &TGD{Body: []Atom{NewAtom(cat, tt, V("x"), V("y"))}, Head: []Atom{NewAtom(cat, e, V("x"), V("y"))}}
	if !WeaklyAcyclic([]*TGD{d1, d2}) {
		t.Fatal("regular-only cycle should be weakly acyclic")
	}
}

// TestMakeAtomArityError: MakeAtom returns a typed *schema.ArityError on a
// term-count mismatch; NewAtom panics with the same error.
func TestMakeAtomArityError(t *testing.T) {
	cat := schema.NewCatalog()
	r := cat.MustAdd("R", 2)
	if _, err := MakeAtom(cat, r, V("x"), V("y")); err != nil {
		t.Fatalf("well-formed MakeAtom failed: %v", err)
	}
	_, err := MakeAtom(cat, r, V("x"))
	var ae *schema.ArityError
	if !errors.As(err, &ae) || ae.Rel != "R" || ae.Want != 2 || ae.Got != 1 {
		t.Fatalf("error %v is not the expected ArityError", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewAtom with wrong arity did not panic")
		}
		if perr, ok := r.(error); !ok || !errors.As(perr, &ae) {
			t.Fatalf("NewAtom panicked with %v, want an ArityError", r)
		}
	}()
	NewAtom(cat, r, V("x"), V("y"), V("z"))
}
