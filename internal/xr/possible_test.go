package xr

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/testkit"
)

func TestPossibleKeyConflict(t *testing.T) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	bRel, _ := w.cat.ByName("B")
	w.add(aRel, "t1", "5")
	w.add(bRel, "t1", "6")
	w.add(aRel, "t2", "7")

	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	q := w.queryT()

	certain, err := ex.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	possible, err := ex.Possible(q)
	if err != nil {
		t.Fatal(err)
	}
	// Certain: only (t2,7). Possible: both disputed values plus (t2,7).
	if certain.Answers.Len() != 1 {
		t.Fatalf("certain = %v", certain.Answers.Tuples())
	}
	if possible.Answers.Len() != 3 ||
		!possible.Answers.Contains(w.vals("t1", "5")) ||
		!possible.Answers.Contains(w.vals("t1", "6")) ||
		!possible.Answers.Contains(w.vals("t2", "7")) {
		t.Fatalf("possible = %v", possible.Answers.Tuples())
	}
}

func TestPossibleSupersetOfCertain(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{Existentials: trial%2 == 0, TargetTgds: 1})
		src := testkit.RandomInstance(rng, w, 3+rng.Intn(5), 3)
		q := testkit.RandomQuery(rng, w, "q")
		ex, err := NewExchange(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		certain, err := ex.Answer(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		possible, err := ex.Possible(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, tup := range certain.Answers.Tuples() {
			if !possible.Answers.Contains(tup) {
				t.Fatalf("trial %d: certain answer not possible", trial)
			}
		}
	}
}

func TestPossibleMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 40; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{Existentials: trial%2 == 0, TargetTgds: 1})
		src := testkit.RandomInstance(rng, w, 3+rng.Intn(5), 3)
		queries := []*logic.UCQ{testkit.RandomQuery(rng, w, "q")}

		want, err := BruteForcePossible(w.M, src, queries)
		if err != nil {
			t.Fatalf("trial %d: brute: %v", trial, err)
		}
		ex, err := NewExchange(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := ex.Possible(queries[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Answers.Len() != want[0].Answers.Len() {
			t.Fatalf("trial %d: possible=%d brute=%d\nquery: %s\nsource:\n%s",
				trial, got.Answers.Len(), want[0].Answers.Len(),
				queries[0].String(w.Cat, w.U), src.String(w.U))
		}
		for _, tup := range want[0].Answers.Tuples() {
			if !got.Answers.Contains(tup) {
				t.Fatalf("trial %d: missing possible tuple", trial)
			}
		}
	}
}

func TestPossibleOnConsistentEqualsCertain(t *testing.T) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	w.add(aRel, "t1", "5")
	w.add(aRel, "t2", "7")
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	q := w.queryT()
	certain, _ := ex.Answer(q)
	possible, err := ex.Possible(q)
	if err != nil {
		t.Fatal(err)
	}
	if possible.Answers.Len() != certain.Answers.Len() {
		t.Fatalf("consistent instance: possible %d != certain %d",
			possible.Answers.Len(), certain.Answers.Len())
	}
}

// TestRepairsMatchBruteForce: the solver-backed repair enumeration returns
// exactly the repairs found by exhaustive search.
func TestRepairsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	for trial := 0; trial < 30; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{Existentials: trial%2 == 0, TargetTgds: 1})
		src := testkit.RandomInstance(rng, w, 4+rng.Intn(5), 3)
		want, err := SourceRepairs(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ex, err := NewExchange(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := ex.Repairs(0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: solver %d repairs, brute %d", trial, len(got), len(want))
		}
		for _, g := range got {
			found := false
			for _, wnt := range want {
				if g.Equal(wnt) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: solver produced a non-repair", trial)
			}
		}
	}
}

// TestRepairsLimit stops the enumeration early.
func TestRepairsLimit(t *testing.T) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	bRel, _ := w.cat.ByName("B")
	for i := 0; i < 4; i++ {
		name := "t" + itoa(i)
		w.add(aRel, name, "1")
		w.add(bRel, name, "2")
	}
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ex.Repairs(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("limited repairs = %d, want 3", len(got))
	}
	all, err := ex.Repairs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 16 {
		t.Fatalf("total repairs = %d, want 2^4 = 16", len(all))
	}
}
