package xr

import (
	"testing"

	"repro/internal/asp"
	"repro/internal/chase"
	"repro/internal/gavreduce"
	"repro/internal/logic"
)

// TestFigure1Discrepancy documents a corner case in which the paper's
// literal Figure 1 encoding loses a source repair. With
//
//	S1(y) → T1(y);  S1(y) ∧ S2(w,z) → T0(w);  egd: T0(y) ∧ T1(z) → z = y
//	I = {S0(c0), S1(c2), S2(c0,c2)}
//
// the source repairs are {S0,S1} and {S0,S2}: the instance is inconsistent
// (T0(c0) and T1(c2) violate the egd with c0 ≠ c2), and either side can be
// kept. The Figure 1 program, however, has a single stable model (the
// {S0,S1} repair): deleting S1 removes both T0 and T1, the egd deletion
// rule is disabled by the incidental ¬T0i guard, and S1d loses all support
// under the GL reduct. The corrected encoding used by the pipelines
// recovers both repairs (checked against brute force).
func TestFigure1Discrepancy(t *testing.T) {
	w := newTW()
	s0 := w.srcRel("S0", 1)
	s1 := w.srcRel("S1", 1)
	s2 := w.srcRel("S2", 2)
	t0 := w.tgtRel("T0", 1)
	t1 := w.tgtRel("T1", 1)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, s1, logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, t1, logic.V("y"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, s1, logic.V("y")), logic.NewAtom(w.cat, s2, logic.V("w"), logic.V("z"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, t0, logic.V("w"))}},
	}
	w.m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, t0, logic.V("y")), logic.NewAtom(w.cat, t1, logic.V("z"))},
		L:    logic.V("z"), R: logic.V("y"),
	}}
	w.add(s0, "c0")
	w.add(s1, "c2")
	w.add(s2, "c0", "c2")

	// Ground truth: two repairs.
	repairs, err := SourceRepairs(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(repairs))
	}

	red, err := gavreduce.Reduce(w.m)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := chase.GAV(red.M, w.src)
	if err != nil {
		t.Fatal(err)
	}

	// Literal Figure 1: only one stable model.
	gp, _ := Figure1Program(prov)
	fig1 := asp.NewStableSolver(gp).Enumerate(func([]bool) bool { return true })
	if fig1 != 1 {
		t.Fatalf("Figure 1 program has %d stable models (expected the documented discrepancy: 1)", fig1)
	}

	// Corrected encoding: both repairs.
	enc := newEncoder(prov, func(chase.FactID) factState { return factVar })
	enc.build()
	correctedSolver := asp.NewStableSolver(enc.gp)
	correctedSolver.Acceptor = enc.maximalityAcceptor(correctedSolver)
	corrected := correctedSolver.Enumerate(func([]bool) bool { return true })
	if corrected != 2 {
		t.Fatalf("corrected encoding has %d stable models, want 2", corrected)
	}

	// And the corrected pipeline agrees with brute force on query answers:
	// q(x) :- T1(x) has no certain answer (T1(c2) absent from repair {S0,S2}).
	q := &logic.UCQ{Name: "q", Arity: 1, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{logic.NewAtom(w.cat, t1, logic.V("x"))},
	}}}
	mono, err := Monolithic(w.m, w.src, []*logic.UCQ{q}, MonolithicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mono[0].Answers.Len() != 0 {
		t.Fatalf("monolithic answers = %v, want none", mono[0].Answers.Tuples())
	}
	brute, err := BruteForce(w.m, w.src, []*logic.UCQ{q})
	if err != nil {
		t.Fatal(err)
	}
	if brute[0].Answers.Len() != 0 {
		t.Fatal("brute force disagrees")
	}
}

// TestCorrectedEncodingModelsMatchRepairs checks on the key-conflict world
// that the corrected encoding's stable models are in bijection with the
// source repairs.
func TestCorrectedEncodingModelsMatchRepairs(t *testing.T) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	bRel, _ := w.cat.ByName("B")
	w.add(aRel, "t1", "5")
	w.add(bRel, "t1", "6")
	w.add(bRel, "t1", "7")

	repairs, err := SourceRepairs(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	red, err := gavreduce.Reduce(w.m)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := chase.GAV(red.M, w.src)
	if err != nil {
		t.Fatal(err)
	}
	enc := newEncoder(prov, func(chase.FactID) factState { return factVar })
	enc.build()
	solver := asp.NewStableSolver(enc.gp)
	solver.Acceptor = enc.maximalityAcceptor(solver)
	n := solver.Enumerate(func([]bool) bool { return true })
	if n != len(repairs) {
		t.Fatalf("stable models = %d, repairs = %d", n, len(repairs))
	}
	if n != 3 {
		t.Fatalf("repairs = %d, want 3 (one per candidate exon count)", n)
	}
}
