package xr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Sentinel errors shared by every engine. They are wrapped with query
// context when returned, so match with errors.Is.
var (
	// ErrTimeout reports that a query exceeded its solving budget (an
	// Options.Timeout or a context deadline).
	ErrTimeout = errors.New("xr: query timed out")
	// ErrCanceled reports that the caller's context was canceled.
	ErrCanceled = errors.New("xr: query canceled")
	// ErrNoSolution reports that an instance admits no solution where one
	// is required (e.g. materializing an inconsistent instance).
	ErrNoSolution = errors.New("xr: instance has no solution")
	// ErrTooLarge reports that an instance exceeds the brute-force engine's
	// exhaustive-enumeration bound.
	ErrTooLarge = errors.New("xr: instance too large for brute force")
	// ErrBudget reports that a signature program exhausted its
	// Options.MaxDecisions / MaxConflicts solving budget.
	ErrBudget = errors.New("xr: solve budget exhausted")
	// ErrInternal reports a panic inside an engine worker, converted to an
	// error instead of crashing the process; the concrete error is an
	// *InternalError carrying the recovered value and stack.
	ErrInternal = errors.New("xr: internal engine error")
)

// InternalError is a panic captured at an engine entry point or inside a
// pool worker and converted to an error, so a corrupted program fails one
// signature (or one call), not the process. It matches ErrInternal under
// errors.Is.
type InternalError struct {
	Op    string // where the panic was caught ("segmentary signature {3}", ...)
	Panic any    // the recovered value
	Stack []byte // debug.Stack() captured at the recovery point
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("xr: internal error in %s: %v", e.Op, e.Panic)
}

// Unwrap makes errors.Is(err, ErrInternal) hold.
func (e *InternalError) Unwrap() error { return ErrInternal }

// recoverInternal converts an in-flight panic into an *InternalError
// assigned to *err. Use as `defer recoverInternal(op, &err)` at engine
// entry points and around pool-worker bodies.
func recoverInternal(op string, err *error) {
	if r := recover(); r != nil {
		*err = &InternalError{Op: op, Panic: r, Stack: debug.Stack()}
	}
}

// SignatureError reports one signature group left undecided by a
// partial-results query (Options.Partial): its canonical key, the number of
// candidate tuples moved to Result.Unknown, the retries spent, and the
// final cause (ErrTimeout, ErrBudget, or an *InternalError under errors.Is).
type SignatureError struct {
	Signature string // canonical signature key, e.g. "3" or "2,7"
	Tuples    int    // candidate tuples of the group, now in Unknown
	Retries   int    // bounded retries attempted before giving up
	Err       error  // why the signature could not be decided
}

func (e *SignatureError) Error() string {
	return fmt.Sprintf("xr: signature {%s} undecided (%d tuples unknown): %v", e.Signature, e.Tuples, e.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *SignatureError) Unwrap() error { return e.Err }

// Cause classifies Err into the wire vocabulary shared with
// Explanation.Cause: "budget", "timeout", "panic", "canceled", or "error".
func (e *SignatureError) Cause() string { return classifyCause(e.Err) }

// signatureErrorJSON is the wire form of a SignatureError. The Err field
// crosses the process boundary as a (cause, message) pair; the cause is the
// compatibility contract, the message is advisory.
type signatureErrorJSON struct {
	Signature string `json:"signature"`
	Tuples    int    `json:"tuples"`
	Retries   int    `json:"retries"`
	Cause     string `json:"cause"`
	Error     string `json:"error,omitempty"`
}

// MarshalJSON renders the wire form with stable snake_case field names.
func (e SignatureError) MarshalJSON() ([]byte, error) {
	j := signatureErrorJSON{
		Signature: e.Signature,
		Tuples:    e.Tuples,
		Retries:   e.Retries,
		Cause:     classifyCause(e.Err),
	}
	if e.Err != nil {
		j.Error = e.Err.Error()
	}
	return json.Marshal(j)
}

// UnmarshalJSON reconstructs the error from its wire form. The cause maps
// back to the matching sentinel so errors.Is keeps working across a
// process boundary; the original message is preserved in the error text.
func (e *SignatureError) UnmarshalJSON(data []byte) error {
	var j signatureErrorJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	e.Signature = j.Signature
	e.Tuples = j.Tuples
	e.Retries = j.Retries
	e.Err = causeError(j.Cause, j.Error)
	return nil
}

// causeError rebuilds an error value from a wire (cause, message) pair.
func causeError(cause, msg string) error {
	var sentinel error
	switch cause {
	case "budget":
		sentinel = ErrBudget
	case "timeout":
		sentinel = ErrTimeout
	case "panic":
		sentinel = ErrInternal
	case "canceled":
		sentinel = ErrCanceled
	case "":
		return nil
	default:
		if msg == "" {
			return errors.New("xr: remote error")
		}
		return errors.New(msg)
	}
	if msg == "" || msg == sentinel.Error() {
		return sentinel
	}
	return fmt.Errorf("%s: %w", msg, sentinel)
}

// Options tunes one query-phase call (Answer, Possible, Repairs,
// Monolithic). The zero value means: background context, no timeout,
// sequential solving, no tracing.
type Options struct {
	// Ctx cancels the call cooperatively; nil means context.Background().
	Ctx context.Context
	// Timeout bounds the call; zero means no limit. It composes with Ctx
	// (whichever expires first wins).
	Timeout time.Duration
	// Parallelism is the number of independent programs solved
	// concurrently (per-signature programs for the segmentary engine,
	// per-query programs for the monolithic engine). Values below 2 select
	// the sequential path. Results are deterministic at any setting.
	Parallelism int
	// Trace, when non-nil, receives one event per program solved. Calls
	// are serialized even when solving in parallel.
	Trace func(TraceEvent)
	// Metrics, when non-nil, aggregates phase timings and solver counters
	// into the given registry (see internal/telemetry and DESIGN.md §10).
	// Counter totals are deterministic at any Parallelism. A nil registry
	// costs nothing on the solving paths.
	Metrics *telemetry.Registry

	// SignatureTimeout bounds each signature program's solving wall time
	// individually (segmentary engines only); zero means no per-signature
	// limit. Unlike Timeout, an expired signature does not cancel its
	// siblings: with Partial set it degrades to unknown, without it the
	// query fails once the group is reached. A retried signature gets twice
	// the limit.
	SignatureTimeout time.Duration
	// MaxDecisions and MaxConflicts bound each signature program's solver
	// effort by the DPLL core's deterministic counters (0 = unlimited).
	// Unlike SignatureTimeout the cutoff point is machine-independent, so
	// degradation decisions — and with them answers and counter totals —
	// stay deterministic at any Parallelism. A retried signature gets twice
	// the budget.
	MaxDecisions int64
	MaxConflicts int64
	// Partial selects sound partial answers (segmentary engines only): a
	// signature that exhausts its budget is retried once with a doubled
	// budget and then recorded in Result.Degraded instead of failing the
	// query, with its candidate tuples moved to Result.Unknown. Answers
	// then under-approximate the exact certain answers and
	// Answers ∪ Unknown over-approximates them (see DESIGN.md §11).
	Partial bool
	// FaultHook, when non-nil, is invoked at the engines' fault-injection
	// sites ("solve", "ground", "cache") with the site name and signature
	// key. A returned error is injected at the site; the hook may also
	// sleep or panic. It exists for chaos testing (see internal/faultkit)
	// and must be nil in production use.
	FaultHook func(site, key string) error

	// DisableSolverReuse selects the fresh-solve query path (segmentary
	// engines only): every signature group builds a throwaway solver and
	// replays the signature cache's learned maximality clauses, instead of
	// running as an incremental session on the signature's persistent
	// solver (DESIGN.md §17). Answers, Unknown sets, and explanations are
	// identical either way; the flag exists as an escape hatch and so the
	// two paths can be compared. The zero value — reuse enabled — is the
	// fast path.
	DisableSolverReuse bool

	// Explain makes the segmentary engines attach one Explanation per
	// candidate tuple to the Result (see internal/explain and DESIGN.md
	// §13). Explanations are computed in a dedicated deterministic pass —
	// one fresh solver per signature group, no learned-clause replay, no
	// persistent-solver reuse — so the output is byte-identical at any
	// Parallelism, across signature-cache states, and across solver-reuse
	// modes. The pass costs one witness solve per non-safe candidate;
	// leave it off (the default) on hot paths.
	Explain bool
	// Tracer, when non-nil, collects a hierarchical span tree over the call
	// (exchange sub-phases, the query phase, one child span per signature
	// program). Export it with Tracer.WriteChromeTrace. A nil tracer costs
	// one nil check per phase.
	Tracer *telemetry.Tracer

	// Profiling attaches a workload hardness profiler to the Exchange
	// built with these options (NewExchangeOpts only; query calls inherit
	// the Exchange's profiler). The profiler accumulates per-signature and
	// per-cluster solve records across the Exchange's lifetime — see
	// internal/profile and Exchange.Profile. Profiling records at the same
	// instrumentation points telemetry uses, with commuting atomic adds
	// only, so answers, Unknown sets, and ExchangeStats are byte-identical
	// with profiling on or off at any Parallelism.
	Profiling bool
	// ProfileMaxRecords caps the profiler's signature-record table
	// (0 = profile.DefaultMaxRecords). Ignored unless Profiling is set.
	ProfileMaxRecords int
}

// Fault-injection site names passed to Options.FaultHook. Kept as plain
// strings (mirrored by internal/faultkit) so the engines do not depend on
// the testing harness.
const (
	faultSiteSolve  = "solve"
	faultSiteGround = "ground"
	faultSiteCache  = "cache"
)

// TraceEvent reports per-program solver diagnostics. For per-call raw
// events install Options.Trace; for aggregated totals across calls attach
// a telemetry registry via Options.Metrics — both are fed from the same
// instrumentation points.
//
// TraceEvent is part of the JSON wire format (snake_case field names are a
// compatibility contract; durations travel as integer nanoseconds).
type TraceEvent struct {
	Engine    string `json:"engine"`              // "segmentary", "segmentary-brave", "monolithic", "repairs"
	Query     string `json:"query,omitempty"`     // query name, when applicable
	Signature []int  `json:"signature,omitempty"` // cluster signature (segmentary engines only)
	// SignatureKey is the canonical signature key ("2,7"): the same
	// vocabulary Explanation.Signature and SignatureError.Signature use, so
	// trace lines and explanations cross-reference directly.
	SignatureKey string `json:"signature_key,omitempty"`
	// RequestID is the HTTP request the program solved under, when the call
	// context carried one (telemetry.ContextWithRequestID); it correlates
	// trace lines from concurrent tenants back to individual requests.
	RequestID string `json:"request_id,omitempty"`

	Candidates int  `json:"candidates"` // candidate atoms wired into this program
	Atoms      int  `json:"atoms"`      // ground atoms
	Rules      int  `json:"rules"`      // ground rules
	CacheHit   bool `json:"cache_hit"`  // signature program served from the Exchange cache
	// SolverReused marks a segmentary solve served as an incremental
	// session on an already-warm persistent signature solver (DESIGN.md
	// §17). When set, the solver counters below are per-session deltas
	// rather than whole-solver totals.
	SolverReused bool `json:"solver_reused,omitempty"`

	CandidatesTested int   `json:"candidates_tested"` // classical models tested for stability
	StabilityFails   int   `json:"stability_fails"`
	LoopsLearned     int   `json:"loops_learned"`
	TheoryRejects    int   `json:"theory_rejects"` // models rejected by the maximality check
	Conflicts        int64 `json:"conflicts"`
	Decisions        int64 `json:"decisions"`
	Propagations     int64 `json:"propagations"`
	Restarts         int64 `json:"restarts"`          // SAT search restarts (Luby budget renewals)
	AssumptionSolves int64 `json:"assumption_solves"` // SAT searches run under assumption literals
	Reductions       int64 `json:"reductions"`        // clause-database reductions performed
	ClausesDeleted   int64 `json:"clauses_deleted"`   // learnt clauses deleted by reductions

	Duration time.Duration `json:"duration_ns"`
}

// workers returns the effective worker count.
func (o *Options) workers() int {
	if o.Parallelism < 2 {
		return 1
	}
	return o.Parallelism
}

// begin resolves the call context, applying Timeout. The returned cancel
// must be called to release the timer.
func (o *Options) begin() (context.Context, context.CancelFunc) {
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Timeout > 0 {
		return context.WithTimeout(ctx, o.Timeout)
	}
	return context.WithCancel(ctx)
}

// serialized returns a copy of o whose Trace hook is safe to invoke from
// concurrent workers.
func (o Options) serialized() Options {
	if o.Trace == nil {
		return o
	}
	var mu sync.Mutex
	inner := o.Trace
	o.Trace = func(ev TraceEvent) {
		mu.Lock()
		defer mu.Unlock()
		inner(ev)
	}
	return o
}

// ctxErr maps a done context to the matching sentinel (nil if not done).
func ctxErr(ctx context.Context) error {
	switch ctx.Err() {
	case context.DeadlineExceeded:
		return ErrTimeout
	case context.Canceled:
		return ErrCanceled
	}
	return nil
}

// isSentinel reports whether err is a cancellation/budget sentinel (as
// opposed to a genuine engine failure).
func isSentinel(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudget)
}

// forEach runs fn(ctx, i) for every i in [0, n) across at most workers
// goroutines; see forEachWorker for the pool semantics.
func forEach(ctx context.Context, workers, n int, fn func(context.Context, int) error) error {
	return forEachWorker(ctx, workers, n, func(ctx context.Context, _, i int) error {
		return fn(ctx, i)
	})
}

// forEachWorker runs fn(ctx, worker, i) for every i in [0, n) across at
// most workers goroutines; worker is the 1-based pool lane the job runs on
// (0 on the sequential path), stable for the lifetime of the pool so spans
// and profiles can attribute work to lanes. Pool goroutines carry a pprof
// label xr_worker=<lane>, so goroutine profiles group by lane.
//
// New work stops being issued once ctx is done or an fn returns an error;
// work already completed for other indexes is kept by the caller. All
// goroutines have exited when forEachWorker returns (no leaks). Genuine
// errors take precedence over cancellation sentinels; ties break toward
// the lowest index, keeping the reported error deterministic.
func forEachWorker(ctx context.Context, workers, n int, fn func(context.Context, int, int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers < 2 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			if errs[i] = fn(ctx, 0, i); errs[i] != nil {
				break
			}
		}
		return poolError(ctx, errs)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(wctx, pprof.Labels("xr_worker", itoa(w)), func(ctx context.Context) {
				for {
					i := int(next.Add(1))
					if i >= n || ctx.Err() != nil {
						return
					}
					if err := fn(ctx, w, i); err != nil {
						errs[i] = err
						cancel() // stop issuing work; siblings drain promptly
						return
					}
				}
			})
		}(w)
	}
	wg.Wait()
	return poolError(ctx, errs)
}

// poolError resolves the pool's representative error. A done parent
// context with no recorded job error (work was skipped, not failed) still
// reports the cancellation sentinel, so a caller never sees a nil error
// alongside incomplete results.
func poolError(ctx context.Context, errs []error) error {
	if err := firstError(errs); err != nil {
		return err
	}
	return ctxErr(ctx)
}

// firstError picks the deterministic representative error: the
// lowest-index genuine error if any, else the lowest-index sentinel.
func firstError(errs []error) error {
	var sentinel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !isSentinel(err) {
			return err
		}
		if sentinel == nil {
			sentinel = err
		}
	}
	return sentinel
}
