package xr

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/logic"
	"repro/internal/testkit"
)

// TestSourceRepairProperties checks Definition 1's invariants on random
// inputs: every repair is a consistent sub-instance, maximal, and the
// repairs are pairwise incomparable; the suspect envelope contains every
// deletion (Proposition 3).
func TestSourceRepairProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 40; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{Existentials: trial%3 == 0, TargetTgds: 1})
		src := testkit.RandomInstance(rng, w, 4+rng.Intn(5), 3)
		repairs, err := SourceRepairs(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(repairs) == 0 {
			t.Fatalf("trial %d: no repairs (∅ is always consistent)", trial)
		}
		ex, err := NewExchange(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for ri, rep := range repairs {
			if !rep.SubInstanceOf(src) {
				t.Fatalf("trial %d repair %d: not a sub-instance", trial, ri)
			}
			if !chase.HasSolution(w.M, rep) {
				t.Fatalf("trial %d repair %d: inconsistent", trial, ri)
			}
			// Maximality: adding back any omitted fact breaks consistency.
			for _, f := range src.Facts() {
				if rep.ContainsFact(f) {
					continue
				}
				bigger := rep.Clone()
				bigger.AddFact(f)
				if chase.HasSolution(w.M, bigger) {
					t.Fatalf("trial %d repair %d: not maximal (can re-add %s)",
						trial, ri, f.String(w.Cat, w.U))
				}
				// Envelope soundness: every deleted fact is suspect.
				if !ex.IsSuspect(f) {
					t.Fatalf("trial %d repair %d: deleted fact %s not in I_suspect",
						trial, ri, f.String(w.Cat, w.U))
				}
			}
			// Pairwise incomparability.
			for rj, other := range repairs {
				if ri != rj && rep.SubInstanceOf(other) {
					t.Fatalf("trial %d: repair %d ⊆ repair %d", trial, ri, rj)
				}
			}
		}
		// Consistent instances have exactly one repair: the instance itself.
		if ex.Consistent() {
			if len(repairs) != 1 || !repairs[0].Equal(src) {
				t.Fatalf("trial %d: consistent instance with %d repairs", trial, len(repairs))
			}
		}
	}
}

// TestXRCertainEqualsCertainOnConsistent: on consistent instances,
// XR-Certain coincides with the ordinary certain answers q↓(chase(I)).
func TestXRCertainEqualsCertainOnConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	checked := 0
	for trial := 0; trial < 60 && checked < 20; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{Existentials: trial%2 == 0, TargetTgds: 1})
		src := testkit.RandomInstance(rng, w, 3+rng.Intn(5), 3)
		if !chase.HasSolution(w.M, src) {
			continue
		}
		checked++
		q := testkit.RandomQuery(rng, w, "q")
		ex, err := NewExchange(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := ex.Answer(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := BruteForce(w.M, src, []*logic.UCQ{q})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Answers.Len() != want[0].Answers.Len() {
			t.Fatalf("trial %d: xr=%d certain=%d", trial, got.Answers.Len(), want[0].Answers.Len())
		}
		// On a consistent instance, no candidate should need the solver.
		if got.Stats.SolverAccepted != 0 || got.Stats.Programs != 0 {
			t.Fatalf("trial %d: solver engaged on consistent instance: %+v", trial, got.Stats)
		}
	}
	if checked < 10 {
		t.Fatalf("too few consistent trials: %d", checked)
	}
}

// TestExchangeClusterInvariants: clusters partition the violations, their
// source envelopes are pairwise disjoint (that is what justifies
// independence, Proposition 5), and every suspect fact belongs to exactly
// the envelopes of its clusters.
func TestExchangeClusterInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 40; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{TargetTgds: 1})
		src := testkit.RandomInstance(rng, w, 5+rng.Intn(6), 3)
		ex, err := NewExchange(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seen := map[int]bool{}
		total := 0
		for ci, c := range ex.Clusters {
			total += len(c.Violations)
			for _, vi := range c.Violations {
				if seen[vi] {
					t.Fatalf("trial %d: violation %d in two clusters", trial, vi)
				}
				seen[vi] = true
			}
			for cj, other := range ex.Clusters {
				if ci >= cj {
					continue
				}
				for f := range c.SourceEnvelope {
					if other.SourceEnvelope[f] {
						t.Fatalf("trial %d: clusters %d and %d share source fact", trial, ci, cj)
					}
				}
			}
			// The envelope is inside the influence.
			for f := range c.SourceEnvelope {
				if !c.Influence[f] {
					t.Fatalf("trial %d: envelope fact outside influence", trial)
				}
			}
		}
		if total != ex.Stats.Violations {
			t.Fatalf("trial %d: clusters cover %d of %d violations", trial, total, ex.Stats.Violations)
		}
	}
}

// TestMonolithicTimeout: an absurdly small timeout must surface ErrTimeout
// without corrupting later queries.
func TestMonolithicTimeout(t *testing.T) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	bRel, _ := w.cat.ByName("B")
	for i := 0; i < 30; i++ {
		w.add(aRel, key(i), "5")
		w.add(bRel, key(i), "6")
	}
	res, err := Monolithic(w.m, w.src, []*logic.UCQ{w.queryT()}, MonolithicOptions{Timeout: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", res[0].Err)
	}
}

func key(i int) string { return string(rune('a'+i%26)) + itoa(i) }
