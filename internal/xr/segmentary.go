package xr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/asp"
	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/explain"
	"repro/internal/gavreduce"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/profile"
	"repro/internal/symtab"
	"repro/internal/telemetry"
)

// Cluster is a violation cluster (Definition 8, approximated per
// Propositions 5–6 by grouping violations with overlapping source repair
// envelopes) together with its source envelope and influence.
type Cluster struct {
	Violations []int // indices into the provenance's violation list
	// SourceEnvelope is the S-restriction of the union of the violations'
	// support closures — a source repair envelope for the cluster
	// (Proposition 6).
	SourceEnvelope map[chase.FactID]bool
	// Influence is influence(SourceEnvelope) (Definition 7): the target
	// half of the cluster's exchange repair envelope (Proposition 4).
	Influence map[chase.FactID]bool
}

// ExchangeStats records exchange-phase measurements (Table 4), including
// the semi-naive chase breakdown (DESIGN.md §12).
//
// ExchangeStats is part of the JSON wire format (snake_case field names
// are a compatibility contract; durations travel as integer nanoseconds).
type ExchangeStats struct {
	SourceFacts    int           `json:"source_facts"`
	TotalFacts     int           `json:"total_facts"` // source + derived (quasi-solution)
	Violations     int           `json:"violations"`
	Clusters       int           `json:"clusters"`
	SuspectSource  int           `json:"suspect_source"` // |I_suspect|
	SafeDerivable  int           `json:"safe_derivable"` // facts derivable from the safe part alone
	ReduceDuration time.Duration `json:"reduce_duration_ns"`
	ChaseDuration  time.Duration `json:"chase_duration_ns"`
	EnvDuration    time.Duration `json:"env_duration_ns"`
	Duration       time.Duration `json:"duration_ns"`

	// Chase-internal breakdown: fixpoint rounds, rule evaluations performed
	// vs skipped by the dependency index, ground derivations fired, new
	// facts added, and instance index activity during the chase.
	ChaseRounds            int           `json:"chase_rounds"`
	ChaseRuleEvals         int           `json:"chase_rule_evals"`
	ChaseRuleSkips         int           `json:"chase_rule_skips"`
	ChaseTriggers          int           `json:"chase_triggers"`
	ChaseDeltaFacts        int           `json:"chase_delta_facts"`
	IndexProbes            uint64        `json:"index_probes"`
	IndexBuilds            uint64        `json:"index_builds"`
	ChaseTgdDuration       time.Duration `json:"chase_tgd_duration_ns"`
	ChaseViolationDuration time.Duration `json:"chase_violation_duration_ns"`
}

// Exchange is the result of the query-independent exchange phase
// (Section 6.5): the reduced mapping, the chased instance with provenance,
// the suspect/safe split, and the violation clusters with influences.
type Exchange struct {
	Red  *gavreduce.Reduction
	Prov *chase.Provenance

	Clusters []*Cluster
	// suspect marks the source facts in some violation's support closure
	// (Definition 5); their union is the source repair envelope I_suspect
	// (Proposition 3).
	suspect map[chase.FactID]bool
	// safeDerivable marks facts derivable without any suspect source fact;
	// this is I_safe ∪ J_safe computed on the support hypergraph.
	safeDerivable map[chase.FactID]bool
	// clustersOf maps each fact to the (sorted) clusters whose influence
	// contains it.
	clustersOf map[chase.FactID][]int

	// progCache holds one cached signature program per canonical signature
	// key (see sigcache.go). Guarded by progMu; safe for concurrent queries.
	progMu    sync.Mutex
	progCache map[string]*sigProgram

	// mt is the instrument set of the registry the Exchange was built with
	// (nil when telemetry is off); per-call registries override it.
	mt *meters

	// prof is the workload hardness profiler (nil when Options.Profiling
	// is off — every record call is a nil-safe no-op). Unlike mt it is
	// never overridden per call: hardness history is an Exchange-lifetime
	// aggregate.
	prof *profile.Profiler

	Stats ExchangeStats
}

// NewExchange runs the exchange phase: reduce the mapping, chase with
// provenance, compute violations, support closures, the suspect/safe split,
// violation clusters, and cluster influences. All of this is
// query-independent and polynomial (Propositions 3–6).
func NewExchange(m *mapping.Mapping, src *instance.Instance) (*Exchange, error) {
	return NewExchangeOpts(m, src, Options{})
}

// NewExchangeOpts is NewExchange with Options. Only Metrics is consulted:
// the exchange phase is polynomial and uninterruptible (the chase has no
// cancellation points), so Ctx/Timeout/Parallelism apply to the query
// phase only. The registry also becomes the Exchange's default for later
// query calls that don't carry their own.
func NewExchangeOpts(m *mapping.Mapping, src *instance.Instance, opts Options) (*Exchange, error) {
	start := time.Now()
	red, err := gavreduce.Reduce(m)
	if err != nil {
		return nil, err
	}
	afterReduce := time.Now()
	var cst chase.Stats
	prov, err := chase.GAVWithOptions(red.M, src, chase.Options{Stats: &cst})
	if err != nil {
		return nil, err
	}
	afterChase := time.Now()

	ex := &Exchange{
		Red:        red,
		Prov:       prov,
		suspect:    make(map[chase.FactID]bool),
		clustersOf: make(map[chase.FactID][]int),
		progCache:  make(map[string]*sigProgram),
	}

	// Support closure per violation; cluster by overlapping source envelopes
	// (disjoint envelopes are pairwise independent, Proposition 5).
	type vioEnv struct {
		srcEnv []chase.FactID
	}
	parent := make([]int, len(prov.Violations))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	envs := make([]vioEnv, len(prov.Violations))
	owner := make(map[chase.FactID]int) // source fact -> first violation seen
	for vi, v := range prov.Violations {
		closure := prov.SupportClosure(v.Body)
		var srcEnv []chase.FactID
		for f := range closure {
			if prov.IsSource(f) {
				srcEnv = append(srcEnv, f)
				ex.suspect[f] = true
				if prev, ok := owner[f]; ok {
					union(prev, vi)
				} else {
					owner[f] = vi
				}
			}
		}
		envs[vi] = vioEnv{srcEnv: srcEnv}
	}

	// Materialize clusters.
	byRoot := make(map[int]*Cluster)
	for vi := range prov.Violations {
		root := find(vi)
		c, ok := byRoot[root]
		if !ok {
			c = &Cluster{SourceEnvelope: make(map[chase.FactID]bool)}
			byRoot[root] = c
			ex.Clusters = append(ex.Clusters, c)
		}
		c.Violations = append(c.Violations, vi)
		for _, f := range envs[vi].srcEnv {
			c.SourceEnvelope[f] = true
		}
	}
	sort.Slice(ex.Clusters, func(i, j int) bool {
		return ex.Clusters[i].Violations[0] < ex.Clusters[j].Violations[0]
	})
	for ci, c := range ex.Clusters {
		c.Influence = prov.Influence(c.SourceEnvelope)
		for f := range c.Influence {
			ex.clustersOf[f] = append(ex.clustersOf[f], ci)
		}
	}
	for _, cs := range ex.clustersOf {
		sort.Ints(cs)
	}

	ex.safeDerivable = prov.SafeDerivable(ex.suspect)

	end := time.Now()
	ex.Stats = ExchangeStats{
		SourceFacts:    src.Len(),
		TotalFacts:     prov.NumFacts(),
		Violations:     len(prov.Violations),
		Clusters:       len(ex.Clusters),
		SuspectSource:  len(ex.suspect),
		SafeDerivable:  len(ex.safeDerivable),
		ReduceDuration: afterReduce.Sub(start),
		ChaseDuration:  afterChase.Sub(afterReduce),
		EnvDuration:    end.Sub(afterChase),
		Duration:       end.Sub(start),

		ChaseRounds:            cst.Rounds,
		ChaseRuleEvals:         cst.RuleEvals,
		ChaseRuleSkips:         cst.RuleSkips,
		ChaseTriggers:          cst.Triggers,
		ChaseDeltaFacts:        cst.DeltaFacts,
		IndexProbes:            prov.Instance.IndexProbes(),
		IndexBuilds:            prov.Instance.IndexBuilds(),
		ChaseTgdDuration:       cst.TgdDuration,
		ChaseViolationDuration: cst.ViolationDuration,
	}
	ex.mt = newMeters(opts.Metrics)
	ex.mt.recordExchange(ex.Stats)
	if opts.Profiling {
		ex.prof = profile.New(profile.Config{MaxRecords: opts.ProfileMaxRecords, Metrics: opts.Metrics})
		// Seed cluster shapes now, while envelope construction is fresh:
		// every later solve only touches counters.
		for ci, c := range ex.Clusters {
			ex.prof.SeedCluster(ci, len(c.Violations), len(c.SourceEnvelope), len(c.Influence))
		}
	}
	if opts.Tracer != nil {
		// The exchange phase is not tracer-aware internally; synthesize its
		// span tree from the measured boundaries. The chase's tgd fixpoint
		// and violation sweep run sequentially in that order, so their
		// sub-spans are laid back-to-back from the chase start.
		t := opts.Tracer
		exSpan := t.AddSpan(telemetry.NoSpan, "exchange", 0, start, end.Sub(start),
			telemetry.SpanArg{Key: "clusters", Value: itoa(len(ex.Clusters))},
			telemetry.SpanArg{Key: "facts", Value: itoa(prov.NumFacts())},
			telemetry.SpanArg{Key: "violations", Value: itoa(len(prov.Violations))})
		t.AddSpan(exSpan, "reduce", 0, start, afterReduce.Sub(start))
		chaseSpan := t.AddSpan(exSpan, "chase", 0, afterReduce, afterChase.Sub(afterReduce),
			telemetry.SpanArg{Key: "rounds", Value: itoa(cst.Rounds)})
		t.AddSpan(chaseSpan, "chase/tgds", 0, afterReduce, cst.TgdDuration)
		t.AddSpan(chaseSpan, "chase/violations", 0, afterReduce.Add(cst.TgdDuration), cst.ViolationDuration)
		t.AddSpan(exSpan, "envelopes", 0, afterChase, end.Sub(afterChase))
	}
	return ex, nil
}

// SuspectSourceFacts returns |I_suspect|.
func (ex *Exchange) SuspectSourceFacts() int { return len(ex.suspect) }

// Profile returns a deterministic point-in-time snapshot of the
// Exchange's workload hardness profiler: per-signature and per-cluster
// solve accounting accumulated across every query since the Exchange was
// built (plus any history merged back via MergeProfile). When the
// Exchange was built without Options.Profiling the snapshot is empty,
// never nil.
func (ex *Exchange) Profile() *profile.Snapshot { return ex.prof.Snapshot() }

// MergeProfile folds a previously captured snapshot into the Exchange's
// profiler — the boot-recovery path that makes hardness history survive
// restarts. No-op when profiling is disabled.
func (ex *Exchange) MergeProfile(snap *profile.Snapshot) { ex.prof.Merge(snap) }

// ProfilingEnabled reports whether the Exchange records workload
// profiles (Options.Profiling at construction).
func (ex *Exchange) ProfilingEnabled() bool { return ex.prof != nil }

// IsSuspect reports whether a source fact is suspect (Definition 5).
func (ex *Exchange) IsSuspect(f instance.Fact) bool {
	id, ok := ex.Prov.FactIDOf(f)
	return ok && ex.suspect[id]
}

// Consistent reports whether the source instance has a solution (no
// violations at all).
func (ex *Exchange) Consistent() bool { return len(ex.Prov.Violations) == 0 }

// Answer computes the XR-Certain answers of one query using the segmentary
// query phase (Section 6.4/6.5): candidates are computed from the
// quasi-solution, safe candidates are accepted immediately, and the rest
// are grouped by fact signature and decided by one small DLP per signature.
func (ex *Exchange) Answer(q *logic.UCQ) (*Result, error) {
	return ex.AnswerOpts(q, Options{})
}

// AnswerOpts is Answer with per-call Options (context, timeout,
// parallelism, tracing). A canceled or expired context yields an error
// matching ErrCanceled / ErrTimeout under errors.Is.
func (ex *Exchange) AnswerOpts(q *logic.UCQ, opts Options) (*Result, error) {
	return ex.query(q, false, opts)
}

// Possible computes the XR-Possible answers of one query: the tuples that
// hold in at least one XR-solution (the union rather than the intersection
// over exchange-repair solutions — the "possible answers" dual studied in
// the inconsistency-tolerance literature). Certain answers are possible by
// definition, so safe candidates are accepted outright; the remaining
// candidates are decided by brave reasoning over the same per-signature
// programs the certain-answer path uses.
func (ex *Exchange) Possible(q *logic.UCQ) (*Result, error) {
	return ex.PossibleOpts(q, Options{})
}

// PossibleOpts is Possible with per-call Options.
func (ex *Exchange) PossibleOpts(q *logic.UCQ, opts Options) (*Result, error) {
	return ex.query(q, true, opts)
}

// query is the shared segmentary query phase: partition candidates into
// safe-accepted and signature groups, solve one program per signature
// (cautious for certain answers, brave for possible answers) across a
// bounded worker pool, and merge the outcomes in canonical key order.
//
// Results are deterministic at any parallelism: the answer set is merge-
// order independent (AnswerSet iterates in sorted key order) and every
// per-group stat is a pure function of the group, so totals agree with the
// sequential path. Cautious/brave consequences are semantically determined
// by the program, so learned-clause replay and solver scheduling can only
// change solving effort, never the answers.
func (ex *Exchange) query(q *logic.UCQ, brave bool, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.serialized()
	mt := ex.metersFor(&opts)
	ctx, cancel := opts.begin()
	defer cancel()

	rq, err := ex.Red.RewriteQuery(q)
	if err != nil {
		return nil, err
	}
	engine := "segmentary"
	if brave {
		engine = "segmentary-brave"
	}
	qspan := opts.Tracer.StartSpan(telemetry.NoSpan, "query "+q.Name+" ["+engine+"]")
	if rid := telemetry.RequestIDFromContext(ctx); rid != "" {
		qspan.Arg("request_id", rid)
	}
	res := &Result{Query: q, Answers: cq.NewAnswerSet()}
	if opts.Partial {
		res.Unknown = cq.NewAnswerSet()
	}
	defer func() {
		res.Stats.Duration = time.Since(start)
		mt.recordQuery(engine, res.Stats)
		mt.recordSigcacheSize(ex)
		qspan.ArgInt("candidates", int64(res.Stats.Candidates))
		qspan.ArgInt("programs", int64(res.Stats.Programs))
		qspan.End()
	}()

	if len(rq.Clauses) == 0 {
		return res, nil
	}
	cands := collectCandidates(rq, ex.Prov)
	res.Stats.Candidates = len(cands)

	// Partition candidates: safe-accepted vs signature groups.
	groups := make(map[string]*sigGroup)
	keys := make([]string, 0, len(groups))
	for _, c := range cands {
		if ex.safeCandidate(c) {
			res.Answers.Add(c.tuple)
			res.Stats.SafeAccepted++
			continue
		}
		key, sig := ex.signature(c)
		g, ok := groups[key]
		if !ok {
			g = &sigGroup{sig: sig}
			groups[key] = g
			keys = append(keys, key)
		}
		g.cands = append(g.cands, c)
	}
	sort.Strings(keys)

	// Solve one program per signature, fanning out across the pool. With
	// Options.Explain, each worker also runs the deterministic explanation
	// pass for its group right after deciding it (results are slotted by
	// group index, so parallel order never shows).
	outcomes := make([]*groupOutcome, len(keys))
	var groupExpl [][]*explain.Explanation
	if opts.Explain {
		groupExpl = make([][]*explain.Explanation, len(keys))
	}
	ferr := forEachWorker(ctx, opts.workers(), len(keys), func(ctx context.Context, worker, i int) error {
		out, err := ex.solveSig(ctx, keys[i], groups[keys[i]], brave, &opts, mt, q.Name, qspan.ID(), worker)
		if err != nil {
			return err
		}
		if opts.Explain {
			espan := opts.Tracer.StartSpan(qspan.ID(), "explain {"+keys[i]+"}")
			espan.SetLane(worker)
			es, err := ex.explainGroup(ctx, keys[i], groups[keys[i]], out, brave, q.Name)
			espan.End()
			if err != nil {
				return err
			}
			groupExpl[i] = es
		}
		outcomes[i] = out
		return nil
	})
	if ferr != nil {
		return nil, fmt.Errorf("xr: query %s: %w", q.Name, ferr)
	}
	for _, out := range outcomes {
		res.Stats.Retries += out.retries
		if out.degraded != nil {
			res.Degraded = append(res.Degraded, *out.degraded)
			for _, t := range out.unknown {
				res.Unknown.Add(t)
			}
			res.Stats.DegradedSignatures++
			res.Stats.UnknownTuples += len(out.unknown)
			continue
		}
		for _, t := range out.tuples {
			res.Answers.Add(t)
		}
		res.Stats.SolverAccepted += len(out.tuples)
		res.Stats.Programs++
		res.Stats.GroundRules += out.rules
		res.Stats.GroundAtoms += out.atoms
		if out.cacheHit {
			res.Stats.CacheHits++
		}
	}
	if opts.Explain {
		// Explanations follow candidate collection order (deterministic):
		// candidates outside every group were accepted as safe.
		solved := make(map[*candidate]*explain.Explanation, len(cands))
		for i, key := range keys {
			for j, c := range groups[key].cands {
				solved[c] = groupExpl[i][j]
			}
		}
		res.Explanations = make([]*explain.Explanation, 0, len(cands))
		for _, c := range cands {
			if e, ok := solved[c]; ok {
				res.Explanations = append(res.Explanations, e)
			} else {
				res.Explanations = append(res.Explanations, ex.safeExplanation(c, q.Name))
			}
		}
	}
	mt.recordDegradation(res.Stats.DegradedSignatures)
	return res, nil
}

// groupOutcome is the result of solving one signature group, merged into
// the Result after all groups finish.
type groupOutcome struct {
	tuples   [][]symtab.Value
	rules    int
	atoms    int
	cacheHit bool
	retries  int

	// degraded marks a group that could not be decided within its budget
	// under Options.Partial; its candidate tuples are reported as unknown
	// instead of being accepted or rejected.
	degraded *SignatureError
	unknown  [][]symtab.Value
}

// solveSig decides one signature group with graceful degradation: run one
// attempt, and on a per-signature failure (budget exhaustion, signature
// timeout, panic, injected fault) either retry once with a doubled budget
// and then degrade the group to unknown (Options.Partial), or fail the
// query (strict mode). A parent-context cancellation is never degradable —
// the whole query is ending — and always propagates.
func (ex *Exchange) solveSig(ctx context.Context, key string, g *sigGroup, brave bool, opts *Options, mt *meters, qname string, parent telemetry.SpanID, lane int) (*groupOutcome, error) {
	out, err := ex.solveSigAttempt(ctx, key, g, brave, opts, mt, qname, parent, lane, 1)
	if err == nil {
		return out, nil
	}
	if perr := ctxErr(ctx); perr != nil {
		return nil, perr
	}
	retries := 0
	if opts.Partial && retryableSigErr(err) {
		retries = 1
		mt.recordRetry()
		ex.prof.RecordRetry(key)
		out, err = ex.solveSigAttempt(ctx, key, g, brave, opts, mt, qname, parent, lane, 2)
		if err == nil {
			out.retries = retries
			return out, nil
		}
		if perr := ctxErr(ctx); perr != nil {
			return nil, perr
		}
	}
	if !opts.Partial {
		return nil, fmt.Errorf("signature {%s}: %w", key, err)
	}
	ex.prof.RecordDegraded(key)
	deg := &groupOutcome{
		retries:  retries,
		degraded: &SignatureError{Signature: key, Tuples: len(g.cands), Retries: retries, Err: err},
	}
	for _, c := range g.cands {
		deg.unknown = append(deg.unknown, c.tuple)
	}
	return deg, nil
}

// retryableSigErr reports whether a per-signature failure may succeed with
// a doubled budget: exhausted decision/conflict budgets and expired
// signature timeouts qualify, panics and injected faults do not.
func retryableSigErr(err error) bool {
	return errors.Is(err, ErrBudget) || errors.Is(err, ErrTimeout)
}

// sigSolve is the outcome of one signature solve, common to the fresh and
// reuse paths: the decided candidates, the program size, the solver's
// termination state, and the per-solve counter contributions (absolute on
// a throwaway solver, deltas on a persistent one).
type sigSolve struct {
	atoms    []asp.AtomID
	live     []*candidate
	kept     []asp.AtomID
	hasModel bool
	rules    int
	numAtoms int

	canceled  bool
	exhausted bool
	reused    bool // served by an already-built persistent solver

	candidatesTested int
	stabilityFails   int
	loopsLearned     int
	theoryRejects    int

	decisions, conflicts, propagations, restarts int64
	assumptionSolves, reductions, clausesDeleted int64
}

// solveSigAttempt solves one signature group once: fetch (or build) the
// cached base program and run cautious or brave reasoning under the
// per-signature budget scaled by scale — on the signature's persistent
// incremental solver by default, or on a throwaway solver with
// learned-clause replay under Options.DisableSolverReuse. Panics are
// converted to *InternalError (the worker pool must never crash the
// process); a panic on the reuse path additionally poisons the persistent
// solver so the next query rebuilds it.
func (ex *Exchange) solveSigAttempt(ctx context.Context, key string, g *sigGroup, brave bool, opts *Options, mt *meters, qname string, parent telemetry.SpanID, lane int, scale int64) (out *groupOutcome, err error) {
	defer recoverInternal("segmentary signature {"+key+"}", &err)
	start := time.Now()
	span := opts.Tracer.StartSpan(parent, "signature {"+key+"}")
	span.SetLane(lane)
	span.Arg("signature", key)
	if scale > 1 {
		span.ArgInt("attempt", scale)
	}
	defer span.End()
	if opts.SignatureTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.SignatureTimeout*time.Duration(scale))
		defer cancel()
	}
	sp, hit := ex.sigProgramFor(key)
	if hit && opts.FaultHook != nil {
		if herr := opts.FaultHook(faultSiteCache, key); herr != nil {
			// The cached entry is reported corrupt: drop it and rebuild from
			// the (immutable) exchange, losing only learned clauses.
			ex.discardSigProgram(key, sp)
			sp, hit = ex.sigProgramFor(key)
		}
	}
	if opts.FaultHook != nil {
		if herr := opts.FaultHook(faultSiteGround, key); herr != nil {
			return nil, fmt.Errorf("grounding signature program: %w", herr)
		}
	}
	sp.ensure(ex, g.sig)

	if opts.FaultHook != nil {
		if herr := opts.FaultHook(faultSiteSolve, key); herr != nil {
			return nil, fmt.Errorf("solving signature program: %w", herr)
		}
	}
	var sv *sigSolve
	if opts.DisableSolverReuse {
		sv = ex.solveSigFresh(ctx, sp, g, brave, opts, mt, scale)
	} else {
		sv = ex.solveSigReuse(ctx, sp, g, brave, opts, mt, scale)
	}
	// A cut-short session must be discarded: cautious narrowing
	// over-approximates and brave marking under-approximates when the
	// solver stops early.
	if sv.canceled {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return nil, ErrCanceled
	}
	if sv.exhausted {
		// Budget cutoffs are deterministic DPLL counters, so this record —
		// unlike a wall-clock timeout — aggregates identically at any
		// Parallelism.
		ex.prof.RecordBudgetExhausted(key)
		return nil, ErrBudget
	}
	if !sv.hasModel {
		return nil, fmt.Errorf("internal error: signature program has no stable model")
	}

	keptSet := make(map[asp.AtomID]bool, len(sv.kept))
	for _, a := range sv.kept {
		keptSet[a] = true
	}
	out = &groupOutcome{
		rules:    sv.rules,
		atoms:    sv.numAtoms,
		cacheHit: hit,
	}
	for i, c := range sv.live {
		if keptSet[sv.atoms[i]] {
			out.tuples = append(out.tuples, c.tuple)
		}
	}
	span.ArgInt("candidates", int64(len(sv.atoms)))
	if hit {
		span.Arg("cache", "hit")
	} else {
		span.Arg("cache", "miss")
	}
	span.ArgInt("decisions", sv.decisions)
	span.ArgInt("conflicts", sv.conflicts)
	if opts.Trace != nil || mt != nil || ex.prof != nil {
		engine := "segmentary"
		if brave {
			engine = "segmentary-brave"
		}
		ev := TraceEvent{
			Engine:           engine,
			Query:            qname,
			Signature:        g.sig,
			SignatureKey:     key,
			RequestID:        telemetry.RequestIDFromContext(ctx),
			Candidates:       len(sv.atoms),
			Atoms:            out.atoms,
			Rules:            out.rules,
			CacheHit:         hit,
			SolverReused:     sv.reused,
			CandidatesTested: sv.candidatesTested,
			StabilityFails:   sv.stabilityFails,
			LoopsLearned:     sv.loopsLearned,
			TheoryRejects:    sv.theoryRejects,
			Conflicts:        sv.conflicts,
			Decisions:        sv.decisions,
			Propagations:     sv.propagations,
			Restarts:         sv.restarts,
			AssumptionSolves: sv.assumptionSolves,
			Reductions:       sv.reductions,
			ClausesDeleted:   sv.clausesDeleted,
			Duration:         time.Since(start),
		}
		mt.recordProgram(ev)
		ex.prof.RecordSolve(key, profile.Solve{
			Wall:             ev.Duration,
			Candidates:       ev.Candidates,
			CandidatesTested: ev.CandidatesTested,
			StabilityFails:   ev.StabilityFails,
			Decisions:        ev.Decisions,
			Conflicts:        ev.Conflicts,
			Propagations:     ev.Propagations,
			Restarts:         ev.Restarts,
			AssumptionSolves: ev.AssumptionSolves,
			Reductions:       ev.Reductions,
			ClausesDeleted:   ev.ClausesDeleted,
			CacheHit:         ev.CacheHit,
			SolverReused:     ev.SolverReused,
		})
		if opts.Trace != nil {
			opts.Trace(ev)
		}
	}
	return out, nil
}

// solveSigFresh is the fresh-solve path (Options.DisableSolverReuse):
// specialize a throwaway clone with this query's candidates, replay the
// maximality clauses learned so far, and run the query on a solver that
// is discarded afterwards.
func (ex *Exchange) solveSigFresh(ctx context.Context, sp *sigProgram, g *sigGroup, brave bool, opts *Options, mt *meters, scale int64) *sigSolve {
	spec := sp.enc.specialize()
	sv := &sigSolve{
		atoms: make([]asp.AtomID, 0, len(g.cands)),
		live:  make([]*candidate, 0, len(g.cands)),
	}
	for _, c := range g.cands {
		qa, any := spec.addCandidate(c)
		if !any {
			continue
		}
		sv.atoms = append(sv.atoms, qa)
		sv.live = append(sv.live, c)
	}

	solver := asp.NewStableSolver(spec.gp)
	solver.SetContext(ctx)
	if opts.MaxDecisions > 0 || opts.MaxConflicts > 0 {
		solver.SetBudget(opts.MaxDecisions*scale, opts.MaxConflicts*scale)
	}
	sp.replayInto(solver)
	solver.Acceptor = spec.acceptorWithIndex(sp.idx, solver, func(clause []asp.AtomID) {
		if _, isNew := sp.addLearned(clause); isNew {
			mt.recordLearned()
		}
	})

	if brave {
		sv.kept, sv.hasModel = solver.Brave(sv.atoms)
	} else {
		sv.kept, sv.hasModel = solver.Cautious(sv.atoms)
	}
	sv.rules = len(spec.gp.Rules)
	sv.numAtoms = spec.gp.NumAtoms()
	sv.canceled = solver.Canceled()
	sv.exhausted = solver.Exhausted()
	sv.candidatesTested = solver.CandidatesTested
	sv.stabilityFails = solver.StabilityFails
	sv.loopsLearned = solver.LoopsLearned
	sv.theoryRejects = solver.TheoryRejects
	sv.decisions = solver.SatDecisions()
	sv.conflicts = solver.SatConflicts()
	sv.propagations = solver.SatPropagations()
	sv.restarts = solver.SatRestarts()
	sv.assumptionSolves = solver.SatAssumptionSolves()
	sv.reductions = solver.SatReductions()
	sv.clausesDeleted = solver.SatClausesDeleted()
	return sv
}

// solveSigReuse is the default path: run the query as one incremental
// session on the signature's persistent solver (see incremental.go).
// Candidates are memoized into the persistent program, learned clauses
// not yet installed are synced in, and the session's activation literal
// scopes every query-local clause, so the solver — and everything it
// learned — survives for the next query. The whole solve holds incMu,
// serializing concurrent queries over the same signature. Counters are
// reported as per-session deltas. A panic poisons the persistent solver
// before propagating, so a later query rebuilds it from the immutable
// base program.
func (ex *Exchange) solveSigReuse(ctx context.Context, sp *sigProgram, g *sigGroup, brave bool, opts *Options, mt *meters, scale int64) (sv *sigSolve) {
	sp.incMu.Lock()
	defer sp.incMu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			sp.poison()
			panic(r)
		}
	}()
	inc := sp.incSolverLocked(mt)
	sv = &sigSolve{reused: inc.sessions > 0}
	inc.sessions++
	mt.recordReuseSession(sv.reused)
	inc.syncLearned(sp)
	sv.atoms, sv.live = inc.wireCandidates(g)

	solver := inc.solver
	solver.SetContext(ctx)
	// Always re-arm: the budget is measured from here, and re-arming clears
	// the exhausted latch a previous query's cut-short session left behind.
	solver.SetBudget(opts.MaxDecisions*scale, opts.MaxConflicts*scale)
	solver.Acceptor = inc.spec.acceptorWithIndex(sp.idx, solver, func(clause []asp.AtomID) {
		key, isNew := sp.addLearned(clause)
		if isNew {
			mt.recordLearned()
		}
		// The acceptor already added the clause to this solver; record that
		// so syncLearned never re-installs it.
		inc.installed[key] = true
	})

	base := sigSolve{
		candidatesTested: solver.CandidatesTested,
		stabilityFails:   solver.StabilityFails,
		loopsLearned:     solver.LoopsLearned,
		theoryRejects:    solver.TheoryRejects,
		decisions:        solver.SatDecisions(),
		conflicts:        solver.SatConflicts(),
		propagations:     solver.SatPropagations(),
		restarts:         solver.SatRestarts(),
		assumptionSolves: solver.SatAssumptionSolves(),
		reductions:       solver.SatReductions(),
		clausesDeleted:   solver.SatClausesDeleted(),
	}
	sess := solver.StartSession(nil)
	if brave {
		sv.kept, sv.hasModel = sess.Brave(sv.atoms)
	} else {
		sv.kept, sv.hasModel = sess.Cautious(sv.atoms)
	}
	sess.Close()

	sv.rules = len(inc.spec.gp.Rules)
	sv.numAtoms = inc.spec.gp.NumAtoms()
	sv.canceled = solver.Canceled()
	sv.exhausted = solver.Exhausted()
	sv.candidatesTested = solver.CandidatesTested - base.candidatesTested
	sv.stabilityFails = solver.StabilityFails - base.stabilityFails
	sv.loopsLearned = solver.LoopsLearned - base.loopsLearned
	sv.theoryRejects = solver.TheoryRejects - base.theoryRejects
	sv.decisions = solver.SatDecisions() - base.decisions
	sv.conflicts = solver.SatConflicts() - base.conflicts
	sv.propagations = solver.SatPropagations() - base.propagations
	sv.restarts = solver.SatRestarts() - base.restarts
	sv.assumptionSolves = solver.SatAssumptionSolves() - base.assumptionSolves
	sv.reductions = solver.SatReductions() - base.reductions
	sv.clausesDeleted = solver.SatClausesDeleted() - base.clausesDeleted
	return sv
}

type sigGroup struct {
	sig   []int
	cands []*candidate
}

// safeCandidate reports whether some support set lies entirely in the safe
// part (the candidate then appears in every XR-solution).
func (ex *Exchange) safeCandidate(c *candidate) bool {
	for _, set := range c.supports {
		all := true
		for _, f := range set {
			if !ex.safeDerivable[f] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// signature returns the set of clusters whose influences contain the
// candidate (Section 6.4), as a sorted id list and canonical key.
func (ex *Exchange) signature(c *candidate) (string, []int) {
	seen := make(map[int]bool)
	var sig []int
	for _, set := range c.supports {
		for _, f := range set {
			for _, ci := range ex.clustersOf[f] {
				if !seen[ci] {
					seen[ci] = true
					sig = append(sig, ci)
				}
			}
		}
	}
	sort.Ints(sig)
	parts := make([]string, len(sig))
	for i, ci := range sig {
		parts[i] = itoa(ci)
	}
	return strings.Join(parts, ","), sig
}

// Repairs enumerates up to limit source repairs of the instance (0 = all)
// using the solver, without the exponential subset scan of SourceRepairs.
// Repairs are returned as source instances; the safe part appears in every
// repair, so enumeration effort is confined to the suspect envelope.
func (ex *Exchange) Repairs(limit int) ([]*instance.Instance, error) {
	return ex.RepairsOpts(limit, Options{})
}

// RepairsOpts is Repairs with per-call Options (context, timeout, tracing;
// enumeration is a single solver run, so Parallelism has no effect).
// A panic inside the enumeration is converted to an error matching
// ErrInternal instead of crashing the process.
func (ex *Exchange) RepairsOpts(limit int, opts Options) (repairs []*instance.Instance, err error) {
	defer recoverInternal("repairs", &err)
	start := time.Now()
	opts = opts.serialized()
	mt := ex.metersFor(&opts)
	ctx, cancel := opts.begin()
	defer cancel()

	// Variables only for the suspect part; everything safe is pinned.
	state := func(f chase.FactID) factState {
		if ex.safeDerivable[f] {
			return factTrue
		}
		return factVar
	}
	enc := newEncoder(ex.Prov, state)
	enc.build()
	solver := asp.NewStableSolver(enc.gp)
	solver.SetContext(ctx)
	solver.Acceptor = enc.maximalityAcceptor(solver)

	// Safe source facts belong to every repair.
	base := instance.New(ex.Prov.Instance.Catalog())
	n := ex.Prov.NumFacts()
	var srcVars []chase.FactID
	for id := 0; id < n; id++ {
		f := chase.FactID(id)
		if !ex.Prov.IsSource(f) {
			continue
		}
		if ex.safeDerivable[f] {
			base.AddFact(ex.Prov.Fact(f))
		} else {
			srcVars = append(srcVars, f)
		}
	}
	var out []*instance.Instance
	solver.Enumerate(func(m []bool) bool {
		rep := base.Clone()
		for _, f := range srcVars {
			if a, ok := enc.r[f]; ok && m[a] {
				rep.AddFact(ex.Prov.Fact(f))
			}
		}
		out = append(out, rep)
		return limit == 0 || len(out) < limit
	})
	if solver.Canceled() {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("xr: repairs: %w", err)
		}
	}
	mt.recordRepairs(len(out))
	if opts.Trace != nil || mt != nil {
		ev := TraceEvent{
			Engine:           "repairs",
			RequestID:        telemetry.RequestIDFromContext(ctx),
			Candidates:       len(srcVars),
			Atoms:            enc.gp.NumAtoms(),
			Rules:            len(enc.gp.Rules),
			CandidatesTested: solver.CandidatesTested,
			StabilityFails:   solver.StabilityFails,
			LoopsLearned:     solver.LoopsLearned,
			TheoryRejects:    solver.TheoryRejects,
			Conflicts:        solver.SatConflicts(),
			Decisions:        solver.SatDecisions(),
			Propagations:     solver.SatPropagations(),
			Restarts:         solver.SatRestarts(),
			AssumptionSolves: solver.SatAssumptionSolves(),
			Reductions:       solver.SatReductions(),
			ClausesDeleted:   solver.SatClausesDeleted(),
			Duration:         time.Since(start),
		}
		mt.recordProgram(ev)
		if opts.Trace != nil {
			opts.Trace(ev)
		}
	}
	return out, nil
}
