package xr

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/asp"
	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/gavreduce"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
)

// Cluster is a violation cluster (Definition 8, approximated per
// Propositions 5–6 by grouping violations with overlapping source repair
// envelopes) together with its source envelope and influence.
type Cluster struct {
	Violations []int // indices into the provenance's violation list
	// SourceEnvelope is the S-restriction of the union of the violations'
	// support closures — a source repair envelope for the cluster
	// (Proposition 6).
	SourceEnvelope map[chase.FactID]bool
	// Influence is influence(SourceEnvelope) (Definition 7): the target
	// half of the cluster's exchange repair envelope (Proposition 4).
	Influence map[chase.FactID]bool
}

// ExchangeStats records exchange-phase measurements (Table 4).
type ExchangeStats struct {
	SourceFacts    int
	TotalFacts     int // source + derived (quasi-solution)
	Violations     int
	Clusters       int
	SuspectSource  int // |I_suspect|
	SafeDerivable  int // facts derivable from the safe part alone
	ReduceDuration time.Duration
	ChaseDuration  time.Duration
	EnvDuration    time.Duration
	Duration       time.Duration
}

// Exchange is the result of the query-independent exchange phase
// (Section 6.5): the reduced mapping, the chased instance with provenance,
// the suspect/safe split, and the violation clusters with influences.
type Exchange struct {
	Red  *gavreduce.Reduction
	Prov *chase.Provenance

	Clusters []*Cluster
	// suspect marks the source facts in some violation's support closure
	// (Definition 5); their union is the source repair envelope I_suspect
	// (Proposition 3).
	suspect map[chase.FactID]bool
	// safeDerivable marks facts derivable without any suspect source fact;
	// this is I_safe ∪ J_safe computed on the support hypergraph.
	safeDerivable map[chase.FactID]bool
	// clustersOf maps each fact to the (sorted) clusters whose influence
	// contains it.
	clustersOf map[chase.FactID][]int

	Stats ExchangeStats
}

// NewExchange runs the exchange phase: reduce the mapping, chase with
// provenance, compute violations, support closures, the suspect/safe split,
// violation clusters, and cluster influences. All of this is
// query-independent and polynomial (Propositions 3–6).
func NewExchange(m *mapping.Mapping, src *instance.Instance) (*Exchange, error) {
	start := time.Now()
	red, err := gavreduce.Reduce(m)
	if err != nil {
		return nil, err
	}
	afterReduce := time.Now()
	prov, err := chase.GAV(red.M, src)
	if err != nil {
		return nil, err
	}
	afterChase := time.Now()

	ex := &Exchange{
		Red:        red,
		Prov:       prov,
		suspect:    make(map[chase.FactID]bool),
		clustersOf: make(map[chase.FactID][]int),
	}

	// Support closure per violation; cluster by overlapping source envelopes
	// (disjoint envelopes are pairwise independent, Proposition 5).
	type vioEnv struct {
		srcEnv []chase.FactID
	}
	parent := make([]int, len(prov.Violations))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	envs := make([]vioEnv, len(prov.Violations))
	owner := make(map[chase.FactID]int) // source fact -> first violation seen
	for vi, v := range prov.Violations {
		closure := prov.SupportClosure(v.Body)
		var srcEnv []chase.FactID
		for f := range closure {
			if prov.IsSource(f) {
				srcEnv = append(srcEnv, f)
				ex.suspect[f] = true
				if prev, ok := owner[f]; ok {
					union(prev, vi)
				} else {
					owner[f] = vi
				}
			}
		}
		envs[vi] = vioEnv{srcEnv: srcEnv}
	}

	// Materialize clusters.
	byRoot := make(map[int]*Cluster)
	for vi := range prov.Violations {
		root := find(vi)
		c, ok := byRoot[root]
		if !ok {
			c = &Cluster{SourceEnvelope: make(map[chase.FactID]bool)}
			byRoot[root] = c
			ex.Clusters = append(ex.Clusters, c)
		}
		c.Violations = append(c.Violations, vi)
		for _, f := range envs[vi].srcEnv {
			c.SourceEnvelope[f] = true
		}
	}
	sort.Slice(ex.Clusters, func(i, j int) bool {
		return ex.Clusters[i].Violations[0] < ex.Clusters[j].Violations[0]
	})
	for ci, c := range ex.Clusters {
		c.Influence = prov.Influence(c.SourceEnvelope)
		for f := range c.Influence {
			ex.clustersOf[f] = append(ex.clustersOf[f], ci)
		}
	}
	for _, cs := range ex.clustersOf {
		sort.Ints(cs)
	}

	ex.safeDerivable = prov.SafeDerivable(ex.suspect)

	end := time.Now()
	ex.Stats = ExchangeStats{
		SourceFacts:    src.Len(),
		TotalFacts:     prov.NumFacts(),
		Violations:     len(prov.Violations),
		Clusters:       len(ex.Clusters),
		SuspectSource:  len(ex.suspect),
		SafeDerivable:  len(ex.safeDerivable),
		ReduceDuration: afterReduce.Sub(start),
		ChaseDuration:  afterChase.Sub(afterReduce),
		EnvDuration:    end.Sub(afterChase),
		Duration:       end.Sub(start),
	}
	return ex, nil
}

// SuspectSourceFacts returns |I_suspect|.
func (ex *Exchange) SuspectSourceFacts() int { return len(ex.suspect) }

// IsSuspect reports whether a source fact is suspect (Definition 5).
func (ex *Exchange) IsSuspect(f instance.Fact) bool {
	id, ok := ex.Prov.FactIDOf(f)
	return ok && ex.suspect[id]
}

// Consistent reports whether the source instance has a solution (no
// violations at all).
func (ex *Exchange) Consistent() bool { return len(ex.Prov.Violations) == 0 }

// Answer computes the XR-Certain answers of one query using the segmentary
// query phase (Section 6.4/6.5): candidates are computed from the
// quasi-solution, safe candidates are accepted immediately, and the rest
// are grouped by fact signature and decided by one small DLP per signature.
func (ex *Exchange) Answer(q *logic.UCQ) (*Result, error) {
	start := time.Now()
	rq, err := ex.Red.RewriteQuery(q)
	if err != nil {
		return nil, err
	}
	res := &Result{Query: q, Answers: cq.NewAnswerSet()}
	defer func() { res.Stats.Duration = time.Since(start) }()

	if len(rq.Clauses) == 0 {
		return res, nil
	}
	cands := collectCandidates(rq, ex.Prov)
	res.Stats.Candidates = len(cands)

	// Partition candidates: safe-accepted vs signature groups.
	groups := make(map[string]*sigGroup)
	for _, c := range cands {
		if ex.safeCandidate(c) {
			res.Answers.Add(c.tuple)
			res.Stats.SafeAccepted++
			continue
		}
		key, sig := ex.signature(c)
		g, ok := groups[key]
		if !ok {
			g = &sigGroup{sig: sig}
			groups[key] = g
		}
		g.cands = append(g.cands, c)
	}

	// Solve one program per signature.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := ex.solveGroup(groups[k], res); err != nil {
			return nil, fmt.Errorf("xr: query %s: %w", q.Name, err)
		}
	}
	return res, nil
}

// Possible computes the XR-Possible answers of one query: the tuples that
// hold in at least one XR-solution (the union rather than the intersection
// over exchange-repair solutions — the "possible answers" dual studied in
// the inconsistency-tolerance literature). Certain answers are possible by
// definition, so safe candidates are accepted outright; the remaining
// candidates are decided by brave reasoning over the same per-signature
// programs the certain-answer path uses.
func (ex *Exchange) Possible(q *logic.UCQ) (*Result, error) {
	start := time.Now()
	rq, err := ex.Red.RewriteQuery(q)
	if err != nil {
		return nil, err
	}
	res := &Result{Query: q, Answers: cq.NewAnswerSet()}
	defer func() { res.Stats.Duration = time.Since(start) }()

	if len(rq.Clauses) == 0 {
		return res, nil
	}
	cands := collectCandidates(rq, ex.Prov)
	res.Stats.Candidates = len(cands)

	groups := make(map[string]*sigGroup)
	for _, c := range cands {
		if ex.safeCandidate(c) {
			res.Answers.Add(c.tuple)
			res.Stats.SafeAccepted++
			continue
		}
		key, sig := ex.signature(c)
		g, ok := groups[key]
		if !ok {
			g = &sigGroup{sig: sig}
			groups[key] = g
		}
		g.cands = append(g.cands, c)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := ex.solveGroupBrave(groups[k], res); err != nil {
			return nil, fmt.Errorf("xr: query %s: %w", q.Name, err)
		}
	}
	return res, nil
}

// solveGroupBrave mirrors solveGroup with brave instead of cautious
// reasoning.
func (ex *Exchange) solveGroupBrave(g *sigGroup, res *Result) error {
	enc, solver, atoms, live := ex.prepareGroup(g)
	res.Stats.Programs++
	res.Stats.GroundRules += len(enc.gp.Rules)
	res.Stats.GroundAtoms += enc.gp.NumAtoms()

	kept, hasModel := solver.Brave(atoms)
	if !hasModel {
		return fmt.Errorf("internal error: signature program has no stable model")
	}
	keptSet := make(map[asp.AtomID]bool, len(kept))
	for _, a := range kept {
		keptSet[a] = true
	}
	for i, c := range live {
		if keptSet[atoms[i]] {
			res.Answers.Add(c.tuple)
			res.Stats.SolverAccepted++
		}
	}
	return nil
}

type sigGroup struct {
	sig   []int
	cands []*candidate
}

// safeCandidate reports whether some support set lies entirely in the safe
// part (the candidate then appears in every XR-solution).
func (ex *Exchange) safeCandidate(c *candidate) bool {
	for _, set := range c.supports {
		all := true
		for _, f := range set {
			if !ex.safeDerivable[f] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// signature returns the set of clusters whose influences contain the
// candidate (Section 6.4), as a sorted id list and canonical key.
func (ex *Exchange) signature(c *candidate) (string, []int) {
	seen := make(map[int]bool)
	var sig []int
	for _, set := range c.supports {
		for _, f := range set {
			for _, ci := range ex.clustersOf[f] {
				if !seen[ci] {
					seen[ci] = true
					sig = append(sig, ci)
				}
			}
		}
	}
	sort.Ints(sig)
	parts := make([]string, len(sig))
	for i, ci := range sig {
		parts[i] = itoa(ci)
	}
	return strings.Join(parts, ","), sig
}

// prepareGroup builds the signature program (the restriction of the
// Theorem 2 grounding to the signature's focus, with safe facts pinned
// true — Theorem 4), shared by the cautious and brave query paths.
func (ex *Exchange) prepareGroup(g *sigGroup) (*encoder, *asp.StableSolver, []asp.AtomID, []*candidate) {
	focus := make(map[chase.FactID]bool)
	for _, ci := range g.sig {
		for f := range ex.Clusters[ci].Influence {
			focus[f] = true
		}
	}
	state := func(f chase.FactID) factState {
		switch {
		case ex.safeDerivable[f]:
			return factTrue
		case focus[f]:
			return factVar
		default:
			return factAbsent
		}
	}
	enc := newEncoder(ex.Prov, state)
	enc.buildFocused(focus)

	atoms := make([]asp.AtomID, 0, len(g.cands))
	live := make([]*candidate, 0, len(g.cands))
	for _, c := range g.cands {
		qa, any := enc.addCandidate(c)
		if !any {
			continue
		}
		atoms = append(atoms, qa)
		live = append(live, c)
	}
	solver := asp.NewStableSolver(enc.gp)
	solver.Acceptor = enc.maximalityAcceptor(solver)
	return enc, solver, atoms, live
}

// solveGroup solves one signature program and accepts the cautious
// candidates.
func (ex *Exchange) solveGroup(g *sigGroup, res *Result) error {
	enc, solver, atoms, live := ex.prepareGroup(g)
	res.Stats.Programs++
	res.Stats.GroundRules += len(enc.gp.Rules)
	res.Stats.GroundAtoms += enc.gp.NumAtoms()
	kept, hasModel := solver.Cautious(atoms)
	if debugSolver {
		fmt.Printf("[xr] group sig=%v cands=%d atoms=%d rules=%d tested=%d fails=%d loops=%d conflicts=%d props=%d\n",
			g.sig, len(atoms), enc.gp.NumAtoms(), len(enc.gp.Rules),
			solver.CandidatesTested, solver.StabilityFails, solver.LoopsLearned,
			solver.SatConflicts(), solver.SatPropagations())
	}
	if !hasModel {
		return fmt.Errorf("internal error: signature program has no stable model")
	}
	keptSet := make(map[asp.AtomID]bool, len(kept))
	for _, a := range kept {
		keptSet[a] = true
	}
	for i, c := range live {
		if keptSet[atoms[i]] {
			res.Answers.Add(c.tuple)
			res.Stats.SolverAccepted++
		}
	}
	return nil
}

// debugSolver enables per-signature solver diagnostics on stderr.
var debugSolver = os.Getenv("XR_DEBUG_SOLVER") != ""

// Repairs enumerates up to limit source repairs of the instance (0 = all)
// using the solver, without the exponential subset scan of SourceRepairs.
// Repairs are returned as source instances; the safe part appears in every
// repair, so enumeration effort is confined to the suspect envelope.
func (ex *Exchange) Repairs(limit int) ([]*instance.Instance, error) {
	// Variables only for the suspect part; everything safe is pinned.
	state := func(f chase.FactID) factState {
		if ex.safeDerivable[f] {
			return factTrue
		}
		return factVar
	}
	enc := newEncoder(ex.Prov, state)
	enc.build()
	solver := asp.NewStableSolver(enc.gp)
	solver.Acceptor = enc.maximalityAcceptor(solver)

	// Safe source facts belong to every repair.
	base := instance.New(ex.Prov.Instance.Catalog())
	n := ex.Prov.NumFacts()
	var srcVars []chase.FactID
	for id := 0; id < n; id++ {
		f := chase.FactID(id)
		if !ex.Prov.IsSource(f) {
			continue
		}
		if ex.safeDerivable[f] {
			base.AddFact(ex.Prov.Fact(f))
		} else {
			srcVars = append(srcVars, f)
		}
	}
	var out []*instance.Instance
	solver.Enumerate(func(m []bool) bool {
		rep := base.Clone()
		for _, f := range srcVars {
			if a, ok := enc.r[f]; ok && m[a] {
				rep.AddFact(ex.Prov.Fact(f))
			}
		}
		out = append(out, rep)
		return limit == 0 || len(out) < limit
	})
	return out, nil
}
