package xr

import (
	"fmt"
	"time"

	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
)

// maxBruteForceFacts bounds the exponential repair enumeration.
const maxBruteForceFacts = 22

// SourceRepairs enumerates every source repair of src w.r.t. m
// (Definition 1): the maximal sub-instances that have a solution. It is
// exponential in |src| and intended as a reference implementation for small
// instances; it refuses instances larger than 22 facts.
func SourceRepairs(m *mapping.Mapping, src *instance.Instance) (repairs []*instance.Instance, err error) {
	defer recoverInternal("source repairs", &err)
	facts := src.Facts()
	n := len(facts)
	if n > maxBruteForceFacts {
		return nil, fmt.Errorf("xr: brute force limited to %d source facts, got %d: %w", maxBruteForceFacts, n, ErrTooLarge)
	}
	// Consistency is downward closed, so the repairs are the maximal
	// consistent subsets.
	consistent := make(map[uint32]bool)
	isConsistent := func(bits uint32) bool {
		if v, ok := consistent[bits]; ok {
			return v
		}
		sub := instance.New(src.Catalog())
		for i := 0; i < n; i++ {
			if bits&(1<<i) != 0 {
				sub.AddFact(facts[i])
			}
		}
		v := chase.HasSolution(m, sub)
		consistent[bits] = v
		return v
	}
	for bits := uint32(0); bits < 1<<n; bits++ {
		if !isConsistent(bits) {
			continue
		}
		maximal := true
		for i := 0; i < n; i++ {
			if bits&(1<<i) == 0 && isConsistent(bits|1<<i) {
				maximal = false
				break
			}
		}
		if !maximal {
			continue
		}
		sub := instance.New(src.Catalog())
		for i := 0; i < n; i++ {
			if bits&(1<<i) != 0 {
				sub.AddFact(facts[i])
			}
		}
		repairs = append(repairs, sub)
	}
	return repairs, nil
}

// BruteForce computes XR-Certain answers by explicit repair enumeration:
//
//	XR-Certain(q, I, M) = ⋂ { q↓(chase(I', M)) : I' a source repair of I }.
//
// It uses the native GLAV chase and no reduction or solver, making it an
// independent oracle for validating the monolithic and segmentary
// pipelines on small instances.
func BruteForce(m *mapping.Mapping, src *instance.Instance, queries []*logic.UCQ) ([]*Result, error) {
	return BruteForceOpts(m, src, queries, Options{})
}

// BruteForceOpts is BruteForce with Options. Only Metrics is consulted
// (the enumeration has no solver to cancel); each query is counted under
// the engine name "bruteforce" and enumerated repairs feed
// xr_repairs_enumerated_total.
func BruteForceOpts(m *mapping.Mapping, src *instance.Instance, queries []*logic.UCQ, opts Options) (results []*Result, err error) {
	defer recoverInternal("bruteforce", &err)
	mt := newMeters(opts.Metrics)
	repairs, err := SourceRepairs(m, src)
	if err != nil {
		return nil, err
	}
	if len(repairs) == 0 {
		return nil, fmt.Errorf("xr: internal error: no source repairs (the empty instance is always consistent)")
	}
	mt.recordRepairs(len(repairs))
	solutions := make([]*instance.Instance, len(repairs))
	for i, rep := range repairs {
		j, err := chase.Native(m, rep)
		if err != nil {
			return nil, fmt.Errorf("xr: repair has no solution: %w", err)
		}
		solutions[i] = j
	}
	results = make([]*Result, len(queries))
	for qi, q := range queries {
		start := time.Now()
		var ans *cq.AnswerSet
		for _, j := range solutions {
			a := cq.EvalUCQ(q, j).WithoutNulls()
			if ans == nil {
				ans = a
			} else {
				ans.Intersect(a)
			}
		}
		results[qi] = &Result{Query: q, Answers: ans}
		results[qi].Stats.Duration = time.Since(start)
		mt.recordQuery("bruteforce", results[qi].Stats)
	}
	return results, nil
}

// BruteForcePossible computes XR-Possible answers by explicit repair
// enumeration:
//
//	XR-Possible(q, I, M) = ⋃ { q↓(chase(I', M)) : I' a source repair of I }.
//
// Like BruteForce, it serves as an independent oracle for the brave
// reasoning path of the segmentary pipeline.
func BruteForcePossible(m *mapping.Mapping, src *instance.Instance, queries []*logic.UCQ) (results []*Result, err error) {
	defer recoverInternal("bruteforce-possible", &err)
	repairs, err := SourceRepairs(m, src)
	if err != nil {
		return nil, err
	}
	solutions := make([]*instance.Instance, len(repairs))
	for i, rep := range repairs {
		j, err := chase.Native(m, rep)
		if err != nil {
			return nil, fmt.Errorf("xr: repair has no solution: %w", err)
		}
		solutions[i] = j
	}
	results = make([]*Result, len(queries))
	for qi, q := range queries {
		ans := cq.NewAnswerSet()
		for _, j := range solutions {
			for _, t := range cq.EvalUCQ(q, j).WithoutNulls().Tuples() {
				ans.Add(t)
			}
		}
		results[qi] = &Result{Query: q, Answers: ans}
	}
	return results, nil
}
