package xr

import (
	"context"
	"testing"

	"repro/internal/genome"
)

// benchGroups prepares the solve stage of the multi-candidate genome join
// ep3: an exchange with every signature program ground and cached, plus the
// query's signature groups in canonical order. Candidate collection and
// grounding run once, so iterating the returned closure measures only the
// per-signature solve stage (the subject of DESIGN.md §17).
func benchGroups(b *testing.B, profile string) (*Exchange, []string, []*sigGroup) {
	b.Helper()
	w, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	p, ok := genome.ProfileByName(profile, 0.1)
	if !ok {
		b.Fatalf("unknown profile %s", profile)
	}
	src := genome.Generate(w, p)
	ex, err := NewExchange(w.M, src)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := genome.Queries(w)
	if err != nil {
		b.Fatal(err)
	}
	ep3 := qs[2]
	if ep3.Name != "ep3" {
		b.Fatal("query order changed")
	}
	rq, err := ex.Red.RewriteQuery(ep3)
	if err != nil {
		b.Fatal(err)
	}
	groups := make(map[string]*sigGroup)
	var keys []string
	for _, c := range collectCandidates(rq, ex.Prov) {
		if ex.safeCandidate(c) {
			continue
		}
		key, sig := ex.signature(c)
		g, okG := groups[key]
		if !okG {
			g = &sigGroup{sig: sig}
			groups[key] = g
			keys = append(keys, key)
		}
		g.cands = append(g.cands, c)
	}
	ordered := make([]*sigGroup, len(keys))
	for i, k := range keys {
		sp, _ := ex.sigProgramFor(k)
		sp.ensure(ex, groups[k].sig)
		ordered[i] = groups[k]
	}
	if len(ordered) == 0 {
		b.Fatalf("profile %s produced no solver groups for ep3", profile)
	}
	return ex, keys, ordered
}

// BenchmarkIncrementalSolve measures the per-signature solve stage of the
// genome multi-candidate join ep3 across the size axis, in three variants:
//
//   - cold: a throwaway solver per signature, no learned clauses to
//     replay (first-ever query on the signature);
//   - warm-cache: a throwaway solver per signature with learned-clause
//     replay from the warm signature cache (the pre-§17 fast path);
//   - persistent: one persistent solver per signature answering via an
//     assumption session, clause database held in place.
//
// Grounding and candidate collection are excluded from all variants; see
// BenchmarkSignatureCache (root) for the end-to-end query cost.
func BenchmarkIncrementalSolve(b *testing.B) {
	ctx := context.Background()
	for _, profile := range []string{"S3", "M3", "L3"} {
		solveAll := func(b *testing.B, ex *Exchange, keys []string, gs []*sigGroup, opts *Options) {
			mt := newMeters(nil)
			for i, g := range gs {
				sp, _ := ex.sigProgramFor(keys[i])
				var sv *sigSolve
				if opts.DisableSolverReuse {
					sv = ex.solveSigFresh(ctx, sp, g, false, opts, mt, 1)
				} else {
					sv = ex.solveSigReuse(ctx, sp, g, false, opts, mt, 1)
				}
				if !sv.hasModel {
					b.Fatal("signature program has no stable model")
				}
			}
		}
		b.Run("cold/"+profile, func(b *testing.B) {
			opts := (Options{DisableSolverReuse: true}).serialized()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ex, keys, gs := benchGroups(b, profile)
				b.StartTimer()
				solveAll(b, ex, keys, gs, &opts)
			}
		})
		b.Run("warm-cache/"+profile, func(b *testing.B) {
			opts := (Options{DisableSolverReuse: true}).serialized()
			ex, keys, gs := benchGroups(b, profile)
			solveAll(b, ex, keys, gs, &opts) // warm the learned-clause ledger
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solveAll(b, ex, keys, gs, &opts)
			}
		})
		b.Run("persistent/"+profile, func(b *testing.B) {
			opts := (Options{}).serialized()
			ex, keys, gs := benchGroups(b, profile)
			solveAll(b, ex, keys, gs, &opts) // build the persistent solvers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solveAll(b, ex, keys, gs, &opts)
			}
		})
	}
}
