package xr

import (
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/logic"
	"repro/internal/telemetry"
)

// countersJSON marshals only the counter section of a registry snapshot —
// the part whose totals must be deterministic at any parallelism
// (histograms record wall times and are excluded by construction).
func countersJSON(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	b, err := json.Marshal(reg.Snapshot().Counters)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsMatchTraceEvents cross-checks the two observability channels:
// the registry totals must equal the sums over the raw trace events, and
// the per-query counters must match the returned stats.
func TestMetricsMatchTraceEvents(t *testing.T) {
	w, q := conflictFarm(12)
	reg := telemetry.NewRegistry()
	ex, err := NewExchangeOpts(w.m, w.src, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters["xr_exchanges_total"] != 1 {
		t.Fatalf("exchanges counter = %d, want 1", snap.Counters["xr_exchanges_total"])
	}
	for name, want := range map[string]int64{
		"xr_exchange_source_facts_total":   int64(ex.Stats.SourceFacts),
		"xr_exchange_facts_total":          int64(ex.Stats.TotalFacts),
		"xr_exchange_violations_total":     int64(ex.Stats.Violations),
		"xr_exchange_clusters_total":       int64(ex.Stats.Clusters),
		"xr_exchange_suspect_source_total": int64(ex.Stats.SuspectSource),
		"xr_exchange_safe_derivable_total": int64(ex.Stats.SafeDerivable),
	} {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	for _, h := range []string{
		"xr_exchange_reduce_seconds", "xr_exchange_chase_seconds",
		"xr_exchange_envelopes_seconds", "xr_exchange_seconds",
	} {
		if n := snap.Histograms[h].Count; n != 1 {
			t.Fatalf("%s count = %d, want 1", h, n)
		}
	}

	var events []TraceEvent
	res, err := ex.AnswerOpts(q, Options{
		Parallelism: 4,
		Trace:       func(ev TraceEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}

	var decisions, conflicts, propagations, restarts, tested int64
	for _, ev := range events {
		decisions += ev.Decisions
		conflicts += ev.Conflicts
		propagations += ev.Propagations
		restarts += ev.Restarts
		tested += int64(ev.CandidatesTested)
	}
	if decisions == 0 || propagations == 0 {
		t.Fatal("conflict farm should exercise the solver")
	}
	snap = reg.Snapshot()
	for name, want := range map[string]int64{
		"xr_programs_total":                 int64(res.Stats.Programs),
		"xr_sigcache_misses_total":          int64(res.Stats.Programs - res.Stats.CacheHits),
		"xr_sigcache_hits_total":            int64(res.Stats.CacheHits),
		"xr_queries_total":                  1,
		"xr_segmentary_queries_total":       1,
		"xr_query_candidates_total":         int64(res.Stats.Candidates),
		"xr_query_safe_accepted_total":      int64(res.Stats.SafeAccepted),
		"xr_query_solver_accepted_total":    int64(res.Stats.SolverAccepted),
		"xr_solver_decisions_total":         decisions,
		"xr_solver_conflicts_total":         conflicts,
		"xr_solver_propagations_total":      propagations,
		"xr_solver_restarts_total":          restarts,
		"xr_solver_candidates_tested_total": tested,
	} {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Gauges["xr_sigcache_entries"] != int64(res.Stats.Programs) {
		t.Fatalf("sigcache gauge = %d, want %d", snap.Gauges["xr_sigcache_entries"], res.Stats.Programs)
	}
	if snap.Histograms["xr_program_seconds"].Count != int64(res.Stats.Programs) {
		t.Fatalf("program histogram count = %d, want %d",
			snap.Histograms["xr_program_seconds"].Count, res.Stats.Programs)
	}

	// A second identical query adds only cache hits, never misses, and the
	// learned-clause counter stays in lockstep with the cache's actual
	// contents (replayed duplicates are not re-counted).
	if _, err := ex.AnswerOpts(q, Options{}); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["xr_sigcache_misses_total"]; got != int64(res.Stats.Programs-res.Stats.CacheHits) {
		t.Fatalf("second run added cache misses: %d", got)
	}
	var totalLearned int64
	ex.progMu.Lock()
	for _, sp := range ex.progCache {
		sp.mu.Lock()
		totalLearned += int64(len(sp.learned))
		sp.mu.Unlock()
	}
	ex.progMu.Unlock()
	if got := snap.Counters["xr_sigcache_learned_clauses_total"]; got != totalLearned {
		t.Fatalf("learned-clause counter = %d, cache holds %d", got, totalLearned)
	}
}

// TestMetricsCounterDeterminism runs the same workload sequentially and
// with a saturated pool into two fresh registries; the counter sections
// must be byte-identical JSON.
func TestMetricsCounterDeterminism(t *testing.T) {
	w, q := conflictFarm(24)
	regSeq, regPar := telemetry.NewRegistry(), telemetry.NewRegistry()
	exSeq, err := NewExchangeOpts(w.m, w.src, Options{Metrics: regSeq})
	if err != nil {
		t.Fatal(err)
	}
	exPar, err := NewExchangeOpts(w.m, w.src, Options{Metrics: regPar})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeat: cache hits and replay must agree too
		if _, err := exSeq.AnswerOpts(q, Options{Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := exPar.AnswerOpts(q, Options{Parallelism: 8}); err != nil {
			t.Fatal(err)
		}
		if _, err := exSeq.PossibleOpts(q, Options{Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := exPar.PossibleOpts(q, Options{Parallelism: 8}); err != nil {
			t.Fatal(err)
		}
	}
	seq, par := countersJSON(t, regSeq), countersJSON(t, regPar)
	if seq != par {
		t.Fatalf("counter totals diverge across parallelism:\nseq: %s\npar: %s", seq, par)
	}
}

// TestTraceSerializedUnderParallelism asserts the Trace hook is never
// invoked concurrently even with a saturated worker pool (run under the
// race detector, this also proves the hook needs no internal locking).
func TestTraceSerializedUnderParallelism(t *testing.T) {
	w, q := conflictFarm(24)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	var inFlight, maxInFlight, calls atomic.Int64
	unsynced := 0 // written without synchronization: the race detector flags overlap
	res, err := ex.AnswerOpts(q, Options{
		Parallelism: 8,
		Trace: func(TraceEvent) {
			n := inFlight.Add(1)
			if n > maxInFlight.Load() {
				maxInFlight.Store(n)
			}
			unsynced++
			calls.Add(1)
			time.Sleep(50 * time.Microsecond) // widen any overlap window
			inFlight.Add(-1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxInFlight.Load(); got != 1 {
		t.Fatalf("trace hook overlapped: max in-flight = %d", got)
	}
	if int(calls.Load()) != res.Stats.Programs || unsynced != res.Stats.Programs {
		t.Fatalf("trace calls = %d/%d, programs = %d", calls.Load(), unsynced, res.Stats.Programs)
	}
}

// TestMetricsOtherEngines covers the monolithic, repairs, and brute-force
// recording paths.
func TestMetricsOtherEngines(t *testing.T) {
	w, q := conflictFarm(2)
	reg := telemetry.NewRegistry()

	results, err := Monolithic(w.m, w.src, []*logic.UCQ{q, q}, MonolithicOptions{Parallelism: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["xr_monolithic_queries_total"]; got != 2 {
		t.Fatalf("monolithic queries counter = %d, want 2", got)
	}
	if got := snap.Counters["xr_programs_total"]; got != int64(len(results)) {
		t.Fatalf("programs counter = %d, want %d", got, len(results))
	}
	// The monolithic engine has no signature cache: neither hits nor misses.
	if snap.Counters["xr_sigcache_hits_total"] != 0 || snap.Counters["xr_sigcache_misses_total"] != 0 {
		t.Fatalf("monolithic run touched sigcache counters: %v", snap.Counters)
	}

	ex, err := NewExchangeOpts(w.m, w.src, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := ex.RepairsOpts(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["xr_repairs_enumerated_total"]; got != int64(len(reps)) {
		t.Fatalf("repairs counter = %d, want %d", got, len(reps))
	}

	bfReg := telemetry.NewRegistry()
	if _, err := BruteForceOpts(w.m, w.src, []*logic.UCQ{q}, Options{Metrics: bfReg}); err != nil {
		t.Fatal(err)
	}
	bf := bfReg.Snapshot()
	if bf.Counters["xr_bruteforce_queries_total"] != 1 {
		t.Fatalf("bruteforce queries counter = %d, want 1", bf.Counters["xr_bruteforce_queries_total"])
	}
	if bf.Counters["xr_repairs_enumerated_total"] != int64(len(reps)) {
		t.Fatalf("bruteforce repairs = %d, solver repairs = %d",
			bf.Counters["xr_repairs_enumerated_total"], len(reps))
	}
}
