package xr

import (
	"sort"
	"strings"

	"repro/internal/asp"
)

// This file implements the persistent per-signature solver behind the
// default query path (DESIGN.md §17): one StableSolver per cached
// signature program answers every candidate of every query over that
// signature by swapping incremental sessions, instead of rebuilding a
// solver and replaying the learned-clause cache per query.
//
// Why reuse is sound: candidate wiring is a conservative, stratified
// program extension — each query atom qa is fresh, heads only its own
// rules, and feeds nothing in the base program — so the stable models of
// the extended program restricted to the base atoms are exactly the
// stable models of the base program. Every clause the solver accumulates
// between queries (CDCL learnt clauses from assumption-aware solving,
// loop formulas, negative-signature blocks, maximality clauses) states a
// fact about that invariant model space, so it stays valid as candidates
// accumulate. Clauses that are only sound for one query — model blocks
// and the cautious/brave search-strategy clauses — are scoped to the
// query's Session activation literal and retired when it closes.
//
// Candidates themselves are memoized: two candidates whose covered
// support sets project to the same base "remains"-atom structure are
// semantically the same query atom, so repeated queries reuse the wired
// atom instead of growing the program.
//
// Concurrency: a signature's persistent solver is single-threaded by
// construction — queries over the same signature serialize on
// sigProgram.incMu for the duration of their solve. Distinct signatures
// still fan out across the worker pool, and answers stay deterministic at
// any parallelism because each signature group is solved exactly once per
// query, on state that depends only on the (per-exchange) query history,
// never on sibling groups or worker scheduling.
type incSolver struct {
	spec   *encoder          // persistent specialization; its program grows with memoized candidates
	solver *asp.StableSolver // persistent solver over spec.gp

	cands     map[string]asp.AtomID // candidate body-structure key -> wired query atom
	installed map[string]bool       // learned-clause keys already on the solver
	sessions  int64                 // query sessions served so far
}

// incSolverLocked returns the signature's persistent solver, building it
// on first use. The caller must hold sp.incMu; the solver is only ever
// touched under that lock.
func (sp *sigProgram) incSolverLocked(mt *meters) *incSolver {
	if sp.inc != nil {
		return sp.inc
	}
	spec := sp.enc.specialize()
	sp.inc = &incSolver{
		spec:      spec,
		solver:    asp.NewStableSolver(spec.gp),
		cands:     make(map[string]asp.AtomID),
		installed: make(map[string]bool),
	}
	mt.recordReuseBuild()
	return sp.inc
}

// poison discards the persistent solver so the next query rebuilds it
// from the immutable base program. Called (under incMu) when a panic
// escapes a reuse solve and the solver state can no longer be trusted.
func (sp *sigProgram) poison() { sp.inc = nil }

// syncLearned installs every recorded maximality clause the solver does
// not have yet. Clauses learned by the fresh-solve path (or by other
// exchanges' queries between this signature's solves) become part of the
// persistent clause database exactly once.
func (inc *incSolver) syncLearned(sp *sigProgram) {
	sp.mu.Lock()
	snapshot := sp.learned[:len(sp.learned):len(sp.learned)]
	sp.mu.Unlock()
	for _, lc := range snapshot {
		if inc.installed[lc.key] {
			continue
		}
		inc.installed[lc.key] = true
		lits := make([]asp.Lit, len(lc.atoms))
		for i, a := range lc.atoms {
			lits[i] = inc.solver.AtomLit(a, true)
		}
		inc.solver.AddTheoryClause(lits)
	}
}

// wireCandidates resolves each group candidate to its query atom, wiring
// unseen body structures into the persistent program and extending the
// solver once for the batch. Candidates without a covered support set are
// dropped (they cannot hold in the sub-world).
func (inc *incSolver) wireCandidates(g *sigGroup) (atoms []asp.AtomID, live []*candidate) {
	grew := false
	for _, c := range g.cands {
		key, any := inc.spec.candidateKey(c)
		if !any {
			continue
		}
		qa, ok := inc.cands[key]
		if !ok {
			qa, _ = inc.spec.addCandidate(c)
			inc.cands[key] = qa
			grew = true
		}
		atoms = append(atoms, qa)
		live = append(live, c)
	}
	if grew {
		inc.solver.Extend()
	}
	return atoms, live
}

// candidateKey returns the canonical body-structure key of a candidate:
// its covered support sets, each projected to the sorted base "remains"
// atoms of its variable facts, sorted and joined. Two candidates with the
// same key get identical wiring (the same rules up to order), so their
// query atoms are interchangeable in every stable model. It reports false
// when no support set is covered. Only the frozen base tables are read.
func (e *encoder) candidateKey(c *candidate) (string, bool) {
	parts := make([]string, 0, len(c.supports))
	for _, set := range c.supports {
		if !e.covered(set) {
			continue
		}
		ids := make([]int, 0, len(set))
		for _, b := range set {
			if e.state(b) == factVar {
				ids = append(ids, int(e.r[b]))
			}
		}
		sort.Ints(ids)
		var b strings.Builder
		for i, a := range ids {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(itoa(a))
		}
		parts = append(parts, b.String())
	}
	if len(parts) == 0 {
		return "", false
	}
	sort.Strings(parts)
	return strings.Join(parts, ";"), true
}
