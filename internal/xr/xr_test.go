package xr

import (
	"math/rand"
	"testing"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/schema"
	"repro/internal/symtab"
	"repro/internal/testkit"
)

type tw struct {
	cat *schema.Catalog
	u   *symtab.Universe
	m   *mapping.Mapping
	src *instance.Instance
}

func newTW() *tw {
	cat := schema.NewCatalog()
	u := symtab.NewUniverse()
	return &tw{cat: cat, u: u, m: mapping.New(cat, u), src: instance.New(cat)}
}

func (w *tw) srcRel(name string, arity int) *schema.Relation {
	r := w.cat.MustAdd(name, arity)
	w.m.Source.Add(r)
	return r
}

func (w *tw) tgtRel(name string, arity int) *schema.Relation {
	r := w.cat.MustAdd(name, arity)
	w.m.Target.Add(r)
	return r
}

func (w *tw) add(r *schema.Relation, vals ...string) {
	args := make([]symtab.Value, len(vals))
	for i, v := range vals {
		args[i] = w.u.Const(v)
	}
	w.src.Add(r.ID, args)
}

func (w *tw) vals(vals ...string) []symtab.Value {
	args := make([]symtab.Value, len(vals))
	for i, v := range vals {
		args[i] = w.u.Const(v)
	}
	return args
}

// keyConflictWorld: the paper's exon-count pattern. Two sources propose
// values for T(x, v) under a key on x:
//
//	A(x,v) -> T(x,v);  B(x,v) -> T(x,v);  T(x,v) & T(x,v') -> v = v'.
func keyConflictWorld() *tw {
	w := newTW()
	a := w.srcRel("A", 2)
	b := w.srcRel("B", 2)
	tt := w.tgtRel("T", 2)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, a, logic.V("x"), logic.V("v"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tt, logic.V("x"), logic.V("v"))}, Label: "a"},
		{Body: []logic.Atom{logic.NewAtom(w.cat, b, logic.V("x"), logic.V("v"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tt, logic.V("x"), logic.V("v"))}, Label: "b"},
	}
	w.m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{
			logic.NewAtom(w.cat, tt, logic.V("x"), logic.V("v")),
			logic.NewAtom(w.cat, tt, logic.V("x"), logic.V("v2")),
		},
		L: logic.V("v"), R: logic.V("v2"), Label: "key",
	}}
	return w
}

func (w *tw) queryT() *logic.UCQ {
	tt, _ := w.cat.ByName("T")
	return &logic.UCQ{Name: "q", Arity: 2, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x"), logic.V("v")},
		Body: []logic.Atom{logic.NewAtom(w.cat, tt, logic.V("x"), logic.V("v"))},
	}}}
}

func TestMonolithicConsistent(t *testing.T) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	w.add(aRel, "t1", "5")
	w.add(aRel, "t2", "7")

	res, err := Monolithic(w.m, w.src, []*logic.UCQ{w.queryT()}, MonolithicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ans := res[0].Answers
	if ans.Len() != 2 || !ans.Contains(w.vals("t1", "5")) || !ans.Contains(w.vals("t2", "7")) {
		t.Fatalf("answers = %v", ans.Tuples())
	}
}

func TestMonolithicKeyConflict(t *testing.T) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	bRel, _ := w.cat.ByName("B")
	w.add(aRel, "t1", "5")
	w.add(bRel, "t1", "6") // conflicting exon count for t1
	w.add(aRel, "t2", "7") // clean

	res, err := Monolithic(w.m, w.src, []*logic.UCQ{w.queryT()}, MonolithicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ans := res[0].Answers
	// t1's value is disputed (two repairs pick different values): no certain
	// answer for t1. t2 is certain.
	if ans.Len() != 1 || !ans.Contains(w.vals("t2", "7")) {
		t.Fatalf("answers = %v", ans.Tuples())
	}
}

func TestSegmentaryMatchesMonolithicKeyConflict(t *testing.T) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	bRel, _ := w.cat.ByName("B")
	w.add(aRel, "t1", "5")
	w.add(bRel, "t1", "6")
	w.add(aRel, "t2", "7")
	w.add(bRel, "t3", "9")

	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Consistent() {
		t.Fatal("instance reported consistent")
	}
	if ex.Stats.Clusters != 1 {
		t.Fatalf("clusters = %d, want 1", ex.Stats.Clusters)
	}
	if ex.SuspectSourceFacts() != 2 {
		t.Fatalf("suspect = %d, want 2 (A(t1,5), B(t1,6))", ex.SuspectSourceFacts())
	}
	res, err := ex.Answer(w.queryT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 2 || !res.Answers.Contains(w.vals("t2", "7")) || !res.Answers.Contains(w.vals("t3", "9")) {
		t.Fatalf("answers = %v", res.Answers.Tuples())
	}
	// t2/t3 must come from the safe part, no solver needed.
	if res.Stats.SafeAccepted != 2 || res.Stats.SolverAccepted != 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestBruteForceKeyConflict(t *testing.T) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	bRel, _ := w.cat.ByName("B")
	w.add(aRel, "t1", "5")
	w.add(bRel, "t1", "6")

	repairs, err := SourceRepairs(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(repairs))
	}
	res, err := BruteForce(w.m, w.src, []*logic.UCQ{w.queryT()})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Answers.Len() != 0 {
		t.Fatalf("answers = %v", res[0].Answers.Tuples())
	}
}

// TestPaperExample1 reproduces Example 1: I_suspect is a sound but not
// necessarily minimal source repair envelope. All three facts are suspect
// although the ideal envelope excludes Q(b,c).
func TestPaperExample1(t *testing.T) {
	w := newTW()
	p := w.srcRel("P", 2)
	q := w.srcRel("Q", 2)
	pp := w.tgtRel("P1", 2)
	qq := w.tgtRel("Q1", 2)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, p, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, pp, logic.V("x"), logic.V("y"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, q, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, qq, logic.V("x"), logic.V("y"))}},
	}
	w.m.TEgds = []*logic.EGD{
		{Body: []logic.Atom{
			logic.NewAtom(w.cat, pp, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, pp, logic.V("x"), logic.V("y2")),
		}, L: logic.V("y"), R: logic.V("y2")},
		{Body: []logic.Atom{
			logic.NewAtom(w.cat, pp, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, pp, logic.V("x"), logic.V("y2")),
			logic.NewAtom(w.cat, qq, logic.V("y"), logic.V("y2")),
		}, L: logic.V("y"), R: logic.V("y2")},
	}
	w.add(p, "a", "b")
	w.add(p, "a", "c")
	w.add(q, "b", "c")

	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	// I_suspect contains all three facts (the overapproximation).
	if ex.SuspectSourceFacts() != 3 {
		t.Fatalf("suspect = %d, want 3", ex.SuspectSourceFacts())
	}
	// But Q(b,c) survives in every repair (the ideal envelope is smaller):
	repairs, err := SourceRepairs(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(repairs))
	}
	for _, rep := range repairs {
		if !rep.Contains(q.ID, w.vals("b", "c")) {
			t.Fatal("Q(b,c) missing from a repair; ideal envelope reasoning wrong")
		}
	}
	// And query answering still agrees with brute force.
	qq2 := &logic.UCQ{Name: "qq", Arity: 2, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x"), logic.V("y")},
		Body: []logic.Atom{logic.NewAtom(w.cat, qq, logic.V("x"), logic.V("y"))},
	}}}
	want, err := BruteForce(w.m, w.src, []*logic.UCQ{qq2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ex.Answer(qq2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers.Len() != want[0].Answers.Len() || got.Answers.Len() != 1 {
		t.Fatalf("segmentary %d vs brute %d", got.Answers.Len(), want[0].Answers.Len())
	}
}

// TestPaperExample2 reproduces Example 2: n independent key violations form
// n violation clusters, and the query q(x) :- Q1(x,y) is answered from the
// P1 cluster alone.
func TestPaperExample2(t *testing.T) {
	w := newTW()
	const n = 4
	var srcs, tgts []*schema.Relation
	for i := 0; i < n; i++ {
		srcs = append(srcs, w.srcRel("P"+itoa(i+1), 2))
		tgts = append(tgts, w.tgtRel("Q"+itoa(i+1), 2))
	}
	for i := 0; i < n; i++ {
		w.m.ST = append(w.m.ST, &logic.TGD{
			Body: []logic.Atom{logic.NewAtom(w.cat, srcs[i], logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tgts[i], logic.V("x"), logic.V("y"))},
		})
		w.m.TEgds = append(w.m.TEgds, &logic.EGD{
			Body: []logic.Atom{
				logic.NewAtom(w.cat, tgts[i], logic.V("x"), logic.V("y")),
				logic.NewAtom(w.cat, tgts[i], logic.V("x"), logic.V("y2")),
			},
			L: logic.V("y"), R: logic.V("y2"),
		})
		w.add(srcs[i], "a", "b")
		w.add(srcs[i], "a", "c")
	}
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Clusters != n {
		t.Fatalf("clusters = %d, want %d", ex.Stats.Clusters, n)
	}
	// q(x) :- Q1(x,y): certain (x=a survives in both repairs of cluster 1).
	q := &logic.UCQ{Name: "q", Arity: 1, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{logic.NewAtom(w.cat, tgts[0], logic.V("x"), logic.V("y"))},
	}}}
	res, err := ex.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 1 || !res.Answers.Contains(w.vals("a")) {
		t.Fatalf("answers = %v", res.Answers.Tuples())
	}
	// Exactly one small program must have been solved (one signature).
	if res.Stats.Programs != 1 {
		t.Fatalf("programs = %d, want 1", res.Stats.Programs)
	}
	// Its universe must be far smaller than the full instance.
	if res.Stats.GroundAtoms >= ex.Stats.TotalFacts*3 {
		t.Fatalf("signature program not localized: %d atoms for %d facts",
			res.Stats.GroundAtoms, ex.Stats.TotalFacts)
	}
}

// TestPaperExample3 reproduces Example 3: a candidate fact lying in the
// influences of two distinct violation clusters gets a two-cluster
// signature.
func TestPaperExample3(t *testing.T) {
	w := newTW()
	p := w.srcRel("P", 2)
	q := w.srcRel("Q", 2)
	rr := w.tgtRel("R", 2)
	ss := w.tgtRel("S", 2)
	tt := w.tgtRel("TT", 3)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, p, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, rr, logic.V("x"), logic.V("y"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, q, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, ss, logic.V("x"), logic.V("y"))}},
	}
	w.m.TTgds = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, rr, logic.V("x"), logic.V("y")), logic.NewAtom(w.cat, ss, logic.V("x"), logic.V("z"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tt, logic.V("x"), logic.V("y"), logic.V("z"))}},
	}
	w.m.TEgds = []*logic.EGD{
		{Body: []logic.Atom{
			logic.NewAtom(w.cat, rr, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, rr, logic.V("x"), logic.V("y2")),
		}, L: logic.V("y"), R: logic.V("y2")},
		{Body: []logic.Atom{
			logic.NewAtom(w.cat, ss, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, ss, logic.V("x"), logic.V("y2")),
		}, L: logic.V("y"), R: logic.V("y2")},
	}
	w.add(p, "a1", "a2")
	w.add(p, "a1", "a3")
	w.add(q, "a1", "a2")
	w.add(q, "a1", "a3")

	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", ex.Stats.Clusters)
	}
	// q3(x,y,z) :- TT(x,y,z): every TT fact depends on both clusters.
	q3 := &logic.UCQ{Name: "q3", Arity: 3, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x"), logic.V("y"), logic.V("z")},
		Body: []logic.Atom{logic.NewAtom(w.cat, tt, logic.V("x"), logic.V("y"), logic.V("z"))},
	}}}
	res, err := ex.Answer(q3)
	if err != nil {
		t.Fatal(err)
	}
	// One program covering both clusters' influences (one signature {0,1}).
	if res.Stats.Programs != 1 {
		t.Fatalf("programs = %d, want 1", res.Stats.Programs)
	}
	// No TT fact is certain: each repair keeps one R and one S value, and
	// the four combinations disagree.
	if res.Answers.Len() != 0 {
		t.Fatalf("answers = %v", res.Answers.Tuples())
	}
	// Cross-check with brute force.
	want, err := BruteForce(w.m, w.src, []*logic.UCQ{q3})
	if err != nil {
		t.Fatal(err)
	}
	if want[0].Answers.Len() != 0 {
		t.Fatal("brute force disagrees")
	}
}

// TestPipelinesAgreeOnRandomInputs is the central correctness property:
// brute force, monolithic, and segmentary agree on random weakly-acyclic
// mappings and instances, with and without existentials.
func TestPipelinesAgreeOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 60; trial++ {
		exist := trial%2 == 0
		w := testkit.RandomMapping(rng, testkit.Options{Existentials: exist, TargetTgds: 1})
		src := testkit.RandomInstance(rng, w, 3+rng.Intn(5), 3)
		queries := []*logic.UCQ{
			testkit.RandomQuery(rng, w, "q0"),
			testkit.RandomQuery(rng, w, "q1"),
		}
		want, err := BruteForce(w.M, src, queries)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		mono, err := Monolithic(w.M, src, queries, MonolithicOptions{})
		if err != nil {
			t.Fatalf("trial %d: monolithic: %v", trial, err)
		}
		ex, err := NewExchange(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: exchange: %v", trial, err)
		}
		for qi, q := range queries {
			seg, err := ex.Answer(q)
			if err != nil {
				t.Fatalf("trial %d q%d: segmentary: %v", trial, qi, err)
			}
			for name, got := range map[string]int{
				"monolithic": mono[qi].Answers.Len(),
				"segmentary": seg.Answers.Len(),
			} {
				if got != want[qi].Answers.Len() {
					t.Fatalf("trial %d q%d: %s=%d brute=%d\nquery: %s\nsource:\n%s",
						trial, qi, name, got, want[qi].Answers.Len(),
						q.String(w.Cat, w.U), src.String(w.U))
				}
			}
			for _, tup := range want[qi].Answers.Tuples() {
				if !mono[qi].Answers.Contains(tup) || !seg.Answers.Contains(tup) {
					t.Fatalf("trial %d q%d: missing tuple", trial, qi)
				}
			}
		}
	}
}
