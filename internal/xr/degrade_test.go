package xr

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/telemetry"
)

// degradeWorld returns a conflict farm with n conflicted signatures plus a
// fresh exchange over it.
func degradeExchange(t *testing.T, n int) (*tw, *Exchange, []string) {
	t.Helper()
	w, _ := conflictFarm(n)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	q := w.queryT()
	full, err := ex.AnswerOpts(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return w, ex, tupleStrings(full)
}

func join(ss []string) string { return strings.Join(ss, "|") }

// TestSignatureTimeoutStrict: an expired per-signature timeout without
// Partial fails the query with ErrTimeout; the sibling-cancelling
// WithTimeout behavior is unchanged.
func TestSignatureTimeoutStrict(t *testing.T) {
	w, _ := conflictFarm(3)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	sleepy := func(site, key string) error {
		if site == faultSiteSolve {
			time.Sleep(30 * time.Millisecond)
		}
		return nil
	}
	_, err = ex.AnswerOpts(w.queryT(), Options{
		SignatureTimeout: time.Millisecond,
		FaultHook:        sleepy,
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("strict signature timeout returned %v, want ErrTimeout", err)
	}
}

// TestSignatureTimeoutPartial: with Partial on, timed-out signatures
// degrade to unknown and the rest of the query completes; the partial
// answers are a subset of the full ones and nothing is lost outside
// Unknown.
func TestSignatureTimeoutPartial(t *testing.T) {
	w, ex, full := degradeExchange(t, 3)
	sleepy := func(site, key string) error {
		if site == faultSiteSolve {
			time.Sleep(30 * time.Millisecond)
		}
		return nil
	}
	res, err := ex.AnswerOpts(w.queryT(), Options{
		SignatureTimeout: time.Millisecond,
		FaultHook:        sleepy,
		Partial:          true,
	})
	if err != nil {
		t.Fatalf("partial run failed: %v", err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("no signature degraded under a 1ms timeout with a 30ms solve delay")
	}
	for _, d := range res.Degraded {
		if !errors.Is(d.Err, ErrTimeout) {
			t.Fatalf("degraded {%s} with %v, want ErrTimeout", d.Signature, d.Err)
		}
		if d.Tuples == 0 {
			t.Fatalf("degraded {%s} reports zero tuples", d.Signature)
		}
	}
	if res.Stats.DegradedSignatures != len(res.Degraded) {
		t.Fatalf("stats report %d degraded, Degraded has %d", res.Stats.DegradedSignatures, len(res.Degraded))
	}
	if res.Unknown.Len() != res.Stats.UnknownTuples {
		t.Fatalf("stats report %d unknown, Unknown has %d", res.Stats.UnknownTuples, res.Unknown.Len())
	}
	assertSoundPartial(t, full, res)
}

// assertSoundPartial checks the two containments of DESIGN.md §11 against
// a complete reference run: partial ⊆ full (sound: no fabricated answers)
// and full ⊆ partial ∪ unknown (complete modulo Unknown: nothing silently
// lost).
func assertSoundPartial(t *testing.T, full []string, partial *Result) {
	t.Helper()
	fullSet := make(map[string]bool, len(full))
	for _, s := range full {
		fullSet[s] = true
	}
	partialSet := make(map[string]bool)
	for _, s := range tupleStrings(partial) {
		if !fullSet[s] {
			t.Fatalf("partial answer %q is not a certain answer (unsound)", s)
		}
		partialSet[s] = true
	}
	unknown := make(map[string]bool)
	if partial.Unknown != nil {
		for _, row := range partial.Unknown.Tuples() {
			key := instance.EncodeTuple(row)
			unknown[key] = true
			if partialSet[key] {
				t.Fatalf("tuple %q is both answered and unknown", key)
			}
		}
	}
	for s := range fullSet {
		if !partialSet[s] && !unknown[s] {
			t.Fatalf("certain answer %q silently lost (not in partial answers or unknown)", s)
		}
	}
}

// TestBudgetDegradePartial: a 1-decision budget exhausts every conflicted
// signature; in strict mode the query fails with ErrBudget, in partial
// mode it degrades soundly and counts one retry per degraded signature.
func TestBudgetDegradePartial(t *testing.T) {
	w, _, full := degradeExchange(t, 4)
	q := w.queryT()
	// A fresh exchange: replaying the learned clauses cached by the full
	// run would let the solver finish by propagation alone, and a budget
	// counted in decisions would never exhaust.
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}

	_, err = ex.AnswerOpts(q, Options{MaxDecisions: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("strict budget exhaustion returned %v, want ErrBudget", err)
	}

	reg := telemetry.NewRegistry()
	res, err := ex.AnswerOpts(q, Options{MaxDecisions: 1, Partial: true, Metrics: reg})
	if err != nil {
		t.Fatalf("partial run failed: %v", err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("1-decision budget degraded nothing")
	}
	for _, d := range res.Degraded {
		if !errors.Is(d.Err, ErrBudget) {
			t.Fatalf("degraded {%s} with %v, want ErrBudget", d.Signature, d.Err)
		}
		if d.Retries != 1 {
			t.Fatalf("degraded {%s} after %d retries, want exactly 1", d.Signature, d.Retries)
		}
	}
	assertSoundPartial(t, full, res)

	snap := reg.Snapshot()
	if got := snap.Counters["xr_signatures_degraded_total"]; got != int64(len(res.Degraded)) {
		t.Fatalf("xr_signatures_degraded_total = %d, want %d", got, len(res.Degraded))
	}
	if got := snap.Counters["xr_partial_queries_total"]; got != 1 {
		t.Fatalf("xr_partial_queries_total = %d, want 1", got)
	}
	if got := snap.Counters["xr_signature_retries_total"]; got != int64(res.Stats.Retries) {
		t.Fatalf("xr_signature_retries_total = %d, want %d", got, res.Stats.Retries)
	}
}

// TestBudgetRetrySucceeds: with the budget set to the exact decision count
// of a clean run, the first attempt exhausts (the loop's budget check
// fires after the final decision) and the doubled-budget retry completes —
// the query returns the full answers with Retries counted and nothing
// degraded.
func TestBudgetRetrySucceeds(t *testing.T) {
	w, _ := conflictFarm(1)
	q := w.queryT()

	// Measure the clean per-signature decision count on a throwaway
	// exchange (the budget run below uses a fresh one so no learned clauses
	// carry over).
	exClean, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	var dmax int64
	fullRes, err := exClean.AnswerOpts(q, Options{Trace: func(ev TraceEvent) {
		if ev.Decisions > dmax {
			dmax = ev.Decisions
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if dmax == 0 {
		t.Skip("conflicted signature solved without decisions; cannot stage a retry")
	}

	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.AnswerOpts(q, Options{MaxDecisions: dmax, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) != 0 {
		t.Fatalf("retry at 2x budget still degraded: %+v", res.Degraded)
	}
	if res.Stats.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 (first attempt must exhaust at exactly dmax=%d)", res.Stats.Retries, dmax)
	}
	want, got := tupleStrings(fullRes), tupleStrings(res)
	if len(want) != len(got) {
		t.Fatalf("retry run found %d answers, clean run %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("answer %d differs after retry: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestPanicContainmentParallel: a panic injected into one signature at
// Parallelism 8 fails only that signature. In partial mode the panic is
// recorded as a degraded signature whose error matches ErrInternal and
// carries the stack; sibling signatures are answered normally. In strict
// mode the query fails with an error matching ErrInternal — but the
// process never crashes either way.
func TestPanicContainmentParallel(t *testing.T) {
	w, ex, full := degradeExchange(t, 8)
	q := w.queryT()
	// Pick a real signature key deterministically: keys are cluster-index
	// lists; with 8 conflicts there are 8 singleton clusters, so "0" exists.
	panicKey := "0"
	hook := func(site, key string) error {
		if site == faultSiteSolve && key == panicKey {
			panic("injected: corrupted signature program")
		}
		return nil
	}

	// Strict mode: contained, reported, not crashed.
	_, err := ex.AnswerOpts(q, Options{Parallelism: 8, FaultHook: hook})
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("strict panic returned %v, want ErrInternal", err)
	}

	// Partial mode: only the poisoned signature degrades.
	res, err := ex.AnswerOpts(q, Options{Parallelism: 8, FaultHook: hook, Partial: true})
	if err != nil {
		t.Fatalf("partial run failed: %v", err)
	}
	if len(res.Degraded) != 1 {
		t.Fatalf("%d signatures degraded, want exactly the poisoned one", len(res.Degraded))
	}
	d := res.Degraded[0]
	if d.Signature != panicKey {
		t.Fatalf("degraded {%s}, want {%s}", d.Signature, panicKey)
	}
	if !errors.Is(d.Err, ErrInternal) {
		t.Fatalf("degraded error %v does not match ErrInternal", d.Err)
	}
	var ie *InternalError
	if !errors.As(d.Err, &ie) {
		t.Fatalf("degraded error %v is not an *InternalError", d.Err)
	}
	if len(ie.Stack) == 0 {
		t.Fatal("InternalError carries no stack")
	}
	if d.Retries != 0 {
		t.Fatalf("panic was retried %d times; panics are not retryable", d.Retries)
	}
	assertSoundPartial(t, full, res)
	// Siblings unchanged: every certain answer outside the poisoned
	// signature's unknown set must still be answered. (Unknown holds the
	// poisoned signature's candidates, most of which are not certain
	// answers, so answers+unknown can legitimately exceed full.)
	unknown := make(map[string]bool)
	for _, row := range res.Unknown.Tuples() {
		unknown[instance.EncodeTuple(row)] = true
	}
	got := make(map[string]bool)
	for _, s := range tupleStrings(res) {
		got[s] = true
	}
	for _, s := range full {
		if !unknown[s] && !got[s] {
			t.Fatalf("sibling answer %q lost", s)
		}
	}
}

// TestMonolithicPanicContainment: the monolithic engine converts a
// per-query panic to an ErrInternal recorded against that query alone;
// sibling queries at Parallelism 8 are unaffected.
func TestMonolithicPanicContainment(t *testing.T) {
	w, _ := conflictFarm(2)
	q1, q2 := w.queryT(), w.queryT()
	q2.Name = "q2"
	hook := func(site, key string) error {
		if key == "q2" {
			panic("injected: monolithic worker panic")
		}
		return nil
	}
	res, err := Monolithic(w.m, w.src, []*logic.UCQ{q1, q2}, MonolithicOptions{
		Parallelism: 8,
		FaultHook:   hook,
	})
	if err != nil {
		t.Fatalf("call-level error %v; a per-query panic must be contained", err)
	}
	if res[0].Err != nil {
		t.Fatalf("healthy query carries error %v", res[0].Err)
	}
	if len(tupleStrings(res[0])) == 0 {
		t.Fatal("healthy query lost its answers")
	}
	if !errors.Is(res[1].Err, ErrInternal) {
		t.Fatalf("poisoned query error %v, want ErrInternal", res[1].Err)
	}
	var ie *InternalError
	if !errors.As(res[1].Err, &ie) || len(ie.Stack) == 0 {
		t.Fatalf("poisoned query error %v lacks a captured stack", res[1].Err)
	}
}

// TestDegradationDeterministic: budget-driven degradation is reproducible —
// answers, unknown tuples, and degraded signatures are identical across
// runs and parallelism settings.
func TestDegradationDeterministic(t *testing.T) {
	w, _ := conflictFarm(6)
	q := w.queryT()
	run := func(par int) (string, string, string) {
		ex, err := NewExchange(w.m, w.src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ex.AnswerOpts(q, Options{MaxDecisions: 1, Partial: true, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		var degraded []string
		for _, d := range res.Degraded {
			degraded = append(degraded, d.Signature)
		}
		var unknown []string
		for _, row := range res.Unknown.Tuples() {
			unknown = append(unknown, instance.EncodeTuple(row))
		}
		return join(tupleStrings(res)), join(unknown), join(degraded)
	}
	a1, u1, d1 := run(1)
	a2, u2, d2 := run(8)
	if a1 != a2 || u1 != u2 || d1 != d2 {
		t.Fatalf("degradation diverges across parallelism:\nanswers %q vs %q\nunknown %q vs %q\ndegraded %q vs %q",
			a1, a2, u1, u2, d1, d2)
	}
	a3, u3, d3 := run(1)
	if a1 != a3 || u1 != u3 || d1 != d3 {
		t.Fatal("degradation diverges run to run at parallelism 1")
	}
}
