package xr

import (
	"strings"

	"repro/internal/telemetry"
)

// meters pre-resolves every instrument the engines record into, so the
// solving paths pay one atomic add per update instead of a registry map
// lookup. A nil *meters is the disabled-telemetry fast path: every record
// method starts with a nil check and the underlying instruments are
// nil-safe too, so engines call them unconditionally.
//
// All updates are atomic-counter adds that commute, which is what makes
// counter totals deterministic at any Options.Parallelism: the set of
// per-program contributions is fixed by the query (each signature group is
// solved exactly once), only their order varies. Histograms record wall
// times and are therefore not expected to be run-to-run identical.
type meters struct {
	reg *telemetry.Registry

	// Exchange phase (the Table 4 columns of the paper).
	exchanges       *telemetry.Counter
	exSourceFacts   *telemetry.Counter
	exTotalFacts    *telemetry.Counter
	exViolations    *telemetry.Counter
	exClusters      *telemetry.Counter
	exSuspectSource *telemetry.Counter
	exSafeDerivable *telemetry.Counter
	exReduceSeconds *telemetry.Histogram
	exChaseSeconds  *telemetry.Histogram
	exEnvSeconds    *telemetry.Histogram
	exSeconds       *telemetry.Histogram

	// Semi-naive chase breakdown (DESIGN.md §12).
	chaseRounds     *telemetry.Counter
	chaseRuleEvals  *telemetry.Counter
	chaseRuleSkips  *telemetry.Counter
	chaseTriggers   *telemetry.Counter
	chaseDeltaFacts *telemetry.Counter
	indexProbes     *telemetry.Counter
	indexBuilds     *telemetry.Counter
	chaseTgdSeconds *telemetry.Histogram
	chaseVioSeconds *telemetry.Histogram

	// Query phase (QueryStats totals).
	queries        *telemetry.Counter
	candidates     *telemetry.Counter
	safeAccepted   *telemetry.Counter
	solverAccepted *telemetry.Counter
	querySeconds   *telemetry.Histogram

	// Per-program measurements (one disjunctive program solved).
	programs       *telemetry.Counter
	programCands   *telemetry.Counter
	groundRules    *telemetry.Counter
	groundAtoms    *telemetry.Counter
	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	learnedClauses *telemetry.Counter
	programSeconds *telemetry.Histogram
	sigcacheSize   *telemetry.Gauge

	// Solver effort (DPLL core + stable-model layer).
	decisions        *telemetry.Counter
	conflicts        *telemetry.Counter
	propagations     *telemetry.Counter
	restarts         *telemetry.Counter
	candidatesTested *telemetry.Counter
	stabilityFails   *telemetry.Counter
	loopsLearned     *telemetry.Counter
	theoryRejects    *telemetry.Counter
	assumptionSolves *telemetry.Counter
	reductions       *telemetry.Counter
	clausesDeleted   *telemetry.Counter

	// Persistent-solver reuse (DESIGN.md §17): sessions served on a warm
	// per-signature solver vs cold builds of one.
	reuseSessions *telemetry.Counter
	reuseBuilds   *telemetry.Counter

	// Degradation (partial-results mode; DESIGN.md §11).
	partialQueries   *telemetry.Counter
	degradedSigs     *telemetry.Counter
	signatureRetries *telemetry.Counter

	repairsEnumerated *telemetry.Counter
}

// newMeters resolves the instrument set for a registry (nil in, nil out).
func newMeters(reg *telemetry.Registry) *meters {
	if reg == nil {
		return nil
	}
	return &meters{
		reg: reg,

		exchanges:       reg.Counter("xr_exchanges_total"),
		exSourceFacts:   reg.Counter("xr_exchange_source_facts_total"),
		exTotalFacts:    reg.Counter("xr_exchange_facts_total"),
		exViolations:    reg.Counter("xr_exchange_violations_total"),
		exClusters:      reg.Counter("xr_exchange_clusters_total"),
		exSuspectSource: reg.Counter("xr_exchange_suspect_source_total"),
		exSafeDerivable: reg.Counter("xr_exchange_safe_derivable_total"),
		exReduceSeconds: reg.Histogram("xr_exchange_reduce_seconds"),
		exChaseSeconds:  reg.Histogram("xr_exchange_chase_seconds"),
		exEnvSeconds:    reg.Histogram("xr_exchange_envelopes_seconds"),
		exSeconds:       reg.Histogram("xr_exchange_seconds"),

		chaseRounds:     reg.Counter("xr_chase_rounds_total"),
		chaseRuleEvals:  reg.Counter("xr_chase_rule_evals_total"),
		chaseRuleSkips:  reg.Counter("xr_chase_rule_skips_total"),
		chaseTriggers:   reg.Counter("xr_chase_triggers_fired_total"),
		chaseDeltaFacts: reg.Counter("xr_chase_delta_facts_total"),
		indexProbes:     reg.Counter("xr_index_probes_total"),
		indexBuilds:     reg.Counter("xr_index_builds_total"),
		chaseTgdSeconds: reg.Histogram("xr_chase_tgd_seconds"),
		chaseVioSeconds: reg.Histogram("xr_chase_violations_seconds"),

		queries:        reg.Counter("xr_queries_total"),
		candidates:     reg.Counter("xr_query_candidates_total"),
		safeAccepted:   reg.Counter("xr_query_safe_accepted_total"),
		solverAccepted: reg.Counter("xr_query_solver_accepted_total"),
		querySeconds:   reg.Histogram("xr_query_seconds"),

		programs:       reg.Counter("xr_programs_total"),
		programCands:   reg.Counter("xr_program_candidates_total"),
		groundRules:    reg.Counter("xr_program_ground_rules_total"),
		groundAtoms:    reg.Counter("xr_program_ground_atoms_total"),
		cacheHits:      reg.Counter("xr_sigcache_hits_total"),
		cacheMisses:    reg.Counter("xr_sigcache_misses_total"),
		learnedClauses: reg.Counter("xr_sigcache_learned_clauses_total"),
		programSeconds: reg.Histogram("xr_program_seconds"),
		sigcacheSize:   reg.Gauge("xr_sigcache_entries"),

		decisions:        reg.Counter("xr_solver_decisions_total"),
		conflicts:        reg.Counter("xr_solver_conflicts_total"),
		propagations:     reg.Counter("xr_solver_propagations_total"),
		restarts:         reg.Counter("xr_solver_restarts_total"),
		candidatesTested: reg.Counter("xr_solver_candidates_tested_total"),
		stabilityFails:   reg.Counter("xr_solver_stability_fails_total"),
		loopsLearned:     reg.Counter("xr_solver_loops_learned_total"),
		theoryRejects:    reg.Counter("xr_solver_theory_rejects_total"),
		assumptionSolves: reg.Counter("xr_solver_assumption_solves_total"),
		reductions:       reg.Counter("xr_solver_reductions_total"),
		clausesDeleted:   reg.Counter("xr_solver_clauses_deleted_total"),

		reuseSessions: reg.Counter("xr_solver_reuse_sessions_total"),
		reuseBuilds:   reg.Counter("xr_solver_reuse_builds_total"),

		partialQueries:   reg.Counter("xr_partial_queries_total"),
		degradedSigs:     reg.Counter("xr_signatures_degraded_total"),
		signatureRetries: reg.Counter("xr_signature_retries_total"),

		repairsEnumerated: reg.Counter("xr_repairs_enumerated_total"),
	}
}

// metersFor resolves the instrument set for one call: a per-call registry
// (Options.Metrics) takes precedence over the registry the Exchange was
// built with.
func (ex *Exchange) metersFor(opts *Options) *meters {
	if opts.Metrics != nil {
		if ex.mt != nil && ex.mt.reg == opts.Metrics {
			return ex.mt
		}
		return newMeters(opts.Metrics)
	}
	return ex.mt
}

// recordExchange aggregates one exchange phase.
func (m *meters) recordExchange(st ExchangeStats) {
	if m == nil {
		return
	}
	m.exchanges.Inc()
	m.exSourceFacts.Add(int64(st.SourceFacts))
	m.exTotalFacts.Add(int64(st.TotalFacts))
	m.exViolations.Add(int64(st.Violations))
	m.exClusters.Add(int64(st.Clusters))
	m.exSuspectSource.Add(int64(st.SuspectSource))
	m.exSafeDerivable.Add(int64(st.SafeDerivable))
	m.exReduceSeconds.Observe(st.ReduceDuration)
	m.exChaseSeconds.Observe(st.ChaseDuration)
	m.exEnvSeconds.Observe(st.EnvDuration)
	m.exSeconds.Observe(st.Duration)
	m.chaseRounds.Add(int64(st.ChaseRounds))
	m.chaseRuleEvals.Add(int64(st.ChaseRuleEvals))
	m.chaseRuleSkips.Add(int64(st.ChaseRuleSkips))
	m.chaseTriggers.Add(int64(st.ChaseTriggers))
	m.chaseDeltaFacts.Add(int64(st.ChaseDeltaFacts))
	m.indexProbes.Add(int64(st.IndexProbes))
	m.indexBuilds.Add(int64(st.IndexBuilds))
	m.chaseTgdSeconds.Observe(st.ChaseTgdDuration)
	m.chaseVioSeconds.Observe(st.ChaseViolationDuration)
}

// recordQuery aggregates one finished query, plus a per-engine query count
// (xr_<engine>_queries_total; the engine label is folded into the name
// because the exposition format is label-free).
func (m *meters) recordQuery(engine string, st QueryStats) {
	if m == nil {
		return
	}
	m.queries.Inc()
	m.reg.Counter("xr_" + strings.ReplaceAll(engine, "-", "_") + "_queries_total").Inc()
	m.candidates.Add(int64(st.Candidates))
	m.safeAccepted.Add(int64(st.SafeAccepted))
	m.solverAccepted.Add(int64(st.SolverAccepted))
	m.querySeconds.Observe(st.Duration)
}

// recordProgram aggregates one solved program from its trace event. Cache
// hit/miss counts apply only to the segmentary engines (the monolithic
// engine has no program cache; counting its always-false CacheHit as a
// miss would poison the hit ratio).
func (m *meters) recordProgram(ev TraceEvent) {
	if m == nil {
		return
	}
	m.programs.Inc()
	m.programCands.Add(int64(ev.Candidates))
	m.groundRules.Add(int64(ev.Rules))
	m.groundAtoms.Add(int64(ev.Atoms))
	if strings.HasPrefix(ev.Engine, "segmentary") {
		if ev.CacheHit {
			m.cacheHits.Inc()
		} else {
			m.cacheMisses.Inc()
		}
	}
	m.decisions.Add(ev.Decisions)
	m.conflicts.Add(ev.Conflicts)
	m.propagations.Add(ev.Propagations)
	m.restarts.Add(ev.Restarts)
	m.candidatesTested.Add(int64(ev.CandidatesTested))
	m.stabilityFails.Add(int64(ev.StabilityFails))
	m.loopsLearned.Add(int64(ev.LoopsLearned))
	m.theoryRejects.Add(int64(ev.TheoryRejects))
	m.assumptionSolves.Add(ev.AssumptionSolves)
	m.reductions.Add(ev.Reductions)
	m.clausesDeleted.Add(ev.ClausesDeleted)
	m.programSeconds.Observe(ev.Duration)
}

// recordReuseBuild counts one persistent per-signature solver built (a
// cold start for that signature's reuse path).
func (m *meters) recordReuseBuild() {
	if m == nil {
		return
	}
	m.reuseBuilds.Inc()
}

// recordReuseSession counts one query session on a persistent solver;
// only warm sessions (a solver that existed before this query) count as
// reuse.
func (m *meters) recordReuseSession(reused bool) {
	if m == nil || !reused {
		return
	}
	m.reuseSessions.Inc()
}

// recordLearned counts one maximality clause newly added to a signature
// program's learned set (duplicates are not counted).
func (m *meters) recordLearned() {
	if m == nil {
		return
	}
	m.learnedClauses.Inc()
}

// recordRetry counts one signature retried with a doubled budget.
func (m *meters) recordRetry() {
	if m == nil {
		return
	}
	m.signatureRetries.Inc()
}

// recordDegradation aggregates one finished query's degradation outcome: a
// query returning any degraded signature counts as one partial query, and
// each undecided signature feeds xr_signatures_degraded_total. Like every
// other counter, the totals are deterministic at any Parallelism when
// degradation is driven by the deterministic decision/conflict budgets.
func (m *meters) recordDegradation(degraded int) {
	if m == nil || degraded == 0 {
		return
	}
	m.partialQueries.Inc()
	m.degradedSigs.Add(int64(degraded))
}

// recordSigcacheSize publishes the exchange's current cache population.
func (m *meters) recordSigcacheSize(ex *Exchange) {
	if m == nil {
		return
	}
	ex.progMu.Lock()
	n := len(ex.progCache)
	ex.progMu.Unlock()
	m.sigcacheSize.Set(int64(n))
}

// recordRepairs counts repairs produced by an enumeration call.
func (m *meters) recordRepairs(n int) {
	if m == nil {
		return
	}
	m.repairsEnumerated.Add(int64(n))
}
