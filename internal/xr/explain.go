package xr

import (
	"context"
	"errors"

	"repro/internal/asp"
	"repro/internal/chase"
	"repro/internal/explain"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/symtab"
)

// This file computes per-tuple explanations (Options.Explain): why each
// candidate of a segmentary query was accepted, rejected, or left unknown.
//
// The core idea (DESIGN.md §13): a candidate tuple t with query atom qa is
// XR-certain iff qa holds in every stable model of its signature program,
// iff the program extended with the constraint ¬qa has no stable model. So
// one witness solve per candidate decides it and, on rejection, the stable
// model found IS a counterexample exchange-repair of the signature's
// sub-world — the deleted "suspect" source facts and the derived facts that
// disappear with them. For brave (possible) queries the constraint is qa
// itself and a model is a supporting repair.
//
// Determinism: the pass runs on a fresh solver per candidate over a fresh
// specialization of the signature's frozen base program, with NO
// learned-clause replay and NO writes into the shared signature cache.
// Replayed clauses arrive in a parallelism-dependent order and steer the
// SAT search, which would change *which* witness model is found first;
// starting every witness solve from the identical clause database makes the
// witness — and with it the rendered output — byte-identical at any
// Parallelism and across cache warm/cold states. The price is re-learning
// maximality clauses per candidate, which is why Explain is opt-in.

// explainGroup explains every candidate of one signature group. A degraded
// group (out.degraded != nil) yields Unknown explanations without solving;
// otherwise each candidate gets its own witness solve.
func (ex *Exchange) explainGroup(ctx context.Context, key string, g *sigGroup, out *groupOutcome, brave bool, qname string) ([]*explain.Explanation, error) {
	es := make([]*explain.Explanation, 0, len(g.cands))
	if out.degraded != nil {
		cause := classifyCause(out.degraded.Err)
		for _, c := range g.cands {
			es = append(es, &explain.Explanation{
				Query:     qname,
				Tuple:     c.tuple,
				Verdict:   explain.Unknown,
				Signature: key,
				Clusters:  ex.clusterInfos(g.sig),
				Support:   ex.supportClosure(c),
				Cause:     cause,
				Retries:   out.degraded.Retries,
			})
		}
		return es, nil
	}
	for _, c := range g.cands {
		e, err := ex.explainCandidate(ctx, key, g.sig, c, brave, qname)
		if err != nil {
			return nil, err
		}
		es = append(es, e)
	}
	return es, nil
}

// explainCandidate runs one witness solve for a non-safe candidate.
func (ex *Exchange) explainCandidate(ctx context.Context, key string, sig []int, c *candidate, brave bool, qname string) (e *explain.Explanation, err error) {
	defer recoverInternal("explain signature {"+key+"}", &err)
	sp, _ := ex.sigProgramFor(key)
	sp.ensure(ex, sig)

	e = &explain.Explanation{
		Query:     qname,
		Tuple:     c.tuple,
		Signature: key,
		Clusters:  ex.clusterInfos(sig),
		Support:   ex.supportClosure(c),
	}
	spec := sp.enc.specialize()
	qa, any := spec.addCandidate(c)
	if !any {
		e.Verdict = explain.NoSupport
		return e, nil
	}
	solver := asp.NewStableSolver(spec.gp)
	solver.SetContext(ctx)
	// Certain path: constrain qa false — a stable model is a repair whose
	// solution misses the tuple (the reduct fixpoint blocks models that
	// merely *assign* qa false while it is derivable, so satisfying models
	// are genuine counterexamples). Brave path: constrain qa true — a
	// stable model is a repair whose solution contains the tuple.
	solver.AddTheoryClause([]asp.Lit{solver.AtomLit(qa, brave)})
	solver.Acceptor = spec.acceptorWithIndex(sp.idx, solver, nil)
	m := solver.NextStable()
	if solver.Canceled() {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, cerr
		}
		return nil, ErrCanceled
	}
	e.ModelsExamined = solver.CandidatesTested
	if m == nil {
		if brave {
			e.Verdict = explain.Impossible
		} else {
			e.Verdict = explain.Certain
		}
		return e, nil
	}
	if brave {
		e.Verdict = explain.Possible
	} else {
		e.Verdict = explain.Rejected
	}
	e.Witness = spec.witnessFromModel(m)
	return e, nil
}

// safeExplanation explains a candidate accepted without solving: some
// support lies entirely in the safe part, so every repair derives it.
func (ex *Exchange) safeExplanation(c *candidate, qname string) *explain.Explanation {
	return &explain.Explanation{
		Query:   qname,
		Tuple:   c.tuple,
		Verdict: explain.Safe,
		Support: ex.supportClosure(c),
	}
}

// supportClosure returns every fact (source and derived) transitively
// grounding the candidate's supports in the quasi-solution, sorted.
func (ex *Exchange) supportClosure(c *candidate) []chase.FactID {
	seed := make([]chase.FactID, 0, 8)
	for _, set := range c.supports {
		seed = append(seed, set...)
	}
	closure := ex.Prov.SupportClosure(seed)
	out := make([]chase.FactID, 0, len(closure))
	for f := range closure {
		out = append(out, f)
	}
	explain.SortFactIDs(out)
	return out
}

// clusterInfos summarizes the clusters of a signature for an explanation.
func (ex *Exchange) clusterInfos(sig []int) []explain.ClusterInfo {
	out := make([]explain.ClusterInfo, 0, len(sig))
	for _, ci := range sig {
		cl := ex.Clusters[ci]
		out = append(out, explain.ClusterInfo{
			ID:            ci,
			Violations:    len(cl.Violations),
			EnvelopeSize:  len(cl.SourceEnvelope),
			InfluenceSize: len(cl.Influence),
		})
	}
	return out
}

// witnessFromModel extracts the exchange-repair a stable model describes:
// dropped vs kept suspect sources, and the derived facts of the sub-world
// absent from the repair's solution. Iteration is over sorted FactIDs so
// the witness is a pure function of the model.
func (e *encoder) witnessFromModel(m []bool) *explain.Witness {
	w := &explain.Witness{}
	del := append([]chase.FactID(nil), e.deletable...)
	explain.SortFactIDs(del)
	for _, f := range del {
		if m[e.d[f]] {
			w.DroppedSource = append(w.DroppedSource, f)
		} else {
			w.KeptSuspect = append(w.KeptSuspect, f)
		}
	}
	derived := make([]chase.FactID, 0, len(e.r))
	for f := range e.r {
		if !e.prov.IsSource(f) {
			derived = append(derived, f)
		}
	}
	explain.SortFactIDs(derived)
	for _, f := range derived {
		if !m[e.r[f]] {
			w.MissingTarget = append(w.MissingTarget, f)
		}
	}
	return w
}

// classifyCause maps a degradation error to a stable token for
// Explanation.Cause (raw error text carries nondeterministic panic stacks).
func classifyCause(err error) string {
	switch {
	case errors.Is(err, ErrBudget):
		return "budget"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrInternal):
		return "panic"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	default:
		return "error"
	}
}

// ExplainTuple explains one specific tuple of q under XR-Certain semantics
// (the -why path): the query runs with explanations on and the matching
// explanation is returned. A tuple with no support in the quasi-solution —
// including one that is not an answer to q at all — yields a NoSupport
// explanation: such a tuple is trivially not XR-certain.
func (ex *Exchange) ExplainTuple(q *logic.UCQ, tuple []symtab.Value, opts Options) (*explain.Explanation, error) {
	opts.Explain = true
	res, err := ex.AnswerOpts(q, opts)
	if err != nil {
		return nil, err
	}
	want := instance.EncodeTuple(tuple)
	for _, e := range res.Explanations {
		if instance.EncodeTuple(e.Tuple) == want {
			return e, nil
		}
	}
	return &explain.Explanation{Query: q.Name, Tuple: tuple, Verdict: explain.NoSupport}, nil
}
