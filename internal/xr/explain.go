package xr

import (
	"context"
	"errors"

	"repro/internal/asp"
	"repro/internal/chase"
	"repro/internal/explain"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/symtab"
)

// This file computes per-tuple explanations (Options.Explain): why each
// candidate of a segmentary query was accepted, rejected, or left unknown.
//
// The core idea (DESIGN.md §13): a candidate tuple t with query atom qa is
// XR-certain iff qa holds in every stable model of its signature program,
// iff the program has no stable model under the assumption ¬qa. So one
// witness solve per candidate decides it and, on rejection, the stable
// model found IS a counterexample exchange-repair of the signature's
// sub-world — the deleted "suspect" source facts and the derived facts that
// disappear with them. For brave (possible) queries the assumption is qa
// itself and a model is a supporting repair.
//
// Determinism: the pass builds ONE fresh solver per signature group — a
// fresh specialization of the frozen base program with every group
// candidate wired in — and decides the candidates in order, each as an
// incremental session under its own qa assumption (DESIGN.md §17). There
// is NO learned-clause replay and NO write into the shared signature
// cache: replayed clauses arrive in a parallelism-dependent order and
// steer the SAT search, which would change *which* witness model is
// found first. Starting every group from the identical clause database,
// with candidate order fixed by collection order, makes the witnesses —
// and with them the rendered output — byte-identical at any Parallelism,
// across cache warm/cold states, and across solver-reuse modes. Within a
// group, knowledge the solver accumulates (loop formulas, maximality
// clauses, CDCL learnt clauses) legally carries from one candidate's
// session to the next, which is what makes the pass cheap enough to
// serve routinely.

// explainGroup explains every candidate of one signature group. A degraded
// group (out.degraded != nil) yields Unknown explanations without solving;
// otherwise the group's candidates share one fresh solver and each gets
// its own witness session.
func (ex *Exchange) explainGroup(ctx context.Context, key string, g *sigGroup, out *groupOutcome, brave bool, qname string) (es []*explain.Explanation, err error) {
	es = make([]*explain.Explanation, 0, len(g.cands))
	if out.degraded != nil {
		cause := classifyCause(out.degraded.Err)
		for _, c := range g.cands {
			es = append(es, &explain.Explanation{
				Query:     qname,
				Tuple:     c.tuple,
				Verdict:   explain.Unknown,
				Signature: key,
				Clusters:  ex.clusterInfos(g.sig),
				Support:   ex.supportClosure(c),
				Cause:     cause,
				Retries:   out.degraded.Retries,
			})
		}
		return es, nil
	}
	defer recoverInternal("explain signature {"+key+"}", &err)
	sp, _ := ex.sigProgramFor(key)
	sp.ensure(ex, g.sig)

	spec := sp.enc.specialize()
	qas := make([]asp.AtomID, len(g.cands))
	wired := make([]bool, len(g.cands))
	for i, c := range g.cands {
		qas[i], wired[i] = spec.addCandidate(c)
	}
	solver := asp.NewStableSolver(spec.gp)
	solver.SetContext(ctx)
	solver.Acceptor = spec.acceptorWithIndex(sp.idx, solver, nil)
	for i, c := range g.cands {
		e, cerr := ex.explainCandidate(ctx, solver, spec, key, g.sig, c, qas[i], wired[i], brave, qname)
		if cerr != nil {
			return nil, cerr
		}
		es = append(es, e)
	}
	return es, nil
}

// explainCandidate runs one witness session for a non-safe candidate on
// the group's shared solver.
func (ex *Exchange) explainCandidate(ctx context.Context, solver *asp.StableSolver, spec *encoder, key string, sig []int, c *candidate, qa asp.AtomID, wired, brave bool, qname string) (*explain.Explanation, error) {
	e := &explain.Explanation{
		Query:     qname,
		Tuple:     c.tuple,
		Signature: key,
		Clusters:  ex.clusterInfos(sig),
		Support:   ex.supportClosure(c),
	}
	if !wired {
		e.Verdict = explain.NoSupport
		return e, nil
	}
	// Certain path: assume qa false — a stable model is a repair whose
	// solution misses the tuple (the reduct fixpoint blocks models that
	// merely *assign* qa false while it is derivable, so satisfying models
	// are genuine counterexamples). Brave path: assume qa true — a stable
	// model is a repair whose solution contains the tuple.
	before := solver.CandidatesTested
	sess := solver.StartSession([]asp.AtomAssumption{{Atom: qa, True: brave}})
	m := sess.NextStable()
	sess.Close()
	if solver.Canceled() {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, cerr
		}
		return nil, ErrCanceled
	}
	e.ModelsExamined = solver.CandidatesTested - before
	if m == nil {
		if brave {
			e.Verdict = explain.Impossible
		} else {
			e.Verdict = explain.Certain
		}
		return e, nil
	}
	if brave {
		e.Verdict = explain.Possible
	} else {
		e.Verdict = explain.Rejected
	}
	e.Witness = spec.witnessFromModel(m)
	return e, nil
}

// safeExplanation explains a candidate accepted without solving: some
// support lies entirely in the safe part, so every repair derives it.
func (ex *Exchange) safeExplanation(c *candidate, qname string) *explain.Explanation {
	return &explain.Explanation{
		Query:   qname,
		Tuple:   c.tuple,
		Verdict: explain.Safe,
		Support: ex.supportClosure(c),
	}
}

// supportClosure returns every fact (source and derived) transitively
// grounding the candidate's supports in the quasi-solution, sorted.
func (ex *Exchange) supportClosure(c *candidate) []chase.FactID {
	seed := make([]chase.FactID, 0, 8)
	for _, set := range c.supports {
		seed = append(seed, set...)
	}
	closure := ex.Prov.SupportClosure(seed)
	out := make([]chase.FactID, 0, len(closure))
	for f := range closure {
		out = append(out, f)
	}
	explain.SortFactIDs(out)
	return out
}

// clusterInfos summarizes the clusters of a signature for an explanation.
func (ex *Exchange) clusterInfos(sig []int) []explain.ClusterInfo {
	out := make([]explain.ClusterInfo, 0, len(sig))
	for _, ci := range sig {
		cl := ex.Clusters[ci]
		out = append(out, explain.ClusterInfo{
			ID:            ci,
			Violations:    len(cl.Violations),
			EnvelopeSize:  len(cl.SourceEnvelope),
			InfluenceSize: len(cl.Influence),
		})
	}
	return out
}

// witnessFromModel extracts the exchange-repair a stable model describes:
// dropped vs kept suspect sources, and the derived facts of the sub-world
// absent from the repair's solution. Iteration is over sorted FactIDs so
// the witness is a pure function of the model.
func (e *encoder) witnessFromModel(m []bool) *explain.Witness {
	w := &explain.Witness{}
	del := append([]chase.FactID(nil), e.deletable...)
	explain.SortFactIDs(del)
	for _, f := range del {
		if m[e.d[f]] {
			w.DroppedSource = append(w.DroppedSource, f)
		} else {
			w.KeptSuspect = append(w.KeptSuspect, f)
		}
	}
	derived := make([]chase.FactID, 0, len(e.r))
	for f := range e.r {
		if !e.prov.IsSource(f) {
			derived = append(derived, f)
		}
	}
	explain.SortFactIDs(derived)
	for _, f := range derived {
		if !m[e.r[f]] {
			w.MissingTarget = append(w.MissingTarget, f)
		}
	}
	return w
}

// classifyCause maps a degradation error to a stable token for
// Explanation.Cause (raw error text carries nondeterministic panic stacks).
func classifyCause(err error) string {
	switch {
	case errors.Is(err, ErrBudget):
		return "budget"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrInternal):
		return "panic"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	default:
		return "error"
	}
}

// ExplainTuple explains one specific tuple of q under XR-Certain semantics
// (the -why path): the query runs with explanations on and the matching
// explanation is returned. A tuple with no support in the quasi-solution —
// including one that is not an answer to q at all — yields a NoSupport
// explanation: such a tuple is trivially not XR-certain.
func (ex *Exchange) ExplainTuple(q *logic.UCQ, tuple []symtab.Value, opts Options) (*explain.Explanation, error) {
	opts.Explain = true
	res, err := ex.AnswerOpts(q, opts)
	if err != nil {
		return nil, err
	}
	want := instance.EncodeTuple(tuple)
	for _, e := range res.Explanations {
		if instance.EncodeTuple(e.Tuple) == want {
			return e, nil
		}
	}
	return &explain.Explanation{Query: q.Name, Tuple: tuple, Verdict: explain.NoSupport}, nil
}
