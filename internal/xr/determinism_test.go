package xr

import (
	"testing"

	"repro/internal/genome"
	"repro/internal/telemetry"
)

// TestCounterDeterminismRunToRun rebuilds the same exchange from scratch and
// replays the genome query suite; counter totals must be identical both
// run-to-run (guarding against map-iteration order leaking into fact
// interning, grounding, or clause construction) and across parallelism.
func TestCounterDeterminismRunToRun(t *testing.T) {
	world, err := genome.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	queries, err := genome.Queries(world)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := genome.ProfileByName("L9", 0.004)
	if !ok {
		t.Fatal("unknown genome profile L9")
	}
	src := genome.Generate(world, p)
	run := func(parallelism int) string {
		reg := telemetry.NewRegistry()
		ex, err := NewExchangeOpts(world.M, src, Options{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			if _, err := ex.AnswerOpts(q, Options{Parallelism: parallelism}); err != nil {
				t.Fatal(err)
			}
		}
		return countersJSON(t, reg)
	}
	base := run(1)
	if again := run(1); base != again {
		t.Errorf("sequential counters diverge run to run:\n%s\n%s", base, again)
	}
	if par := run(8); base != par {
		t.Errorf("counters diverge across parallelism:\n%s\n%s", base, par)
	}
}
