package xr

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/asp"
	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/telemetry"
)

// MonolithicOptions tunes the monolithic pipeline.
type MonolithicOptions struct {
	// Ctx cancels the whole call; nil means context.Background().
	Ctx context.Context
	// Timeout bounds each query's solving time; zero means no limit.
	// On timeout the query's Result carries ErrTimeout.
	Timeout time.Duration
	// Parallelism is the number of queries solved concurrently (each query
	// is one independent program). Values below 2 run sequentially.
	Parallelism int
	// Trace, when non-nil, receives one event per program solved.
	Trace func(TraceEvent)
	// Metrics, when non-nil, aggregates timings and solver counters into
	// the given registry (see Options.Metrics).
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one span per query program (the
	// monolithic engine has no signature sub-structure to nest).
	Tracer *telemetry.Tracer
	// FaultHook mirrors Options.FaultHook for chaos testing: it is invoked
	// once per query at the "solve" site with the query name as key. Must
	// be nil in production use.
	FaultHook func(site, key string) error
}

// Monolithic computes the XR-Certain answers of the queries using the
// paper's Section 4/5.2 approach: per query, reduce the mapping to
// gav+(gav, egd) (Theorem 1), build one disjunctive logic program whose
// stable models are the canonical XR-solutions (Theorem 2), and compute
// cautious answers (Corollary 1).
//
// As in the paper, the cost of the exchange (the chase) is embedded in
// every individual query: the quasi-solution and grounding are recomputed
// per query. A per-query timeout or a canceled call context is recorded in
// that query's Result.Err (matching ErrTimeout / ErrCanceled under
// errors.Is); only genuine failures surface as the call error.
func Monolithic(m *mapping.Mapping, src *instance.Instance, queries []*logic.UCQ, opts MonolithicOptions) ([]*Result, error) {
	red, rqs, err := prepare(m, queries)
	if err != nil {
		return nil, err
	}
	o := (Options{Ctx: opts.Ctx, Parallelism: opts.Parallelism, Trace: opts.Trace}).serialized()
	mt := newMeters(opts.Metrics)
	ctx, cancel := o.begin()
	defer cancel()

	results := make([]*Result, len(queries))
	ferr := forEachWorker(ctx, o.workers(), len(queries), func(ctx context.Context, worker, i int) error {
		start := time.Now()
		span := opts.Tracer.StartSpan(telemetry.NoSpan, "query "+queries[i].Name+" [monolithic]")
		span.SetLane(worker)
		defer span.End()
		qctx := ctx
		if opts.Timeout > 0 {
			var qcancel context.CancelFunc
			qctx, qcancel = context.WithTimeout(ctx, opts.Timeout)
			defer qcancel()
		}
		res, err := monolithicGuarded(qctx, red.M, src, rqs[i], o.Trace, mt, queries[i].Name, opts.FaultHook)
		if err != nil && !isSentinel(err) && !errors.Is(err, ErrInternal) {
			return fmt.Errorf("xr: query %s: %w", queries[i].Name, err)
		}
		if res == nil {
			// A panic converted to ErrInternal left no result; contain the
			// failure to this query like a per-query timeout.
			res = &Result{Answers: cq.NewAnswerSet()}
		}
		if cerr := ctxErr(ctx); cerr != nil {
			return cerr // the whole call is canceled, not just this query
		}
		res.Query = queries[i]
		res.Err = err
		res.Stats.Duration = time.Since(start)
		mt.recordQuery("monolithic", res.Stats)
		results[i] = res
		return nil
	})
	if ferr != nil && !isSentinel(ferr) {
		return nil, ferr
	}
	for i := range results {
		if results[i] == nil { // skipped because the call was canceled
			results[i] = &Result{Query: queries[i], Answers: cq.NewAnswerSet(), Err: ferr}
		}
	}
	return results, nil
}

// monolithicGuarded runs one query's pipeline with panic containment: a
// panic anywhere in the chase/ground/solve path becomes an *InternalError
// recorded against this query alone, so a corrupted program fails one
// query, not the whole call (or the process).
func monolithicGuarded(ctx context.Context, gm *mapping.Mapping, src *instance.Instance, rq *logic.UCQ, trace func(TraceEvent), mt *meters, qname string, hook func(site, key string) error) (res *Result, err error) {
	defer recoverInternal("monolithic query "+qname, &err)
	if hook != nil {
		if herr := hook(faultSiteSolve, qname); herr != nil {
			return nil, fmt.Errorf("solving query program: %w", herr)
		}
	}
	return monolithicOne(ctx, gm, src, rq, trace, mt, qname)
}

func monolithicOne(ctx context.Context, gm *mapping.Mapping, src *instance.Instance, rq *logic.UCQ, trace func(TraceEvent), mt *meters, qname string) (*Result, error) {
	res := &Result{Answers: cq.NewAnswerSet()}
	if len(rq.Clauses) == 0 {
		return res, nil
	}
	// Exchange embedded in the query: chase now.
	prov, err := chase.GAV(gm, src)
	if err != nil {
		return nil, err
	}
	if cerr := ctxErr(ctx); cerr != nil {
		return res, cerr
	}
	return solveProgram(ctx, prov, rq, func(chase.FactID) factState { return factVar }, res, trace, mt, qname)
}

// solveProgram grounds the Figure 1 program over the given universe, adds
// the query candidates, and runs cautious reasoning under ctx.
func solveProgram(ctx context.Context, prov *chase.Provenance, rq *logic.UCQ, state func(chase.FactID) factState, res *Result, trace func(TraceEvent), mt *meters, qname string) (*Result, error) {
	start := time.Now()
	cands := collectCandidates(rq, prov)
	res.Stats.Candidates += len(cands)
	if len(cands) == 0 {
		return res, nil
	}
	enc := newEncoder(prov, state)
	enc.build()
	atoms := make([]asp.AtomID, 0, len(cands))
	live := make([]*candidate, 0, len(cands))
	for _, c := range cands {
		qa, any := enc.addCandidate(c)
		if !any {
			continue
		}
		atoms = append(atoms, qa)
		live = append(live, c)
	}
	res.Stats.Programs++
	res.Stats.GroundRules += len(enc.gp.Rules)
	res.Stats.GroundAtoms += enc.gp.NumAtoms()

	solver := asp.NewStableSolver(enc.gp)
	solver.SetContext(ctx)
	solver.Acceptor = enc.maximalityAcceptor(solver)
	kept, hasModel := solver.Cautious(atoms)
	if trace != nil || mt != nil {
		ev := TraceEvent{
			Engine:           "monolithic",
			Query:            qname,
			RequestID:        telemetry.RequestIDFromContext(ctx),
			Candidates:       len(atoms),
			Atoms:            enc.gp.NumAtoms(),
			Rules:            len(enc.gp.Rules),
			CandidatesTested: solver.CandidatesTested,
			StabilityFails:   solver.StabilityFails,
			LoopsLearned:     solver.LoopsLearned,
			TheoryRejects:    solver.TheoryRejects,
			Conflicts:        solver.SatConflicts(),
			Decisions:        solver.SatDecisions(),
			Propagations:     solver.SatPropagations(),
			Restarts:         solver.SatRestarts(),
			AssumptionSolves: solver.SatAssumptionSolves(),
			Reductions:       solver.SatReductions(),
			ClausesDeleted:   solver.SatClausesDeleted(),
			Duration:         time.Since(start),
		}
		mt.recordProgram(ev)
		if trace != nil {
			trace(ev)
		}
	}
	if solver.Canceled() {
		// The search was cut short: Cautious's partial narrowing must not
		// be trusted (it over-approximates). Report the sentinel; Answers
		// hold only what was decided before solving began.
		if cerr := ctxErr(ctx); cerr != nil {
			return res, cerr
		}
		return res, ErrCanceled
	}
	if !hasModel {
		return nil, fmt.Errorf("xr: internal error: program has no stable model (repairs always exist)")
	}
	keptSet := make(map[asp.AtomID]bool, len(kept))
	for _, a := range kept {
		keptSet[a] = true
	}
	for i, c := range live {
		if keptSet[atoms[i]] {
			res.Answers.Add(c.tuple)
			res.Stats.SolverAccepted++
		}
	}
	return res, nil
}
