package xr

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/asp"
	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
)

// MonolithicOptions tunes the monolithic pipeline.
type MonolithicOptions struct {
	// Timeout bounds each query's solving time; zero means no limit.
	// On timeout the query's Result carries ErrTimeout.
	Timeout time.Duration
}

// ErrTimeout is reported for queries that exceeded MonolithicOptions.Timeout.
var ErrTimeout = fmt.Errorf("xr: query timed out")

// Monolithic computes the XR-Certain answers of the queries using the
// paper's Section 4/5.2 approach: per query, reduce the mapping to
// gav+(gav, egd) (Theorem 1), build one disjunctive logic program whose
// stable models are the canonical XR-solutions (Theorem 2), and compute
// cautious answers (Corollary 1).
//
// As in the paper, the cost of the exchange (the chase) is embedded in
// every individual query: the quasi-solution and grounding are recomputed
// per query.
func Monolithic(m *mapping.Mapping, src *instance.Instance, queries []*logic.UCQ, opts MonolithicOptions) ([]*Result, error) {
	red, rqs, err := prepare(m, queries)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(queries))
	for i, q := range queries {
		start := time.Now()
		res, err := monolithicOne(red.M, src, rqs[i], opts)
		if err != nil && err != ErrTimeout {
			return nil, fmt.Errorf("xr: query %s: %w", q.Name, err)
		}
		res.Query = q
		res.Err = err
		res.Stats.Duration = time.Since(start)
		results[i] = res
	}
	return results, nil
}

func monolithicOne(gm *mapping.Mapping, src *instance.Instance, rq *logic.UCQ, opts MonolithicOptions) (*Result, error) {
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	res := &Result{Answers: cq.NewAnswerSet()}
	if len(rq.Clauses) == 0 {
		return res, nil
	}
	// Exchange embedded in the query: chase now.
	prov, err := chase.GAV(gm, src)
	if err != nil {
		return nil, err
	}
	return solveProgram(prov, rq, func(chase.FactID) factState { return factVar }, res, deadline)
}

// solveProgram grounds the Figure 1 program over the given universe, adds
// the query candidates, and runs cautious reasoning.
func solveProgram(prov *chase.Provenance, rq *logic.UCQ, state func(chase.FactID) factState, res *Result, deadline time.Time) (*Result, error) {
	cands := collectCandidates(rq, prov)
	res.Stats.Candidates += len(cands)
	if len(cands) == 0 {
		return res, nil
	}
	enc := newEncoder(prov, state)
	enc.build()
	atoms := make([]asp.AtomID, 0, len(cands))
	live := make([]*candidate, 0, len(cands))
	for _, c := range cands {
		qa, any := enc.addCandidate(c)
		if !any {
			continue
		}
		atoms = append(atoms, qa)
		live = append(live, c)
	}
	res.Stats.Programs++
	res.Stats.GroundRules += len(enc.gp.Rules)
	res.Stats.GroundAtoms += enc.gp.NumAtoms()

	solver := asp.NewStableSolver(enc.gp)
	solver.Acceptor = enc.maximalityAcceptor(solver)
	kept, hasModel := cautiousWithDeadline(solver, atoms, deadline)
	if kept == nil {
		return res, ErrTimeout
	}
	if !hasModel {
		return nil, fmt.Errorf("xr: internal error: program has no stable model (repairs always exist)")
	}
	keptSet := make(map[asp.AtomID]bool, len(kept))
	for _, a := range kept {
		keptSet[a] = true
	}
	for i, c := range live {
		if keptSet[atoms[i]] {
			res.Answers.Add(c.tuple)
			res.Stats.SolverAccepted++
		}
	}
	return res, nil
}

// cautiousWithDeadline runs Cautious; a zero deadline means no limit.
// It returns (nil, false) on timeout, cancelling the solver cooperatively
// so the worker goroutine releases the CPU promptly.
func cautiousWithDeadline(s *asp.StableSolver, atoms []asp.AtomID, deadline time.Time) ([]asp.AtomID, bool) {
	if deadline.IsZero() {
		kept, has := s.Cautious(atoms)
		return kept, has
	}
	var cancel atomic.Bool
	s.SetCancel(&cancel)
	type out struct {
		kept []asp.AtomID
		has  bool
	}
	ch := make(chan out, 1)
	go func() {
		kept, has := s.Cautious(atoms)
		ch <- out{kept, has}
	}()
	select {
	case o := <-ch:
		if s.Canceled() {
			return nil, false
		}
		return o.kept, o.has
	case <-time.After(time.Until(deadline)):
		cancel.Store(true)
		<-ch // wait for the worker to observe the flag and exit
		return nil, false
	}
}
