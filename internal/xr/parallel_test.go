package xr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/genome"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/telemetry"
)

// conflictFarm builds a world with n independent key-conflict clusters
// (each transcript ti has two disputed values) plus n clean transcripts,
// yielding many signature groups for the worker pool to fan out over.
func conflictFarm(n int) (*tw, *logic.UCQ) {
	w := keyConflictWorld()
	aRel, _ := w.cat.ByName("A")
	bRel, _ := w.cat.ByName("B")
	for i := 0; i < n; i++ {
		w.add(aRel, fmt.Sprintf("t%d", i), fmt.Sprintf("%d", 10+i))
		w.add(bRel, fmt.Sprintf("t%d", i), fmt.Sprintf("%d", 100+i))
		w.add(aRel, fmt.Sprintf("clean%d", i), fmt.Sprintf("%d", i))
	}
	return w, w.queryT()
}

// tupleStrings renders an answer set for order-insensitive comparison
// (Tuples already iterates in sorted key order).
func tupleStrings(res *Result) []string {
	rows := res.Answers.Tuples()
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = instance.EncodeTuple(r)
	}
	return out
}

// statsEqual compares per-query stats ignoring wall-clock duration.
func statsEqual(a, b QueryStats) bool {
	a.Duration, b.Duration = 0, 0
	return a == b
}

func requireSameResult(t *testing.T, label string, seq, par *Result) {
	t.Helper()
	sT, pT := tupleStrings(seq), tupleStrings(par)
	if len(sT) != len(pT) {
		t.Fatalf("%s: sequential %d answers, parallel %d", label, len(sT), len(pT))
	}
	for i := range sT {
		if sT[i] != pT[i] {
			t.Fatalf("%s: answer %d differs: %q vs %q", label, i, sT[i], pT[i])
		}
	}
	if !statsEqual(seq.Stats, par.Stats) {
		t.Fatalf("%s: stats differ:\nseq: %+v\npar: %+v", label, seq.Stats, par.Stats)
	}
}

// TestParallelMatchesSequentialFarm checks byte-identical answers and stats
// between the sequential path and a saturated worker pool on a many-cluster
// instance, for both certain and possible answers.
func TestParallelMatchesSequentialFarm(t *testing.T) {
	w, q := conflictFarm(24)
	exSeq, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	exPar, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	par := Options{Parallelism: runtime.NumCPU()}

	seqA, err := exSeq.AnswerOpts(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parA, err := exPar.AnswerOpts(q, par)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "answer", seqA, parA)
	if seqA.Stats.Programs < 2 {
		t.Fatalf("want multiple signature programs, got %d", seqA.Stats.Programs)
	}

	seqP, err := exSeq.PossibleOpts(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parP, err := exPar.PossibleOpts(q, par)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "possible", seqP, parP)
	if seqP.Answers.Len() <= seqA.Answers.Len() {
		t.Fatalf("possible (%d) should exceed certain (%d) on disputed facts",
			seqP.Answers.Len(), seqA.Answers.Len())
	}
}

// TestParallelMatchesSequentialGenome runs the full genome query suite on
// two suspect-rate profiles, comparing a sequential exchange against a
// parallel one query by query (same query order on both sides, so cache
// stats must agree too). Both sides aggregate into telemetry registries,
// whose counter totals must come out byte-identical: every counter is a
// sum of per-program contributions fixed by the query, so only the order
// of the atomic adds — never the total — depends on the parallelism.
func TestParallelMatchesSequentialGenome(t *testing.T) {
	world, err := genome.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	queries, err := genome.Queries(world)
	if err != nil {
		t.Fatal(err)
	}
	regSeq, regPar := telemetry.NewRegistry(), telemetry.NewRegistry()
	for _, name := range []string{"L3", "L9"} {
		p, ok := genome.ProfileByName(name, 0.004)
		if !ok {
			t.Fatalf("unknown profile %s", name)
		}
		src := genome.Generate(world, p)
		exSeq, err := NewExchangeOpts(world.M, src, Options{Metrics: regSeq})
		if err != nil {
			t.Fatal(err)
		}
		exPar, err := NewExchangeOpts(world.M, src, Options{Metrics: regPar})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			seq, err := exSeq.AnswerOpts(q, Options{Parallelism: 1})
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", name, q.Name, err)
			}
			par, err := exPar.AnswerOpts(q, Options{Parallelism: 8})
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", name, q.Name, err)
			}
			requireSameResult(t, name+"/"+q.Name, seq, par)
		}
	}
	seqC, parC := countersJSON(t, regSeq), countersJSON(t, regPar)
	if seqC != parC {
		t.Fatalf("telemetry counters diverge between Parallelism=1 and 8:\nseq: %s\npar: %s", seqC, parC)
	}
	if regSeq.Counter("xr_programs_total").Value() == 0 {
		t.Fatal("genome suite recorded no programs")
	}
}

// TestSecondAnswerHitsCache verifies that repeating a query on the same
// Exchange serves every signature program from the cache, observably via
// both stats and trace events.
func TestSecondAnswerHitsCache(t *testing.T) {
	w, q := conflictFarm(8)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ex.AnswerOpts(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Programs == 0 {
		t.Fatal("expected solver programs on the conflict farm")
	}
	if first.Stats.CacheHits != 0 {
		t.Fatalf("first run cache hits = %d, want 0", first.Stats.CacheHits)
	}

	var events []TraceEvent
	second, err := ex.AnswerOpts(q, Options{
		Parallelism: 4,
		Trace:       func(ev TraceEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	requireCacheRun := second.Stats
	if requireCacheRun.CacheHits != requireCacheRun.Programs || requireCacheRun.CacheHits == 0 {
		t.Fatalf("second run: cache hits %d of %d programs, want all",
			requireCacheRun.CacheHits, requireCacheRun.Programs)
	}
	if len(events) != second.Stats.Programs {
		t.Fatalf("trace events = %d, programs = %d", len(events), second.Stats.Programs)
	}
	for _, ev := range events {
		if !ev.CacheHit {
			t.Fatalf("trace event not a cache hit: %+v", ev)
		}
		if ev.Engine != "segmentary" || ev.Query != q.Name {
			t.Fatalf("unexpected trace metadata: %+v", ev)
		}
	}

	// Brave reasoning clones the same cached base programs.
	poss, err := ex.PossibleOpts(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if poss.Stats.CacheHits != poss.Stats.Programs {
		t.Fatalf("possible: cache hits %d of %d programs", poss.Stats.CacheHits, poss.Stats.Programs)
	}

	// The cached runs still agree with a fresh exchange.
	fresh, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	base, err := fresh.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	sT, cT := tupleStrings(base), tupleStrings(second)
	if len(sT) != len(cT) {
		t.Fatalf("cached answers diverge: %d vs %d", len(sT), len(cT))
	}
	for i := range sT {
		if sT[i] != cT[i] {
			t.Fatalf("cached answer %d differs: %q vs %q", i, sT[i], cT[i])
		}
	}
}

// TestConcurrentQueriesShareCache hammers one Exchange from many goroutines
// (mixed certain/possible) to exercise the signature-program cache under
// the race detector; all runs must agree with a single-threaded baseline.
func TestConcurrentQueriesShareCache(t *testing.T) {
	w, q := conflictFarm(12)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := ex.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	want := tupleStrings(baseline)

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		brave := g%2 == 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := Options{Parallelism: 3}
			var res *Result
			var err error
			if brave {
				res, err = ex.PossibleOpts(q, opts)
			} else {
				res, err = ex.AnswerOpts(q, opts)
			}
			if err != nil {
				errCh <- err
				return
			}
			if !brave {
				got := tupleStrings(res)
				if len(got) != len(want) {
					errCh <- fmt.Errorf("concurrent answers diverge: %d vs %d", len(got), len(want))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errCh <- fmt.Errorf("concurrent answer %d differs: %q vs %q", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestAnswerCanceledAndTimedOut checks that a dead context surfaces the
// matching sentinel from every segmentary entry point.
func TestAnswerCanceledAndTimedOut(t *testing.T) {
	w, q := conflictFarm(6)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.AnswerOpts(q, Options{Ctx: canceled}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled Answer: err = %v, want ErrCanceled", err)
	}
	if _, err := ex.PossibleOpts(q, Options{Ctx: canceled, Parallelism: 4}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled Possible: err = %v, want ErrCanceled", err)
	}
	if _, err := ex.RepairsOpts(0, Options{Ctx: canceled}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled Repairs: err = %v, want ErrCanceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	if _, err := ex.AnswerOpts(q, Options{Ctx: expired, Parallelism: 2}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired Answer: err = %v, want ErrTimeout", err)
	}
	if _, err := ex.AnswerOpts(q, Options{Timeout: time.Nanosecond}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("1ns-timeout Answer: err = %v, want ErrTimeout", err)
	}

	// The exchange remains fully usable after cancellations.
	if _, err := ex.Answer(q); err != nil {
		t.Fatalf("post-cancel Answer: %v", err)
	}
}

// TestMonolithicCanceled checks whole-call cancellation: per-query results
// carry the sentinel, the call-level error stays nil.
func TestMonolithicCanceled(t *testing.T) {
	w, q := conflictFarm(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Monolithic(w.m, w.src, []*logic.UCQ{q, q}, MonolithicOptions{Ctx: ctx, Parallelism: 2})
	if err != nil {
		t.Fatalf("call error = %v, want nil (sentinels live in per-query results)", err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	for i, r := range res {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("result %d: err = %v, want ErrCanceled", i, r.Err)
		}
		if r.Answers == nil {
			t.Fatalf("result %d: nil answer set", i)
		}
	}
}

// TestForEachSemantics pins down the worker-pool contract: deterministic
// lowest-index error, sentinel on a dead parent context, no work after n.
func TestForEachSemantics(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := forEach(context.Background(), workers, 8, func(_ context.Context, i int) error {
			if i >= 3 {
				return fmt.Errorf("job %d: %w", i, boom)
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}

		dead, cancel := context.WithCancel(context.Background())
		cancel()
		ran := 0
		err = forEach(dead, workers, 8, func(context.Context, int) error { ran++; return nil })
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d dead ctx: err = %v, want ErrCanceled", workers, err)
		}
		if workers == 1 && ran != 0 {
			t.Fatalf("sequential pool ran %d jobs under a dead context", ran)
		}

		if err := forEach(context.Background(), workers, 0, func(context.Context, int) error {
			t.Fatal("fn called for n=0")
			return nil
		}); err != nil {
			t.Fatalf("workers=%d n=0: err = %v", workers, err)
		}
	}
}

// TestNoGoroutineLeak runs parallel and canceled queries and verifies the
// worker pools drain completely.
func TestNoGoroutineLeak(t *testing.T) {
	w, q := conflictFarm(16)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if _, err := ex.AnswerOpts(q, Options{Parallelism: 8}); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := ex.AnswerOpts(q, Options{Ctx: ctx, Parallelism: 8}); !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	}
	var after int
	for i := 0; i < 50; i++ { // allow runtime bookkeeping goroutines to settle
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: before=%d after=%d", before, after)
}
