package xr

import (
	"repro/internal/asp"
	"repro/internal/chase"
)

// Figure1Program builds the *literal* Figure 1 program of the paper over
// the quasi-solution (partially evaluated like the corrected encoder):
//
//	deletion (tgd):  R1d ∨ ... ∨ Rnd ← Td, R1, ..., Rn, ¬R1i, ..., ¬Rni.
//	remainder (tgd): Tr ← R1r, ..., Rnr.
//	deletion (egd):  R1d ∨ ... ∨ Rnd ← R1, ..., Rn, xi ≠ xj, ¬R1i, ..., ¬Rni.
//	source:          Rr ← R, ¬Rd.
//	target:          Ri ← R, ¬Rr, ¬Rd.   ⊥ ← any two of {Rr, Rd, Ri}.
//
// It is retained for comparison and ablation: TestFigure1Discrepancy shows
// a minimal input on which this encoding loses a source repair (a source
// fact supporting both sides of a violation cannot be deleted in any stable
// model because its deletion disables, via the incidental ¬Ri guards, the
// only rules that would justify it). The corrected encoding in encode.go is
// used by the actual pipelines.
//
// The returned maps give the r-atom of every fact (for reading models).
func Figure1Program(prov *chase.Provenance) (*asp.GroundProgram, map[chase.FactID]asp.AtomID) {
	gp := asp.NewGroundProgram()
	r := make(map[chase.FactID]asp.AtomID)
	d := make(map[chase.FactID]asp.AtomID)
	i := make(map[chase.FactID]asp.AtomID)
	atom := func(m map[chase.FactID]asp.AtomID, f chase.FactID, kind byte) asp.AtomID {
		if a, ok := m[f]; ok {
			return a
		}
		a := gp.Atom(string(kind) + "#" + itoa(int(f)))
		m[f] = a
		return a
	}
	n := prov.NumFacts()
	for id := 0; id < n; id++ {
		f := chase.FactID(id)
		if prov.IsSource(f) {
			gp.AddRule([]asp.AtomID{atom(r, f, 'r')}, nil, []asp.AtomID{atom(d, f, 'd')})
			gp.AddConstraint([]asp.AtomID{atom(r, f, 'r'), atom(d, f, 'd')}, nil)
			continue
		}
		gp.AddRule([]asp.AtomID{atom(i, f, 'i')}, nil, []asp.AtomID{atom(r, f, 'r'), atom(d, f, 'd')})
		gp.AddConstraint([]asp.AtomID{atom(r, f, 'r'), atom(d, f, 'd')}, nil)
		gp.AddConstraint([]asp.AtomID{atom(r, f, 'r'), atom(i, f, 'i')}, nil)
		gp.AddConstraint([]asp.AtomID{atom(d, f, 'd'), atom(i, f, 'i')}, nil)
		for _, set := range prov.Supports(f) {
			var heads, negs, pos []asp.AtomID
			for _, b := range set {
				heads = append(heads, atom(d, b, 'd'))
				if !prov.IsSource(b) {
					negs = append(negs, atom(i, b, 'i'))
				}
				pos = append(pos, atom(r, b, 'r'))
			}
			gp.AddRule(heads, []asp.AtomID{atom(d, f, 'd')}, negs)
			gp.AddRule([]asp.AtomID{atom(r, f, 'r')}, pos, nil)
		}
	}
	for _, v := range prov.Violations {
		var heads, negs []asp.AtomID
		for _, b := range v.Body {
			heads = append(heads, atom(d, b, 'd'))
			if !prov.IsSource(b) {
				negs = append(negs, atom(i, b, 'i'))
			}
		}
		gp.AddRule(heads, nil, negs)
	}
	return gp, r
}

// CountRepairModels counts the stable models of the corrected encoding
// over the full provenance — by construction, the number of source repairs.
// Exposed for the encoding ablation experiment.
func CountRepairModels(prov *chase.Provenance) int {
	enc := newEncoder(prov, func(chase.FactID) factState { return factVar })
	enc.build()
	solver := asp.NewStableSolver(enc.gp)
	solver.Acceptor = enc.maximalityAcceptor(solver)
	return solver.Enumerate(func([]bool) bool { return true })
}
