package xr

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/genome"
	"repro/internal/telemetry"
	"repro/internal/testkit"
)

// This file pins the central contract of the persistent-solver path
// (DESIGN.md §17): answers, Unknown sets, per-query stats, and rendered
// explanations are byte-identical between the solver-reuse path (the
// default) and the fresh-solve path (DisableSolverReuse), at any
// parallelism, on cold and warm caches.

// requireCrossModeResult compares a fresh-path and a reuse-path result.
// Answers and every decision-relevant stat must match exactly. The two
// grounding-size stats are compared as an envelope instead: the fresh path
// reports a throwaway per-query program while the persistent solver
// honestly reports its accumulated program (base + every candidate wired
// so far), so the absolute rule/atom totals legitimately differ while
// remaining deterministic within each mode.
func requireCrossModeResult(t *testing.T, label string, fresh, reuse *Result) {
	t.Helper()
	fT, rT := tupleStrings(fresh), tupleStrings(reuse)
	if len(fT) != len(rT) {
		t.Fatalf("%s: fresh %d answers, reuse %d", label, len(fT), len(rT))
	}
	for i := range fT {
		if fT[i] != rT[i] {
			t.Fatalf("%s: answer %d differs: %q vs %q", label, i, fT[i], rT[i])
		}
	}
	fS, rS := fresh.Stats, reuse.Stats
	if (fS.GroundRules > 0) != (rS.GroundRules > 0) || (fS.GroundAtoms > 0) != (rS.GroundAtoms > 0) {
		t.Fatalf("%s: grounding stats envelope broken:\nfresh: %+v\nreuse: %+v", label, fS, rS)
	}
	fS.GroundRules, rS.GroundRules = 0, 0
	fS.GroundAtoms, rS.GroundAtoms = 0, 0
	if !statsEqual(fS, rS) {
		t.Fatalf("%s: stats differ:\nfresh: %+v\nreuse: %+v", label, fS, rS)
	}
}

// requireSameUnknown compares the Unknown sets of two results.
func requireSameUnknown(t *testing.T, label string, a, b *Result) {
	t.Helper()
	switch {
	case a.Unknown == nil && b.Unknown == nil:
		return
	case a.Unknown == nil || b.Unknown == nil:
		t.Fatalf("%s: Unknown presence differs: %v vs %v", label, a.Unknown != nil, b.Unknown != nil)
	}
	aU, bU := a.Unknown.Tuples(), b.Unknown.Tuples()
	if len(aU) != len(bU) {
		t.Fatalf("%s: Unknown sizes differ: %d vs %d", label, len(aU), len(bU))
	}
	for i := range aU {
		if fmt.Sprint(aU[i]) != fmt.Sprint(bU[i]) {
			t.Fatalf("%s: Unknown tuple %d differs: %v vs %v", label, i, aU[i], bU[i])
		}
	}
}

// TestReuseMatchesFreshConflictFarm: repeated certain/possible queries on a
// many-cluster world, so later runs exercise warm solver sessions, warm
// caches, and candidate memoization.
func TestReuseMatchesFreshConflictFarm(t *testing.T) {
	w, q := conflictFarm(16)
	exReuse, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	exFresh, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 8} {
		for pass := 0; pass < 2; pass++ {
			label := fmt.Sprintf("par=%d pass=%d", par, pass)
			ra, err := exReuse.AnswerOpts(q, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			fa, err := exFresh.AnswerOpts(q, Options{Parallelism: par, DisableSolverReuse: true})
			if err != nil {
				t.Fatal(err)
			}
			requireCrossModeResult(t, label+" answer", fa, ra)
			requireSameUnknown(t, label+" answer", fa, ra)

			rp, err := exReuse.PossibleOpts(q, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			fp, err := exFresh.PossibleOpts(q, Options{Parallelism: par, DisableSolverReuse: true})
			if err != nil {
				t.Fatal(err)
			}
			requireCrossModeResult(t, label+" possible", fp, rp)
			requireSameUnknown(t, label+" possible", fp, rp)
		}
	}
}

// TestReuseMatchesFreshGenome runs the full genome query suite on the S3
// and M3 profiles against both solver paths at several parallelism levels.
// The reuse exchange keeps one persistent solver per signature across the
// whole suite, so by the later queries it is deep into incremental
// territory (hundreds of sessions, memoized candidates, shared learnts).
func TestReuseMatchesFreshGenome(t *testing.T) {
	world, err := genome.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	queries, err := genome.Queries(world)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"S3", "M3"} {
		p, ok := genome.ProfileByName(name, 0.02)
		if !ok {
			t.Fatalf("unknown profile %s", name)
		}
		src := genome.Generate(world, p)
		exReuse, err := NewExchange(world.M, src)
		if err != nil {
			t.Fatal(err)
		}
		exFresh, err := NewExchange(world.M, src)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			par := []int{1, 4, 8}[qi%3]
			r, err := exReuse.AnswerOpts(q, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s/%s reuse: %v", name, q.Name, err)
			}
			f, err := exFresh.AnswerOpts(q, Options{Parallelism: par, DisableSolverReuse: true})
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", name, q.Name, err)
			}
			requireCrossModeResult(t, name+"/"+q.Name, f, r)
			requireSameUnknown(t, name+"/"+q.Name, f, r)
		}
	}
}

// TestReuseExplanationsIdentical: rendered explanations are byte-identical
// between reuse modes and across parallelism — the explain pass runs on its
// own per-group solver regardless of the query path.
func TestReuseExplanationsIdentical(t *testing.T) {
	world, err := genome.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	queries, err := genome.Queries(world)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := genome.ProfileByName("S3", 0.02)
	src := genome.Generate(world, p)
	want := map[string]string{}
	for _, reuse := range []bool{true, false} {
		for _, par := range []int{1, runtime.NumCPU()} {
			ex, err := NewExchange(world.M, src)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				res, err := ex.AnswerOpts(q, Options{
					Parallelism:        par,
					Explain:            true,
					DisableSolverReuse: !reuse,
				})
				if err != nil {
					t.Fatalf("%s reuse=%v: %v", q.Name, reuse, err)
				}
				got := renderAll(world.Cat, world.U, ex, res)
				key := q.Name
				if prev, ok := want[key]; !ok {
					want[key] = got
				} else if got != prev {
					t.Fatalf("%s: explanations diverge (reuse=%v par=%d):\n%s\n-- want --\n%s",
						q.Name, reuse, par, got, prev)
				}
			}
		}
	}
}

// TestReuseMatchesFreshRandom cross-validates both paths on random
// weakly-acyclic mappings, instances, and queries (the PR 4 generator),
// re-asking each query so the reuse path serves warm sessions.
func TestReuseMatchesFreshRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 25; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{Existentials: trial%2 == 0})
		src := testkit.RandomInstance(rng, w, 14+rng.Intn(10), 4)
		exReuse, err := NewExchange(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exFresh, err := NewExchange(w.M, src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for qi := 0; qi < 3; qi++ {
			q := testkit.RandomQuery(rng, w, fmt.Sprintf("q%d_%d", trial, qi))
			for pass := 0; pass < 2; pass++ {
				par := 1 + (trial+qi+pass)%8
				label := fmt.Sprintf("trial %d %s pass %d", trial, q.Name, pass)
				r, err := exReuse.AnswerOpts(q, Options{Parallelism: par})
				if err != nil {
					t.Fatalf("%s reuse: %v", label, err)
				}
				f, err := exFresh.AnswerOpts(q, Options{Parallelism: par, DisableSolverReuse: true})
				if err != nil {
					t.Fatalf("%s fresh: %v", label, err)
				}
				requireCrossModeResult(t, label, f, r)
				requireSameUnknown(t, label, f, r)
			}
		}
	}
}

// TestReuseObservable verifies the reuse path actually runs and is visible
// in trace events and telemetry: warm sessions report SolverReused with
// per-session delta counters, and the xr_solver_reuse_* counters move.
func TestReuseObservable(t *testing.T) {
	w, q := conflictFarm(6)
	reg := telemetry.NewRegistry()
	ex, err := NewExchangeOpts(w.m, w.src, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.AnswerOpts(q, Options{}); err != nil {
		t.Fatal(err)
	}
	var warm []TraceEvent
	if _, err := ex.AnswerOpts(q, Options{Trace: func(ev TraceEvent) {
		if ev.SolverReused {
			warm = append(warm, ev)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if len(warm) == 0 {
		t.Fatal("second run reported no reused-solver trace events")
	}
	for _, ev := range warm {
		if ev.AssumptionSolves < 0 || ev.Decisions < 0 || ev.Conflicts < 0 {
			t.Fatalf("negative per-session delta counters: %+v", ev)
		}
	}
	if got := reg.Counter("xr_solver_reuse_builds_total").Value(); got == 0 {
		t.Fatal("xr_solver_reuse_builds_total did not move")
	}
	if got := reg.Counter("xr_solver_reuse_sessions_total").Value(); got == 0 {
		t.Fatal("xr_solver_reuse_sessions_total did not move")
	}
	if got := reg.Counter("xr_solver_assumption_solves_total").Value(); got == 0 {
		t.Fatal("xr_solver_assumption_solves_total did not move")
	}

	// The fresh path must not touch the reuse counters further.
	builds := reg.Counter("xr_solver_reuse_builds_total").Value()
	sessions := reg.Counter("xr_solver_reuse_sessions_total").Value()
	if _, err := ex.AnswerOpts(q, Options{DisableSolverReuse: true}); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("xr_solver_reuse_builds_total").Value() != builds ||
		reg.Counter("xr_solver_reuse_sessions_total").Value() != sessions {
		t.Fatal("fresh-solve path moved the solver-reuse counters")
	}
}
