package xr

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/asp"
	"repro/internal/chase"
)

// sigProgram is one cached signature program: the base grounding of the
// Theorem 4 sub-world restricted to a signature's focus, plus everything
// learned about it so far. An Exchange keeps one entry per canonical
// signature key, so repeated queries over the same exchange reuse the
// grounding instead of re-encoding it.
//
// Reuse is safe because an Exchange is immutable after NewExchange: the
// provenance, clusters, and safe split never change, so the base program
// of a signature is a pure function of its key. Per-query candidate atoms
// are wired into an independent clone of the base program (the shared atom
// tables are frozen by buildFocused, so candidate wiring only reads them),
// and each query gets a fresh solver — solver state is spent by
// Cautious/Brave and is never shared.
//
// The maximality clauses learned by one query's acceptor ARE shared: each
// clause r(f) ∨ ⋁ r(g) states a model-independent fact about the base
// program's source repairs ("no repair deletes f together with all of
// {g}"), so replaying it on a later solver over the same base program
// prunes non-repairs without excluding any repair.
type sigProgram struct {
	build sync.Once
	enc   *encoder  // frozen base encoder (program without candidates)
	idx   *maxIndex // derivation index for the maximality acceptor

	mu      sync.Mutex
	seen    map[string]bool
	learned []learnedClause // all-positive clauses over base "remains" atoms

	// incMu guards inc, the signature's persistent incremental solver
	// (see incremental.go). Queries reusing the solver serialize on it for
	// the duration of their solve; the fresh-solve path and the explain
	// pass never take it.
	incMu sync.Mutex
	inc   *incSolver
}

// learnedClause is one recorded maximality clause together with its
// canonical dedup key (sorted atom ids, comma-joined), which doubles as
// the installation ledger key for persistent solvers.
type learnedClause struct {
	key   string
	atoms []asp.AtomID
}

// sigProgramFor returns the cache entry for a canonical signature key,
// reporting whether it already existed (a hit reuses the base grounding
// and the maximality clauses learned so far).
func (ex *Exchange) sigProgramFor(key string) (*sigProgram, bool) {
	ex.progMu.Lock()
	defer ex.progMu.Unlock()
	if sp, ok := ex.progCache[key]; ok {
		return sp, true
	}
	sp := &sigProgram{seen: make(map[string]bool)}
	if ex.progCache == nil {
		ex.progCache = make(map[string]*sigProgram)
	}
	ex.progCache[key] = sp
	return sp, false
}

// discardSigProgram evicts a cache entry, but only while sp is still the
// current one (a concurrent eviction may already have replaced it). The
// next sigProgramFor rebuilds the base grounding from the immutable
// exchange, so eviction loses only learned maximality clauses — never
// soundness. Used by the cache-corruption recovery path; queries holding
// the old entry keep using their reference safely.
func (ex *Exchange) discardSigProgram(key string, sp *sigProgram) {
	ex.progMu.Lock()
	if ex.progCache[key] == sp {
		delete(ex.progCache, key)
	}
	ex.progMu.Unlock()
}

// ensure builds the base signature program exactly once per entry: the
// restriction of the Theorem 2 grounding to the signature's focus, with
// safe facts pinned true (Theorem 4).
func (sp *sigProgram) ensure(ex *Exchange, sig []int) {
	sp.build.Do(func() {
		focus := make(map[chase.FactID]bool)
		for _, ci := range sig {
			for f := range ex.Clusters[ci].Influence {
				focus[f] = true
			}
		}
		state := func(f chase.FactID) factState {
			switch {
			case ex.safeDerivable[f]:
				return factTrue
			case focus[f]:
				return factVar
			default:
				return factAbsent
			}
		}
		enc := newEncoder(ex.Prov, state)
		enc.buildFocused(focus)
		sp.enc = enc
		sp.idx = newMaxIndex(enc)
	})
}

// addLearned records one maximality clause for replay, returning its
// canonical key and whether it was new. Clauses arrive as positive base
// atoms; duplicates are dropped.
func (sp *sigProgram) addLearned(clause []asp.AtomID) (string, bool) {
	c := append([]asp.AtomID(nil), clause...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	var b strings.Builder
	for i, a := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(itoa(int(a)))
	}
	key := b.String()
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.seen[key] {
		return key, false
	}
	sp.seen[key] = true
	sp.learned = append(sp.learned, learnedClause{key: key, atoms: c})
	return key, true
}

// replayInto installs the learned maximality clauses on a fresh solver
// over a clone of the base program. Base atoms keep their ids across
// clones (clones only append), so the stored atom ids remain valid.
func (sp *sigProgram) replayInto(s *asp.StableSolver) int {
	sp.mu.Lock()
	snapshot := sp.learned[:len(sp.learned):len(sp.learned)]
	sp.mu.Unlock()
	for _, lc := range snapshot {
		lits := make([]asp.Lit, len(lc.atoms))
		for i, a := range lc.atoms {
			lits[i] = s.AtomLit(a, true)
		}
		s.AddTheoryClause(lits)
	}
	return len(snapshot)
}
