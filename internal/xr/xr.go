// Package xr implements the paper's primary contribution: XR-Certain query
// answering for data exchange under inconsistency-tolerant semantics.
//
// It provides:
//
//   - the Figure 1 / Theorem 2 encoding of the XR-solutions of a source
//     instance as the stable models of a disjunctive logic program,
//     partially evaluated against the canonical quasi-solution;
//   - the monolithic pipeline (Section 5.2): one DLP per (query, instance);
//   - the segmentary pipeline (Section 6): a query-independent exchange
//     phase computing repair envelopes, violation clusters and influences,
//     and a query phase solving one small DLP per fact signature;
//   - a brute-force reference implementation that enumerates source repairs
//     explicitly (exponential; for validation on small instances).
package xr

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/explain"
	"repro/internal/gavreduce"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/symtab"
)

// Result holds the XR-Certain answers of one query.
type Result struct {
	Query   *logic.UCQ
	Answers *cq.AnswerSet
	// Unknown holds the candidate tuples of degraded signature groups when
	// the query ran with Options.Partial (segmentary engines only; nil
	// otherwise, and empty on an undegraded partial query). Answers and
	// Unknown are disjoint; Answers under-approximates the exact certain
	// answers and Answers ∪ Unknown over-approximates them, so both bounds
	// are sound (DESIGN.md §11).
	Unknown *cq.AnswerSet
	// Degraded reports each undecided signature group of a Partial query,
	// in canonical signature-key order (deterministic at any Parallelism
	// when degradation is driven by MaxDecisions/MaxConflicts).
	Degraded []SignatureError
	// Explanations holds one entry per candidate tuple, in candidate
	// collection order, when the query ran with Options.Explain (segmentary
	// engines only; nil otherwise). See internal/explain.
	Explanations []*explain.Explanation
	Stats        QueryStats
	// Err is ErrTimeout when the query exceeded its solving budget; the
	// Answers are then a lower bound (possibly empty).
	Err error
}

// QueryStats records per-query execution measurements.
type QueryStats struct {
	Candidates     int // candidate answers (Definition 2 upper bound)
	SafeAccepted   int // candidates accepted without solving
	SolverAccepted int // candidates accepted by cautious reasoning
	Programs       int // DLP programs solved
	GroundRules    int // total ground rules across programs
	GroundAtoms    int // total ground atoms across programs
	CacheHits      int // programs served from the signature-program cache

	DegradedSignatures int // signature groups left undecided (Partial mode)
	UnknownTuples      int // candidate tuples moved to Unknown
	Retries            int // signature retries with a doubled budget

	Duration time.Duration
}

// candidate is one candidate answer tuple with its support sets (ground
// clause-body matches in the canonical quasi-solution).
type candidate struct {
	tuple    []symtab.Value
	supports [][]chase.FactID
}

// collectCandidates evaluates the (rewritten) UCQ over the quasi-solution
// and returns each distinct answer tuple with all of its support sets.
func collectCandidates(rq *logic.UCQ, prov *chase.Provenance) []*candidate {
	byKey := make(map[string]*candidate)
	var order []string
	for ci := range rq.Clauses {
		c := &rq.Clauses[ci]
		plan := cq.Compile(c.Body)
		plan.ForEach(prov.Instance, func(env []symtab.Value) bool {
			tuple := make([]symtab.Value, len(c.Head))
			for i, t := range c.Head {
				if t.IsVar() {
					tuple[i] = env[plan.VarSlot[t.Var]]
				} else {
					tuple[i] = t.Val
				}
			}
			support := make([]chase.FactID, len(c.Body))
			for i, a := range c.Body {
				args := make([]symtab.Value, len(a.Terms))
				for j, t := range a.Terms {
					if t.IsVar() {
						args[j] = env[plan.VarSlot[t.Var]]
					} else {
						args[j] = t.Val
					}
				}
				id, ok := prov.FactIDOf(instance.Fact{Rel: a.Rel, Args: args})
				if !ok {
					panic("xr: candidate support fact not in provenance")
				}
				support[i] = id
			}
			sort.Slice(support, func(i, j int) bool { return support[i] < support[j] })
			k := instance.EncodeTuple(tuple)
			cand, ok := byKey[k]
			if !ok {
				cand = &candidate{tuple: tuple}
				byKey[k] = cand
				order = append(order, k)
			}
			cand.addSupport(support)
			return true
		})
	}
	// Canonical order: plan iteration follows the instance's indexes, whose
	// order is not stable run to run. Downstream the candidate order steers
	// solver assumption testing and the Explanations slice, and the support
	// order steers candidate rule wiring (and through clause watches, the
	// effort counters the profiler records), so sort both.
	sort.Strings(order)
	out := make([]*candidate, len(order))
	for i, k := range order {
		out[i] = byKey[k]
		sortSupports(out[i].supports)
	}
	return out
}

// sortSupports orders a candidate's support sets lexicographically (each
// set is already sorted by fact id).
func sortSupports(sets [][]chase.FactID) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

func (c *candidate) addSupport(s []chase.FactID) {
	for _, prev := range c.supports {
		if factIDsEqual(prev, s) {
			return
		}
	}
	c.supports = append(c.supports, s)
}

func factIDsEqual(a, b []chase.FactID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prepare reduces the mapping and rewrites the queries; shared by both
// pipelines.
func prepare(m *mapping.Mapping, queries []*logic.UCQ) (*gavreduce.Reduction, []*logic.UCQ, error) {
	red, err := gavreduce.Reduce(m)
	if err != nil {
		return nil, nil, err
	}
	rqs := make([]*logic.UCQ, len(queries))
	for i, q := range queries {
		rq, err := red.RewriteQuery(q)
		if err != nil {
			return nil, nil, fmt.Errorf("xr: rewriting query %s: %w", q.Name, err)
		}
		rqs[i] = rq
	}
	return red, rqs, nil
}
