package xr

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultkit"
	"repro/internal/genome"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/parser"
)

// chaosWorld loads a genome profile, its query suite, and a clean
// (fault-free) reference answer list per query.
func chaosWorld(t *testing.T, profile string) (*parser.World, []*logic.UCQ, *instance.Instance, [][]string) {
	t.Helper()
	world, err := genome.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	queries, err := genome.Queries(world)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := genome.ProfileByName(profile, 0.004)
	if !ok {
		t.Fatalf("unknown genome profile %s", profile)
	}
	src := genome.Generate(world, p)
	ex, err := NewExchange(world.M, src)
	if err != nil {
		t.Fatal(err)
	}
	clean := make([][]string, len(queries))
	for i, q := range queries {
		res, err := ex.AnswerOpts(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		clean[i] = tupleStrings(res)
	}
	return world, queries, src, clean
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosSolveDelayTimeoutSoundness (genome L9): SolveDelay faults
// combined with a short signature timeout degrade a subset of signatures;
// every query's partial answers must satisfy the §11 soundness envelope
// against the clean reference run.
func TestChaosSolveDelayTimeoutSoundness(t *testing.T) {
	world, queries, src, clean := chaosWorld(t, "L9")
	inj := faultkit.New(7003,
		faultkit.Fault{Kind: faultkit.SolveDelay, Rate: 0.4, Delay: 20 * time.Millisecond})
	ex, err := NewExchange(world.M, src)
	if err != nil {
		t.Fatal(err)
	}
	degradedTotal := 0
	for i, q := range queries {
		res, err := ex.AnswerOpts(q, Options{
			SignatureTimeout: time.Millisecond,
			FaultHook:        inj.Hook(),
			Partial:          true,
			Parallelism:      4,
		})
		if err != nil {
			t.Fatalf("query %s: %v", q.Name, err)
		}
		degradedTotal += len(res.Degraded)
		for _, d := range res.Degraded {
			if !errors.Is(d.Err, ErrTimeout) {
				t.Fatalf("query %s degraded {%s} with %v, want ErrTimeout", q.Name, d.Signature, d.Err)
			}
		}
		assertSoundPartial(t, clean[i], res)
	}
	if inj.Fired(faultkit.SolveDelay) == 0 {
		t.Fatal("vacuous chaos run: no SolveDelay fault fired")
	}
	if degradedTotal == 0 {
		t.Fatal("vacuous chaos run: delays fired but nothing degraded")
	}
}

// TestChaosSolvePanicSoundness (genome L20): rate-based injected panics
// at Parallelism 8 degrade only the panicked signatures, each recorded as
// ErrInternal with a stack; all other signatures answer normally and the
// soundness envelope holds. The process must, of course, survive.
func TestChaosSolvePanicSoundness(t *testing.T) {
	world, queries, src, clean := chaosWorld(t, "L20")
	inj := faultkit.New(7004, faultkit.Fault{Kind: faultkit.SolvePanic, Rate: 0.3})
	ex, err := NewExchange(world.M, src)
	if err != nil {
		t.Fatal(err)
	}
	degradedTotal := 0
	for i, q := range queries {
		res, err := ex.AnswerOpts(q, Options{
			FaultHook:   inj.Hook(),
			Partial:     true,
			Parallelism: 8,
		})
		if err != nil {
			t.Fatalf("query %s: %v", q.Name, err)
		}
		degradedTotal += len(res.Degraded)
		for _, d := range res.Degraded {
			if !errors.Is(d.Err, ErrInternal) {
				t.Fatalf("query %s degraded {%s} with %v, want ErrInternal", q.Name, d.Signature, d.Err)
			}
			var ie *InternalError
			if !errors.As(d.Err, &ie) || len(ie.Stack) == 0 {
				t.Fatalf("query %s degraded {%s} without a captured stack", q.Name, d.Signature)
			}
		}
		assertSoundPartial(t, clean[i], res)
	}
	if inj.Fired(faultkit.SolvePanic) == 0 {
		t.Fatal("vacuous chaos run: no SolvePanic fault fired")
	}
	if degradedTotal == 0 {
		t.Fatal("vacuous chaos run: panics fired but nothing degraded")
	}
}

// TestChaosDelayOnlyIdentical (genome L9): SolveDelay faults without any
// signature timeout slow signatures down but change nothing — answers must
// be byte-identical to the clean run even with Partial off.
func TestChaosDelayOnlyIdentical(t *testing.T) {
	world, queries, src, clean := chaosWorld(t, "L9")
	inj := faultkit.New(11, faultkit.Fault{Kind: faultkit.SolveDelay, Rate: 0.5, Delay: time.Millisecond})
	ex, err := NewExchange(world.M, src)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res, err := ex.AnswerOpts(q, Options{FaultHook: inj.Hook(), Parallelism: 4})
		if err != nil {
			t.Fatalf("query %s: %v", q.Name, err)
		}
		if len(res.Degraded) != 0 {
			t.Fatalf("query %s degraded under delay-only faults", q.Name)
		}
		if !sameStrings(clean[i], tupleStrings(res)) {
			t.Fatalf("query %s: answers differ under delay-only faults", q.Name)
		}
	}
	if inj.Fired(faultkit.SolveDelay) == 0 {
		t.Fatal("vacuous chaos run: no SolveDelay fault fired")
	}
}

// TestChaosCacheCorruptIdentical (genome L9): CacheCorrupt faults evict
// the poisoned signature-program cache entries, forcing rebuilds; answers
// must be byte-identical to the clean run (only learned clauses are lost).
// The second pass over the query suite guarantees cache hits to poison.
func TestChaosCacheCorruptIdentical(t *testing.T) {
	world, queries, src, clean := chaosWorld(t, "L9")
	inj := faultkit.New(23, faultkit.Fault{Kind: faultkit.CacheCorrupt, Rate: 0.5})
	ex, err := NewExchange(world.M, src)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for i, q := range queries {
			res, err := ex.AnswerOpts(q, Options{FaultHook: inj.Hook(), Parallelism: 4})
			if err != nil {
				t.Fatalf("pass %d query %s: %v", pass, q.Name, err)
			}
			if len(res.Degraded) != 0 {
				t.Fatalf("pass %d query %s degraded under cache corruption", pass, q.Name)
			}
			if !sameStrings(clean[i], tupleStrings(res)) {
				t.Fatalf("pass %d query %s: answers differ under cache corruption", pass, q.Name)
			}
		}
	}
	if inj.Fired(faultkit.CacheCorrupt) == 0 {
		t.Fatal("vacuous chaos run: no CacheCorrupt fault fired")
	}
}

// TestChaosGroundErrDegrades (genome L9): injected grounding failures are
// not retryable-by-budget but still degrade cleanly under Partial, and
// fail the query in strict mode.
func TestChaosGroundErrDegrades(t *testing.T) {
	world, queries, src, clean := chaosWorld(t, "L9")
	inj := faultkit.New(31, faultkit.Fault{Kind: faultkit.GroundErr, Rate: 0.4})
	ex, err := NewExchange(world.M, src)
	if err != nil {
		t.Fatal(err)
	}
	degradedTotal := 0
	for i, q := range queries {
		res, err := ex.AnswerOpts(q, Options{FaultHook: inj.Hook(), Partial: true, Parallelism: 4})
		if err != nil {
			t.Fatalf("query %s: %v", q.Name, err)
		}
		degradedTotal += len(res.Degraded)
		for _, d := range res.Degraded {
			if !errors.Is(d.Err, faultkit.ErrInjected) {
				t.Fatalf("query %s degraded {%s} with %v, want the injected error", q.Name, d.Signature, d.Err)
			}
			if d.Retries != 0 {
				t.Fatalf("ground errors are not retryable, got %d retries", d.Retries)
			}
		}
		assertSoundPartial(t, clean[i], res)
	}
	if inj.Fired(faultkit.GroundErr) == 0 {
		t.Fatal("vacuous chaos run: no GroundErr fault fired")
	}
	if degradedTotal == 0 {
		t.Fatal("vacuous chaos run: ground faults fired but nothing degraded")
	}
}
