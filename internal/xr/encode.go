package xr

import (
	"sort"

	"repro/internal/asp"
	"repro/internal/chase"
)

// encoder builds a disjunctive logic program whose stable models are
// exactly the source repairs of the (sub-)instance, partially evaluated
// against the canonical quasi-solution.
//
// # Relation to the paper's Figure 1
//
// The paper's Figure 1 program guards its deletion rules with ¬Ri
// ("incidentally deleted") literals and justifies source deletions through
// chains of target deletions. We found that this literal encoding loses
// repairs in a corner case: when one source fact supports *both* sides of
// an egd violation, deleting it removes the violation whose deletion rule
// is the only justification for the deletion, leaving the intended stable
// model unfounded. Minimal counterexample (see TestFigure1Discrepancy):
//
//	S1(c) → T1(c);  S1(y) ∧ S2(w,z) → T0(w);  egd: T0(y) ∧ T1(z) → z = y
//	I = {S1(c2), S2(c0,c2)}
//
// has two source repairs ({S1} and {S2}), but the Figure 1 program has a
// single stable model (the {S1} repair): deleting S1 kills both T0 and T1,
// the egd deletion rule is disabled by the incidental T0, and S1d loses all
// support. We therefore use the following corrected encoding with the same
// asymptotic size, cross-validated against brute-force repair enumeration:
//
//   - choice, per deletable source fact f:   Rr(f) ← ¬Rd(f).  Rd(f) ← ¬Rr(f).
//   - derivation, per ground tgd instance:   Tr(h) ← R1r, ..., Rnr.
//   - consistency, per violated ground egd:  ⊥ ← R1r, ..., Rnr.
//   - maximality, per deletable source fact f: a deleted fact must break
//     something when re-added. This is enforced lazily through the solver's
//     theory acceptor (see maximalityAcceptor): a stable model in which some
//     deleted f could be restored without realizing a violation is rejected
//     with the learned clause  Rr(f) ∨ ⋁ { Rr(g) : g deleted besides f },
//     which says that either f is kept or some other deletion is undone.
//     (An in-program encoding of the witness requires recursive auxiliary
//     atoms whose positive cycles — through the EQ closure of the reduced
//     mapping — made CDCL search thrash; the lazy check is linear.)
//
// Non-deletable source facts (outside every violation's support closure —
// the paper's "safe" facts, which belong to every repair by Proposition 3)
// are either pinned true (segmentary) or constrained undeletable
// (monolithic).
//
// # Partial evaluation
//
// The original (unsubscripted) relations are pre-evaluated: every stable
// model of Π_M ∪ I interprets them as I ∪ J where J is the quasi-solution.
// Facts marked "true" by the state function (the safe part in the
// segmentary pipeline) are pinned to the remainder state, and every literal
// about them evaluates away. Support sets and violations reaching outside
// the universe are omitted — they do not exist in the restricted sub-world
// (Theorem 4).
type encoder struct {
	prov *chase.Provenance
	gp   *asp.GroundProgram

	// state returns how fact f participates: variable, true, or absent.
	state func(chase.FactID) factState

	r map[chase.FactID]asp.AtomID // "remains" atoms for variable facts
	d map[chase.FactID]asp.AtomID // "deleted" atoms for deletable source facts

	deletable         []chase.FactID // source facts with a choice
	coveredViolations []int          // indexes into prov.Violations with covered bodies
}

type factState int8

const (
	factAbsent factState = iota
	factTrue             // pinned to "remains"; no atoms allocated
	factVar              // solver atoms allocated
)

func newEncoder(prov *chase.Provenance, state func(chase.FactID) factState) *encoder {
	return &encoder{
		prov:  prov,
		gp:    asp.NewGroundProgram(),
		state: state,
		r:     make(map[chase.FactID]asp.AtomID),
		d:     make(map[chase.FactID]asp.AtomID),
	}
}

func (e *encoder) rAtom(f chase.FactID) asp.AtomID { return e.atom(e.r, f, 'r') }
func (e *encoder) dAtom(f chase.FactID) asp.AtomID { return e.atom(e.d, f, 'd') }

func (e *encoder) atom(m map[chase.FactID]asp.AtomID, f chase.FactID, kind byte) asp.AtomID {
	if a, ok := m[f]; ok {
		return a
	}
	a := e.gp.Atom(string(kind) + "#" + itoa(int(f)))
	m[f] = a
	return a
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// build emits the complete program over every fact of the provenance.
func (e *encoder) build() {
	n := e.prov.NumFacts()
	ids := make([]chase.FactID, 0, n)
	for id := 0; id < n; id++ {
		ids = append(ids, chase.FactID(id))
	}
	e.emit(ids)
}

// buildFocused emits the program restricted to the given focus facts and
// then freezes the atom tables: the "remains" atom of every variable fact
// is allocated up front, so later candidate wiring (addCandidate on a
// specialized clone) only reads the shared r/d maps and is safe to run
// from concurrent per-query specializations.
func (e *encoder) buildFocused(focus map[chase.FactID]bool) {
	ids := make([]chase.FactID, 0, len(focus))
	for f := range focus {
		ids = append(ids, f)
	}
	sortFactIDs(ids)
	e.emit(ids)
	for _, f := range ids {
		if e.state(f) == factVar {
			e.rAtom(f)
		}
	}
}

// specialize returns an encoder sharing the frozen base state (atom
// tables, provenance, state function) but writing to an independent clone
// of the ground program, so per-query candidates never touch the cached
// base. Only valid after buildFocused has frozen the atom tables.
func (e *encoder) specialize() *encoder {
	spec := *e
	spec.gp = e.gp.Clone()
	return &spec
}

func sortFactIDs(ids []chase.FactID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func (e *encoder) emit(universe []chase.FactID) {
	// Covered violations and consistency constraints.
	for vi, v := range e.prov.Violations {
		if !e.covered(v.Body) {
			continue
		}
		e.coveredViolations = append(e.coveredViolations, vi)
		var pos []asp.AtomID
		for _, b := range v.Body {
			if e.state(b) == factVar {
				pos = append(pos, e.rAtom(b))
			}
		}
		e.gp.AddConstraint(pos, nil)
	}

	// Derivation rules for derived variable facts.
	var srcVars []chase.FactID
	for _, f := range universe {
		if e.state(f) != factVar {
			continue
		}
		if e.prov.IsSource(f) {
			srcVars = append(srcVars, f)
			continue
		}
		for _, set := range e.prov.Supports(f) {
			if !e.covered(set) {
				continue
			}
			var pos []asp.AtomID
			for _, b := range set {
				if e.state(b) == factVar {
					pos = append(pos, e.rAtom(b))
				}
			}
			if len(pos) == 0 {
				e.gp.AddFact(e.rAtom(f))
			} else {
				e.gp.AddRule([]asp.AtomID{e.rAtom(f)}, pos, nil)
			}
		}
	}

	// Deletable source facts: those in the support closure of some covered
	// violation, traversing covered support sets only (Proposition 3
	// relativized to the sub-world).
	suspect := e.suspectSources()
	for _, f := range srcVars {
		if !suspect[f] {
			// Belongs to every repair of the sub-world.
			e.gp.AddFact(e.rAtom(f))
			continue
		}
		// Choice; maximality is enforced lazily by maximalityAcceptor.
		r, d := e.rAtom(f), e.dAtom(f)
		e.gp.AddRule([]asp.AtomID{r}, nil, []asp.AtomID{d})
		e.gp.AddRule([]asp.AtomID{d}, nil, []asp.AtomID{r})
		e.gp.AddConstraint([]asp.AtomID{r, d}, nil)
		e.deletable = append(e.deletable, f)
	}
}

// covered reports whether every fact of the set is in the universe.
func (e *encoder) covered(set []chase.FactID) bool {
	for _, b := range set {
		if e.state(b) == factAbsent {
			return false
		}
	}
	return true
}

// suspectSources computes the variable source facts lying in the support
// closure of a covered violation, following covered support sets only.
func (e *encoder) suspectSources() map[chase.FactID]bool {
	closure := make(map[chase.FactID]bool)
	var stack []chase.FactID
	push := func(f chase.FactID) {
		if !closure[f] {
			closure[f] = true
			stack = append(stack, f)
		}
	}
	for _, vi := range e.coveredViolations {
		for _, b := range e.prov.Violations[vi].Body {
			push(b)
		}
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, set := range e.prov.Supports(f) {
			if !e.covered(set) {
				continue
			}
			for _, b := range set {
				push(b)
			}
		}
	}
	out := make(map[chase.FactID]bool)
	for f := range closure {
		if e.prov.IsSource(f) && e.state(f) == factVar {
			out[f] = true
		}
	}
	return out
}

// addCandidate wires one candidate answer into the program and returns its
// "remains" atom (true in a stable model iff the answer holds in the
// corresponding XR-solution). It reports whether any support set applies.
func (e *encoder) addCandidate(c *candidate) (asp.AtomID, bool) {
	qa := e.gp.AnonAtom()
	any := false
	for _, set := range c.supports {
		if !e.covered(set) {
			continue
		}
		any = true
		var pos []asp.AtomID
		for _, b := range set {
			if e.state(b) == factVar {
				pos = append(pos, e.rAtom(b))
			}
		}
		if len(pos) == 0 {
			e.gp.AddFact(qa)
		} else {
			e.gp.AddRule([]asp.AtomID{qa}, pos, nil)
		}
	}
	return qa, any
}

// maximalityAcceptor returns the lazy theory check wiring source-repair
// maximality into the solver (Definition 1: no strict consistent superset).
// Given a stable model of the relaxed program (a *consistent* choice of
// deletions), it tests, for every deleted source fact f, whether restoring
// f would realize a covered violation. If some f could be restored
// harmlessly, the model does not correspond to a source repair; the
// acceptor rejects it with the clause
//
//	Rr(f) ∨ ⋁ { Rr(g) : g deleted besides f }
//
// which is sound: if f is deleted and at least as much is kept as in the
// rejected model, restoring f still breaks nothing (derivability is
// monotone), so no repair deletes f together with all of the model's other
// deletions.
func (e *encoder) maximalityAcceptor(s *asp.StableSolver) func(m []bool) [][]asp.Lit {
	return e.acceptorWithIndex(newMaxIndex(e), s, nil)
}

// maxRule is one covered support set in the maximality derivation index.
type maxRule struct {
	head    chase.FactID
	pending int
}

// maxIndex is the static derivation index behind the maximality check:
// covered support sets with pinned facts treated as always present. It
// depends only on the base encoder — never on per-query candidates — so a
// cached signature program builds it once and shares it (read-only) across
// all queries and workers.
type maxIndex struct {
	rules       []maxRule
	watchers    map[chase.FactID][]int32
	seeds       []chase.FactID // derived facts with a fully-pinned set
	pendingInit []int
	allSources  []chase.FactID // variable source facts (seed every fixpoint)
}

// newMaxIndex builds the derivation index, or nil when the encoder has no
// deletable facts (no maximality check needed).
func newMaxIndex(e *encoder) *maxIndex {
	if len(e.deletable) == 0 {
		return nil
	}
	x := &maxIndex{watchers: make(map[chase.FactID][]int32)}
	for f := range e.r {
		if e.prov.IsSource(f) {
			x.allSources = append(x.allSources, f)
			continue
		}
		for _, set := range e.prov.Supports(f) {
			if !e.covered(set) {
				continue
			}
			pending := 0
			for _, b := range set {
				if e.state(b) == factVar {
					pending++
				}
			}
			if pending == 0 {
				x.seeds = append(x.seeds, f)
				continue
			}
			ri := int32(len(x.rules))
			x.rules = append(x.rules, maxRule{head: f, pending: pending})
			for _, b := range set {
				if e.state(b) == factVar {
					x.watchers[b] = append(x.watchers[b], ri)
				}
			}
		}
	}
	x.pendingInit = make([]int, len(x.rules))
	for i, r := range x.rules {
		x.pendingInit[i] = r.pending
	}
	return x
}

// derivableWith computes the facts derivable from the kept source facts
// plus the restored fact, and reports whether a covered violation is
// realized. Read-only on the index; safe for concurrent callers.
func (x *maxIndex) derivableWith(e *encoder, kept map[chase.FactID]bool, restored chase.FactID) bool {
	derived := make(map[chase.FactID]bool, len(kept)+len(x.seeds))
	pending := make([]int, len(x.rules))
	copy(pending, x.pendingInit)
	var queue []chase.FactID
	push := func(f chase.FactID) {
		if !derived[f] {
			derived[f] = true
			queue = append(queue, f)
		}
	}
	for f := range kept {
		push(f)
	}
	push(restored)
	for _, f := range x.seeds {
		push(f)
	}
	for len(queue) > 0 {
		g := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range x.watchers[g] {
			pending[ri]--
			if pending[ri] == 0 {
				push(x.rules[ri].head)
			}
		}
	}
	for _, vi := range e.coveredViolations {
		realized := true
		for _, b := range e.prov.Violations[vi].Body {
			if e.state(b) == factVar && !derived[b] {
				realized = false
				break
			}
		}
		if realized {
			return true
		}
	}
	return false
}

// acceptorWithIndex wires the maximality check onto a solver using a
// prebuilt derivation index (nil index means nothing to check). learn,
// when non-nil, receives each learned clause as positive base atoms so the
// caller can replay it on later solvers over the same base program.
func (e *encoder) acceptorWithIndex(x *maxIndex, s *asp.StableSolver, learn func([]asp.AtomID)) func(m []bool) [][]asp.Lit {
	if x == nil {
		return nil
	}

	// Bias the search toward keeping facts: maximal models first.
	{
		atoms := make([]asp.AtomID, 0, len(e.deletable))
		for _, f := range e.deletable {
			atoms = append(atoms, e.r[f])
		}
		s.PreferTrue(atoms)
	}

	// keptExcept builds the kept-set with exactly the given facts deleted.
	keptExcept := func(deleted map[chase.FactID]bool) map[chase.FactID]bool {
		kept := make(map[chase.FactID]bool, len(x.allSources))
		for _, g := range x.allSources {
			if !deleted[g] {
				kept[g] = true
			}
		}
		return kept
	}

	// Clause minimization is quadratic in the deleted set; past this size
	// the unminimized clause is used (still sound, just weaker).
	const minimizeCap = 24

	return func(m []bool) [][]asp.Lit {
		kept := make(map[chase.FactID]bool)
		var deleted []chase.FactID
		for f, a := range e.r {
			if e.prov.IsSource(f) && m[a] {
				kept[f] = true
			}
		}
		for _, f := range e.deletable {
			if m[e.d[f]] {
				deleted = append(deleted, f)
			}
		}
		var learned [][]asp.Lit
		for _, f := range deleted {
			if s.Canceled() {
				return nil // abandon refinement; the caller is timing out
			}
			if x.derivableWith(e, kept, f) {
				continue // restoring f breaks something: deletion justified
			}
			// The model is not a repair: f could be restored harmlessly.
			// Learn the clause ¬d(f) ∨ ⋁ { r(g) : g ∈ S } for a small
			// support set S of deleted facts. Soundness criterion: the
			// clause is valid iff restoring f is harmless when everything
			// outside S ∪ {f} is kept (derivability is monotone in the kept
			// set, so harmlessness at the maximal kept set implies it for
			// every model the clause fires on). Greedily shrink S from the
			// model's deleted set, which satisfies the criterion by
			// construction.
			sup := make(map[chase.FactID]bool, len(deleted))
			for _, g := range deleted {
				if g != f {
					sup[g] = true
				}
			}
			sup[f] = true // f itself is always out of the kept set here
			if len(deleted) <= minimizeCap {
				for _, g := range deleted {
					if g == f {
						continue
					}
					delete(sup, g)
					if x.derivableWith(e, keptExcept(sup), f) {
						sup[g] = true // g is load-bearing; keep it in the clause
					}
				}
			}
			delete(sup, f)
			atoms := make([]asp.AtomID, 0, len(sup)+1)
			atoms = append(atoms, e.r[f])
			for g := range sup {
				atoms = append(atoms, e.r[g])
			}
			// Sort: sup is a map, and clause literal order steers the
			// solver's watches — sorted clauses keep solver effort (and so
			// the telemetry counters) deterministic run to run, matching
			// the order addLearned stores for replay.
			sort.Slice(atoms, func(i, j int) bool { return atoms[i] < atoms[j] })
			if learn != nil {
				learn(atoms)
			}
			clause := make([]asp.Lit, len(atoms))
			for i, a := range atoms {
				clause[i] = s.AtomLit(a, true)
			}
			learned = append(learned, clause)
		}
		return learned
	}
}
