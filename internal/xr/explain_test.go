package xr

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/explain"
	"repro/internal/faultkit"
	"repro/internal/genome"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/symtab"
	"repro/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden explanation files")

// renderAll renders a result's explanations exactly as the public API does.
func renderAll(cat *schema.Catalog, u *symtab.Universe, ex *Exchange, res *Result) string {
	r := &explain.Renderer{
		FormatFact:  func(f chase.FactID) string { return ex.Prov.Fact(f).String(cat, u) },
		FormatValue: func(v symtab.Value) string { return u.Name(v) },
	}
	return r.RenderAll(res.Explanations)
}

// TestExplainDeterminismConflictFarm: explanation output is byte-identical
// across parallelism levels and across cold and warm signature-cache runs.
func TestExplainDeterminismConflictFarm(t *testing.T) {
	w, q := conflictFarm(6)
	var want string
	for _, par := range []int{1, 4, 8} {
		ex, err := NewExchange(w.m, w.src)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range []string{"cold", "warm"} {
			res, err := ex.AnswerOpts(q, Options{Parallelism: par, Explain: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Explanations) != res.Stats.Candidates {
				t.Fatalf("par %d %s: %d explanations for %d candidates",
					par, pass, len(res.Explanations), res.Stats.Candidates)
			}
			got := renderAll(w.cat, w.u, ex, res)
			if want == "" {
				want = got
			}
			if got != want {
				t.Fatalf("par %d %s cache: explanation output diverged:\n%s\n-- want --\n%s", par, pass, got, want)
			}
		}
	}
	if !strings.Contains(want, string(explain.Rejected)) && !strings.Contains(want, string(explain.Certain)) {
		t.Fatalf("conflict farm produced no solver-decided explanations:\n%s", want)
	}
}

// TestExplainGenomeS3Golden: the rendered explanations of the genome S3
// query suite match the committed golden file, at every parallelism level
// and on both cache paths. Regenerate with -update-golden.
func TestExplainGenomeS3Golden(t *testing.T) {
	world, err := genome.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	queries, err := genome.Queries(world)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := genome.ProfileByName("S3", 0.05)
	if !ok {
		t.Fatal("unknown genome profile S3")
	}
	src := genome.Generate(world, p)

	render := func(par int) string {
		ex, err := NewExchange(world.M, src)
		if err != nil {
			t.Fatal(err)
		}
		var cold, warm strings.Builder
		for _, out := range []*strings.Builder{&cold, &warm} {
			for _, q := range queries {
				res, err := ex.AnswerOpts(q, Options{Parallelism: par, Explain: true})
				if err != nil {
					t.Fatalf("query %s: %v", q.Name, err)
				}
				out.WriteString("== " + q.Name + " ==\n")
				out.WriteString(renderAll(world.Cat, world.U, ex, res))
			}
		}
		if cold.String() != warm.String() {
			t.Fatalf("par %d: warm signature cache changed explanation output", par)
		}
		return cold.String()
	}

	got := render(1)
	for _, par := range []int{4, 8} {
		if other := render(par); other != got {
			t.Fatalf("parallelism %d changed explanation output", par)
		}
	}

	golden := filepath.Join("testdata", "explain_genome_s3.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("explanation output differs from %s (run with -update-golden to refresh)", golden)
	}
}

// TestExplainDegradedCause: a degraded signature's candidate tuples carry
// unknown-verdict explanations with a stable cause token and the retry
// count, for both budget exhaustion and injected panics.
func TestExplainDegradedCause(t *testing.T) {
	t.Run("budget", func(t *testing.T) {
		w, q := conflictFarm(3)
		ex, err := NewExchange(w.m, w.src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ex.AnswerOpts(q, Options{MaxDecisions: 1, Partial: true, Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Degraded) == 0 {
			t.Fatal("one-decision budget did not degrade any signature")
		}
		assertUnknownCause(t, res, "budget", 1)
	})
	t.Run("panic", func(t *testing.T) {
		w, q := conflictFarm(3)
		ex, err := NewExchange(w.m, w.src)
		if err != nil {
			t.Fatal(err)
		}
		inj := faultkit.New(7004, faultkit.Fault{Kind: faultkit.SolvePanic, Rate: 1})
		res, err := ex.AnswerOpts(q, Options{FaultHook: inj.Hook(), Partial: true, Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		if inj.Fired(faultkit.SolvePanic) == 0 {
			t.Fatal("vacuous run: no panic fired")
		}
		if len(res.Degraded) == 0 {
			t.Fatal("injected panics did not degrade any signature")
		}
		assertUnknownCause(t, res, "panic", 0)
	})
}

func assertUnknownCause(t *testing.T, res *Result, cause string, wantRetries int) {
	t.Helper()
	unknown := 0
	for _, e := range res.Explanations {
		if e.Verdict != explain.Unknown {
			continue
		}
		unknown++
		if e.Cause != cause {
			t.Fatalf("unknown explanation for %s carries cause %q, want %q", e.Signature, e.Cause, cause)
		}
		if e.Retries != wantRetries {
			t.Fatalf("unknown explanation for %s reports %d retries, want %d", e.Signature, e.Retries, wantRetries)
		}
		if e.Signature == "" {
			t.Fatal("unknown explanation without a signature key")
		}
	}
	if unknown != res.Stats.UnknownTuples {
		t.Fatalf("%d unknown explanations for %d unknown tuples", unknown, res.Stats.UnknownTuples)
	}
	if unknown == 0 {
		t.Fatal("no unknown explanations on a degraded run")
	}
}

// TestExplainTraceCrossReference: explanations and solver TraceEvents use
// the same signature-key vocabulary, so -explain and -trace output can be
// joined on the key.
func TestExplainTraceCrossReference(t *testing.T) {
	w, q := conflictFarm(4)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	traced := map[string]bool{}
	res, err := ex.AnswerOpts(q, Options{
		Explain: true,
		Trace:   func(ev TraceEvent) { traced[ev.SignatureKey] = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	solved := 0
	for _, e := range res.Explanations {
		if e.Verdict == explain.Safe || e.Verdict == explain.NoSupport || e.Signature == "" {
			continue
		}
		solved++
		if !traced[e.Signature] {
			t.Fatalf("explanation signature %q has no matching TraceEvent (traced: %v)", e.Signature, traced)
		}
	}
	if solved == 0 {
		t.Fatal("no solver-backed explanations to cross-reference")
	}
}

// TestExplainTracerSpans: a query run under a Tracer nests one signature
// span (and, with Explain, one explain span) under the query-phase span.
func TestExplainTracerSpans(t *testing.T) {
	w, q := conflictFarm(4)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer()
	if _, err := ex.AnswerOpts(q, Options{Explain: true, Tracer: tr, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	var queryID telemetry.SpanID
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "query ") {
			queryID = s.ID
		}
	}
	if queryID == telemetry.NoSpan {
		t.Fatal("no query-phase span recorded")
	}
	sig, expl := 0, 0
	for _, s := range spans {
		switch {
		case strings.HasPrefix(s.Name, "signature {"):
			sig++
		case strings.HasPrefix(s.Name, "explain {"):
			expl++
		default:
			continue
		}
		if s.Parent != queryID {
			t.Fatalf("span %q parented to %d, want query span %d", s.Name, s.Parent, queryID)
		}
	}
	if sig == 0 || expl == 0 {
		t.Fatalf("expected signature and explain child spans, got %d/%d", sig, expl)
	}
}

// TestMonolithicTracerSpans: the monolithic engine records one span per
// query program.
func TestMonolithicTracerSpans(t *testing.T) {
	w, q := conflictFarm(2)
	tr := telemetry.NewTracer()
	if _, err := Monolithic(w.m, w.src, []*logic.UCQ{q}, MonolithicOptions{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range tr.Spans() {
		if strings.HasPrefix(s.Name, "query ") && strings.HasSuffix(s.Name, "[monolithic]") {
			found = true
		}
	}
	if !found {
		t.Fatal("no monolithic query span recorded")
	}
}

// TestExplainTupleNotACandidate: ExplainTuple on a tuple with no support
// yields the no-support verdict instead of an error.
func TestExplainTupleNotACandidate(t *testing.T) {
	w, q := conflictFarm(2)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ex.ExplainTuple(q, w.vals("nope", "0"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Verdict != explain.NoSupport {
		t.Fatalf("verdict = %s, want %s", e.Verdict, explain.NoSupport)
	}
}

// TestExplainCanceled: a dead context fails the explanation pass with the
// cancellation sentinel instead of fabricating verdicts.
func TestExplainCanceled(t *testing.T) {
	w, q := conflictFarm(2)
	ex, err := NewExchange(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.AnswerOpts(q, Options{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Explanations {
		if e.Verdict == explain.Unknown {
			t.Fatalf("unbudgeted run produced an unknown verdict: %+v", e)
		}
	}
}

// BenchmarkExplainOverhead measures the query phase with explanations off
// (the default) and on; the off case must show no measurable overhead over
// the pre-explanation engine.
func BenchmarkExplainOverhead(b *testing.B) {
	world, err := genome.NewWorld()
	if err != nil {
		b.Fatal(err)
	}
	queries, err := genome.Queries(world)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := genome.ProfileByName("S3", 0.05)
	src := genome.Generate(world, p)
	for _, mode := range []struct {
		name    string
		explain bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ex, err := NewExchange(world.M, src)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := ex.AnswerOpts(q, Options{Explain: mode.explain}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

