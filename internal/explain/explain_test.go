package explain

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/symtab"
)

func testRenderer(maxFacts int) *Renderer {
	return &Renderer{
		FormatFact:  func(f chase.FactID) string { return "f" + itoa(int(f)) },
		FormatValue: func(v symtab.Value) string { return "v" + itoa(int(v)) },
		MaxFacts:    maxFacts,
	}
}

func TestRenderVerdictWording(t *testing.T) {
	cases := []struct {
		verdict Verdict
		want    string
	}{
		{Safe, "every support avoids all violation clusters"},
		{Certain, "no counterexample repair exists"},
		{Rejected, "a counterexample exchange-repair exists"},
		{Possible, "a supporting exchange-repair exists"},
		{Impossible, "no exchange-repair satisfies the tuple"},
		{NoSupport, "no support in the quasi-solution"},
	}
	r := testRenderer(0)
	for _, tc := range cases {
		got := r.Render(&Explanation{Query: "q", Verdict: tc.verdict})
		if !strings.Contains(got, string(tc.verdict)) || !strings.Contains(got, tc.want) {
			t.Fatalf("%s rendering lacks %q:\n%s", tc.verdict, tc.want, got)
		}
		if !strings.HasSuffix(got, "\n") {
			t.Fatalf("%s rendering not newline-terminated: %q", tc.verdict, got)
		}
	}
}

func TestRenderUnknownCause(t *testing.T) {
	got := testRenderer(0).Render(&Explanation{
		Query: "q", Verdict: Unknown, Signature: "3", Cause: "budget", Retries: 1,
	})
	for _, want := range []string{"cause: budget", "retries: 1", "[signature {3}]"} {
		if !strings.Contains(got, want) {
			t.Fatalf("unknown rendering lacks %q:\n%s", want, got)
		}
	}
}

func TestRenderRejectedFull(t *testing.T) {
	e := &Explanation{
		Query:     "q",
		Tuple:     []symtab.Value{1, 2},
		Verdict:   Rejected,
		Signature: "0",
		Clusters:  []ClusterInfo{{ID: 0, Violations: 1, EnvelopeSize: 2, InfluenceSize: 4}},
		Support:   []chase.FactID{1, 3},
		Witness: &Witness{
			DroppedSource: []chase.FactID{1},
			KeptSuspect:   []chase.FactID{2},
			MissingTarget: []chase.FactID{3},
		},
		ModelsExamined: 2,
	}
	got := testRenderer(0).Render(e)
	for _, want := range []string{
		"q(v1, v2): rejected",
		"[signature {0}; 2 models examined]",
		"clusters: #0 (1 violation, envelope 2, influence 4)",
		"support closure: f1; f3",
		"counterexample repair drops: f1",
		"keeps (suspect): f2",
		"target facts lost: f3",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, got)
		}
	}
	// A possible-verdict witness is a supporting repair, not a counterexample.
	e.Verdict = Possible
	if got := testRenderer(0).Render(e); !strings.Contains(got, "supporting repair drops: f1") {
		t.Fatalf("possible rendering lacks the supporting-repair label:\n%s", got)
	}
}

func TestRenderFactCap(t *testing.T) {
	ids := make([]chase.FactID, 20)
	for i := range ids {
		ids[i] = chase.FactID(i)
	}
	got := testRenderer(4).Render(&Explanation{Query: "q", Verdict: Safe, Support: ids})
	if !strings.Contains(got, "... (+16 more)") {
		t.Fatalf("capped list lacks the truncation marker:\n%s", got)
	}
	if strings.Contains(got, "f4;") {
		t.Fatalf("capped list leaked facts past the cap:\n%s", got)
	}
	// The default cap is 16.
	got = testRenderer(0).Render(&Explanation{Query: "q", Verdict: Safe, Support: ids})
	if !strings.Contains(got, "... (+4 more)") {
		t.Fatalf("default cap is not 16:\n%s", got)
	}
}

func TestRenderAllConcatenates(t *testing.T) {
	r := testRenderer(0)
	a := &Explanation{Query: "q", Verdict: Safe}
	b := &Explanation{Query: "q", Verdict: Certain}
	if got, want := r.RenderAll([]*Explanation{a, b}), r.Render(a)+r.Render(b); got != want {
		t.Fatalf("RenderAll = %q, want %q", got, want)
	}
}

func TestSortFactIDs(t *testing.T) {
	ids := []chase.FactID{5, 1, 3}
	SortFactIDs(ids)
	if ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("SortFactIDs = %v", ids)
	}
}

func TestItoa(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {42, "42"}, {-3, "-3"}, {1234567, "1234567"}} {
		if got := itoa(tc.n); got != tc.want {
			t.Fatalf("itoa(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}
