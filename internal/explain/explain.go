// Package explain defines per-tuple explanations for XR-Certain query
// answering: why a candidate tuple was accepted, rejected, or left unknown
// by the segmentary engine.
//
// The engine (internal/xr) produces Explanation values; this package only
// holds the data model and a deterministic text renderer. The witness
// inside a rejected explanation is a concrete counterexample
// exchange-repair extracted from one stable model of the tuple's signature
// program (see DESIGN.md §13): the source facts it drops, the suspect facts
// it keeps, and the target facts that disappear with the dropped sources.
// Because one stable model of Π_sig corresponds to one repair of the
// signature's sub-world — and disjoint clusters are independent — the
// witness extends to a full source repair whose solution misses the tuple.
//
// Rendering is deterministic: all fact lists are sorted by FactID before
// they reach the renderer, and the renderer itself introduces no
// nondeterminism, so output is byte-identical across runs, parallelism
// levels, and signature-cache states.
package explain

import (
	"sort"
	"strings"

	"repro/internal/chase"
	"repro/internal/symtab"
)

// Verdict classifies one candidate tuple's outcome.
type Verdict string

const (
	// Safe: accepted without solving — some support lies entirely in the
	// safe part, so the tuple holds in every XR-solution (Proposition 3).
	Safe Verdict = "safe"
	// Certain: accepted by the solver — the signature program constrained
	// to refute the tuple has no stable model, i.e. no counterexample
	// repair exists.
	Certain Verdict = "certain"
	// Rejected: a counterexample exchange-repair exists (see Witness).
	Rejected Verdict = "rejected"
	// Possible: brave reasoning — a supporting exchange-repair exists
	// (the Witness is the supporting repair, not a counterexample).
	Possible Verdict = "possible"
	// Impossible: brave reasoning — no exchange-repair satisfies the tuple.
	Impossible Verdict = "impossible"
	// Unknown: the tuple's signature group degraded (budget, timeout, or a
	// contained panic) under partial-results mode; Cause and Retries say why.
	Unknown Verdict = "unknown"
	// NoSupport: the tuple has no support in the quasi-solution at all —
	// it is not a candidate, hence trivially not an XR-certain answer.
	NoSupport Verdict = "no-support"
)

// ClusterInfo summarizes one violation cluster touched by a tuple's
// signature.
type ClusterInfo struct {
	ID            int // cluster index — the digits of the signature key
	Violations    int // violated ground egds in the cluster
	EnvelopeSize  int // source facts in the cluster's repair envelope
	InfluenceSize int // facts in the cluster's influence (target half)
}

// Witness is one concrete exchange-repair extracted from a stable model of
// the signature program. For a Rejected tuple it is a counterexample: a
// repair of the signature's sub-world whose solution does not contain the
// tuple. For a Possible tuple it is a supporting repair. All slices are
// sorted by FactID.
type Witness struct {
	// DroppedSource lists the suspect source facts the repair deletes.
	DroppedSource []chase.FactID
	// KeptSuspect lists the suspect source facts the repair keeps (the safe
	// part is kept by every repair and is not listed).
	KeptSuspect []chase.FactID
	// MissingTarget lists the derived facts of the sub-world that disappear
	// from the repair's solution once the dropped sources are gone.
	MissingTarget []chase.FactID
}

// Explanation is the full account of one candidate tuple's outcome.
type Explanation struct {
	Query   string
	Tuple   []symtab.Value
	Verdict Verdict
	// Signature is the canonical cluster-signature key ("2,7"); it matches
	// TraceEvent.SignatureKey and SignatureError.Signature, so -explain
	// output and -trace lines cross-reference by the same vocabulary.
	// Empty for tuples that never reached a signature program.
	Signature string
	Clusters  []ClusterInfo
	// Support is the support closure of the tuple's candidate supports:
	// every fact (source and derived) grounding the tuple in the
	// quasi-solution, sorted by FactID.
	Support []chase.FactID
	// Witness is set for Rejected and Possible verdicts.
	Witness *Witness
	// ModelsExamined counts the classical models tested for stability while
	// searching for the witness (0 for Safe/Unknown/NoSupport).
	ModelsExamined int
	// Cause classifies an Unknown verdict: "budget", "timeout", "panic",
	// "canceled", or "error". Deliberately a stable token, not the raw
	// error text (panic stacks are nondeterministic).
	Cause string
	// Retries counts the budget-doubling retries spent before degrading.
	Retries int
}

// Renderer turns explanations into deterministic text. FormatFact and
// FormatValue supply the symbol tables (the engine layer has them; this
// package does not).
type Renderer struct {
	FormatFact  func(chase.FactID) string
	FormatValue func(symtab.Value) string
	// MaxFacts caps each rendered fact list; 0 means the default (16).
	// Truncated lists end with "... (+N more)". The cap keeps genome-scale
	// explanations readable; the Explanation value itself is never truncated.
	MaxFacts int
}

func (r *Renderer) maxFacts() int {
	if r.MaxFacts > 0 {
		return r.MaxFacts
	}
	return 16
}

func (r *Renderer) tuple(e *Explanation) string {
	parts := make([]string, len(e.Tuple))
	for i, v := range e.Tuple {
		parts[i] = r.FormatValue(v)
	}
	return e.Query + "(" + strings.Join(parts, ", ") + ")"
}

func (r *Renderer) facts(ids []chase.FactID) string {
	n := len(ids)
	shown := n
	if shown > r.maxFacts() {
		shown = r.maxFacts()
	}
	parts := make([]string, 0, shown+1)
	for _, f := range ids[:shown] {
		parts = append(parts, r.FormatFact(f))
	}
	if n > shown {
		parts = append(parts, "... (+"+itoa(n-shown)+" more)")
	}
	return strings.Join(parts, "; ")
}

// Render produces the explanation's text block (multi-line, trailing
// newline). Output is a pure function of the Explanation value.
func (r *Renderer) Render(e *Explanation) string {
	var b strings.Builder
	b.WriteString(r.tuple(e))
	b.WriteString(": ")
	b.WriteString(string(e.Verdict))
	switch e.Verdict {
	case Safe:
		b.WriteString(" — every support avoids all violation clusters; the tuple holds in every XR-solution")
	case Certain:
		b.WriteString(" — no counterexample repair exists")
	case Rejected:
		b.WriteString(" — a counterexample exchange-repair exists")
	case Possible:
		b.WriteString(" — a supporting exchange-repair exists")
	case Impossible:
		b.WriteString(" — no exchange-repair satisfies the tuple")
	case Unknown:
		b.WriteString(" — signature undecided (cause: ")
		b.WriteString(e.Cause)
		b.WriteString(", retries: ")
		b.WriteString(itoa(e.Retries))
		b.WriteString(")")
	case NoSupport:
		b.WriteString(" — no support in the quasi-solution; not a candidate answer")
	}
	if e.Signature != "" {
		b.WriteString(" [signature {")
		b.WriteString(e.Signature)
		b.WriteString("}")
		if e.ModelsExamined > 0 {
			b.WriteString("; ")
			b.WriteString(itoa(e.ModelsExamined))
			b.WriteString(" model")
			if e.ModelsExamined != 1 {
				b.WriteString("s")
			}
			b.WriteString(" examined")
		}
		b.WriteString("]")
	}
	b.WriteString("\n")
	if len(e.Clusters) > 0 {
		b.WriteString("  clusters:")
		for _, c := range e.Clusters {
			b.WriteString(" #")
			b.WriteString(itoa(c.ID))
			b.WriteString(" (")
			b.WriteString(itoa(c.Violations))
			b.WriteString(" violation")
			if c.Violations != 1 {
				b.WriteString("s")
			}
			b.WriteString(", envelope ")
			b.WriteString(itoa(c.EnvelopeSize))
			b.WriteString(", influence ")
			b.WriteString(itoa(c.InfluenceSize))
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	if len(e.Support) > 0 {
		b.WriteString("  support closure: ")
		b.WriteString(r.facts(e.Support))
		b.WriteString("\n")
	}
	if w := e.Witness; w != nil {
		label := "counterexample repair"
		if e.Verdict == Possible {
			label = "supporting repair"
		}
		if len(w.DroppedSource) > 0 {
			b.WriteString("  ")
			b.WriteString(label)
			b.WriteString(" drops: ")
			b.WriteString(r.facts(w.DroppedSource))
			b.WriteString("\n")
		}
		if len(w.KeptSuspect) > 0 {
			b.WriteString("  keeps (suspect): ")
			b.WriteString(r.facts(w.KeptSuspect))
			b.WriteString("\n")
		}
		if len(w.MissingTarget) > 0 {
			b.WriteString("  target facts lost: ")
			b.WriteString(r.facts(w.MissingTarget))
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RenderAll renders a batch in order, separated by nothing (each block is
// newline-terminated already).
func (r *Renderer) RenderAll(es []*Explanation) string {
	var b strings.Builder
	for _, e := range es {
		b.WriteString(r.Render(e))
	}
	return b.String()
}

// SortFactIDs sorts a fact-id slice ascending (the canonical order for
// every list in an Explanation).
func SortFactIDs(ids []chase.FactID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
