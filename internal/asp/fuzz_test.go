package asp

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to ParseProgram: it must either return a
// parse error or a program, never panic or hang. Accepted programs must
// re-parse after a format round trip is not required (there is no
// formatter); instead we require grounding-safety validation to be the
// only later failure mode.
func FuzzParse(f *testing.F) {
	f.Add("a | b. c :- a. c :- b.")
	f.Add("node(v1). edge(v1, v2).")
	f.Add("col(X,r) | col(X,g) :- node(X).")
	f.Add(":- edge(X,Y), col(X,C), col(Y,C).")
	f.Add("reach(Y) :- reach(X), edge(X,Y), not cut(X, Y), X != Y.")
	f.Add("p(_0). q :- p(X), X != a.")
	f.Add("% comment only")
	f.Add("a :- not b. b :- not a.")
	f.Add(".")
	f.Add("p(")
	f.Add("p(X) :- ")
	f.Add("p :- q, .")
	f.Add("Ü(x).")
	f.Add("üpred(X) :- üpred(X).")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1024 {
			return // bound parse cost; long inputs add no new shapes
		}
		prog, err := ParseProgram(text)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("nil program without error")
		}
	})
}

// FuzzGround parses and grounds arbitrary programs: Ground must return an
// error (unsafe rule) or a ground program, never panic. The candidate
// space of the grounder's fixpoint is consts^vars per rule, so inputs that
// could explode are skipped rather than ground.
func FuzzGround(f *testing.F) {
	f.Add("a | b. c :- a. c :- b.")
	f.Add("p(a). p(b). q(X) :- p(X).")
	f.Add("e(a,b). e(b,c). r(X,Y) :- e(X,Y). r(X,Z) :- r(X,Y), e(Y,Z).")
	f.Add("p(X) :- q(X). % unsafe: q never derivable")
	f.Add("bad(X) :- not gone(X).")
	f.Add("p(a). q(X, Y) :- p(X), p(Y), X != Y.")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 512 {
			return
		}
		prog, err := ParseProgram(text)
		if err != nil {
			return
		}
		if explosive(prog) {
			return
		}
		gp, err := prog.Ground()
		if err != nil {
			return
		}
		if gp == nil {
			t.Fatal("nil ground program without error")
		}
		// A tiny solve smoke on the accepted programs: the solver must not
		// panic either. Bound effort so pathological programs stay cheap.
		if gp.NumAtoms() > 0 && gp.NumAtoms() <= 64 && len(gp.Rules) <= 128 {
			s := NewStableSolver(gp)
			s.SetBudget(10_000, 10_000)
			s.NextStable()
		}
	})
}

// explosive estimates the grounder's candidate space: the number of
// constants raised to the per-rule variable count, summed over rules. A
// budget of 1e6 keeps each fuzz execution well under a second.
func explosive(prog *SymProgram) bool {
	consts := map[string]bool{}
	add := func(atoms []SymAtom) {
		for _, a := range atoms {
			for _, t := range a.Args {
				if t.Var == "" {
					consts[t.Const] = true
				}
			}
		}
	}
	add(prog.Facts)
	for _, r := range prog.Rules {
		add(r.Head)
		add(r.Pos)
		add(r.Neg)
	}
	nc := float64(len(consts))
	if nc < 2 {
		nc = 2
	}
	total := 0.0
	for _, r := range prog.Rules {
		vars := map[string]bool{}
		collect := func(atoms []SymAtom) {
			for _, a := range atoms {
				for _, t := range a.Args {
					if t.Var != "" {
						vars[t.Var] = true
					}
				}
			}
		}
		collect(r.Head)
		collect(r.Pos)
		collect(r.Neg)
		space := 1.0
		for range vars {
			space *= nc
			if space > 1e6 {
				return true
			}
		}
		total += space
		if total > 1e6 {
			return true
		}
	}
	return false
}

// TestFuzzCorpusSmoke runs the seed corpus shapes through the fuzz bodies
// once under plain `go test` (the fuzz engine only runs seeds by default,
// but being explicit keeps the guard logic covered even with -run filters).
func TestFuzzCorpusSmoke(t *testing.T) {
	for _, text := range []string{
		"a | b. c :- a. c :- b.",
		"p(a). p(b). q(X) :- p(X).",
		"p(", "Ü(x).", strings.Repeat("p(a). ", 100),
	} {
		prog, err := ParseProgram(text)
		if err != nil {
			continue
		}
		if !explosive(prog) {
			prog.Ground()
		}
	}
}
