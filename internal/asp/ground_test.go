package asp

import (
	"testing"
)

func TestGroundSimpleDatalog(t *testing.T) {
	sp := &SymProgram{}
	sp.AddFact("edge", "a", "b")
	sp.AddFact("edge", "b", "c")
	// path(X,Y) :- edge(X,Y).  path(X,Z) :- path(X,Y), edge(Y,Z).
	sp.AddRule(SymRule{
		Head: []SymAtom{SA("path", SV("X"), SV("Y"))},
		Pos:  []SymAtom{SA("edge", SV("X"), SV("Y"))},
	})
	sp.AddRule(SymRule{
		Head: []SymAtom{SA("path", SV("X"), SV("Z"))},
		Pos:  []SymAtom{SA("path", SV("X"), SV("Y")), SA("edge", SV("Y"), SV("Z"))},
	})
	gp, err := sp.Ground()
	if err != nil {
		t.Fatal(err)
	}
	s := NewStableSolver(gp)
	m := s.NextStable()
	if m == nil {
		t.Fatal("no stable model")
	}
	ac, ok := gp.LookupAtom("path(a,c)")
	if !ok || !m[ac] {
		t.Fatal("path(a,c) not derived")
	}
	if s.NumTrue(m) != 5 { // 2 edges + 3 paths
		t.Fatalf("model size = %d, want 5", s.NumTrue(m))
	}
}

func TestGroundNegationSimplification(t *testing.T) {
	sp := &SymProgram{}
	sp.AddFact("p", "a")
	// q(X) :- p(X), not r(X).   r never derivable -> literal dropped.
	sp.AddRule(SymRule{
		Head: []SymAtom{SA("q", SV("X"))},
		Pos:  []SymAtom{SA("p", SV("X"))},
		Neg:  []SymAtom{SA("r", SV("X"))},
	})
	gp, err := sp.Ground()
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Rules) != 1 || len(gp.Rules[0].Neg) != 0 {
		t.Fatalf("negative literal not simplified: %s", gp.String())
	}
	s := NewStableSolver(gp)
	m := s.NextStable()
	qa, _ := gp.LookupAtom("q(a)")
	if m == nil || !m[qa] {
		t.Fatal("q(a) not derived")
	}
}

func TestGroundInequality(t *testing.T) {
	sp := &SymProgram{}
	sp.AddFact("p", "a")
	sp.AddFact("p", "b")
	// conflict(X,Y) :- p(X), p(Y), X != Y.
	sp.AddRule(SymRule{
		Head: []SymAtom{SA("conflict", SV("X"), SV("Y"))},
		Pos:  []SymAtom{SA("p", SV("X")), SA("p", SV("Y"))},
		Neq:  [][2]SymTerm{{SV("X"), SV("Y")}},
	})
	gp, err := sp.Ground()
	if err != nil {
		t.Fatal(err)
	}
	s := NewStableSolver(gp)
	m := s.NextStable()
	ab, okAB := gp.LookupAtom("conflict(a,b)")
	if !okAB || !m[ab] {
		t.Fatal("conflict(a,b) missing")
	}
	if _, okAA := gp.LookupAtom("conflict(a,a)"); okAA {
		t.Fatal("conflict(a,a) grounded despite inequality")
	}
}

func TestGroundUnsafeRule(t *testing.T) {
	sp := &SymProgram{}
	sp.AddRule(SymRule{Head: []SymAtom{SA("q", SV("X"))}})
	if _, err := sp.Ground(); err == nil {
		t.Fatal("unsafe rule accepted")
	}
	sp2 := &SymProgram{}
	sp2.AddFact("p", "a")
	sp2.AddRule(SymRule{
		Head: []SymAtom{SA("q", SV("X"))},
		Pos:  []SymAtom{SA("p", SV("X"))},
		Neg:  []SymAtom{SA("r", SV("Y"))},
	})
	if _, err := sp2.Ground(); err == nil {
		t.Fatal("unsafe negative literal accepted")
	}
}

func TestGroundThreeColoring(t *testing.T) {
	// Classic: 3-color a triangle plus a pendant vertex.
	sp := &SymProgram{}
	for _, e := range [][2]string{{"v1", "v2"}, {"v2", "v3"}, {"v1", "v3"}, {"v3", "v4"}} {
		sp.AddFact("edge", e[0], e[1])
	}
	for _, v := range []string{"v1", "v2", "v3", "v4"} {
		sp.AddFact("node", v)
	}
	// col(X,r) | col(X,g) | col(X,b) :- node(X).
	sp.AddRule(SymRule{
		Head: []SymAtom{
			SA("col", SV("X"), SC("r")),
			SA("col", SV("X"), SC("g")),
			SA("col", SV("X"), SC("b")),
		},
		Pos: []SymAtom{SA("node", SV("X"))},
	})
	// :- edge(X,Y), col(X,C), col(Y,C).
	sp.AddRule(SymRule{
		Pos: []SymAtom{SA("edge", SV("X"), SV("Y")), SA("col", SV("X"), SV("C")), SA("col", SV("Y"), SV("C"))},
	})
	gp, err := sp.Ground()
	if err != nil {
		t.Fatal(err)
	}
	s := NewStableSolver(gp)
	count := s.Enumerate(func(m []bool) bool { return true })
	// Triangle: 3! = 6 colorings; pendant vertex: 2 choices each → 12.
	if count != 12 {
		t.Fatalf("3-coloring models = %d, want 12", count)
	}
}

func TestGroundThreeColoringUnsat(t *testing.T) {
	// K4 is not 3-colorable.
	sp := &SymProgram{}
	vs := []string{"v1", "v2", "v3", "v4"}
	for i := range vs {
		sp.AddFact("node", vs[i])
		for j := i + 1; j < len(vs); j++ {
			sp.AddFact("edge", vs[i], vs[j])
		}
	}
	sp.AddRule(SymRule{
		Head: []SymAtom{
			SA("col", SV("X"), SC("r")),
			SA("col", SV("X"), SC("g")),
			SA("col", SV("X"), SC("b")),
		},
		Pos: []SymAtom{SA("node", SV("X"))},
	})
	sp.AddRule(SymRule{
		Pos: []SymAtom{SA("edge", SV("X"), SV("Y")), SA("col", SV("X"), SV("C")), SA("col", SV("Y"), SV("C"))},
	})
	gp, err := sp.Ground()
	if err != nil {
		t.Fatal(err)
	}
	s := NewStableSolver(gp)
	if s.HasStableModel() {
		t.Fatal("K4 3-colored")
	}
}

func TestGroundAtomDisplay(t *testing.T) {
	if got := groundAtomName("p", nil); got != "p" {
		t.Fatalf("nullary atom = %q", got)
	}
	if got := SA("p", SV("X"), SC("a")).String(); got != "p(X,a)" {
		t.Fatalf("symbolic atom = %q", got)
	}
}
