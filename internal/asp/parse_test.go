package asp

import (
	"strings"
	"testing"
)

func TestParseProgramFactsAndRules(t *testing.T) {
	prog, err := ParseProgram(`
% a comment
node(v1). node(v2). edge(v1, v2).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 3 || len(prog.Rules) != 2 {
		t.Fatalf("facts=%d rules=%d", len(prog.Facts), len(prog.Rules))
	}
	gp, err := prog.Ground()
	if err != nil {
		t.Fatal(err)
	}
	s := NewStableSolver(gp)
	m := s.NextStable()
	if m == nil {
		t.Fatal("no model")
	}
	id, ok := gp.LookupAtom("path(v1,v2)")
	if !ok || !m[id] {
		t.Fatal("path(v1,v2) not derived")
	}
}

func TestParseProgramDisjunctionAndConstraint(t *testing.T) {
	prog, err := ParseProgram(`
item(a). item(b).
in(X) | out(X) :- item(X).
:- in(a), in(b).
`)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := prog.Ground()
	if err != nil {
		t.Fatal(err)
	}
	n := NewStableSolver(gp).Enumerate(func([]bool) bool { return true })
	// 4 combinations minus the forbidden in(a)&in(b) = 3.
	if n != 3 {
		t.Fatalf("models = %d, want 3", n)
	}
}

func TestParseProgramNegationAndInequality(t *testing.T) {
	prog, err := ParseProgram(`
p(a). p(b).
q(X) :- p(X), not blocked(X).
blocked(a).
diff(X, Y) :- p(X), p(Y), X != Y.
`)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := prog.Ground()
	if err != nil {
		t.Fatal(err)
	}
	s := NewStableSolver(gp)
	m := s.NextStable()
	qa, _ := gp.LookupAtom("q(a)")
	qb, okQB := gp.LookupAtom("q(b)")
	if m[qa] || !okQB || !m[qb] {
		t.Fatal("negation handled wrong")
	}
	if _, ok := gp.LookupAtom("diff(a,a)"); ok {
		t.Fatal("inequality not applied")
	}
	if ab, ok := gp.LookupAtom("diff(a,b)"); !ok || !m[ab] {
		t.Fatal("diff(a,b) missing")
	}
}

func TestParseProgramSemicolonDisjunction(t *testing.T) {
	prog, err := ParseProgram(`a ; b.`)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := prog.Ground()
	if err != nil {
		t.Fatal(err)
	}
	if n := NewStableSolver(gp).Enumerate(func([]bool) bool { return true }); n != 2 {
		t.Fatalf("models = %d", n)
	}
}

func TestParseProgramErrors(t *testing.T) {
	cases := []string{
		`p(a)`,            // missing dot
		`P(a).`,           // uppercase predicate
		`p(a,.`,           // bad term
		`:- .`,            // empty constraint body... parses atom -> error
		`p(X) :- q(X,.`,   // malformed body
		`p(a). q(b) :- .`, // empty body after :-
	}
	for _, src := range cases {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseProgramNotKeywordBoundary(t *testing.T) {
	// "nothing" must parse as a predicate, not "not hing".
	prog, err := ParseProgram(`
nothing(a).
p(X) :- nothing(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := prog.Ground()
	if err != nil {
		t.Fatal(err)
	}
	s := NewStableSolver(gp)
	m := s.NextStable()
	pa, ok := gp.LookupAtom("p(a)")
	if !ok || !m[pa] {
		t.Fatal("keyword boundary broken")
	}
}

func TestFormatModel(t *testing.T) {
	prog, _ := ParseProgram(`b. a. c :- a, b.`)
	gp, _ := prog.Ground()
	s := NewStableSolver(gp)
	m := s.NextStable()
	out := FormatModel(gp, m)
	if out != "a b c" {
		t.Fatalf("FormatModel = %q", out)
	}
	if !strings.Contains(gp.String(), "c :- a, b.") {
		t.Fatalf("program rendering:\n%s", gp.String())
	}
}

func TestParseNonGroundHeadFact(t *testing.T) {
	// A body-free rule with variables is unsafe and must be rejected at
	// grounding time.
	prog, err := ParseProgram(`p(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Ground(); err == nil {
		t.Fatal("unsafe variable fact accepted by grounder")
	}
}
