package asp

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func lit(x int) Lit {
	if x > 0 {
		return PosLit(Var(x))
	}
	return NegLit(Var(-x))
}

func newSolverWithVars(n int) *Solver {
	s := NewSolver()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return s
}

func TestLitEncoding(t *testing.T) {
	l := PosLit(3)
	if l.Var() != 3 || l.Sign() {
		t.Fatalf("pos lit wrong: %v %v", l.Var(), l.Sign())
	}
	n := l.Neg()
	if n.Var() != 3 || !n.Sign() || n.Neg() != l {
		t.Fatal("negation wrong")
	}
	if NegLit(5).String() != "-5" || PosLit(5).String() != "5" {
		t.Fatal("string rendering wrong")
	}
}

func TestSolveTrivial(t *testing.T) {
	s := newSolverWithVars(2)
	s.AddClause(lit(1))
	s.AddClause(lit(-2))
	if !s.Solve() {
		t.Fatal("UNSAT on satisfiable instance")
	}
	if !s.ModelValue(1) || s.ModelValue(2) {
		t.Fatal("model wrong")
	}
}

func TestSolveUnsat(t *testing.T) {
	s := newSolverWithVars(1)
	s.AddClause(lit(1))
	if s.AddClause(lit(-1)) {
		t.Fatal("adding contradicting unit should report false")
	}
	if s.Solve() {
		t.Fatal("SAT on unsatisfiable instance")
	}
}

func TestSolvePigeonhole3x2(t *testing.T) {
	// 3 pigeons, 2 holes: UNSAT. Var p*2+h+1 means pigeon p in hole h.
	s := newSolverWithVars(6)
	v := func(p, h int) int { return p*2 + h + 1 }
	for p := 0; p < 3; p++ {
		s.AddClause(lit(v(p, 0)), lit(v(p, 1)))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				s.AddClause(lit(-v(p1, h)), lit(-v(p2, h)))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole 3x2 reported SAT")
	}
}

func TestSolveWithAssumptions(t *testing.T) {
	s := newSolverWithVars(3)
	s.AddClause(lit(1), lit(2))
	s.AddClause(lit(-1), lit(3))
	if !s.Solve(lit(-2)) {
		t.Fatal("UNSAT under assumption -2")
	}
	if !s.ModelValue(1) || !s.ModelValue(3) {
		t.Fatal("model under assumptions wrong")
	}
	// Incremental: same solver, different assumptions.
	if !s.Solve(lit(-1)) {
		t.Fatal("UNSAT under assumption -1")
	}
	if !s.ModelValue(2) {
		t.Fatal("model wrong")
	}
	// Contradictory assumptions.
	s.AddClause(lit(-2), lit(-3))
	if s.Solve(lit(2), lit(3)) {
		t.Fatal("SAT under contradictory assumptions")
	}
	// Solver still usable afterwards.
	if !s.Solve() {
		t.Fatal("solver unusable after assumption UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := newSolverWithVars(2)
	if !s.AddClause(lit(1), lit(-1)) {
		t.Fatal("tautology rejected")
	}
	if !s.AddClause(lit(2), lit(2)) {
		t.Fatal("duplicate-literal clause rejected")
	}
	if !s.Solve() || !s.ModelValue(2) {
		t.Fatal("dedup handling wrong")
	}
}

// bruteForceSAT checks satisfiability by enumeration.
func bruteForceSAT(nVars int, clauses [][]int) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, x := range c {
				v := x
				if v < 0 {
					v = -v
				}
				val := m&(1<<(v-1)) != 0
				if (x > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(8) // 3..10
		nClauses := 1 + rng.Intn(40)
		clauses := make([][]int, nClauses)
		s := newSolverWithVars(nVars)
		addOK := true
		for i := range clauses {
			k := 1 + rng.Intn(3)
			c := make([]int, k)
			lits := make([]Lit, k)
			for j := 0; j < k; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
				lits[j] = lit(v)
			}
			clauses[i] = c
			if !s.AddClause(lits...) {
				addOK = false
			}
		}
		want := bruteForceSAT(nVars, clauses)
		got := addOK && s.Solve()
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v clauses=%v", trial, got, want, clauses)
		}
		if got {
			// Verify the model actually satisfies the clauses.
			for _, c := range clauses {
				sat := false
				for _, x := range c {
					v := Var(x)
					if x < 0 {
						v = Var(-x)
					}
					if (x > 0) == s.ModelValue(v) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy %v", trial, c)
				}
			}
		}
	}
}

func TestPhaseBiasFalseFirst(t *testing.T) {
	// With no constraints, the default false-first phase should produce the
	// all-false model.
	s := newSolverWithVars(5)
	s.AddClause(lit(1), lit(2), lit(3), lit(4), lit(5))
	if !s.Solve() {
		t.Fatal("UNSAT")
	}
	trues := 0
	for v := 1; v <= 5; v++ {
		if s.ModelValue(Var(v)) {
			trues++
		}
	}
	if trues != 1 {
		t.Fatalf("false-first phase produced %d true vars, want 1", trues)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestLargerChain(t *testing.T) {
	// Implication chain 1 -> 2 -> ... -> n with unit 1 forces all true.
	const n = 2000
	s := newSolverWithVars(n)
	for i := 1; i < n; i++ {
		s.AddClause(lit(-i), lit(i+1))
	}
	s.AddClause(lit(1))
	if !s.Solve() {
		t.Fatal("UNSAT")
	}
	for i := 1; i <= n; i++ {
		if !s.ModelValue(Var(i)) {
			t.Fatalf("var %d false in chain model", i)
		}
	}
}

func TestRandomHard3SAT(t *testing.T) {
	// Near the phase-transition ratio (4.26 clauses/var) CDCL must still
	// decide instances; verify models when SAT.
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 10; trial++ {
		nVars := 60
		nClauses := int(4.26 * float64(nVars))
		s := newSolverWithVars(nVars)
		clauses := make([][]int, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			c := make([]int, 3)
			lits := make([]Lit, 3)
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
				lits[j] = lit(v)
			}
			clauses = append(clauses, c)
			s.AddClause(lits...)
		}
		if !s.Solve() {
			continue // UNSAT is fine; nothing to verify
		}
		for _, c := range clauses {
			sat := false
			for _, x := range c {
				v := Var(x)
				if x < 0 {
					v = Var(-x)
				}
				if (x > 0) == s.ModelValue(v) {
					sat = true
					break
				}
			}
			if !sat {
				t.Fatalf("trial %d: model violates clause %v", trial, c)
			}
		}
	}
}

func TestSolverCancellation(t *testing.T) {
	// A cancelled solver returns false promptly and reports Canceled.
	s := newSolverWithVars(40)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 170; i++ {
		var lits []Lit
		for j := 0; j < 3; j++ {
			v := 1 + rng.Intn(40)
			if rng.Intn(2) == 0 {
				v = -v
			}
			lits = append(lits, lit(v))
		}
		s.AddClause(lits...)
	}
	var flag atomic.Bool
	flag.Store(true)
	s.SetCancel(&flag)
	if s.Solve() {
		// A solve may still succeed if it finds a model before the first
		// cancellation check; that is acceptable behaviour.
		t.Log("solve finished before cancellation check")
	}
	if !s.Canceled() {
		t.Fatal("Canceled() = false with flag set")
	}
}
