package asp

import (
	"context"
	"sync/atomic"
)

// This file implements the stable-model semantics on top of the CDCL core,
// in the generate-and-test lineage of GnT / claspD:
//
//  1. The program's rules are translated to clauses; classical models of
//     the clauses over-approximate stable models. Support (completion)
//     clauses are added: every stable model is *supported* — each true atom
//     needs a rule with a true body whose head contains it.
//
//  2. Normal programs (every head a single atom — the common case for the
//     repair encodings) take a polynomial verification path: a candidate
//     model m is stable iff m = lfp(reduct^m). Because the reduct is a
//     function of m's values on the negatively-occurring atoms only, a
//     failed candidate either *repairs itself* (the fixpoint f agrees with
//     m on those atoms, in which case f is itself stable and is returned)
//     or rules out its entire negative signature, which is learned as a
//     clause; per-SCC loop formulas over the unfounded set m \ f are
//     learned as well (Lin & Zhao), so positive cycles are pruned by unit
//     propagation in later candidates.
//
//  3. Disjunctive programs use the generic path: candidates are shrunk to
//     minimal classical models (every stable model of a DLP is one), then
//     checked for reduct-minimality with a secondary SAT call (the check is
//     coNP-hard in general). Failures learn the disjunctive loop formula of
//     the unfounded set (Lee & Lifschitz) plus the all-negative blocking
//     clause ∨_{a∈M} ¬a, which removes only M and its supersets — no
//     stable model is lost since stable models are minimal models.
//
//  4. An optional Acceptor implements lazy theory checking (used by the
//     repair pipelines for source-repair maximality): verified stable
//     models may be rejected with learned clauses before being returned.
//
// The blocking and candidate-narrowing clauses used by Cautious are
// all-negative (closed under subsets), keeping the minimization of the
// disjunctive path sound throughout; Brave's progress clauses are positive
// but the disjunctive path's completeness argument only needs blocked
// models to be classical models, which holds regardless.

// StableSolver answers stable-model queries about one ground program.
type StableSolver struct {
	prog *GroundProgram
	sat  *Solver
	vars []Var // atom -> sat var

	headRules [][]int32 // atom -> indexes of rules with the atom in head
	bodyAux   []Var     // rule -> aux var implying the body (0 = none yet)

	// normal is true when every rule has at most one head atom. For normal
	// programs the stability check is polynomial — M is stable iff
	// M = lfp(reduct^M) — so candidate models are verified with a linear
	// fixpoint instead of minimization plus a secondary SAT call.
	normal bool
	// negAtoms lists the atoms occurring in some negative body; the reduct
	// (and hence the unique stable-model candidate) is a function of a
	// model's values on exactly these atoms. negSeen mirrors it as a set so
	// Extend can keep it deduplicated across program growth.
	negAtoms []AtomID
	negSeen  map[AtomID]bool

	// isFact / nFacts track which atoms were asserted as facts and how many
	// fact entries have been translated, so Extend can pick up program
	// growth (new atoms, rules, and facts) incrementally.
	isFact []bool
	nFacts int

	// assumps holds solver-lifetime assumptions (SetAssumptions): they are
	// threaded into every candidate search, and any blocking clause that is
	// only sound relative to them is added permanently — which is why they
	// are reserved for one-shot solvers (cmd/aspsolve). Incremental callers
	// use Sessions instead.
	assumps []AtomAssumption

	// retired counts closed sessions since the last Simplify; every few
	// closures the satisfied (deactivated) session clauses are reclaimed.
	retired int

	// Acceptor, when set, implements lazy theory checking: each stable
	// model is passed to it before being returned. A nil result accepts the
	// model; a non-empty result rejects it and adds the returned clauses
	// (which must exclude the rejected model, and must be sound — never
	// excluding an acceptable model). Build literals with AtomLit.
	Acceptor func(m []bool) [][]Lit

	// Stats
	CandidatesTested int
	StabilityFails   int
	LoopsLearned     int
	TheoryRejects    int
}

// SetCancel installs a cooperative cancellation flag on the underlying SAT
// solver; when set, in-flight stable-model searches return promptly with
// "no model" (check Canceled).
func (s *StableSolver) SetCancel(flag *atomic.Bool) { s.sat.SetCancel(flag) }

// SetContext installs a context on the underlying SAT solver; once it is
// done, in-flight stable-model searches return promptly with "no model"
// (check Canceled to tell cancellation apart from exhaustion).
func (s *StableSolver) SetContext(ctx context.Context) { s.sat.SetContext(ctx) }

// Canceled reports whether the cancellation flag is set.
func (s *StableSolver) Canceled() bool { return s.sat.Canceled() }

// SetBudget installs decision/conflict effort limits (0 = unlimited) on the
// underlying SAT solver; see Solver.SetBudget. The budget covers the whole
// stable-model session (all candidate searches of an Enumerate, Cautious,
// or Brave call), not one SAT search. When the budget runs out mid-session
// the session ends early with "no more models"; callers must check
// Exhausted and discard the partial result (Cautious's narrowing, for
// example, over-approximates when cut short).
func (s *StableSolver) SetBudget(maxDecisions, maxConflicts int64) {
	s.sat.SetBudget(maxDecisions, maxConflicts)
}

// Exhausted reports whether the SetBudget limit was reached (sticky).
func (s *StableSolver) Exhausted() bool { return s.sat.Exhausted() }

// AddTheoryClause adds a clause over program atoms (built with AtomLit) to
// the solver before or between searches. The clause must be sound for the
// caller's theory — it must never exclude a model the caller would accept.
// Used to replay clauses learned by an Acceptor in an earlier solver over
// the same program.
func (s *StableSolver) AddTheoryClause(clause []Lit) { s.sat.AddClause(clause...) }

// AtomLit returns the solver literal for an atom, for use in Acceptor
// clauses.
func (s *StableSolver) AtomLit(a AtomID, positive bool) Lit {
	if positive {
		return PosLit(s.vars[a])
	}
	return NegLit(s.vars[a])
}

// maxLoopFormulaSize bounds the work spent learning one loop formula.
const maxLoopFormulaSize = 100_000

// NewStableSolver translates prog into clauses (rule clauses plus support
// clauses). The returned solver accumulates blocking clauses; enumeration
// and cautious calls consume it.
func NewStableSolver(prog *GroundProgram) *StableSolver {
	s := &StableSolver{prog: prog, sat: NewSolver(), normal: true, negSeen: make(map[AtomID]bool)}
	s.extend(0, 0)
	return s
}

// Extend incorporates program growth into a live solver: atoms, rules,
// and facts appended to the ground program since the last build are
// translated (fresh SAT vars, rule clauses, fact units, and support
// clauses for the new atoms). New rules must head only new atoms — an
// old atom's support clause is already frozen, so giving it a new rule
// would silently lose the completion direction. This is what lets a
// persistent per-signature solver take on additional candidate atoms
// without being rebuilt.
func (s *StableSolver) Extend() {
	if s.sat.decisionLevel() != 0 {
		panic("asp: Extend while not at decision level 0")
	}
	s.extend(len(s.vars), len(s.bodyAux))
}

func (s *StableSolver) extend(fromAtom, fromRule int) {
	prog := s.prog
	for ri := fromRule; ri < len(prog.Rules); ri++ {
		r := &prog.Rules[ri]
		if len(r.Head) > 1 {
			s.normal = false
		}
		for _, h := range r.Head {
			if int(h) < fromAtom {
				panic("asp: Extend with a rule heading a pre-existing atom")
			}
		}
		for _, g := range r.Neg {
			if !s.negSeen[g] {
				s.negSeen[g] = true
				s.negAtoms = append(s.negAtoms, g)
			}
		}
	}
	for a := fromAtom; a < prog.NumAtoms(); a++ {
		s.vars = append(s.vars, s.sat.NewVar())
		s.headRules = append(s.headRules, nil)
		s.isFact = append(s.isFact, false)
	}
	for fi := s.nFacts; fi < len(prog.Facts); fi++ {
		f := prog.Facts[fi]
		s.isFact[f] = true
		s.sat.AddClause(PosLit(s.vars[f]))
	}
	s.nFacts = len(prog.Facts)
	for ri := fromRule; ri < len(prog.Rules); ri++ {
		r := &prog.Rules[ri]
		s.bodyAux = append(s.bodyAux, 0)
		lits := make([]Lit, 0, len(r.Head)+len(r.Pos)+len(r.Neg))
		for _, h := range r.Head {
			lits = append(lits, PosLit(s.vars[h]))
			s.headRules[h] = append(s.headRules[h], int32(ri))
		}
		for _, b := range r.Pos {
			lits = append(lits, NegLit(s.vars[b]))
		}
		for _, n := range r.Neg {
			lits = append(lits, PosLit(s.vars[n]))
		}
		s.sat.AddClause(lits...)
	}
	// Support clauses: a → ∨_{r: a ∈ head(r)} body(r), via body aux vars.
	// Only new atoms need one; every rule of a new atom is itself new.
	for a := fromAtom; a < prog.NumAtoms(); a++ {
		if s.isFact[a] {
			continue
		}
		rules := s.headRules[a]
		clause := make([]Lit, 0, len(rules)+1)
		clause = append(clause, NegLit(s.vars[AtomID(a)]))
		trivial := false
		for _, ri := range rules {
			w, ok := s.bodyWitness(int(ri))
			if !ok {
				trivial = true // empty body: always supported
				break
			}
			clause = append(clause, w)
		}
		if !trivial {
			s.sat.AddClause(clause...)
		}
	}
}

// bodyWitness returns a literal implying the rule's body (true only if every
// positive body atom is true and every negative one false). For empty
// bodies it reports ok=false (the body is trivially true). Single-literal
// bodies reuse the literal; longer bodies get a cached aux variable.
func (s *StableSolver) bodyWitness(ri int) (Lit, bool) {
	r := &s.prog.Rules[ri]
	n := len(r.Pos) + len(r.Neg)
	switch n {
	case 0:
		return 0, false
	case 1:
		if len(r.Pos) == 1 {
			return PosLit(s.vars[r.Pos[0]]), true
		}
		return NegLit(s.vars[r.Neg[0]]), true
	}
	if s.bodyAux[ri] != 0 {
		return PosLit(s.bodyAux[ri]), true
	}
	aux := s.sat.NewVar()
	s.bodyAux[ri] = aux
	for _, b := range r.Pos {
		s.sat.AddClause(NegLit(aux), PosLit(s.vars[b]))
	}
	for _, g := range r.Neg {
		s.sat.AddClause(NegLit(aux), NegLit(s.vars[g]))
	}
	return PosLit(aux), true
}

// model extracts the current SAT model as an atom truth vector.
func (s *StableSolver) model() []bool {
	m := make([]bool, len(s.vars))
	for a, v := range s.vars {
		m[a] = s.sat.ModelValue(v)
	}
	return m
}

// minimize shrinks a classical model to a minimal classical model (w.r.t.
// the current clause database and the active assumptions) by iterated SAT
// calls constrained to strict subsets.
func (s *StableSolver) minimize(m []bool, sess *Session) []bool {
	act := s.sat.NewVar()
	frozen := make([]bool, len(m)) // atoms already forced false under act
	for {
		// Force every false atom to stay false while act holds.
		for a, tv := range m {
			if !tv && !frozen[a] {
				frozen[a] = true
				s.sat.AddClause(NegLit(act), NegLit(s.vars[a]))
			}
		}
		// Demand at least one currently-true atom become false.
		shrink := []Lit{NegLit(act)}
		for a, tv := range m {
			if tv {
				shrink = append(shrink, NegLit(s.vars[a]))
			}
		}
		s.sat.AddClause(shrink...)
		if !s.solve(sess, PosLit(act)) {
			break // m is minimal
		}
		m = s.model()
	}
	s.sat.AddClause(NegLit(act)) // retire the activation scope
	return m
}

// solve runs one SAT search under the solver-lifetime assumptions, the
// session's scope (activation literal plus pinned atoms), and any extra
// literals, in that fixed order so search traces are deterministic.
func (s *StableSolver) solve(sess *Session, extra ...Lit) bool {
	n := len(s.assumps) + len(extra)
	if sess != nil {
		n += 1 + len(sess.assumps)
	}
	lits := make([]Lit, 0, n)
	if sess != nil {
		lits = append(lits, PosLit(sess.act))
	}
	for _, a := range s.assumps {
		lits = append(lits, s.assumpLit(a))
	}
	if sess != nil {
		for _, a := range sess.assumps {
			lits = append(lits, s.assumpLit(a))
		}
	}
	lits = append(lits, extra...)
	return s.sat.SolveUnderAssumptions(lits)
}

func (s *StableSolver) assumpLit(a AtomAssumption) Lit {
	if a.True {
		return PosLit(s.vars[a.Atom])
	}
	return NegLit(s.vars[a.Atom])
}

// assumptionsHold reports whether the model satisfies every assumption.
func assumptionsHold(m []bool, as []AtomAssumption) bool {
	for _, a := range as {
		if m[a.Atom] != a.True {
			return false
		}
	}
	return true
}

// checkStable checks whether a minimal classical model m is a minimal model
// of the reduct Π^m, via a secondary SAT instance over the atoms true in m.
// On failure it returns the smaller reduct model.
func (s *StableSolver) checkStable(m []bool) (bool, []bool) {
	sub := NewSolver()
	// The secondary search inherits the primary solver's cancellation
	// sources so a per-signature timeout also bounds the coNP-hard check;
	// it runs unbudgeted (the effort budget is a property of the primary
	// search) but any result reached after cancellation is discarded by the
	// callers' Canceled checks.
	sub.cancel = s.sat.cancel
	sub.ctx = s.sat.ctx
	subVar := make(map[AtomID]Var)
	varOf := func(a AtomID) Var {
		if v, ok := subVar[a]; ok {
			return v
		}
		v := sub.NewVar()
		subVar[a] = v
		return v
	}
	for _, f := range s.prog.Facts {
		if !m[f] {
			return false, nil // cannot happen for a classical model; be safe
		}
		sub.AddClause(PosLit(varOf(f)))
	}
rules:
	for _, r := range s.prog.Rules {
		for _, n := range r.Neg {
			if m[n] {
				continue rules // rule dropped by the reduct
			}
		}
		for _, b := range r.Pos {
			if !m[b] {
				continue rules // body false under every subset of m
			}
		}
		lits := make([]Lit, 0, len(r.Head)+len(r.Pos))
		for _, h := range r.Head {
			if m[h] {
				lits = append(lits, PosLit(varOf(h)))
			}
		}
		for _, b := range r.Pos {
			lits = append(lits, NegLit(varOf(b)))
		}
		if !sub.AddClause(lits...) {
			return true, nil // empty clause: no strict-subset model exists
		}
	}
	// Demand a strict subset: at least one atom of m false.
	strict := make([]Lit, 0, len(subVar))
	for a, tv := range m {
		if tv {
			strict = append(strict, NegLit(varOf(AtomID(a))))
		}
	}
	if len(strict) == 0 {
		return true, nil // m = ∅ is trivially minimal
	}
	if !sub.AddClause(strict...) {
		return true, nil
	}
	if !sub.Solve() {
		return true, nil
	}
	smaller := make([]bool, len(m))
	for a, v := range subVar {
		smaller[a] = sub.ModelValue(v)
	}
	return false, smaller
}

// learnLoop adds the disjunctive loop formula of the unfounded set
// L = m \ smaller (Lee & Lifschitz): for every a ∈ L,
//
//	a → ∨ { body(r) ∧ ¬(head(r) \ L) : r with head∩L ≠ ∅, pos-body∩L = ∅ }.
func (s *StableSolver) learnLoop(m, smaller []bool) {
	var loop []AtomID
	inLoop := make(map[AtomID]bool)
	for a := range m {
		if m[a] && !smaller[a] {
			loop = append(loop, AtomID(a))
			inLoop[AtomID(a)] = true
		}
	}
	s.learnLoopSet(loop, inLoop)
}

// learnUnfounded decomposes the unfounded set m \ lfp into strongly
// connected components of the positive dependency graph restricted to it
// and learns one loop formula per component. Per-SCC formulas are smaller
// and generalize across candidates far better than whole-set formulas.
func (s *StableSolver) learnUnfounded(m, lfp []bool) {
	unfounded := make(map[AtomID]bool)
	var atoms []AtomID
	for a := range m {
		if m[a] && !lfp[a] {
			unfounded[AtomID(a)] = true
			atoms = append(atoms, AtomID(a))
		}
	}
	if len(atoms) == 0 {
		return
	}
	// Positive dependency edges within the unfounded set: head -> pos body.
	edges := make(map[AtomID][]AtomID, len(atoms))
	selfLoop := make(map[AtomID]bool)
	for _, a := range atoms {
		for _, ri := range s.headRules[a] {
			r := &s.prog.Rules[ri]
			for _, b := range r.Pos {
				if unfounded[b] {
					if b == a {
						selfLoop[a] = true
					}
					edges[a] = append(edges[a], b)
				}
			}
		}
	}
	for _, scc := range atomSCCs(atoms, edges) {
		if len(scc) == 1 && !selfLoop[scc[0]] {
			// A singleton without a self-loop becomes founded once the
			// components below it are constrained; no loop formula needed.
			continue
		}
		inLoop := make(map[AtomID]bool, len(scc))
		for _, a := range scc {
			inLoop[a] = true
		}
		s.learnLoopSet(scc, inLoop)
	}
}

// atomSCCs computes strongly connected components (iterative Tarjan) over
// the given atoms and edge map.
func atomSCCs(atoms []AtomID, edges map[AtomID][]AtomID) [][]AtomID {
	index := make(map[AtomID]int, len(atoms))
	low := make(map[AtomID]int, len(atoms))
	onStack := make(map[AtomID]bool, len(atoms))
	var stack []AtomID
	var comps [][]AtomID
	next := 0

	type frame struct {
		node AtomID
		ei   int
	}
	for _, start := range atoms {
		if _, seen := index[start]; seen {
			continue
		}
		call := []frame{{node: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			es := edges[f.node]
			advanced := false
			for f.ei < len(es) {
				w := es[f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && low[f.node] > index[w] {
					low[f.node] = index[w]
				}
			}
			if advanced {
				continue
			}
			v := f.node
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].node
				if low[parent] > low[v] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []AtomID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// learnLoopSet adds the loop formula for one atom set.
func (s *StableSolver) learnLoopSet(loop []AtomID, inLoop map[AtomID]bool) {
	if len(loop) == 0 {
		return
	}
	// External support rules of the loop.
	ruleSet := make(map[int32]bool)
	for _, a := range loop {
		for _, ri := range s.headRules[a] {
			ruleSet[ri] = true
		}
	}
	var witnesses []Lit
	work := 0
	for ri := range ruleSet {
		r := &s.prog.Rules[ri]
		external := true
		for _, b := range r.Pos {
			if inLoop[b] {
				external = false
				break
			}
		}
		if !external {
			continue
		}
		work += len(r.Pos) + len(r.Neg) + len(r.Head)
		if work > maxLoopFormulaSize {
			return // too expensive; the blocking clause alone suffices
		}
		// Witness: body holds and every head atom outside the loop is false.
		bw, hasBody := s.bodyWitness(int(ri))
		var outside []AtomID
		for _, h := range r.Head {
			if !inLoop[h] {
				outside = append(outside, h)
			}
		}
		switch {
		case !hasBody && len(outside) == 0:
			// Unconditional external support: loop formula is vacuous.
			return
		case len(outside) == 0:
			witnesses = append(witnesses, bw)
		default:
			w := s.sat.NewVar()
			if hasBody {
				s.sat.AddClause(NegLit(w), bw)
			}
			for _, h := range outside {
				s.sat.AddClause(NegLit(w), NegLit(s.vars[h]))
			}
			witnesses = append(witnesses, PosLit(w))
		}
	}
	for _, a := range loop {
		clause := make([]Lit, 0, len(witnesses)+1)
		clause = append(clause, NegLit(s.vars[a]))
		clause = append(clause, witnesses...)
		s.sat.AddClause(clause...)
	}
	s.LoopsLearned++
}

// blockSupersets adds the all-negative clause excluding m and every
// superset of m.
func (s *StableSolver) blockSupersets(m []bool) {
	lits := make([]Lit, 0, 16)
	for a, tv := range m {
		if tv {
			lits = append(lits, NegLit(s.vars[AtomID(a)]))
		}
	}
	s.sat.AddClause(lits...)
}

// NumTrue counts the true atoms of a model vector.
func (s *StableSolver) NumTrue(m []bool) int {
	n := 0
	for _, tv := range m {
		if tv {
			n++
		}
	}
	return n
}

// accept runs the theory acceptor on a stable model; it reports true when
// the model is acceptable and otherwise adds the learned clauses.
func (s *StableSolver) accept(m []bool) bool {
	if s.Acceptor == nil {
		return true
	}
	clauses := s.Acceptor(m)
	if len(clauses) == 0 {
		return true
	}
	s.TheoryRejects++
	for _, c := range clauses {
		s.sat.AddClause(c...)
	}
	return false
}

// lfpReduct computes the least fixpoint of the definite part of the reduct
// Π^m: rules whose negative body is disjoint from m fire bottom-up from the
// facts. Constraints (empty heads) are ignored. The result is ⊆ m for any
// classical model m.
func (s *StableSolver) lfpReduct(m []bool) []bool {
	lfp := make([]bool, len(m))
	// pending[ri] counts unsatisfied positive body atoms of rule ri; -1
	// marks rules dropped by the reduct or without a head.
	pending := make([]int, len(s.prog.Rules))
	watchers := make(map[AtomID][]int32) // atom -> rules with it in pos body
	var queue []AtomID
	push := func(a AtomID) {
		if !lfp[a] {
			lfp[a] = true
			queue = append(queue, a)
		}
	}
	fire := func(ri int32) {
		r := &s.prog.Rules[ri]
		push(r.Head[0])
	}
rules:
	for ri := range s.prog.Rules {
		r := &s.prog.Rules[ri]
		if len(r.Head) == 0 {
			pending[ri] = -1
			continue
		}
		for _, g := range r.Neg {
			if m[g] {
				pending[ri] = -1
				continue rules
			}
		}
		pending[ri] = len(r.Pos)
		if pending[ri] == 0 {
			fire(int32(ri))
			continue
		}
		for _, b := range r.Pos {
			watchers[b] = append(watchers[b], int32(ri))
		}
	}
	for _, f := range s.prog.Facts {
		push(f)
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range watchers[a] {
			if pending[ri] <= 0 {
				continue
			}
			pending[ri]--
			if pending[ri] == 0 {
				fire(ri)
			}
		}
	}
	return lfp
}

func modelsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NextStable finds a stable model consistent with the current clause
// database (including any previously added blocking clauses) and the
// solver-lifetime assumptions, or nil.
//
// For normal programs, a classical model m is checked with the linear test
// m = lfp(reduct^m); on failure the unfounded set m \ lfp yields a loop
// formula. For disjunctive programs the generic minimize-and-check path
// runs (stability checking is coNP-hard there).
func (s *StableSolver) NextStable() []bool { return s.nextStable(nil) }

func (s *StableSolver) nextStable(sess *Session) []bool {
	for {
		if s.Canceled() || s.sat.Exhausted() || !s.solve(sess) {
			return nil
		}
		s.CandidatesTested++
		if s.normal {
			m := s.model()
			f := s.lfpReduct(m)
			if modelsEqual(m, f) {
				if !s.accept(m) {
					continue
				}
				return m
			}
			// The reduct depends only on the negative-signature of m. If f
			// agrees with m there, reduct^f = reduct^m, so f = lfp(reduct^f)
			// and f is itself stable (f is a classical model: dropped rules
			// keep a true negative atom, kept rules hold at the fixpoint,
			// and a kept constraint violated by f ⊆ m would already be
			// violated by m). Otherwise no stable model shares m's negative
			// signature at all, and the whole signature is blocked.
			agree := true
			for _, a := range s.negAtoms {
				if m[a] != f[a] {
					agree = false
					break
				}
			}
			if agree {
				// f is stable, but only m — not necessarily f ⊆ m — is
				// known to satisfy the active assumptions. If f violates
				// them it cannot be returned: exclude f (and its supersets,
				// none of which are stable) and search on. Under a session
				// the exclusion is scoped to the session; under lifetime
				// assumptions it is permanent, which is sound only because
				// those assumptions never change (see SetAssumptions).
				if sess != nil {
					if !assumptionsHold(f, s.assumps) || !assumptionsHold(f, sess.assumps) {
						sess.blockSupersets(f)
						continue
					}
				} else if !assumptionsHold(f, s.assumps) {
					s.blockSupersets(f)
					continue
				}
				if !s.accept(f) {
					continue
				}
				return f
			}
			s.StabilityFails++
			// Learn loop formulas for the unfounded cycles (generalizes
			// across candidates), plus the negative-signature clause for
			// guaranteed progress. Both are facts about the program alone —
			// independent of any active assumptions — so they are added
			// unguarded and shared with every later session.
			s.learnUnfounded(m, f)
			lits := make([]Lit, len(s.negAtoms))
			for i, a := range s.negAtoms {
				if m[a] {
					lits[i] = NegLit(s.vars[a])
				} else {
					lits[i] = PosLit(s.vars[a])
				}
			}
			s.sat.AddClause(lits...)
			continue
		}
		m := s.minimize(s.model(), sess)
		if s.sat.Exhausted() {
			// minimize was cut short; m may not be minimal, so the
			// stability check below could misclassify it. End the session.
			return nil
		}
		ok, smaller := s.checkStable(m)
		if ok {
			if !s.accept(m) {
				continue
			}
			return m
		}
		s.StabilityFails++
		s.learnLoop(m, smaller)
		s.blockSupersets(m)
	}
}

// Enumerate yields stable models until fn returns false or the program is
// exhausted. It returns the number of models yielded. The solver is spent
// afterwards (all stable models are blocked).
func (s *StableSolver) Enumerate(fn func(m []bool) bool) int {
	n := 0
	for {
		m := s.NextStable()
		if m == nil {
			return n
		}
		n++
		if !fn(m) {
			return n
		}
		s.blockSupersets(m)
	}
}

// HasStableModel reports whether the program has at least one stable model.
// The first found model is not blocked, so Cautious may be called after.
func (s *StableSolver) HasStableModel() bool {
	return s.NextStable() != nil
}

// Brave computes which of the candidate atoms belong to at least one
// stable model (brave consequences restricted to candidates), using
// model-guided search: each model marks the candidates it contains, and a
// progressively stronger clause demands a model containing one of the
// still-unseen candidates. The second result reports whether the program
// has any stable model at all (with none, no candidate is brave).
//
// The solver is spent after this call.
func (s *StableSolver) Brave(candidates []AtomID) ([]AtomID, bool) {
	m := s.NextStable()
	if m == nil {
		return nil, false
	}
	var brave []AtomID
	undecided := make([]AtomID, 0, len(candidates))
	for _, a := range candidates {
		if m[a] {
			brave = append(brave, a)
		} else {
			undecided = append(undecided, a)
		}
	}
	for len(undecided) > 0 {
		// Demand a stable model containing some still-unseen candidate.
		lits := make([]Lit, len(undecided))
		for i, a := range undecided {
			lits[i] = PosLit(s.vars[a])
		}
		if !s.sat.AddClause(lits...) {
			break // no model can contain any of them
		}
		m = s.NextStable()
		if m == nil {
			break
		}
		rest := undecided[:0]
		for _, a := range undecided {
			if m[a] {
				brave = append(brave, a)
			} else {
				rest = append(rest, a)
			}
		}
		undecided = rest
	}
	return brave, true
}

// Cautious computes which of the candidate atoms belong to every stable
// model (cautious consequences restricted to candidates), using model-guided
// narrowing. The second result reports whether the program has any stable
// model at all; if it has none, every candidate is vacuously cautious.
//
// The solver is spent after this call.
func (s *StableSolver) Cautious(candidates []AtomID) ([]AtomID, bool) {
	m := s.NextStable()
	if m == nil {
		return append([]AtomID(nil), candidates...), false
	}
	// Narrow to candidates in the first model.
	c := make([]AtomID, 0, len(candidates))
	for _, a := range candidates {
		if m[a] {
			c = append(c, a)
		}
	}
	for len(c) > 0 {
		// Demand a stable model violating at least one remaining candidate.
		lits := make([]Lit, len(c))
		for i, a := range c {
			lits[i] = NegLit(s.vars[a])
		}
		if !s.sat.AddClause(lits...) {
			break // UNSAT at top level: remaining candidates are cautious
		}
		m = s.NextStable()
		if m == nil {
			break
		}
		kept := c[:0]
		for _, a := range c {
			if m[a] {
				kept = append(kept, a)
			}
		}
		c = kept
	}
	return c, true
}

// AtomAssumption pins one program atom's truth value for the duration of
// an assumption scope (a Session or SetAssumptions).
type AtomAssumption struct {
	Atom AtomID
	True bool
}

// SetAssumptions pins atom truth values for the remainder of the solver's
// lifetime: every later search (NextStable, Enumerate, Brave, Cautious)
// runs under them as CDCL assumptions. Intended for one-shot use
// (cmd/aspsolve -assume): when the repair-itself path of a normal program
// yields a stable model violating the assumptions, the solver excludes it
// with a permanent clause, which is sound only while the assumption set
// never changes. Incremental callers that swap assumption sets between
// queries use StartSession instead.
func (s *StableSolver) SetAssumptions(assumps []AtomAssumption) {
	s.assumps = append(s.assumps[:0], assumps...)
}

// Session is one incremental query scope against a persistent solver: a
// set of assumption atoms plus a fresh activation literal guarding every
// clause that is only locally sound. Distinct queries against the same
// signature program swap sessions instead of rebuilding the solver, so
// CDCL learnt clauses and loop formulas carry over between them.
type Session struct {
	s       *StableSolver
	act     Var
	assumps []AtomAssumption
	closed  bool
}

// StartSession opens an incremental scope: the given atoms are held at
// their pinned values for every search made through the session, and
// every clause that is only locally sound — assumption-relative model
// exclusions and the brave/cautious search-strategy clauses — is guarded
// by a fresh activation literal. Program-valid knowledge learned during
// the session (CDCL learnt clauses, loop formulas, negative-signature
// blocks, theory clauses) is unguarded and legally shared with every
// later session; see DESIGN.md §17. Close the session to retire its
// scope.
func (s *StableSolver) StartSession(assumps []AtomAssumption) *Session {
	return &Session{s: s, act: s.sat.NewVar(), assumps: append([]AtomAssumption(nil), assumps...)}
}

// NextStable finds the next stable model satisfying the session's
// assumptions, or nil. Check Exhausted/Canceled on the solver to tell a
// cut-short search from genuine absence.
func (ss *Session) NextStable() []bool { return ss.s.nextStable(ss) }

// Block excludes the given stable model (and its supersets, none of which
// are stable) for the rest of the session — the session-scoped analogue
// of the blocking Enumerate performs between models.
func (ss *Session) Block(m []bool) { ss.blockSupersets(m) }

// blockSupersets adds the session-scoped all-negative clause excluding m
// and every superset of m. Because every classical model whose reduct
// fixpoint is a stable model f contains f, scoping the block to f also
// guarantees search progress after f is rejected.
func (ss *Session) blockSupersets(m []bool) {
	s := ss.s
	lits := make([]Lit, 0, 16)
	lits = append(lits, NegLit(ss.act))
	for a, tv := range m {
		if tv {
			lits = append(lits, NegLit(s.vars[AtomID(a)]))
		}
	}
	s.sat.AddClause(lits...)
}

// Cautious is the session-scoped analogue of StableSolver.Cautious: the
// model-guided narrowing clauses are guarded by the session's activation
// literal, so the solver is NOT spent afterwards — later sessions see the
// full model space again.
func (ss *Session) Cautious(candidates []AtomID) ([]AtomID, bool) {
	s := ss.s
	m := s.nextStable(ss)
	if m == nil {
		return append([]AtomID(nil), candidates...), false
	}
	c := make([]AtomID, 0, len(candidates))
	for _, a := range candidates {
		if m[a] {
			c = append(c, a)
		}
	}
	for len(c) > 0 {
		// Demand a stable model violating at least one remaining candidate.
		lits := make([]Lit, 0, len(c)+1)
		lits = append(lits, NegLit(ss.act))
		for _, a := range c {
			lits = append(lits, NegLit(s.vars[a]))
		}
		if !s.sat.AddClause(lits...) {
			break
		}
		m = s.nextStable(ss)
		if m == nil {
			break
		}
		kept := c[:0]
		for _, a := range c {
			if m[a] {
				kept = append(kept, a)
			}
		}
		c = kept
	}
	return c, true
}

// Brave is the session-scoped analogue of StableSolver.Brave; like
// Session.Cautious it leaves the solver reusable.
func (ss *Session) Brave(candidates []AtomID) ([]AtomID, bool) {
	s := ss.s
	m := s.nextStable(ss)
	if m == nil {
		return nil, false
	}
	var brave []AtomID
	undecided := make([]AtomID, 0, len(candidates))
	for _, a := range candidates {
		if m[a] {
			brave = append(brave, a)
		} else {
			undecided = append(undecided, a)
		}
	}
	for len(undecided) > 0 {
		// Demand a stable model containing some still-unseen candidate.
		lits := make([]Lit, 0, len(undecided)+1)
		lits = append(lits, NegLit(ss.act))
		for _, a := range undecided {
			lits = append(lits, PosLit(s.vars[a]))
		}
		if !s.sat.AddClause(lits...) {
			break
		}
		m = s.nextStable(ss)
		if m == nil {
			break
		}
		rest := undecided[:0]
		for _, a := range undecided {
			if m[a] {
				brave = append(brave, a)
			} else {
				rest = append(rest, a)
			}
		}
		if len(rest) == len(undecided) {
			// No progress: the repair-itself path returned a stable f ⊆ m
			// missing every remaining candidate even though the SAT model m
			// satisfied the progress clause. Supersets of f are never
			// stable, so excluding them within the session is sound and
			// forces the next model to differ.
			ss.blockSupersets(m)
		}
		undecided = rest
	}
	return brave, true
}

// Close retires the session: its activation literal is permanently
// falsified, deactivating every scoped clause; every few closures the
// now-satisfied clauses are reclaimed via clause-database simplification.
func (ss *Session) Close() {
	if ss.closed {
		return
	}
	ss.closed = true
	s := ss.s
	s.sat.AddClause(NegLit(ss.act))
	s.retired++
	if s.retired >= 8 {
		s.retired = 0
		s.sat.Simplify()
	}
}

// SatConflicts returns the underlying SAT solver's conflict count.
func (s *StableSolver) SatConflicts() int64 { return s.sat.Conflicts }

// SatPropagations returns the underlying SAT solver's propagation count.
func (s *StableSolver) SatPropagations() int64 { return s.sat.Propagations }

// SatDecisions returns the underlying SAT solver's decision count.
func (s *StableSolver) SatDecisions() int64 { return s.sat.Decisions }

// SatRestarts returns the underlying SAT solver's restart count (Luby
// budget renewals beyond the first of each search).
func (s *StableSolver) SatRestarts() int64 { return s.sat.Restarts }

// SatAssumptionSolves returns how many SAT searches ran under at least
// one assumption literal.
func (s *StableSolver) SatAssumptionSolves() int64 { return s.sat.AssumptionSolves }

// SatReductions returns how many clause-database reductions the
// underlying SAT solver performed.
func (s *StableSolver) SatReductions() int64 { return s.sat.Reductions }

// SatClausesDeleted returns how many learnt clauses the underlying SAT
// solver deleted during clause-database reductions.
func (s *StableSolver) SatClausesDeleted() int64 { return s.sat.ClausesDeleted }

// PreferTrue sets the decision polarity of the given atoms to true-first.
// Useful when models are expected to be near-maximal on these atoms (e.g.
// "keep" choices in repair programs): candidates then start from the
// mostly-true end of the search space.
func (s *StableSolver) PreferTrue(atoms []AtomID) {
	for _, a := range atoms {
		s.sat.SetPhase(s.vars[a], true)
	}
}
