package asp

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements a relational grounder for symbolic (non-ground)
// disjunctive programs: rules are instantiated over the candidate-atom set
// computed by a positive fixpoint (negation ignored, all disjuncts assumed
// derivable), which over-approximates every stable model. Negative literals
// on atoms outside the candidate set are simplified to true.

// SymTerm is a symbolic term: a variable (Var != "") or a string constant.
type SymTerm struct {
	Var   string
	Const string
}

// SV returns a symbolic variable term.
func SV(name string) SymTerm { return SymTerm{Var: name} }

// SC returns a symbolic constant term.
func SC(c string) SymTerm { return SymTerm{Const: c} }

// SymAtom is a symbolic atom Pred(t1, ..., tk).
type SymAtom struct {
	Pred string
	Args []SymTerm
}

// SA builds a symbolic atom.
func SA(pred string, args ...SymTerm) SymAtom { return SymAtom{Pred: pred, Args: args} }

func (a SymAtom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		if t.Var != "" {
			parts[i] = t.Var
		} else {
			parts[i] = t.Const
		}
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

// SymRule is a symbolic disjunctive rule with optional inequality built-ins.
type SymRule struct {
	Head []SymAtom
	Pos  []SymAtom
	Neg  []SymAtom
	Neq  [][2]SymTerm // each pair must ground to distinct constants
}

// SymProgram is a symbolic disjunctive logic program.
type SymProgram struct {
	Rules []SymRule
	Facts []SymAtom // ground atoms asserted true
}

// AddFact appends a ground fact (all terms must be constants).
func (sp *SymProgram) AddFact(pred string, consts ...string) {
	args := make([]SymTerm, len(consts))
	for i, c := range consts {
		args[i] = SC(c)
	}
	sp.Facts = append(sp.Facts, SymAtom{Pred: pred, Args: args})
}

// AddRule appends a rule.
func (sp *SymProgram) AddRule(r SymRule) { sp.Rules = append(sp.Rules, r) }

// groundAtomName renders a ground atom canonically.
func groundAtomName(pred string, args []string) string {
	if len(args) == 0 {
		return pred
	}
	return pred + "(" + strings.Join(args, ",") + ")"
}

// candidateSet holds the grounder's over-approximation of derivable atoms,
// indexed per predicate and per (predicate, position, constant).
type candidateSet struct {
	tuples map[string]map[string][]string // pred -> tupleKey -> args
	index  map[string][][]string          // pred -> list of tuples
}

func newCandidateSet() *candidateSet {
	return &candidateSet{tuples: map[string]map[string][]string{}}
}

func (cs *candidateSet) add(pred string, args []string) bool {
	m, ok := cs.tuples[pred]
	if !ok {
		m = map[string][]string{}
		cs.tuples[pred] = m
	}
	k := strings.Join(args, "\x00")
	if _, dup := m[k]; dup {
		return false
	}
	m[k] = args
	cs.index = nil
	return true
}

func (cs *candidateSet) has(pred string, args []string) bool {
	m, ok := cs.tuples[pred]
	if !ok {
		return false
	}
	_, present := m[strings.Join(args, "\x00")]
	return present
}

func (cs *candidateSet) of(pred string) [][]string {
	var out [][]string
	for _, t := range cs.tuples[pred] {
		out = append(out, t)
	}
	return out
}

// matchBody enumerates substitutions making every atom of body a candidate,
// calling fn with the environment. Variables bind in atom order.
func (cs *candidateSet) matchBody(body []SymAtom, env map[string]string, i int, fn func(map[string]string) bool) bool {
	if i == len(body) {
		return fn(env)
	}
	a := body[i]
	for _, tup := range cs.of(a.Pred) {
		if len(tup) != len(a.Args) {
			continue
		}
		var bound []string
		ok := true
		for j, t := range a.Args {
			want := tup[j]
			switch {
			case t.Const != "" || t.Var == "":
				if t.Const != want {
					ok = false
				}
			default:
				if prev, has := env[t.Var]; has {
					if prev != want {
						ok = false
					}
				} else {
					env[t.Var] = want
					bound = append(bound, t.Var)
				}
			}
			if !ok {
				break
			}
		}
		if ok && !cs.matchBody(body, env, i+1, fn) {
			return false
		}
		for _, v := range bound {
			delete(env, v)
		}
	}
	return true
}

func substAtom(a SymAtom, env map[string]string) (string, []string, error) {
	args := make([]string, len(a.Args))
	for i, t := range a.Args {
		switch {
		case t.Const != "" || t.Var == "":
			args[i] = t.Const
		default:
			v, ok := env[t.Var]
			if !ok {
				return "", nil, fmt.Errorf("asp: unsafe variable %s in %s", t.Var, a)
			}
			args[i] = v
		}
	}
	return a.Pred, args, nil
}

func substTerm(t SymTerm, env map[string]string) (string, error) {
	if t.Var == "" {
		return t.Const, nil
	}
	v, ok := env[t.Var]
	if !ok {
		return "", fmt.Errorf("asp: unsafe variable %s in inequality", t.Var)
	}
	return v, nil
}

// validate checks rule safety: every variable occurring in the head, in a
// negative literal, or in an inequality must occur in the positive body.
func (r *SymRule) validate() error {
	posVars := map[string]bool{}
	for _, a := range r.Pos {
		for _, t := range a.Args {
			if t.Var != "" {
				posVars[t.Var] = true
			}
		}
	}
	check := func(where string, atoms []SymAtom) error {
		for _, a := range atoms {
			for _, t := range a.Args {
				if t.Var != "" && !posVars[t.Var] {
					return fmt.Errorf("asp: unsafe rule: variable %s in %s not bound by positive body", t.Var, where)
				}
			}
		}
		return nil
	}
	if err := check("head", r.Head); err != nil {
		return err
	}
	if err := check("negative body", r.Neg); err != nil {
		return err
	}
	for _, pair := range r.Neq {
		for _, t := range pair {
			if t.Var != "" && !posVars[t.Var] {
				return fmt.Errorf("asp: unsafe rule: inequality variable %s not bound by positive body", t.Var)
			}
		}
	}
	return nil
}

// Ground instantiates the symbolic program into a GroundProgram.
func (sp *SymProgram) Ground() (*GroundProgram, error) {
	for i := range sp.Rules {
		if err := sp.Rules[i].validate(); err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
	}
	// Phase 1: candidate fixpoint (negation and inequalities ignored for
	// derivability would under-approximate? No: ignoring body restrictions
	// only ADDS candidates, which is the safe direction; inequalities are
	// respected since they never make more atoms derivable when dropped...
	// dropping them adds candidates, still safe).
	cs := newCandidateSet()
	for _, f := range sp.Facts {
		pred, args, err := substAtom(f, nil)
		if err != nil {
			return nil, fmt.Errorf("non-ground fact %s", f)
		}
		cs.add(pred, args)
	}
	for changed := true; changed; {
		changed = false
		for ri := range sp.Rules {
			r := &sp.Rules[ri]
			var firings [][2]interface{}
			cs.matchBody(r.Pos, map[string]string{}, 0, func(env map[string]string) bool {
				for _, h := range r.Head {
					pred, args, err := substAtom(h, env)
					if err != nil {
						return true
					}
					if !cs.has(pred, args) {
						cp := make([]string, len(args))
						copy(cp, args)
						firings = append(firings, [2]interface{}{pred, cp})
					}
				}
				return true
			})
			for _, f := range firings {
				if cs.add(f[0].(string), f[1].([]string)) {
					changed = true
				}
			}
		}
	}
	// Phase 2: emit ground rules.
	gp := NewGroundProgram()
	for _, f := range sp.Facts {
		pred, args, _ := substAtom(f, nil)
		gp.AddFact(gp.Atom(groundAtomName(pred, args)))
	}
	seenRule := map[string]bool{}
	for ri := range sp.Rules {
		r := &sp.Rules[ri]
		var groundErr error
		cs.matchBody(r.Pos, map[string]string{}, 0, func(env map[string]string) bool {
			// Inequalities.
			for _, pair := range r.Neq {
				l, err := substTerm(pair[0], env)
				if err != nil {
					groundErr = err
					return false
				}
				rr, err := substTerm(pair[1], env)
				if err != nil {
					groundErr = err
					return false
				}
				if l == rr {
					return true // constraint unsatisfied; rule instance vacuous
				}
			}
			var head, pos, neg []AtomID
			for _, h := range r.Head {
				pred, args, err := substAtom(h, env)
				if err != nil {
					groundErr = err
					return false
				}
				head = append(head, gp.Atom(groundAtomName(pred, args)))
			}
			for _, b := range r.Pos {
				pred, args, _ := substAtom(b, env)
				pos = append(pos, gp.Atom(groundAtomName(pred, args)))
			}
			for _, n := range r.Neg {
				pred, args, err := substAtom(n, env)
				if err != nil {
					groundErr = err
					return false
				}
				if !cs.has(pred, args) {
					continue // atom never derivable: ¬atom is true, drop literal
				}
				neg = append(neg, gp.Atom(groundAtomName(pred, args)))
			}
			key := ruleKey(head, pos, neg)
			if !seenRule[key] {
				seenRule[key] = true
				gp.AddRule(head, pos, neg)
			}
			return true
		})
		if groundErr != nil {
			return nil, groundErr
		}
	}
	return gp, nil
}

func ruleKey(head, pos, neg []AtomID) string {
	enc := func(ids []AtomID) string {
		cp := append([]AtomID(nil), ids...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		b := make([]byte, 0, len(cp)*4)
		for _, id := range cp {
			b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		return string(b)
	}
	return enc(head) + "|" + enc(pos) + "|" + enc(neg)
}
