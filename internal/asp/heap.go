package asp

// varHeap is a max-heap of variables ordered by activity, with lazy
// membership (a variable may appear at most once; popped variables are
// re-pushed on backtrack).
type varHeap struct {
	act     *[]float64
	heap    []Var
	indices map[Var]int
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) less(a, b Var) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) push(v Var) {
	if h.indices == nil {
		h.indices = make(map[Var]int)
	}
	if _, ok := h.indices[v]; ok {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() Var {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 0
	h.heap = h.heap[:last]
	delete(h.indices, v)
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v Var) {
	if i, ok := h.indices[v]; ok {
		h.up(i)
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.indices[v] = i
}
