package asp

import (
	"testing"
)

// fuzzNVars bounds the CNF universe: small enough that every fuzz
// execution is instant, large enough for non-trivial conflict analysis.
const fuzzNVars = 6

// decodeLits maps raw bytes to literals over fuzzNVars variables, keeping
// the first occurrence of each variable so the result is a consistent
// (non-tautological) literal set when used as assumptions.
func decodeLits(data []byte, max int, consistent bool) []Lit {
	seen := make(map[Var]bool, max)
	out := make([]Lit, 0, max)
	for _, b := range data {
		if len(out) >= max {
			break
		}
		v := Var(1 + int(b)%fuzzNVars) // vars are 1-based; 0 is reserved
		if consistent {
			if seen[v] {
				continue
			}
			seen[v] = true
		}
		if (int(b)/fuzzNVars)%2 == 0 {
			out = append(out, PosLit(v))
		} else {
			out = append(out, NegLit(v))
		}
	}
	return out
}

// fuzzSolver builds a solver over fuzzNVars variables with the clauses
// encoded in data (3 bytes per clause) plus the given unit clauses. The
// second result is false when the units already contradict at level 0.
func fuzzSolver(data []byte, units []Lit) (*Solver, bool) {
	s := NewSolver()
	for i := 0; i < fuzzNVars; i++ {
		s.NewVar()
	}
	ok := true
	for i := 0; i+3 <= len(data) && i < 3*24; i += 3 {
		ok = s.AddClause(decodeLits(data[i:i+3], 3, false)...) && ok
	}
	for _, u := range units {
		ok = s.AddClause(u) && ok
	}
	return s, ok
}

// FuzzAssumptions cross-checks SolveUnderAssumptions against the ground
// truth of a fresh solver with the assumptions baked in as unit clauses:
//
//  1. sat/unsat must agree between the two;
//  2. on unsat, FailedAssumptions must be a sufficient subset — baking
//     only the failed assumptions into a fresh solver stays unsat;
//  3. the incremental solver must remain reusable: a follow-up
//     assumption-free Solve must agree with a fresh solve of the bare
//     clauses (level-0 restoration, learnt clauses stay legal).
func FuzzAssumptions(f *testing.F) {
	f.Add([]byte{0, 7, 14, 1, 8, 15}, []byte{0, 1})
	f.Add([]byte{0, 6, 0, 1, 7, 1, 2, 8, 2}, []byte{0, 7, 2})
	f.Add([]byte{3, 9, 4, 10, 5, 11}, []byte{})
	f.Add([]byte{}, []byte{0, 6})
	f.Fuzz(func(t *testing.T, clauses []byte, assumpBytes []byte) {
		if len(clauses) > 96 || len(assumpBytes) > 16 {
			return
		}
		assumps := decodeLits(assumpBytes, 4, true)

		inc, okInc := fuzzSolver(clauses, nil)
		if !okInc {
			return // clauses alone are level-0 unsat; nothing to compare
		}
		got := inc.SolveUnderAssumptions(assumps)

		ref, okRef := fuzzSolver(clauses, assumps)
		want := okRef && ref.Solve()
		if got != want {
			t.Fatalf("SolveUnderAssumptions=%v, fresh solve with units=%v (clauses=%v assumps=%v)",
				got, want, clauses, assumps)
		}

		if !got {
			failed := inc.FailedAssumptions()
			inSet := make(map[Lit]bool, len(assumps))
			for _, a := range assumps {
				inSet[a] = true
			}
			for _, l := range failed {
				if !inSet[l] {
					t.Fatalf("failed assumption %v not among assumptions %v", l, assumps)
				}
			}
			sub, okSub := fuzzSolver(clauses, failed)
			if okSub && sub.Solve() {
				t.Fatalf("failed assumptions %v are not a sufficient unsat core (assumps=%v)",
					failed, assumps)
			}
		}

		// Reusability after the assumption solve: the incremental solver,
		// back at level 0, must agree with a fresh solver on the bare
		// clauses — under assumptions again, and with none.
		if inc.SolveUnderAssumptions(assumps) != got {
			t.Fatalf("repeated assumption solve flipped from %v", got)
		}
		fresh, _ := fuzzSolver(clauses, nil)
		if inc.Solve() != fresh.Solve() {
			t.Fatal("assumption-free solve after assumption solve diverges from fresh solver")
		}
	})
}
