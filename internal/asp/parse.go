package asp

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseProgram reads a symbolic disjunctive logic program in a subset of
// clingo's input language:
//
//	node(v1). edge(v1, v2).                      % facts
//	col(X,r) | col(X,g) | col(X,b) :- node(X).   % disjunctive rule
//	:- edge(X,Y), col(X,C), col(Y,C).            % constraint
//	reach(Y) :- reach(X), edge(X,Y), not cut(X, Y), X != Y.
//
// Identifiers beginning with an uppercase letter are variables; lowercase
// identifiers and numbers are constants (clingo convention). `%` and `#`
// start line comments. Supported body built-ins: `X != Y`.
func ParseProgram(text string) (*SymProgram, error) {
	p := &lpParser{src: []rune(text), line: 1}
	prog := &SymProgram{}
	for {
		p.skipSpace()
		if p.eof() {
			return prog, nil
		}
		if err := p.statement(prog); err != nil {
			return nil, err
		}
	}
}

type lpParser struct {
	src  []rune
	pos  int
	line int
}

func (p *lpParser) eof() bool { return p.pos >= len(p.src) }

func (p *lpParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *lpParser) skipSpace() {
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case unicode.IsSpace(c):
			p.pos++
		case c == '%' || c == '#':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *lpParser) peek() rune {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *lpParser) consume(s string) bool {
	p.skipSpace()
	if p.pos+len(s) > len(p.src) {
		return false
	}
	if string(p.src[p.pos:p.pos+len(s)]) != s {
		return false
	}
	// Keyword boundaries: "not" must not swallow "nothing(...)".
	if isWordRune(rune(s[len(s)-1])) && p.pos+len(s) < len(p.src) && isWordRune(p.src[p.pos+len(s)]) {
		return false
	}
	p.pos += len(s)
	return true
}

// startsUpper decodes the first rune of an identifier (which may be
// multi-byte) and reports whether it is upper case; indexing name[0] would
// misclassify non-ASCII identifiers by testing a UTF-8 lead byte.
func startsUpper(name string) bool {
	r, _ := utf8.DecodeRuneInString(name)
	return unicode.IsUpper(r)
}

func isWordRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

func (p *lpParser) ident() (string, error) {
	p.skipSpace()
	if p.eof() || !(unicode.IsLetter(p.src[p.pos]) || unicode.IsDigit(p.src[p.pos]) || p.src[p.pos] == '_') {
		return "", p.errf("expected identifier")
	}
	j := p.pos
	for j < len(p.src) && isWordRune(p.src[j]) {
		j++
	}
	out := string(p.src[p.pos:j])
	p.pos = j
	return out, nil
}

// term parses a variable or constant.
func (p *lpParser) term() (SymTerm, error) {
	name, err := p.ident()
	if err != nil {
		return SymTerm{}, err
	}
	if startsUpper(name) {
		return SV(name), nil
	}
	return SC(name), nil
}

// atom parses pred or pred(t1, ..., tk).
func (p *lpParser) atom() (SymAtom, error) {
	name, err := p.ident()
	if err != nil {
		return SymAtom{}, err
	}
	if startsUpper(name) {
		return SymAtom{}, p.errf("predicate %q must start lowercase", name)
	}
	a := SymAtom{Pred: name}
	if !p.consume("(") {
		return a, nil
	}
	for {
		t, err := p.term()
		if err != nil {
			return SymAtom{}, err
		}
		a.Args = append(a.Args, t)
		if p.consume(",") {
			continue
		}
		if p.consume(")") {
			return a, nil
		}
		return SymAtom{}, p.errf("expected ',' or ')' in %s", name)
	}
}

// statement parses one fact, rule, or constraint terminated by '.'.
func (p *lpParser) statement(prog *SymProgram) error {
	var rule SymRule
	// Head (may be empty for a constraint).
	if !p.peekRuleDef() {
		for {
			a, err := p.atom()
			if err != nil {
				return err
			}
			rule.Head = append(rule.Head, a)
			if p.consume("|") || p.consume(";") {
				continue
			}
			break
		}
	}
	hasBody := p.consume(":-")
	if hasBody {
		for {
			p.skipSpace()
			if p.consume("not") {
				a, err := p.atom()
				if err != nil {
					return err
				}
				rule.Neg = append(rule.Neg, a)
			} else {
				// Either an atom or an inequality "T1 != T2".
				save := p.pos
				t1, err := p.term()
				if err == nil && p.consume("!=") {
					t2, err2 := p.term()
					if err2 != nil {
						return err2
					}
					rule.Neq = append(rule.Neq, [2]SymTerm{t1, t2})
				} else {
					p.pos = save
					a, err := p.atom()
					if err != nil {
						return err
					}
					rule.Pos = append(rule.Pos, a)
				}
			}
			if p.consume(",") {
				continue
			}
			break
		}
	}
	if !p.consume(".") {
		return p.errf("expected '.' to end statement")
	}
	// A ground, body-free, single-head rule is a fact.
	if !hasBody && len(rule.Head) == 1 && groundAtom(rule.Head[0]) {
		prog.Facts = append(prog.Facts, rule.Head[0])
		return nil
	}
	if len(rule.Head) == 0 && !hasBody {
		return p.errf("empty statement")
	}
	prog.Rules = append(prog.Rules, rule)
	return nil
}

func (p *lpParser) peekRuleDef() bool {
	p.skipSpace()
	return p.pos+1 < len(p.src) && p.src[p.pos] == ':' && p.src[p.pos+1] == '-'
}

func groundAtom(a SymAtom) bool {
	for _, t := range a.Args {
		if t.Var != "" {
			return false
		}
	}
	return true
}

// FormatModel renders the true atoms of a model over a ground program,
// sorted, clingo-style.
func FormatModel(gp *GroundProgram, m []bool) string {
	var names []string
	for a := 0; a < gp.NumAtoms(); a++ {
		if m[a] {
			names = append(names, gp.Name(AtomID(a)))
		}
	}
	sortStrings(names)
	return strings.Join(names, " ")
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
