package asp

import (
	"fmt"
	"testing"
)

// pigeonhole builds the classic PHP(n+1, n) instance: n+1 pigeons in n
// holes, unsatisfiable, with exponentially sized resolution proofs — a
// reliable way to make a CDCL solver burn decisions and conflicts.
func pigeonhole(n int) *Solver {
	s := NewSolver()
	v := func(p, h int) Lit { return PosLit(Var(p*n + h + 1)) }
	for i := 0; i < (n+1)*n; i++ {
		s.NewVar()
	}
	for p := 0; p <= n; p++ {
		clause := make([]Lit, n)
		for h := 0; h < n; h++ {
			clause[h] = v(p, h)
		}
		s.AddClause(clause...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(v(p1, h).Neg(), v(p2, h).Neg())
			}
		}
	}
	return s
}

// TestBudgetExhaustsHardInstance: on a hard UNSAT instance a small
// decision budget stops the search with Exhausted() set, while the
// unbudgeted solver proves UNSAT with Exhausted() false.
func TestBudgetExhaustsHardInstance(t *testing.T) {
	free := pigeonhole(7)
	if free.Solve() {
		t.Fatal("PHP(8,7) reported SAT")
	}
	if free.Exhausted() {
		t.Fatal("unbudgeted solver reports Exhausted")
	}
	need := free.Decisions
	if need < 10 {
		t.Fatalf("PHP(8,7) took only %d decisions; not a budget-worthy instance", need)
	}

	capped := pigeonhole(7)
	capped.SetBudget(need/2, 0)
	if capped.Solve() {
		t.Fatal("budgeted solver reported SAT")
	}
	if !capped.Exhausted() {
		t.Fatal("budgeted solver did not report Exhausted")
	}
	if capped.Decisions > need/2 {
		t.Fatalf("budgeted solver spent %d decisions, cap was %d", capped.Decisions, need/2)
	}
	// An exhausted "false" is indistinguishable from UNSAT by return value
	// alone; Exhausted() is the discriminator callers must consult.
}

// TestConflictBudget: the conflict counter is capped independently.
func TestConflictBudget(t *testing.T) {
	s := pigeonhole(7)
	s.SetBudget(0, 5)
	s.Solve()
	if !s.Exhausted() {
		t.Fatal("conflict budget did not exhaust")
	}
	if s.Conflicts > 6 {
		t.Fatalf("solver ran %d conflicts past a cap of 5", s.Conflicts)
	}
}

// TestBudgetLatches: once exhausted, later Solve calls return immediately
// without further work (the budget is cumulative across calls).
func TestBudgetLatches(t *testing.T) {
	s := pigeonhole(7)
	s.SetBudget(10, 0)
	s.Solve()
	if !s.Exhausted() {
		t.Fatal("did not exhaust")
	}
	d := s.Decisions
	if s.Solve() {
		t.Fatal("latched solver reported SAT")
	}
	if s.Decisions != d {
		t.Fatalf("latched solver kept deciding: %d -> %d", d, s.Decisions)
	}
}

// TestBudgetDeterministic: exhaustion is a pure function of the budget —
// the same instance and cap stop at identical counter values every run.
func TestBudgetDeterministic(t *testing.T) {
	counters := func() string {
		s := pigeonhole(7)
		s.SetBudget(50, 0)
		s.Solve()
		return fmt.Sprintf("d=%d c=%d p=%d", s.Decisions, s.Conflicts, s.Propagations)
	}
	base := counters()
	for i := 0; i < 3; i++ {
		if got := counters(); got != base {
			t.Fatalf("run %d diverged: %s vs %s", i, got, base)
		}
	}
}

// TestStableSolverBudget: the budget threads through the stable-model
// layer — an exhausted StableSolver stops enumerating and reports
// Exhausted, and an ample budget leaves results identical to no budget.
func TestStableSolverBudget(t *testing.T) {
	// A disjunctive program with many stable models (one per 3-coloring).
	text := `
node(a). node(b). node(c). node(d).
edge(a,b). edge(b,c). edge(c,d). edge(d,a).
col(X,r) | col(X,g) | col(X,bl) :- node(X).
:- edge(X,Y), col(X,C), col(Y,C).
`
	prog, err := ParseProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := prog.Ground()
	if err != nil {
		t.Fatal(err)
	}

	free := NewStableSolver(gp)
	models := 0
	free.Enumerate(func([]bool) bool { models++; return true })
	if models == 0 {
		t.Fatal("4-cycle 3-coloring has no models?")
	}
	if free.Exhausted() {
		t.Fatal("unbudgeted stable solver reports Exhausted")
	}

	capped := NewStableSolver(gp)
	capped.SetBudget(1, 0)
	got := 0
	capped.Enumerate(func([]bool) bool { got++; return true })
	if !capped.Exhausted() {
		t.Fatal("1-decision budget did not exhaust stable enumeration")
	}
	if got >= models {
		t.Fatalf("budgeted enumeration found all %d models", models)
	}

	ample := NewStableSolver(gp)
	ample.SetBudget(1_000_000, 1_000_000)
	got = 0
	ample.Enumerate(func([]bool) bool { got++; return true })
	if ample.Exhausted() || got != models {
		t.Fatalf("ample budget: %d models (want %d), exhausted=%v", got, models, ample.Exhausted())
	}
}
