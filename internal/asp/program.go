package asp

import (
	"fmt"
	"sort"
	"strings"
)

// AtomID identifies a ground atom within a GroundProgram, numbered from 0.
type AtomID int32

// GroundRule is a ground disjunctive rule
//
//	Head[0] ∨ ... ∨ Head[n] ← Pos[0], ..., Pos[m], ¬Neg[0], ..., ¬Neg[k].
//
// An empty head denotes an integrity constraint.
type GroundRule struct {
	Head []AtomID
	Pos  []AtomID
	Neg  []AtomID
}

// GroundProgram is a ground disjunctive logic program.
type GroundProgram struct {
	names []string
	ids   map[string]AtomID
	Rules []GroundRule
	Facts []AtomID // atoms asserted true unconditionally
}

// NewGroundProgram returns an empty program.
func NewGroundProgram() *GroundProgram {
	return &GroundProgram{ids: make(map[string]AtomID)}
}

// Atom interns a named atom and returns its id.
func (p *GroundProgram) Atom(name string) AtomID {
	if id, ok := p.ids[name]; ok {
		return id
	}
	id := AtomID(len(p.names))
	p.names = append(p.names, name)
	p.ids[name] = id
	return id
}

// AnonAtom allocates an unnamed atom (used by generated encodings where
// names are bookkept externally).
func (p *GroundProgram) AnonAtom() AtomID {
	id := AtomID(len(p.names))
	p.names = append(p.names, "")
	return id
}

// Name returns the display name of an atom ("_aN" for anonymous atoms).
func (p *GroundProgram) Name(id AtomID) string {
	if n := p.names[id]; n != "" {
		return n
	}
	return fmt.Sprintf("_a%d", id)
}

// LookupAtom returns the id of a named atom, if interned.
func (p *GroundProgram) LookupAtom(name string) (AtomID, bool) {
	id, ok := p.ids[name]
	return id, ok
}

// NumAtoms returns the number of atoms.
func (p *GroundProgram) NumAtoms() int { return len(p.names) }

// Clone returns an independent copy of the program: rules, facts, and atom
// tables are copied, so atoms and rules added to the clone never touch the
// original. The per-rule Head/Pos/Neg slices are shared — they are
// immutable once added. Cloning an already-grounded base and extending the
// copy is how cached signature programs are specialized per query.
func (p *GroundProgram) Clone() *GroundProgram {
	q := &GroundProgram{
		names: append(make([]string, 0, len(p.names)+8), p.names...),
		ids:   make(map[string]AtomID, len(p.ids)),
		Rules: append(make([]GroundRule, 0, len(p.Rules)+8), p.Rules...),
		Facts: append(make([]AtomID, 0, len(p.Facts)+4), p.Facts...),
	}
	for k, v := range p.ids {
		q.ids[k] = v
	}
	return q
}

// AddRule appends a rule.
func (p *GroundProgram) AddRule(head, pos, neg []AtomID) {
	p.Rules = append(p.Rules, GroundRule{Head: head, Pos: pos, Neg: neg})
}

// AddFact asserts an atom true.
func (p *GroundProgram) AddFact(a AtomID) { p.Facts = append(p.Facts, a) }

// AddConstraint appends an integrity constraint ⊥ ← pos, ¬neg.
func (p *GroundProgram) AddConstraint(pos, neg []AtomID) {
	p.Rules = append(p.Rules, GroundRule{Pos: pos, Neg: neg})
}

// String renders the program in clingo-compatible syntax (one rule per
// line, sorted for stable output).
func (p *GroundProgram) String() string {
	var lines []string
	for _, f := range p.Facts {
		lines = append(lines, p.Name(f)+".")
	}
	for _, r := range p.Rules {
		lines = append(lines, p.renderRule(r))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func (p *GroundProgram) renderRule(r GroundRule) string {
	var b strings.Builder
	for i, h := range r.Head {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(p.Name(h))
	}
	if len(r.Pos)+len(r.Neg) > 0 {
		b.WriteString(" :- ")
		first := true
		for _, a := range r.Pos {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(p.Name(a))
		}
		for _, a := range r.Neg {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString("not " + p.Name(a))
		}
	}
	b.WriteString(".")
	return b.String()
}

// Stats summarizes program size.
func (p *GroundProgram) Stats() string {
	disj := 0
	for _, r := range p.Rules {
		if len(r.Head) > 1 {
			disj++
		}
	}
	return fmt.Sprintf("%d atoms, %d rules (%d disjunctive), %d facts",
		p.NumAtoms(), len(p.Rules), disj, len(p.Facts))
}
