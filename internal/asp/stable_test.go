package asp

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// bruteStableModels enumerates stable models by exhaustive search
// (reference implementation for cross-validation; exponential).
func bruteStableModels(p *GroundProgram) [][]bool {
	n := p.NumAtoms()
	if n > 20 {
		panic("bruteStableModels: too many atoms")
	}
	var models [][]bool
	for bits := 0; bits < 1<<n; bits++ {
		m := make([]bool, n)
		for i := 0; i < n; i++ {
			m[i] = bits&(1<<i) != 0
		}
		if isClassicalModel(p, m) && isMinimalModelOfReduct(p, m) {
			models = append(models, m)
		}
	}
	return models
}

func isClassicalModel(p *GroundProgram, m []bool) bool {
	for _, f := range p.Facts {
		if !m[f] {
			return false
		}
	}
	for _, r := range p.Rules {
		if !ruleSatisfied(r, m) {
			return false
		}
	}
	return true
}

func ruleSatisfied(r GroundRule, m []bool) bool {
	body := true
	for _, b := range r.Pos {
		if !m[b] {
			body = false
		}
	}
	for _, g := range r.Neg {
		if m[g] {
			body = false
		}
	}
	if !body {
		return true
	}
	for _, h := range r.Head {
		if m[h] {
			return true
		}
	}
	return false
}

func isMinimalModelOfReduct(p *GroundProgram, m []bool) bool {
	// Build the reduct w.r.t. m.
	var reduct []GroundRule
	for _, r := range p.Rules {
		drop := false
		for _, g := range r.Neg {
			if m[g] {
				drop = true
				break
			}
		}
		if !drop {
			reduct = append(reduct, GroundRule{Head: r.Head, Pos: r.Pos})
		}
	}
	// m must satisfy the reduct (it does if it is a classical model).
	// Check no strict subset of m satisfies facts + reduct.
	var trueAtoms []AtomID
	for a, tv := range m {
		if tv {
			trueAtoms = append(trueAtoms, AtomID(a))
		}
	}
	k := len(trueAtoms)
	for bits := 0; bits < 1<<k-1; bits++ { // all strict subsets
		sub := make([]bool, len(m))
		for i := 0; i < k; i++ {
			if bits&(1<<i) != 0 {
				sub[trueAtoms[i]] = true
			}
		}
		ok := true
		for _, f := range p.Facts {
			if !sub[f] {
				ok = false
				break
			}
		}
		if ok {
			for _, r := range reduct {
				if !ruleSatisfied(r, sub) {
					ok = false
					break
				}
			}
		}
		if ok {
			return false
		}
	}
	return true
}

func modelKey(m []bool) string {
	var b strings.Builder
	for _, tv := range m {
		if tv {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func collectStable(p *GroundProgram) map[string]bool {
	s := NewStableSolver(p)
	got := map[string]bool{}
	s.Enumerate(func(m []bool) bool {
		got[modelKey(m)] = true
		return true
	})
	return got
}

func wantStable(t *testing.T, p *GroundProgram, wantCount int) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	for _, m := range bruteStableModels(p) {
		want[modelKey(m)] = true
	}
	if wantCount >= 0 && len(want) != wantCount {
		t.Fatalf("brute force found %d stable models, expected %d", len(want), wantCount)
	}
	got := collectStable(p)
	if len(got) != len(want) {
		t.Fatalf("solver found %d stable models, brute force %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("solver missed stable model %s", k)
		}
	}
	return got
}

func TestStableSimpleFactsAndRules(t *testing.T) {
	p := NewGroundProgram()
	a, b, c := p.Atom("a"), p.Atom("b"), p.Atom("c")
	p.AddFact(a)
	p.AddRule([]AtomID{b}, []AtomID{a}, nil) // b :- a.
	_ = c                                    // c stays false
	wantStable(t, p, 1)
	s := NewStableSolver(p)
	m := s.NextStable()
	if m == nil || !m[a] || !m[b] || m[c] {
		t.Fatalf("model = %v", m)
	}
}

func TestStableNegationChoice(t *testing.T) {
	// a :- not b.  b :- not a.  Two stable models {a}, {b}.
	p := NewGroundProgram()
	a, b := p.Atom("a"), p.Atom("b")
	p.AddRule([]AtomID{a}, nil, []AtomID{b})
	p.AddRule([]AtomID{b}, nil, []AtomID{a})
	wantStable(t, p, 2)
}

func TestStableNoModelOddLoop(t *testing.T) {
	// a :- not a.  No stable model.
	p := NewGroundProgram()
	a := p.Atom("a")
	p.AddRule([]AtomID{a}, nil, []AtomID{a})
	wantStable(t, p, 0)
	s := NewStableSolver(p)
	if s.HasStableModel() {
		t.Fatal("HasStableModel = true")
	}
}

func TestStableDisjunctionMinimality(t *testing.T) {
	// a | b.  Stable models {a}, {b} — not {a,b}.
	p := NewGroundProgram()
	a, b := p.Atom("a"), p.Atom("b")
	p.AddRule([]AtomID{a, b}, nil, nil)
	got := wantStable(t, p, 2)
	if got[modelKey([]bool{true, true})] {
		t.Fatal("non-minimal model {a,b} reported stable")
	}
}

func TestStableDisjunctionWithDependence(t *testing.T) {
	// a | b.  c :- a.  c :- b.  Models {a,c}, {b,c}.
	p := NewGroundProgram()
	a, b, c := p.Atom("a"), p.Atom("b"), p.Atom("c")
	p.AddRule([]AtomID{a, b}, nil, nil)
	p.AddRule([]AtomID{c}, []AtomID{a}, nil)
	p.AddRule([]AtomID{c}, []AtomID{b}, nil)
	got := wantStable(t, p, 2)
	for k := range got {
		if !strings.HasSuffix(k, "1") {
			t.Fatalf("model %s misses c", k)
		}
	}
}

func TestStableHeadCycleDisjunction(t *testing.T) {
	// a | b.  a :- b.  b :- a.  Only minimal model containing one of a,b is
	// forced up to {a,b}; is {a,b} stable? Reduct = program (no negation);
	// minimal models of the reduct: need a or b, and each implies the other,
	// so {a,b} is the unique minimal model → stable.
	p := NewGroundProgram()
	a, b := p.Atom("a"), p.Atom("b")
	p.AddRule([]AtomID{a, b}, nil, nil)
	p.AddRule([]AtomID{a}, []AtomID{b}, nil)
	p.AddRule([]AtomID{b}, []AtomID{a}, nil)
	wantStable(t, p, 1)
}

func TestStableConstraint(t *testing.T) {
	// a | b.  :- a.  Single stable model {b}.
	p := NewGroundProgram()
	a, b := p.Atom("a"), p.Atom("b")
	p.AddRule([]AtomID{a, b}, nil, nil)
	p.AddConstraint([]AtomID{a}, nil)
	got := wantStable(t, p, 1)
	want := []bool{false, true}
	if !got[modelKey(want)] {
		t.Fatal("expected model {b}")
	}
}

func TestStableNegationSupport(t *testing.T) {
	// b :- not a. a never derivable => {b} is the unique stable model;
	// {a} is a classical model of the completion-free clause form but has
	// no support, so it must be rejected.
	p := NewGroundProgram()
	p.Atom("a")
	b := p.Atom("b")
	p.AddRule([]AtomID{b}, nil, []AtomID{p.Atom("a")})
	got := wantStable(t, p, 1)
	if !got[modelKey([]bool{false, true})] {
		t.Fatal("expected {b}")
	}
}

func TestStablePositiveLoopUnsupported(t *testing.T) {
	// a :- b.  b :- a.  Unique stable model ∅.
	p := NewGroundProgram()
	a, b := p.Atom("a"), p.Atom("b")
	p.AddRule([]AtomID{a}, []AtomID{b}, nil)
	p.AddRule([]AtomID{b}, []AtomID{a}, nil)
	got := wantStable(t, p, 1)
	if !got[modelKey([]bool{false, false})] {
		t.Fatal("expected empty model")
	}
}

func TestCautious(t *testing.T) {
	// a | b.  c :- a.  c :- b.  Cautious: c (and not a, not b).
	p := NewGroundProgram()
	a, b, c := p.Atom("a"), p.Atom("b"), p.Atom("c")
	p.AddRule([]AtomID{a, b}, nil, nil)
	p.AddRule([]AtomID{c}, []AtomID{a}, nil)
	p.AddRule([]AtomID{c}, []AtomID{b}, nil)
	s := NewStableSolver(p)
	kept, hasModel := s.Cautious([]AtomID{a, b, c})
	if !hasModel {
		t.Fatal("hasModel = false")
	}
	if len(kept) != 1 || kept[0] != c {
		t.Fatalf("cautious = %v, want [c]", kept)
	}
}

func TestCautiousNoModels(t *testing.T) {
	p := NewGroundProgram()
	a := p.Atom("a")
	p.AddRule([]AtomID{a}, nil, []AtomID{a})
	s := NewStableSolver(p)
	kept, hasModel := s.Cautious([]AtomID{a})
	if hasModel {
		t.Fatal("hasModel = true for model-free program")
	}
	if len(kept) != 1 {
		t.Fatal("vacuous cautious semantics violated")
	}
}

func TestCautiousAllKept(t *testing.T) {
	p := NewGroundProgram()
	a, b := p.Atom("a"), p.Atom("b")
	p.AddFact(a)
	p.AddRule([]AtomID{b}, []AtomID{a}, nil)
	s := NewStableSolver(p)
	kept, hasModel := s.Cautious([]AtomID{a, b})
	if !hasModel || len(kept) != 2 {
		t.Fatalf("cautious = %v hasModel=%v", kept, hasModel)
	}
}

func TestEnumerateLimit(t *testing.T) {
	// Three independent choices: 8 stable models; stop after 3.
	p := NewGroundProgram()
	for i := 0; i < 3; i++ {
		a := p.AnonAtom()
		b := p.AnonAtom()
		p.AddRule([]AtomID{a, b}, nil, nil)
	}
	s := NewStableSolver(p)
	n := 0
	s.Enumerate(func(m []bool) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("enumerated %d, want 3", n)
	}
	s2 := NewStableSolver(p)
	total := s2.Enumerate(func([]bool) bool { return true })
	if total != 8 {
		t.Fatalf("total models = %d, want 8", total)
	}
}

func TestStableRandomProgramsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nAtoms := 2 + rng.Intn(5) // 2..6
		p := NewGroundProgram()
		atoms := make([]AtomID, nAtoms)
		for i := range atoms {
			atoms[i] = p.AnonAtom()
		}
		nRules := 1 + rng.Intn(6)
		for i := 0; i < nRules; i++ {
			pick := func(max int) []AtomID {
				k := rng.Intn(max + 1)
				out := make([]AtomID, 0, k)
				for j := 0; j < k; j++ {
					out = append(out, atoms[rng.Intn(nAtoms)])
				}
				return out
			}
			head := pick(2)
			pos := pick(2)
			neg := pick(2)
			p.AddRule(head, pos, neg)
		}
		if rng.Intn(2) == 0 {
			p.AddFact(atoms[rng.Intn(nAtoms)])
		}

		want := map[string]bool{}
		for _, m := range bruteStableModels(p) {
			want[modelKey(m)] = true
		}
		got := collectStable(p)
		if len(got) != len(want) {
			t.Fatalf("trial %d: solver %d models, brute %d\nprogram:\n%s", trial, len(got), len(want), p.String())
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing model %s\nprogram:\n%s", trial, k, p.String())
			}
		}
	}
}

func TestCautiousAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		nAtoms := 2 + rng.Intn(5)
		p := NewGroundProgram()
		atoms := make([]AtomID, nAtoms)
		for i := range atoms {
			atoms[i] = p.AnonAtom()
		}
		for i := 0; i < 1+rng.Intn(6); i++ {
			pick := func(max int) []AtomID {
				k := rng.Intn(max + 1)
				out := make([]AtomID, 0, k)
				for j := 0; j < k; j++ {
					out = append(out, atoms[rng.Intn(nAtoms)])
				}
				return out
			}
			p.AddRule(pick(2), pick(2), pick(2))
		}
		models := bruteStableModels(p)
		wantCautious := map[AtomID]bool{}
		for _, a := range atoms {
			inAll := true
			for _, m := range models {
				if !m[a] {
					inAll = false
					break
				}
			}
			if inAll {
				wantCautious[a] = true
			}
		}
		s := NewStableSolver(p)
		kept, hasModel := s.Cautious(atoms)
		if hasModel != (len(models) > 0) {
			t.Fatalf("trial %d: hasModel=%v, brute models=%d", trial, hasModel, len(models))
		}
		gotSet := map[AtomID]bool{}
		for _, a := range kept {
			gotSet[a] = true
		}
		// Deduplicate atoms slice (atoms may repeat in candidates? they don't).
		if len(models) > 0 {
			for _, a := range atoms {
				if gotSet[a] != wantCautious[a] {
					t.Fatalf("trial %d: atom %d cautious=%v want %v\nprogram:\n%s",
						trial, a, gotSet[a], wantCautious[a], p.String())
				}
			}
		}
	}
}

func TestProgramString(t *testing.T) {
	p := NewGroundProgram()
	a, b, c := p.Atom("a"), p.Atom("b"), p.Atom("c")
	p.AddFact(a)
	p.AddRule([]AtomID{b, c}, []AtomID{a}, []AtomID{c})
	out := p.String()
	wantLines := []string{"a.", "b | c :- a, not c."}
	gotLines := strings.Split(out, "\n")
	sort.Strings(wantLines)
	if len(gotLines) != 2 || gotLines[0] != wantLines[0] || gotLines[1] != wantLines[1] {
		t.Fatalf("program string:\n%s", out)
	}
	if !strings.Contains(p.Stats(), "3 atoms") {
		t.Fatalf("stats: %s", p.Stats())
	}
}

func TestBrave(t *testing.T) {
	// a | b.  c :- a.  c :- b.  Brave: a, b, c all appear in some model.
	p := NewGroundProgram()
	a, b, c := p.Atom("a"), p.Atom("b"), p.Atom("c")
	p.AddRule([]AtomID{a, b}, nil, nil)
	p.AddRule([]AtomID{c}, []AtomID{a}, nil)
	p.AddRule([]AtomID{c}, []AtomID{b}, nil)
	s := NewStableSolver(p)
	brave, hasModel := s.Brave([]AtomID{a, b, c})
	if !hasModel || len(brave) != 3 {
		t.Fatalf("brave = %v hasModel=%v", brave, hasModel)
	}
}

func TestBraveExcludesImpossible(t *testing.T) {
	// a :- not b.  b :- not a.  :- b.   Only model {a}; b not brave.
	p := NewGroundProgram()
	a, b := p.Atom("a"), p.Atom("b")
	p.AddRule([]AtomID{a}, nil, []AtomID{b})
	p.AddRule([]AtomID{b}, nil, []AtomID{a})
	p.AddConstraint([]AtomID{b}, nil)
	s := NewStableSolver(p)
	brave, hasModel := s.Brave([]AtomID{a, b})
	if !hasModel || len(brave) != 1 || brave[0] != a {
		t.Fatalf("brave = %v", brave)
	}
}

func TestBraveNoModels(t *testing.T) {
	p := NewGroundProgram()
	a := p.Atom("a")
	p.AddRule([]AtomID{a}, nil, []AtomID{a})
	s := NewStableSolver(p)
	brave, hasModel := s.Brave([]AtomID{a})
	if hasModel || len(brave) != 0 {
		t.Fatalf("brave = %v hasModel=%v", brave, hasModel)
	}
}

func TestBraveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 100; trial++ {
		nAtoms := 2 + rng.Intn(5)
		p := NewGroundProgram()
		atoms := make([]AtomID, nAtoms)
		for i := range atoms {
			atoms[i] = p.AnonAtom()
		}
		for i := 0; i < 1+rng.Intn(6); i++ {
			pick := func(max int) []AtomID {
				k := rng.Intn(max + 1)
				out := make([]AtomID, 0, k)
				for j := 0; j < k; j++ {
					out = append(out, atoms[rng.Intn(nAtoms)])
				}
				return out
			}
			p.AddRule(pick(2), pick(2), pick(2))
		}
		models := bruteStableModels(p)
		wantBrave := map[AtomID]bool{}
		for _, m := range models {
			for _, a := range atoms {
				if m[a] {
					wantBrave[a] = true
				}
			}
		}
		s := NewStableSolver(p)
		brave, hasModel := s.Brave(atoms)
		if hasModel != (len(models) > 0) {
			t.Fatalf("trial %d: hasModel=%v models=%d", trial, hasModel, len(models))
		}
		gotSet := map[AtomID]bool{}
		for _, a := range brave {
			gotSet[a] = true
		}
		for _, a := range atoms {
			if gotSet[a] != wantBrave[a] {
				t.Fatalf("trial %d: atom %d brave=%v want %v\nprogram:\n%s",
					trial, a, gotSet[a], wantBrave[a], p.String())
			}
		}
	}
}

func TestAcceptorOnNormalProgram(t *testing.T) {
	// Choice between a and b; the acceptor rejects models containing a by
	// learning ¬a, leaving exactly the b-model.
	p := NewGroundProgram()
	a, b := p.Atom("a"), p.Atom("b")
	p.AddRule([]AtomID{a}, nil, []AtomID{b})
	p.AddRule([]AtomID{b}, nil, []AtomID{a})
	s := NewStableSolver(p)
	s.Acceptor = func(m []bool) [][]Lit {
		if m[a] {
			return [][]Lit{{s.AtomLit(a, false)}}
		}
		return nil
	}
	n := s.Enumerate(func(m []bool) bool {
		if m[a] || !m[b] {
			t.Fatal("rejected model returned")
		}
		return true
	})
	if n != 1 {
		t.Fatalf("models = %d, want 1", n)
	}
	if s.TheoryRejects == 0 {
		t.Fatal("acceptor never rejected")
	}
}

func TestAcceptorOnDisjunctiveProgram(t *testing.T) {
	// a | b | c. Reject any model containing c.
	p := NewGroundProgram()
	a, b, c := p.Atom("a"), p.Atom("b"), p.Atom("c")
	p.AddRule([]AtomID{a, b, c}, nil, nil)
	s := NewStableSolver(p)
	s.Acceptor = func(m []bool) [][]Lit {
		if m[c] {
			return [][]Lit{{s.AtomLit(c, false)}}
		}
		return nil
	}
	seen := map[AtomID]bool{}
	s.Enumerate(func(m []bool) bool {
		for _, x := range []AtomID{a, b, c} {
			if m[x] {
				seen[x] = true
			}
		}
		return true
	})
	if seen[c] || !seen[a] || !seen[b] {
		t.Fatalf("seen = %v", seen)
	}
}
