// Package asp implements disjunctive logic programs under the stable model
// semantics: a ground-program representation, a relational grounder, a CDCL
// SAT core, a stable-model solver (minimal-model generation plus
// reduct-minimality checking), model enumeration, and cautious reasoning.
//
// It substitutes for the clingo solver used in the paper (see DESIGN.md §2).
package asp

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
)

// Var is a SAT variable, numbered from 1.
type Var int32

// Lit is a SAT literal: variable with sign. Encoded as 2v for the positive
// literal and 2v+1 for the negative literal.
type Lit int32

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1 | 1) }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Sign reports whether the literal is negative.
func (l Lit) Sign() bool { return l&1 == 1 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	lbd     int32 // literal-block distance at learn time (0 for problem clauses)
	deleted bool
}

type watch struct {
	c       *clause
	blocker Lit
}

// Solver is an incremental CDCL SAT solver in the MiniSat lineage:
// two-literal watches, first-UIP conflict learning, VSIDS-style activities,
// phase saving (false-first by default, which biases models toward being
// subset-small — useful for minimal-model generation), Luby restarts, and
// solving under assumptions.
type Solver struct {
	nVars    int
	clauses  []*clause
	learnts  []*clause
	watches  [][]watch // indexed by Lit
	assign   []lbool   // indexed by Var
	level    []int32   // indexed by Var
	reason   []*clause // indexed by Var
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	claInc   float64
	heap     varHeap
	phase    []bool // saved polarity per var (true = assign true first)

	seen   []bool
	ok     bool // false once a top-level conflict is derived
	model  modelSnapshot
	cancel *atomic.Bool    // cooperative cancellation; nil = never
	ctx    context.Context // context-based cancellation; nil = never

	// lbdSeen/lbdTick stamp decision levels while computing the LBD of a
	// freshly learnt clause, avoiding a per-conflict allocation.
	lbdSeen []int64
	lbdTick int64

	// maxLearnts is the clause-database reduction trigger: once the learnt
	// store crosses it, reduceDB deletes the worst half of the removable
	// clauses and the trigger grows geometrically. Persistent solvers would
	// otherwise accumulate learnt clauses without bound.
	maxLearnts int

	// conflictAssumps is the failed-assumption set from the last
	// unsatisfiable SolveUnderAssumptions call (see FailedAssumptions).
	conflictAssumps []Lit

	// Budget: cooperative effort limits over the Decisions and Conflicts
	// counters, measured relative to the SetBudget call (0 = unlimited).
	// Crossing a limit sets exhausted and makes in-flight and future Solve
	// calls return false promptly until the budget is re-armed. Unlike
	// wall-clock timeouts the cutoff point is a deterministic,
	// machine-independent function of the clause database.
	maxDecisions, maxConflicts   int64
	baseDecisions, baseConflicts int64
	exhausted                    bool

	// Stats. Restarts counts Luby budget renewals after the initial one of
	// each Solve call (i.e. genuine search restarts). AssumptionSolves
	// counts Solve calls made under at least one assumption; Reductions and
	// ClausesDeleted track clause-database reduction work.
	Conflicts, Decisions, Propagations, Restarts int64
	AssumptionSolves, ClausesDeleted, Reductions int64
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true, maxLearnts: 4000}
	// Var 0 is unused; keep slots so indexing is direct.
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.act = &s.activity
	return s
}

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	s.nVars++
	v := Var(s.nVars)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

// AddClause adds a clause. It returns false if the solver becomes
// trivially unsatisfiable at the top level.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("asp: AddClause while not at decision level 0")
	}
	// Normalize: drop duplicate and false literals; detect tautologies and
	// satisfied clauses.
	norm := make([]Lit, 0, len(lits))
	seen := make(map[Lit]bool, len(lits))
	for _, l := range lits {
		switch {
		case s.valueLit(l) == lTrue, seen[l.Neg()]:
			return true // already satisfied / tautology
		case s.valueLit(l) == lFalse, seen[l]:
			continue
		default:
			seen[l] = true
			norm = append(norm, l)
		}
	}
	switch len(norm) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(norm[0], nil) {
			s.ok = false
			return false
		}
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: norm}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watch{c: c, blocker: l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watch{c: c, blocker: l0})
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.valueLit(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assign[v] = boolToLbool(!l.Sign())
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[l]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.valueLit(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.deleted {
				continue
			}
			// Ensure the false literal is at position 1.
			falseLit := l.Neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				kept = append(kept, watch{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watch{c: c, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watch{c: c, blocker: first})
			if s.valueLit(first) == lFalse {
				// Conflict: keep remaining watches, restore, return.
				for wi++; wi < len(ws); wi++ {
					kept = append(kept, ws[wi])
				}
				s.watches[l] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(first, c)
		}
		s.watches[l] = kept
	}
	return nil
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.heap.push(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.claInc /= 0.999
}

// analyze performs first-UIP learning and returns the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		if confl.learnt {
			s.bumpClause(confl)
		}
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Neg()
			break
		}
		confl = s.reason[v]
	}
	// Clear seen flags for the learnt literals and compute backtrack level.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

// clauseLBD computes the literal-block distance of a freshly learnt
// clause: the number of distinct decision levels among its literals.
// Low-LBD ("glue") clauses connect few levels and are empirically the
// learnt clauses worth keeping forever.
func (s *Solver) clauseLBD(lits []Lit) int32 {
	s.lbdTick++
	var lbd int32
	for _, l := range lits {
		lv := int(s.level[l.Var()])
		for len(s.lbdSeen) <= lv {
			s.lbdSeen = append(s.lbdSeen, 0)
		}
		if s.lbdSeen[lv] != s.lbdTick {
			s.lbdSeen[lv] = s.lbdTick
			lbd++
		}
	}
	return lbd
}

func (s *Solver) recordLearnt(lits []Lit) {
	if len(lits) == 1 {
		s.enqueue(lits[0], nil)
		return
	}
	c := &clause{lits: lits, learnt: true, act: s.claInc, lbd: s.clauseLBD(lits)}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.enqueue(lits[0], c)
}

// reduceDB bounds the learnt-clause store. Once it crosses maxLearnts,
// the removable clauses — long, unlocked, non-glue — are stably sorted
// worst-first (highest LBD, then lowest activity, then insertion order,
// so the choice is deterministic) and the worst half is deleted. Glue
// clauses (LBD <= 2), binary clauses, and clauses currently acting as a
// propagation reason are always kept. The trigger then grows
// geometrically so long runs settle into a bounded steady state.
func (s *Solver) reduceDB() {
	if len(s.learnts) < s.maxLearnts {
		return
	}
	removable := make([]*clause, 0, len(s.learnts))
	for _, c := range s.learnts {
		if len(c.lits) > 2 && c.lbd > 2 && !c.locked(s) {
			removable = append(removable, c)
		}
	}
	if len(removable) < 100 {
		// Nearly everything is protected; grow the trigger instead of
		// thrashing on every conflict.
		s.maxLearnts += s.maxLearnts / 10
		return
	}
	s.Reductions++
	sort.SliceStable(removable, func(i, j int) bool {
		if removable[i].lbd != removable[j].lbd {
			return removable[i].lbd > removable[j].lbd
		}
		return removable[i].act < removable[j].act
	})
	drop := removable[:len(removable)/2]
	for _, c := range drop {
		c.deleted = true
	}
	s.ClausesDeleted += int64(len(drop))
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !c.deleted {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	s.maxLearnts += s.maxLearnts / 10
}

func (c *clause) locked(s *Solver) bool {
	v := c.lits[0].Var()
	return s.reason[v] == c && s.assign[v] != lUndef
}

// Simplify removes clauses satisfied by the level-0 trail, reclaiming
// retired incremental sessions (clauses guarded by an activation literal
// become satisfied once the guard's negation is asserted as a unit). It
// must be called at decision level 0 and returns false if the solver is
// already in a top-level conflict.
func (s *Solver) Simplify() bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("asp: Simplify while not at decision level 0")
	}
	if s.propagate() != nil {
		s.ok = false
		return false
	}
	s.removeSatisfied(&s.learnts)
	s.removeSatisfied(&s.clauses)
	return true
}

func (s *Solver) removeSatisfied(list *[]*clause) {
	kept := (*list)[:0]
	for _, c := range *list {
		sat := false
		for _, l := range c.lits {
			if s.valueLit(l) == lTrue && s.level[l.Var()] == 0 {
				sat = true
				break
			}
		}
		if !sat {
			kept = append(kept, c)
			continue
		}
		c.deleted = true
		// Level-0 assignments are never resolved on, so dropping the
		// reason pointer of a satisfied reason clause is safe.
		if v := c.lits[0].Var(); s.reason[v] == c {
			s.reason[v] = nil
		}
	}
	*list = kept
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i >= int64(1)<<k {
			continue
		}
		return luby(i - (int64(1) << (k - 1)) + 1)
	}
}

// SetCancel installs a cooperative cancellation flag: when it becomes
// true, in-flight and future Solve calls return false promptly (check
// Canceled to distinguish cancellation from unsatisfiability).
func (s *Solver) SetCancel(flag *atomic.Bool) { s.cancel = flag }

// SetContext installs a context checked cooperatively inside the search
// loop: once ctx is done, in-flight and future Solve calls return false
// promptly (check Canceled to distinguish cancellation from
// unsatisfiability). It composes with SetCancel; either source cancels.
func (s *Solver) SetContext(ctx context.Context) { s.ctx = ctx }

// Canceled reports whether the cancellation flag is set or the installed
// context is done.
func (s *Solver) Canceled() bool {
	if s.cancel != nil && s.cancel.Load() {
		return true
	}
	return s.ctx != nil && s.ctx.Err() != nil
}

// SetBudget installs effort limits on the Decisions and Conflicts
// counters, measured from the moment of the call (0 = unlimited). Once
// either limit is reached, in-flight and future Solve calls return false
// promptly; check Exhausted to distinguish budget exhaustion from
// unsatisfiability. The budget spans all Solve calls until the next
// SetBudget, so a limit bounds the total effort of an enumeration or
// cautious-reasoning session, not a single search. Re-arming clears the
// Exhausted latch — this is what lets a persistent solver grant each
// incremental session a fresh budget.
func (s *Solver) SetBudget(maxDecisions, maxConflicts int64) {
	s.maxDecisions = maxDecisions
	s.maxConflicts = maxConflicts
	s.baseDecisions = s.Decisions
	s.baseConflicts = s.Conflicts
	s.exhausted = false
}

// Exhausted reports whether a SetBudget limit was reached. It is sticky
// until the budget is re-armed: every later Solve call returns false, and
// any result derived from the interrupted search must be discarded by the
// caller.
func (s *Solver) Exhausted() bool { return s.exhausted }

// overBudget checks the budget limits (cheap integer compares, safe to run
// every search iteration) and latches exhausted on the first crossing.
func (s *Solver) overBudget() bool {
	if s.exhausted {
		return true
	}
	if (s.maxDecisions > 0 && s.Decisions-s.baseDecisions >= s.maxDecisions) ||
		(s.maxConflicts > 0 && s.Conflicts-s.baseConflicts >= s.maxConflicts) {
		s.exhausted = true
		return true
	}
	return false
}

// Solve searches for a model under the given assumptions. It returns true
// and fixes the model (read with ModelValue) or false if unsatisfiable
// under the assumptions (or the solver was cancelled). The solver
// backtracks to level 0 before returning.
func (s *Solver) Solve(assumptions ...Lit) bool {
	return s.SolveUnderAssumptions(assumptions)
}

// SolveUnderAssumptions searches for a model with every literal in
// assumps held true. Assumptions are placed as decisions at levels
// 1..len(assumps) rather than added as unit clauses, so learnt clauses
// derived under them are ordinary resolvents of the clause database: any
// dependence on an assumption shows up as that assumption's negation
// inside the learnt clause, which keeps every learnt clause valid for
// future calls under different assumptions. On an assumption-level
// failure the final-conflict analysis records which assumptions were
// jointly responsible (FailedAssumptions); the solver itself stays
// consistent and reusable. The solver backtracks to level 0 before
// returning, so calls can alternate assumption sets indefinitely without
// teardown.
func (s *Solver) SolveUnderAssumptions(assumps []Lit) bool {
	s.conflictAssumps = s.conflictAssumps[:0]
	if !s.ok {
		return false
	}
	if len(assumps) > 0 {
		s.AssumptionSolves++
	}
	defer s.cancelUntil(0)

	restart := int64(0)
	conflictsLeft := int64(0)
	model := false
	checkTick := 0

	for {
		checkTick++
		if checkTick&1023 == 0 && s.Canceled() {
			return false
		}
		if s.overBudget() {
			return false
		}
		if conflictsLeft <= 0 {
			restart++
			if restart > 1 {
				s.Restarts++
			}
			conflictsLeft = 100 * luby(restart)
			// Assumption-aware restart: back off to the assumption prefix
			// instead of level 0, keeping the assumptions (and everything
			// they propagate) in place across restarts.
			s.cancelUntil(len(assumps))
		}
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflictsLeft--
			if s.decisionLevel() == 0 {
				s.ok = false
				return false
			}
			learnt, btLevel := s.analyze(confl)
			// The asserting level may sit inside the assumption prefix;
			// backtracking there cancels later assumptions, which the
			// placement loop below simply re-places.
			s.cancelUntil(btLevel)
			s.recordLearnt(learnt)
			s.decayActivities()
			continue
		}
		// Place assumptions as decisions.
		if s.decisionLevel() < len(assumps) {
			a := assumps[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				s.newDecisionLevel() // dummy level to keep indexing aligned
				continue
			case lFalse:
				s.analyzeFinal(a)
				return false
			}
			s.newDecisionLevel()
			s.enqueue(a, nil)
			continue
		}
		s.reduceDB()
		// Decide.
		v := s.pickBranchVar()
		if v == 0 {
			model = true
			break
		}
		s.Decisions++
		s.newDecisionLevel()
		if s.phase[v] {
			s.enqueue(PosLit(v), nil)
		} else {
			s.enqueue(NegLit(v), nil)
		}
	}
	if model {
		s.saveModel()
	}
	return model
}

// analyzeFinal runs final-conflict analysis for a failed assumption a
// (one whose negation is already forced when the placement loop reaches
// it): walking reasons backward from ¬a, it collects the subset of
// earlier assumption decisions that participated in forcing ¬a. The
// result — a together with those assumptions — is stored for
// FailedAssumptions. Unlike regular conflict analysis nothing is learnt
// here: the incompatibility is already implied by the clause database
// plus the assumption prefix, so no clause mentioning assumption
// literals needs to be (or is) added.
func (s *Solver) analyzeFinal(a Lit) {
	s.conflictAssumps = append(s.conflictAssumps[:0], a)
	if s.decisionLevel() == 0 {
		return // ¬a holds at the top level; a alone is the conflict
	}
	s.seen[a.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			// A decision above level 0 inside the placement loop is an
			// assumption; record it as part of the incompatible set.
			s.conflictAssumps = append(s.conflictAssumps, s.trail[i])
		} else {
			for _, q := range s.reason[v].lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[a.Var()] = false
}

// FailedAssumptions returns the subset of the assumptions passed to the
// last SolveUnderAssumptions call found jointly incompatible with the
// clause database (empty when the last call was satisfiable or failed
// for a non-assumption reason). The slice is reused across calls.
func (s *Solver) FailedAssumptions() []Lit { return s.conflictAssumps }

func (s *Solver) pickBranchVar() Var {
	for s.heap.size() > 0 {
		v := s.heap.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return 0
}

// modelSnapshot holds the last model found.
type modelSnapshot []lbool

func (s *Solver) saveModel() {
	// Variables added since the last solve (incremental Extend) grow assign
	// past the snapshot; reallocate rather than copy a truncated prefix.
	if len(s.model) < len(s.assign) {
		s.model = make(modelSnapshot, len(s.assign))
	}
	copy(s.model, s.assign)
}

// ModelValue reports the last model's value for v (only meaningful after a
// successful Solve).
func (s *Solver) ModelValue(v Var) bool { return s.model[v] == lTrue }

// SetPhase sets the preferred polarity of v for future decisions.
func (s *Solver) SetPhase(v Var, b bool) { s.phase[v] = b }

// Okay reports whether the solver is still consistent at the top level.
func (s *Solver) Okay() bool { return s.ok }
