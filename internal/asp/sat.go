// Package asp implements disjunctive logic programs under the stable model
// semantics: a ground-program representation, a relational grounder, a CDCL
// SAT core, a stable-model solver (minimal-model generation plus
// reduct-minimality checking), model enumeration, and cautious reasoning.
//
// It substitutes for the clingo solver used in the paper (see DESIGN.md §2).
package asp

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Var is a SAT variable, numbered from 1.
type Var int32

// Lit is a SAT literal: variable with sign. Encoded as 2v for the positive
// literal and 2v+1 for the negative literal.
type Lit int32

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1 | 1) }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Sign reports whether the literal is negative.
func (l Lit) Sign() bool { return l&1 == 1 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

type watch struct {
	c       *clause
	blocker Lit
}

// Solver is an incremental CDCL SAT solver in the MiniSat lineage:
// two-literal watches, first-UIP conflict learning, VSIDS-style activities,
// phase saving (false-first by default, which biases models toward being
// subset-small — useful for minimal-model generation), Luby restarts, and
// solving under assumptions.
type Solver struct {
	nVars    int
	clauses  []*clause
	learnts  []*clause
	watches  [][]watch // indexed by Lit
	assign   []lbool   // indexed by Var
	level    []int32   // indexed by Var
	reason   []*clause // indexed by Var
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	claInc   float64
	heap     varHeap
	phase    []bool // saved polarity per var (true = assign true first)

	seen   []bool
	ok     bool // false once a top-level conflict is derived
	model  modelSnapshot
	cancel *atomic.Bool    // cooperative cancellation; nil = never
	ctx    context.Context // context-based cancellation; nil = never

	// Budget: cooperative effort limits over the cumulative Decisions and
	// Conflicts counters (0 = unlimited). Crossing a limit sets exhausted
	// and makes in-flight and future Solve calls return false promptly.
	// Unlike wall-clock timeouts the cutoff point is a deterministic,
	// machine-independent function of the clause database.
	maxDecisions, maxConflicts int64
	exhausted                  bool

	// Stats. Restarts counts Luby budget renewals after the initial one of
	// each Solve call (i.e. genuine search restarts).
	Conflicts, Decisions, Propagations, Restarts int64
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true}
	// Var 0 is unused; keep slots so indexing is direct.
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.act = &s.activity
	return s
}

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	s.nVars++
	v := Var(s.nVars)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

// AddClause adds a clause. It returns false if the solver becomes
// trivially unsatisfiable at the top level.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("asp: AddClause while not at decision level 0")
	}
	// Normalize: drop duplicate and false literals; detect tautologies and
	// satisfied clauses.
	norm := make([]Lit, 0, len(lits))
	seen := make(map[Lit]bool, len(lits))
	for _, l := range lits {
		switch {
		case s.valueLit(l) == lTrue, seen[l.Neg()]:
			return true // already satisfied / tautology
		case s.valueLit(l) == lFalse, seen[l]:
			continue
		default:
			seen[l] = true
			norm = append(norm, l)
		}
	}
	switch len(norm) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(norm[0], nil) {
			s.ok = false
			return false
		}
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: norm}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watch{c: c, blocker: l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watch{c: c, blocker: l0})
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.valueLit(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assign[v] = boolToLbool(!l.Sign())
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[l]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.valueLit(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.deleted {
				continue
			}
			// Ensure the false literal is at position 1.
			falseLit := l.Neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				kept = append(kept, watch{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watch{c: c, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watch{c: c, blocker: first})
			if s.valueLit(first) == lFalse {
				// Conflict: keep remaining watches, restore, return.
				for wi++; wi < len(ws); wi++ {
					kept = append(kept, ws[wi])
				}
				s.watches[l] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(first, c)
		}
		s.watches[l] = kept
	}
	return nil
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.heap.push(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.claInc /= 0.999
}

// analyze performs first-UIP learning and returns the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Neg()
			break
		}
		confl = s.reason[v]
	}
	// Clear seen flags for the learnt literals and compute backtrack level.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

func (s *Solver) recordLearnt(lits []Lit) {
	if len(lits) == 1 {
		s.enqueue(lits[0], nil)
		return
	}
	c := &clause{lits: lits, learnt: true, act: s.claInc}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.enqueue(lits[0], c)
}

func (s *Solver) reduceDB() {
	if len(s.learnts) < 4000 {
		return
	}
	// Drop the least active half of long learnt clauses.
	type entry struct {
		c *clause
	}
	var long []*clause
	for _, c := range s.learnts {
		if len(c.lits) > 2 && !c.locked(s) {
			long = append(long, c)
		}
	}
	if len(long) < 100 {
		return
	}
	// Partial selection: mark lowest-activity half as deleted.
	// Simple threshold on median via sampling is overkill; sort.
	sortClausesByAct(long)
	for _, c := range long[:len(long)/2] {
		c.deleted = true
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !c.deleted {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
}

func (c *clause) locked(s *Solver) bool {
	v := c.lits[0].Var()
	return s.reason[v] == c && s.assign[v] != lUndef
}

func sortClausesByAct(cs []*clause) {
	// insertion-free: simple sort
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].act < cs[j-1].act; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i >= int64(1)<<k {
			continue
		}
		return luby(i - (int64(1) << (k - 1)) + 1)
	}
}

// SetCancel installs a cooperative cancellation flag: when it becomes
// true, in-flight and future Solve calls return false promptly (check
// Canceled to distinguish cancellation from unsatisfiability).
func (s *Solver) SetCancel(flag *atomic.Bool) { s.cancel = flag }

// SetContext installs a context checked cooperatively inside the search
// loop: once ctx is done, in-flight and future Solve calls return false
// promptly (check Canceled to distinguish cancellation from
// unsatisfiability). It composes with SetCancel; either source cancels.
func (s *Solver) SetContext(ctx context.Context) { s.ctx = ctx }

// Canceled reports whether the cancellation flag is set or the installed
// context is done.
func (s *Solver) Canceled() bool {
	if s.cancel != nil && s.cancel.Load() {
		return true
	}
	return s.ctx != nil && s.ctx.Err() != nil
}

// SetBudget installs effort limits on the cumulative Decisions and
// Conflicts counters (0 = unlimited). Once either limit is reached,
// in-flight and future Solve calls return false promptly; check Exhausted
// to distinguish budget exhaustion from unsatisfiability. Budgets count
// across all Solve calls of the solver's lifetime, so a limit bounds the
// total effort of an enumeration or cautious-reasoning session, not a
// single search.
func (s *Solver) SetBudget(maxDecisions, maxConflicts int64) {
	s.maxDecisions = maxDecisions
	s.maxConflicts = maxConflicts
}

// Exhausted reports whether a SetBudget limit was reached. It is sticky:
// once set, every later Solve call returns false, and any result derived
// from the interrupted search must be discarded by the caller.
func (s *Solver) Exhausted() bool { return s.exhausted }

// overBudget checks the budget limits (cheap integer compares, safe to run
// every search iteration) and latches exhausted on the first crossing.
func (s *Solver) overBudget() bool {
	if s.exhausted {
		return true
	}
	if (s.maxDecisions > 0 && s.Decisions >= s.maxDecisions) ||
		(s.maxConflicts > 0 && s.Conflicts >= s.maxConflicts) {
		s.exhausted = true
		return true
	}
	return false
}

// Solve searches for a model under the given assumptions. It returns true
// and fixes the model (read with ModelValue) or false if unsatisfiable
// under the assumptions (or the solver was cancelled). The solver
// backtracks to level 0 before returning.
func (s *Solver) Solve(assumptions ...Lit) bool {
	if !s.ok {
		return false
	}
	defer s.cancelUntil(0)

	restart := int64(0)
	conflictsLeft := int64(0)
	model := false
	checkTick := 0

	for {
		checkTick++
		if checkTick&1023 == 0 && s.Canceled() {
			return false
		}
		if s.overBudget() {
			return false
		}
		if conflictsLeft <= 0 {
			restart++
			if restart > 1 {
				s.Restarts++
			}
			conflictsLeft = 100 * luby(restart)
			s.cancelUntil(0)
		}
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflictsLeft--
			if s.decisionLevel() == 0 {
				s.ok = false
				return false
			}
			learnt, btLevel := s.analyze(confl)
			// Never backtrack past assumptions: if the asserting level is
			// inside the assumption prefix we handle it by re-deciding.
			s.cancelUntil(btLevel)
			s.recordLearnt(learnt)
			s.decayActivities()
			continue
		}
		// Place assumptions as decisions.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				s.newDecisionLevel() // dummy level to keep indexing aligned
				continue
			case lFalse:
				return false
			}
			s.newDecisionLevel()
			s.enqueue(a, nil)
			continue
		}
		s.reduceDB()
		// Decide.
		v := s.pickBranchVar()
		if v == 0 {
			model = true
			break
		}
		s.Decisions++
		s.newDecisionLevel()
		if s.phase[v] {
			s.enqueue(PosLit(v), nil)
		} else {
			s.enqueue(NegLit(v), nil)
		}
	}
	if model {
		s.saveModel()
	}
	return model
}

func (s *Solver) pickBranchVar() Var {
	for s.heap.size() > 0 {
		v := s.heap.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return 0
}

// modelSnapshot holds the last model found.
type modelSnapshot []lbool

func (s *Solver) saveModel() {
	if s.model == nil {
		s.model = make(modelSnapshot, len(s.assign))
	}
	copy(s.model, s.assign)
}

// ModelValue reports the last model's value for v (only meaningful after a
// successful Solve).
func (s *Solver) ModelValue(v Var) bool { return s.model[v] == lTrue }

// SetPhase sets the preferred polarity of v for future decisions.
func (s *Solver) SetPhase(v Var, b bool) { s.phase[v] = b }

// Okay reports whether the solver is still consistent at the top level.
func (s *Solver) Okay() bool { return s.ok }
