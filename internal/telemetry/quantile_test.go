package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// TestHistogramQuantile pins quantile estimates against a known bimodal
// observation set: 50 fast (10µs → bucket (8µs,16µs]) and 50 slow
// (100ms → bucket (65.536ms,131.072ms]). Linear interpolation inside the
// log₂ bucket gives exact expected values.
func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 50; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 50; i++ {
		h.Observe(100 * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		// target 50 falls exactly at the top of the fast bucket.
		{0.50, 1.6e-5},
		// target 95 is 90% through the slow bucket: 0.065536 * 1.9.
		{0.95, 0.1245184},
		// target 99 is 98% through the slow bucket: 0.065536 * 1.98.
		{0.99, 0.12976128},
		// out-of-range q values clamp.
		{-1, 1.6e-5 / 50 * 0}, // q=0 → target 0 → start of first occupied bucket interpolation
	} {
		got := h.Quantile(tc.q)
		if tc.q < 0 {
			// q clamps to 0: target 0 lands in the fast bucket at fraction 0,
			// i.e. the bucket's lower bound.
			if !almostEqual(got, 8e-6) {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, 8e-6)
			}
			continue
		}
		if !almostEqual(got, tc.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := h.Quantile(2); !almostEqual(got, 0.131072) {
		t.Errorf("Quantile(2) = %v, want clamp to p100 = 0.131072", got)
	}
}

// TestHistogramQuantileEdges covers the empty histogram, a nil receiver,
// and the unbounded overflow bucket (which reports its lower bound rather
// than inventing an upper one).
func TestHistogramQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
	h.Observe(100 * time.Hour) // overflow bucket
	want := bucketUpperSeconds(numBuckets - 2)
	if got := h.Quantile(0.99); !almostEqual(got, want) {
		t.Fatalf("overflow quantile = %v, want lower bound %v", got, want)
	}
}

// TestSnapshotQuantiles checks p50/p95/p99 flow into the JSON snapshot.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("xr_q_seconds")
	for i := 0; i < 50; i++ {
		h.Observe(10 * time.Microsecond)
		h.Observe(100 * time.Millisecond)
	}
	snap := r.Snapshot()
	hs, ok := snap.Histograms["xr_q_seconds"]
	if !ok {
		t.Fatalf("histogram missing from snapshot: %v", snap.Histograms)
	}
	if !almostEqual(hs.P50, 1.6e-5) {
		t.Errorf("p50 = %v, want 1.6e-5", hs.P50)
	}
	if !almostEqual(hs.P95, 0.1245184) {
		t.Errorf("p95 = %v, want 0.1245184", hs.P95)
	}
	if !almostEqual(hs.P99, 0.12976128) {
		t.Errorf("p99 = %v, want 0.12976128", hs.P99)
	}
}

// TestWritePrometheusLabeledHistogram pins the exposition of a labeled
// histogram: the le label merges into the series' own label set, sum and
// count keep the labels, and the family gets exactly one TYPE line even
// with several labeled variants.
func TestWritePrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Labeled("xr_q_seconds", "route", "query")).Observe(3 * time.Microsecond)
	r.Histogram(Labeled("xr_q_seconds", "route", "explain")).Observe(3 * time.Microsecond)
	r.Histogram("xr_q_seconds").Observe(3 * time.Microsecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE xr_q_seconds histogram"); n != 1 {
		t.Errorf("want exactly one TYPE line for the histogram family, got %d:\n%s", n, out)
	}
	for _, want := range []string{
		"xr_q_seconds_bucket{le=\"4e-06\"} 1\n",
		"xr_q_seconds_bucket{route=\"query\",le=\"4e-06\"} 1\n",
		"xr_q_seconds_bucket{route=\"query\",le=\"+Inf\"} 1\n",
		"xr_q_seconds_sum{route=\"query\"} 3e-06\n",
		"xr_q_seconds_count{route=\"query\"} 1\n",
		"xr_q_seconds_bucket{route=\"explain\",le=\"+Inf\"} 1\n",
		"xr_q_seconds_sum 3e-06\n",
		"xr_q_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Malformed shapes from the old renderer must be gone.
	for _, bad := range []string{
		"}_bucket", "}_sum", "}_count", "# TYPE xr_q_seconds{",
	} {
		if strings.Contains(out, bad) {
			t.Errorf("exposition contains malformed fragment %q:\n%s", bad, out)
		}
	}
}

// TestLabeledHostileValues round-trips hostile tenant names — backslashes,
// newlines, quotes, and invalid UTF-8 — through Labeled and the Prometheus
// exposition. The golden lines are exactly what a conforming parser
// expects: \\ for backslash, \n for newline, \" for quote, and raw bytes
// otherwise.
func TestLabeledHostileValues(t *testing.T) {
	for _, tc := range []struct {
		value string
		want  string // full series name
	}{
		{`back\slash`, `m_total{tenant="back\\slash"}`},
		{"new\nline", `m_total{tenant="new\nline"}`},
		{`quo"te`, `m_total{tenant="quo\"te"}`},
		{"\\\n\"", `m_total{tenant="\\\n\""}`},
		// Invalid UTF-8 passes through byte-for-byte (no U+FFFD mangling).
		{"\xff\xfe", "m_total{tenant=\"\xff\xfe\"}"},
	} {
		got := Labeled("m_total", "tenant", tc.value)
		if got != tc.want {
			t.Errorf("Labeled(%q) = %q, want %q", tc.value, got, tc.want)
			continue
		}
		r := NewRegistry()
		r.Counter(got).Add(1)
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		wantLine := tc.want + " 1\n"
		if !strings.Contains(sb.String(), wantLine) {
			t.Errorf("exposition for %q missing %q:\n%s", tc.value, wantLine, sb.String())
		}
	}
}
