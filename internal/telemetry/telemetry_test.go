package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every instrument method on nil receivers and a
// nil registry: the disabled-telemetry fast path must never panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram value")
	}
	sp := StartSpan(h)
	if d := sp.End(); d != 0 {
		t.Fatalf("no-op span returned %v", d)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.CounterNames() != nil {
		t.Fatal("nil registry counter names")
	}
}

// TestInstrumentInterning checks the same name yields the same instrument.
func TestInstrumentInterning(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not interned")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("gauge not interned")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Fatal("histogram not interned")
	}
	r.Counter("a").Add(2)
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	r.Gauge("b").Set(10)
	r.Gauge("b").Add(-4)
	if got := r.Gauge("b").Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

// TestHistogramBuckets pins the log₂ bucketing: 0, 1µs, 1ms, 1s land in
// increasing buckets and the sum/count aggregate correctly.
func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	durations := []time.Duration{0, time.Microsecond, time.Millisecond, time.Second}
	for _, d := range durations {
		h.Observe(d)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := time.Second + time.Millisecond + time.Microsecond
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	last := -1
	for _, d := range durations {
		i := bucketIndex(d)
		if i <= last {
			t.Fatalf("bucketIndex(%v) = %d, not increasing past %d", d, i, last)
		}
		last = i
	}
	// Overflow clamps to the last bucket.
	if i := bucketIndex(100 * time.Hour); i != numBuckets-1 {
		t.Fatalf("overflow bucket = %d, want %d", i, numBuckets-1)
	}
	h.Observe(-time.Second) // negative durations clamp to zero
	if h.Sum() != wantSum {
		t.Fatalf("negative observation changed the sum: %v", h.Sum())
	}
}

// TestSnapshotDeterministicJSON checks two registries built in different
// orders with equal values marshal byte-identically.
func TestSnapshotDeterministicJSON(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("xr_one").Add(1)
	a.Counter("xr_two").Add(2)
	a.Gauge("g").Set(7)
	b.Gauge("g").Set(7)
	b.Counter("xr_two").Add(2)
	b.Counter("xr_one").Add(1)
	ja, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("snapshots differ:\n%s\n%s", ja, jb)
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; totals
// must be exact and the race detector must stay quiet.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("c%d", i%4) // contend on registration too
			for j := 0; j < perG; j++ {
				r.Counter(name).Inc()
				r.Histogram("h").Observe(time.Duration(j) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	total := int64(0)
	for _, name := range r.CounterNames() {
		total += r.Counter(name).Value()
	}
	if total != goroutines*perG {
		t.Fatalf("counter total = %d, want %d", total, goroutines*perG)
	}
	if got := r.Histogram("h").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestWritePrometheus checks the text exposition shape: type lines, sorted
// order, cumulative buckets ending at +Inf == count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("xr_b_total").Add(2)
	r.Counter("xr_a_total").Add(1)
	r.Gauge("xr_g").Set(5)
	r.Histogram("xr_h_seconds").Observe(3 * time.Millisecond)
	r.Histogram("xr_h_seconds").Observe(2 * time.Second)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE xr_a_total counter\nxr_a_total 1\n",
		"# TYPE xr_b_total counter\nxr_b_total 2\n",
		"# TYPE xr_g gauge\nxr_g 5\n",
		"# TYPE xr_h_seconds histogram\n",
		`xr_h_seconds_bucket{le="+Inf"} 2`,
		"xr_h_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "xr_a_total") > strings.Index(out, "xr_b_total") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

// TestServeEndpoints boots the HTTP endpoint on an ephemeral port and
// fetches every mounted path.
func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("xr_served_total").Add(9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "xr_served_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["xr_served_total"] != 9 {
		t.Fatalf("/metrics.json counters = %v", snap.Counters)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "xr_metrics") {
		t.Fatalf("/debug/vars missing xr_metrics:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "pprof") {
		t.Fatalf("/debug/pprof/ unexpected body:\n%s", body)
	}
}

// TestLabeled checks labeled-name construction: sorted label keys for a
// canonical series name, value escaping, and pass-through without labels.
func TestLabeled(t *testing.T) {
	for _, tc := range []struct {
		name string
		kv   []string
		want string
	}{
		{"q_total", nil, "q_total"},
		{"q_total", []string{"scenario", "genome"}, `q_total{scenario="genome"}`},
		{"q_total", []string{"b", "2", "a", "1"}, `q_total{a="1",b="2"}`},
		{"q_total", []string{"scenario", `we"ird\n` + "\n"}, `q_total{scenario="we\"ird\\n\n"}`},
		{"q_total", []string{"odd"}, `q_total{odd=""}`},
	} {
		if got := Labeled(tc.name, tc.kv...); got != tc.want {
			t.Errorf("Labeled(%q, %v) = %q, want %q", tc.name, tc.kv, got, tc.want)
		}
	}
	// Canonical: the same label set in any order names the same series.
	a := Labeled("m", "x", "1", "y", "2")
	b := Labeled("m", "y", "2", "x", "1")
	if a != b {
		t.Errorf("label order changed the series name: %q vs %q", a, b)
	}
}

// TestWritePrometheusLabeled checks labeled series group under one # TYPE
// line per metric family, as the exposition format requires.
func TestWritePrometheusLabeled(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Labeled("xr_server_queries_total", "scenario", "genome")).Add(3)
	reg.Counter(Labeled("xr_server_queries_total", "scenario", "tricolor")).Add(5)
	reg.Counter("xr_server_queries_total").Add(8)
	reg.Gauge(Labeled("xr_server_inflight", "scenario", "genome")).Set(1)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE xr_server_queries_total counter"); n != 1 {
		t.Errorf("want exactly one TYPE line for the family, got %d:\n%s", n, out)
	}
	for _, want := range []string{
		"xr_server_queries_total 8\n",
		`xr_server_queries_total{scenario="genome"} 3` + "\n",
		`xr_server_queries_total{scenario="tricolor"} 5` + "\n",
		"# TYPE xr_server_inflight gauge\n",
		`xr_server_inflight{scenario="genome"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	// The unlabeled series must precede its labeled variants (family
	// grouping puts the TYPE line first, then series in sorted order).
	if strings.Index(out, "xr_server_queries_total 8") > strings.Index(out, `scenario="genome"`) {
		t.Errorf("series ordering within family wrong:\n%s", out)
	}
}
