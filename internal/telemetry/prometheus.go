package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4), in sorted name order. Counters map
// to `counter`, gauges to `gauge`, histograms to `histogram` with
// cumulative `_bucket{le="..."}` series, `_sum` (seconds), and `_count`.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	type histCopy struct {
		count   int64
		sumNs   int64
		buckets [numBuckets]int64
	}
	hists := make(map[string]histCopy, len(r.histograms))
	for name, h := range r.histograms {
		hc := histCopy{count: h.count.Load(), sumNs: h.sumNs.Load()}
		for i := range h.buckets {
			hc.buckets[i] = h.buckets[i].Load()
		}
		hists[name] = hc
	}
	r.mu.Unlock()

	if err := writeScalars(w, counters, "counter"); err != nil {
		return err
	}
	if err := writeScalars(w, gauges, "gauge"); err != nil {
		return err
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	sort.SliceStable(histNames, func(i, j int) bool { return baseName(histNames[i]) < baseName(histNames[j]) })
	lastFamily := ""
	for _, name := range histNames {
		h := hists[name]
		// A Labeled histogram name carries its own label set; the le label
		// must merge into those braces ("f_bucket{scenario="a",le="1"}"),
		// and sum/count keep them ("f_sum{scenario="a"}"). Rendering the
		// labels after a suffixed name would be malformed exposition.
		fam, labels := splitSeries(name)
		if fam != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
				return err
			}
			lastFamily = fam
		}
		cum := int64(0)
		for i := 0; i < numBuckets; i++ {
			cum += h.buckets[i]
			if h.buckets[i] == 0 && i != numBuckets-1 {
				continue // only emit buckets that change the cumulative count
			}
			le := "+Inf"
			if i < numBuckets-1 {
				le = formatFloat(bucketUpperSeconds(i))
			}
			if i == numBuckets-1 {
				cum = h.count // +Inf bucket always equals the total count
			}
			leLabel := fmt.Sprintf("le=%q", le)
			if labels != "" {
				leLabel = labels + "," + leLabel
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, leLabel, cum); err != nil {
				return err
			}
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			fam, suffix, formatFloat(float64(h.sumNs)/1e9), fam, suffix, h.count); err != nil {
			return err
		}
	}
	return nil
}

// splitSeries splits a (possibly Labeled) series name into its family and
// the label text without braces: `f{a="b"}` → ("f", `a="b"`); plain names
// return ("f", "").
func splitSeries(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// writeScalars renders counters or gauges. Labeled series (see Labeled)
// are grouped under their base family: series sort by (family, series
// name) and each family gets exactly one # TYPE line, so
// `q_total{scenario="a"}` and `q_total{scenario="b"}` share one family
// header as the exposition format requires.
func writeScalars(w io.Writer, m map[string]int64, typ string) error {
	keys := sortedKeys(m)
	sort.SliceStable(keys, func(i, j int) bool { return baseName(keys[i]) < baseName(keys[j]) })
	lastFamily := ""
	for _, name := range keys {
		if fam := baseName(name); fam != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
			lastFamily = fam
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, m[name]); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
