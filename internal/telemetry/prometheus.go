package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4), in sorted name order. Counters map
// to `counter`, gauges to `gauge`, histograms to `histogram` with
// cumulative `_bucket{le="..."}` series, `_sum` (seconds), and `_count`.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	type histCopy struct {
		count   int64
		sumNs   int64
		buckets [numBuckets]int64
	}
	hists := make(map[string]histCopy, len(r.histograms))
	for name, h := range r.histograms {
		hc := histCopy{count: h.count.Load(), sumNs: h.sumNs.Load()}
		for i := range h.buckets {
			hc.buckets[i] = h.buckets[i].Load()
		}
		hists[name] = hc
	}
	r.mu.Unlock()

	if err := writeScalars(w, counters, "counter"); err != nil {
		return err
	}
	if err := writeScalars(w, gauges, "gauge"); err != nil {
		return err
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i := 0; i < numBuckets; i++ {
			cum += h.buckets[i]
			if h.buckets[i] == 0 && i != numBuckets-1 {
				continue // only emit buckets that change the cumulative count
			}
			le := "+Inf"
			if i < numBuckets-1 {
				le = formatFloat(bucketUpperSeconds(i))
			}
			if i == numBuckets-1 {
				cum = h.count // +Inf bucket always equals the total count
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			name, formatFloat(float64(h.sumNs)/1e9), name, h.count); err != nil {
			return err
		}
	}
	return nil
}

// writeScalars renders counters or gauges. Labeled series (see Labeled)
// are grouped under their base family: series sort by (family, series
// name) and each family gets exactly one # TYPE line, so
// `q_total{scenario="a"}` and `q_total{scenario="b"}` share one family
// header as the exposition format requires.
func writeScalars(w io.Writer, m map[string]int64, typ string) error {
	keys := sortedKeys(m)
	sort.SliceStable(keys, func(i, j int) bool { return baseName(keys[i]) < baseName(keys[j]) })
	lastFamily := ""
	for _, name := range keys {
		if fam := baseName(name); fam != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
			lastFamily = fam
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, m[name]); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
