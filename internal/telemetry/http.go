package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// publishedRegistry backs the expvar variable "xr_metrics": expvar.Publish
// panics on duplicate names, so the variable is registered once and reads
// whatever registry is currently being served.
var (
	publishedRegistry atomic.Pointer[Registry]
	expvarOnce        sync.Once
)

// Handler returns an http.Handler exposing reg:
//
//	/metrics         Prometheus text exposition
//	/metrics.json    the deterministic Snapshot JSON
//	/debug/vars      expvar (including the registry as "xr_metrics")
//	/debug/pprof/    net/http/pprof profiles
func Handler(reg *Registry) http.Handler {
	publishedRegistry.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("xr_metrics", expvar.Func(func() interface{} {
			return publishedRegistry.Load().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint; Close shuts it down.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP metrics endpoint for reg on addr (host:port; use
// ":0" for an ephemeral port, then read Addr). The server runs until
// Close is called.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
