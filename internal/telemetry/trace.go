package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// This file upgrades the flat Span timer (telemetry.go) into a hierarchical
// execution trace: a Tracer collects SpanNodes with parent links, the
// engines attach one node per phase (exchange, chase sub-phases, query,
// signature program), and WriteChromeTrace exports the tree in the Chrome
// trace-event JSON format, loadable in about:tracing and Perfetto.
//
// Design constraints match the rest of the package:
//
//   - Nil-safe: every method on a nil *Tracer or nil *ActiveSpan is a
//     no-op, so the engines start/end spans unconditionally and a disabled
//     timeline costs a nil check per phase.
//   - Race-clean: span registration takes the tracer lock once at Start and
//     once at End; arguments are buffered on the (goroutine-local)
//     ActiveSpan and only published at End.
//
// Lanes map to trace-viewer threads ("tid"): spans carry the worker lane
// they ran on, so a parallel query phase renders as one swimlane per pool
// worker while the parent/child links (exported under args) preserve the
// logical tree regardless of lane.

// SpanID identifies one span within a Tracer. The zero value NoSpan means
// "no parent" (a root span).
type SpanID int64

// NoSpan is the parent of root spans.
const NoSpan SpanID = 0

// SpanNode is one finished span of the hierarchical trace. The JSON tags
// are a wire contract: the server returns span trees inline on ?trace=1
// and from /v1/requests/{id}/trace, so field names are pinned snake_case.
type SpanNode struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Lane is the worker lane the span ran on (0 = the caller's goroutine);
	// it becomes the Chrome trace "tid".
	Lane int `json:"lane,omitempty"`
	// Start is the offset from the tracer's epoch; Dur the span length.
	// time.Duration marshals as integer nanoseconds.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// Args are sorted key/value annotations (signature keys, counters, ...).
	Args []SpanArg `json:"args,omitempty"`
}

// SpanArg is one span annotation.
type SpanArg struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Tracer collects a hierarchical span tree. The zero value is not usable;
// construct with NewTracer. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	epoch time.Time

	mu        sync.Mutex
	next      int64
	requestID string
	spans     []SpanNode
}

// NewTracer returns an empty tracer whose epoch is "now"; span start
// offsets are relative to it.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetRequestID associates the tracer with one HTTP request; exports stamp
// the ID so traces from concurrent tenants stay distinguishable. Safe on a
// nil tracer.
func (t *Tracer) SetRequestID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.requestID = id
	t.mu.Unlock()
}

// RequestID returns the ID set by SetRequestID ("" on a nil tracer).
func (t *Tracer) RequestID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requestID
}

// ActiveSpan is an in-flight span; call End to record it. A nil *ActiveSpan
// (from a nil tracer) is a no-op.
type ActiveSpan struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	lane   int
	start  time.Time
	args   []SpanArg
}

// StartSpan opens a span under parent (NoSpan for a root). Safe on a nil
// tracer, returning a nil no-op span.
func (t *Tracer) StartSpan(parent SpanID, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.next++
	id := SpanID(t.next)
	t.mu.Unlock()
	return &ActiveSpan{t: t, id: id, parent: parent, name: name, start: time.Now()}
}

// ID returns the span's id (NoSpan on a nil span), for parenting children.
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return NoSpan
	}
	return s.id
}

// SetLane assigns the worker lane the span runs on (default 0).
func (s *ActiveSpan) SetLane(lane int) {
	if s != nil {
		s.lane = lane
	}
}

// Arg attaches one key/value annotation. Safe on a nil span.
func (s *ActiveSpan) Arg(key, value string) {
	if s != nil {
		s.args = append(s.args, SpanArg{Key: key, Value: value})
	}
}

// ArgInt attaches one integer annotation. Safe on a nil span.
func (s *ActiveSpan) ArgInt(key string, value int64) {
	s.Arg(key, itoa64(value))
}

// End records the span into its tracer. Safe on a nil span.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.add(SpanNode{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Lane:   s.lane,
		Start:  s.start.Sub(s.t.epoch),
		Dur:    time.Since(s.start),
		Args:   s.args,
	})
}

// AddSpan records a synthesized span with explicit timing — used for
// sub-phases measured by code that is not tracer-aware (e.g. the chase's
// tgd/violation split, reconstructed from its Stats). It returns the new
// span's id so further children can hang off it. Safe on a nil tracer.
func (t *Tracer) AddSpan(parent SpanID, name string, lane int, start time.Time, dur time.Duration, args ...SpanArg) SpanID {
	if t == nil {
		return NoSpan
	}
	t.mu.Lock()
	t.next++
	id := SpanID(t.next)
	t.mu.Unlock()
	t.add(SpanNode{ID: id, Parent: parent, Name: name, Lane: lane, Start: start.Sub(t.epoch), Dur: dur, Args: args})
	return id
}

func (t *Tracer) add(n SpanNode) {
	sort.Slice(n.Args, func(i, j int) bool { return n.Args[i].Key < n.Args[j].Key })
	t.mu.Lock()
	t.spans = append(t.spans, n)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans, sorted by start offset with
// ties broken by id (stable for concurrent recorders). Nil tracer: nil.
func (t *Tracer) Spans() []SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanNode, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// chromeEvent is one Chrome trace-event ("X" = complete event, "M" =
// metadata). Field names are fixed by the trace-event format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format (the form
// Perfetto and about:tracing both accept).
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the span tree in Chrome trace-event JSON.
// Every span becomes one complete ("X") event: ts/dur in microseconds,
// pid 1, tid = lane, and the span's id, parent id, and annotations under
// args — so the logical tree survives even when parallel spans render on
// different lanes. Lanes get thread_name metadata ("main", "worker-N").
// Safe on a nil tracer (writes an empty trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	reqID := t.RequestID()
	lanes := map[int]bool{}
	out := chromeTrace{TraceEvents: []chromeEvent{}}
	for _, s := range spans {
		lanes[s.Lane] = true
		args := make(map[string]string, len(s.Args)+3)
		for _, a := range s.Args {
			args[a.Key] = a.Value
		}
		args["id"] = itoa64(int64(s.ID))
		if s.Parent != NoSpan {
			args["parent"] = itoa64(int64(s.Parent))
		}
		if reqID != "" {
			args["request_id"] = reqID
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "xr",
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.Lane,
		})
		out.TraceEvents[len(out.TraceEvents)-1].Args = args
	}
	laneIDs := make([]int, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Ints(laneIDs)
	for _, l := range laneIDs {
		name := "main"
		if l > 0 {
			name = "worker-" + itoa64(int64(l))
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: l,
			Args: map[string]string{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// itoa64 formats an int64 without pulling strconv into the hot path's
// import graph (matching the package's no-dependency style).
func itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
