package telemetry

import "context"

// Request-ID context plumbing. The server assigns every HTTP request an ID
// and threads it through context.Context into the engines, which stamp it
// onto TraceEvents and span annotations — so an access-log line, a
// Prometheus exemplar-style trace fetch, and a Perfetto export from
// concurrent tenants can all be correlated back to one request. The key is
// unexported: this package is the one vocabulary both internal/server and
// internal/xr share without depending on each other.

type ctxKey int

const requestIDKey ctxKey = iota

// ContextWithRequestID returns a context carrying the request ID. An empty
// id returns ctx unchanged.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFromContext returns the request ID carried by ctx, or "" when
// none was attached (library use outside the daemon).
func RequestIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
