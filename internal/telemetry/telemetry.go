// Package telemetry is a dependency-free metrics layer for the XR engines:
// a registry of named atomic counters, gauges, and log-scaled latency
// histograms, plus a lightweight span API for timing phases.
//
// Design constraints (see DESIGN.md §10):
//
//   - Race-clean: instruments are updated with atomics only; the registry
//     lock is taken solely when an instrument is first registered. The
//     shared signature-program cache and the worker pools update counters
//     concurrently, so every mutation must commute — which also makes
//     counter totals deterministic at any Parallelism (sums of per-program
//     contributions are order-independent).
//   - Near-zero cost when disabled: every instrument method is nil-safe
//     (a method on a nil *Counter / *Gauge / *Histogram / *Registry is a
//     no-op), so engines hold possibly-nil instrument pointers and call
//     them unconditionally. No branching on a "enabled" flag, no
//     interface dispatch, no allocation.
//   - Deterministic snapshots: Snapshot marshals to JSON with sorted keys
//     (encoding/json sorts map keys), so two registries with equal counter
//     values produce byte-identical counter sections.
package telemetry

import (
	"encoding/json"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (e.g. cache size, workers busy).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by delta (negative allowed). Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numBuckets covers 1µs .. ~1.1h in powers of two; the last bucket is the
// +Inf overflow.
const numBuckets = 33

// Histogram is a log₂-scaled latency histogram: bucket i counts
// observations with duration < 2^i microseconds (cumulative counts are
// reconstructed at exposition time). All updates are atomic.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketIndex maps a duration to its bucket: the bit length of the
// duration in whole microseconds (0µs → bucket 0, 1µs → 1, 1ms → 10, ...).
func bucketIndex(d time.Duration) int {
	us := uint64(d.Microseconds())
	i := bits.Len64(us)
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketUpperSeconds returns bucket i's exclusive upper bound in seconds
// (the last bucket is unbounded).
func bucketUpperSeconds(i int) float64 {
	return float64(uint64(1)<<uint(i)) / 1e6
}

// Observe records one duration. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.buckets[bucketIndex(d)].Add(1)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed durations
// in seconds, reconstructed from the log₂ buckets with linear interpolation
// inside the selected bucket. The estimate is exact at bucket boundaries
// and off by at most a factor of 2 inside a bucket — good enough for the
// p50/p95/p99 operator dashboards it feeds. Observations in the unbounded
// overflow bucket report that bucket's lower bound (a conservative
// under-estimate). Returns 0 on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var buckets [numBuckets]int64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return bucketQuantile(&buckets, h.count.Load(), q)
}

// bucketQuantile implements Quantile over a copied bucket array, so
// Snapshot can reuse it without re-reading the atomics per percentile.
func bucketQuantile(buckets *[numBuckets]int64, count int64, q float64) float64 {
	if count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(count)
	cum := float64(0)
	for i := 0; i < numBuckets; i++ {
		n := float64(buckets[i])
		if n == 0 {
			continue
		}
		if cum+n < target {
			cum += n
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = bucketUpperSeconds(i - 1)
		}
		if i == numBuckets-1 {
			// Unbounded overflow bucket: no upper edge to interpolate to.
			return lower
		}
		upper := bucketUpperSeconds(i)
		return lower + (upper-lower)*((target-cum)/n)
	}
	return 0
}

// Export copies the histogram's state — observation count, summed
// nanoseconds, and the raw log₂ bucket counts — for persistence. The
// bucket slice always has len numBuckets (33). Nil receivers export a
// zero state with a nil bucket slice.
func (h *Histogram) Export() (count, sumNs int64, buckets []int64) {
	if h == nil {
		return 0, 0, nil
	}
	buckets = make([]int64, numBuckets)
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return h.count.Load(), h.sumNs.Load(), buckets
}

// Merge folds a previously Exported state into the histogram (additive,
// so restoring persisted data composes with live observations). Bucket
// slices shorter than numBuckets merge their prefix; longer slices fold
// the excess into the overflow bucket, so a state exported under a
// different bucket count still lands conservatively. Safe on a nil
// receiver (no-op).
func (h *Histogram) Merge(count, sumNs int64, buckets []int64) {
	if h == nil {
		return
	}
	h.count.Add(count)
	h.sumNs.Add(sumNs)
	for i, n := range buckets {
		if i >= numBuckets {
			h.buckets[numBuckets-1].Add(n)
			continue
		}
		h.buckets[i].Add(n)
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration (0 on a nil receiver).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// Span times one phase into a histogram. The zero Span is a no-op, so a
// nil registry yields spans that cost one time.Time comparison to End.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing into h. A nil histogram yields a no-op span.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time and returns it (0 for a no-op span).
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d)
	return d
}

// Labeled builds an instrument name carrying Prometheus-style labels:
// Labeled("xr_server_queries_total", "scenario", "genome") yields
// `xr_server_queries_total{scenario="genome"}`. The labeled name is an
// ordinary registry key — Snapshot sorts it like any other — and
// WritePrometheus renders it as a labeled series of the base family
// (one # TYPE line per base name). Pairs are sorted by label key so the
// same label set always produces the same series name; label values are
// escaped per the exposition format. Odd trailing keys get an empty value.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		p := pair{k: kv[i]}
		if i+1 < len(kv) {
			p.v = kv[i+1]
		}
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline. It works
// byte-wise, not rune-wise: the exposition format treats values as raw
// bytes, and a rune loop would silently rewrite invalid UTF-8 (a hostile
// tenant name) to U+FFFD, changing the series identity.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// baseName strips a Labeled name back to its metric family ("a{b="c"}" →
// "a"); plain names pass through unchanged.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Registry holds named instruments. Instruments are registered on first
// use and never removed; lookups after registration are lock-free at the
// call sites because callers retain the returned pointers.
//
// All methods are safe on a nil *Registry: they return nil instruments,
// whose methods are in turn no-ops — the disabled-telemetry fast path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, registering it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, registering it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, registering it on
// first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the JSON form of one histogram: non-empty buckets
// with their exclusive upper bounds in seconds (the unbounded bucket
// reports UpperSeconds 0), total count, and the sum in seconds.
type HistogramSnapshot struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	// P50/P95/P99 are latency-quantile estimates in seconds, reconstructed
	// from the log₂ buckets (see Histogram.Quantile). Zero when empty.
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	UpperSeconds float64 `json:"le"`
	Count        int64   `json:"count"`
}

// Snapshot is a point-in-time copy of every instrument, shaped for
// deterministic JSON (map keys marshal sorted).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Counters: map[string]int64{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Count:      h.count.Load(),
				SumSeconds: float64(h.sumNs.Load()) / 1e9,
			}
			var buckets [numBuckets]int64
			for i := range h.buckets {
				buckets[i] = h.buckets[i].Load()
			}
			hs.P50 = bucketQuantile(&buckets, hs.Count, 0.50)
			hs.P95 = bucketQuantile(&buckets, hs.Count, 0.95)
			hs.P99 = bucketQuantile(&buckets, hs.Count, 0.99)
			for i := range buckets {
				if n := buckets[i]; n > 0 {
					upper := bucketUpperSeconds(i)
					if i == numBuckets-1 {
						upper = 0 // unbounded overflow bucket
					}
					hs.Buckets = append(hs.Buckets, BucketCount{UpperSeconds: upper, Count: n})
				}
			}
			snap.Histograms[name] = hs
		}
	}
	return snap
}

// MarshalJSON renders the snapshot with sorted keys (encoding/json sorts
// map keys), making equal registries byte-identical.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type plain Snapshot // avoid recursion
	return json.Marshal(plain(s))
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
