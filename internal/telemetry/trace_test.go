package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan(NoSpan, "root")
	if s != nil {
		t.Fatalf("nil tracer StartSpan = %v, want nil", s)
	}
	s.SetLane(3)
	s.Arg("k", "v")
	s.ArgInt("n", 7)
	if got := s.ID(); got != NoSpan {
		t.Fatalf("nil span ID = %d, want NoSpan", got)
	}
	s.End()
	if id := tr.AddSpan(NoSpan, "x", 0, time.Now(), time.Millisecond); id != NoSpan {
		t.Fatalf("nil tracer AddSpan = %d, want NoSpan", id)
	}
	if sp := tr.Spans(); sp != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", sp)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer WriteChromeTrace: %v", err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty trace not JSON: %v", err)
	}
}

func TestTracerHierarchy(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan(NoSpan, "query")
	child := tr.StartSpan(root.ID(), "signature")
	child.SetLane(2)
	child.Arg("signature", "3,7")
	child.ArgInt("candidates", 4)
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "query" || spans[0].Parent != NoSpan {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	if spans[1].Name != "signature" || spans[1].Parent != spans[0].ID {
		t.Fatalf("child span wrong: %+v (root id %d)", spans[1], spans[0].ID)
	}
	if spans[1].Lane != 2 {
		t.Fatalf("child lane = %d, want 2", spans[1].Lane)
	}
	// Args come back sorted by key.
	if len(spans[1].Args) != 2 || spans[1].Args[0].Key != "candidates" || spans[1].Args[1].Value != "3,7" {
		t.Fatalf("child args wrong: %+v", spans[1].Args)
	}
}

func TestTracerAddSpanSynthesized(t *testing.T) {
	tr := NewTracer()
	start := time.Now()
	parent := tr.AddSpan(NoSpan, "exchange", 0, start, 10*time.Millisecond)
	if parent == NoSpan {
		t.Fatal("AddSpan returned NoSpan")
	}
	tr.AddSpan(parent, "chase/tgds", 0, start, 7*time.Millisecond, SpanArg{Key: "rounds", Value: "3"})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[1].Parent != parent || spans[1].Dur != 7*time.Millisecond {
		t.Fatalf("synthesized child wrong: %+v", spans[1])
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan(NoSpan, "query")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := tr.StartSpan(root.ID(), "sig")
				s.SetLane(w + 1)
				s.ArgInt("i", int64(i))
				s.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	spans := tr.Spans()
	if len(spans) != 8*50+1 {
		t.Fatalf("got %d spans, want %d", len(spans), 8*50+1)
	}
	seen := map[SpanID]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestWriteChromeTraceFormat(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan(NoSpan, "query")
	child := tr.StartSpan(root.ID(), "signature 3,7")
	child.SetLane(1)
	child.Arg("signature", "3,7")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace output not JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	var sawChild bool
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Pid != 1 {
				t.Fatalf("pid = %d, want 1", ev.Pid)
			}
			if ev.Args["id"] == "" {
				t.Fatalf("complete event missing id arg: %+v", ev)
			}
			if strings.HasPrefix(ev.Name, "signature") {
				sawChild = true
				if ev.Args["parent"] == "" {
					t.Fatalf("child event missing parent arg: %+v", ev)
				}
				if ev.Tid != 1 {
					t.Fatalf("child tid = %d, want lane 1", ev.Tid)
				}
				if ev.Dur <= 0 {
					t.Fatalf("child dur = %v, want > 0", ev.Dur)
				}
				if ev.Args["signature"] != "3,7" {
					t.Fatalf("child signature arg = %q", ev.Args["signature"])
				}
			}
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event name = %q", ev.Name)
			}
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
	}
	if complete != 2 || !sawChild {
		t.Fatalf("complete=%d sawChild=%v, want 2 complete with child", complete, sawChild)
	}
	if meta != 2 { // lanes 0 and 1
		t.Fatalf("metadata events = %d, want 2", meta)
	}
}

func TestItoa64(t *testing.T) {
	cases := map[int64]string{0: "0", 7: "7", -3: "-3", 12345: "12345", -9007199254740993: "-9007199254740993"}
	for n, want := range cases {
		if got := itoa64(n); got != want {
			t.Fatalf("itoa64(%d) = %q, want %q", n, got, want)
		}
	}
}
