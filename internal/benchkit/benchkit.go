// Package benchkit regenerates every table and figure of the paper's
// evaluation (Section 5.2 and 6.5) against the synthetic genome-browser
// scenario: instance statistics (Tables 1–2), the query suite (Table 3),
// exchange-phase durations (Table 4), per-query runtimes of the monolithic
// (Figure 3) and segmentary (Figure 4) pipelines, the reduction-blowup
// statistic (§5.2), and the headline monolithic-vs-segmentary speedup.
package benchkit

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/genome"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/telemetry"
	"repro/internal/xr"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner executes experiments with shared, cached exchange phases.
type Runner struct {
	// Scale multiplies the paper's instance sizes (1 = paper-scale,
	// default 0.1).
	Scale float64
	// MonoTimeout bounds each monolithic query (0 = none). The paper's
	// monolithic runs at large sizes are effectively unbounded; ours are
	// reported as ">timeout" when exceeded, matching its log-log reading.
	MonoTimeout time.Duration
	// Parallelism is the per-call worker count for both engines (values
	// below 2 run sequentially, matching the paper's setup).
	Parallelism int
	// Progress receives progress notes (nil = quiet).
	Progress io.Writer
	// Metrics, when non-nil, aggregates engine telemetry across every
	// exchange and query the runner executes (see internal/telemetry).
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records a hierarchical span timeline of every
	// exchange and query the runner executes (see internal/telemetry).
	Tracer *telemetry.Tracer

	world     *parser.World
	exchanges map[string]*xr.Exchange
	sources   map[string]*instance.Instance
}

// NewRunner returns a runner with the given scale (0 selects the default
// 0.1) and per-query monolithic timeout.
func NewRunner(scale float64, monoTimeout time.Duration) (*Runner, error) {
	if scale == 0 {
		scale = 0.1
	}
	w, err := genome.NewWorld()
	if err != nil {
		return nil, err
	}
	return &Runner{
		Scale:       scale,
		MonoTimeout: monoTimeout,
		world:       w,
		exchanges:   make(map[string]*xr.Exchange),
		sources:     make(map[string]*instance.Instance),
	}, nil
}

// World exposes the benchmark world (catalog, universe, mapping).
func (r *Runner) World() *parser.World { return r.world }

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, format+"\n", args...)
	}
}

func (r *Runner) profile(name string) (genome.Profile, error) {
	p, ok := genome.ProfileByName(name, r.Scale)
	if !ok {
		return genome.Profile{}, fmt.Errorf("benchkit: unknown profile %q", name)
	}
	return p, nil
}

func (r *Runner) source(name string) (*instance.Instance, error) {
	if in, ok := r.sources[name]; ok {
		return in, nil
	}
	p, err := r.profile(name)
	if err != nil {
		return nil, err
	}
	r.logf("generating %s (%d transcripts, %.1f%% suspect)...", name, p.Transcripts, 100*p.SuspectRate)
	in := genome.Generate(r.world, p)
	r.sources[name] = in
	return in, nil
}

func (r *Runner) exchange(name string) (*xr.Exchange, error) {
	if ex, ok := r.exchanges[name]; ok {
		return ex, nil
	}
	in, err := r.source(name)
	if err != nil {
		return nil, err
	}
	r.logf("exchange phase for %s (%d source facts)...", name, in.Len())
	// Profiling is on for every benchmark exchange: reports embed the
	// hottest signatures, and the profiler's counters land in the metrics
	// snapshot (gated as notes, not work counters, by -compare).
	ex, err := xr.NewExchangeOpts(r.world.M, in, xr.Options{Metrics: r.Metrics, Tracer: r.Tracer, Profiling: true})
	if err != nil {
		return nil, err
	}
	r.exchanges[name] = ex
	return ex, nil
}

// answer runs one segmentary query with the runner's parallelism.
func (r *Runner) answer(ex *xr.Exchange, q *logic.UCQ) (*xr.Result, error) {
	return ex.AnswerOpts(q, xr.Options{Parallelism: r.Parallelism, Metrics: r.Metrics, Tracer: r.Tracer})
}

// monoOptions returns the monolithic engine options for this runner.
func (r *Runner) monoOptions() xr.MonolithicOptions {
	return xr.MonolithicOptions{Timeout: r.MonoTimeout, Parallelism: r.Parallelism, Metrics: r.Metrics, Tracer: r.Tracer}
}

func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// SizeProfiles is the instance-size axis (paper: S3, M3, L3, F3).
var SizeProfiles = []string{"S3", "M3", "L3", "F3"}

// SuspectProfiles is the suspect-rate axis (paper: L0, L3, L9, L20).
var SuspectProfiles = []string{"L0", "L3", "L9", "L20"}

// QueryOrder fixes the row order of the query suite, as in Table 3.
var QueryOrder = []string{"ep1", "ep2", "ep3", "ep15", "ep16", "xr1", "xr2", "xr3", "xr4", "xr5", "xr6"}
