package benchkit

import "testing"

func TestAblationFigure1(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.AblationFigure1(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatal("want one summary row")
	}
	// The corrected encoding must never disagree with brute force.
	if tab.Rows[0][5] != "0" {
		t.Fatalf("corrected encoding wrong on %s instances", tab.Rows[0][5])
	}
}
