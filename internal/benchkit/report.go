package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/profile"
	"repro/internal/telemetry"
)

// ExchangeReport is the machine-readable form of one exchange phase — the
// Table 4 row for an instance, with durations in seconds.
type ExchangeReport struct {
	SourceFacts      int     `json:"source_facts"`
	TotalFacts       int     `json:"total_facts"`
	Violations       int     `json:"violations"`
	Clusters         int     `json:"clusters"`
	SuspectSource    int     `json:"suspect_source"`
	SafeDerivable    int     `json:"safe_derivable"`
	ReduceSeconds    float64 `json:"reduce_seconds"`
	ChaseSeconds     float64 `json:"chase_seconds"`
	EnvelopesSeconds float64 `json:"envelopes_seconds"`
	Seconds          float64 `json:"seconds"`

	Breakdown ExchangeBreakdown `json:"exchange_breakdown"`
}

// ExchangeBreakdown decomposes the chase column: semi-naive fixpoint
// rounds, rule evaluations performed vs skipped by the rule→relation
// dependency index, ground derivations fired, new facts added, instance
// index activity, and the tgd/violation split of the chase wall time.
type ExchangeBreakdown struct {
	ChaseRounds           int     `json:"chase_rounds"`
	ChaseRuleEvals        int     `json:"chase_rule_evals"`
	ChaseRuleSkips        int     `json:"chase_rule_skips"`
	ChaseTriggers         int     `json:"chase_triggers"`
	ChaseDeltaFacts       int     `json:"chase_delta_facts"`
	IndexProbes           uint64  `json:"index_probes"`
	IndexBuilds           uint64  `json:"index_builds"`
	ChaseTgdSeconds       float64 `json:"chase_tgd_seconds"`
	ChaseViolationSeconds float64 `json:"chase_violation_seconds"`
}

// QueryReport is one segmentary query's wall time and stats.
type QueryReport struct {
	Query          string `json:"query"`
	Answers        int    `json:"answers"`
	Candidates     int    `json:"candidates"`
	SafeAccepted   int    `json:"safe_accepted"`
	SolverAccepted int    `json:"solver_accepted"`
	Programs       int    `json:"programs"`
	CacheHits      int    `json:"cache_hits"`
	GroundRules    int    `json:"ground_rules"`
	GroundAtoms    int    `json:"ground_atoms"`
	// DegradedSignatures and UnknownTuples record graceful degradation
	// under partial-results mode; both stay 0 on an unbudgeted run.
	DegradedSignatures int     `json:"degraded_signatures"`
	UnknownTuples      int     `json:"unknown_tuples"`
	Seconds            float64 `json:"seconds"`
}

// BenchReport is the machine-readable result of one benchmark run on a
// single genome profile: host info, the exchange phase, per-query wall
// times, and the full telemetry snapshot (exchange stats plus solver
// counters). It marshals deterministically up to the wall-time fields.
type BenchReport struct {
	Profile     string  `json:"profile"`
	Scale       float64 `json:"scale"`
	Parallelism int     `json:"parallelism"`

	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Exchange ExchangeReport     `json:"exchange"`
	Queries  []QueryReport      `json:"queries"`
	Metrics  telemetry.Snapshot `json:"metrics"`

	// ProfileSolves and HotSignatures embed the run's workload profile:
	// total recorded solves and the top hardest signatures by wall time
	// (deterministic order; wall fields are measured, counters are not).
	// JSON-additive — absent from baselines written before profiling.
	ProfileSolves int64                      `json:"profile_solves,omitempty"`
	HotSignatures []profile.SignatureProfile `json:"hot_signatures,omitempty"`
}

// reportHotSignatures bounds the hottest-signature block a report embeds.
const reportHotSignatures = 10

// Report runs the segmentary pipeline end to end on one profile — the
// exchange phase plus the full Table 3 query suite — and returns the
// machine-readable result. The runner's Metrics registry is used if set;
// otherwise a fresh one is attached for the duration of the run, so the
// report always carries solver counters.
func (r *Runner) Report(profileName string) (*BenchReport, error) {
	if r.Metrics == nil {
		r.Metrics = telemetry.NewRegistry()
	}
	qs, err := r.queries()
	if err != nil {
		return nil, err
	}
	ex, err := r.exchange(profileName)
	if err != nil {
		return nil, err
	}
	st := ex.Stats
	rep := &BenchReport{
		Profile:     profileName,
		Scale:       r.Scale,
		Parallelism: r.Parallelism,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Exchange: ExchangeReport{
			SourceFacts:      st.SourceFacts,
			TotalFacts:       st.TotalFacts,
			Violations:       st.Violations,
			Clusters:         st.Clusters,
			SuspectSource:    st.SuspectSource,
			SafeDerivable:    st.SafeDerivable,
			ReduceSeconds:    st.ReduceDuration.Seconds(),
			ChaseSeconds:     st.ChaseDuration.Seconds(),
			EnvelopesSeconds: st.EnvDuration.Seconds(),
			Seconds:          st.Duration.Seconds(),
			Breakdown: ExchangeBreakdown{
				ChaseRounds:           st.ChaseRounds,
				ChaseRuleEvals:        st.ChaseRuleEvals,
				ChaseRuleSkips:        st.ChaseRuleSkips,
				ChaseTriggers:         st.ChaseTriggers,
				ChaseDeltaFacts:       st.ChaseDeltaFacts,
				IndexProbes:           st.IndexProbes,
				IndexBuilds:           st.IndexBuilds,
				ChaseTgdSeconds:       st.ChaseTgdDuration.Seconds(),
				ChaseViolationSeconds: st.ChaseViolationDuration.Seconds(),
			},
		},
	}
	for _, q := range qs {
		r.logf("report query %s on %s...", q.Name, profileName)
		start := time.Now()
		res, err := r.answer(ex, q)
		if err != nil {
			return nil, fmt.Errorf("benchkit: report query %s: %w", q.Name, err)
		}
		rep.Queries = append(rep.Queries, QueryReport{
			Query:              q.Name,
			Answers:            res.Answers.Len(),
			Candidates:         res.Stats.Candidates,
			SafeAccepted:       res.Stats.SafeAccepted,
			SolverAccepted:     res.Stats.SolverAccepted,
			Programs:           res.Stats.Programs,
			CacheHits:          res.Stats.CacheHits,
			GroundRules:        res.Stats.GroundRules,
			GroundAtoms:        res.Stats.GroundAtoms,
			DegradedSignatures: res.Stats.DegradedSignatures,
			UnknownTuples:      res.Stats.UnknownTuples,
			Seconds:            time.Since(start).Seconds(),
		})
	}
	rep.Metrics = r.Metrics.Snapshot()
	if snap := ex.Profile(); snap.Records > 0 {
		rep.ProfileSolves = snap.Solves
		rep.HotSignatures = snap.Top(reportHotSignatures, profile.SortWall)
	}
	return rep, nil
}

// WriteJSON marshals the report as indented JSON.
func (rep *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
