package benchkit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func sampleReport() *BenchReport {
	return &BenchReport{
		Profile: "S3",
		Exchange: ExchangeReport{
			Seconds:      1.0,
			ChaseSeconds: 0.6,
			TotalFacts:   500,
			Clusters:     3,
		},
		Queries: []QueryReport{
			{Query: "ep1", Answers: 4, Candidates: 5, Programs: 1, Seconds: 0.10},
			{Query: "ep2", Answers: 7, Candidates: 9, Programs: 2, Seconds: 0.20},
		},
		Metrics: telemetry.Snapshot{Counters: map[string]int64{
			"xr_sat_decisions": 1000,
			"xr_cache_hits":    12,
		}},
	}
}

func TestCompareReportsNoRegression(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	d := CompareReports(base, cur, 10)
	if d.Regressed() {
		t.Fatal("identical reports flagged as regressed")
	}
	var b strings.Builder
	d.Render(&b)
	if !strings.Contains(b.String(), "ok: no metric exceeded") {
		t.Fatalf("render lacks the ok line:\n%s", b.String())
	}
}

func TestCompareReportsRegression(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Queries[1].Seconds = 0.5 // +150% on ep2
	d := CompareReports(base, cur, 10)
	if !d.Regressed() {
		t.Fatal("a +150% query wall time did not regress at a 10% threshold")
	}
	var hit bool
	for _, l := range d.Lines {
		if l.Metric == "query/ep2/seconds" {
			hit = l.Regression
		}
	}
	if !hit {
		t.Fatal("the regressed metric is not the one flagged")
	}
	var b strings.Builder
	d.Render(&b)
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Fatalf("render lacks the REGRESSION line:\n%s", b.String())
	}
	// The same delta passes under a generous threshold.
	if CompareReports(base, cur, 200).Regressed() {
		t.Fatal("a +150% delta regressed at a 200% threshold")
	}
}

func TestCompareReportsCountDrift(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Queries[0].Answers = 5 // drift, not a regression: the workload changed
	d := CompareReports(base, cur, 10)
	if d.Regressed() {
		t.Fatal("an answer-count drift was flagged as a regression")
	}
	var noted bool
	for _, l := range d.Lines {
		if l.Metric == "query/ep1/answers" && l.Note == "count drift" {
			noted = true
		}
	}
	if !noted {
		t.Fatal("answer-count drift not noted")
	}
}

func TestCompareReportsWorkCounters(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Metrics.Counters["xr_sat_decisions"] = 5000 // 5x solver effort
	cur.Metrics.Counters["xr_new_counter"] = 1
	delete(cur.Metrics.Counters, "xr_cache_hits")
	d := CompareReports(base, cur, 50)
	if !d.Regressed() {
		t.Fatal("a 5x decisions counter did not regress")
	}
	var onlyBase, onlyCur bool
	for _, l := range d.Lines {
		switch l.Metric {
		case "counter/xr_cache_hits":
			onlyBase = l.Note == "only in baseline"
		case "counter/xr_new_counter":
			onlyCur = l.Note == "only in current"
		}
	}
	if !onlyBase || !onlyCur {
		t.Fatalf("structural counter differences not noted (base=%v cur=%v)", onlyBase, onlyCur)
	}
}

func TestCompareReportsMissingQuery(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Queries = cur.Queries[:1]
	d := CompareReports(base, cur, 10)
	var noted bool
	for _, l := range d.Lines {
		if l.Metric == "query/ep2" && l.Note == "only in baseline" {
			noted = true
		}
	}
	if !noted {
		t.Fatal("missing query not noted")
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	path := filepath.Join(t.TempDir(), "rep.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile != rep.Profile || len(got.Queries) != len(rep.Queries) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if d := CompareReports(rep, got, 0.001); d.Regressed() {
		t.Fatal("a report must not regress against its own round trip")
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing report accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("corrupt report accepted")
	}
}
