package benchkit

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/profile"
	"repro/internal/xr"
)

// profileFixture builds a tiny genome fixture once: world, source
// instance, and the Table 3 query suite. L20 (20% suspect rate) is the
// profile of choice — at the test scale S3 rounds to zero suspect
// transcripts and would exercise nothing but the safe-accept path.
func profileFixture(t testing.TB) (*Runner, *instance.Instance, []*logic.UCQ) {
	t.Helper()
	r, err := NewRunner(0.004, 0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := r.source("L20")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := r.queries()
	if err != nil {
		t.Fatal(err)
	}
	return r, in, qs
}

// runProfiled builds a fresh exchange and runs the full query suite
// twice (cold then warm) at the given parallelism, returning the
// exchange and a deterministic rendering of every query's semantic
// result (answers, unknowns, and the non-temporal stats).
func runProfiled(t testing.TB, r *Runner, in *instance.Instance, qs []*logic.UCQ, par int, profiling bool) (*xr.Exchange, []string) {
	t.Helper()
	ex, err := xr.NewExchangeOpts(r.world.M, in, xr.Options{Profiling: profiling})
	if err != nil {
		t.Fatal(err)
	}
	var rendered []string
	for pass := 0; pass < 2; pass++ {
		for _, q := range qs {
			res, err := ex.AnswerOpts(q, xr.Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s at parallelism %d: %v", q.Name, par, err)
			}
			st := res.Stats
			st.Duration = 0 // wall time is measured, not part of the contract
			rendered = append(rendered, fmt.Sprintf("%s pass=%d answers=%v stats=%+v",
				q.Name, pass, res.Answers.Tuples(), st))
		}
	}
	return ex, rendered
}

// stripWall zeroes the measured wall-time fields, leaving only the
// order-independent counter aggregates the determinism contract covers.
func stripWall(snap *profile.Snapshot) *profile.Snapshot {
	for i := range snap.Signatures {
		snap.Signatures[i].WallNs = 0
		snap.Signatures[i].Wall = profile.WallStats{}
	}
	for i := range snap.Clusters {
		snap.Clusters[i].WallNs = 0
	}
	return snap
}

// TestProfileCrossParallelism pins the profiler's determinism contract on
// the genome suite: the counter aggregates (solves, decisions, conflicts, cache
// and reuse attribution — everything except measured wall time) are
// identical at Parallelism 1, 4, and 8, cold and warm, and enabling
// profiling leaves every answer and stat byte-identical.
func TestProfileCrossParallelism(t *testing.T) {
	r, in, qs := profileFixture(t)

	exOff, renderedOff := runProfiled(t, r, in, qs, 1, false)
	if exOff.ProfilingEnabled() {
		t.Fatal("profiling reported enabled on a plain exchange")
	}
	if got := exOff.Profile(); got.Records != 0 || len(got.Signatures) != 0 {
		t.Fatalf("disabled profile not empty: %+v", got)
	}

	var baseline []string
	var baseSnap *profile.Snapshot
	for _, par := range []int{1, 4, 8} {
		ex, rendered := runProfiled(t, r, in, qs, par, true)
		if !ex.ProfilingEnabled() {
			t.Fatal("profiling not enabled")
		}
		// Profiling on vs off: identical semantic results.
		if !reflect.DeepEqual(rendered, renderedOff) {
			t.Fatalf("parallelism %d: answers/stats differ with profiling on", par)
		}
		snap := stripWall(ex.Profile())
		if snap.Solves == 0 || snap.Records == 0 {
			t.Fatalf("parallelism %d: no solves profiled", par)
		}
		b, err := snap.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = rendered
			baseSnap = snap
			continue
		}
		base, err := baseSnap.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(base) {
			t.Fatalf("profile counter aggregates differ between parallelism 1 and %d:\n%s\nvs\n%s",
				par, base, b)
		}
	}

	// Warm solves must be attributed: the second pass hits the signature
	// program cache, so cache hits show up in the aggregate.
	var cacheHits int64
	for _, sp := range baseSnap.Signatures {
		cacheHits += sp.CacheHits
	}
	if cacheHits == 0 {
		t.Fatal("warm pass recorded no cache hits")
	}
}

// TestReportEmbedsHotSignatures pins the xrbench report block: profiling
// is on for benchmark exchanges and the report embeds the top hardest
// signatures.
func TestReportEmbedsHotSignatures(t *testing.T) {
	r := tinyRunner(t)
	rep, err := r.Report("L20")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProfileSolves == 0 {
		t.Fatal("report embeds no profile solves")
	}
	if len(rep.HotSignatures) == 0 || len(rep.HotSignatures) > reportHotSignatures {
		t.Fatalf("hot signatures = %d", len(rep.HotSignatures))
	}
	for i := 1; i < len(rep.HotSignatures); i++ {
		if rep.HotSignatures[i].WallNs > rep.HotSignatures[i-1].WallNs {
			t.Fatalf("hot signatures not ordered by wall time at %d", i)
		}
	}
	if got := rep.Metrics.Counters["xr_profile_solves_total"]; got == 0 {
		t.Fatal("xr_profile_solves_total missing from the report metrics")
	}
}

// BenchmarkProfileOverhead measures the profiler's cost on the genome
// query suite: the disabled arm pays one nil check per solve, the
// enabled arm the full record path.
func BenchmarkProfileOverhead(b *testing.B) {
	for _, arm := range []struct {
		name      string
		profiling bool
	}{{"off", false}, {"on", true}} {
		b.Run(arm.name, func(b *testing.B) {
			r, err := NewRunner(0.004, 0)
			if err != nil {
				b.Fatal(err)
			}
			in, err := r.source("L20")
			if err != nil {
				b.Fatal(err)
			}
			qs, err := r.queries()
			if err != nil {
				b.Fatal(err)
			}
			ex, err := xr.NewExchangeOpts(r.world.M, in, xr.Options{Profiling: arm.profiling})
			if err != nil {
				b.Fatal(err)
			}
			// Warm the signature cache so iterations measure the steady
			// state the daemon lives in.
			for _, q := range qs {
				if _, err := ex.AnswerOpts(q, xr.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := ex.AnswerOpts(q, xr.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			_ = time.Now()
		})
	}
}
