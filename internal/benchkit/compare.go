package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// LoadReport reads a BenchReport previously written with WriteJSON.
func LoadReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchkit: %s: %w", path, err)
	}
	return &rep, nil
}

// DiffLine is one compared metric: the baseline and current values and the
// relative change. Regression marks a time-like metric or work counter that
// grew beyond the comparison threshold.
type DiffLine struct {
	Metric     string
	Base, Cur  float64
	DeltaPct   float64
	Regression bool
	// Note flags structural differences ("only in baseline", ...).
	Note string
}

// ReportDiff is the comparison of two BenchReports; see CompareReports.
type ReportDiff struct {
	BaseProfile, CurProfile string
	ThresholdPct            float64
	Lines                   []DiffLine
}

// Regressed reports whether any compared metric exceeded the threshold.
func (d *ReportDiff) Regressed() bool {
	for _, l := range d.Lines {
		if l.Regression {
			return true
		}
	}
	return false
}

// CompareReports diffs two benchmark reports metric by metric: per-query
// wall times, the exchange-phase breakdown, and every telemetry counter.
// A metric regresses when the current value exceeds the baseline by more
// than thresholdPct percent; only wall times and work counters (solver
// decisions, conflicts, propagations, chase work) can regress — size-like
// metrics (answers, facts, clusters) are compared for drift but flagged as
// notes, not regressions, since a changed count means the workload itself
// differs.
func CompareReports(base, cur *BenchReport, thresholdPct float64) *ReportDiff {
	d := &ReportDiff{BaseProfile: base.Profile, CurProfile: cur.Profile, ThresholdPct: thresholdPct}
	add := func(metric string, b, c float64, timeLike bool) {
		l := DiffLine{Metric: metric, Base: b, Cur: c}
		if b != 0 {
			l.DeltaPct = 100 * (c - b) / b
		} else if c != 0 {
			l.DeltaPct = 100
		}
		if timeLike {
			l.Regression = c > b*(1+thresholdPct/100)
		} else if b != c {
			l.Note = "count drift"
		}
		d.Lines = append(d.Lines, l)
	}

	add("exchange/seconds", base.Exchange.Seconds, cur.Exchange.Seconds, true)
	add("exchange/reduce_seconds", base.Exchange.ReduceSeconds, cur.Exchange.ReduceSeconds, true)
	add("exchange/chase_seconds", base.Exchange.ChaseSeconds, cur.Exchange.ChaseSeconds, true)
	add("exchange/envelopes_seconds", base.Exchange.EnvelopesSeconds, cur.Exchange.EnvelopesSeconds, true)
	add("exchange/chase_rounds", float64(base.Exchange.Breakdown.ChaseRounds), float64(cur.Exchange.Breakdown.ChaseRounds), false)
	add("exchange/chase_rule_evals", float64(base.Exchange.Breakdown.ChaseRuleEvals), float64(cur.Exchange.Breakdown.ChaseRuleEvals), false)
	add("exchange/total_facts", float64(base.Exchange.TotalFacts), float64(cur.Exchange.TotalFacts), false)
	add("exchange/clusters", float64(base.Exchange.Clusters), float64(cur.Exchange.Clusters), false)

	curQ := make(map[string]QueryReport, len(cur.Queries))
	for _, q := range cur.Queries {
		curQ[q.Query] = q
	}
	seen := make(map[string]bool, len(base.Queries))
	for _, bq := range base.Queries {
		seen[bq.Query] = true
		cq, ok := curQ[bq.Query]
		if !ok {
			d.Lines = append(d.Lines, DiffLine{Metric: "query/" + bq.Query, Base: bq.Seconds, Note: "only in baseline"})
			continue
		}
		add("query/"+bq.Query+"/seconds", bq.Seconds, cq.Seconds, true)
		add("query/"+bq.Query+"/answers", float64(bq.Answers), float64(cq.Answers), false)
		add("query/"+bq.Query+"/candidates", float64(bq.Candidates), float64(cq.Candidates), false)
		add("query/"+bq.Query+"/programs", float64(bq.Programs), float64(cq.Programs), false)
	}
	for _, q := range cur.Queries {
		if !seen[q.Query] {
			d.Lines = append(d.Lines, DiffLine{Metric: "query/" + q.Query, Cur: q.Seconds, Note: "only in current"})
		}
	}

	// Telemetry counters: solver/chase work is time-like (more work at equal
	// answers is a regression); everything else compares as drift.
	names := make([]string, 0, len(base.Metrics.Counters))
	for name := range base.Metrics.Counters {
		names = append(names, name)
	}
	for name := range cur.Metrics.Counters {
		if _, ok := base.Metrics.Counters[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, inBase := base.Metrics.Counters[name]
		c, inCur := cur.Metrics.Counters[name]
		switch {
		case !inBase:
			d.Lines = append(d.Lines, DiffLine{Metric: "counter/" + name, Cur: float64(c), Note: "only in current"})
		case !inCur:
			d.Lines = append(d.Lines, DiffLine{Metric: "counter/" + name, Base: float64(b), Note: "only in baseline"})
		default:
			add("counter/"+name, float64(b), float64(c), workCounter(name))
		}
	}
	return d
}

// workCounter reports whether a telemetry counter measures solver or chase
// effort (regression-eligible) rather than workload size.
func workCounter(name string) bool {
	for _, suffix := range []string{"decisions", "conflicts", "propagations", "restarts", "rule_evals", "triggers", "probes", "candidates_tested", "stability_fails", "assumption_solves", "reductions", "clauses_deleted"} {
		if len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix {
			return true
		}
	}
	return false
}

// Render writes the diff as an aligned table, regressions marked with "!".
func (d *ReportDiff) Render(w io.Writer) {
	fmt.Fprintf(w, "benchkit compare: baseline profile %s vs current profile %s (threshold %.1f%%)\n",
		d.BaseProfile, d.CurProfile, d.ThresholdPct)
	regressions := 0
	for _, l := range d.Lines {
		mark := " "
		if l.Regression {
			mark = "!"
			regressions++
		}
		note := ""
		if l.Note != "" {
			note = "  (" + l.Note + ")"
		}
		fmt.Fprintf(w, "%s %-48s %14.6g %14.6g %+8.1f%%%s\n", mark, l.Metric, l.Base, l.Cur, l.DeltaPct, note)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "REGRESSION: %d metric(s) exceeded the %.1f%% threshold\n", regressions, d.ThresholdPct)
	} else {
		fmt.Fprintf(w, "ok: no metric exceeded the %.1f%% threshold\n", d.ThresholdPct)
	}
}
