package benchkit

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyRunner uses a very small scale so the complete grid runs in seconds.
func tinyRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(0.004, 30*time.Second) // L ≈ 128 transcripts, F ≈ 740
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTable1Shapes(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 databases", len(tab.Rows))
	}
	// UniProt must be the largest source (matching + padding rows).
	var uniprot, entrez int
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[3])
		switch row[0] {
		case "UniProt":
			uniprot = n
		case "EntrezGene":
			entrez = n
		}
	}
	if uniprot <= entrez {
		t.Fatalf("UniProt (%d) should dwarf EntrezGene (%d)", uniprot, entrez)
	}
}

func TestTable2SuspectRatesOrdered(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	// L0 must have 0 suspect facts; L20 the most among L-profiles.
	rates := map[string]string{}
	for _, row := range tab.Rows {
		rates[row[0]] = row[4]
	}
	if rates["L0"] != "0.0%" {
		t.Fatalf("L0 suspect = %s", rates["L0"])
	}
	parse := func(s string) float64 {
		f, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return f
	}
	if !(parse(rates["L20"]) > parse(rates["L9"]) && parse(rates["L9"]) > parse(rates["L3"])) {
		t.Fatalf("suspect rates not increasing: %v", rates)
	}
}

func TestTable3CountsShape(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 queries", len(tab.Rows))
	}
	counts := map[string]int{}
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[1])
		counts[row[0]] = n
	}
	// Shape constraints mirroring Table 3: booleans answer 1; xr6 ≥ xr5;
	// ep3 ≥ ep2.
	for _, b := range []string{"ep1", "xr1", "xr4"} {
		if counts[b] != 1 {
			t.Fatalf("boolean %s = %d", b, counts[b])
		}
	}
	if counts["xr6"] < counts["xr5"] || counts["ep3"] < counts["ep2"] {
		t.Fatalf("count shape wrong: %v", counts)
	}
	if counts["ep15"] != counts["ep16"] {
		t.Fatalf("ep15 (%d) and ep16 (%d) project the same join", counts["ep15"], counts["ep16"])
	}
}

func TestTable4AndFigure4(t *testing.T) {
	r := tinyRunner(t)
	tab4, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab4.Rows) != 7 {
		t.Fatalf("table4 rows = %d, want 7 profiles", len(tab4.Rows))
	}
	fig, err := r.Figure4Size()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 11 || len(fig.Rows[0]) != 5 {
		t.Fatalf("figure grid = %dx%d", len(fig.Rows), len(fig.Rows[0]))
	}
}

func TestFigure3MonolithicTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("monolithic grid in -short mode")
	}
	r := tinyRunner(t)
	fig, err := r.figure("mono S only", []string{"S3"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 11 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
}

func TestReductionTable(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.ReductionTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatal("want original and reduced rows")
	}
	orig, _ := strconv.Atoi(tab.Rows[0][2])
	reduced, _ := strconv.Atoi(tab.Rows[1][2])
	if reduced <= orig {
		t.Fatalf("reduction did not grow target tgds: %d -> %d", orig, reduced)
	}
}

func TestRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "333  4") {
		t.Fatalf("render:\n%s", out)
	}
}
