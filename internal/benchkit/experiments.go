package benchkit

import (
	"fmt"
	"time"

	"repro/internal/gavreduce"
	"repro/internal/genome"
	"repro/internal/logic"
	"repro/internal/xr"
)

// queries returns the Table 3 suite in canonical order.
func (r *Runner) queries() ([]*logic.UCQ, error) {
	qs, err := genomeQueries(r)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*logic.UCQ, len(qs))
	for _, q := range qs {
		byName[q.Name] = q
	}
	out := make([]*logic.UCQ, 0, len(qs))
	for _, n := range QueryOrder {
		if q, ok := byName[n]; ok {
			out = append(out, q)
		}
	}
	return out, nil
}

// Table1 reports the source databases (paper Table 1) at the full profile:
// per database, the number of relations, total attributes, and total tuples.
func (r *Runner) Table1() (*Table, error) {
	in, err := r.source("F3")
	if err != nil {
		return nil, err
	}
	type group struct {
		name string
		rels []string
	}
	groups := []group{
		{"UCSC*", []string{"ComputedAlignments", "ComputedCrossref"}},
		{"RefSeq", []string{"RefSeqTranscript", "RefSeqSource", "RefSeqReference", "RefSeqGene", "RefSeqProtein"}},
		{"EntrezGene", []string{"EntrezGene"}},
		{"UniProt", []string{"UniProt"}},
	}
	t := &Table{
		Title:   "Table 1: Source Instances (profile F3)",
		Headers: []string{"Database", "Relations", "Attributes", "Tuples"},
		Notes:   []string{"*Transcript alignments and crossreference only (as in the paper)."},
	}
	for _, g := range groups {
		rels, attrs, tuples := 0, 0, 0
		for _, name := range g.rels {
			rel, ok := r.world.Cat.ByName(name)
			if !ok {
				return nil, fmt.Errorf("benchkit: missing relation %s", name)
			}
			rels++
			attrs += rel.Arity
			tuples += in.LenOf(rel.ID)
		}
		t.Rows = append(t.Rows, []string{g.name, itoa(rels), itoa(attrs), itoa(tuples)})
	}
	return t, nil
}

// Table2 reports the test-instance grid (paper Table 2): source tuples,
// total tuples after the exchange, and the suspect rates.
func (r *Runner) Table2() (*Table, error) {
	t := &Table{
		Title: "Table 2: Test Instances",
		Headers: []string{"instance", "source tuples", "total tuples",
			"suspect transcripts", "suspect tuples*"},
		Notes: []string{"*source facts in the source repair envelope (I_suspect)."},
	}
	seen := map[string]bool{}
	for _, name := range append(append([]string{}, SuspectProfiles...), SizeProfiles...) {
		if seen[name] {
			continue
		}
		seen[name] = true
		p, err := r.profile(name)
		if err != nil {
			return nil, err
		}
		ex, err := r.exchange(name)
		if err != nil {
			return nil, err
		}
		st := ex.Stats
		t.Rows = append(t.Rows, []string{
			name,
			itoa(st.SourceFacts),
			itoa(st.TotalFacts),
			fmt.Sprintf("%.1f%%", 100*p.SuspectRate),
			fmt.Sprintf("%.1f%%", 100*float64(st.SuspectSource)/float64(st.SourceFacts)),
		})
	}
	return t, nil
}

// Table3 reports the query suite with XR-Certain answer counts on the
// large instance (paper Table 3 reports approximate counts for L).
func (r *Runner) Table3() (*Table, error) {
	ex, err := r.exchange("L3")
	if err != nil {
		return nil, err
	}
	qs, err := r.queries()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table 3: Query Suite (XR-Certain answer counts on L3)",
		Headers: []string{"Query", "Answers", "Candidates", "Safe", "Solver"},
	}
	for _, q := range qs {
		res, err := r.answer(ex, q)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			q.Name, itoa(res.Answers.Len()), itoa(res.Stats.Candidates),
			itoa(res.Stats.SafeAccepted), itoa(res.Stats.SolverAccepted),
		})
	}
	return t, nil
}

// Table4 reports exchange-phase durations per instance (paper Table 4).
func (r *Runner) Table4() (*Table, error) {
	t := &Table{
		Title:   "Table 4: Duration of the exchange phase, in seconds",
		Headers: []string{"instance", "duration", "reduce", "chase", "envelopes", "violations", "clusters"},
	}
	seen := map[string]bool{}
	for _, name := range append(append([]string{}, SuspectProfiles...), SizeProfiles...) {
		if seen[name] {
			continue
		}
		seen[name] = true
		ex, err := r.exchange(name)
		if err != nil {
			return nil, err
		}
		st := ex.Stats
		t.Rows = append(t.Rows, []string{
			name, seconds(st.Duration), seconds(st.ReduceDuration),
			seconds(st.ChaseDuration), seconds(st.EnvDuration),
			itoa(st.Violations), itoa(st.Clusters),
		})
	}
	return t, nil
}

// figure runs the per-query timing grid for one engine over the given
// profiles.
func (r *Runner) figure(title string, profiles []string, mono bool) (*Table, error) {
	qs, err := r.queries()
	if err != nil {
		return nil, err
	}
	t := &Table{Title: title, Headers: append([]string{"query \\ instance"}, profiles...)}
	if mono && r.MonoTimeout > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("cells marked >%.0fs hit the per-query timeout (lower bound)", r.MonoTimeout.Seconds()))
	}
	cells := make(map[string][]string, len(qs))
	for _, q := range qs {
		cells[q.Name] = make([]string, len(profiles))
	}
	for pi, name := range profiles {
		if mono {
			in, err := r.source(name)
			if err != nil {
				return nil, err
			}
			r.logf("monolithic suite on %s...", name)
			results, err := xr.Monolithic(r.world.M, in, qs, r.monoOptions())
			if err != nil {
				return nil, err
			}
			for qi, q := range qs {
				if results[qi].Err != nil {
					cells[q.Name][pi] = fmt.Sprintf(">%.0f", r.MonoTimeout.Seconds())
				} else {
					cells[q.Name][pi] = seconds(results[qi].Stats.Duration)
				}
			}
		} else {
			ex, err := r.exchange(name)
			if err != nil {
				return nil, err
			}
			r.logf("segmentary suite on %s...", name)
			for _, q := range qs {
				res, err := r.answer(ex, q)
				if err != nil {
					return nil, err
				}
				cells[q.Name][pi] = seconds(res.Stats.Duration)
			}
		}
	}
	for _, q := range qs {
		t.Rows = append(t.Rows, append([]string{q.Name}, cells[q.Name]...))
	}
	return t, nil
}

// Figure3Suspect is Figure 3 (left): monolithic query durations vs suspect
// rate on the L0/L3/L9/L20 instances.
func (r *Runner) Figure3Suspect() (*Table, error) {
	return r.figure("Figure 3 (left): monolithic query seconds vs suspect rate", SuspectProfiles, true)
}

// Figure3Size is Figure 3 (right): monolithic query durations vs instance
// size on S3/M3/L3/F3 (log-log in the paper).
func (r *Runner) Figure3Size() (*Table, error) {
	return r.figure("Figure 3 (right): monolithic query seconds vs instance size", SizeProfiles, true)
}

// Figure4Suspect is Figure 4 (left): segmentary query durations vs suspect
// rate.
func (r *Runner) Figure4Suspect() (*Table, error) {
	return r.figure("Figure 4 (left): segmentary query seconds vs suspect rate", SuspectProfiles, false)
}

// Figure4Size is Figure 4 (right): segmentary query durations vs instance
// size.
func (r *Runner) Figure4Size() (*Table, error) {
	return r.figure("Figure 4 (right): segmentary query seconds vs instance size", SizeProfiles, false)
}

// ReductionTable reports the GLAV→GAV compilation blowup (§5.2: the paper's
// 33 tgds + 26 egds become 339 tgds + 67 egds, ≈7×, in ~18.7s).
func (r *Runner) ReductionTable() (*Table, error) {
	start := time.Now()
	red, err := gavreduce.Reduce(r.world.M)
	if err != nil {
		return nil, err
	}
	dur := time.Since(start)
	orig := r.world.M.Stats()
	got := red.M.Stats()
	t := &Table{
		Title:   "Reduction blowup (paper §5.2)",
		Headers: []string{"", "s-t tgds", "target tgds", "egds", "seconds"},
	}
	t.Rows = append(t.Rows, []string{"original", itoa(orig.STTgds), itoa(orig.TargetTgds), itoa(orig.TargetEgds), ""})
	t.Rows = append(t.Rows, []string{"reduced", itoa(got.STTgds), itoa(got.TargetTgds), itoa(got.TargetEgds), seconds(dur)})
	factor := float64(got.STTgds+got.TargetTgds+got.TargetEgds) / float64(orig.STTgds+orig.TargetTgds+orig.TargetEgds)
	t.Notes = append(t.Notes, fmt.Sprintf("dependency blowup ≈ %.1f× (paper: ≈7×)", factor))
	return t, nil
}

// Speedup reports the headline comparison: total suite time, monolithic vs
// segmentary (exchange + queries), per profile.
func (r *Runner) Speedup(profiles []string) (*Table, error) {
	qs, err := r.queries()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Headline: monolithic vs segmentary, full query suite",
		Headers: []string{"instance", "monolithic total (s)", "exchange (s)",
			"segmentary queries (s)", "speedup (mono / seg queries)"},
		Notes: []string{"the paper reports 10–1000× faster query answering for large instances"},
	}
	for _, name := range profiles {
		in, err := r.source(name)
		if err != nil {
			return nil, err
		}
		r.logf("speedup: monolithic suite on %s...", name)
		monoStart := time.Now()
		results, err := xr.Monolithic(r.world.M, in, qs, r.monoOptions())
		if err != nil {
			return nil, err
		}
		monoDur := time.Since(monoStart)
		timedOut := false
		for _, res := range results {
			if res.Err != nil {
				timedOut = true
			}
		}
		ex, err := r.exchange(name)
		if err != nil {
			return nil, err
		}
		r.logf("speedup: segmentary suite on %s...", name)
		segDur := time.Duration(0)
		for _, q := range qs {
			res, err := r.answer(ex, q)
			if err != nil {
				return nil, err
			}
			segDur += res.Stats.Duration
		}
		monoCell := seconds(monoDur)
		ratio := fmt.Sprintf("%.1f×", monoDur.Seconds()/segDur.Seconds())
		if timedOut {
			monoCell = ">" + monoCell
			ratio = ">" + ratio
		}
		t.Rows = append(t.Rows, []string{
			name, monoCell, seconds(ex.Stats.Duration), seconds(segDur), ratio,
		})
	}
	return t, nil
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func genomeQueries(r *Runner) ([]*logic.UCQ, error) {
	return genome.Queries(r.world)
}
