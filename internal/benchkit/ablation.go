package benchkit

import (
	"fmt"
	"math/rand"

	"repro/internal/asp"
	"repro/internal/chase"
	"repro/internal/gavreduce"
	"repro/internal/testkit"
	"repro/internal/xr"
)

// AblationFigure1 quantifies the Figure 1 discrepancy (DESIGN.md §7.1):
// over random gav+(gav, egd)-reducible mappings and small instances, it
// compares the number of stable models of the paper's literal Figure 1
// program against the true number of source repairs (and our corrected
// encoding, which matches the repairs by construction — also verified
// here).
func (r *Runner) AblationFigure1(trials int) (*Table, error) {
	rng := rand.New(rand.NewSource(20160315))
	type bucket struct {
		instances int
		fig1Lost  int // Figure 1 has fewer stable models than repairs
		fig1Extra int // Figure 1 has more (never expected)
		corrWrong int // corrected encoding disagrees with brute force
		repairs   int
		fig1      int
	}
	var b bucket
	for trial := 0; trial < trials; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{TargetTgds: 1})
		src := testkit.RandomInstance(rng, w, 4+rng.Intn(4), 3)
		repairs, err := xr.SourceRepairs(w.M, src)
		if err != nil {
			return nil, err
		}
		red, err := gavreduce.Reduce(w.M)
		if err != nil {
			return nil, err
		}
		prov, err := chase.GAV(red.M, src)
		if err != nil {
			return nil, err
		}
		gp, _ := xr.Figure1Program(prov)
		fig1 := asp.NewStableSolver(gp).Enumerate(func([]bool) bool { return true })
		corrected := xr.CountRepairModels(prov)

		b.instances++
		b.repairs += len(repairs)
		b.fig1 += fig1
		if fig1 < len(repairs) {
			b.fig1Lost++
		}
		if fig1 > len(repairs) {
			b.fig1Extra++
		}
		if corrected != len(repairs) {
			b.corrWrong++
		}
	}
	t := &Table{
		Title: "Ablation: literal Figure 1 encoding vs corrected encoding",
		Headers: []string{"instances", "total repairs", "Fig.1 models",
			"Fig.1 lost repairs on", "Fig.1 extra models on", "corrected wrong on"},
		Rows: [][]string{{
			itoa(b.instances), itoa(b.repairs), itoa(b.fig1),
			fmt.Sprintf("%d (%.0f%%)", b.fig1Lost, 100*float64(b.fig1Lost)/float64(b.instances)),
			itoa(b.fig1Extra), itoa(b.corrWrong),
		}},
		Notes: []string{
			"repairs counted by exhaustive enumeration (ground truth)",
			"lost repairs make Figure 1's cautious answers unsound (too many certain answers)",
			"extra models are benign multiplicity: one repair with several d/i labelings of target facts",
			"the corrected encoding must always match the repair count",
		},
	}
	return t, nil
}
