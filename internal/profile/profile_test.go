package profile

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	p.RecordSolve("1", Solve{Wall: time.Millisecond, Decisions: 5})
	p.RecordRetry("1")
	p.RecordDegraded("1")
	p.RecordBudgetExhausted("1")
	p.SeedCluster(0, 1, 2, 3)
	p.Merge(&Snapshot{Solves: 7})
	if p.Records() != 0 || p.Solves() != 0 || p.Evictions() != 0 {
		t.Fatal("nil profiler reported state")
	}
	snap := p.Snapshot()
	if snap == nil {
		t.Fatal("nil profiler snapshot is nil")
	}
	if snap.Records != 0 || len(snap.Signatures) != 0 {
		t.Fatalf("nil profiler snapshot not empty: %+v", snap)
	}
	if snap.Signatures == nil {
		t.Fatal("Signatures must be non-nil (stable JSON: [] not null)")
	}
}

func TestRecordSolveAggregatesAndAttributesClusters(t *testing.T) {
	p := New(Config{})
	p.SeedCluster(1, 2, 10, 20)
	p.SeedCluster(2, 3, 30, 40)
	s := Solve{
		Wall: 2 * time.Millisecond, Candidates: 4, CandidatesTested: 3,
		StabilityFails: 1, Decisions: 100, Conflicts: 7, Propagations: 900,
		Restarts: 2, AssumptionSolves: 5, Reductions: 1, ClausesDeleted: 12,
		CacheHit: true, SolverReused: true,
	}
	p.RecordSolve("1,2", s)
	p.RecordSolve("1,2", Solve{Wall: time.Millisecond, Decisions: 10})
	p.RecordSolve("2", Solve{Wall: time.Millisecond, Conflicts: 1})
	p.RecordRetry("1,2")
	p.RecordDegraded("2")
	p.RecordBudgetExhausted("1,2")

	snap := p.Snapshot()
	if snap.Records != 2 || snap.Solves != 3 {
		t.Fatalf("records=%d solves=%d, want 2/3", snap.Records, snap.Solves)
	}
	if len(snap.Signatures) != 2 || snap.Signatures[0].Key != "1,2" || snap.Signatures[1].Key != "2" {
		t.Fatalf("signature order: %+v", snap.Signatures)
	}
	multi := snap.Signatures[0]
	if multi.Solves != 2 || multi.Decisions != 110 || multi.Conflicts != 7 ||
		multi.Retries != 1 || multi.BudgetExhausted != 1 ||
		multi.CacheHits != 1 || multi.ReuseHits != 1 {
		t.Fatalf("multi-cluster counters: %+v", multi.Counters)
	}
	if multi.WallNs != int64(3*time.Millisecond) || multi.Wall.Count != 2 {
		t.Fatalf("wall accounting: ns=%d count=%d", multi.WallNs, multi.Wall.Count)
	}
	// The multi-cluster signature's shape sums both seeded clusters.
	if !reflect.DeepEqual(multi.ClusterIDs, []int{1, 2}) ||
		multi.ClusterViolations != 5 || multi.EnvelopeFacts != 40 || multi.InfluenceFacts != 60 {
		t.Fatalf("shape: %+v", multi)
	}
	// Each participating cluster is charged the full solve.
	if len(snap.Clusters) != 2 {
		t.Fatalf("clusters: %+v", snap.Clusters)
	}
	c1, c2 := snap.Clusters[0], snap.Clusters[1]
	if c1.ID != 1 || c1.Solves != 2 || c1.Decisions != 110 || c1.Retries != 1 {
		t.Fatalf("cluster 1: %+v", c1)
	}
	if c2.ID != 2 || c2.Solves != 3 || c2.Conflicts != 8 || c2.Degraded != 1 {
		t.Fatalf("cluster 2: %+v", c2)
	}
}

func TestSnapshotMarshalDeterministic(t *testing.T) {
	build := func(order []string) []byte {
		p := New(Config{})
		p.SeedCluster(3, 1, 2, 3)
		for _, k := range order {
			p.RecordSolve(k, Solve{Wall: time.Millisecond, Decisions: 7})
		}
		b, err := p.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := build([]string{"3", "1,3", "10", "2"})
	b := build([]string{"2", "10", "3", "1,3"})
	if !bytes.Equal(a, b) {
		t.Fatalf("insertion order leaked into the snapshot:\n%s\nvs\n%s", a, b)
	}
}

func TestMergeRoundTripByteIdentical(t *testing.T) {
	p := New(Config{})
	p.SeedCluster(0, 2, 11, 17)
	p.SeedCluster(4, 1, 3, 5)
	for i := 0; i < 40; i++ {
		p.RecordSolve("0,4", Solve{
			Wall:      time.Duration(i%7) * 100 * time.Microsecond,
			Decisions: int64(i), Conflicts: int64(i % 3), Propagations: int64(10 * i),
			CacheHit: i%2 == 0, SolverReused: i%5 == 0,
		})
		p.RecordSolve("4", Solve{Wall: time.Duration(i) * time.Microsecond, Restarts: 1})
	}
	p.RecordRetry("0,4")
	p.RecordDegraded("4")
	p.RecordBudgetExhausted("0,4")

	orig, err := p.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ParseSnapshot(orig)
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(Config{})
	fresh.Merge(snap)
	restored, err := fresh.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, restored) {
		t.Fatalf("merge round trip not byte-identical:\n-- original --\n%s\n-- restored --\n%s", orig, restored)
	}
}

func TestEvictionOrderAtTinyCap(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(Config{MaxRecords: 2, Metrics: reg})
	// "1" is hot (3 touches), "2" is cold (1 touch).
	for i := 0; i < 3; i++ {
		p.RecordSolve("1", Solve{Wall: time.Microsecond})
	}
	p.RecordSolve("2", Solve{Wall: time.Microsecond})
	// Inserting "3" must evict the coldest record, "2".
	p.RecordSolve("3", Solve{Wall: time.Microsecond})
	snap := p.Snapshot()
	if snap.Records != 2 || snap.Evictions != 1 {
		t.Fatalf("records=%d evictions=%d, want 2/1", snap.Records, snap.Evictions)
	}
	keys := []string{snap.Signatures[0].Key, snap.Signatures[1].Key}
	if !reflect.DeepEqual(keys, []string{"1", "3"}) {
		t.Fatalf("surviving keys = %v, want [1 3] (coldest evicted)", keys)
	}
	// Total solves include work recorded into the evicted record.
	if snap.Solves != 5 {
		t.Fatalf("solves = %d, want 5", snap.Solves)
	}
	// Decay: the eviction halved "1"'s heat from 3 to 1, and "3" earned
	// heat 1 from its solve — a tie, which breaks toward the smaller key.
	// Inserting "4" therefore evicts "1": one-time hot spots age out.
	p.RecordSolve("4", Solve{Wall: time.Microsecond})
	snap = p.Snapshot()
	keys = []string{snap.Signatures[0].Key, snap.Signatures[1].Key}
	if !reflect.DeepEqual(keys, []string{"3", "4"}) {
		t.Fatalf("after decay, surviving keys = %v, want [3 4]", keys)
	}
	if got := reg.Snapshot().Counters["xr_profile_evictions_total"]; got != 2 {
		t.Fatalf("xr_profile_evictions_total = %d, want 2", got)
	}
	if got := reg.Snapshot().Gauges["xr_profile_records"]; got != 2 {
		t.Fatalf("xr_profile_records = %d, want 2", got)
	}
}

func TestEvictionTieBreaksOnSmallestKey(t *testing.T) {
	p := New(Config{MaxRecords: 2})
	p.RecordSolve("7", Solve{})
	p.RecordSolve("3", Solve{})
	// Equal heat (1 each): the lexicographically smallest key, "3", goes.
	p.RecordSolve("9", Solve{})
	snap := p.Snapshot()
	keys := []string{snap.Signatures[0].Key, snap.Signatures[1].Key}
	if !reflect.DeepEqual(keys, []string{"7", "9"}) {
		t.Fatalf("surviving keys = %v, want [7 9]", keys)
	}
}

func TestConcurrentRecordingIsExact(t *testing.T) {
	p := New(Config{})
	const workers, perWorker = 8, 500
	keys := []string{"1", "2", "1,2", "3"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := keys[(w+i)%len(keys)]
				p.RecordSolve(k, Solve{Wall: time.Microsecond, Decisions: 2, Conflicts: 1})
				if i%50 == 0 {
					p.RecordRetry(k)
					_ = p.Snapshot() // concurrent reads must not race
				}
			}
		}(w)
	}
	wg.Wait()
	snap := p.Snapshot()
	if snap.Solves != workers*perWorker {
		t.Fatalf("solves = %d, want %d", snap.Solves, workers*perWorker)
	}
	var dec, con int64
	for _, sp := range snap.Signatures {
		dec += sp.Decisions
		con += sp.Conflicts
	}
	if dec != 2*workers*perWorker || con != workers*perWorker {
		t.Fatalf("decisions=%d conflicts=%d, want %d/%d",
			dec, con, 2*workers*perWorker, workers*perWorker)
	}
}

func TestTopOrders(t *testing.T) {
	mk := func(key string, wall, conflicts, degraded int64) SignatureProfile {
		sp := SignatureProfile{Key: key}
		sp.WallNs = wall
		sp.Conflicts = conflicts
		sp.Degraded = degraded
		return sp
	}
	snap := &Snapshot{Signatures: []SignatureProfile{
		mk("1", 10, 99, 0),
		mk("2", 50, 1, 2),
		mk("3", 50, 7, 1),
	}}
	get := func(sps []SignatureProfile) []string {
		out := make([]string, len(sps))
		for i, sp := range sps {
			out[i] = sp.Key
		}
		return out
	}
	if got := get(snap.Top(0, SortWall)); !reflect.DeepEqual(got, []string{"3", "2", "1"}) {
		t.Fatalf("wall order = %v", got)
	}
	if got := get(snap.Top(2, SortConflicts)); !reflect.DeepEqual(got, []string{"1", "3"}) {
		t.Fatalf("conflicts order = %v", got)
	}
	if got := get(snap.Top(1, SortDegraded)); !reflect.DeepEqual(got, []string{"2"}) {
		t.Fatalf("degraded order = %v", got)
	}
	for _, by := range []string{"", SortWall, SortConflicts, SortDegraded} {
		if !ValidSort(by) {
			t.Fatalf("ValidSort(%q) = false", by)
		}
	}
	if ValidSort("decisions") {
		t.Fatal(`ValidSort("decisions") = true`)
	}
}

func TestParseKeySkipsMalformedSegments(t *testing.T) {
	p := New(Config{})
	p.RecordSolve("2, 7", Solve{}) // spaces tolerated
	p.RecordSolve("x,5,", Solve{}) // junk skipped
	snap := p.Snapshot()
	if !reflect.DeepEqual(snap.Signatures[0].ClusterIDs, []int{2, 7}) {
		t.Fatalf("cluster ids: %+v", snap.Signatures[0])
	}
	if !reflect.DeepEqual(snap.Signatures[1].ClusterIDs, []int{5}) {
		t.Fatalf("cluster ids: %+v", snap.Signatures[1])
	}
}

func TestMergeEvictsPastCap(t *testing.T) {
	donor := New(Config{})
	for i := 0; i < 6; i++ {
		for j := 0; j <= i; j++ { // key "5" hottest
			donor.RecordSolve(fmt.Sprint(i), Solve{})
		}
	}
	small := New(Config{MaxRecords: 3})
	small.Merge(donor.Snapshot())
	if small.Records() != 3 {
		t.Fatalf("records = %d, want cap 3", small.Records())
	}
	snap := small.Snapshot()
	// The hottest donors must survive the restore-time evictions.
	last := snap.Signatures[len(snap.Signatures)-1]
	if last.Key != "5" && snap.Signatures[0].Key != "5" {
		t.Fatalf("hottest key evicted during merge: %+v", snap.Signatures)
	}
}
