package profile

import (
	"encoding/json"
	"sort"
)

// Counters is the wire form of one record's accumulated work. All fields
// are order-independent sums of per-solve contributions, so they are
// deterministic at any Parallelism — except WallNs, which is measured
// wall time (compare counters across runs, not time).
//
// Counters is part of the JSON wire format (snake_case field names are a
// compatibility contract).
type Counters struct {
	Solves           int64 `json:"solves"`
	WallNs           int64 `json:"wall_ns"`
	Candidates       int64 `json:"candidates"`
	CandidatesTested int64 `json:"candidates_tested"`
	StabilityFails   int64 `json:"stability_fails"`
	Decisions        int64 `json:"decisions"`
	Conflicts        int64 `json:"conflicts"`
	Propagations     int64 `json:"propagations"`
	Restarts         int64 `json:"restarts"`
	AssumptionSolves int64 `json:"assumption_solves"`
	Reductions       int64 `json:"reductions"`
	ClausesDeleted   int64 `json:"clauses_deleted"`
	Retries          int64 `json:"retries"`
	Degraded         int64 `json:"degraded"`
	BudgetExhausted  int64 `json:"budget_exhausted"`
	CacheHits        int64 `json:"cache_hits"`
	ReuseHits        int64 `json:"reuse_hits"`
}

// WallStats is the wire form of a record's wall-time histogram: the raw
// log₂ bucket counts (trailing zeros trimmed) plus quantile estimates
// reconstructed from them, so persistence round-trips losslessly and the
// quantiles re-derive identically after a Merge. Quantiles are in
// nanoseconds, matching SumNs.
type WallStats struct {
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	P50     float64 `json:"p50_ns"`
	P95     float64 `json:"p95_ns"`
	P99     float64 `json:"p99_ns"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// SignatureProfile is one signature's accumulated hardness record.
type SignatureProfile struct {
	// Key is the canonical signature key ("2,7") shared with
	// TraceEvent.SignatureKey, SignatureError.Signature, and
	// Explanation.Signature.
	Key string `json:"key"`
	// ClusterIDs are the violation clusters behind the signature; the
	// shape fields below sum those clusters' seeded shapes.
	ClusterIDs        []int `json:"cluster_ids,omitempty"`
	ClusterViolations int   `json:"cluster_violations"`
	EnvelopeFacts     int   `json:"envelope_facts"`
	InfluenceFacts    int   `json:"influence_facts"`
	Counters
	Wall WallStats `json:"wall"`
}

// ClusterProfile is one violation cluster's accumulated record. A solve
// of a multi-cluster signature is charged in full to every participating
// cluster, so cluster sums can exceed the signature sums.
type ClusterProfile struct {
	ID             int `json:"id"`
	Violations     int `json:"violations"`
	EnvelopeFacts  int `json:"envelope_facts"`
	InfluenceFacts int `json:"influence_facts"`
	Counters
}

// Snapshot is a point-in-time copy of a profiler, shaped for
// deterministic JSON: signatures sort by key, clusters by id, and every
// field marshals from a struct (no maps). It is both the introspection
// payload (GET /v1/scenarios/{name}/profile) and the persistence payload
// (profile.xr under the store envelope); Profiler.Merge restores it.
type Snapshot struct {
	// Records is the live signature-record count; Solves counts every
	// recorded solve including those in since-evicted records.
	Records    int                `json:"records"`
	Solves     int64              `json:"solves"`
	Evictions  int64              `json:"evictions"`
	Signatures []SignatureProfile `json:"signatures"`
	Clusters   []ClusterProfile   `json:"clusters,omitempty"`
}

// Snapshot copies the profiler's current state. On a nil profiler it
// returns an empty snapshot (never nil).
func (p *Profiler) Snapshot() *Snapshot {
	snap := &Snapshot{Signatures: []SignatureProfile{}}
	if p == nil {
		return snap
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	snap.Records = len(p.sigs)
	snap.Solves = p.totalSolves.Load()
	snap.Evictions = p.evictions.Load()
	keys := make([]string, 0, len(p.sigs))
	for key := range p.sigs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		snap.Signatures = append(snap.Signatures, p.sigs[key].profile())
	}
	ids := make([]int, 0, len(p.clusters))
	for id := range p.clusters {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := p.clusters[id]
		snap.Clusters = append(snap.Clusters, ClusterProfile{
			ID:             c.id,
			Violations:     c.violations,
			EnvelopeFacts:  c.envelopeFacts,
			InfluenceFacts: c.influenceFacts,
			Counters:       c.export(),
		})
	}
	return snap
}

func (r *sigRecord) profile() SignatureProfile {
	count, sumNs, buckets := r.wall.Export()
	sp := SignatureProfile{
		Key:      r.key,
		Counters: r.export(),
		Wall: WallStats{
			Count: count,
			SumNs: sumNs,
			// Quantile interpolates in seconds; the wire form is ns.
			P50:     r.wall.Quantile(0.50) * 1e9,
			P95:     r.wall.Quantile(0.95) * 1e9,
			P99:     r.wall.Quantile(0.99) * 1e9,
			Buckets: trimZeros(buckets),
		},
	}
	for _, c := range r.clusters {
		sp.ClusterIDs = append(sp.ClusterIDs, c.id)
		sp.ClusterViolations += c.violations
		sp.EnvelopeFacts += c.envelopeFacts
		sp.InfluenceFacts += c.influenceFacts
	}
	return sp
}

// trimZeros drops trailing zero buckets (nil when all are zero), keeping
// persisted snapshots compact; Histogram.Merge accepts the short form.
func trimZeros(buckets []int64) []int64 {
	n := len(buckets)
	for n > 0 && buckets[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return buckets[:n]
}

// Merge folds a snapshot into the profiler (additive), restoring
// persisted hardness history under live recording. Cluster shapes are
// adopted from the snapshot when the profiler has none; restored
// signatures arrive with heat equal to their solve count so they compete
// fairly with live records under eviction. Restoring more signatures
// than MaxRecords evicts coldest-first as usual. Nil-safe no-op.
func (p *Profiler) Merge(snap *Snapshot) {
	if p == nil || snap == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totalSolves.Add(snap.Solves)
	p.evictions.Add(snap.Evictions)
	// Clusters first, so signature records created below find shapes.
	for i := range snap.Clusters {
		cp := &snap.Clusters[i]
		c := p.clusterForLocked(cp.ID)
		if c.violations == 0 && c.envelopeFacts == 0 && c.influenceFacts == 0 {
			c.violations = cp.Violations
			c.envelopeFacts = cp.EnvelopeFacts
			c.influenceFacts = cp.InfluenceFacts
		}
		c.merge(&cp.Counters)
	}
	for i := range snap.Signatures {
		sp := &snap.Signatures[i]
		r := p.sigForLocked(sp.Key)
		r.merge(&sp.Counters)
		r.wall.Merge(sp.Wall.Count, sp.Wall.SumNs, sp.Wall.Buckets)
		r.heat.Add(sp.Solves)
	}
}

// Sort orders accepted by Top and the /profile endpoint.
const (
	SortWall      = "wall"
	SortConflicts = "conflicts"
	SortDegraded  = "degraded"
)

// ValidSort reports whether by names a supported Top order ("" selects
// the default, SortWall).
func ValidSort(by string) bool {
	switch by {
	case "", SortWall, SortConflicts, SortDegraded:
		return true
	}
	return false
}

// Top returns the n hottest signatures under the given order — total
// wall time, conflicts, or degradations (degradations tie-break on
// budget exhaustions, then conflicts) — with ties broken by key, so the
// result is deterministic. n <= 0 returns all signatures sorted.
func (s *Snapshot) Top(n int, by string) []SignatureProfile {
	out := append([]SignatureProfile(nil), s.Signatures...)
	key := func(sp *SignatureProfile) (int64, int64) {
		switch by {
		case SortConflicts:
			return sp.Conflicts, sp.Decisions
		case SortDegraded:
			return sp.Degraded, sp.BudgetExhausted
		default:
			return sp.WallNs, sp.Conflicts
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, si := key(&out[i])
		pj, sj := key(&out[j])
		if pi != pj {
			return pi > pj
		}
		if si != sj {
			return si > sj
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// MarshalIndent renders the snapshot as indented deterministic JSON (the
// persistence and CLI dump format).
func (s *Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSnapshot decodes a snapshot previously produced by MarshalIndent
// (or any JSON marshaling of Snapshot).
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
