// Package profile is the workload hardness profiler: a dependency-free,
// race-clean accumulator of per-signature and per-cluster solve records
// across all queries of an Exchange's lifetime (DESIGN.md §18).
//
// Records are keyed by the canonical signature key ("2,7") — the same
// vocabulary TraceEvent.SignatureKey, SignatureError.Signature, and
// Explanation.Signature share — so a slow request, a degradation report,
// and an explanation all pivot to the same profile entry. Each signature
// record carries a log₂ wall-time histogram (quantiles via
// telemetry.Histogram.Quantile), the DPLL work counters, incremental-
// session delta work, degradation accounting, cache/reuse attribution,
// and the shape of the clusters behind the signature; cluster records
// aggregate the same counters per violation cluster, charging every
// cluster of a multi-cluster signature with the full solve.
//
// Concurrency and determinism: the hot path is one RLock'd map lookup
// followed by atomic adds, so concurrent workers only ever commute —
// counter aggregates are deterministic at any Parallelism, exactly like
// the telemetry registry they mirror. Wall-time buckets are measured, not
// derived, and therefore vary run to run; consumers comparing profiles
// across runs must compare counters, not time.
//
// Memory is bounded: signature records are capped (Config.MaxRecords),
// and inserting past the cap evicts the coldest record — smallest decayed
// heat, ties broken toward the lexicographically smallest key — then
// halves every survivor's heat, so stale one-time hot spots age out. An
// eviction counter (and xr_profile_evictions_total when a registry is
// attached) records the loss. Cluster records are bounded by the
// exchange's cluster count and are never evicted.
//
// All recording methods are nil-safe no-ops, so engines hold a possibly
// nil *Profiler and call it unconditionally — the disabled path costs one
// nil check per solve.
package profile

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// DefaultMaxRecords bounds the signature-record table when Config leaves
// MaxRecords zero. Signatures are subsets of violation clusters actually
// hit by queries, so real workloads sit far below this.
const DefaultMaxRecords = 4096

// Config configures a Profiler.
type Config struct {
	// MaxRecords caps the signature-record table (0 = DefaultMaxRecords).
	MaxRecords int
	// Metrics, when non-nil, receives the profiler's own bookkeeping
	// series: xr_profile_records (gauge), xr_profile_records_created_total,
	// xr_profile_evictions_total, and xr_profile_solves_total.
	Metrics *telemetry.Registry
}

// Profiler accumulates hardness records. Create with New; a nil
// *Profiler is a valid disabled profiler.
type Profiler struct {
	maxRecords int

	mu       sync.RWMutex
	sigs     map[string]*sigRecord
	clusters map[int]*clusterRecord

	totalSolves atomic.Int64
	evictions   atomic.Int64

	mRecords   *telemetry.Gauge
	mCreated   *telemetry.Counter
	mEvictions *telemetry.Counter
	mSolves    *telemetry.Counter
}

// New returns an empty profiler.
func New(cfg Config) *Profiler {
	maxRecords := cfg.MaxRecords
	if maxRecords <= 0 {
		maxRecords = DefaultMaxRecords
	}
	p := &Profiler{
		maxRecords: maxRecords,
		sigs:       make(map[string]*sigRecord),
		clusters:   make(map[int]*clusterRecord),
	}
	// telemetry instruments are nil-safe, so a nil registry just yields
	// nil instruments here and free no-ops on the hot path.
	p.mRecords = cfg.Metrics.Gauge("xr_profile_records")
	p.mCreated = cfg.Metrics.Counter("xr_profile_records_created_total")
	p.mEvictions = cfg.Metrics.Counter("xr_profile_evictions_total")
	p.mSolves = cfg.Metrics.Counter("xr_profile_solves_total")
	return p
}

// Solve is one signature solve's contribution: the values of the
// TraceEvent emitted at the same instrumentation point. On the solver-
// reuse path the work counters are per-session deltas, which is exactly
// what should accumulate.
type Solve struct {
	Wall             time.Duration
	Candidates       int
	CandidatesTested int
	StabilityFails   int
	Decisions        int64
	Conflicts        int64
	Propagations     int64
	Restarts         int64
	AssumptionSolves int64
	Reductions       int64
	ClausesDeleted   int64
	CacheHit         bool
	SolverReused     bool
}

// counters is the atomic accumulator shared by signature and cluster
// records; Counters is its wire form.
type counters struct {
	solves           atomic.Int64
	wallNs           atomic.Int64
	candidates       atomic.Int64
	candidatesTested atomic.Int64
	stabilityFails   atomic.Int64
	decisions        atomic.Int64
	conflicts        atomic.Int64
	propagations     atomic.Int64
	restarts         atomic.Int64
	assumptionSolves atomic.Int64
	reductions       atomic.Int64
	clausesDeleted   atomic.Int64
	retries          atomic.Int64
	degraded         atomic.Int64
	budgetExhausted  atomic.Int64
	cacheHits        atomic.Int64
	reuseHits        atomic.Int64
}

func (c *counters) addSolve(s *Solve) {
	c.solves.Add(1)
	c.wallNs.Add(s.Wall.Nanoseconds())
	c.candidates.Add(int64(s.Candidates))
	c.candidatesTested.Add(int64(s.CandidatesTested))
	c.stabilityFails.Add(int64(s.StabilityFails))
	c.decisions.Add(s.Decisions)
	c.conflicts.Add(s.Conflicts)
	c.propagations.Add(s.Propagations)
	c.restarts.Add(s.Restarts)
	c.assumptionSolves.Add(s.AssumptionSolves)
	c.reductions.Add(s.Reductions)
	c.clausesDeleted.Add(s.ClausesDeleted)
	if s.CacheHit {
		c.cacheHits.Add(1)
	}
	if s.SolverReused {
		c.reuseHits.Add(1)
	}
}

func (c *counters) export() Counters {
	return Counters{
		Solves:           c.solves.Load(),
		WallNs:           c.wallNs.Load(),
		Candidates:       c.candidates.Load(),
		CandidatesTested: c.candidatesTested.Load(),
		StabilityFails:   c.stabilityFails.Load(),
		Decisions:        c.decisions.Load(),
		Conflicts:        c.conflicts.Load(),
		Propagations:     c.propagations.Load(),
		Restarts:         c.restarts.Load(),
		AssumptionSolves: c.assumptionSolves.Load(),
		Reductions:       c.reductions.Load(),
		ClausesDeleted:   c.clausesDeleted.Load(),
		Retries:          c.retries.Load(),
		Degraded:         c.degraded.Load(),
		BudgetExhausted:  c.budgetExhausted.Load(),
		CacheHits:        c.cacheHits.Load(),
		ReuseHits:        c.reuseHits.Load(),
	}
}

func (c *counters) merge(w *Counters) {
	c.solves.Add(w.Solves)
	c.wallNs.Add(w.WallNs)
	c.candidates.Add(w.Candidates)
	c.candidatesTested.Add(w.CandidatesTested)
	c.stabilityFails.Add(w.StabilityFails)
	c.decisions.Add(w.Decisions)
	c.conflicts.Add(w.Conflicts)
	c.propagations.Add(w.Propagations)
	c.restarts.Add(w.Restarts)
	c.assumptionSolves.Add(w.AssumptionSolves)
	c.reductions.Add(w.Reductions)
	c.clausesDeleted.Add(w.ClausesDeleted)
	c.retries.Add(w.Retries)
	c.degraded.Add(w.Degraded)
	c.budgetExhausted.Add(w.BudgetExhausted)
	c.cacheHits.Add(w.CacheHits)
	c.reuseHits.Add(w.ReuseHits)
}

// sigRecord is one signature's live record. clusters is resolved once at
// creation so the hot path does no map lookups beyond the key itself.
type sigRecord struct {
	key      string
	clusters []*clusterRecord
	wall     telemetry.Histogram
	heat     atomic.Int64
	counters
}

// clusterRecord is one violation cluster's live record. Shape fields are
// written only under the profiler lock (seed/merge) and read under it.
type clusterRecord struct {
	id             int
	violations     int
	envelopeFacts  int
	influenceFacts int
	counters
}

// RecordSolve accumulates one completed signature solve.
func (p *Profiler) RecordSolve(key string, s Solve) {
	if p == nil {
		return
	}
	r := p.sigFor(key)
	r.heat.Add(1)
	r.wall.Observe(s.Wall)
	r.addSolve(&s)
	for _, c := range r.clusters {
		c.addSolve(&s)
	}
	p.totalSolves.Add(1)
	p.mSolves.Inc()
}

// RecordRetry accumulates one budget-doubling retry of a signature.
func (p *Profiler) RecordRetry(key string) {
	if p == nil {
		return
	}
	r := p.sigFor(key)
	r.heat.Add(1)
	r.retries.Add(1)
	for _, c := range r.clusters {
		c.retries.Add(1)
	}
}

// RecordDegraded accumulates one degradation: the signature's group was
// left undecided under Options.Partial.
func (p *Profiler) RecordDegraded(key string) {
	if p == nil {
		return
	}
	r := p.sigFor(key)
	r.heat.Add(1)
	r.degraded.Add(1)
	for _, c := range r.clusters {
		c.degraded.Add(1)
	}
}

// RecordBudgetExhausted accumulates one exhausted deterministic DPLL
// budget (each failed attempt counts, including the one before a retry).
func (p *Profiler) RecordBudgetExhausted(key string) {
	if p == nil {
		return
	}
	r := p.sigFor(key)
	r.heat.Add(1)
	r.budgetExhausted.Add(1)
	for _, c := range r.clusters {
		c.budgetExhausted.Add(1)
	}
}

// SeedCluster records a cluster's shape — violation count, source repair
// envelope size, and influence (support-closure breadth on the target
// side) — measured once at envelope construction.
func (p *Profiler) SeedCluster(id, violations, envelopeFacts, influenceFacts int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	c := p.clusterForLocked(id)
	c.violations = violations
	c.envelopeFacts = envelopeFacts
	c.influenceFacts = influenceFacts
	p.mu.Unlock()
}

// Records returns the live signature-record count (0 on nil).
func (p *Profiler) Records() int {
	if p == nil {
		return 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.sigs)
}

// Solves returns the total solves recorded, including into since-evicted
// records (0 on nil).
func (p *Profiler) Solves() int64 {
	if p == nil {
		return 0
	}
	return p.totalSolves.Load()
}

// Evictions returns the signature records evicted so far (0 on nil).
func (p *Profiler) Evictions() int64 {
	if p == nil {
		return 0
	}
	return p.evictions.Load()
}

func (p *Profiler) sigFor(key string) *sigRecord {
	p.mu.RLock()
	r := p.sigs[key]
	p.mu.RUnlock()
	if r != nil {
		return r
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sigForLocked(key)
}

func (p *Profiler) sigForLocked(key string) *sigRecord {
	if r := p.sigs[key]; r != nil {
		return r
	}
	if len(p.sigs) >= p.maxRecords {
		p.evictLocked()
	}
	r := &sigRecord{key: key}
	for _, id := range parseKey(key) {
		r.clusters = append(r.clusters, p.clusterForLocked(id))
	}
	p.sigs[key] = r
	p.mCreated.Inc()
	p.mRecords.Set(int64(len(p.sigs)))
	return r
}

func (p *Profiler) clusterForLocked(id int) *clusterRecord {
	c, ok := p.clusters[id]
	if !ok {
		c = &clusterRecord{id: id}
		p.clusters[id] = c
	}
	return c
}

// evictLocked makes room for one insertion: evict the coldest record
// (smallest heat, ties toward the smallest key), then halve every
// survivor's heat so historical popularity decays.
func (p *Profiler) evictLocked() {
	for len(p.sigs) >= p.maxRecords {
		var victim *sigRecord
		for _, r := range p.sigs {
			if victim == nil {
				victim = r
				continue
			}
			h, vh := r.heat.Load(), victim.heat.Load()
			if h < vh || (h == vh && r.key < victim.key) {
				victim = r
			}
		}
		delete(p.sigs, victim.key)
		p.evictions.Add(1)
		p.mEvictions.Inc()
	}
	for _, r := range p.sigs {
		r.heat.Store(r.heat.Load() >> 1)
	}
	p.mRecords.Set(int64(len(p.sigs)))
}

// parseKey splits a canonical signature key back into cluster ids; it is
// the inverse of the key construction in internal/xr (sorted ids joined
// with commas). Malformed segments are skipped, never fatal.
func parseKey(key string) []int {
	if key == "" {
		return nil
	}
	parts := strings.Split(key, ",")
	ids := make([]int, 0, len(parts))
	for _, s := range parts {
		if id, err := strconv.Atoi(strings.TrimSpace(s)); err == nil {
			ids = append(ids, id)
		}
	}
	return ids
}
