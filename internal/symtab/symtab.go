// Package symtab provides the value universe shared by all instances:
// interned constants and labeled nulls, encoded as compact integer values.
//
// The paper fixes an infinite set Const of constants and a disjoint infinite
// set Nulls of labeled nulls. We represent both as Value, a signed 32-bit
// handle: positive handles are constants interned in a Universe, negative
// handles are labeled nulls. Value 0 is the invalid zero value.
package symtab

import (
	"fmt"
	"strconv"
)

// Value is a compact handle for a constant or a labeled null.
// Positive values are constants (indexes into a Universe), negative values
// are labeled nulls, and zero is invalid.
type Value int32

// None is the invalid zero Value.
const None Value = 0

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return v > 0 }

// IsNull reports whether v is a labeled null.
func (v Value) IsNull() bool { return v < 0 }

// NullID returns the identifier of a labeled null (1-based).
// It panics if v is not a null.
func (v Value) NullID() int {
	if !v.IsNull() {
		panic(fmt.Sprintf("symtab: NullID on non-null value %d", v))
	}
	return int(-v)
}

// Null returns the labeled null with the given 1-based identifier.
func Null(id int) Value {
	if id <= 0 {
		panic(fmt.Sprintf("symtab: null id must be positive, got %d", id))
	}
	return Value(-id)
}

// Universe interns constant names and resolves Values back to names.
// The zero value is not usable; call NewUniverse.
//
// A Universe is not safe for concurrent mutation; concurrent reads are safe
// once all constants are interned.
type Universe struct {
	names []string         // names[i] is the name of constant Value(i+1)
	ids   map[string]Value // name -> constant value
	nulls int32            // number of nulls handed out by FreshNull
}

// NewUniverse returns an empty Universe.
func NewUniverse() *Universe {
	return &Universe{ids: make(map[string]Value)}
}

// Const interns name and returns its constant Value.
func (u *Universe) Const(name string) Value {
	if v, ok := u.ids[name]; ok {
		return v
	}
	u.names = append(u.names, name)
	v := Value(len(u.names))
	u.ids[name] = v
	return v
}

// Lookup returns the constant Value for name, or (None, false) if name has
// never been interned.
func (u *Universe) Lookup(name string) (Value, bool) {
	v, ok := u.ids[name]
	return v, ok
}

// FreshNull returns a labeled null never returned before by this Universe.
func (u *Universe) FreshNull() Value {
	u.nulls++
	return Value(-u.nulls)
}

// NumNulls returns how many nulls FreshNull has handed out.
func (u *Universe) NumNulls() int { return int(u.nulls) }

// NumConsts returns how many constants have been interned.
func (u *Universe) NumConsts() int { return len(u.names) }

// Name renders v for display: the interned name for constants, "_Nk" for
// labeled nulls.
func (u *Universe) Name(v Value) string {
	switch {
	case v.IsConst():
		i := int(v) - 1
		if i >= len(u.names) {
			return "#" + strconv.Itoa(int(v))
		}
		return u.names[i]
	case v.IsNull():
		return "_N" + strconv.Itoa(v.NullID())
	default:
		return "<none>"
	}
}

// Names renders a tuple of values.
func (u *Universe) Names(vs []Value) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = u.Name(v)
	}
	return out
}
