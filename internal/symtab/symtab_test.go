package symtab

import (
	"testing"
	"testing/quick"
)

func TestConstInterning(t *testing.T) {
	u := NewUniverse()
	a := u.Const("a")
	b := u.Const("b")
	if a == b {
		t.Fatalf("distinct names interned to same value: %d", a)
	}
	if got := u.Const("a"); got != a {
		t.Fatalf("re-interning a: got %d want %d", got, a)
	}
	if !a.IsConst() || a.IsNull() {
		t.Fatalf("constant kind flags wrong: %v", a)
	}
	if u.NumConsts() != 2 {
		t.Fatalf("NumConsts = %d, want 2", u.NumConsts())
	}
}

func TestLookup(t *testing.T) {
	u := NewUniverse()
	if _, ok := u.Lookup("missing"); ok {
		t.Fatal("Lookup on empty universe succeeded")
	}
	v := u.Const("x")
	got, ok := u.Lookup("x")
	if !ok || got != v {
		t.Fatalf("Lookup(x) = %d,%v want %d,true", got, ok, v)
	}
}

func TestFreshNulls(t *testing.T) {
	u := NewUniverse()
	n1 := u.FreshNull()
	n2 := u.FreshNull()
	if n1 == n2 {
		t.Fatal("FreshNull returned the same null twice")
	}
	if !n1.IsNull() || n1.IsConst() {
		t.Fatalf("null kind flags wrong: %v", n1)
	}
	if n1.NullID() != 1 || n2.NullID() != 2 {
		t.Fatalf("null ids: %d,%d want 1,2", n1.NullID(), n2.NullID())
	}
	if u.NumNulls() != 2 {
		t.Fatalf("NumNulls = %d, want 2", u.NumNulls())
	}
}

func TestNames(t *testing.T) {
	u := NewUniverse()
	a := u.Const("alpha")
	n := u.FreshNull()
	if got := u.Name(a); got != "alpha" {
		t.Fatalf("Name(const) = %q", got)
	}
	if got := u.Name(n); got != "_N1" {
		t.Fatalf("Name(null) = %q", got)
	}
	if got := u.Name(None); got != "<none>" {
		t.Fatalf("Name(None) = %q", got)
	}
	names := u.Names([]Value{a, n})
	if len(names) != 2 || names[0] != "alpha" || names[1] != "_N1" {
		t.Fatalf("Names = %v", names)
	}
}

func TestNullConstructor(t *testing.T) {
	if Null(3).NullID() != 3 {
		t.Fatal("Null(3) round trip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Null(0) did not panic")
		}
	}()
	Null(0)
}

func TestNullIDPanicsOnConst(t *testing.T) {
	u := NewUniverse()
	v := u.Const("c")
	defer func() {
		if recover() == nil {
			t.Fatal("NullID on constant did not panic")
		}
	}()
	v.NullID()
}

func TestInterningIsInjective(t *testing.T) {
	u := NewUniverse()
	seen := map[Value]string{}
	f := func(s string) bool {
		v := u.Const(s)
		if prev, ok := seen[v]; ok && prev != s {
			return false
		}
		seen[v] = s
		return u.Name(v) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
