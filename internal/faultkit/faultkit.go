// Package faultkit provides deterministic, seed-keyed fault injection for
// chaos-testing the xr engines' degradation paths.
//
// An Injector holds a set of fault specifications and compiles to a hook
// compatible with xr's Options.FaultHook (func(site, key string) error).
// Whether a fault fires at a given (site, key) is a pure function of the
// injector seed and the pair — an FNV-1a hash thresholded against the
// fault's rate — never of time, scheduling, or math/rand state. The same
// seed therefore produces the same fault pattern at any parallelism and on
// every run, which is what lets chaos tests assert byte-identical answers
// and exact soundness envelopes instead of merely "did not crash".
//
// The injection sites mirror the string constants fired by internal/xr
// ("solve", "ground", "cache") and internal/store ("store.write",
// "store.sync", "store.rename", "store.read"); faultkit deliberately
// duplicates them so the engines never import the testing harness.
package faultkit

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Injection sites fired by the xr engines. The values must match the
// site names xr passes to Options.FaultHook.
const (
	SiteSolve  = "solve"  // before cautious/brave reasoning on a signature program
	SiteGround = "ground" // before a signature program's base grounding
	SiteCache  = "cache"  // on a signature-program cache hit
)

// Filesystem injection sites fired by internal/store's write protocol and
// recovery path. The values must match the site names store passes to its
// fault hook.
const (
	SiteFSWrite  = "store.write"  // before the temp file's bytes are written
	SiteFSSync   = "store.sync"   // before an fsync (file and directory syncs both fire here)
	SiteFSRename = "store.rename" // before the temp file renames over the final path
	SiteFSRead   = "store.read"   // before a snapshot/manifest file is read back
)

// Kind enumerates the supported fault kinds.
type Kind int

const (
	// SolveDelay sleeps Delay at the solve site and lets solving proceed;
	// combined with a small SignatureTimeout it forces per-signature
	// timeouts without patching the solver.
	SolveDelay Kind = iota
	// SolvePanic panics at the solve site, exercising the worker-pool
	// panic containment (the engine must convert it to ErrInternal).
	SolvePanic
	// GroundErr returns an error at the ground site, simulating a failed
	// signature-program grounding.
	GroundErr
	// CacheCorrupt returns an error at the cache site, reporting the
	// cached signature program as corrupt; the engine must discard the
	// entry and rebuild it with identical answers.
	CacheCorrupt
	// FSWriteErr returns an error at the store.write site, simulating a
	// failed (or, with Err set to the store's short-write sentinel, torn)
	// temp-file write.
	FSWriteErr
	// FSSyncErr returns an error at the store.sync site, simulating a
	// failed fsync of the temp file or its directory.
	FSSyncErr
	// FSRenameErr returns an error at the store.rename site, simulating a
	// failed atomic rename; the temp file is left behind, the final path
	// untouched.
	FSRenameErr
	// FSReadCorrupt returns an error at the store.read site, simulating an
	// unreadable snapshot or manifest during recovery; the store must
	// quarantine the artifact instead of aborting startup.
	FSReadCorrupt
)

// String names the kind for test output.
func (k Kind) String() string {
	switch k {
	case SolveDelay:
		return "SolveDelay"
	case SolvePanic:
		return "SolvePanic"
	case GroundErr:
		return "GroundErr"
	case CacheCorrupt:
		return "CacheCorrupt"
	case FSWriteErr:
		return "FSWriteErr"
	case FSSyncErr:
		return "FSSyncErr"
	case FSRenameErr:
		return "FSRenameErr"
	case FSReadCorrupt:
		return "FSReadCorrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// site returns the injection site the kind fires at.
func (k Kind) site() string {
	switch k {
	case GroundErr:
		return SiteGround
	case CacheCorrupt:
		return SiteCache
	case FSWriteErr:
		return SiteFSWrite
	case FSSyncErr:
		return SiteFSSync
	case FSRenameErr:
		return SiteFSRename
	case FSReadCorrupt:
		return SiteFSRead
	default:
		return SiteSolve
	}
}

// ErrInjected is the default error carried by injected GroundErr and
// CacheCorrupt faults.
var ErrInjected = errors.New("faultkit: injected fault")

// Fault is one fault specification.
type Fault struct {
	Kind Kind
	// Match restricts the fault to one exact key (a signature key for the
	// segmentary engine, a query name for the monolithic engine); empty
	// matches every key.
	Match string
	// Rate is the firing probability in (0, 1], decided by the seed-keyed
	// hash of (site, key); values <= 0 or >= 1 mean "always fire" (on
	// matching keys).
	Rate float64
	// Count caps the total number of firings (0 = unlimited). Unlike the
	// hash decision the cap is order-sensitive under parallelism, so
	// deterministic tests should prefer Match/Rate and leave Count zero.
	Count int
	// Delay is the sleep of a SolveDelay fault.
	Delay time.Duration
	// Err overrides ErrInjected for GroundErr / CacheCorrupt faults.
	Err error
}

// Injector decides and counts fault firings. Safe for concurrent use.
type Injector struct {
	seed   uint64
	faults []Fault

	mu    sync.Mutex
	fired map[Kind]int
	count []int // per-fault firing counts, for Count caps
}

// New builds an injector over the given faults; seed keys every firing
// decision.
func New(seed uint64, faults ...Fault) *Injector {
	return &Injector{
		seed:   seed,
		faults: faults,
		fired:  make(map[Kind]int),
		count:  make([]int, len(faults)),
	}
}

// Fired returns how many times faults of kind k fired so far. Chaos tests
// use it to prove a run was non-vacuous (the faults actually hit).
func (inj *Injector) Fired(k Kind) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired[k]
}

// decide reports whether fault fi fires at (site, key): the fault's site
// and Match must agree, the seed-keyed hash must clear the rate, and a
// Count cap must not be spent. The hash decision is a pure function of
// (seed, fault index, site, key).
func (inj *Injector) decide(fi int, site, key string) bool {
	f := &inj.faults[fi]
	if f.Kind.site() != site {
		return false
	}
	if f.Match != "" && f.Match != key {
		return false
	}
	if f.Rate > 0 && f.Rate < 1 {
		h := fnv1a(inj.seed + uint64(fi)*0x9e3779b97f4a7c15)
		h = fnv1aString(h, site)
		h = fnv1aString(h, key)
		// FNV's high bits avalanche poorly on short inputs; finalize with a
		// splitmix64-style mix before thresholding into [0, 1).
		h = mix(h)
		if float64(h>>11)/(1<<53) >= f.Rate {
			return false
		}
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if f.Count > 0 && inj.count[fi] >= f.Count {
		return false
	}
	inj.count[fi]++
	inj.fired[f.Kind]++
	return true
}

// Hook compiles the injector into an Options.FaultHook-compatible
// function. A SolveDelay fault sleeps and returns nil; a SolvePanic fault
// panics; GroundErr and CacheCorrupt return their error.
func (inj *Injector) Hook() func(site, key string) error {
	return func(site, key string) error {
		for fi := range inj.faults {
			if !inj.decide(fi, site, key) {
				continue
			}
			f := &inj.faults[fi]
			switch f.Kind {
			case SolveDelay:
				time.Sleep(f.Delay)
			case SolvePanic:
				panic(fmt.Sprintf("faultkit: injected panic at %s/%s", site, key))
			default:
				if f.Err != nil {
					return fmt.Errorf("%s at %s/%s: %w", f.Kind, site, key, f.Err)
				}
				return fmt.Errorf("%s at %s/%s: %w", f.Kind, site, key, ErrInjected)
			}
		}
		return nil
	}
}

// mix is the splitmix64 finalizer: full-avalanche bit diffusion so the
// thresholded high bits are uniform even for near-identical inputs.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// fnv1a folds a uint64 into an FNV-1a hash byte by byte.
func fnv1a(v uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 0x100000001b3
		v >>= 8
	}
	return h
}

// fnv1aString continues an FNV-1a hash over a string.
func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
