package faultkit

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestHookDeterministic proves the firing decision is a pure function of
// (seed, site, key): two injectors with the same seed agree on every pair,
// and a different seed produces a different pattern somewhere.
func TestHookDeterministic(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	pattern := func(seed uint64) []bool {
		inj := New(seed, Fault{Kind: GroundErr, Rate: 0.5})
		hook := inj.Hook()
		out := make([]bool, len(keys))
		for i, k := range keys {
			out[i] = hook(SiteGround, k) != nil
		}
		return out
	}
	p1, p2 := pattern(42), pattern(42)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed disagrees at key %q", keys[i])
		}
	}
	p3 := pattern(43)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical patterns over %d keys", len(keys))
	}
}

// TestRateZeroAndOne: rate 0 (or unset) and rate 1 both mean always-fire
// on matching keys.
func TestRateZeroAndOne(t *testing.T) {
	for _, rate := range []float64{0, 1} {
		inj := New(1, Fault{Kind: GroundErr, Rate: rate})
		hook := inj.Hook()
		if hook(SiteGround, "k") == nil {
			t.Fatalf("rate %v: expected fault to fire", rate)
		}
	}
}

// TestMatchRestrictsKey: a Match fault fires only on its exact key and
// only at its kind's site.
func TestMatchRestrictsKey(t *testing.T) {
	inj := New(1, Fault{Kind: GroundErr, Match: "target"})
	hook := inj.Hook()
	if err := hook(SiteGround, "other"); err != nil {
		t.Fatalf("fired on non-matching key: %v", err)
	}
	if err := hook(SiteSolve, "target"); err != nil {
		t.Fatalf("fired on wrong site: %v", err)
	}
	if err := hook(SiteGround, "target"); err == nil {
		t.Fatal("did not fire on matching key at matching site")
	}
	if got := inj.Fired(GroundErr); got != 1 {
		t.Fatalf("Fired(GroundErr) = %d, want 1", got)
	}
}

// TestCountCap: a Count cap stops firing after the cap is spent, even
// under concurrent use.
func TestCountCap(t *testing.T) {
	inj := New(1, Fault{Kind: CacheCorrupt, Count: 3})
	hook := inj.Hook()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		hits int
	)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if hook(SiteCache, "k") != nil {
				mu.Lock()
				hits++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if hits != 3 {
		t.Fatalf("fired %d times, want 3", hits)
	}
	if got := inj.Fired(CacheCorrupt); got != 3 {
		t.Fatalf("Fired(CacheCorrupt) = %d, want 3", got)
	}
}

// TestErrWrapping: injected errors match ErrInjected (or the override)
// under errors.Is.
func TestErrWrapping(t *testing.T) {
	inj := New(1, Fault{Kind: GroundErr})
	if err := inj.Hook()(SiteGround, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v does not wrap ErrInjected", err)
	}
	custom := errors.New("disk on fire")
	inj2 := New(1, Fault{Kind: CacheCorrupt, Err: custom})
	if err := inj2.Hook()(SiteCache, "k"); !errors.Is(err, custom) {
		t.Fatalf("error %v does not wrap the override", err)
	}
}

// TestSolvePanicPanics: a SolvePanic fault panics at the solve site.
func TestSolvePanicPanics(t *testing.T) {
	inj := New(1, Fault{Kind: SolvePanic, Match: "sig"})
	hook := inj.Hook()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
		if got := inj.Fired(SolvePanic); got != 1 {
			t.Fatalf("Fired(SolvePanic) = %d, want 1", got)
		}
	}()
	hook(SiteSolve, "sig")
}

// TestSolveDelaySleeps: a SolveDelay fault sleeps at least Delay and
// returns nil (solving proceeds).
func TestSolveDelaySleeps(t *testing.T) {
	inj := New(1, Fault{Kind: SolveDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := inj.Hook()(SiteSolve, "k"); err != nil {
		t.Fatalf("SolveDelay returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slept only %v, want >= 20ms", d)
	}
}

// TestKindString covers the debug names.
func TestKindString(t *testing.T) {
	want := map[Kind]string{
		SolveDelay: "SolveDelay", SolvePanic: "SolvePanic",
		GroundErr: "GroundErr", CacheCorrupt: "CacheCorrupt",
		Kind(99): "Kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestRateSelectivity sanity-checks the hash threshold: over many keys a
// 0.3-rate fault should fire on some but not all.
func TestRateSelectivity(t *testing.T) {
	inj := New(7, Fault{Kind: GroundErr, Rate: 0.3})
	hook := inj.Hook()
	fired := 0
	const n = 200
	for i := 0; i < n; i++ {
		if hook(SiteGround, string(rune('a'+i%26))+string(rune('0'+i/26))) != nil {
			fired++
		}
	}
	if fired == 0 || fired == n {
		t.Fatalf("rate 0.3 fired %d/%d — threshold not selective", fired, n)
	}
}
