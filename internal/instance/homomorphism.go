package instance

import (
	"repro/internal/symtab"
)

// Homomorphism searches for a homomorphism from src to dst: a map h on the
// active domain of src with h(c) = c for constants, such that the h-image of
// every fact of src is a fact of dst. It returns the null assignment and
// whether one exists.
//
// This is the textbook exponential backtracking search; it is used for
// verifying universal solutions in tests and for small instances only.
func Homomorphism(src, dst *Instance) (map[symtab.Value]symtab.Value, bool) {
	facts := src.Facts()
	h := make(map[symtab.Value]symtab.Value)
	if solveHom(facts, 0, dst, h) {
		return h, true
	}
	return nil, false
}

func solveHom(facts []Fact, i int, dst *Instance, h map[symtab.Value]symtab.Value) bool {
	if i == len(facts) {
		return true
	}
	f := facts[i]
	// Build the match pattern from already-bound values.
	pattern := make([]symtab.Value, len(f.Args))
	freeNulls := false
	for j, a := range f.Args {
		switch {
		case a.IsConst():
			pattern[j] = a
		case a.IsNull():
			if img, ok := h[a]; ok {
				pattern[j] = img
			} else {
				pattern[j] = symtab.None
				freeNulls = true
			}
		default:
			pattern[j] = symtab.None
		}
	}
	if !freeNulls {
		if dst.Contains(f.Rel, pattern) {
			return solveHom(facts, i+1, dst, h)
		}
		return false
	}
	for _, t := range dst.Match(f.Rel, pattern) {
		// Tentatively bind the unbound nulls of f to the tuple values,
		// respecting repeated nulls within the fact.
		bound := make([]symtab.Value, 0, len(f.Args))
		consistent := true
		for j, a := range f.Args {
			if !a.IsNull() {
				continue
			}
			if img, ok := h[a]; ok {
				if img != t[j] {
					consistent = false
					break
				}
				continue
			}
			h[a] = t[j]
			bound = append(bound, a)
		}
		if consistent && solveHom(facts, i+1, dst, h) {
			return true
		}
		for _, a := range bound {
			delete(h, a)
		}
	}
	return false
}

// ApplyValueMap returns a copy of in with every value v replaced by m[v]
// when m has a binding for v. Facts that collide after replacement merge.
func ApplyValueMap(in *Instance, m map[symtab.Value]symtab.Value) *Instance {
	out := New(in.Catalog())
	for _, f := range in.Facts() {
		args := make([]symtab.Value, len(f.Args))
		for i, a := range f.Args {
			if img, ok := m[a]; ok {
				args[i] = img
			} else {
				args[i] = a
			}
		}
		out.Add(f.Rel, args)
	}
	return out
}
