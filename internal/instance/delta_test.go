package instance

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/symtab"
)

func deltaWorld() (*Instance, *schema.Relation, *symtab.Universe) {
	cat := schema.NewCatalog()
	e := cat.MustAdd("E", 2)
	return New(cat), e, symtab.NewUniverse()
}

func TestGenerationsAndDeltaSince(t *testing.T) {
	in, e, u := deltaWorld()
	a, b, c := u.Const("a"), u.Const("b"), u.Const("c")
	in.Add(e.ID, []symtab.Value{a, b})
	mark := in.Gen()
	if mark != 1 {
		t.Fatalf("Gen after one insert = %d, want 1", mark)
	}
	in.Add(e.ID, []symtab.Value{b, c})
	in.Add(e.ID, []symtab.Value{a, b}) // duplicate: no new generation
	if in.Gen() != 2 {
		t.Fatalf("Gen = %d, want 2 (duplicate must not advance)", in.Gen())
	}
	if in.RelGen(e.ID) != 2 {
		t.Fatalf("RelGen = %d, want 2", in.RelGen(e.ID))
	}
	delta := in.DeltaSince(e.ID, mark)
	if len(delta) != 1 || delta[0][0] != b || delta[0][1] != c {
		t.Fatalf("DeltaSince(%d) = %v, want [[b c]]", mark, delta)
	}
	if len(in.DeltaSince(e.ID, in.Gen())) != 0 {
		t.Fatal("DeltaSince(current) must be empty")
	}
}

func TestAddWithGenReturnsExistingGeneration(t *testing.T) {
	in, e, u := deltaWorld()
	a, b := u.Const("a"), u.Const("b")
	g1, added := in.AddWithGen(e.ID, []symtab.Value{a, b})
	if !added || g1 != 1 {
		t.Fatalf("first AddWithGen = (%d, %v), want (1, true)", g1, added)
	}
	g2, added := in.AddWithGen(e.ID, []symtab.Value{a, b})
	if added || g2 != g1 {
		t.Fatalf("duplicate AddWithGen = (%d, %v), want (%d, false)", g2, added, g1)
	}
	if g, ok := in.GenOf(e.ID, []symtab.Value{a, b}); !ok || g != g1 {
		t.Fatalf("GenOf = (%d, %v), want (%d, true)", g, ok, g1)
	}
	if _, ok := in.GenOf(e.ID, []symtab.Value{b, a}); ok {
		t.Fatal("GenOf of absent tuple must report false")
	}
}

func TestForEachMatchGenerationWindows(t *testing.T) {
	in, e, u := deltaWorld()
	a := u.Const("a")
	var vals []symtab.Value
	for i := 0; i < 6; i++ {
		v := u.Const(string(rune('p' + i)))
		vals = append(vals, v)
		in.Add(e.ID, []symtab.Value{a, v})
	}
	collect := func(lo, hi uint64) []symtab.Value {
		var out []symtab.Value
		in.ForEachMatch(e.ID, []symtab.Value{a, symtab.None}, lo, hi, func(tup []symtab.Value, gen uint64) bool {
			out = append(out, tup[1])
			return true
		})
		return out
	}
	got := collect(2, 5) // generations 3, 4, 5
	if len(got) != 3 || got[0] != vals[2] || got[2] != vals[4] {
		t.Fatalf("window (2,5] = %v, want vals[2:5]", got)
	}
	if n := len(collect(0, ^uint64(0))); n != 6 {
		t.Fatalf("full window = %d tuples, want 6", n)
	}
	if n := len(collect(6, ^uint64(0))); n != 0 {
		t.Fatal("empty delta window must match nothing")
	}
}

func TestPersistentIndexSurvivesRemove(t *testing.T) {
	in, e, u := deltaWorld()
	a, b := u.Const("a"), u.Const("b")
	var tuples [][]symtab.Value
	for i := 0; i < 5; i++ {
		v := u.Const(string(rune('p' + i)))
		tup := []symtab.Value{a, v}
		tuples = append(tuples, tup)
		in.Add(e.ID, tup)
	}
	in.Add(e.ID, []symtab.Value{b, u.Const("q")})
	// Force the column-0 index, then mutate and re-query: the index must be
	// patched in place, not rebuilt (builds stays at 1).
	if n := len(in.Lookup(e.ID, 0, a)); n != 5 {
		t.Fatalf("initial lookup = %d, want 5", n)
	}
	builds := in.IndexBuilds()
	in.Remove(e.ID, tuples[1])
	in.Add(e.ID, []symtab.Value{a, u.Const("z")})
	got := in.Lookup(e.ID, 0, a)
	if len(got) != 5 {
		t.Fatalf("lookup after remove+add = %d, want 5", len(got))
	}
	for _, tup := range got {
		if tup[0] != a {
			t.Fatal("index returned a non-matching tuple")
		}
		if tup[1] == tuples[1][1] {
			t.Fatal("index still lists the removed tuple")
		}
	}
	if in.IndexBuilds() != builds {
		t.Fatalf("index was rebuilt (%d -> %d builds); want incremental maintenance", builds, in.IndexBuilds())
	}
	if in.IndexProbes() == 0 {
		t.Fatal("probes counter did not advance")
	}
}

func TestRewriteValuesStampsNewGenerations(t *testing.T) {
	in, e, u := deltaWorld()
	a, b, c, d := u.Const("a"), u.Const("b"), u.Const("c"), u.Const("d")
	in.Add(e.ID, []symtab.Value{a, b})
	in.Add(e.ID, []symtab.Value{c, d})
	in.Add(e.ID, []symtab.Value{a, d})
	mark := in.Gen()

	n := in.RewriteValues(map[symtab.Value]symtab.Value{b: d})
	if n != 1 {
		t.Fatalf("rewrote %d tuples, want 1", n)
	}
	if !in.Contains(e.ID, []symtab.Value{a, d}) || in.Contains(e.ID, []symtab.Value{a, b}) {
		t.Fatal("rewrite did not replace (a,b) with (a,d)")
	}
	// (a,b) -> (a,d) collides with the existing (a,d): the instance merges.
	if in.Len() != 2 {
		t.Fatalf("Len = %d after merging rewrite, want 2", in.Len())
	}
	// Untouched tuples keep their generations; only rewrites are delta.
	if g, _ := in.GenOf(e.ID, []symtab.Value{c, d}); g > mark {
		t.Fatal("untouched tuple was restamped")
	}
	delta := in.DeltaSince(e.ID, mark)
	for _, tup := range delta {
		if tup[1] == b {
			t.Fatal("delta still contains a pre-rewrite value")
		}
	}
}

func TestCloneSharesNothingMutable(t *testing.T) {
	in, e, u := deltaWorld()
	a, b := u.Const("a"), u.Const("b")
	in.Add(e.ID, []symtab.Value{a, b})
	gen := in.Gen()
	cp := in.Clone()
	if cp.Gen() != gen || cp.RelGen(e.ID) != in.RelGen(e.ID) {
		t.Fatal("clone did not preserve generations")
	}
	cp.Add(e.ID, []symtab.Value{b, a})
	if in.Contains(e.ID, []symtab.Value{b, a}) || in.Gen() != gen {
		t.Fatal("mutating the clone changed the original")
	}
	if g, ok := cp.GenOf(e.ID, []symtab.Value{a, b}); !ok || g != 1 {
		t.Fatalf("clone GenOf = (%d, %v), want (1, true)", g, ok)
	}
}
