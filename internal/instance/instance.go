// Package instance implements database instances as finite sets of facts
// over a schema.Catalog, with hash indexes to support conjunctive query
// evaluation and the chase.
//
// Following the paper, an instance's active domain may contain constants and
// labeled nulls (source instances are assumed null-free; target instances
// produced by the chase may contain nulls).
package instance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/symtab"
)

// Fact is a single fact R(a1, ..., ak).
type Fact struct {
	Rel  schema.RelID
	Args []symtab.Value
}

// Key returns a canonical map key for the fact.
func (f Fact) Key() string {
	var b strings.Builder
	b.Grow(4 * (len(f.Args) + 1))
	writeVal(&b, symtab.Value(f.Rel))
	for _, a := range f.Args {
		writeVal(&b, a)
	}
	return b.String()
}

func writeVal(b *strings.Builder, v symtab.Value) {
	b.WriteByte(byte(v))
	b.WriteByte(byte(v >> 8))
	b.WriteByte(byte(v >> 16))
	b.WriteByte(byte(v >> 24))
}

// EncodeTuple returns a canonical map key for a tuple of values.
func EncodeTuple(args []symtab.Value) string {
	var b strings.Builder
	b.Grow(4 * len(args))
	for _, a := range args {
		writeVal(&b, a)
	}
	return b.String()
}

// String renders the fact using the universe for value names.
func (f Fact) String(cat *schema.Catalog, u *symtab.Universe) string {
	return fmt.Sprintf("%s(%s)", cat.ByID(f.Rel).Name, strings.Join(u.Names(f.Args), ","))
}

// HasNull reports whether any argument of f is a labeled null.
func (f Fact) HasNull() bool {
	for _, a := range f.Args {
		if a.IsNull() {
			return true
		}
	}
	return false
}

// relation stores the tuples of one relation plus lazily built column
// indexes. Tuples are kept in an ordered slice (insertion order, with
// swap-remove on delete) rather than ranged out of a map: every enumeration
// the chase and query evaluator see is then deterministic, which keeps
// ground-program atom numbering and rule order — and with them solver
// effort and telemetry counters — identical from run to run.
type relation struct {
	keys   map[string]int   // canonical tuple key -> index into tuples
	tuples [][]symtab.Value // ordered; the single source of iteration order
	// idx[col] maps a value to the tuples having that value in column col.
	// Indexes are dropped on mutation and rebuilt on demand.
	idx map[int]map[symtab.Value][][]symtab.Value
}

func newRelation() *relation {
	return &relation{keys: make(map[string]int)}
}

func (r *relation) invalidate() { r.idx = nil }

func (r *relation) index(col int) map[symtab.Value][][]symtab.Value {
	if r.idx == nil {
		r.idx = make(map[int]map[symtab.Value][][]symtab.Value)
	}
	if m, ok := r.idx[col]; ok {
		return m
	}
	m := make(map[symtab.Value][][]symtab.Value)
	for _, tup := range r.tuples {
		v := tup[col]
		m[v] = append(m[v], tup)
	}
	r.idx[col] = m
	return m
}

// Instance is a mutable set of facts. The zero value is not usable; call New.
type Instance struct {
	cat  *schema.Catalog
	rels map[schema.RelID]*relation
	size int
}

// New returns an empty instance over the given catalog.
func New(cat *schema.Catalog) *Instance {
	return &Instance{cat: cat, rels: make(map[schema.RelID]*relation)}
}

// Catalog returns the catalog the instance is over.
func (in *Instance) Catalog() *schema.Catalog { return in.cat }

// Len returns the number of facts.
func (in *Instance) Len() int { return in.size }

// LenOf returns the number of facts of one relation.
func (in *Instance) LenOf(rel schema.RelID) int {
	r, ok := in.rels[rel]
	if !ok {
		return 0
	}
	return len(r.tuples)
}

// add appends a tuple under its canonical key, reporting whether it was new.
func (r *relation) add(k string, args []symtab.Value) bool {
	if _, dup := r.keys[k]; dup {
		return false
	}
	r.keys[k] = len(r.tuples)
	r.tuples = append(r.tuples, args)
	r.invalidate()
	return true
}

// remove deletes the tuple under k by swap-remove (the tail tuple takes its
// slot). The order change is itself deterministic given deterministic
// insertion and removal sequences, which is all iteration-order stability
// requires.
func (r *relation) remove(k string) bool {
	i, ok := r.keys[k]
	if !ok {
		return false
	}
	delete(r.keys, k)
	last := len(r.tuples) - 1
	if i != last {
		moved := r.tuples[last]
		r.tuples[i] = moved
		r.keys[EncodeTuple(moved)] = i
	}
	r.tuples[last] = nil
	r.tuples = r.tuples[:last]
	r.invalidate()
	return true
}

// Insert inserts a fact, reporting whether it was newly added. An
// argument count that does not match the relation's declared arity
// returns a *schema.ArityError instead of corrupting the relation; use
// Insert (not Add) on untrusted input. The argument slice is retained;
// callers must not mutate it afterwards.
func (in *Instance) Insert(rel schema.RelID, args []symtab.Value) (bool, error) {
	if want := in.cat.ByID(rel).Arity; len(args) != want {
		return false, fmt.Errorf("instance: %w", &schema.ArityError{Rel: in.cat.ByID(rel).Name, Want: want, Got: len(args)})
	}
	r, ok := in.rels[rel]
	if !ok {
		r = newRelation()
		in.rels[rel] = r
	}
	if !r.add(EncodeTuple(args), args) {
		return false, nil
	}
	in.size++
	return true, nil
}

// InsertFact inserts f; see Insert.
func (in *Instance) InsertFact(f Fact) (bool, error) { return in.Insert(f.Rel, f.Args) }

// Add is the Must-style form of Insert for static setup code and internal
// callers whose arities are correct by construction: it panics with a
// *schema.ArityError on mismatch.
func (in *Instance) Add(rel schema.RelID, args []symtab.Value) bool {
	added, err := in.Insert(rel, args)
	if err != nil {
		panic(err)
	}
	return added
}

// AddFact inserts f; see Add.
func (in *Instance) AddFact(f Fact) bool { return in.Add(f.Rel, f.Args) }

// Remove deletes a fact and reports whether it was present.
func (in *Instance) Remove(rel schema.RelID, args []symtab.Value) bool {
	r, ok := in.rels[rel]
	if !ok {
		return false
	}
	if !r.remove(EncodeTuple(args)) {
		return false
	}
	in.size--
	return true
}

// RemoveFact deletes f; see Remove.
func (in *Instance) RemoveFact(f Fact) bool { return in.Remove(f.Rel, f.Args) }

// Contains reports whether the fact is present.
func (in *Instance) Contains(rel schema.RelID, args []symtab.Value) bool {
	r, ok := in.rels[rel]
	if !ok {
		return false
	}
	_, present := r.keys[EncodeTuple(args)]
	return present
}

// ContainsFact reports whether f is present.
func (in *Instance) ContainsFact(f Fact) bool { return in.Contains(f.Rel, f.Args) }

// Tuples returns the tuples of one relation in deterministic (insertion)
// order. The returned slices are shared with the instance; do not mutate
// them.
func (in *Instance) Tuples(rel schema.RelID) [][]symtab.Value {
	r, ok := in.rels[rel]
	if !ok {
		return nil
	}
	out := make([][]symtab.Value, 0, len(r.tuples))
	out = append(out, r.tuples...)
	return out
}

// Facts returns every fact in the instance, grouped by relation in ascending
// relation order; tuples within a relation come in deterministic (insertion)
// order.
func (in *Instance) Facts() []Fact {
	out := make([]Fact, 0, in.size)
	for _, rel := range in.relIDs() {
		for _, t := range in.rels[rel].tuples {
			out = append(out, Fact{Rel: rel, Args: t})
		}
	}
	return out
}

// Relations returns the IDs of relations with at least one fact, ascending.
func (in *Instance) Relations() []schema.RelID { return in.relIDs() }

func (in *Instance) relIDs() []schema.RelID {
	ids := make([]schema.RelID, 0, len(in.rels))
	for id, r := range in.rels {
		if len(r.tuples) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Lookup returns the tuples of rel whose column col holds value v.
// The result is index-backed; do not mutate the returned slices.
func (in *Instance) Lookup(rel schema.RelID, col int, v symtab.Value) [][]symtab.Value {
	r, ok := in.rels[rel]
	if !ok {
		return nil
	}
	return r.index(col)[v]
}

// Match returns the tuples of rel consistent with pattern, where
// symtab.None entries are wildcards. It uses a column index when at least
// one position is bound.
func (in *Instance) Match(rel schema.RelID, pattern []symtab.Value) [][]symtab.Value {
	r, ok := in.rels[rel]
	if !ok {
		return nil
	}
	bound := -1
	for i, p := range pattern {
		if p != symtab.None {
			bound = i
			break
		}
	}
	var cands [][]symtab.Value
	if bound < 0 {
		cands = make([][]symtab.Value, 0, len(r.tuples))
		for _, t := range r.tuples {
			cands = append(cands, t)
		}
		return cands
	}
	var out [][]symtab.Value
	for _, t := range r.index(bound)[pattern[bound]] {
		ok := true
		for i, p := range pattern {
			if p != symtab.None && t[i] != p {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// Clone returns a deep-enough copy: fact sets are copied, tuples are shared
// (tuples are treated as immutable throughout the codebase). Tuple order is
// preserved.
func (in *Instance) Clone() *Instance {
	cp := New(in.cat)
	for id, r := range in.rels {
		nr := newRelation()
		nr.tuples = append([][]symtab.Value(nil), r.tuples...)
		for k, i := range r.keys {
			nr.keys[k] = i
		}
		cp.rels[id] = nr
	}
	cp.size = in.size
	return cp
}

// Restrict returns the sub-instance containing only facts whose relation is
// in s (the paper's "R'-restriction"), in deterministic order.
func (in *Instance) Restrict(s *schema.Schema) *Instance {
	out := New(in.cat)
	for _, id := range in.relIDs() {
		if !s.Contains(id) {
			continue
		}
		for _, t := range in.rels[id].tuples {
			out.Add(id, t)
		}
	}
	return out
}

// AddAll inserts every fact of other in deterministic order and returns the
// number newly added.
func (in *Instance) AddAll(other *Instance) int {
	n := 0
	for _, id := range other.relIDs() {
		for _, t := range other.rels[id].tuples {
			if in.Add(id, t) {
				n++
			}
		}
	}
	return n
}

// SubInstanceOf reports whether every fact of in is a fact of other.
func (in *Instance) SubInstanceOf(other *Instance) bool {
	for id, r := range in.rels {
		for _, t := range r.tuples {
			if !other.Contains(id, t) {
				return false
			}
		}
	}
	return true
}

// Equal reports whether in and other contain exactly the same facts.
func (in *Instance) Equal(other *Instance) bool {
	return in.size == other.size && in.SubInstanceOf(other)
}

// ActiveDomain returns the set of values occurring in facts.
func (in *Instance) ActiveDomain() map[symtab.Value]bool {
	dom := make(map[symtab.Value]bool)
	for _, r := range in.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				dom[v] = true
			}
		}
	}
	return dom
}

// Nulls returns the labeled nulls in the active domain.
func (in *Instance) Nulls() []symtab.Value {
	var out []symtab.Value
	for v := range in.ActiveDomain() {
		if v.IsNull() {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the instance sorted for stable test output.
func (in *Instance) String(u *symtab.Universe) string {
	lines := make([]string, 0, in.size)
	for _, f := range in.Facts() {
		lines = append(lines, f.String(in.cat, u))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
