// Package instance implements database instances as finite sets of facts
// over a schema.Catalog, with hash indexes to support conjunctive query
// evaluation and the chase.
//
// Following the paper, an instance's active domain may contain constants and
// labeled nulls (source instances are assumed null-free; target instances
// produced by the chase may contain nulls).
package instance

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/schema"
	"repro/internal/symtab"
)

// Fact is a single fact R(a1, ..., ak).
type Fact struct {
	Rel  schema.RelID
	Args []symtab.Value
}

// Key returns a canonical map key for the fact.
func (f Fact) Key() string {
	var b strings.Builder
	b.Grow(4 * (len(f.Args) + 1))
	writeVal(&b, symtab.Value(f.Rel))
	for _, a := range f.Args {
		writeVal(&b, a)
	}
	return b.String()
}

func writeVal(b *strings.Builder, v symtab.Value) {
	b.WriteByte(byte(v))
	b.WriteByte(byte(v >> 8))
	b.WriteByte(byte(v >> 16))
	b.WriteByte(byte(v >> 24))
}

// EncodeTuple returns a canonical map key for a tuple of values.
func EncodeTuple(args []symtab.Value) string {
	var b strings.Builder
	b.Grow(4 * len(args))
	for _, a := range args {
		writeVal(&b, a)
	}
	return b.String()
}

// appendTupleKey appends the canonical key bytes of args to buf. Lookups use
// it with a stack buffer and a map[string(buf)] access, which the compiler
// compiles without allocating the string; only inserts materialize a key.
func appendTupleKey(buf []byte, args []symtab.Value) []byte {
	for _, a := range args {
		buf = append(buf, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	return buf
}

// String renders the fact using the universe for value names.
func (f Fact) String(cat *schema.Catalog, u *symtab.Universe) string {
	return fmt.Sprintf("%s(%s)", cat.ByID(f.Rel).Name, strings.Join(u.Names(f.Args), ","))
}

// HasNull reports whether any argument of f is a labeled null.
func (f Fact) HasNull() bool {
	for _, a := range f.Args {
		if a.IsNull() {
			return true
		}
	}
	return false
}

// relation stores the tuples of one relation plus per-column hash indexes.
// Tuples are kept in an ordered slice (insertion order, with swap-remove on
// delete) rather than ranged out of a map: every enumeration the chase and
// query evaluator see is then deterministic, which keeps ground-program atom
// numbering and rule order — and with them solver effort and telemetry
// counters — identical from run to run.
//
// Indexes are persistent: once a column index exists it is updated
// incrementally on every add and remove instead of being dropped and rebuilt
// from scratch (the semi-naive chase probes the same columns every round, so
// invalidate-on-write turned each round into a full re-index). Buckets hold
// tuple positions in insertion order, so index-backed enumeration visits
// tuples in the same deterministic order as a scan of the slice (for
// add-only workloads; removals swap-move the tail tuple, which is itself
// deterministic).
type relation struct {
	keys   map[string]int   // canonical tuple key -> index into tuples
	tuples [][]symtab.Value // ordered; the single source of iteration order
	// gens[i] is the instance generation at which tuples[i] was inserted;
	// it is the tuple's identity for delta tracking (DeltaSince) and for
	// the old/delta split of semi-naive evaluation.
	gens []uint64
	// sorted reports whether gens is ascending; true until a swap-remove
	// moves a late tuple into an early slot. While sorted, delta scans can
	// binary-search their starting point.
	sorted bool
	// maxGen is the high-water insertion generation (monotone; removals do
	// not lower it). RelGen uses it as a cheap "anything new?" test.
	maxGen uint64
	// idx[col] maps a value to the positions of the tuples having that
	// value in column col, in insertion order. Built lazily per column,
	// then maintained incrementally.
	idx map[int]map[symtab.Value][]int32
}

func newRelation() *relation {
	return &relation{keys: make(map[string]int), sorted: true}
}

// index returns the column index, building it on first use.
func (r *relation) index(col int, builds *atomic.Uint64) map[symtab.Value][]int32 {
	if r.idx == nil {
		r.idx = make(map[int]map[symtab.Value][]int32)
	}
	if m, ok := r.idx[col]; ok {
		return m
	}
	builds.Add(1)
	m := make(map[symtab.Value][]int32)
	for i, tup := range r.tuples {
		v := tup[col]
		m[v] = append(m[v], int32(i))
	}
	r.idx[col] = m
	return m
}

// add appends a tuple under its canonical key, reporting whether it was new.
// Existing column indexes are extended in place.
func (r *relation) add(k string, args []symtab.Value, gen uint64) bool {
	if _, dup := r.keys[k]; dup {
		return false
	}
	pos := len(r.tuples)
	r.keys[k] = pos
	r.tuples = append(r.tuples, args)
	r.gens = append(r.gens, gen)
	r.maxGen = gen
	for col, m := range r.idx {
		v := args[col]
		m[v] = append(m[v], int32(pos))
	}
	return true
}

// remove deletes the tuple under k by swap-remove (the tail tuple takes its
// slot). Column indexes are patched in place: the removed tuple's bucket
// entries are deleted (preserving bucket order) and the moved tuple's
// entries are repointed at its new position. The order change is itself
// deterministic given deterministic insertion and removal sequences, which
// is all iteration-order stability requires.
func (r *relation) remove(k string) bool {
	i, ok := r.keys[k]
	if !ok {
		return false
	}
	delete(r.keys, k)
	removed := r.tuples[i]
	for col, m := range r.idx {
		bucketDelete(m, removed[col], int32(i))
	}
	last := len(r.tuples) - 1
	if i != last {
		moved := r.tuples[last]
		r.tuples[i] = moved
		r.gens[i] = r.gens[last]
		r.keys[EncodeTuple(moved)] = i
		for col, m := range r.idx {
			bucketRepoint(m, moved[col], int32(last), int32(i))
		}
		r.sorted = false
	}
	r.tuples[last] = nil
	r.tuples = r.tuples[:last]
	r.gens = r.gens[:last]
	return true
}

// bucketDelete removes position pos from the bucket of v, preserving the
// relative order of the remaining entries.
func bucketDelete(m map[symtab.Value][]int32, v symtab.Value, pos int32) {
	b := m[v]
	for j, p := range b {
		if p == pos {
			b = append(b[:j], b[j+1:]...)
			break
		}
	}
	if len(b) == 0 {
		delete(m, v)
	} else {
		m[v] = b
	}
}

// bucketRepoint rewrites position from to to in the bucket of v.
func bucketRepoint(m map[symtab.Value][]int32, v symtab.Value, from, to int32) {
	b := m[v]
	for j, p := range b {
		if p == from {
			b[j] = to
			return
		}
	}
}

// Instance is a mutable set of facts. The zero value is not usable; call New.
//
// An Instance is not safe for concurrent mutation. Concurrent reads are safe
// only once every column index touched by the readers has been built (index
// construction is lazy); the chase builds all indexes its plans need, so
// instances it returns can be read concurrently by the query phase.
type Instance struct {
	cat  *schema.Catalog
	rels map[schema.RelID]*relation
	size int
	// gen counts successful insertions; each inserted tuple is stamped with
	// the post-increment value, so generations totally order tuples by
	// insertion time across the whole instance.
	gen uint64

	// probes counts index-backed match enumerations and builds counts
	// column-index constructions; both are atomic so concurrent readers can
	// be metered without a data race.
	probes atomic.Uint64
	builds atomic.Uint64
}

// New returns an empty instance over the given catalog.
func New(cat *schema.Catalog) *Instance {
	return &Instance{cat: cat, rels: make(map[schema.RelID]*relation)}
}

// Catalog returns the catalog the instance is over.
func (in *Instance) Catalog() *schema.Catalog { return in.cat }

// Len returns the number of facts.
func (in *Instance) Len() int { return in.size }

// LenOf returns the number of facts of one relation.
func (in *Instance) LenOf(rel schema.RelID) int {
	r, ok := in.rels[rel]
	if !ok {
		return 0
	}
	return len(r.tuples)
}

// Gen returns the current generation counter: the number of insertions the
// instance has seen. A caller that snapshots Gen before a batch of work can
// later enumerate exactly the tuples that batch added via DeltaSince or the
// generation window of ForEachMatch.
func (in *Instance) Gen() uint64 { return in.gen }

// RelGen returns the high-water insertion generation of one relation (0 for
// an absent or never-populated relation). RelGen(rel) > g iff the relation
// gained at least one tuple after generation g (removals do not lower it),
// which makes it the cheap has-delta test of the semi-naive chase.
func (in *Instance) RelGen(rel schema.RelID) uint64 {
	r, ok := in.rels[rel]
	if !ok {
		return 0
	}
	return r.maxGen
}

// GenOf returns the insertion generation of a present tuple (0, false when
// absent).
func (in *Instance) GenOf(rel schema.RelID, args []symtab.Value) (uint64, bool) {
	r, ok := in.rels[rel]
	if !ok {
		return 0, false
	}
	var kb [64]byte
	i, ok := r.keys[string(appendTupleKey(kb[:0], args))]
	if !ok {
		return 0, false
	}
	return r.gens[i], true
}

// DeltaSince returns the tuples of rel inserted after generation g, in
// insertion order. The returned slices are shared with the instance; do not
// mutate them.
func (in *Instance) DeltaSince(rel schema.RelID, g uint64) [][]symtab.Value {
	var out [][]symtab.Value
	in.forEachIn(rel, g, ^uint64(0), func(t []symtab.Value, _ uint64) bool {
		out = append(out, t)
		return true
	})
	return out
}

// forEachIn enumerates tuples of rel with generation in (lo, hi], in slice
// order (ascending-generation order while the relation has seen no
// swap-removes, in which case the start is binary-searched).
func (in *Instance) forEachIn(rel schema.RelID, lo, hi uint64, fn func([]symtab.Value, uint64) bool) bool {
	r, ok := in.rels[rel]
	if !ok {
		return true
	}
	start := 0
	if lo > 0 && r.sorted {
		start = sort.Search(len(r.gens), func(i int) bool { return r.gens[i] > lo })
	}
	for i := start; i < len(r.tuples); i++ {
		g := r.gens[i]
		if g > hi {
			if r.sorted {
				break // gens ascend: nothing later can be in the window
			}
			continue
		}
		if g <= lo {
			continue
		}
		if !fn(r.tuples[i], g) {
			return false
		}
	}
	return true
}

// addTuple appends a tuple under its canonical key. It returns the tuple's
// insertion generation (the pre-existing one on a duplicate) and whether the
// tuple was new.
func (in *Instance) addTuple(rel schema.RelID, args []symtab.Value) (uint64, bool) {
	r, ok := in.rels[rel]
	if !ok {
		r = newRelation()
		in.rels[rel] = r
	}
	var kb [64]byte
	k := appendTupleKey(kb[:0], args)
	if i, dup := r.keys[string(k)]; dup {
		return r.gens[i], false
	}
	r.add(string(k), args, in.gen+1)
	in.gen++
	in.size++
	return in.gen, true
}

// Insert inserts a fact, reporting whether it was newly added. An
// argument count that does not match the relation's declared arity
// returns a *schema.ArityError instead of corrupting the relation; use
// Insert (not Add) on untrusted input. The argument slice is retained;
// callers must not mutate it afterwards.
func (in *Instance) Insert(rel schema.RelID, args []symtab.Value) (bool, error) {
	if want := in.cat.ByID(rel).Arity; len(args) != want {
		return false, fmt.Errorf("instance: %w", &schema.ArityError{Rel: in.cat.ByID(rel).Name, Want: want, Got: len(args)})
	}
	_, added := in.addTuple(rel, args)
	return added, nil
}

// AddWithGen inserts like Add but also returns the tuple's insertion
// generation — the fresh generation when newly added, the existing tuple's
// when a duplicate. The chase uses this to key facts by generation without
// re-encoding tuples.
func (in *Instance) AddWithGen(rel schema.RelID, args []symtab.Value) (uint64, bool) {
	if want := in.cat.ByID(rel).Arity; len(args) != want {
		panic(fmt.Errorf("instance: %w", &schema.ArityError{Rel: in.cat.ByID(rel).Name, Want: want, Got: len(args)}))
	}
	return in.addTuple(rel, args)
}

// InsertFact inserts f; see Insert.
func (in *Instance) InsertFact(f Fact) (bool, error) { return in.Insert(f.Rel, f.Args) }

// Add is the Must-style form of Insert for static setup code and internal
// callers whose arities are correct by construction: it panics with a
// *schema.ArityError on mismatch.
func (in *Instance) Add(rel schema.RelID, args []symtab.Value) bool {
	added, err := in.Insert(rel, args)
	if err != nil {
		panic(err)
	}
	return added
}

// AddFact inserts f; see Add.
func (in *Instance) AddFact(f Fact) bool { return in.Add(f.Rel, f.Args) }

// Remove deletes a fact and reports whether it was present.
func (in *Instance) Remove(rel schema.RelID, args []symtab.Value) bool {
	r, ok := in.rels[rel]
	if !ok {
		return false
	}
	if !r.remove(EncodeTuple(args)) {
		return false
	}
	in.size--
	return true
}

// RemoveFact deletes f; see Remove.
func (in *Instance) RemoveFact(f Fact) bool { return in.Remove(f.Rel, f.Args) }

// Contains reports whether the fact is present.
func (in *Instance) Contains(rel schema.RelID, args []symtab.Value) bool {
	r, ok := in.rels[rel]
	if !ok {
		return false
	}
	var kb [64]byte
	_, present := r.keys[string(appendTupleKey(kb[:0], args))]
	return present
}

// ContainsFact reports whether f is present.
func (in *Instance) ContainsFact(f Fact) bool { return in.Contains(f.Rel, f.Args) }

// Tuples returns the tuples of one relation in deterministic (insertion)
// order. The returned slices are shared with the instance; do not mutate
// them.
func (in *Instance) Tuples(rel schema.RelID) [][]symtab.Value {
	r, ok := in.rels[rel]
	if !ok {
		return nil
	}
	out := make([][]symtab.Value, 0, len(r.tuples))
	out = append(out, r.tuples...)
	return out
}

// Facts returns every fact in the instance, grouped by relation in ascending
// relation order; tuples within a relation come in deterministic (insertion)
// order.
func (in *Instance) Facts() []Fact {
	out := make([]Fact, 0, in.size)
	for _, rel := range in.relIDs() {
		for _, t := range in.rels[rel].tuples {
			out = append(out, Fact{Rel: rel, Args: t})
		}
	}
	return out
}

// Relations returns the IDs of relations with at least one fact, ascending.
func (in *Instance) Relations() []schema.RelID { return in.relIDs() }

func (in *Instance) relIDs() []schema.RelID {
	ids := make([]schema.RelID, 0, len(in.rels))
	for id, r := range in.rels {
		if len(r.tuples) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Lookup returns the tuples of rel whose column col holds value v, in
// deterministic (insertion) order. Do not mutate the returned slices.
func (in *Instance) Lookup(rel schema.RelID, col int, v symtab.Value) [][]symtab.Value {
	r, ok := in.rels[rel]
	if !ok {
		return nil
	}
	in.probes.Add(1)
	bucket := r.index(col, &in.builds)[v]
	out := make([][]symtab.Value, len(bucket))
	for i, pos := range bucket {
		out[i] = r.tuples[pos]
	}
	return out
}

// ForEachMatch enumerates the tuples of rel consistent with pattern (where
// symtab.None entries are wildcards) whose insertion generation g satisfies
// lo < g <= hi, calling fn with each tuple and its generation. It uses the
// column index of the first bound position when one exists. fn returning
// false stops the enumeration; ForEachMatch reports whether it ran to
// completion.
//
// The full instance is (0, ^uint64(0)]; the delta after generation g is
// (g, ^uint64(0)]; the pre-g instance is (0, g].
func (in *Instance) ForEachMatch(rel schema.RelID, pattern []symtab.Value, lo, hi uint64, fn func(tup []symtab.Value, gen uint64) bool) bool {
	r, ok := in.rels[rel]
	if !ok {
		return true
	}
	// Probe every bound column and scan the smallest bucket (bucket choice
	// does not affect output order: every bucket lists positions in
	// insertion order, and the full pattern is re-checked per tuple).
	bound := -1
	var bucket []int32
	for i, p := range pattern {
		if p == symtab.None {
			continue
		}
		b := r.index(i, &in.builds)[p]
		if bound < 0 || len(b) < len(bucket) {
			bound, bucket = i, b
		}
		if len(bucket) == 0 {
			break
		}
	}
	if bound < 0 {
		return in.forEachIn(rel, lo, hi, fn)
	}
	in.probes.Add(1)
	for _, pos := range bucket {
		g := r.gens[pos]
		if g > hi {
			if r.sorted {
				break // bucket follows insertion order: gens ascend
			}
			continue
		}
		if g <= lo {
			continue
		}
		t := r.tuples[pos]
		ok := true
		for i, p := range pattern {
			if p != symtab.None && t[i] != p {
				ok = false
				break
			}
		}
		if ok && !fn(t, g) {
			return false
		}
	}
	return true
}

// Match returns the tuples of rel consistent with pattern, where
// symtab.None entries are wildcards. It uses a column index when at least
// one position is bound.
func (in *Instance) Match(rel schema.RelID, pattern []symtab.Value) [][]symtab.Value {
	var out [][]symtab.Value
	in.ForEachMatch(rel, pattern, 0, ^uint64(0), func(t []symtab.Value, _ uint64) bool {
		out = append(out, t)
		return true
	})
	return out
}

// IndexProbes returns the number of index-backed match enumerations the
// instance has served. Safe to read concurrently.
func (in *Instance) IndexProbes() uint64 { return in.probes.Load() }

// IndexBuilds returns the number of column indexes built. With persistent
// incremental maintenance this stays at one per (relation, column) the
// evaluator ever binds, where the invalidate-on-write scheme rebuilt per
// chase round. Safe to read concurrently.
func (in *Instance) IndexBuilds() uint64 { return in.builds.Load() }

// RewriteValues applies the value map m to the instance in place: every
// tuple containing a key of m is removed and re-inserted with each such
// value v replaced by m[v]. Facts that collide after replacement merge.
// It returns the number of tuples rewritten.
//
// The image values of m must not themselves be keys of m (i.e. m must be
// idempotent, as produced by a resolved union-find); otherwise a rewritten
// tuple could need rewriting again. Only tuples containing a remapped value
// are touched, so untouched tuples keep their positions and insertion
// generations, while rewritten tuples are stamped as new — exactly the
// delta semantics the semi-naive chase needs after an egd merge.
func (in *Instance) RewriteValues(m map[symtab.Value]symtab.Value) int {
	if len(m) == 0 {
		return 0
	}
	var hitRels []schema.RelID
	var hitTuples [][]symtab.Value
	for _, rel := range in.relIDs() {
		for _, t := range in.rels[rel].tuples {
			for _, v := range t {
				if _, remap := m[v]; remap {
					hitRels = append(hitRels, rel)
					hitTuples = append(hitTuples, t)
					break
				}
			}
		}
	}
	// Remove every affected tuple first, then insert the rewritten forms:
	// interleaving could drop a not-yet-processed original that happens to
	// equal a rewritten tuple.
	for i, t := range hitTuples {
		in.Remove(hitRels[i], t)
	}
	for i, t := range hitTuples {
		args := make([]symtab.Value, len(t))
		for j, v := range t {
			if img, ok := m[v]; ok {
				args[j] = img
			} else {
				args[j] = v
			}
		}
		in.Add(hitRels[i], args)
	}
	return len(hitTuples)
}

// Clone returns a deep-enough copy: fact sets are copied, tuples are shared
// (tuples are treated as immutable throughout the codebase). Tuple order and
// insertion generations are preserved; column indexes are rebuilt lazily on
// the clone.
func (in *Instance) Clone() *Instance {
	cp := New(in.cat)
	for id, r := range in.rels {
		nr := newRelation()
		// Presize with headroom: clones feed the chase, which grows them.
		nr.keys = make(map[string]int, 2*len(r.keys))
		nr.tuples = append([][]symtab.Value(nil), r.tuples...)
		nr.gens = append([]uint64(nil), r.gens...)
		nr.sorted = r.sorted
		nr.maxGen = r.maxGen
		for k, i := range r.keys {
			nr.keys[k] = i
		}
		cp.rels[id] = nr
	}
	cp.size = in.size
	cp.gen = in.gen
	return cp
}

// Restrict returns the sub-instance containing only facts whose relation is
// in s (the paper's "R'-restriction"), in deterministic order.
func (in *Instance) Restrict(s *schema.Schema) *Instance {
	out := New(in.cat)
	for _, id := range in.relIDs() {
		if !s.Contains(id) {
			continue
		}
		for _, t := range in.rels[id].tuples {
			out.Add(id, t)
		}
	}
	return out
}

// AddAll inserts every fact of other in deterministic order and returns the
// number newly added.
func (in *Instance) AddAll(other *Instance) int {
	n := 0
	for _, id := range other.relIDs() {
		for _, t := range other.rels[id].tuples {
			if in.Add(id, t) {
				n++
			}
		}
	}
	return n
}

// SubInstanceOf reports whether every fact of in is a fact of other.
func (in *Instance) SubInstanceOf(other *Instance) bool {
	for id, r := range in.rels {
		for _, t := range r.tuples {
			if !other.Contains(id, t) {
				return false
			}
		}
	}
	return true
}

// Equal reports whether in and other contain exactly the same facts.
func (in *Instance) Equal(other *Instance) bool {
	return in.size == other.size && in.SubInstanceOf(other)
}

// ActiveDomain returns the set of values occurring in facts.
func (in *Instance) ActiveDomain() map[symtab.Value]bool {
	dom := make(map[symtab.Value]bool)
	for _, r := range in.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				dom[v] = true
			}
		}
	}
	return dom
}

// Nulls returns the labeled nulls in the active domain.
func (in *Instance) Nulls() []symtab.Value {
	var out []symtab.Value
	for v := range in.ActiveDomain() {
		if v.IsNull() {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the instance sorted for stable test output.
func (in *Instance) String(u *symtab.Universe) string {
	lines := make([]string, 0, in.size)
	for _, f := range in.Facts() {
		lines = append(lines, f.String(in.cat, u))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
