package instance

import (
	"errors"
	"testing"

	"repro/internal/schema"
	"repro/internal/symtab"
)

func fixture() (*schema.Catalog, *symtab.Universe, *schema.Relation, *schema.Relation) {
	cat := schema.NewCatalog()
	r := cat.MustAdd("R", 2)
	s := cat.MustAdd("S", 1)
	return cat, symtab.NewUniverse(), r, s
}

func TestAddContainsRemove(t *testing.T) {
	cat, u, r, _ := fixture()
	in := New(cat)
	a, b := u.Const("a"), u.Const("b")

	if !in.Add(r.ID, []symtab.Value{a, b}) {
		t.Fatal("Add returned false for a new fact")
	}
	if in.Add(r.ID, []symtab.Value{a, b}) {
		t.Fatal("Add returned true for a duplicate")
	}
	if in.Len() != 1 || in.LenOf(r.ID) != 1 {
		t.Fatalf("sizes: %d %d", in.Len(), in.LenOf(r.ID))
	}
	if !in.Contains(r.ID, []symtab.Value{a, b}) {
		t.Fatal("Contains missed an added fact")
	}
	if in.Contains(r.ID, []symtab.Value{b, a}) {
		t.Fatal("Contains hit a reversed tuple")
	}
	if !in.Remove(r.ID, []symtab.Value{a, b}) {
		t.Fatal("Remove returned false for a present fact")
	}
	if in.Remove(r.ID, []symtab.Value{a, b}) {
		t.Fatal("Remove returned true for an absent fact")
	}
	if in.Len() != 0 {
		t.Fatalf("Len after removal = %d", in.Len())
	}
}

func TestArityPanic(t *testing.T) {
	cat, u, r, _ := fixture()
	in := New(cat)
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	in.Add(r.ID, []symtab.Value{u.Const("a")})
}

func TestMatchAndLookup(t *testing.T) {
	cat, u, r, _ := fixture()
	in := New(cat)
	a, b, c := u.Const("a"), u.Const("b"), u.Const("c")
	in.Add(r.ID, []symtab.Value{a, b})
	in.Add(r.ID, []symtab.Value{a, c})
	in.Add(r.ID, []symtab.Value{b, c})

	if got := in.Lookup(r.ID, 0, a); len(got) != 2 {
		t.Fatalf("Lookup col0=a: %d tuples, want 2", len(got))
	}
	if got := in.Match(r.ID, []symtab.Value{a, symtab.None}); len(got) != 2 {
		t.Fatalf("Match (a,_): %d", len(got))
	}
	if got := in.Match(r.ID, []symtab.Value{symtab.None, c}); len(got) != 2 {
		t.Fatalf("Match (_,c): %d", len(got))
	}
	if got := in.Match(r.ID, []symtab.Value{a, c}); len(got) != 1 {
		t.Fatalf("Match (a,c): %d", len(got))
	}
	if got := in.Match(r.ID, []symtab.Value{symtab.None, symtab.None}); len(got) != 3 {
		t.Fatalf("Match (_,_): %d", len(got))
	}
	// Index must see subsequent mutations.
	in.Add(r.ID, []symtab.Value{a, a})
	if got := in.Lookup(r.ID, 0, a); len(got) != 3 {
		t.Fatalf("Lookup after add: %d tuples, want 3", len(got))
	}
	in.Remove(r.ID, []symtab.Value{a, a})
	if got := in.Lookup(r.ID, 0, a); len(got) != 2 {
		t.Fatalf("Lookup after remove: %d tuples, want 2", len(got))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	cat, u, r, _ := fixture()
	in := New(cat)
	a, b := u.Const("a"), u.Const("b")
	in.Add(r.ID, []symtab.Value{a, b})
	cp := in.Clone()
	cp.Add(r.ID, []symtab.Value{b, a})
	if in.Len() != 1 || cp.Len() != 2 {
		t.Fatalf("clone not independent: %d %d", in.Len(), cp.Len())
	}
	if !in.SubInstanceOf(cp) || cp.SubInstanceOf(in) {
		t.Fatal("SubInstanceOf wrong")
	}
}

func TestRestrictAndEqual(t *testing.T) {
	cat, u, r, s := fixture()
	in := New(cat)
	a := u.Const("a")
	in.Add(r.ID, []symtab.Value{a, a})
	in.Add(s.ID, []symtab.Value{a})

	onlyR := in.Restrict(schema.NewSchema(cat.ByID(r.ID)))
	if onlyR.Len() != 1 || !onlyR.Contains(r.ID, []symtab.Value{a, a}) {
		t.Fatal("Restrict wrong")
	}
	again := in.Clone()
	if !in.Equal(again) {
		t.Fatal("Equal(clone) = false")
	}
	again.Remove(s.ID, []symtab.Value{a})
	if in.Equal(again) {
		t.Fatal("Equal after removal = true")
	}
}

func TestActiveDomainAndNulls(t *testing.T) {
	cat, u, r, _ := fixture()
	in := New(cat)
	a := u.Const("a")
	n := u.FreshNull()
	in.Add(r.ID, []symtab.Value{a, n})
	dom := in.ActiveDomain()
	if !dom[a] || !dom[n] || len(dom) != 2 {
		t.Fatalf("ActiveDomain = %v", dom)
	}
	nulls := in.Nulls()
	if len(nulls) != 1 || nulls[0] != n {
		t.Fatalf("Nulls = %v", nulls)
	}
	f := Fact{Rel: r.ID, Args: []symtab.Value{a, n}}
	if !f.HasNull() {
		t.Fatal("HasNull = false")
	}
}

func TestHomomorphism(t *testing.T) {
	cat, u, r, _ := fixture()
	a, b := u.Const("a"), u.Const("b")
	n1, n2 := u.FreshNull(), u.FreshNull()

	// src: R(a, n1), R(n1, n2); dst: R(a,b), R(b,b)
	src := New(cat)
	src.Add(r.ID, []symtab.Value{a, n1})
	src.Add(r.ID, []symtab.Value{n1, n2})
	dst := New(cat)
	dst.Add(r.ID, []symtab.Value{a, b})
	dst.Add(r.ID, []symtab.Value{b, b})

	h, ok := Homomorphism(src, dst)
	if !ok {
		t.Fatal("expected a homomorphism")
	}
	if h[n1] != b || h[n2] != b {
		t.Fatalf("h = %v", h)
	}

	// Removing R(b,b) breaks it: n1 must map to b (forced by R(a,n1)) but then
	// R(b, x) has no image.
	dst.Remove(r.ID, []symtab.Value{b, b})
	if _, ok := Homomorphism(src, dst); ok {
		t.Fatal("unexpected homomorphism")
	}
}

func TestHomomorphismRepeatedNull(t *testing.T) {
	cat, u, r, _ := fixture()
	a, b := u.Const("a"), u.Const("b")
	n := u.FreshNull()

	src := New(cat)
	src.Add(r.ID, []symtab.Value{n, n})
	dst := New(cat)
	dst.Add(r.ID, []symtab.Value{a, b})
	if _, ok := Homomorphism(src, dst); ok {
		t.Fatal("R(n,n) should not map into R(a,b)")
	}
	dst.Add(r.ID, []symtab.Value{b, b})
	if h, ok := Homomorphism(src, dst); !ok || h[n] != b {
		t.Fatalf("expected n->b, got %v ok=%v", h, ok)
	}
}

func TestApplyValueMap(t *testing.T) {
	cat, u, r, _ := fixture()
	a, b := u.Const("a"), u.Const("b")
	n := u.FreshNull()
	in := New(cat)
	in.Add(r.ID, []symtab.Value{a, n})
	in.Add(r.ID, []symtab.Value{a, b})
	out := ApplyValueMap(in, map[symtab.Value]symtab.Value{n: b})
	if out.Len() != 1 || !out.Contains(r.ID, []symtab.Value{a, b}) {
		t.Fatalf("ApplyValueMap merged wrong: %v", out.Facts())
	}
}

func TestFactKeyDistinguishesRelations(t *testing.T) {
	cat, u, _, _ := fixture()
	_ = cat
	a := u.Const("a")
	f1 := Fact{Rel: 0, Args: []symtab.Value{a}}
	f2 := Fact{Rel: 1, Args: []symtab.Value{a}}
	if f1.Key() == f2.Key() {
		t.Fatal("keys collide across relations")
	}
}

// TestInsertArityError: a wrong-arity tuple is rejected with a typed
// *schema.ArityError instead of panicking; Add panics with the same error.
func TestInsertArityError(t *testing.T) {
	cat := schema.NewCatalog()
	r := cat.MustAdd("R", 2)
	in := New(cat)
	added, err := in.Insert(r.ID, []symtab.Value{1})
	if added || err == nil {
		t.Fatalf("Insert(%d args for arity 2) = %v, %v", 1, added, err)
	}
	var ae *schema.ArityError
	if !errors.As(err, &ae) || ae.Rel != "R" || ae.Want != 2 || ae.Got != 1 {
		t.Fatalf("error %v is not the expected ArityError", err)
	}
	if in.Len() != 0 {
		t.Fatalf("failed Insert mutated the instance: %d facts", in.Len())
	}
	if _, err := in.InsertFact(Fact{Rel: r.ID, Args: []symtab.Value{1, 2, 3}}); !errors.As(err, &ae) {
		t.Fatalf("InsertFact error %v is not an ArityError", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Add with wrong arity did not panic")
		}
		if perr, ok := r.(error); !ok || !errors.As(perr, &ae) {
			t.Fatalf("Add panicked with %v, want an ArityError", r)
		}
	}()
	in.Add(r.ID, []symtab.Value{1})
}
