package instance

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/symtab"
)

// tupleOps is a random sequence of instance mutations used to quick-check
// set semantics against a reference map implementation.
type tupleOps []tupleOp

type tupleOp struct {
	Add  bool
	A, B uint8
}

// Generate implements quick.Generator.
func (tupleOps) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	ops := make(tupleOps, n)
	for i := range ops {
		ops[i] = tupleOp{Add: r.Intn(3) != 0, A: uint8(r.Intn(4)), B: uint8(r.Intn(4))}
	}
	return reflect.ValueOf(ops)
}

// TestInstanceMatchesReferenceSet: Add/Remove/Contains/Len agree with a
// plain map-of-keys reference under arbitrary operation sequences, and
// Match(_,_) enumerates exactly the reference contents.
func TestInstanceMatchesReferenceSet(t *testing.T) {
	cat := schema.NewCatalog()
	rel := cat.MustAdd("R", 2)
	u := symtab.NewUniverse()
	dom := []symtab.Value{u.Const("a"), u.Const("b"), u.Const("c"), u.Const("d")}

	f := func(ops tupleOps) bool {
		in := New(cat)
		ref := map[[2]uint8]bool{}
		for _, op := range ops {
			args := []symtab.Value{dom[op.A], dom[op.B]}
			key := [2]uint8{op.A, op.B}
			if op.Add {
				added := in.Add(rel.ID, args)
				if added == ref[key] {
					return false // added must be true iff previously absent
				}
				ref[key] = true
			} else {
				removed := in.Remove(rel.ID, args)
				if removed != ref[key] {
					return false
				}
				delete(ref, key)
			}
		}
		if in.Len() != len(ref) {
			return false
		}
		for key := range ref {
			if !in.Contains(rel.ID, []symtab.Value{dom[key[0]], dom[key[1]]}) {
				return false
			}
		}
		all := in.Match(rel.ID, []symtab.Value{symtab.None, symtab.None})
		return len(all) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchAgainstLinearScan: indexed Match returns exactly the tuples a
// linear scan filter would.
func TestMatchAgainstLinearScan(t *testing.T) {
	cat := schema.NewCatalog()
	rel := cat.MustAdd("R", 3)
	u := symtab.NewUniverse()
	dom := []symtab.Value{u.Const("a"), u.Const("b"), u.Const("c")}
	rng := rand.New(rand.NewSource(5))

	for trial := 0; trial < 60; trial++ {
		in := New(cat)
		for i := 0; i < rng.Intn(20); i++ {
			in.Add(rel.ID, []symtab.Value{dom[rng.Intn(3)], dom[rng.Intn(3)], dom[rng.Intn(3)]})
		}
		pattern := make([]symtab.Value, 3)
		for i := range pattern {
			if rng.Intn(2) == 0 {
				pattern[i] = symtab.None
			} else {
				pattern[i] = dom[rng.Intn(3)]
			}
		}
		got := in.Match(rel.ID, pattern)
		want := 0
		for _, tup := range in.Tuples(rel.ID) {
			ok := true
			for i, p := range pattern {
				if p != symtab.None && tup[i] != p {
					ok = false
					break
				}
			}
			if ok {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: Match=%d scan=%d pattern=%v", trial, len(got), want, pattern)
		}
	}
}

// TestRestrictUnionDecomposition: an instance equals the union of its
// restriction to a schema and to the complement.
func TestRestrictUnionDecomposition(t *testing.T) {
	cat := schema.NewCatalog()
	r1 := cat.MustAdd("R1", 1)
	r2 := cat.MustAdd("R2", 1)
	u := symtab.NewUniverse()
	rng := rand.New(rand.NewSource(6))

	for trial := 0; trial < 40; trial++ {
		in := New(cat)
		for i := 0; i < rng.Intn(10); i++ {
			rel := r1
			if rng.Intn(2) == 0 {
				rel = r2
			}
			in.Add(rel.ID, []symtab.Value{u.Const(string(rune('a' + rng.Intn(5))))})
		}
		left := in.Restrict(schema.NewSchema(r1))
		right := in.Restrict(schema.NewSchema(r2))
		union := New(cat)
		union.AddAll(left)
		union.AddAll(right)
		if !union.Equal(in) {
			t.Fatalf("trial %d: restriction decomposition failed", trial)
		}
		if left.Len()+right.Len() != in.Len() {
			t.Fatalf("trial %d: restrictions overlap", trial)
		}
	}
}

// TestHomomorphismReflexiveAndComposable: identity works, and homomorphisms
// compose (h2 ∘ h1 maps I into K when I→J and J→K exist) — spot-checked via
// existence.
func TestHomomorphismReflexiveAndComposable(t *testing.T) {
	cat := schema.NewCatalog()
	rel := cat.MustAdd("R", 2)
	u := symtab.NewUniverse()
	rng := rand.New(rand.NewSource(7))
	a, b := u.Const("a"), u.Const("b")

	for trial := 0; trial < 30; trial++ {
		mkInst := func(nulls int, facts int) *Instance {
			in := New(cat)
			pool := []symtab.Value{a, b}
			for i := 0; i < nulls; i++ {
				pool = append(pool, u.FreshNull())
			}
			for i := 0; i < facts; i++ {
				in.Add(rel.ID, []symtab.Value{pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]})
			}
			return in
		}
		i1 := mkInst(2, 1+rng.Intn(3))
		if _, ok := Homomorphism(i1, i1); !ok {
			t.Fatalf("trial %d: no identity homomorphism", trial)
		}
		i2 := mkInst(1, 1+rng.Intn(4))
		i3 := mkInst(0, 1+rng.Intn(4))
		_, h12 := Homomorphism(i1, i2)
		_, h23 := Homomorphism(i2, i3)
		_, h13 := Homomorphism(i1, i3)
		if h12 && h23 && !h13 {
			t.Fatalf("trial %d: homomorphisms do not compose", trial)
		}
	}
}
