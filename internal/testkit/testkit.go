// Package testkit generates random weakly-acyclic schema mappings, source
// instances, and conjunctive queries for cross-validation property tests
// (native chase vs. reduction, brute force vs. solver pipelines).
package testkit

import (
	"fmt"
	"math/rand"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// Options controls random mapping generation.
type Options struct {
	SourceRels   int // number of source relations (default 3)
	TargetRels   int // number of target relations (default 3)
	MaxArity     int // maximum relation arity (default 2)
	STTgds       int // number of s-t tgds (default 3)
	TargetTgds   int // number of target tgds (default 1)
	Egds         int // number of target egds (default 2)
	Existentials bool
}

func (o *Options) fill() {
	if o.SourceRels == 0 {
		o.SourceRels = 3
	}
	if o.TargetRels == 0 {
		o.TargetRels = 3
	}
	if o.MaxArity == 0 {
		o.MaxArity = 2
	}
	if o.STTgds == 0 {
		o.STTgds = 3
	}
	if o.Egds == 0 {
		o.Egds = 2
	}
}

// World bundles a generated mapping with its catalog and universe.
type World struct {
	Cat *schema.Catalog
	U   *symtab.Universe
	M   *mapping.Mapping
}

// RandomMapping generates a valid, weakly acyclic glav+(wa-glav, egd)
// mapping. Generation retries until weak acyclicity holds.
func RandomMapping(rng *rand.Rand, opts Options) *World {
	opts.fill()
	for {
		w := tryMapping(rng, opts)
		if w.M.IsWeaklyAcyclic() {
			if err := w.M.Validate(); err != nil {
				panic(err)
			}
			return w
		}
	}
}

func tryMapping(rng *rand.Rand, opts Options) *World {
	cat := schema.NewCatalog()
	u := symtab.NewUniverse()
	m := mapping.New(cat, u)

	var srcRels, tgtRels []*schema.Relation
	for i := 0; i < opts.SourceRels; i++ {
		r := cat.MustAdd(fmt.Sprintf("S%d", i), 1+rng.Intn(opts.MaxArity))
		m.Source.Add(r)
		srcRels = append(srcRels, r)
	}
	for i := 0; i < opts.TargetRels; i++ {
		r := cat.MustAdd(fmt.Sprintf("T%d", i), 1+rng.Intn(opts.MaxArity))
		m.Target.Add(r)
		tgtRels = append(tgtRels, r)
	}

	vars := []string{"x", "y", "z", "w"}
	randAtom := func(rels []*schema.Relation, pool []string) logic.Atom {
		r := rels[rng.Intn(len(rels))]
		terms := make([]logic.Term, r.Arity)
		for i := range terms {
			terms[i] = logic.V(pool[rng.Intn(len(pool))])
		}
		return logic.Atom{Rel: r.ID, Terms: terms}
	}
	// collectVars gathers the variables of atoms.
	collectVars := func(atoms []logic.Atom) []string {
		seen := map[string]bool{}
		var out []string
		for _, a := range atoms {
			for _, t := range a.Terms {
				if t.IsVar() && !seen[t.Var] {
					seen[t.Var] = true
					out = append(out, t.Var)
				}
			}
		}
		return out
	}

	for i := 0; i < opts.STTgds; i++ {
		nb := 1 + rng.Intn(2)
		body := make([]logic.Atom, nb)
		for j := range body {
			body[j] = randAtom(srcRels, vars)
		}
		bodyVars := collectVars(body)
		headPool := bodyVars
		if opts.Existentials && rng.Intn(2) == 0 {
			headPool = append(append([]string{}, bodyVars...), "e1")
		}
		head := []logic.Atom{randAtom(tgtRels, headPool)}
		m.ST = append(m.ST, &logic.TGD{Body: body, Head: head, Label: fmt.Sprintf("st%d", i)})
	}
	for i := 0; i < opts.TargetTgds; i++ {
		nb := 1 + rng.Intn(2)
		body := make([]logic.Atom, nb)
		for j := range body {
			body[j] = randAtom(tgtRels, vars)
		}
		bodyVars := collectVars(body)
		headPool := bodyVars
		if opts.Existentials && rng.Intn(3) == 0 {
			headPool = append(append([]string{}, bodyVars...), "e2")
		}
		head := []logic.Atom{randAtom(tgtRels, headPool)}
		m.TTgds = append(m.TTgds, &logic.TGD{Body: body, Head: head, Label: fmt.Sprintf("tt%d", i)})
	}
	for i := 0; i < opts.Egds; i++ {
		nb := 1 + rng.Intn(2)
		body := make([]logic.Atom, nb)
		for j := range body {
			body[j] = randAtom(tgtRels, vars)
		}
		bodyVars := collectVars(body)
		if len(bodyVars) < 2 {
			// Force a second variable by re-rolling a binary atom.
			i--
			continue
		}
		l := bodyVars[rng.Intn(len(bodyVars))]
		r := bodyVars[rng.Intn(len(bodyVars))]
		if l == r {
			i--
			continue
		}
		m.TEgds = append(m.TEgds, &logic.EGD{Body: body, L: logic.V(l), R: logic.V(r), Label: fmt.Sprintf("egd%d", i)})
	}
	return &World{Cat: cat, U: u, M: m}
}

// RandomInstance populates nFacts random source facts over a domain of
// domainSize constants.
func RandomInstance(rng *rand.Rand, w *World, nFacts, domainSize int) *instance.Instance {
	in := instance.New(w.Cat)
	dom := make([]symtab.Value, domainSize)
	for i := range dom {
		dom[i] = w.U.Const(fmt.Sprintf("c%d", i))
	}
	ids := w.M.Source.IDs()
	for i := 0; i < nFacts; i++ {
		rel := w.Cat.ByID(ids[rng.Intn(len(ids))])
		args := make([]symtab.Value, rel.Arity)
		for j := range args {
			args[j] = dom[rng.Intn(len(dom))]
		}
		in.Add(rel.ID, args)
	}
	return in
}

// RandomQuery generates a safe CQ over the target schema with up to two
// body atoms and up to two answer variables.
func RandomQuery(rng *rand.Rand, w *World, name string) *logic.UCQ {
	vars := []string{"x", "y", "z"}
	ids := w.M.Target.IDs()
	nb := 1 + rng.Intn(2)
	body := make([]logic.Atom, nb)
	for j := range body {
		rel := w.Cat.ByID(ids[rng.Intn(len(ids))])
		terms := make([]logic.Term, rel.Arity)
		for i := range terms {
			terms[i] = logic.V(vars[rng.Intn(len(vars))])
		}
		body[j] = logic.Atom{Rel: rel.ID, Terms: terms}
	}
	seen := map[string]bool{}
	var bodyVars []string
	for _, a := range body {
		for _, t := range a.Terms {
			if !seen[t.Var] {
				seen[t.Var] = true
				bodyVars = append(bodyVars, t.Var)
			}
		}
	}
	nh := rng.Intn(min(2, len(bodyVars)) + 1)
	head := make([]logic.Term, nh)
	for i := range head {
		head[i] = logic.V(bodyVars[rng.Intn(len(bodyVars))])
	}
	return &logic.UCQ{Name: name, Arity: nh, Clauses: []logic.CQ{{Head: head, Body: body}}}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
