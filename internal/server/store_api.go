package server

import (
	"errors"
	"net/http"

	"repro"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Persistence glue: the optional crash-safe scenario store behind
// -data-dir. The server treats the store as write-behind durability — a
// failed save defers (the store retries in the background) and the HTTP
// request still succeeds; recovery at boot rebuilds tenants through the
// normal registry load path and quarantines what cannot be rebuilt,
// degrading one tenant instead of the process (DESIGN.md §16).

// StoreHealth is the /healthz "store" block, present when the daemon runs
// with a data directory.
type StoreHealth struct {
	DataDir     string `json:"data_dir"`
	Persisted   int    `json:"persisted"`
	Dirty       int    `json:"dirty"`
	Quarantined int    `json:"quarantined"`
}

// StoreResponse is the body of GET /v1/store.
type StoreResponse struct {
	Enabled bool `json:"enabled"`
	// Store carries the full store status (tracked scenarios, deferred
	// saves, quarantine records); omitted when persistence is disabled.
	Store *store.Status `json:"store,omitempty"`
}

// RecoverySummary reports what RecoverFromStore rebuilt.
type RecoverySummary struct {
	// Loaded counts snapshots rebuilt into live tenants.
	Loaded int
	// Adopted counts recovered snapshots that were on disk but absent
	// from the manifest (re-tracked with a WARN).
	Adopted int
	// Quarantined counts artifacts set aside: storage-level damage found
	// by the store plus snapshots that failed to rebuild semantically.
	Quarantined int
	// Skipped counts intact snapshots left on disk but not loaded
	// (registry full or name collision) — not damage, so not quarantined.
	Skipped int
}

func (s *Server) handleStore(w http.ResponseWriter, _ *http.Request) {
	resp := StoreResponse{}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Status()
		resp.Enabled = true
		resp.Store = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// RecoverFromStore replays the configured store into the registry: every
// recovered snapshot rebuilds through the normal load path (re-running
// the exchange phase and warming caches exactly as a fresh POST would).
// A snapshot that fails to rebuild — its texts no longer parse or chase —
// is quarantined so the next boot does not re-trip on it; the tenant name
// stays free for a fresh load. Call once, after New and before serving.
// A nil store is a no-op.
func (s *Server) RecoverFromStore() (RecoverySummary, error) {
	var sum RecoverySummary
	st := s.cfg.Store
	if st == nil {
		return sum, nil
	}
	rep, err := st.Recover()
	if err != nil {
		return sum, err
	}
	sum.Adopted = len(rep.Adopted)
	sum.Quarantined = len(rep.Quarantined)
	for _, sn := range rep.Recovered {
		if _, err := s.reg.Load(sn.Name, sn.Mapping, sn.Facts, sn.Queries,
			repro.WithMetrics(s.cfg.Metrics), repro.WithProfiling(true)); err != nil {
			if errors.Is(err, ErrRegistryFull) || errors.Is(err, ErrScenarioExists) {
				// The snapshot is intact; the registry just cannot host it
				// right now. Leave it persisted for a roomier boot.
				sum.Skipped++
				s.log.Error("recovered scenario not loaded; left persisted",
					"scenario", sn.Name, "error", err.Error())
				continue
			}
			rec := st.Quarantine(sn.Name, err)
			sum.Quarantined++
			s.log.Error("recovered scenario failed to rebuild; quarantined",
				"request_id", rec.ID, "scenario", sn.Name, "error", err.Error())
			continue
		}
		sum.Loaded++
		// Resume the tenant's persisted hardness history (advisory: a
		// damaged profile WARNs and the tenant starts fresh).
		s.restoreProfile(sn.Name)
	}
	s.cfg.Metrics.Gauge("xr_server_scenarios").Set(int64(s.reg.Len()))
	return sum, nil
}

// persistScenario write-behinds one loaded scenario. Persistence failures
// never fail the load: the store retries deferred saves in the
// background, and the WARN (plus the dirty count in /healthz and
// /v1/store) surfaces the durability gap.
func (s *Server) persistScenario(requestID string, req *LoadRequest) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	err := st.Save(store.Snapshot{
		Name:    req.Name,
		Mapping: req.Mapping,
		Facts:   req.Facts,
		Queries: req.Queries,
	})
	if err != nil {
		s.log.Warn("scenario persist deferred",
			"request_id", requestID, "scenario", req.Name, "error", err.Error())
	}
}

// forgetScenario removes a tenant's persisted state after an unload.
func (s *Server) forgetScenario(requestID, name string) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	if err := st.Delete(name); err != nil {
		s.log.Warn("removing persisted scenario failed",
			"request_id", requestID, "scenario", name, "error", err.Error())
	}
}

// storeHealth summarizes the store for /healthz (nil when disabled).
func (s *Server) storeHealth() *StoreHealth {
	st := s.cfg.Store
	if st == nil {
		return nil
	}
	status := st.Status()
	return &StoreHealth{
		DataDir:     status.DataDir,
		Persisted:   status.Persisted,
		Dirty:       status.Dirty,
		Quarantined: status.Quarantined,
	}
}

// scenarioDrained is the markRemoved callback for an unloaded tenant: it
// fires exactly once, when the last in-flight request against the old
// exchange finishes (immediately when none were running).
func (s *Server) scenarioDrained(requestID, name string) func() {
	return func() {
		s.cfg.Metrics.Counter(telemetry.Labeled("xr_server_scenario_drains_total", "scenario", name)).Inc()
		s.log.Info("scenario drained", "request_id", requestID, "scenario", name)
	}
}
