package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// logBuffer is a goroutine-safe sink for the structured log: handlers log
// from request goroutines while tests read.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) lines() []map[string]interface{} {
	b.mu.Lock()
	raw := b.buf.String()
	b.mu.Unlock()
	var out []map[string]interface{}
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err == nil {
			out = append(out, m)
		}
	}
	return out
}

// findLog returns the first log record with the given msg and request_id
// ("" matches any id).
func findLog(lines []map[string]interface{}, msg, requestID string) map[string]interface{} {
	for _, m := range lines {
		if m["msg"] != msg {
			continue
		}
		if requestID != "" && m["request_id"] != requestID {
			continue
		}
		return m
	}
	return nil
}

func jsonLogger(sink *logBuffer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(sink, nil))
}

// TestRequestIDPropagation drives the full correlation chain with a pinned
// client-supplied ID: response header, response body, access log line,
// trace fetch, and the span tree's request_id annotation all agree, and
// the normalized span tree matches the golden file.
func TestRequestIDPropagation(t *testing.T) {
	sink := &logBuffer{}
	// One lane: the solve is sequential, so the span tree is deterministic.
	_, ts := newTestServer(t, Config{TotalLanes: 1, Logger: jsonLogger(sink)})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	const reqID = "corr-test-0042"
	body, _ := json.Marshal(QueryRequest{Name: "q"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/scenarios/genome/query?trace=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d, body %s", resp.StatusCode, respBody)
	}

	// 1. Response header echoes the ID.
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Errorf("X-Request-Id header = %q, want %q", got, reqID)
	}
	// 2. Response body carries it, plus the inline span tree.
	var qr QueryResponse
	if err := json.Unmarshal(respBody, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RequestID != reqID {
		t.Errorf("body request_id = %q, want %q", qr.RequestID, reqID)
	}
	if len(qr.Trace) == 0 {
		t.Fatalf("?trace=1 returned no spans: %s", respBody)
	}
	// The query span is annotated with the request ID (engines read it
	// from the context).
	foundArg := false
	for _, sp := range qr.Trace {
		for _, a := range sp.Args {
			if a.Key == "request_id" && a.Value == reqID {
				foundArg = true
			}
		}
	}
	if !foundArg {
		t.Errorf("no span carries the request_id annotation: %s", respBody)
	}
	// 3. The trace ring serves the same tree by ID.
	code, traceBody, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/requests/"+reqID+"/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("trace fetch: status %d, body %s", code, traceBody)
	}
	var tr TraceResponse
	if err := json.Unmarshal(traceBody, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.RequestID != reqID || len(tr.Trace) != len(qr.Trace) {
		t.Errorf("trace fetch: id %q, %d spans; want %q, %d", tr.RequestID, len(tr.Trace), reqID, len(qr.Trace))
	}
	// 4. The access log line agrees on ID, route, tenant, and status.
	rec := findLog(sink.lines(), "request", reqID)
	if rec == nil {
		t.Fatalf("no access-log line for %s in:\n%s", reqID, &sink.buf)
	}
	if rec["route"] != "/v1/scenarios/{name}/query" || rec["tenant"] != "genome" || rec["status"] != float64(200) {
		t.Errorf("access log fields: %v", rec)
	}
	if _, ok := rec["duration_ms"]; !ok {
		t.Errorf("access log missing duration_ms: %v", rec)
	}
	// Solver work was attributed to the request.
	if rec["decisions"] == nil {
		t.Errorf("access log missing per-request decisions: %v", rec)
	}

	// 5. Golden: the span tree shape (names, nesting, annotations) is
	// pinned; timings are normalized to 0.
	norm := regexp.MustCompile(`"(start_ns|dur_ns)":\d+`).ReplaceAll(traceBody, []byte(`"$1":0`))
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, norm, "", "  "); err != nil {
		t.Fatal(err)
	}
	pretty.WriteByte('\n')
	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -update` to create)", err)
	}
	if !bytes.Equal(pretty.Bytes(), want) {
		t.Errorf("trace drifted from golden:\ngot:\n%s\nwant:\n%s", pretty.Bytes(), want)
	}
}

// TestRequestIDGeneration checks hostile or absent inbound IDs are
// replaced with a generated one.
func TestRequestIDGeneration(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, inbound := range []string{"", "has space", "semi;colon", strings.Repeat("x", 65)} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if inbound != "" {
			req.Header.Set("X-Request-Id", inbound)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got := resp.Header.Get("X-Request-Id")
		if got == inbound && inbound != "" {
			t.Errorf("hostile id %q echoed verbatim", inbound)
		}
		if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
			t.Errorf("generated id %q does not look like 16 hex chars (inbound %q)", got, inbound)
		}
	}
}

// TestInflightVisibility races N held-open requests against /v1/inflight:
// all N appear while blocked and disappear after completion. Run with
// -race (make check does) to validate the table and state atomics.
func TestInflightVisibility(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	const n = 4
	started := make(chan struct{}, n)
	release := make(chan struct{})
	blocked := httptest.NewServer(s.observe(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusNoContent)
	})))
	defer blocked.Close()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodGet, blocked.URL+"/hold", nil)
			req.Header.Set("X-Request-Id", fmt.Sprintf("blk-%d", i))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("blocked request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}

	code, body, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/inflight", nil)
	if code != http.StatusOK {
		t.Fatalf("inflight: status %d", code)
	}
	var inf InflightResponse
	if err := json.Unmarshal(body, &inf); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range inf.Requests {
		seen[e.RequestID] = true
		if e.StartTime == "" || e.ElapsedMS < 0 {
			t.Errorf("inflight entry missing timing: %+v", e)
		}
	}
	for i := 0; i < n; i++ {
		if !seen[fmt.Sprintf("blk-%d", i)] {
			t.Errorf("blocked request blk-%d not visible in /v1/inflight: %s", i, body)
		}
	}

	close(release)
	wg.Wait()

	code, body, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/inflight", nil)
	if code != http.StatusOK {
		t.Fatalf("inflight after release: status %d", code)
	}
	if err := json.Unmarshal(body, &inf); err != nil {
		t.Fatal(err)
	}
	for _, e := range inf.Requests {
		if strings.HasPrefix(e.RequestID, "blk-") {
			t.Errorf("completed request %s still listed in /v1/inflight", e.RequestID)
		}
	}
}

// TestSlowRingEviction pins the ring's FIFO eviction and newest-first
// listing at the data-structure level.
func TestSlowRingEviction(t *testing.T) {
	r := newSlowRing(3)
	for i := 1; i <= 5; i++ {
		r.add(SlowEntry{AccessRecord: AccessRecord{RequestID: fmt.Sprintf("r%d", i)}})
	}
	got := r.list()
	if len(got) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(got))
	}
	for i, want := range []string{"r5", "r4", "r3"} {
		if got[i].RequestID != want {
			t.Errorf("list[%d] = %s, want %s (newest first, oldest evicted)", i, got[i].RequestID, want)
		}
	}
}

// TestTraceRingEviction pins the completed-request trace ring bound.
func TestTraceRingEviction(t *testing.T) {
	r := newTraceRing(2)
	r.put("a", nil)
	r.put("b", nil)
	r.put("c", nil)
	if _, ok := r.get("a"); ok {
		t.Error("oldest trace not evicted")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := r.get(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
}

// TestSlowlogCapture runs queries over a zero-ish threshold server and
// checks the slowlog endpoint: bounded, newest first, entries carry the
// access record and span tree, and the WARN line fired.
func TestSlowlogCapture(t *testing.T) {
	sink := &logBuffer{}
	_, ts := newTestServer(t, Config{SlowQuery: time.Nanosecond, SlowLogSize: 2, Logger: jsonLogger(sink)})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	for i := 1; i <= 3; i++ {
		body, _ := json.Marshal(QueryRequest{Name: "q"})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/scenarios/genome/query", bytes.NewReader(body))
		req.Header.Set("X-Request-Id", fmt.Sprintf("slow-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}

	code, body, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/slowlog", nil)
	if code != http.StatusOK {
		t.Fatalf("slowlog: status %d", code)
	}
	var sl SlowlogResponse
	if err := json.Unmarshal(body, &sl); err != nil {
		t.Fatal(err)
	}
	if sl.ThresholdMS <= 0 {
		t.Errorf("threshold_ms = %v, want > 0", sl.ThresholdMS)
	}
	// The load request is also over the 1ns threshold, so the ring saw 4
	// entries; capacity 2 keeps the newest two queries, newest first.
	if len(sl.Entries) != 2 {
		t.Fatalf("slowlog holds %d entries, want 2 (bounded): %s", len(sl.Entries), body)
	}
	if sl.Entries[0].RequestID != "slow-3" || sl.Entries[1].RequestID != "slow-2" {
		t.Errorf("slowlog order: got [%s %s], want [slow-3 slow-2]",
			sl.Entries[0].RequestID, sl.Entries[1].RequestID)
	}
	for _, e := range sl.Entries {
		if e.Route != "/v1/scenarios/{name}/query" || e.Tenant != "genome" || e.Status != 200 {
			t.Errorf("slowlog record incomplete: %+v", e.AccessRecord)
		}
		if len(e.Trace) == 0 {
			t.Errorf("slowlog entry %s has no span tree", e.RequestID)
		}
	}
	if rec := findLog(sink.lines(), "slow query", "slow-3"); rec == nil {
		t.Errorf("no WARN slow-query log line for slow-3:\n%s", &sink.buf)
	}
}

// TestREDMetrics checks the per-route series appear in the Prometheus
// exposition with route templates (not raw tenant-bearing paths).
func TestREDMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)
	code, _, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/genome/query", QueryRequest{Name: "q"})
	if code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	code, _, _ = doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}

	_, body, _ := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	out := string(body)
	for _, want := range []string{
		`xr_http_requests_total{code="200",route="/v1/scenarios/{name}/query",tenant="genome"} 1`,
		`xr_http_requests_total{code="201",route="/v1/scenarios",tenant="genome"} 1`,
		`xr_http_requests_total{code="200",route="/healthz",tenant=""} 1`,
		"# TYPE xr_http_request_seconds histogram",
		`xr_http_request_seconds_bucket{route="/v1/scenarios/{name}/query",le=`,
		`xr_http_request_seconds_count{route="/v1/scenarios/{name}/query"} 1`,
		// The /metrics request itself is in flight while the snapshot is
		// taken, so the gauge reads 1.
		"xr_inflight_requests 1",
		"xr_lanes_in_use 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, "/v1/scenarios/genome/query") {
		t.Error("raw tenant-bearing path leaked into metric labels")
	}
}

// TestHealthzObservabilityFields checks the enriched health document
// keeps its status-code semantics and reports uptime/version/counts.
func TestHealthzObservabilityFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)
	code, body, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version == "" || h.UptimeSeconds < 0 || h.Scenarios != 1 {
		t.Errorf("healthz fields: %+v", h)
	}
	var raw map[string]interface{}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"status", "version", "uptime_seconds", "scenarios", "inflight", "lanes_busy", "lanes_max"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("healthz missing %q: %s", key, body)
		}
	}
}

// TestRecoverMiddleware checks a handler panic surfaces as a JSON 500
// with the request ID echoed, and the process (and suite) survives.
func TestRecoverMiddleware(t *testing.T) {
	sink := &logBuffer{}
	s := New(Config{Logger: jsonLogger(sink)})
	panicky := httptest.NewServer(s.observe(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})))
	defer panicky.Close()
	resp, err := http.Get(panicky.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("panicking request lost its X-Request-Id header")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Errorf("500 body not an ErrorResponse: %s", body)
	}
	if rec := findLog(sink.lines(), "panic in handler", ""); rec == nil {
		t.Errorf("panic not logged:\n%s", &sink.buf)
	}
}
