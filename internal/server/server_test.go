package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

var update = flag.Bool("update", false, "rewrite golden files")

const demoMapping = `
source Observed(transcript, exons).
source Curated(transcript, exons).
target Gene(transcript, exons).
tgd obs: Observed(t, e) -> Gene(t, e).
tgd cur: Curated(t, e) -> Gene(t, e).
egd key: Gene(t, e1) & Gene(t, e2) -> e1 = e2.
`

const demoFacts = `
Observed(tx1, 4).
Curated(tx1, 5).
Observed(tx2, 7).
Curated(tx2, 7).
`

const demoQueries = `
q(t, e) :- Gene(t, e).
anyGene() :- Gene(t, e).
`

// The Theorem 3 tricolor gadget (examples/tricolor), hand-encoded for K4
// (not 3-colorable: the marker is XR-certain) and K3 (3-colorable: it is
// not). Two structurally different tenants exercise mixed-tenant load.
const tricolorMapping = `
source E(x, y, u, v).
source Cr(x).
source Cg(x).
source Cb(x).
source F(u, v).
target E1(x, y).
target F1(u, v).
target Fsrc(u, v).
target Cr1(x).
target Cg1(x).
target Cb1(x).

tgd E(x, y, u, v) & Cr(x) -> E1(x, y).
tgd E(x, y, u, v) & Cg(x) -> E1(x, y).
tgd E(x, y, u, v) & Cb(x) -> E1(x, y).
tgd E(x, y, u, v) & Cr(x) -> F1(u, v).
tgd E(x, y, u, v) & Cg(x) -> F1(u, v).
tgd E(x, y, u, v) & Cb(x) -> F1(u, v).
tgd Cr(x) -> Cr1(x).
tgd Cg(x) -> Cg1(x).
tgd Cb(x) -> Cb1(x).
tgd F(u, v) -> F1(u, v).
tgd F(u, v) -> Fsrc(u, v).
tgd trans: F1(u, v) & F1(v, w) -> F1(u, w).

egd E1(x, y) & Cr1(x) & Cr1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cg1(x) & Cg1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cb1(x) & Cb1(y) & F1(u, v) -> u = v.
egd F1(u, u) & F1(v, w) -> v = w.
`

const k4Facts = `
E(a, b, n1, n2). E(c, a, n2, n3). E(d, a, n3, n4).
E(b, c, n4, n5). E(b, d, n5, n6). E(c, d, n6, n7).
Cr(a). Cg(a). Cb(a).
Cr(b). Cg(b). Cb(b).
Cr(c). Cg(c). Cb(c).
Cr(d). Cg(d). Cb(d).
F(n7, n1).
`

const k4Query = "inAllRepairs() :- Fsrc(n7, n1).\n"

const k3Facts = `
E(a, b, n1, n2). E(b, c, n2, n3). E(c, a, n3, n4).
Cr(a). Cg(a). Cb(a).
Cr(b). Cg(b). Cb(b).
Cr(c). Cg(c). Cb(c).
F(n4, n1).
`

const k3Query = "inAllRepairs() :- Fsrc(n4, n1).\n"

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body interface{}) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

func loadScenario(t *testing.T, base, name, mapping, facts, queries string) {
	t.Helper()
	code, body, _ := doJSON(t, http.MethodPost, base+"/v1/scenarios",
		LoadRequest{Name: name, Mapping: mapping, Facts: facts, Queries: queries})
	if code != http.StatusCreated {
		t.Fatalf("load %s: status %d, body %s", name, code, body)
	}
}

func TestLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxScenarios: 2})

	// Empty listing first.
	code, body, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/scenarios", nil)
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var list ListResponse
	if err := json.Unmarshal(body, &list); err != nil || len(list.Scenarios) != 0 {
		t.Fatalf("empty list = %s (err %v)", body, err)
	}

	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	// Duplicate name conflicts.
	code, _, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios",
		LoadRequest{Name: "genome", Mapping: demoMapping, Facts: demoFacts})
	if code != http.StatusConflict {
		t.Fatalf("duplicate load: status %d, want 409", code)
	}

	// Invalid mapping rejected and the name is released.
	code, _, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios",
		LoadRequest{Name: "broken", Mapping: "nonsense !!", Facts: ""})
	if code != http.StatusBadRequest {
		t.Fatalf("bad mapping: status %d, want 400", code)
	}

	loadScenario(t, ts.URL, "tri-k4", tricolorMapping, k4Facts, k4Query)

	// Registry full at MaxScenarios=2.
	code, _, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios",
		LoadRequest{Name: "three", Mapping: demoMapping, Facts: demoFacts})
	if code != http.StatusInsufficientStorage {
		t.Fatalf("registry full: status %d, want 507", code)
	}

	code, body, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/scenarios", nil)
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Scenarios) != 2 || list.Scenarios[0].Name != "genome" || list.Scenarios[1].Name != "tri-k4" {
		t.Fatalf("list = %s", body)
	}

	// Per-scenario info reflects the exchange.
	code, body, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/scenarios/genome", nil)
	if code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	var info ScenarioInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.SourceFacts != 4 || info.Consistent || info.Violations != 1 ||
		info.Clusters != 1 || info.SuspectFacts != 2 ||
		!reflect.DeepEqual(info.Queries, []string{"q", "anyGene"}) {
		t.Fatalf("info = %+v", info)
	}

	code, _, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/scenarios/nope", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown info: status %d, want 404", code)
	}

	code, _, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/scenarios/genome", nil)
	if code != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", code)
	}
	code, _, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/scenarios/genome", nil)
	if code != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", code)
	}
}

// TestQueryMatchesLibrary is the acceptance gate that the wire path returns
// byte-identical tuples to the in-process library path.
func TestQueryMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	sys, err := repro.Load(demoMapping)
	if err != nil {
		t.Fatal(err)
	}
	in, err := sys.ParseFacts(demoFacts)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sys.ParseQueries(demoQueries)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []string{"certain", "possible"} {
		for _, q := range qs {
			var want *repro.Answers
			if mode == "possible" {
				want, err = ex.Possible(q)
			} else {
				want, err = ex.Answer(q)
			}
			if err != nil {
				t.Fatal(err)
			}
			code, body, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/genome/query",
				QueryRequest{Name: q.Name(), Mode: mode})
			if code != http.StatusOK {
				t.Fatalf("%s/%s: status %d, body %s", mode, q.Name(), code, body)
			}
			var got QueryResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			wantJSON, _ := json.Marshal(want.Tuples)
			gotJSON, _ := json.Marshal(got.Answers.Tuples)
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Fatalf("%s/%s: server tuples %s, library tuples %s", mode, q.Name(), gotJSON, wantJSON)
			}
			if got.Partial || got.Answers.Partial() {
				t.Fatalf("%s/%s: unexpected partial result", mode, q.Name())
			}
		}
	}
}

// TestConcurrentMixedTenants hammers three structurally different tenants
// from many goroutines (run under -race via `make check`): shared warm
// caches, the process-wide lane pool, and per-scenario symbol-table locks
// all get concurrent traffic, including inline-query parsing (a write-lock
// path) interleaved with named-query execution (read-lock paths).
func TestConcurrentMixedTenants(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentQueries: 8, TotalLanes: 4})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)
	loadScenario(t, ts.URL, "tri-k4", tricolorMapping, k4Facts, k4Query)
	loadScenario(t, ts.URL, "tri-k3", tricolorMapping, k3Facts, k3Query)

	type call struct {
		scenario string
		req      QueryRequest
		wantRows int
	}
	calls := []call{
		{"genome", QueryRequest{Name: "q"}, 1},
		{"genome", QueryRequest{Name: "q", Mode: "possible"}, 3},
		{"genome", QueryRequest{Query: "inline(t) :- Gene(t, 7).\n"}, 1},
		{"tri-k4", QueryRequest{Name: "inAllRepairs"}, 1}, // K4 not 3-colorable
		{"tri-k3", QueryRequest{Name: "inAllRepairs"}, 0}, // K3 3-colorable
	}
	const workers = 6
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds*len(calls))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				c := calls[(w+r)%len(calls)]
				code, body, _ := doJSON(t, http.MethodPost,
					ts.URL+"/v1/scenarios/"+c.scenario+"/query", c.req)
				// 429 is a legitimate overload answer under saturation;
				// anything else must be a clean 200 with the right rows.
				if code == http.StatusTooManyRequests {
					continue
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d, body %s", c.scenario, code, body)
					continue
				}
				var resp QueryResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					errs <- err
					continue
				}
				if len(resp.Answers.Tuples) != c.wantRows {
					errs <- fmt.Errorf("%s %+v: rows = %d, want %d",
						c.scenario, c.req, len(resp.Answers.Tuples), c.wantRows)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBudgetPartial exercises the graceful-degradation contract over the
// wire: a decision budget of 1 deterministically exhausts the conflicted
// signature, yet the response is HTTP 200 with the degraded signature
// reported and the undecided tuples ?-marked (in the unknown set).
func TestBudgetPartial(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	code, body, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/genome/query",
		QueryRequest{Name: "q", MaxDecisions: 1})
	if code != http.StatusOK {
		t.Fatalf("budgeted query: status %d, body %s", code, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || !resp.Answers.Partial() {
		t.Fatalf("budgeted query not partial: %s", body)
	}
	if len(resp.Answers.Degraded) == 0 || resp.Answers.DegradedSignatures == 0 {
		t.Fatalf("no degraded signatures reported: %s", body)
	}
	if len(resp.Answers.Unknown) == 0 || resp.Answers.UnknownTuples != len(resp.Answers.Unknown) {
		t.Fatalf("no unknown tuples reported: %s", body)
	}
	// The certain row survives degradation (sound lower bound).
	if len(resp.Answers.Tuples) != 1 || resp.Answers.Tuples[0][0] != "tx2" {
		t.Fatalf("tuples = %v", resp.Answers.Tuples)
	}

	// partial=false selects exact-or-error: the same budget now fails.
	no := false
	code, body, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/genome/query",
		QueryRequest{Name: "q", MaxDecisions: 1, Partial: &no})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("strict budgeted query: status %d, want 422; body %s", code, body)
	}
}

// TestSaturation429 fills the admission semaphore and checks overload
// handling: 429 with Retry-After, the rejection counted, and capacity
// restored afterwards.
func TestSaturation429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentQueries: 1})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	// Occupy the only admission slot deterministically.
	s.admit <- struct{}{}
	code, body, hdr := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/genome/query",
		QueryRequest{Name: "q"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated query: status %d, want 429; body %s", code, body)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want 1", hdr.Get("Retry-After"))
	}
	if got := s.cfg.Metrics.Counter("xr_server_rejected_total").Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	<-s.admit

	code, _, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/genome/query",
		QueryRequest{Name: "q"})
	if code != http.StatusOK {
		t.Fatalf("post-saturation query: status %d, want 200", code)
	}
}

// TestDrainOrdering checks graceful shutdown: once draining, new requests
// get 503 and healthz flips, while Drain itself blocks until the last
// in-flight request leaves.
func TestDrainOrdering(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	// Pin one synthetic in-flight request, then start draining.
	if !s.group.Enter() {
		t.Fatal("Enter refused before drain")
	}
	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(t.Context()) }()
	for !s.group.Draining() {
		time.Sleep(time.Millisecond)
	}

	code, _, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/genome/query",
		QueryRequest{Name: "q"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: status %d, want 503", code)
	}
	code, body, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", code)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "draining" || h.Inflight != 1 {
		t.Fatalf("healthz = %s (err %v)", body, err)
	}

	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned %v with a request in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.group.Leave()
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestStreamNDJSON pins the streamed framing to a golden file: a budgeted
// partial query yields header, the certain row, ?-marked unknowns, the
// degraded signature, stats, and end — durations normalized to 0.
func TestStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/scenarios/genome/query",
		strings.NewReader(`{"name":"q","max_decisions":1,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := regexp.MustCompile(`"duration_ns":\d+`).ReplaceAll(raw, []byte(`"duration_ns":0`))

	path := filepath.Join("testdata", "stream.golden.ndjson")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server -run TestStreamNDJSON -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stream mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Structural checks independent of the golden bytes: every line is a
	// framed JSON object, unknowns carry the ? mark, and the stream is
	// properly terminated.
	lines := strings.Split(strings.TrimSuffix(string(got), "\n"), "\n")
	var frames []string
	unknownMarked := 0
	for _, ln := range lines {
		var f map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &f); err != nil {
			t.Fatalf("bad frame %q: %v", ln, err)
		}
		frames = append(frames, f["frame"].(string))
		if f["frame"] == "unknown" {
			if f["mark"] != "?" {
				t.Fatalf("unknown frame without ? mark: %q", ln)
			}
			unknownMarked++
		}
	}
	if frames[0] != "header" || frames[len(frames)-2] != "stats" || frames[len(frames)-1] != "end" {
		t.Fatalf("frame order = %v", frames)
	}
	if unknownMarked == 0 {
		t.Fatal("no ?-marked unknown frames in a budgeted stream")
	}
}

// TestStreamViaAcceptHeader checks content negotiation: Accept:
// application/x-ndjson selects streaming without the body flag.
func TestStreamViaAcceptHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/scenarios/genome/query",
		strings.NewReader(`{"name":"q"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
}

// TestExplainEndpoint checks the explanation route end to end.
func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	code, body, _ := doJSON(t, http.MethodGet,
		ts.URL+"/v1/scenarios/genome/explain?query=q&tuple=tx2,7", nil)
	if code != http.StatusOK {
		t.Fatalf("explain: status %d, body %s", code, body)
	}
	var resp ExplainResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	e := resp.Explanation
	if e == nil || e.Query != "q" || !reflect.DeepEqual(e.Tuple, []string{"tx2", "7"}) || e.Text == "" {
		t.Fatalf("explanation = %s", body)
	}

	code, _, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/scenarios/genome/explain", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("explain without query: status %d, want 400", code)
	}
	code, _, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/scenarios/genome/explain?query=nope", nil)
	if code != http.StatusNotFound {
		t.Fatalf("explain unknown query: status %d, want 404", code)
	}
}

// TestQueryValidation covers the request-shape error paths.
func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)

	cases := []struct {
		name string
		req  QueryRequest
		want int
	}{
		{"missing query", QueryRequest{}, http.StatusBadRequest},
		{"both name and query", QueryRequest{Name: "q", Query: "x() :- Gene(t, e).\n"}, http.StatusBadRequest},
		{"unknown named query", QueryRequest{Name: "nope"}, http.StatusNotFound},
		{"bad inline syntax", QueryRequest{Query: "not a query"}, http.StatusBadRequest},
		{"bad mode", QueryRequest{Name: "q", Mode: "maybe"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		code, body, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/genome/query", c.req)
		if code != c.want {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, code, c.want, body)
		}
	}

	code, _, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/nowhere/query",
		QueryRequest{Name: "q"})
	if code != http.StatusNotFound {
		t.Errorf("unknown scenario: status %d, want 404", code)
	}
}

// TestMetricsExposition checks that per-tenant labeled series reach the
// Prometheus endpoint on the shared mux.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "genome", demoMapping, demoFacts, demoQueries)
	if code, _, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/genome/query",
		QueryRequest{Name: "q"}); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	code, body, _ := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`xr_server_queries_total{mode="certain",scenario="genome"} 1`,
		"# TYPE xr_server_queries_total counter",
		"xr_server_scenarios 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
