package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// The observability middleware stack. Every endpoint is served through
//
//	withRequestID → withAccessLog → withMetrics → withRecover → mux
//
// withRequestID is outermost so the ID exists for everything downstream
// (context, response header, inflight table). withRecover is innermost —
// deliberately inside the observers — so a panic is converted to a 500
// *before* the access log and RED metrics read the response status;
// an outermost recover would log status 0 for panicking handlers.
//
// All middlewares share one per-request state object (requestState) and
// one response-writer wrapper (statusWriter), both created by
// withRequestID, so the stack costs a single allocation pair per request
// and never disagrees about status or byte counts.

// requestState is the per-request record shared by the middleware stack,
// the handlers, and the /v1/inflight view. Counter fields are atomics
// because the solver-trace hook updates them from worker goroutines while
// /v1/inflight reads them; string fields set after creation are guarded
// by mu for the same reason.
type requestState struct {
	id     string
	method string
	start  time.Time

	mu        sync.Mutex
	route     string
	tenant    string
	queryHash string
	tracer    *telemetry.Tracer

	// hot tracks the hardest signatures this request solved (by wall
	// time, capped at hotSignatureCap); guarded by mu because the
	// solver-trace hook feeds it from worker goroutines.
	hot []hotSig

	lanes     atomic.Int64
	sigsDone  atomic.Int64
	decisions atomic.Int64
	conflicts atomic.Int64
	degraded  atomic.Int64
	unknown   atomic.Int64
}

// hotSignatureCap bounds the hardest-signature list a request tracks
// (and the slowlog surfaces).
const hotSignatureCap = 3

// hotSig is one solved signature's wall time as the request's
// solver-trace hook saw it.
type hotSig struct {
	key string
	ns  int64
}

// noteSignature records one signature solve for the request's
// hardest-signature list, keeping the top hotSignatureCap by wall time.
// A signature solved twice in one request (retry) keeps its longest
// solve. Ties order by key so the list is deterministic.
func (st *requestState) noteSignature(key string, d time.Duration) {
	if key == "" {
		return
	}
	ns := int64(d)
	st.mu.Lock()
	defer st.mu.Unlock()
	found := false
	for i := range st.hot {
		if st.hot[i].key == key {
			if ns > st.hot[i].ns {
				st.hot[i].ns = ns
			}
			found = true
			break
		}
	}
	if !found {
		st.hot = append(st.hot, hotSig{key: key, ns: ns})
	}
	sort.Slice(st.hot, func(i, j int) bool {
		if st.hot[i].ns != st.hot[j].ns {
			return st.hot[i].ns > st.hot[j].ns
		}
		return st.hot[i].key < st.hot[j].key
	})
	if len(st.hot) > hotSignatureCap {
		st.hot = st.hot[:hotSignatureCap]
	}
}

// hotSignatures returns the tracked hardest signature keys, hottest
// first.
func (st *requestState) hotSignatures() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.hot) == 0 {
		return nil
	}
	keys := make([]string, len(st.hot))
	for i, h := range st.hot {
		keys[i] = h.key
	}
	return keys
}

func (st *requestState) setRoute(route string) {
	st.mu.Lock()
	st.route = route
	st.mu.Unlock()
}

func (st *requestState) setTenant(tenant string) {
	st.mu.Lock()
	st.tenant = tenant
	st.mu.Unlock()
}

func (st *requestState) setQueryHash(h string) {
	st.mu.Lock()
	st.queryHash = h
	st.mu.Unlock()
}

func (st *requestState) setTracer(t *telemetry.Tracer) {
	st.mu.Lock()
	st.tracer = t
	st.mu.Unlock()
}

// labels returns the mutex-guarded strings in one critical section.
func (st *requestState) labels() (route, tenant, queryHash string, tracer *telemetry.Tracer) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.route, st.tenant, st.queryHash, st.tracer
}

type stateKey struct{}

// stateFrom returns the request state attached by withRequestID (nil when
// the handler runs outside the middleware stack, e.g. in direct tests).
func stateFrom(ctx context.Context) *requestState {
	st, _ := ctx.Value(stateKey{}).(*requestState)
	return st
}

// statusWriter captures the response status and byte count while passing
// Flush through — NDJSON streaming depends on the wrapped writer still
// implementing http.Flusher.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// newRequestID returns a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is catastrophic enough elsewhere; fall back
		// to a time-derived ID rather than refusing the request.
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied X-Request-Id only when it is
// short and shell/log-safe; anything else is discarded and regenerated.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// queryTextHash is the FNV-64a hash of the query text, hex-encoded: stable
// across requests so an operator can group slowlog/inflight entries by
// query without the log carrying (possibly sensitive) query text.
func queryTextHash(text string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(text))
	return fmt.Sprintf("%016x", h.Sum64())
}

// observe wraps next in the full middleware stack; see the file comment
// for the ordering rationale.
func (s *Server) observe(next http.Handler) http.Handler {
	return s.withRequestID(s.withAccessLog(s.withMetrics(s.withRecover(next))))
}

// withRequestID assigns the request ID (honoring a well-formed inbound
// X-Request-Id), echoes it on the response, creates the shared request
// state and status writer, and registers the request in the inflight
// table for its whole lifetime.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = newRequestID()
		}
		st := &requestState{id: id, method: r.Method, start: time.Now()}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		ctx := telemetry.ContextWithRequestID(r.Context(), id)
		ctx = context.WithValue(ctx, stateKey{}, st)
		s.inflight.add(st)
		defer s.inflight.remove(st)
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// withAccessLog emits one structured log line per request after it
// completes, harvests the per-request span tree into the trace ring, and
// feeds the slow-query log when the request exceeded the threshold.
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
		st := stateFrom(r.Context())
		sw, _ := w.(*statusWriter)
		if st == nil || sw == nil {
			return
		}
		rec := s.buildRecord(st, sw)
		var spans []telemetry.SpanNode
		if _, _, _, tracer := st.labels(); tracer != nil {
			spans = tracer.Spans()
			s.traces.put(st.id, spans)
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", rec.logAttrs()...)
		if s.cfg.SlowQuery > 0 && time.Since(st.start) >= s.cfg.SlowQuery {
			s.slow.add(SlowEntry{AccessRecord: rec, Trace: spans})
			s.log.LogAttrs(r.Context(), slog.LevelWarn, "slow query", rec.logAttrs()...)
		}
	})
}

// withMetrics maintains the RED series: per-route/code/tenant request
// counts, per-route latency histograms, and the in-flight gauge.
func (s *Server) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mt := s.cfg.Metrics
		g := mt.Gauge("xr_inflight_requests")
		g.Add(1)
		defer g.Add(-1)
		start := time.Now()
		next.ServeHTTP(w, r)
		st := stateFrom(r.Context())
		sw, _ := w.(*statusWriter)
		if st == nil || sw == nil {
			return
		}
		route, tenant, _, _ := st.labels()
		if route == "" {
			route = "unmatched"
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		mt.Counter(telemetry.Labeled("xr_http_requests_total",
			"route", route, "code", fmt.Sprintf("%d", status), "tenant", tenant)).Inc()
		mt.Histogram(telemetry.Labeled("xr_http_request_seconds", "route", route)).Observe(time.Since(start))
	})
}

// withRecover converts a handler panic into a 500 (when no response has
// started) and logs it with the stack. It sits innermost so the observers
// above it see the final status. http.ErrAbortHandler is re-raised: it is
// the sanctioned way to abort a response mid-stream.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			id := ""
			if st := stateFrom(r.Context()); st != nil {
				id = st.id
			}
			s.log.Error("panic in handler",
				"request_id", id, "panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			if sw, ok := w.(*statusWriter); !ok || sw.status == 0 {
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "internal server error"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// route tags the request state with the registered route template (e.g.
// "/v1/scenarios/{name}/query") so logs and metrics label by pattern, not
// raw path — raw paths would make tenant names explode the metric
// cardinality. It runs after mux dispatch, so only matched routes tag.
func (s *Server) route(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if st := stateFrom(r.Context()); st != nil {
			st.setRoute(pattern)
		}
		h(w, r)
	})
}

// AccessRecord is one completed request as the access log and the slowlog
// render it. Field names are part of the wire contract (slowlog entries
// embed it).
type AccessRecord struct {
	RequestID  string  `json:"request_id"`
	Time       string  `json:"time"` // request start, RFC3339Nano
	Method     string  `json:"method"`
	Route      string  `json:"route"`
	Tenant     string  `json:"tenant,omitempty"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
	Lanes      int     `json:"lanes,omitempty"`
	Degraded   int     `json:"degraded,omitempty"`
	Unknown    int     `json:"unknown,omitempty"`
	Decisions  int64   `json:"decisions,omitempty"`
	Conflicts  int64   `json:"conflicts,omitempty"`
	QueryHash  string  `json:"query_hash,omitempty"`
	// HotSignatures are the request's hardest signature keys (canonical
	// "2,7" form, hottest first, top 3 by wall time) — the handle an
	// operator takes from a slowlog entry into
	// GET /v1/scenarios/{name}/profile.
	HotSignatures []string `json:"hot_signatures,omitempty"`
}

func (s *Server) buildRecord(st *requestState, sw *statusWriter) AccessRecord {
	route, tenant, queryHash, _ := st.labels()
	if route == "" {
		route = "unmatched"
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	return AccessRecord{
		RequestID:     st.id,
		Time:          st.start.UTC().Format(time.RFC3339Nano),
		Method:        st.method,
		Route:         route,
		Tenant:        tenant,
		Status:        status,
		Bytes:         sw.bytes,
		DurationMS:    float64(time.Since(st.start).Nanoseconds()) / 1e6,
		Lanes:         int(st.lanes.Load()),
		Degraded:      int(st.degraded.Load()),
		Unknown:       int(st.unknown.Load()),
		Decisions:     st.decisions.Load(),
		Conflicts:     st.conflicts.Load(),
		QueryHash:     queryHash,
		HotSignatures: st.hotSignatures(),
	}
}

// logAttrs renders the record as slog attributes; the access log line and
// the slow-query WARN share the exact same shape.
func (r AccessRecord) logAttrs() []slog.Attr {
	attrs := []slog.Attr{
		slog.String("request_id", r.RequestID),
		slog.String("method", r.Method),
		slog.String("route", r.Route),
		slog.String("tenant", r.Tenant),
		slog.Int("status", r.Status),
		slog.Int64("bytes", r.Bytes),
		slog.Float64("duration_ms", r.DurationMS),
	}
	if r.Lanes > 0 {
		attrs = append(attrs, slog.Int("lanes", r.Lanes))
	}
	if r.Degraded > 0 || r.Unknown > 0 {
		attrs = append(attrs,
			slog.Int("degraded", r.Degraded), slog.Int("unknown", r.Unknown))
	}
	if r.Decisions > 0 || r.Conflicts > 0 {
		attrs = append(attrs,
			slog.Int64("decisions", r.Decisions), slog.Int64("conflicts", r.Conflicts))
	}
	if r.QueryHash != "" {
		attrs = append(attrs, slog.String("query_hash", r.QueryHash))
	}
	if len(r.HotSignatures) > 0 {
		attrs = append(attrs, slog.String("hot_signatures", strings.Join(r.HotSignatures, " ")))
	}
	return attrs
}
