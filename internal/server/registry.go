// Package server implements xrserved: a long-lived, multi-tenant HTTP
// daemon hosting many named exchanges and serving concurrent XR-Certain /
// XR-Possible queries against shared warm signature caches.
//
// The package glues the public repro API to a wire protocol (DESIGN.md
// §14): scenarios are loaded once (paying the polynomial exchange phase
// and warming the per-exchange signature-program cache), then queried many
// times. Admission control is process-wide: one bounded solver-lane pool
// shared across tenants, a semaphore on concurrent requests (saturation
// returns 429 + Retry-After), server-side default budgets so a hostile
// query degrades instead of wedging a tenant, and graceful drain.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro"
)

// Registry errors, matched with errors.Is by the HTTP layer.
var (
	// ErrScenarioExists reports a Load under a name already in use.
	ErrScenarioExists = errors.New("server: scenario already loaded")
	// ErrScenarioNotFound reports a lookup of an unknown scenario.
	ErrScenarioNotFound = errors.New("server: scenario not found")
	// ErrRegistryFull reports that MaxScenarios tenants are already loaded.
	ErrRegistryFull = errors.New("server: scenario registry full")
	// ErrBadScenario wraps mapping/fact/query parse failures during Load.
	ErrBadScenario = errors.New("server: invalid scenario")
	// ErrBadQuery wraps per-request query text failures.
	ErrBadQuery = errors.New("server: invalid query")
)

// Scenario is one loaded tenant: a schema mapping, a source instance, and
// the warm Exchange every query against this tenant shares. The exchange
// phase runs once at load time; the signature-program cache inside the
// Exchange then amortizes across all subsequent queries.
type Scenario struct {
	Name string

	sys *repro.System
	in  *repro.Instance
	ex  *repro.Exchange

	// mu guards the scenario's symbol tables: parsing (queries intern new
	// constants into the shared universe) takes the write lock, while
	// query execution and answer rendering (reads of the universe) take
	// the read lock. Loads are one-time; queries overwhelmingly take the
	// read path, so concurrent queries against one tenant proceed in
	// parallel.
	mu sync.RWMutex

	// queries are the named queries preloaded with the scenario, kept in
	// declaration order for deterministic listings.
	queries    map[string]*repro.Query
	queryNames []string

	// refMu guards the drain refcount: Registry.Acquire takes a reference
	// for a request's whole execution, Remove marks the scenario removed,
	// and the drained callback fires exactly once when the last reference
	// of a removed scenario releases (immediately, if none are held). New
	// requests 404 the moment the name leaves the registry map; in-flight
	// ones finish against the old exchange.
	refMu   sync.Mutex
	refs    int
	removed bool
	drained func()
}

// acquire takes a drain reference. Called only while the registry lock
// pins the scenario in the map, so acquire always precedes markRemoved's
// drain decision for this reference.
func (sc *Scenario) acquire() {
	sc.refMu.Lock()
	sc.refs++
	sc.refMu.Unlock()
}

// release drops a drain reference, firing the drained callback when it
// was the last one on a removed scenario.
func (sc *Scenario) release() {
	sc.refMu.Lock()
	sc.refs--
	var fire func()
	if sc.removed && sc.refs == 0 {
		fire, sc.drained = sc.drained, nil
	}
	sc.refMu.Unlock()
	if fire != nil {
		fire()
	}
}

// markRemoved records the scenario as unloaded and arranges for onDrained
// to run once the last in-flight reference releases (now, if none).
func (sc *Scenario) markRemoved(onDrained func()) {
	sc.refMu.Lock()
	sc.removed = true
	var fire func()
	if sc.refs == 0 {
		fire = onDrained
	} else {
		sc.drained = onDrained
	}
	sc.refMu.Unlock()
	if fire != nil {
		fire()
	}
}

// newScenario parses and builds one tenant. The queries text is optional;
// when present, each named query becomes addressable by name in query and
// explain requests.
func newScenario(name, mappingText, factsText, queriesText string, exOpts ...repro.Option) (*Scenario, error) {
	sys, err := repro.Load(mappingText)
	if err != nil {
		return nil, fmt.Errorf("%w: mapping: %v", ErrBadScenario, err)
	}
	in, err := sys.ParseFacts(factsText)
	if err != nil {
		return nil, fmt.Errorf("%w: facts: %v", ErrBadScenario, err)
	}
	ex, err := sys.NewExchange(in, exOpts...)
	if err != nil {
		return nil, fmt.Errorf("%w: exchange: %v", ErrBadScenario, err)
	}
	sc := &Scenario{
		Name:    name,
		sys:     sys,
		in:      in,
		ex:      ex,
		queries: make(map[string]*repro.Query),
	}
	if queriesText != "" {
		qs, err := sys.ParseQueries(queriesText)
		if err != nil {
			return nil, fmt.Errorf("%w: queries: %v", ErrBadScenario, err)
		}
		for _, q := range qs {
			if _, dup := sc.queries[q.Name()]; dup {
				return nil, fmt.Errorf("%w: queries: duplicate query name %q", ErrBadScenario, q.Name())
			}
			sc.queries[q.Name()] = q
			sc.queryNames = append(sc.queryNames, q.Name())
		}
	}
	return sc, nil
}

// Query returns the preloaded query with the given name.
func (sc *Scenario) Query(name string) (*repro.Query, bool) {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	q, ok := sc.queries[name]
	return q, ok
}

// ParseQuery parses inline query text against the scenario's schema under
// the write lock (parsing interns constants into the shared universe).
// The text must define exactly one query.
func (sc *Scenario) ParseQuery(text string) (*repro.Query, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	qs, err := sc.sys.ParseQueries(text)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if len(qs) != 1 {
		return nil, fmt.Errorf("%w: inline query text must define exactly one query, got %d", ErrBadQuery, len(qs))
	}
	return qs[0], nil
}

// Answer runs an XR-Certain query under the read lock.
func (sc *Scenario) Answer(q *repro.Query, opts ...repro.Option) (*repro.Answers, error) {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.ex.Answer(q, opts...)
}

// Possible runs an XR-Possible query under the read lock.
func (sc *Scenario) Possible(q *repro.Query, opts ...repro.Option) (*repro.Answers, error) {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.ex.Possible(q, opts...)
}

// Why explains one tuple of a preloaded query under the read lock.
func (sc *Scenario) Why(q *repro.Query, args []string, opts ...repro.Option) (*repro.Explanation, error) {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.ex.Why(q, args, opts...)
}

// Info summarizes the tenant for the wire (see ScenarioInfo).
func (sc *Scenario) Info() ScenarioInfo {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	st := sc.ex.Stats()
	return ScenarioInfo{
		Name:         sc.Name,
		SourceFacts:  sc.in.NumFacts(),
		Consistent:   sc.ex.Consistent(),
		Violations:   sc.ex.Violations(),
		Clusters:     sc.ex.Clusters(),
		SuspectFacts: sc.ex.SuspectFacts(),
		Queries:      append([]string{}, sc.queryNames...),
		Stats:        st,
	}
}

// Profile snapshots the tenant's workload profiler under the read lock.
// The snapshot is deterministic JSON-shaped data (see internal/profile);
// on a tenant built without profiling it is empty, never nil.
func (sc *Scenario) Profile() *repro.Profile {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.ex.Profile()
}

// MergeProfile folds a restored snapshot into the tenant's profiler
// (additive; see Profiler.Merge). Used at boot to resume persisted
// hardness history under live recording.
func (sc *Scenario) MergeProfile(p *repro.Profile) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.ex.MergeProfile(p)
}

// ProfilingEnabled reports whether the tenant's exchange carries a
// workload profiler.
func (sc *Scenario) ProfilingEnabled() bool { return sc.ex.ProfilingEnabled() }

// Registry is the multi-tenant scenario table: named Scenarios with
// load/unload/list lifecycle. All methods are safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	scenarios map[string]*Scenario
	max       int
}

// NewRegistry returns an empty registry capped at max tenants (0 means
// unlimited).
func NewRegistry(max int) *Registry {
	return &Registry{scenarios: make(map[string]*Scenario), max: max}
}

// Load parses, chases, and registers one scenario. Building the exchange
// happens outside the registry lock so a slow load never blocks queries
// against other tenants; the name is reserved first so two concurrent
// loads of the same name cannot both win.
func (r *Registry) Load(name, mappingText, factsText, queriesText string, exOpts ...repro.Option) (*Scenario, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty scenario name", ErrBadScenario)
	}
	r.mu.Lock()
	if _, dup := r.scenarios[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrScenarioExists, name)
	}
	if r.max > 0 && len(r.scenarios) >= r.max {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %d scenarios loaded", ErrRegistryFull, len(r.scenarios))
	}
	r.scenarios[name] = nil // reserve the name while building
	r.mu.Unlock()

	sc, err := newScenario(name, mappingText, factsText, queriesText, exOpts...)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		delete(r.scenarios, name)
		return nil, err
	}
	r.scenarios[name] = sc
	return sc, nil
}

// Get returns the named scenario. A name reserved by an in-flight Load is
// not yet visible.
func (r *Registry) Get(name string) (*Scenario, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sc, ok := r.scenarios[name]
	if !ok || sc == nil {
		return nil, fmt.Errorf("%w: %q", ErrScenarioNotFound, name)
	}
	return sc, nil
}

// Acquire returns the named scenario holding a drain reference; the
// caller must invoke release when done with the scenario (typically via
// defer). The reference keeps a concurrent Remove from reporting the
// tenant drained while this request still runs against its exchange.
func (r *Registry) Acquire(name string) (sc *Scenario, release func(), err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sc, ok := r.scenarios[name]
	if !ok || sc == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrScenarioNotFound, name)
	}
	// Acquired under the registry lock: Remove deletes the map entry
	// under the write lock before deciding drain, so this reference is
	// always visible to markRemoved.
	sc.acquire()
	return sc, sc.release, nil
}

// Remove unloads the named scenario and returns it: new lookups 404
// immediately, while in-flight requests holding a drain reference finish
// normally against the old exchange. The caller wires drain completion
// with markRemoved on the returned scenario.
func (r *Registry) Remove(name string) (*Scenario, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sc, ok := r.scenarios[name]
	if !ok || sc == nil {
		return nil, fmt.Errorf("%w: %q", ErrScenarioNotFound, name)
	}
	delete(r.scenarios, name)
	return sc, nil
}

// List returns the loaded scenarios sorted by name (deterministic wire
// listings).
func (r *Registry) List() []*Scenario {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Scenario, 0, len(r.scenarios))
	for _, sc := range r.scenarios {
		if sc != nil {
			out = append(out, sc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of fully loaded scenarios.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, sc := range r.scenarios {
		if sc != nil {
			n++
		}
	}
	return n
}
