package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/xr"
)

// Config tunes one Server. The zero value is usable: every field has a
// production-safe default applied by New.
type Config struct {
	// MaxConcurrentQueries is the admission semaphore: requests beyond it
	// receive 429 with Retry-After instead of queueing unboundedly.
	// Default 2×GOMAXPROCS.
	MaxConcurrentQueries int
	// TotalLanes is the process-wide solver-lane pool shared by all
	// tenants (see lanePool). Default GOMAXPROCS.
	TotalLanes int
	// PerQueryLanes caps the lanes a single query may lease.
	// Default TotalLanes.
	PerQueryLanes int

	// DefaultTimeout bounds each query unless the request asks for less;
	// requests can never exceed MaxTimeout. Defaults 30s / 5m. These are
	// the server-side budgets that keep a hostile query from wedging a
	// tenant: combined with Partial-by-default, an expensive query
	// degrades to a sound lower bound instead of holding a lane forever.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultSignatureTimeout, DefaultMaxDecisions, and DefaultMaxConflicts
	// are per-signature budgets applied when the request does not set its
	// own (zero leaves the dimension unlimited by default).
	DefaultSignatureTimeout time.Duration
	DefaultMaxDecisions     int64
	DefaultMaxConflicts     int64

	// MaxScenarios caps the tenant registry (default 64).
	MaxScenarios int
	// MaxBodyBytes caps request bodies (default 16 MiB — fact files are
	// the large case).
	MaxBodyBytes int64

	// Metrics receives engine counters and the per-tenant server series
	// (xr_server_queries_total{scenario="..."} etc.), and is exposed at
	// /metrics on the same mux. Defaults to a fresh registry.
	Metrics *repro.Metrics

	// Store, when non-nil, persists scenarios across restarts (xrserved
	// -data-dir): loads write behind to it, unloads delete from it, and
	// RecoverFromStore rebuilds the registry from it at boot. Nil runs
	// the daemon purely in-memory, exactly as before.
	Store *store.Store

	// Logger receives structured lifecycle and access-log records.
	// Defaults to a discard logger: the library stays silent unless the
	// embedding process (cmd/xrserved) opts in.
	Logger *slog.Logger
	// SlowQuery is the slow-request threshold: a request whose wall time
	// meets it is logged at WARN and captured (access record + span tree)
	// in the slowlog ring. Zero disables capture.
	SlowQuery time.Duration
	// SlowLogSize bounds the slowlog ring (default 64 entries).
	SlowLogSize int
	// TraceRingSize bounds the completed-request trace ring backing
	// GET /v1/requests/{id}/trace (default 128 entries).
	TraceRingSize int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	procs := runtime.GOMAXPROCS(0)
	if c.MaxConcurrentQueries <= 0 {
		c.MaxConcurrentQueries = 2 * procs
	}
	if c.TotalLanes <= 0 {
		c.TotalLanes = procs
	}
	if c.PerQueryLanes <= 0 {
		c.PerQueryLanes = c.TotalLanes
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxScenarios <= 0 {
		c.MaxScenarios = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Metrics == nil {
		c.Metrics = repro.NewMetrics()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 64
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 128
	}
	return c
}

// Server is the multi-tenant query daemon: a scenario registry, the
// process-wide admission controls, and the HTTP API. Create with New,
// mount Handler, stop with Drain.
type Server struct {
	cfg      Config
	log      *slog.Logger
	reg      *Registry
	admit    chan struct{}
	lanes    *lanePool
	group    *drainGroup
	mux      *http.ServeMux
	root     http.Handler
	inflight *inflightTable
	slow     *slowRing
	traces   *traceRing
	start    time.Time
	version  string
}

// New builds a Server from cfg (zero-value fields get defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		reg:      NewRegistry(cfg.MaxScenarios),
		admit:    make(chan struct{}, cfg.MaxConcurrentQueries),
		lanes:    newLanePool(cfg.TotalLanes),
		group:    newDrainGroup(),
		inflight: newInflightTable(),
		slow:     newSlowRing(cfg.SlowLogSize),
		traces:   newTraceRing(cfg.TraceRingSize),
		start:    time.Now(),
		version:  buildVersion(),
	}
	mux := http.NewServeMux()
	// Routes register through s.route so logs and metrics carry the route
	// template instead of raw (tenant-bearing) paths.
	mux.Handle("POST /v1/scenarios", s.route("/v1/scenarios", s.handleLoad))
	mux.Handle("GET /v1/scenarios", s.route("/v1/scenarios", s.handleList))
	mux.Handle("GET /v1/scenarios/{name}", s.route("/v1/scenarios/{name}", s.handleInfo))
	mux.Handle("DELETE /v1/scenarios/{name}", s.route("/v1/scenarios/{name}", s.handleUnload))
	mux.Handle("POST /v1/scenarios/{name}/query", s.route("/v1/scenarios/{name}/query", s.handleQuery))
	mux.Handle("GET /v1/scenarios/{name}/explain", s.route("/v1/scenarios/{name}/explain", s.handleExplain))
	mux.Handle("GET /v1/scenarios/{name}/profile", s.route("/v1/scenarios/{name}/profile", s.handleProfile))
	mux.Handle("GET /v1/store", s.route("/v1/store", s.handleStore))
	mux.Handle("GET /v1/inflight", s.route("/v1/inflight", s.handleInflight))
	mux.Handle("GET /v1/slowlog", s.route("/v1/slowlog", s.handleSlowlog))
	mux.Handle("GET /v1/requests/{id}/trace", s.route("/v1/requests/{id}/trace", s.handleRequestTrace))
	mux.Handle("GET /healthz", s.route("/healthz", s.handleHealthz))
	// Metrics/pprof exposition shares the mux: the daemon is its own
	// observability endpoint (/metrics, /metrics.json, /debug/vars,
	// /debug/pprof/).
	obs := telemetry.Handler(s.cfg.Metrics)
	mux.Handle("/metrics", s.route("/metrics", obs.ServeHTTP))
	mux.Handle("/metrics.json", s.route("/metrics.json", obs.ServeHTTP))
	mux.Handle("/debug/", s.route("/debug/", obs.ServeHTTP))
	s.mux = mux
	s.root = s.observe(mux)
	return s
}

// buildVersion reports the main module version from the embedded build
// info ("devel" for an un-stamped build).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// Handler returns the daemon's HTTP handler (the mux wrapped in the
// observability middleware stack; see middleware.go).
func (s *Server) Handler() http.Handler { return s.root }

// Registry exposes the tenant table (used by cmd/xrserved for preloading).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the server's registry.
func (s *Server) Metrics() *repro.Metrics { return s.cfg.Metrics }

// Drain gracefully stops the daemon: new requests are refused with 503,
// in-flight requests (queries and loads) run to completion, and Drain
// returns once the server is quiescent or ctx expires. Call before
// closing the listener so clients see clean completions, not resets.
// Once quiescent, every tenant's cumulative workload profile is persisted
// (when a store is configured) so a restart resumes the hardness history.
func (s *Server) Drain(ctx context.Context) error {
	err := s.group.Drain(ctx)
	s.persistProfiles()
	return err
}

// ---------------------------------------------------------------------------
// Wire types (request/response bodies). Field names are the compatibility
// contract; see DESIGN.md §14.

// LoadRequest is the body of POST /v1/scenarios.
type LoadRequest struct {
	Name    string `json:"name"`
	Mapping string `json:"mapping"`
	Facts   string `json:"facts"`
	// Queries optionally preloads named queries, addressable by name in
	// query and explain requests (and parsed once, at load time).
	Queries string `json:"queries,omitempty"`
}

// ScenarioInfo describes one loaded tenant.
type ScenarioInfo struct {
	Name         string           `json:"name"`
	SourceFacts  int              `json:"source_facts"`
	Consistent   bool             `json:"consistent"`
	Violations   int              `json:"violations"`
	Clusters     int              `json:"clusters"`
	SuspectFacts int              `json:"suspect_facts"`
	Queries      []string         `json:"queries"`
	Stats        xr.ExchangeStats `json:"stats"`
}

// ListResponse is the body of GET /v1/scenarios.
type ListResponse struct {
	Scenarios []ScenarioInfo `json:"scenarios"`
}

// QueryRequest is the body of POST /v1/scenarios/{name}/query. Exactly one
// of Name (a preloaded query) or Query (inline text defining one query)
// must be set. Budgets left zero inherit the server defaults; the request
// timeout is additionally capped at the server maximum.
type QueryRequest struct {
	Name  string `json:"name,omitempty"`
	Query string `json:"query,omitempty"`
	// Mode is "certain" (default) or "possible".
	Mode               string `json:"mode,omitempty"`
	TimeoutMS          int64  `json:"timeout_ms,omitempty"`
	SignatureTimeoutMS int64  `json:"signature_timeout_ms,omitempty"`
	MaxDecisions       int64  `json:"max_decisions,omitempty"`
	MaxConflicts       int64  `json:"max_conflicts,omitempty"`
	// Partial selects sound partial answers on budget exhaustion. It
	// defaults to true: a hostile or overweight query degrades (HTTP 200,
	// degraded signatures reported, unknowns ?-marked) rather than
	// erroring. Set explicitly to false for exact-or-error semantics.
	Partial *bool `json:"partial,omitempty"`
	Explain bool  `json:"explain,omitempty"`
	// Stream selects NDJSON framing (also selectable with
	// Accept: application/x-ndjson).
	Stream bool `json:"stream,omitempty"`
}

// QueryResponse is the buffered-JSON body of a query call.
type QueryResponse struct {
	Scenario string `json:"scenario"`
	Query    string `json:"query"`
	Mode     string `json:"mode"`
	Partial  bool   `json:"partial"`
	// RequestID echoes the X-Request-Id header in the body, so a stored
	// response stays correlatable with logs, slowlog, and trace fetches.
	RequestID string         `json:"request_id,omitempty"`
	Answers   *repro.Answers `json:"answers"`
	// Trace is the request's span tree, included when the request asked
	// for it with ?trace=1 (also fetchable later at
	// GET /v1/requests/{id}/trace while the trace ring retains it).
	Trace []telemetry.SpanNode `json:"trace,omitempty"`
}

// ExplainResponse is the body of GET /v1/scenarios/{name}/explain.
type ExplainResponse struct {
	Scenario    string             `json:"scenario"`
	Explanation *repro.Explanation `json:"explanation"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status        string  `json:"status"` // "ok" or "draining"
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Scenarios     int     `json:"scenarios"`
	Inflight      int     `json:"inflight"`
	LanesBusy     int     `json:"lanes_busy"`
	LanesMax      int     `json:"lanes_max"`
	// Store summarizes the persistence layer; absent when the daemon runs
	// without -data-dir.
	Store *StoreHealth `json:"store,omitempty"`
	// Profile aggregates the per-tenant workload profilers; absent when no
	// loaded scenario records one.
	Profile *ProfileHealth `json:"profile,omitempty"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------------
// Handlers.

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := HealthResponse{
		Status:        "ok",
		Version:       s.version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Scenarios:     s.reg.Len(),
		Inflight:      s.group.Inflight(),
		LanesBusy:     s.lanes.inUse(),
		LanesMax:      s.lanes.capacity(),
		Store:         s.storeHealth(),
		Profile:       s.profileHealth(),
	}
	code := http.StatusOK
	if s.group.Draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !s.group.Enter() {
		s.writeError(w, http.StatusServiceUnavailable, "", errors.New("server draining"))
		return
	}
	defer s.group.Leave()
	var req LoadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if st := stateFrom(r.Context()); st != nil {
		st.setTenant(req.Name)
	}
	sc, err := s.reg.Load(req.Name, req.Mapping, req.Facts, req.Queries,
		repro.WithMetrics(s.cfg.Metrics), repro.WithProfiling(true))
	if err != nil {
		switch {
		case errors.Is(err, ErrScenarioExists):
			s.writeError(w, http.StatusConflict, req.Name, err)
		case errors.Is(err, ErrRegistryFull):
			s.writeError(w, http.StatusInsufficientStorage, req.Name, err)
		default:
			s.writeError(w, http.StatusBadRequest, req.Name, err)
		}
		return
	}
	s.cfg.Metrics.Gauge("xr_server_scenarios").Set(int64(s.reg.Len()))
	s.cfg.Metrics.Counter("xr_server_loads_total").Inc()
	s.persistScenario(telemetry.RequestIDFromContext(r.Context()), &req)
	info := sc.Info()
	s.log.Info("scenario loaded",
		"request_id", telemetry.RequestIDFromContext(r.Context()),
		"scenario", info.Name,
		"source_facts", info.SourceFacts,
		"consistent", info.Consistent,
		"violations", info.Violations,
		"queries", len(info.Queries))
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	scs := s.reg.List()
	resp := ListResponse{Scenarios: make([]ScenarioInfo, 0, len(scs))}
	for _, sc := range scs {
		resp.Scenarios = append(resp.Scenarios, sc.Info())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if st := stateFrom(r.Context()); st != nil {
		st.setTenant(r.PathValue("name"))
	}
	sc, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, r.PathValue("name"), err)
		return
	}
	writeJSON(w, http.StatusOK, sc.Info())
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if st := stateFrom(r.Context()); st != nil {
		st.setTenant(name)
	}
	sc, err := s.reg.Remove(name)
	if err != nil {
		s.writeError(w, http.StatusNotFound, name, err)
		return
	}
	requestID := telemetry.RequestIDFromContext(r.Context())
	// New requests 404 from here on; in-flight ones drain against the old
	// exchange, and the drained callback fires when the last finishes.
	sc.markRemoved(s.scenarioDrained(requestID, name))
	s.forgetScenario(requestID, name)
	s.cfg.Metrics.Gauge("xr_server_scenarios").Set(int64(s.reg.Len()))
	s.cfg.Metrics.Counter("xr_server_unloads_total").Inc()
	s.log.Info("scenario unloaded", "request_id", requestID, "scenario", name)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	scenario := r.PathValue("name")
	st := stateFrom(r.Context())
	if st != nil {
		st.setTenant(scenario)
	}
	if !s.group.Enter() {
		s.writeError(w, http.StatusServiceUnavailable, scenario, errors.New("server draining"))
		return
	}
	defer s.group.Leave()

	// Admission: bounded concurrency across all tenants. Saturation is a
	// normal overload signal, not an error — 429 with Retry-After tells
	// well-behaved clients to back off.
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.cfg.Metrics.Counter("xr_server_rejected_total").Inc()
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, scenario, errors.New("query capacity saturated"))
		return
	}

	sc, releaseRef, err := s.reg.Acquire(scenario)
	if err != nil {
		s.writeError(w, http.StatusNotFound, scenario, err)
		return
	}
	defer releaseRef()
	var req QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "certain"
	}
	if mode != "certain" && mode != "possible" {
		s.writeError(w, http.StatusBadRequest, scenario, fmt.Errorf("unknown mode %q (want certain or possible)", req.Mode))
		return
	}

	var q *repro.Query
	switch {
	case req.Name != "" && req.Query != "":
		s.writeError(w, http.StatusBadRequest, scenario, errors.New("set either name or query, not both"))
		return
	case req.Name != "":
		var ok bool
		if q, ok = sc.Query(req.Name); !ok {
			s.writeError(w, http.StatusNotFound, scenario, fmt.Errorf("%w: no preloaded query %q", ErrBadQuery, req.Name))
			return
		}
	case req.Query != "":
		if q, err = sc.ParseQuery(req.Query); err != nil {
			s.writeError(w, http.StatusBadRequest, scenario, err)
			return
		}
	default:
		s.writeError(w, http.StatusBadRequest, scenario, errors.New("missing query: set name or query"))
		return
	}

	// Lease solver lanes from the process-wide pool; the request context
	// bounds the wait so an abandoned request never holds a slot.
	mt := s.cfg.Metrics
	lanesGauge := mt.Gauge("xr_lanes_in_use")
	defer func() { lanesGauge.Set(int64(s.lanes.inUse())) }() // runs after release
	lanes, release := s.lanes.lease(r.Context(), s.cfg.PerQueryLanes)
	if release == nil {
		s.writeError(w, http.StatusServiceUnavailable, scenario, errors.New("canceled while waiting for solver lanes"))
		return
	}
	defer release()
	lanesGauge.Set(int64(s.lanes.inUse()))

	// Per-request observability: a dedicated tracer (span tree harvested
	// into the trace ring / slowlog by the middleware) and the query hash
	// + lane count for /v1/inflight.
	tracer := telemetry.NewTracer()
	if st != nil {
		tracer.SetRequestID(st.id)
		st.setTracer(tracer)
		st.lanes.Store(int64(lanes))
		if req.Name != "" {
			st.setQueryHash(queryTextHash(req.Name))
		} else {
			st.setQueryHash(queryTextHash(req.Query))
		}
	}

	opts := s.queryOptions(r.Context(), &req, lanes, st, tracer)

	mt.Counter(telemetry.Labeled("xr_server_queries_total", "scenario", scenario, "mode", mode)).Inc()
	inflight := mt.Gauge(telemetry.Labeled("xr_server_inflight", "scenario", scenario))
	inflight.Add(1)
	defer inflight.Add(-1)
	span := telemetry.StartSpan(mt.Histogram(telemetry.Labeled("xr_server_query_seconds", "scenario", scenario)))
	defer span.End()

	var ans *repro.Answers
	if mode == "possible" {
		ans, err = sc.Possible(q, opts...)
	} else {
		ans, err = sc.Answer(q, opts...)
	}
	if err != nil {
		mt.Counter(telemetry.Labeled("xr_server_query_errors_total", "scenario", scenario)).Inc()
		switch {
		case errors.Is(err, repro.ErrTimeout):
			s.writeError(w, http.StatusGatewayTimeout, scenario, err)
		case errors.Is(err, repro.ErrCanceled):
			// The client went away; the status is best-effort.
			s.writeError(w, http.StatusServiceUnavailable, scenario, err)
		case errors.Is(err, repro.ErrBudget):
			// Only reachable with partial=false: the caller asked for
			// exact-or-error semantics and the budget lost.
			s.writeError(w, http.StatusUnprocessableEntity, scenario, err)
		default:
			s.writeError(w, http.StatusInternalServerError, scenario, err)
		}
		return
	}
	if ans.Partial() {
		mt.Counter(telemetry.Labeled("xr_server_degraded_total", "scenario", scenario)).Inc()
	}
	requestID := ""
	if st != nil {
		st.degraded.Store(int64(ans.DegradedSignatures))
		st.unknown.Store(int64(ans.UnknownTuples))
		requestID = st.id
	}

	if req.Stream || strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		streamAnswers(w, scenario, q.Name(), mode, q.Arity(), ans)
		return
	}
	resp := QueryResponse{
		Scenario:  scenario,
		Query:     q.Name(),
		Mode:      mode,
		Partial:   ans.Partial(),
		RequestID: requestID,
		Answers:   ans,
	}
	// ?trace=1 inlines the span tree; it is also retained in the trace
	// ring for GET /v1/requests/{id}/trace either way.
	if r.URL.Query().Get("trace") == "1" {
		resp.Trace = tracer.Spans()
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryOptions maps the wire request onto the options API, applying the
// server-side default budgets. The per-request tracer and the solver-trace
// hook attribute spans and solver work (decisions/conflicts, signature
// progress) to this request: the hook accumulates into the request state's
// atomics, so concurrent tenants never contaminate each other's deltas the
// way a shared-registry snapshot diff would.
func (s *Server) queryOptions(ctx context.Context, req *QueryRequest, lanes int, st *requestState, tracer *telemetry.Tracer) []repro.Option {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < s.cfg.MaxTimeout {
			timeout = d
		} else {
			timeout = s.cfg.MaxTimeout
		}
	}
	sigTimeout := s.cfg.DefaultSignatureTimeout
	if req.SignatureTimeoutMS > 0 {
		sigTimeout = time.Duration(req.SignatureTimeoutMS) * time.Millisecond
	}
	maxDecisions := s.cfg.DefaultMaxDecisions
	if req.MaxDecisions > 0 {
		maxDecisions = req.MaxDecisions
	}
	maxConflicts := s.cfg.DefaultMaxConflicts
	if req.MaxConflicts > 0 {
		maxConflicts = req.MaxConflicts
	}
	partial := true
	if req.Partial != nil {
		partial = *req.Partial
	}
	opts := []repro.Option{
		repro.WithContext(ctx),
		repro.WithTimeout(timeout),
		repro.WithParallelism(lanes),
		repro.WithPartialResults(partial),
		repro.WithMetrics(s.cfg.Metrics),
	}
	if tracer != nil {
		opts = append(opts, repro.WithTracer(tracer))
	}
	if st != nil {
		opts = append(opts, repro.WithSolverTrace(func(ev repro.TraceEvent) {
			st.sigsDone.Add(1)
			st.decisions.Add(ev.Decisions)
			st.conflicts.Add(ev.Conflicts)
			st.noteSignature(ev.SignatureKey, ev.Duration)
		}))
	}
	if sigTimeout > 0 {
		opts = append(opts, repro.WithSignatureTimeout(sigTimeout))
	}
	if maxDecisions > 0 || maxConflicts > 0 {
		opts = append(opts, repro.WithSolveBudget(maxDecisions, maxConflicts))
	}
	if req.Explain {
		opts = append(opts, repro.WithExplanations(true))
	}
	return opts
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	scenario := r.PathValue("name")
	st := stateFrom(r.Context())
	if st != nil {
		st.setTenant(scenario)
	}
	if !s.group.Enter() {
		s.writeError(w, http.StatusServiceUnavailable, scenario, errors.New("server draining"))
		return
	}
	defer s.group.Leave()
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.cfg.Metrics.Counter("xr_server_rejected_total").Inc()
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, scenario, errors.New("query capacity saturated"))
		return
	}
	sc, releaseRef, err := s.reg.Acquire(scenario)
	if err != nil {
		s.writeError(w, http.StatusNotFound, scenario, err)
		return
	}
	defer releaseRef()
	qname := r.URL.Query().Get("query")
	if qname == "" {
		s.writeError(w, http.StatusBadRequest, scenario, errors.New("missing ?query= (a preloaded query name)"))
		return
	}
	q, ok := sc.Query(qname)
	if !ok {
		s.writeError(w, http.StatusNotFound, scenario, fmt.Errorf("%w: no preloaded query %q", ErrBadQuery, qname))
		return
	}
	var args []string
	if t := r.URL.Query().Get("tuple"); t != "" {
		args = strings.Split(t, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}
	lanesGauge := s.cfg.Metrics.Gauge("xr_lanes_in_use")
	defer func() { lanesGauge.Set(int64(s.lanes.inUse())) }() // runs after release
	lanes, release := s.lanes.lease(r.Context(), s.cfg.PerQueryLanes)
	if release == nil {
		s.writeError(w, http.StatusServiceUnavailable, scenario, errors.New("canceled while waiting for solver lanes"))
		return
	}
	defer release()
	lanesGauge.Set(int64(s.lanes.inUse()))
	tracer := telemetry.NewTracer()
	if st != nil {
		tracer.SetRequestID(st.id)
		st.setTracer(tracer)
		st.lanes.Store(int64(lanes))
		st.setQueryHash(queryTextHash(qname))
	}
	e, err := sc.Why(q, args,
		repro.WithContext(r.Context()),
		repro.WithTimeout(s.cfg.DefaultTimeout),
		repro.WithParallelism(lanes),
		repro.WithTracer(tracer),
		repro.WithMetrics(s.cfg.Metrics))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, repro.ErrTimeout) {
			code = http.StatusGatewayTimeout
		} else if strings.Contains(err.Error(), "arity") {
			code = http.StatusBadRequest
		}
		s.writeError(w, code, scenario, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Scenario: scenario, Explanation: e})
}

// ---------------------------------------------------------------------------
// Plumbing.

// decodeBody decodes a JSON body with the configured size cap; on failure
// it writes the error response and returns false.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, code, "", fmt.Errorf("decoding request body: %w", err))
		return false
	}
	// Reject trailing garbage so a concatenated double-body is an error,
	// not a silent half-read.
	if dec.More() {
		s.writeError(w, http.StatusBadRequest, "", errors.New("trailing data after JSON body"))
		return false
	}
	_, _ = io.Copy(io.Discard, body)
	return true
}

func (s *Server) writeError(w http.ResponseWriter, code int, scenario string, err error) {
	if scenario != "" {
		s.cfg.Metrics.Counter(telemetry.Labeled("xr_server_http_errors_total", "scenario", scenario)).Inc()
	} else {
		s.cfg.Metrics.Counter("xr_server_http_errors_total").Inc()
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
