package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/telemetry"
	"repro/internal/xr"
)

// Config tunes one Server. The zero value is usable: every field has a
// production-safe default applied by New.
type Config struct {
	// MaxConcurrentQueries is the admission semaphore: requests beyond it
	// receive 429 with Retry-After instead of queueing unboundedly.
	// Default 2×GOMAXPROCS.
	MaxConcurrentQueries int
	// TotalLanes is the process-wide solver-lane pool shared by all
	// tenants (see lanePool). Default GOMAXPROCS.
	TotalLanes int
	// PerQueryLanes caps the lanes a single query may lease.
	// Default TotalLanes.
	PerQueryLanes int

	// DefaultTimeout bounds each query unless the request asks for less;
	// requests can never exceed MaxTimeout. Defaults 30s / 5m. These are
	// the server-side budgets that keep a hostile query from wedging a
	// tenant: combined with Partial-by-default, an expensive query
	// degrades to a sound lower bound instead of holding a lane forever.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultSignatureTimeout, DefaultMaxDecisions, and DefaultMaxConflicts
	// are per-signature budgets applied when the request does not set its
	// own (zero leaves the dimension unlimited by default).
	DefaultSignatureTimeout time.Duration
	DefaultMaxDecisions     int64
	DefaultMaxConflicts     int64

	// MaxScenarios caps the tenant registry (default 64).
	MaxScenarios int
	// MaxBodyBytes caps request bodies (default 16 MiB — fact files are
	// the large case).
	MaxBodyBytes int64

	// Metrics receives engine counters and the per-tenant server series
	// (xr_server_queries_total{scenario="..."} etc.), and is exposed at
	// /metrics on the same mux. Defaults to a fresh registry.
	Metrics *repro.Metrics
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	procs := runtime.GOMAXPROCS(0)
	if c.MaxConcurrentQueries <= 0 {
		c.MaxConcurrentQueries = 2 * procs
	}
	if c.TotalLanes <= 0 {
		c.TotalLanes = procs
	}
	if c.PerQueryLanes <= 0 {
		c.PerQueryLanes = c.TotalLanes
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxScenarios <= 0 {
		c.MaxScenarios = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Metrics == nil {
		c.Metrics = repro.NewMetrics()
	}
	return c
}

// Server is the multi-tenant query daemon: a scenario registry, the
// process-wide admission controls, and the HTTP API. Create with New,
// mount Handler, stop with Drain.
type Server struct {
	cfg   Config
	reg   *Registry
	admit chan struct{}
	lanes *lanePool
	group *drainGroup
	mux   *http.ServeMux
}

// New builds a Server from cfg (zero-value fields get defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   NewRegistry(cfg.MaxScenarios),
		admit: make(chan struct{}, cfg.MaxConcurrentQueries),
		lanes: newLanePool(cfg.TotalLanes),
		group: newDrainGroup(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scenarios", s.handleLoad)
	mux.HandleFunc("GET /v1/scenarios", s.handleList)
	mux.HandleFunc("GET /v1/scenarios/{name}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/scenarios/{name}", s.handleUnload)
	mux.HandleFunc("POST /v1/scenarios/{name}/query", s.handleQuery)
	mux.HandleFunc("GET /v1/scenarios/{name}/explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Metrics/pprof exposition shares the mux: the daemon is its own
	// observability endpoint (/metrics, /metrics.json, /debug/vars,
	// /debug/pprof/).
	obs := telemetry.Handler(s.cfg.Metrics)
	mux.Handle("/metrics", obs)
	mux.Handle("/metrics.json", obs)
	mux.Handle("/debug/", obs)
	s.mux = mux
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the tenant table (used by cmd/xrserved for preloading).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the server's registry.
func (s *Server) Metrics() *repro.Metrics { return s.cfg.Metrics }

// Drain gracefully stops the daemon: new requests are refused with 503,
// in-flight requests (queries and loads) run to completion, and Drain
// returns once the server is quiescent or ctx expires. Call before
// closing the listener so clients see clean completions, not resets.
func (s *Server) Drain(ctx context.Context) error {
	return s.group.Drain(ctx)
}

// ---------------------------------------------------------------------------
// Wire types (request/response bodies). Field names are the compatibility
// contract; see DESIGN.md §14.

// LoadRequest is the body of POST /v1/scenarios.
type LoadRequest struct {
	Name    string `json:"name"`
	Mapping string `json:"mapping"`
	Facts   string `json:"facts"`
	// Queries optionally preloads named queries, addressable by name in
	// query and explain requests (and parsed once, at load time).
	Queries string `json:"queries,omitempty"`
}

// ScenarioInfo describes one loaded tenant.
type ScenarioInfo struct {
	Name         string           `json:"name"`
	SourceFacts  int              `json:"source_facts"`
	Consistent   bool             `json:"consistent"`
	Violations   int              `json:"violations"`
	Clusters     int              `json:"clusters"`
	SuspectFacts int              `json:"suspect_facts"`
	Queries      []string         `json:"queries"`
	Stats        xr.ExchangeStats `json:"stats"`
}

// ListResponse is the body of GET /v1/scenarios.
type ListResponse struct {
	Scenarios []ScenarioInfo `json:"scenarios"`
}

// QueryRequest is the body of POST /v1/scenarios/{name}/query. Exactly one
// of Name (a preloaded query) or Query (inline text defining one query)
// must be set. Budgets left zero inherit the server defaults; the request
// timeout is additionally capped at the server maximum.
type QueryRequest struct {
	Name  string `json:"name,omitempty"`
	Query string `json:"query,omitempty"`
	// Mode is "certain" (default) or "possible".
	Mode               string `json:"mode,omitempty"`
	TimeoutMS          int64  `json:"timeout_ms,omitempty"`
	SignatureTimeoutMS int64  `json:"signature_timeout_ms,omitempty"`
	MaxDecisions       int64  `json:"max_decisions,omitempty"`
	MaxConflicts       int64  `json:"max_conflicts,omitempty"`
	// Partial selects sound partial answers on budget exhaustion. It
	// defaults to true: a hostile or overweight query degrades (HTTP 200,
	// degraded signatures reported, unknowns ?-marked) rather than
	// erroring. Set explicitly to false for exact-or-error semantics.
	Partial *bool `json:"partial,omitempty"`
	Explain bool  `json:"explain,omitempty"`
	// Stream selects NDJSON framing (also selectable with
	// Accept: application/x-ndjson).
	Stream bool `json:"stream,omitempty"`
}

// QueryResponse is the buffered-JSON body of a query call.
type QueryResponse struct {
	Scenario string         `json:"scenario"`
	Query    string         `json:"query"`
	Mode     string         `json:"mode"`
	Partial  bool           `json:"partial"`
	Answers  *repro.Answers `json:"answers"`
}

// ExplainResponse is the body of GET /v1/scenarios/{name}/explain.
type ExplainResponse struct {
	Scenario    string             `json:"scenario"`
	Explanation *repro.Explanation `json:"explanation"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status    string `json:"status"` // "ok" or "draining"
	Scenarios int    `json:"scenarios"`
	Inflight  int    `json:"inflight"`
	LanesBusy int    `json:"lanes_busy"`
	LanesMax  int    `json:"lanes_max"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------------
// Handlers.

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := HealthResponse{
		Status:    "ok",
		Scenarios: s.reg.Len(),
		Inflight:  s.group.Inflight(),
		LanesBusy: s.lanes.inUse(),
		LanesMax:  s.lanes.capacity(),
	}
	code := http.StatusOK
	if s.group.Draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !s.group.Enter() {
		s.writeError(w, http.StatusServiceUnavailable, "", errors.New("server draining"))
		return
	}
	defer s.group.Leave()
	var req LoadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	sc, err := s.reg.Load(req.Name, req.Mapping, req.Facts, req.Queries, repro.WithMetrics(s.cfg.Metrics))
	if err != nil {
		switch {
		case errors.Is(err, ErrScenarioExists):
			s.writeError(w, http.StatusConflict, req.Name, err)
		case errors.Is(err, ErrRegistryFull):
			s.writeError(w, http.StatusInsufficientStorage, req.Name, err)
		default:
			s.writeError(w, http.StatusBadRequest, req.Name, err)
		}
		return
	}
	s.cfg.Metrics.Gauge("xr_server_scenarios").Set(int64(s.reg.Len()))
	s.cfg.Metrics.Counter("xr_server_loads_total").Inc()
	writeJSON(w, http.StatusCreated, sc.Info())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	scs := s.reg.List()
	resp := ListResponse{Scenarios: make([]ScenarioInfo, 0, len(scs))}
	for _, sc := range scs {
		resp.Scenarios = append(resp.Scenarios, sc.Info())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sc, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, r.PathValue("name"), err)
		return
	}
	writeJSON(w, http.StatusOK, sc.Info())
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Remove(name); err != nil {
		s.writeError(w, http.StatusNotFound, name, err)
		return
	}
	s.cfg.Metrics.Gauge("xr_server_scenarios").Set(int64(s.reg.Len()))
	s.cfg.Metrics.Counter("xr_server_unloads_total").Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	scenario := r.PathValue("name")
	if !s.group.Enter() {
		s.writeError(w, http.StatusServiceUnavailable, scenario, errors.New("server draining"))
		return
	}
	defer s.group.Leave()

	// Admission: bounded concurrency across all tenants. Saturation is a
	// normal overload signal, not an error — 429 with Retry-After tells
	// well-behaved clients to back off.
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.cfg.Metrics.Counter("xr_server_rejected_total").Inc()
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, scenario, errors.New("query capacity saturated"))
		return
	}

	sc, err := s.reg.Get(scenario)
	if err != nil {
		s.writeError(w, http.StatusNotFound, scenario, err)
		return
	}
	var req QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "certain"
	}
	if mode != "certain" && mode != "possible" {
		s.writeError(w, http.StatusBadRequest, scenario, fmt.Errorf("unknown mode %q (want certain or possible)", req.Mode))
		return
	}

	var q *repro.Query
	switch {
	case req.Name != "" && req.Query != "":
		s.writeError(w, http.StatusBadRequest, scenario, errors.New("set either name or query, not both"))
		return
	case req.Name != "":
		var ok bool
		if q, ok = sc.Query(req.Name); !ok {
			s.writeError(w, http.StatusNotFound, scenario, fmt.Errorf("%w: no preloaded query %q", ErrBadQuery, req.Name))
			return
		}
	case req.Query != "":
		if q, err = sc.ParseQuery(req.Query); err != nil {
			s.writeError(w, http.StatusBadRequest, scenario, err)
			return
		}
	default:
		s.writeError(w, http.StatusBadRequest, scenario, errors.New("missing query: set name or query"))
		return
	}

	// Lease solver lanes from the process-wide pool; the request context
	// bounds the wait so an abandoned request never holds a slot.
	lanes, release := s.lanes.lease(r.Context(), s.cfg.PerQueryLanes)
	if release == nil {
		s.writeError(w, http.StatusServiceUnavailable, scenario, errors.New("canceled while waiting for solver lanes"))
		return
	}
	defer release()

	opts := s.queryOptions(r.Context(), &req, lanes)

	mt := s.cfg.Metrics
	mt.Counter(telemetry.Labeled("xr_server_queries_total", "scenario", scenario, "mode", mode)).Inc()
	inflight := mt.Gauge(telemetry.Labeled("xr_server_inflight", "scenario", scenario))
	inflight.Add(1)
	defer inflight.Add(-1)
	span := telemetry.StartSpan(mt.Histogram(telemetry.Labeled("xr_server_query_seconds", "scenario", scenario)))
	defer span.End()

	var ans *repro.Answers
	if mode == "possible" {
		ans, err = sc.Possible(q, opts...)
	} else {
		ans, err = sc.Answer(q, opts...)
	}
	if err != nil {
		mt.Counter(telemetry.Labeled("xr_server_query_errors_total", "scenario", scenario)).Inc()
		switch {
		case errors.Is(err, repro.ErrTimeout):
			s.writeError(w, http.StatusGatewayTimeout, scenario, err)
		case errors.Is(err, repro.ErrCanceled):
			// The client went away; the status is best-effort.
			s.writeError(w, http.StatusServiceUnavailable, scenario, err)
		case errors.Is(err, repro.ErrBudget):
			// Only reachable with partial=false: the caller asked for
			// exact-or-error semantics and the budget lost.
			s.writeError(w, http.StatusUnprocessableEntity, scenario, err)
		default:
			s.writeError(w, http.StatusInternalServerError, scenario, err)
		}
		return
	}
	if ans.Partial() {
		mt.Counter(telemetry.Labeled("xr_server_degraded_total", "scenario", scenario)).Inc()
	}

	if req.Stream || strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		streamAnswers(w, scenario, q.Name(), mode, q.Arity(), ans)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Scenario: scenario,
		Query:    q.Name(),
		Mode:     mode,
		Partial:  ans.Partial(),
		Answers:  ans,
	})
}

// queryOptions maps the wire request onto the options API, applying the
// server-side default budgets.
func (s *Server) queryOptions(ctx context.Context, req *QueryRequest, lanes int) []repro.Option {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < s.cfg.MaxTimeout {
			timeout = d
		} else {
			timeout = s.cfg.MaxTimeout
		}
	}
	sigTimeout := s.cfg.DefaultSignatureTimeout
	if req.SignatureTimeoutMS > 0 {
		sigTimeout = time.Duration(req.SignatureTimeoutMS) * time.Millisecond
	}
	maxDecisions := s.cfg.DefaultMaxDecisions
	if req.MaxDecisions > 0 {
		maxDecisions = req.MaxDecisions
	}
	maxConflicts := s.cfg.DefaultMaxConflicts
	if req.MaxConflicts > 0 {
		maxConflicts = req.MaxConflicts
	}
	partial := true
	if req.Partial != nil {
		partial = *req.Partial
	}
	opts := []repro.Option{
		repro.WithContext(ctx),
		repro.WithTimeout(timeout),
		repro.WithParallelism(lanes),
		repro.WithPartialResults(partial),
		repro.WithMetrics(s.cfg.Metrics),
	}
	if sigTimeout > 0 {
		opts = append(opts, repro.WithSignatureTimeout(sigTimeout))
	}
	if maxDecisions > 0 || maxConflicts > 0 {
		opts = append(opts, repro.WithSolveBudget(maxDecisions, maxConflicts))
	}
	if req.Explain {
		opts = append(opts, repro.WithExplanations(true))
	}
	return opts
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	scenario := r.PathValue("name")
	if !s.group.Enter() {
		s.writeError(w, http.StatusServiceUnavailable, scenario, errors.New("server draining"))
		return
	}
	defer s.group.Leave()
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.cfg.Metrics.Counter("xr_server_rejected_total").Inc()
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, scenario, errors.New("query capacity saturated"))
		return
	}
	sc, err := s.reg.Get(scenario)
	if err != nil {
		s.writeError(w, http.StatusNotFound, scenario, err)
		return
	}
	qname := r.URL.Query().Get("query")
	if qname == "" {
		s.writeError(w, http.StatusBadRequest, scenario, errors.New("missing ?query= (a preloaded query name)"))
		return
	}
	q, ok := sc.Query(qname)
	if !ok {
		s.writeError(w, http.StatusNotFound, scenario, fmt.Errorf("%w: no preloaded query %q", ErrBadQuery, qname))
		return
	}
	var args []string
	if t := r.URL.Query().Get("tuple"); t != "" {
		args = strings.Split(t, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}
	lanes, release := s.lanes.lease(r.Context(), s.cfg.PerQueryLanes)
	if release == nil {
		s.writeError(w, http.StatusServiceUnavailable, scenario, errors.New("canceled while waiting for solver lanes"))
		return
	}
	defer release()
	e, err := sc.Why(q, args,
		repro.WithContext(r.Context()),
		repro.WithTimeout(s.cfg.DefaultTimeout),
		repro.WithParallelism(lanes),
		repro.WithMetrics(s.cfg.Metrics))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, repro.ErrTimeout) {
			code = http.StatusGatewayTimeout
		} else if strings.Contains(err.Error(), "arity") {
			code = http.StatusBadRequest
		}
		s.writeError(w, code, scenario, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Scenario: scenario, Explanation: e})
}

// ---------------------------------------------------------------------------
// Plumbing.

// decodeBody decodes a JSON body with the configured size cap; on failure
// it writes the error response and returns false.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, code, "", fmt.Errorf("decoding request body: %w", err))
		return false
	}
	// Reject trailing garbage so a concatenated double-body is an error,
	// not a silent half-read.
	if dec.More() {
		s.writeError(w, http.StatusBadRequest, "", errors.New("trailing data after JSON body"))
		return false
	}
	_, _ = io.Copy(io.Discard, body)
	return true
}

func (s *Server) writeError(w http.ResponseWriter, code int, scenario string, err error) {
	if scenario != "" {
		s.cfg.Metrics.Counter(telemetry.Labeled("xr_server_http_errors_total", "scenario", scenario)).Inc()
	} else {
		s.cfg.Metrics.Counter("xr_server_http_errors_total").Inc()
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
