package server

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// Live request introspection: every request in the middleware stack
// registers its requestState here for its lifetime, and GET /v1/inflight
// renders the table. The table holds *requestState pointers keyed by
// identity (not request ID — a client may reuse an X-Request-Id across
// concurrent requests), so add/remove are O(1) and the snapshot reads the
// live atomics without blocking the handlers.

type inflightTable struct {
	mu sync.Mutex
	m  map[*requestState]struct{}
}

func newInflightTable() *inflightTable {
	return &inflightTable{m: make(map[*requestState]struct{})}
}

func (t *inflightTable) add(st *requestState) {
	t.mu.Lock()
	t.m[st] = struct{}{}
	t.mu.Unlock()
}

func (t *inflightTable) remove(st *requestState) {
	t.mu.Lock()
	delete(t.m, st)
	t.mu.Unlock()
}

func (t *inflightTable) snapshot() []*requestState {
	t.mu.Lock()
	out := make([]*requestState, 0, len(t.m))
	for st := range t.m {
		out = append(out, st)
	}
	t.mu.Unlock()
	return out
}

// InflightEntry is one live request in GET /v1/inflight.
type InflightEntry struct {
	RequestID string `json:"request_id"`
	Method    string `json:"method"`
	// Route is the matched route template ("" while still in routing).
	Route     string  `json:"route,omitempty"`
	Tenant    string  `json:"tenant,omitempty"`
	StartTime string  `json:"start_time"` // RFC3339Nano
	ElapsedMS float64 `json:"elapsed_ms"`
	// QueryHash is the FNV-64a hash of the query text (query routes only).
	QueryHash string `json:"query_hash,omitempty"`
	// Lanes is the solver-lane count leased by the request (0 before the
	// lease and on non-query routes).
	Lanes int `json:"lanes,omitempty"`
	// SignaturesDone counts signature programs solved so far; the total is
	// unknown until the candidate partition completes, so only progress is
	// reported.
	SignaturesDone int64 `json:"signatures_done,omitempty"`
	Decisions      int64 `json:"decisions,omitempty"`
	Conflicts      int64 `json:"conflicts,omitempty"`
}

// InflightResponse is the body of GET /v1/inflight.
type InflightResponse struct {
	Requests []InflightEntry `json:"requests"`
}

func (s *Server) handleInflight(w http.ResponseWriter, _ *http.Request) {
	states := s.inflight.snapshot()
	now := time.Now()
	resp := InflightResponse{Requests: make([]InflightEntry, 0, len(states))}
	for _, st := range states {
		route, tenant, queryHash, _ := st.labels()
		resp.Requests = append(resp.Requests, InflightEntry{
			RequestID:      st.id,
			Method:         st.method,
			Route:          route,
			Tenant:         tenant,
			StartTime:      st.start.UTC().Format(time.RFC3339Nano),
			ElapsedMS:      float64(now.Sub(st.start).Nanoseconds()) / 1e6,
			QueryHash:      queryHash,
			Lanes:          int(st.lanes.Load()),
			SignaturesDone: st.sigsDone.Load(),
			Decisions:      st.decisions.Load(),
			Conflicts:      st.conflicts.Load(),
		})
	}
	// Oldest first: the request most likely to be stuck leads the list.
	sort.Slice(resp.Requests, func(i, j int) bool {
		if resp.Requests[i].StartTime != resp.Requests[j].StartTime {
			return resp.Requests[i].StartTime < resp.Requests[j].StartTime
		}
		return resp.Requests[i].RequestID < resp.Requests[j].RequestID
	})
	writeJSON(w, http.StatusOK, resp)
}
