package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// getProfile fetches a tenant's workload profile with the given raw query
// string ("" = defaults) and decodes the response.
func getProfile(t *testing.T, base, scenario, query string) (int, ProfileResponse, []byte) {
	t.Helper()
	url := base + "/v1/scenarios/" + scenario + "/profile"
	if query != "" {
		url += "?" + query
	}
	code, body, _ := doJSON(t, http.MethodGet, url, nil)
	var resp ProfileResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("decoding profile response: %v", err)
		}
	}
	return code, resp, body
}

// TestProfileEndpoint pins the introspection surface on a tenant with real
// solver work (the K4 tricolor gadget): the profile carries signature
// records with nonzero solves and conflicts, ?top= truncates, bad
// parameters 400, unknown tenants 404, and /healthz aggregates the block.
func TestProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "k4", tricolorMapping, k4Facts, k4Query)

	// Before any query: profiling is on but nothing is recorded.
	code, resp, _ := getProfile(t, ts.URL, "k4", "")
	if code != http.StatusOK {
		t.Fatalf("profile before queries: %d", code)
	}
	if resp.Profile == nil || resp.Profile.Solves != 0 {
		t.Fatalf("fresh tenant profile not empty: %+v", resp.Profile)
	}

	queryAnswers(t, ts.URL, "k4", "inAllRepairs")

	code, resp, body := getProfile(t, ts.URL, "k4", "")
	if code != http.StatusOK {
		t.Fatalf("profile: %d %s", code, body)
	}
	if resp.Scenario != "k4" || resp.Sort != "wall" {
		t.Fatalf("response header fields: %+v", resp)
	}
	snap := resp.Profile
	if snap == nil || snap.Solves == 0 || len(snap.Signatures) == 0 {
		t.Fatalf("no solves profiled after a solver query: %s", body)
	}
	var conflicts int64
	for _, sp := range snap.Signatures {
		conflicts += sp.Conflicts
		if sp.Key == "" || len(sp.ClusterIDs) == 0 {
			t.Fatalf("signature record missing key/clusters: %+v", sp)
		}
	}
	if conflicts == 0 {
		t.Fatalf("K4 solved without a single recorded conflict: %s", body)
	}
	if len(snap.Clusters) == 0 {
		t.Fatalf("profile carries no cluster table: %s", body)
	}

	// ?top truncates, ?sort selects the order.
	code, resp, _ = getProfile(t, ts.URL, "k4", "top=1&sort=conflicts")
	if code != http.StatusOK || resp.Top != 1 || resp.Sort != "conflicts" {
		t.Fatalf("top=1&sort=conflicts: %d %+v", code, resp)
	}
	if len(resp.Profile.Signatures) != 1 {
		t.Fatalf("top=1 returned %d signatures", len(resp.Profile.Signatures))
	}

	// Parameter validation and unknown tenants.
	if code, _, body := getProfile(t, ts.URL, "k4", "sort=bogus"); code != http.StatusBadRequest {
		t.Fatalf("sort=bogus: %d %s", code, body)
	}
	if code, _, body := getProfile(t, ts.URL, "k4", "top=-1"); code != http.StatusBadRequest {
		t.Fatalf("top=-1: %d %s", code, body)
	}
	if code, _, body := getProfile(t, ts.URL, "k4", "top=x"); code != http.StatusBadRequest {
		t.Fatalf("top=x: %d %s", code, body)
	}
	if code, _, body := getProfile(t, ts.URL, "nosuch", ""); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d %s", code, body)
	}

	// /healthz aggregates the live profiler state.
	var h HealthResponse
	_, hb, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if err := json.Unmarshal(hb, &h); err != nil {
		t.Fatal(err)
	}
	if h.Profile == nil || h.Profile.Scenarios != 1 || h.Profile.Solves != snap.Solves {
		t.Fatalf("/healthz profile block: %+v (want solves=%d)", h.Profile, snap.Solves)
	}
}

// TestProfileConcurrentMultiTenant hammers two tenants with queries while
// readers pull their profiles and /healthz concurrently (run under -race
// by make check): every read sees a consistent snapshot, never a torn one.
func TestProfileConcurrentMultiTenant(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentQueries: 32})
	loadScenario(t, ts.URL, "k4", tricolorMapping, k4Facts, k4Query)
	loadScenario(t, ts.URL, "k3", tricolorMapping, k3Facts, k3Query)

	const rounds = 6
	var wg sync.WaitGroup
	for _, tenant := range []string{"k4", "k3"} {
		wg.Add(2)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				queryAnswers(t, ts.URL, name, "inAllRepairs")
			}
		}(tenant)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				code, resp, body := getProfile(t, ts.URL, name, "")
				if code != http.StatusOK {
					t.Errorf("profile %s: %d %s", name, code, body)
					return
				}
				for _, sp := range resp.Profile.Signatures {
					if sp.Solves < 0 || sp.CacheHits > sp.Solves {
						t.Errorf("torn record on %s: %+v", name, sp)
						return
					}
				}
				doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
			}
		}(tenant)
	}
	wg.Wait()

	for _, tenant := range []string{"k4", "k3"} {
		if code, resp, body := getProfile(t, ts.URL, tenant, ""); code != http.StatusOK || resp.Profile.Solves == 0 {
			t.Fatalf("final profile %s: %d %s", tenant, code, body)
		}
	}
	var h HealthResponse
	_, hb, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if err := json.Unmarshal(hb, &h); err != nil {
		t.Fatal(err)
	}
	if h.Profile == nil || h.Profile.Scenarios != 2 {
		t.Fatalf("/healthz profile block after load: %+v", h.Profile)
	}
}

// TestSlowlogHotSignatures pins the satellite surface: a slow request's
// record names the hardest signature keys it touched, capped at three,
// hardest first.
func TestSlowlogHotSignatures(t *testing.T) {
	_, ts := newTestServer(t, Config{SlowQuery: time.Nanosecond})
	loadScenario(t, ts.URL, "k4", tricolorMapping, k4Facts, k4Query)
	queryAnswers(t, ts.URL, "k4", "inAllRepairs")

	code, body, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/slowlog", nil)
	if code != http.StatusOK {
		t.Fatalf("slowlog: %d", code)
	}
	var sl SlowlogResponse
	if err := json.Unmarshal(body, &sl); err != nil {
		t.Fatal(err)
	}
	var queryEntry *SlowEntry
	for i := range sl.Entries {
		if sl.Entries[i].Route == "/v1/scenarios/{name}/query" {
			queryEntry = &sl.Entries[i]
			break
		}
	}
	if queryEntry == nil {
		t.Fatalf("no query entry in slowlog: %s", body)
	}
	if len(queryEntry.HotSignatures) == 0 || len(queryEntry.HotSignatures) > hotSignatureCap {
		t.Fatalf("hot signatures = %v, want 1..%d entries", queryEntry.HotSignatures, hotSignatureCap)
	}
	for _, key := range queryEntry.HotSignatures {
		if key == "" {
			t.Fatalf("empty hot signature key: %v", queryEntry.HotSignatures)
		}
	}

	// The non-query entries (load) carry no hot signatures.
	for _, e := range sl.Entries {
		if e.Route == "/v1/scenarios" && len(e.HotSignatures) != 0 {
			t.Fatalf("load request carries hot signatures: %+v", e)
		}
	}
}

// TestDrainPersistsProfileRecoverRestores is the cumulative-profile
// restart story: drain persists every tenant's profile beside its
// snapshot, and a reboot over the same data dir serves the pre-restart
// cumulative profile byte-identically.
func TestDrainPersistsProfileRecoverRestores(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	loadScenario(t, ts1.URL, "k4", tricolorMapping, k4Facts, k4Query)
	for i := 0; i < 2; i++ { // two passes: warm-pass cache hits land in the profile
		queryAnswers(t, ts1.URL, "k4", "inAllRepairs")
	}
	code, _, want := getProfile(t, ts1.URL, "k4", "")
	if code != http.StatusOK {
		t.Fatalf("pre-drain profile: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	sum, err := s2.RecoverFromStore()
	if err != nil {
		t.Fatalf("RecoverFromStore: %v", err)
	}
	if sum.Loaded != 1 {
		t.Fatalf("recovery summary: %+v", sum)
	}
	code, _, got := getProfile(t, ts2.URL, "k4", "")
	if code != http.StatusOK {
		t.Fatalf("post-recovery profile: %d", code)
	}
	if string(got) != string(want) {
		t.Fatalf("profile differs across restart:\n got %s\nwant %s", got, want)
	}
}

// TestDrainWithoutStoreSkipsProfilePersistence: draining a storeless
// server is a no-op for profiles and never errors.
func TestDrainWithoutStoreSkipsProfilePersistence(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	loadScenario(t, ts.URL, "k4", tricolorMapping, k4Facts, k4Query)
	queryAnswers(t, ts.URL, "k4", "inAllRepairs")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain without store: %v", err)
	}
}

// TestRecoverSurvivesDamagedProfile: a corrupt persisted profile is
// advisory — the tenant recovers with a fresh profiler, is never
// quarantined, and still answers.
func TestRecoverSurvivesDamagedProfile(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	loadScenario(t, ts1.URL, "k4", tricolorMapping, k4Facts, k4Query)
	want := queryAnswers(t, ts1.URL, "k4", "inAllRepairs")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Damage the persisted profile (valid envelope, garbage payload) via
	// the store API the daemon itself uses. Recover first: SaveProfile
	// only writes for tracked scenarios.
	seed := openTestStore(t, dir)
	if _, err := seed.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := seed.SaveProfile("k4", []byte("{not json")); err != nil {
		t.Fatalf("corrupting profile: %v", err)
	}
	seed.Close()

	s2, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	sum, err := s2.RecoverFromStore()
	if err != nil {
		t.Fatalf("boot must survive a damaged profile: %v", err)
	}
	if sum.Loaded != 1 || sum.Quarantined != 0 {
		t.Fatalf("recovery summary: %+v", sum)
	}
	code, resp, _ := getProfile(t, ts2.URL, "k4", "")
	if code != http.StatusOK || resp.Profile.Solves != 0 {
		t.Fatalf("tenant must start with a fresh profiler: %d %+v", code, resp.Profile)
	}
	if got := queryAnswers(t, ts2.URL, "k4", "inAllRepairs"); got != want {
		t.Fatalf("answers differ after damaged-profile recovery:\n got %s\nwant %s", got, want)
	}
}
