package server

import (
	"fmt"
	"net/http"
	"sync"

	"repro/internal/telemetry"
)

// errNoTrace reports an unknown (or already evicted) request ID.
func errNoTrace(id string) error {
	return fmt.Errorf("no trace for request %q (unknown id, traced before the ring's horizon, or a route that does not trace)", id)
}

// Slow-query capture and the completed-request trace ring. Both are
// bounded in-memory rings: old entries are evicted in FIFO order, so the
// memory ceiling is cap × (record + span tree) regardless of traffic.
// Persisting slow queries beyond process lifetime is an operator concern
// (scrape /v1/slowlog); the ring is the always-on flight recorder.

// SlowEntry is one slow request: the full access record plus the span
// tree captured by the per-request tracer.
type SlowEntry struct {
	AccessRecord
	Trace []telemetry.SpanNode `json:"trace,omitempty"`
}

// SlowlogResponse is the body of GET /v1/slowlog.
type SlowlogResponse struct {
	// Threshold is the active -slow-query threshold in milliseconds
	// (0 = capture disabled).
	ThresholdMS float64     `json:"threshold_ms"`
	Entries     []SlowEntry `json:"entries"`
}

type slowRing struct {
	mu      sync.Mutex
	cap     int
	entries []SlowEntry // oldest first
}

func newSlowRing(capacity int) *slowRing {
	return &slowRing{cap: capacity}
}

func (r *slowRing) add(e SlowEntry) {
	r.mu.Lock()
	r.entries = append(r.entries, e)
	if len(r.entries) > r.cap {
		// Shift rather than reslice so evicted entries are released.
		copy(r.entries, r.entries[len(r.entries)-r.cap:])
		r.entries = r.entries[:r.cap]
	}
	r.mu.Unlock()
}

// list returns entries newest first (the most recent offender leads).
func (r *slowRing) list() []SlowEntry {
	r.mu.Lock()
	out := make([]SlowEntry, len(r.entries))
	for i, e := range r.entries {
		out[len(out)-1-i] = e
	}
	r.mu.Unlock()
	return out
}

// traceRing holds the span trees of recently completed requests, keyed by
// request ID, for GET /v1/requests/{id}/trace. A reused request ID
// overwrites its previous entry (latest wins).
type traceRing struct {
	mu    sync.Mutex
	cap   int
	order []string // insertion order, oldest first
	m     map[string][]telemetry.SpanNode
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{cap: capacity, m: make(map[string][]telemetry.SpanNode, capacity)}
}

func (r *traceRing) put(id string, spans []telemetry.SpanNode) {
	if id == "" {
		return
	}
	r.mu.Lock()
	if _, exists := r.m[id]; !exists {
		r.order = append(r.order, id)
		if len(r.order) > r.cap {
			evict := r.order[0]
			copy(r.order, r.order[1:])
			r.order = r.order[:len(r.order)-1]
			delete(r.m, evict)
		}
	}
	r.m[id] = spans
	r.mu.Unlock()
}

func (r *traceRing) get(id string) ([]telemetry.SpanNode, bool) {
	r.mu.Lock()
	spans, ok := r.m[id]
	r.mu.Unlock()
	return spans, ok
}

// TraceResponse is the body of GET /v1/requests/{id}/trace.
type TraceResponse struct {
	RequestID string               `json:"request_id"`
	Trace     []telemetry.SpanNode `json:"trace"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, SlowlogResponse{
		ThresholdMS: float64(s.cfg.SlowQuery.Nanoseconds()) / 1e6,
		Entries:     s.slow.list(),
	})
}

func (s *Server) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans, ok := s.traces.get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "", errNoTrace(id))
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{RequestID: id, Trace: spans})
}
