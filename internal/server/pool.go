package server

import (
	"context"
	"sync"
)

// lanePool is the process-wide bound on solver parallelism, shared by
// every tenant. This settles the ROADMAP's per-process-vs-per-exchange
// question in favor of per-process: each Exchange already shares its
// signature-program cache, but letting every concurrent query spin up
// GOMAXPROCS workers of its own would oversubscribe the machine as soon
// as two tenants are busy. Instead, a query leases lanes from this pool —
// blocking for the first lane so admitted work always progresses, then
// taking any immediately free extras up to its per-query cap — and passes
// the leased count to WithParallelism. Total solver goroutines across all
// tenants therefore never exceed the pool size.
type lanePool struct {
	sem chan struct{}
}

// newLanePool sizes the pool; total < 1 is clamped to 1.
func newLanePool(total int) *lanePool {
	if total < 1 {
		total = 1
	}
	return &lanePool{sem: make(chan struct{}, total)}
}

// lease acquires between 1 and max lanes: it blocks (cancellably) for the
// first lane, then opportunistically takes immediately available extras.
// On success it returns the lane count and a release function; when ctx
// expires first it returns 0 and a nil release.
func (p *lanePool) lease(ctx context.Context, max int) (int, func()) {
	if max < 1 {
		max = 1
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, nil
	}
	n := 1
	for n < max {
		select {
		case p.sem <- struct{}{}:
			n++
		default:
			// No lane free right now: run with what we have rather than
			// holding up the query (the engine is deterministic at any
			// parallelism, so the answer does not depend on n).
			return n, p.releaser(n)
		}
	}
	return n, p.releaser(n)
}

func (p *lanePool) releaser(n int) func() {
	return func() {
		for i := 0; i < n; i++ {
			<-p.sem
		}
	}
}

// inUse reports the number of currently leased lanes (for health output).
func (p *lanePool) inUse() int { return len(p.sem) }

// capacity reports the pool size.
func (p *lanePool) capacity() int { return cap(p.sem) }

// drainGroup tracks in-flight requests and coordinates graceful drain
// without the Add-during-Wait race of a bare sync.WaitGroup: Enter
// atomically refuses new work once draining has begun, so Drain's wait
// condition can only go down.
type drainGroup struct {
	mu       sync.Mutex
	n        int
	draining bool
	idle     chan struct{} // closed when draining && n == 0
}

func newDrainGroup() *drainGroup {
	return &drainGroup{idle: make(chan struct{})}
}

// Enter registers one in-flight request; it returns false (and registers
// nothing) once draining has begun.
func (g *drainGroup) Enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.n++
	return true
}

// Leave unregisters one in-flight request.
func (g *drainGroup) Leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	if g.draining && g.n == 0 {
		close(g.idle)
	}
}

// Inflight returns the current in-flight count.
func (g *drainGroup) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Draining reports whether Drain has been called.
func (g *drainGroup) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Drain stops admitting new requests and waits until every in-flight
// request has left, or ctx expires (returning its error). Drain is
// idempotent; concurrent calls all wait for the same quiescence.
func (g *drainGroup) Drain(ctx context.Context) error {
	g.mu.Lock()
	if !g.draining {
		g.draining = true
		if g.n == 0 {
			close(g.idle)
		}
	}
	idle := g.idle
	g.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
