package server

import (
	"fmt"
	"net/http"
	"strconv"

	"repro"
	"repro/internal/profile"
)

// Workload-profile introspection and persistence glue: every tenant the
// server loads carries a workload profiler (repro.WithProfiling), this
// file serves its cumulative snapshot over the wire, summarizes it in
// /healthz, persists it beside the scenario snapshot at drain, and
// restores it at boot. The profile is advisory history, never tenant
// state: a damaged persisted profile logs a WARN and the tenant starts
// with a fresh profiler — it is never quarantined over one.

// ProfileResponse is the body of GET /v1/scenarios/{name}/profile. The
// embedded snapshot's Signatures are ordered (and optionally truncated)
// by the request's ?sort= and ?top= parameters; Clusters always carry
// the full per-cluster table.
type ProfileResponse struct {
	Scenario string `json:"scenario"`
	// Sort is the applied signature order: "wall", "conflicts", or
	// "degraded" (the request default is wall).
	Sort string `json:"sort"`
	// Top is the requested truncation (0 = all signatures).
	Top     int            `json:"top,omitempty"`
	Profile *repro.Profile `json:"profile"`
}

// ProfileHealth is the /healthz "profile" block: the cross-tenant
// aggregate of live profiler state, present whenever at least one loaded
// scenario records a profile.
type ProfileHealth struct {
	Scenarios int   `json:"scenarios"`
	Records   int   `json:"records"`
	Solves    int64 `json:"solves"`
	Evictions int64 `json:"evictions"`
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	scenario := r.PathValue("name")
	if st := stateFrom(r.Context()); st != nil {
		st.setTenant(scenario)
	}
	sc, err := s.reg.Get(scenario)
	if err != nil {
		s.writeError(w, http.StatusNotFound, scenario, err)
		return
	}
	sortBy := r.URL.Query().Get("sort")
	if !profile.ValidSort(sortBy) {
		s.writeError(w, http.StatusBadRequest, scenario,
			fmt.Errorf("unknown sort %q (want wall, conflicts, or degraded)", sortBy))
		return
	}
	if sortBy == "" {
		sortBy = profile.SortWall
	}
	top := 0
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, scenario,
				fmt.Errorf("invalid top %q (want a non-negative integer)", v))
			return
		}
		top = n
	}
	snap := sc.Profile()
	snap.Signatures = snap.Top(top, sortBy)
	writeJSON(w, http.StatusOK, ProfileResponse{
		Scenario: scenario,
		Sort:     sortBy,
		Top:      top,
		Profile:  snap,
	})
}

// profileHealth aggregates live profiler state across tenants for
// /healthz (nil when no loaded scenario profiles).
func (s *Server) profileHealth() *ProfileHealth {
	var h ProfileHealth
	for _, sc := range s.reg.List() {
		if !sc.ProfilingEnabled() {
			continue
		}
		snap := sc.Profile()
		h.Scenarios++
		h.Records += snap.Records
		h.Solves += snap.Solves
		h.Evictions += snap.Evictions
	}
	if h.Scenarios == 0 {
		return nil
	}
	return &h
}

// restoreProfile folds a persisted workload profile back into a freshly
// rebuilt tenant. Absence is normal (first boot, or the tenant never
// drained); damage is advisory — WARN and serve with a fresh profiler.
func (s *Server) restoreProfile(name string) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	payload, err := st.LoadProfile(name)
	if err != nil {
		s.log.Warn("persisted profile unreadable; starting fresh",
			"scenario", name, "error", err.Error())
		return
	}
	if payload == nil {
		return
	}
	snap, err := profile.ParseSnapshot(payload)
	if err != nil {
		s.log.Warn("persisted profile damaged; starting fresh",
			"scenario", name, "error", err.Error())
		return
	}
	sc, err := s.reg.Get(name)
	if err != nil {
		return
	}
	sc.MergeProfile(snap)
	s.log.Info("workload profile restored",
		"scenario", name, "signatures", len(snap.Signatures), "solves", snap.Solves)
}

// persistProfiles writes every profiling tenant's cumulative snapshot to
// the store. Called once the drain group is quiescent, so every recorded
// solve is in the snapshot; a restart with the same -data-dir then serves
// the pre-restart cumulative profile.
func (s *Server) persistProfiles() {
	st := s.cfg.Store
	if st == nil {
		return
	}
	for _, sc := range s.reg.List() {
		if !sc.ProfilingEnabled() {
			continue
		}
		snap := sc.Profile()
		if snap.Solves == 0 && len(snap.Signatures) == 0 {
			continue
		}
		data, err := snap.MarshalIndent()
		if err != nil {
			s.log.Warn("encoding workload profile failed",
				"scenario", sc.Name, "error", err.Error())
			continue
		}
		if err := st.SaveProfile(sc.Name, data); err != nil {
			s.log.Warn("persisting workload profile failed",
				"scenario", sc.Name, "error", err.Error())
		}
	}
}
