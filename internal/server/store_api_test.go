package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// openTestStore opens a store over a fresh temp dir with the background
// loop disabled (tests drive flushes explicitly).
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{RepersistInterval: -1})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(st.Close)
	return st
}

func getStoreStatus(t *testing.T, base string) StoreResponse {
	t.Helper()
	code, body, _ := doJSON(t, http.MethodGet, base+"/v1/store", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/store: %d %s", code, body)
	}
	var resp StoreResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding /v1/store: %v", err)
	}
	return resp
}

// queryAnswers runs a preloaded query and renders the semantic answer
// fields (tuples, unknowns, partiality) — the byte-identity contract
// across restarts, with per-request noise (IDs, durations) stripped.
func queryAnswers(t *testing.T, base, scenario, queryName string) string {
	t.Helper()
	code, body, _ := doJSON(t, http.MethodPost, base+"/v1/scenarios/"+scenario+"/query",
		QueryRequest{Name: queryName})
	if code != http.StatusOK {
		t.Fatalf("query %s/%s: %d %s", scenario, queryName, code, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding query response: %v", err)
	}
	out, err := json.Marshal(map[string]interface{}{
		"tuples":  resp.Answers.Tuples,
		"unknown": resp.Answers.Unknown,
		"partial": resp.Partial,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRegistryDrainRefcount pins the drain protocol at the registry
// level: the drained callback fires exactly once, only after the last
// in-flight reference releases, and never while references are held.
func TestRegistryDrainRefcount(t *testing.T) {
	reg := NewRegistry(0)
	if _, err := reg.Load("t", demoMapping, demoFacts, ""); err != nil {
		t.Fatal(err)
	}

	const holders = 8
	var drained atomic.Int64
	releases := make([]func(), 0, holders)
	for i := 0; i < holders; i++ {
		_, release, err := reg.Acquire("t")
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, release)
	}

	sc, err := reg.Remove("t")
	if err != nil {
		t.Fatal(err)
	}
	sc.markRemoved(func() { drained.Add(1) })

	// Removed from the map: new acquires 404 immediately.
	if _, _, err := reg.Acquire("t"); !errors.Is(err, ErrScenarioNotFound) {
		t.Fatalf("Acquire after Remove: got %v, want ErrScenarioNotFound", err)
	}
	if got := drained.Load(); got != 0 {
		t.Fatalf("drained fired with %d references still held", holders)
	}

	// Concurrent releases: the callback fires exactly once, after all.
	var wg sync.WaitGroup
	for _, release := range releases {
		wg.Add(1)
		go func(r func()) { defer wg.Done(); r() }(release)
	}
	wg.Wait()
	if got := drained.Load(); got != 1 {
		t.Fatalf("drained fired %d times, want exactly 1", got)
	}

	// No in-flight references: removal drains immediately.
	if _, err := reg.Load("t2", demoMapping, demoFacts, ""); err != nil {
		t.Fatal(err)
	}
	sc2, err := reg.Remove("t2")
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	sc2.markRemoved(func() { fired = true })
	if !fired {
		t.Fatal("markRemoved with zero references must drain immediately")
	}
}

// TestUnloadDrainsInflightQueries races queries against DELETE at the
// HTTP level (run under -race by make check): every query completes with
// 200 or 404 — never a 5xx from touching a freed tenant — and the drain
// fires exactly once.
func TestUnloadDrainsInflightQueries(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentQueries: 64})
	loadScenario(t, ts.URL, "drainme", demoMapping, demoFacts, demoQueries)

	const clients = 16
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			code, body, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/drainme/query",
				QueryRequest{Name: "q"})
			codes[i] = code
			if code != http.StatusOK && code != http.StatusNotFound {
				t.Errorf("query %d: got %d %s, want 200 or 404", i, code, body)
			}
		}(i)
	}
	var delCode int
	wg.Add(1)
	go func() {
		defer wg.Done()
		start.Wait()
		delCode, _, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/scenarios/drainme", nil)
	}()
	start.Done()
	wg.Wait()

	if delCode != http.StatusNoContent {
		t.Fatalf("DELETE: got %d, want 204", delCode)
	}
	// The drain callback runs when the last reference releases, which may
	// trail the HTTP responses by an instant.
	counter := s.Metrics().Counter(telemetry.Labeled("xr_server_scenario_drains_total", "scenario", "drainme"))
	deadline := time.Now().Add(2 * time.Second)
	for counter.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("drain counter = %d, want 1", counter.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/scenarios/drainme/query",
		QueryRequest{Name: "q"}); code != http.StatusNotFound {
		t.Fatalf("query after DELETE: got %d %s, want 404", code, body)
	}
}

// TestStorePersistenceRoundTrip is the restart story end to end: load via
// HTTP with a store attached, reboot a fresh server over the same data
// dir, and the tenant answers identically with zero re-POSTs.
func TestStorePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{RepersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Store: st1})
	loadScenario(t, ts1.URL, "persist-me", demoMapping, demoFacts, demoQueries)
	want := queryAnswers(t, ts1.URL, "persist-me", "q")

	sr := getStoreStatus(t, ts1.URL)
	if !sr.Enabled || sr.Store == nil || sr.Store.Persisted != 1 || sr.Store.DataDir != dir {
		t.Fatalf("/v1/store after load: %+v", sr)
	}
	var h HealthResponse
	_, hb, _ := doJSON(t, http.MethodGet, ts1.URL+"/healthz", nil)
	if err := json.Unmarshal(hb, &h); err != nil {
		t.Fatal(err)
	}
	if h.Store == nil || h.Store.Persisted != 1 || h.Store.Dirty != 0 || h.Store.DataDir != dir {
		t.Fatalf("/healthz store block: %+v", h.Store)
	}
	st1.Close()

	// Reboot: fresh store + server over the same directory.
	s2, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	sum, err := s2.RecoverFromStore()
	if err != nil {
		t.Fatalf("RecoverFromStore: %v", err)
	}
	if sum.Loaded != 1 || sum.Quarantined != 0 || sum.Skipped != 0 {
		t.Fatalf("recovery summary: %+v", sum)
	}
	got := queryAnswers(t, ts2.URL, "persist-me", "q")
	if got != want {
		t.Fatalf("answers differ across restart:\n got %s\nwant %s", got, want)
	}
}

// TestStoreDisabled pins the in-memory daemon's surface: /v1/store says
// disabled and /healthz omits the store block.
func TestStoreDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sr := getStoreStatus(t, ts.URL)
	if sr.Enabled || sr.Store != nil {
		t.Fatalf("/v1/store without a store: %+v", sr)
	}
	_, hb, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(hb, &raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["store"]; present {
		t.Fatalf("/healthz carries a store block without a store: %s", hb)
	}
}

// TestUnloadDeletesPersistedState: DELETE removes the snapshot from disk,
// so a reboot recovers nothing and the name loads fresh.
func TestUnloadDeletesPersistedState(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	loadScenario(t, ts1.URL, "ephemeral", demoMapping, demoFacts, demoQueries)
	if code, body, _ := doJSON(t, http.MethodDelete, ts1.URL+"/v1/scenarios/ephemeral", nil); code != http.StatusNoContent {
		t.Fatalf("DELETE: %d %s", code, body)
	}
	if sr := getStoreStatus(t, ts1.URL); sr.Store.Persisted != 0 {
		t.Fatalf("persisted after DELETE: %+v", sr.Store)
	}

	s2, _ := newTestServer(t, Config{Store: openTestStore(t, dir)})
	sum, err := s2.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Loaded != 0 || sum.Quarantined != 0 {
		t.Fatalf("recovery after delete: %+v", sum)
	}
}

// TestRecoverQuarantinesUnloadableSnapshot: a snapshot whose texts no
// longer rebuild (storage-valid, semantically broken) is quarantined at
// boot — the daemon starts, reports it, and the name stays loadable.
func TestRecoverQuarantinesUnloadableSnapshot(t *testing.T) {
	dir := t.TempDir()
	seed := openTestStore(t, dir)
	if err := seed.Save(store.Snapshot{Name: "broken", Mapping: "not a mapping at all", Facts: ""}); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	s, ts := newTestServer(t, Config{Store: openTestStore(t, dir)})
	sum, err := s.RecoverFromStore()
	if err != nil {
		t.Fatalf("boot must survive an unloadable snapshot: %v", err)
	}
	if sum.Loaded != 0 || sum.Quarantined != 1 {
		t.Fatalf("recovery summary: %+v", sum)
	}
	sr := getStoreStatus(t, ts.URL)
	if sr.Store.Quarantined != 1 || sr.Store.Persisted != 0 {
		t.Fatalf("/v1/store after quarantine: %+v", sr.Store)
	}
	if len(sr.Store.Quarantine) != 1 || sr.Store.Quarantine[0].ID == "" || sr.Store.Quarantine[0].Name != "broken" {
		t.Fatalf("quarantine record: %+v", sr.Store.Quarantine)
	}
	// The name is free for a fresh, correct load.
	loadScenario(t, ts.URL, "broken", demoMapping, demoFacts, demoQueries)
	if got := queryAnswers(t, ts.URL, "broken", "anyGene"); len(got) == 0 {
		t.Fatal("reloaded tenant does not answer")
	}
}

// TestRecoverManyTenants exercises mixed recovery: several tenants saved,
// one deleted, all survivors rebuilt with the right count.
func TestRecoverManyTenants(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	for i := 0; i < 4; i++ {
		loadScenario(t, ts1.URL, fmt.Sprintf("tenant-%d", i), demoMapping, demoFacts, demoQueries)
	}
	if code, _, _ := doJSON(t, http.MethodDelete, ts1.URL+"/v1/scenarios/tenant-2", nil); code != http.StatusNoContent {
		t.Fatalf("DELETE tenant-2: %d", code)
	}

	s2, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	sum, err := s2.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Loaded != 3 {
		t.Fatalf("recovered %d tenants, want 3: %+v", sum.Loaded, sum)
	}
	for _, name := range []string{"tenant-0", "tenant-1", "tenant-3"} {
		queryAnswers(t, ts2.URL, name, "q")
	}
	if code, _, _ := doJSON(t, http.MethodGet, ts2.URL+"/v1/scenarios/tenant-2", nil); code != http.StatusNotFound {
		t.Fatalf("deleted tenant resurrected: %d", code)
	}
}
