package server

import (
	"encoding/json"
	"net/http"
	"time"

	"repro"
)

// NDJSON framing for streamed query answers: one JSON object per line,
// each carrying a "frame" discriminator. Frame order is deterministic —
// header, rows (certain answers), unknowns (?-marked), degraded
// signatures, explanations, stats, end — so clients can act on answers
// as they arrive and still detect truncation (a stream without an "end"
// frame was cut). All framing types are part of the wire contract
// (DESIGN.md §14).

// StreamHeader opens a stream: the query identity and shape.
type StreamHeader struct {
	Frame    string `json:"frame"` // "header"
	Scenario string `json:"scenario"`
	Query    string `json:"query"`
	Mode     string `json:"mode"`
	Arity    int    `json:"arity"`
	Partial  bool   `json:"partial"`
}

// StreamRow is one certain answer tuple.
type StreamRow struct {
	Frame string   `json:"frame"` // "row"
	Tuple []string `json:"tuple"`
}

// StreamUnknown is one undecided tuple, marked "?" per the paper's
// convention for answers that hold in some but possibly not all repairs
// of the degraded signatures.
type StreamUnknown struct {
	Frame string   `json:"frame"` // "unknown"
	Mark  string   `json:"mark"`  // always "?"
	Tuple []string `json:"tuple"`
}

// StreamDegraded reports one skipped signature group.
type StreamDegraded struct {
	Frame     string               `json:"frame"` // "degraded"
	Signature repro.SignatureError `json:"signature"`
}

// StreamExplanation carries one rendered explanation (explain=true only).
type StreamExplanation struct {
	Frame       string            `json:"frame"` // "explanation"
	Explanation repro.Explanation `json:"explanation"`
}

// StreamStats closes the answer section with the per-query measurements.
type StreamStats struct {
	Frame              string        `json:"frame"` // "stats"
	Candidates         int           `json:"candidates"`
	SafeAccepted       int           `json:"safe_accepted"`
	SolverAccepted     int           `json:"solver_accepted"`
	Programs           int           `json:"programs"`
	CacheHits          int           `json:"cache_hits"`
	DegradedSignatures int           `json:"degraded_signatures"`
	UnknownTuples      int           `json:"unknown_tuples"`
	Retries            int           `json:"retries"`
	Duration           time.Duration `json:"duration_ns"`
}

// StreamEnd terminates a stream; its counts let clients verify they saw
// every frame.
type StreamEnd struct {
	Frame   string `json:"frame"` // "end"
	Rows    int    `json:"rows"`
	Unknown int    `json:"unknown"`
}

// streamAnswers writes ans as NDJSON frames, flushing after every line so
// rows reach slow consumers incrementally.
func streamAnswers(w http.ResponseWriter, scenario, query, mode string, arity int, ans *repro.Answers) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	emit := func(v interface{}) {
		_ = enc.Encode(v) // Encode appends the newline
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(StreamHeader{Frame: "header", Scenario: scenario, Query: query, Mode: mode, Arity: arity, Partial: ans.Partial()})
	for _, t := range ans.Tuples {
		emit(StreamRow{Frame: "row", Tuple: t})
	}
	for _, t := range ans.Unknown {
		emit(StreamUnknown{Frame: "unknown", Mark: "?", Tuple: t})
	}
	for _, d := range ans.Degraded {
		emit(StreamDegraded{Frame: "degraded", Signature: d})
	}
	for _, e := range ans.Explanations {
		emit(StreamExplanation{Frame: "explanation", Explanation: e})
	}
	emit(StreamStats{
		Frame:              "stats",
		Candidates:         ans.Candidates,
		SafeAccepted:       ans.SafeAccepted,
		SolverAccepted:     ans.SolverAccepted,
		Programs:           ans.Programs,
		CacheHits:          ans.CacheHits,
		DegradedSignatures: ans.DegradedSignatures,
		UnknownTuples:      ans.UnknownTuples,
		Retries:            ans.Retries,
		Duration:           ans.Duration,
	})
	emit(StreamEnd{Frame: "end", Rows: len(ans.Tuples), Unknown: len(ans.Unknown)})
}
