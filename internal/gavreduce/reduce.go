package gavreduce

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// Reduction is the result of compiling a glav+(wa-glav, egd) mapping into a
// gav+(gav, egd) mapping.
type Reduction struct {
	Orig *mapping.Mapping
	// M is the reduced mapping. It shares the source schema, catalog and
	// universe with Orig; its target schema consists of shaped relations
	// and EQ relations.
	M *mapping.Mapping
	// Identity is true when Orig was already gav+(gav, egd) and M == Orig.
	Identity bool

	shapes  *shapeTable
	nextSym int

	rules []*skRule

	vecSeen   map[schema.RelID]map[string]shapeVec // original target rel -> registered vecs
	shapedRel map[string]*schema.Relation          // relName@vecKey -> shaped relation
	eqRelByK  map[string]*schema.Relation          // eqKey(s1,s2) -> EQ relation
	eqShapes  map[*Shape]bool

	emitted map[string]bool // dedup of emitted dependencies
}

// skTerm is a skolemized head term: a variable, a constant, or a skolem
// application over frontier variables.
type skTerm struct {
	v   string
	val symtab.Value
	sk  *skolemSym
}

// skRule is a single-head skolemized tgd.
type skRule struct {
	srcBody bool // body ranges over the source schema (no shapes)
	body    []logic.Atom
	headRel schema.RelID
	head    []skTerm
	label   string
}

// Reduce compiles m. It returns an error if m's target tgds are not weakly
// acyclic (the reduction, like the chase, need not terminate otherwise).
func Reduce(m *mapping.Mapping) (*Reduction, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !m.IsWeaklyAcyclic() {
		return nil, fmt.Errorf("gavreduce: target tgds are not weakly acyclic")
	}
	if m.IsGAV() {
		return &Reduction{Orig: m, M: m, Identity: true}, nil
	}
	r := &Reduction{
		Orig:      m,
		shapes:    newShapeTable(),
		vecSeen:   make(map[schema.RelID]map[string]shapeVec),
		shapedRel: make(map[string]*schema.Relation),
		eqRelByK:  make(map[string]*schema.Relation),
		eqShapes:  make(map[*Shape]bool),
		emitted:   make(map[string]bool),
	}
	r.M = mapping.New(m.Cat, m.U)
	r.M.Source = m.Source

	r.skolemize()
	r.shapeFixpoint()
	r.emitTgds()
	r.emitEgds()
	r.emitEqClosure()
	if err := r.M.Validate(); err != nil {
		return nil, fmt.Errorf("gavreduce: reduced mapping invalid: %w", err)
	}
	if !r.M.IsGAV() {
		return nil, fmt.Errorf("gavreduce: internal error: reduced mapping is not GAV")
	}
	return r, nil
}

// skolemize splits every tgd into single-head rules with skolem terms for
// existential variables.
func (r *Reduction) skolemize() {
	add := func(d *logic.TGD, srcBody bool, idx int) {
		syms := make(map[string]*skolemSym)
		frontier := d.FrontierVars()
		for _, y := range d.ExistentialVars() {
			r.nextSym++
			syms[y] = &skolemSym{
				id:       r.nextSym,
				name:     fmt.Sprintf("sk%d_%s", r.nextSym, y),
				frontier: frontier,
			}
		}
		for hi, h := range d.Head {
			head := make([]skTerm, len(h.Terms))
			for i, t := range h.Terms {
				switch {
				case !t.IsVar():
					head[i] = skTerm{val: t.Val}
				case syms[t.Var] != nil:
					head[i] = skTerm{sk: syms[t.Var]}
				default:
					head[i] = skTerm{v: t.Var}
				}
			}
			r.rules = append(r.rules, &skRule{
				srcBody: srcBody,
				body:    d.Body,
				headRel: h.Rel,
				head:    head,
				label:   fmt.Sprintf("%s#%d.%d", d.Label, idx, hi),
			})
		}
	}
	for i, d := range r.Orig.ST {
		add(d, true, i)
	}
	for i, d := range r.Orig.TTgds {
		add(d, false, i)
	}
}

func (r *Reduction) registerVec(rel schema.RelID, vec shapeVec) bool {
	m, ok := r.vecSeen[rel]
	if !ok {
		m = make(map[string]shapeVec)
		r.vecSeen[rel] = m
	}
	k := vec.key()
	if _, dup := m[k]; dup {
		return false
	}
	m[k] = vec
	return true
}

// expansion is one shape-resolved instantiation of a dependency body.
type expansion struct {
	atoms    []logic.Atom
	home     map[string]*Shape
	homeVars map[string][]logic.Term
	fresh    int
}

func (e *expansion) freshVars(n int) []logic.Term {
	out := make([]logic.Term, n)
	for i := range out {
		e.fresh++
		out[i] = logic.V(fmt.Sprintf("u%d", e.fresh))
	}
	return out
}

// expandBody enumerates the shape-resolved expansions of a dependency body.
// Source bodies expand trivially (every variable has the constant shape);
// target bodies range over every registered shape vector per atom, with
// repeated variables and constants joined through EQ whenever a labeled
// null could occur.
func (r *Reduction) expandBody(body []logic.Atom, srcBody bool, yield func(*expansion)) {
	if srcBody {
		e := &expansion{
			atoms:    body,
			home:     make(map[string]*Shape),
			homeVars: make(map[string][]logic.Term),
		}
		for _, a := range body {
			for _, t := range a.Terms {
				if t.IsVar() && e.home[t.Var] == nil {
					e.home[t.Var] = r.shapes.konst
					e.homeVars[t.Var] = []logic.Term{t}
				}
			}
		}
		yield(e)
		return
	}
	e := &expansion{home: make(map[string]*Shape), homeVars: make(map[string][]logic.Term)}
	r.expandFrom(body, 0, e, yield)
}

func (r *Reduction) expandFrom(body []logic.Atom, i int, e *expansion, yield func(*expansion)) {
	if i == len(body) {
		cp := &expansion{
			atoms:    append([]logic.Atom(nil), e.atoms...),
			home:     make(map[string]*Shape, len(e.home)),
			homeVars: make(map[string][]logic.Term, len(e.homeVars)),
			fresh:    e.fresh,
		}
		for k, v := range e.home {
			cp.home[k] = v
		}
		for k, v := range e.homeVars {
			cp.homeVars[k] = v
		}
		yield(cp)
		return
	}
	a := body[i]
	vecs := r.vecSeen[a.Rel]
	keys := make([]string, 0, len(vecs))
	for k := range vecs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vec := vecs[k]
		savedAtoms := len(e.atoms)
		savedFresh := e.fresh
		var newHomes []string

		flat := make([]logic.Term, 0, vec.width())
		for j, t := range a.Terms {
			s := vec[j]
			switch {
			case !t.IsVar():
				if s.IsConst() {
					flat = append(flat, t)
				} else {
					// A constant matched against a skolem-shaped position:
					// join through EQ[s|c].
					xs := e.freshVars(s.width)
					flat = append(flat, xs...)
					eqArgs := append(append([]logic.Term{}, xs...), t)
					e.atoms = append(e.atoms, logic.Atom{Rel: r.eqRel(s, r.shapes.konst).ID, Terms: eqArgs})
				}
			default:
				h, seen := e.home[t.Var]
				switch {
				case !seen:
					xs := e.freshVars(s.width)
					e.home[t.Var] = s
					e.homeVars[t.Var] = xs
					newHomes = append(newHomes, t.Var)
					flat = append(flat, xs...)
				case h.IsConst() && s.IsConst():
					flat = append(flat, e.homeVars[t.Var][0])
				default:
					xs := e.freshVars(s.width)
					flat = append(flat, xs...)
					eqArgs := append(append([]logic.Term{}, e.homeVars[t.Var]...), xs...)
					e.atoms = append(e.atoms, logic.Atom{Rel: r.eqRel(h, s).ID, Terms: eqArgs})
				}
			}
		}
		e.atoms = append(e.atoms, logic.Atom{Rel: r.shapedRelFor(a.Rel, vec).ID, Terms: flat})
		r.expandFrom(body, i+1, e, yield)
		// Undo.
		e.atoms = e.atoms[:savedAtoms]
		e.fresh = savedFresh
		for _, v := range newHomes {
			delete(e.home, v)
			delete(e.homeVars, v)
		}
	}
}

// headShape computes the shape of one head term under an expansion.
func (r *Reduction) headShape(t skTerm, e *expansion) *Shape {
	switch {
	case t.sk != nil:
		children := make([]*Shape, len(t.sk.frontier))
		for i, fv := range t.sk.frontier {
			children[i] = e.home[fv]
		}
		return r.shapes.intern(t.sk, children)
	case t.v != "":
		return e.home[t.v]
	default:
		return r.shapes.konst
	}
}

// headFlat renders one head term's flat columns under an expansion.
func headFlat(t skTerm, e *expansion) []logic.Term {
	switch {
	case t.sk != nil:
		var out []logic.Term
		for _, fv := range t.sk.frontier {
			out = append(out, e.homeVars[fv]...)
		}
		return out
	case t.v != "":
		return e.homeVars[t.v]
	default:
		return []logic.Term{logic.C(t.val)}
	}
}

// shapeFixpoint registers every reachable (relation, shape vector) pair.
func (r *Reduction) shapeFixpoint() {
	for changed := true; changed; {
		changed = false
		for _, rule := range r.rules {
			r.expandBody(rule.body, rule.srcBody, func(e *expansion) {
				vec := make(shapeVec, len(rule.head))
				for i, t := range rule.head {
					vec[i] = r.headShape(t, e)
				}
				if r.registerVec(rule.headRel, vec) {
					changed = true
				}
			})
		}
	}
}

// shapedRelFor returns (declaring on demand) the shaped relation for
// (rel, vec) and adds it to the reduced target schema.
func (r *Reduction) shapedRelFor(rel schema.RelID, vec shapeVec) *schema.Relation {
	name := r.Orig.Cat.ByID(rel).Name + "@" + vec.key()
	if sr, ok := r.shapedRel[name]; ok {
		return sr
	}
	// A previous reduction of the same mapping may already have declared
	// the relation in the shared catalog; reuse it (shapes are
	// deterministic, so the arity matches).
	sr, ok := r.Orig.Cat.ByName(name)
	if !ok {
		sr = r.Orig.Cat.MustAdd(name, vec.width())
	}
	r.shapedRel[name] = sr
	r.M.Target.Add(sr)
	return sr
}

func eqKey(a, b *Shape) string { return a.name + "||" + b.name }

// eqRel returns (declaring on demand) the EQ relation between two shapes.
func (r *Reduction) eqRel(a, b *Shape) *schema.Relation {
	k := eqKey(a, b)
	if er, ok := r.eqRelByK[k]; ok {
		return er
	}
	er, ok := r.Orig.Cat.ByName("EQ@" + k)
	if !ok {
		er = r.Orig.Cat.MustAdd("EQ@"+k, a.width+b.width)
	}
	r.eqRelByK[k] = er
	r.M.Target.Add(er)
	r.eqShapes[a] = true
	r.eqShapes[b] = true
	return er
}

// emitTGD appends a tgd to the reduced mapping with string-keyed dedup.
func (r *Reduction) emitTGD(d *logic.TGD, st bool) {
	key := d.String(r.Orig.Cat, nil)
	if r.emitted[key] {
		return
	}
	r.emitted[key] = true
	if st {
		r.M.ST = append(r.M.ST, d)
	} else {
		r.M.TTgds = append(r.M.TTgds, d)
	}
}

// emitTgds emits the shaped GAV tgds for every rule expansion.
func (r *Reduction) emitTgds() {
	for _, rule := range r.rules {
		rule := rule
		r.expandBody(rule.body, rule.srcBody, func(e *expansion) {
			vec := make(shapeVec, len(rule.head))
			var flat []logic.Term
			for i, t := range rule.head {
				vec[i] = r.headShape(t, e)
				flat = append(flat, headFlat(t, e)...)
			}
			head := logic.Atom{Rel: r.shapedRelFor(rule.headRel, vec).ID, Terms: flat}
			r.emitTGD(&logic.TGD{
				Body:  e.atoms,
				Head:  []logic.Atom{head},
				Label: rule.label,
			}, rule.srcBody)
		})
	}
}

// emitEgds compiles every original egd. Expansions where both sides are
// constant-shaped become plain egds of the reduced mapping — keeping their
// violations local to the grounding, exactly as in the original mapping.
// Expansions with a skolem-shaped side become EQ-derivation tgds; the only
// way such an equality can be violated is transitively, through the master
// egd on EQ[const|const].
func (r *Reduction) emitEgds() {
	for i, d := range r.Orig.TEgds {
		d := d
		label := fmt.Sprintf("%s#egd%d", d.Label, i)
		r.expandBody(d.Body, false, func(e *expansion) {
			ls, lflat := r.egdSide(d.L, e)
			rs, rflat := r.egdSide(d.R, e)
			if ls.IsConst() && rs.IsConst() {
				r.emitEGD(&logic.EGD{Body: e.atoms, L: lflat[0], R: rflat[0], Label: label})
				return
			}
			eqAtom := logic.Atom{
				Rel:   r.eqRel(ls, rs).ID,
				Terms: append(append([]logic.Term{}, lflat...), rflat...),
			}
			r.emitTGD(&logic.TGD{Body: e.atoms, Head: []logic.Atom{eqAtom}, Label: label}, false)
		})
	}
}

// emitEGD appends an egd to the reduced mapping with string-keyed dedup.
func (r *Reduction) emitEGD(d *logic.EGD) {
	key := d.String(r.Orig.Cat, nil)
	if r.emitted[key] {
		return
	}
	r.emitted[key] = true
	r.M.TEgds = append(r.M.TEgds, d)
}

func (r *Reduction) egdSide(t logic.Term, e *expansion) (*Shape, []logic.Term) {
	if t.IsVar() {
		return e.home[t.Var], e.homeVars[t.Var]
	}
	return r.shapes.konst, []logic.Term{t}
}

// emitEqClosure declares EQ relations over every relevant shape pair and
// emits symmetry, transitivity and reflexivity rules, plus the master egd
// EQ[c|c](x, y) → x = y.
func (r *Reduction) emitEqClosure() {
	// Relevant shapes: every shape already involved in an EQ relation, plus
	// every skolem shape occurring in a registered vector (a query variable
	// may have any of these as home shape), plus the constant shape.
	shapes := map[*Shape]bool{r.shapes.konst: true}
	for s := range r.eqShapes {
		shapes[s] = true
	}
	for _, vecs := range r.vecSeen {
		for _, vec := range vecs {
			for _, s := range vec {
				if !s.IsConst() {
					shapes[s] = true
				}
			}
		}
	}
	list := make([]*Shape, 0, len(shapes))
	for s := range shapes {
		list = append(list, s)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })

	flatVars := func(prefix string, w int) []logic.Term {
		out := make([]logic.Term, w)
		for i := range out {
			out[i] = logic.V(fmt.Sprintf("%s%d", prefix, i))
		}
		return out
	}

	// Symmetry and transitivity over all pairs/triples.
	for _, a := range list {
		for _, b := range list {
			xa := flatVars("x", a.width)
			yb := flatVars("y", b.width)
			eqAB := logic.Atom{Rel: r.eqRel(a, b).ID, Terms: append(append([]logic.Term{}, xa...), yb...)}
			eqBA := logic.Atom{Rel: r.eqRel(b, a).ID, Terms: append(append([]logic.Term{}, yb...), xa...)}
			r.emitTGD(&logic.TGD{Body: []logic.Atom{eqAB}, Head: []logic.Atom{eqBA}, Label: "eq-sym"}, false)
			if b.IsConst() {
				// Transitivity through a constant middle term is redundant:
				// whenever a chain forces two distinct constants equal, a
				// sub-chain with labeled-null intermediates already does
				// (shortest-path argument), and that sub-chain's endpoint
				// equality is derived without constant hops. Dropping these
				// rules keeps EQ[c|c] facts local to their derivations
				// instead of saturating across unrelated values.
				continue
			}
			for _, c := range list {
				zc := flatVars("z", c.width)
				eqBC := logic.Atom{Rel: r.eqRel(b, c).ID, Terms: append(append([]logic.Term{}, yb...), zc...)}
				eqAC := logic.Atom{Rel: r.eqRel(a, c).ID, Terms: append(append([]logic.Term{}, xa...), zc...)}
				r.emitTGD(&logic.TGD{
					Body:  []logic.Atom{eqAB, eqBC},
					Head:  []logic.Atom{eqAC},
					Label: "eq-trans",
				}, false)
			}
		}
	}

	// Reflexivity for skolem shapes, seeded from every shaped-relation
	// position carrying that shape.
	for rel, vecs := range r.vecSeen {
		keys := make([]string, 0, len(vecs))
		for k := range vecs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			vec := vecs[k]
			sr := r.shapedRelFor(rel, vec)
			cols := flatVars("x", vec.width())
			off := 0
			for _, s := range vec {
				if !s.IsConst() {
					span := cols[off : off+s.width]
					eqSS := logic.Atom{Rel: r.eqRel(s, s).ID, Terms: append(append([]logic.Term{}, span...), span...)}
					r.emitTGD(&logic.TGD{
						Body:  []logic.Atom{{Rel: sr.ID, Terms: cols}},
						Head:  []logic.Atom{eqSS},
						Label: "eq-refl",
					}, false)
				}
				off += s.width
			}
		}
	}

	// Master egd: two constants forced equal is the (only) inconsistency.
	cc := r.eqRel(r.shapes.konst, r.shapes.konst)
	r.M.TEgds = append(r.M.TEgds, &logic.EGD{
		Body:  []logic.Atom{{Rel: cc.ID, Terms: []logic.Term{logic.V("x"), logic.V("y")}}},
		L:     logic.V("x"),
		R:     logic.V("y"),
		Label: "eq-master",
	})
}
