// Package gavreduce implements Theorem 1 of the paper: every
// glav+(wa-glav, egd) schema mapping M and UCQ q can be compiled into a
// gav+(gav, egd) schema mapping M̂ and UCQ q̂ with
// XR-Certain(q, I, M) = XR-Certain(q̂, I, M̂) for all source instances I.
//
// The construction skolemizes existential variables, expands every target
// relation position into finitely many term *shapes* (finite by weak
// acyclicity), and replaces the chase's value merging by explicit equality
// relations EQ[s1|s2] between shaped terms, closed under symmetry,
// transitivity and (for skolem shapes) reflexivity. Dependency bodies and
// queries are rewritten to join through EQ wherever a labeled null could
// flow; the only remaining egd is the master egd
//
//	EQ[const|const](x, y) → x = y,
//
// which is violated exactly when the original chase would be forced to
// equate two distinct constants.
package gavreduce

import (
	"fmt"
	"strings"
)

// skolemSym identifies one skolem function: one existential variable of one
// (skolemized) dependency.
type skolemSym struct {
	id       int
	name     string   // display name, e.g. sk3_z
	frontier []string // ordered universal head variables it depends on
}

// Shape describes the term structure of one target position: either the
// constant shape or a skolem application whose children are shapes.
type Shape struct {
	id       int
	sk       *skolemSym // nil for the constant shape
	children []*Shape
	width    int    // number of flat constant columns
	name     string // canonical name, used for interning
}

// IsConst reports whether this is the constant shape.
func (s *Shape) IsConst() bool { return s.sk == nil }

// Width returns the number of flat columns this shape occupies.
func (s *Shape) Width() int { return s.width }

// Name returns the canonical shape name.
func (s *Shape) Name() string { return s.name }

// shapeTable interns shapes by canonical name.
type shapeTable struct {
	byName map[string]*Shape
	all    []*Shape
	konst  *Shape
}

func newShapeTable() *shapeTable {
	t := &shapeTable{byName: make(map[string]*Shape)}
	t.konst = t.intern(nil, nil)
	return t
}

func (t *shapeTable) intern(sk *skolemSym, children []*Shape) *Shape {
	name := shapeName(sk, children)
	if s, ok := t.byName[name]; ok {
		return s
	}
	width := 1
	if sk != nil {
		width = 0
		for _, c := range children {
			width += c.width
		}
	}
	s := &Shape{id: len(t.all), sk: sk, children: children, width: width, name: name}
	t.byName[name] = s
	t.all = append(t.all, s)
	return s
}

func shapeName(sk *skolemSym, children []*Shape) string {
	if sk == nil {
		return "c"
	}
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = c.name
	}
	return fmt.Sprintf("%s[%s]", sk.name, strings.Join(parts, ","))
}

// shapeVec is a shape assignment to every position of a relation.
type shapeVec []*Shape

func (v shapeVec) key() string {
	parts := make([]string, len(v))
	for i, s := range v {
		parts[i] = s.name
	}
	return strings.Join(parts, "|")
}

func (v shapeVec) width() int {
	w := 0
	for _, s := range v {
		w += s.width
	}
	return w
}

// allConst reports whether every position has the constant shape.
func (v shapeVec) allConst() bool {
	for _, s := range v {
		if !s.IsConst() {
			return false
		}
	}
	return true
}
