package gavreduce

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/schema"
	"repro/internal/symtab"
	"repro/internal/testkit"
)

type tw struct {
	cat *schema.Catalog
	u   *symtab.Universe
	m   *mapping.Mapping
	src *instance.Instance
}

func newTW() *tw {
	cat := schema.NewCatalog()
	u := symtab.NewUniverse()
	return &tw{cat: cat, u: u, m: mapping.New(cat, u), src: instance.New(cat)}
}

func (w *tw) srcRel(name string, arity int) *schema.Relation {
	r := w.cat.MustAdd(name, arity)
	w.m.Source.Add(r)
	return r
}

func (w *tw) tgtRel(name string, arity int) *schema.Relation {
	r := w.cat.MustAdd(name, arity)
	w.m.Target.Add(r)
	return r
}

func (w *tw) add(r *schema.Relation, vals ...string) {
	args := make([]symtab.Value, len(vals))
	for i, v := range vals {
		args[i] = w.u.Const(v)
	}
	w.src.Add(r.ID, args)
}

func TestReduceIdentityForGAV(t *testing.T) {
	w := newTW()
	r := w.srcRel("R", 2)
	s := w.tgtRel("S", 2)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y"))},
	}}
	red, err := Reduce(w.m)
	if err != nil {
		t.Fatal(err)
	}
	if !red.Identity || red.M != w.m {
		t.Fatal("GAV mapping should reduce to itself")
	}
	q := &logic.UCQ{Name: "q", Arity: 1, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y"))},
	}}}
	rq, err := red.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if rq != q {
		t.Fatal("identity reduction should not rewrite queries")
	}
}

func TestReduceRejectsNonWeaklyAcyclic(t *testing.T) {
	w := newTW()
	r := w.srcRel("R", 2)
	e := w.tgtRel("E", 2)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))},
	}}
	w.m.TTgds = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("y"), logic.V("z"))},
	}}
	if _, err := Reduce(w.m); err == nil {
		t.Fatal("non-weakly-acyclic mapping accepted")
	}
}

// lavKeyWorld: R(x) -> ∃z S(x,z);  P(x,y) -> S(x,y);  key egd on S.
func lavKeyWorld() *tw {
	w := newTW()
	r := w.srcRel("R", 1)
	p := w.srcRel("P", 2)
	s := w.tgtRel("S", 2)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("z"))}, Label: "lav"},
		{Body: []logic.Atom{logic.NewAtom(w.cat, p, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y"))}, Label: "gav"},
	}
	w.m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{
			logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y2")),
		},
		L: logic.V("y"), R: logic.V("y2"), Label: "key",
	}}
	return w
}

func TestReduceLavKeyConsistent(t *testing.T) {
	w := lavKeyWorld()
	rRel, _ := w.cat.ByName("R")
	pRel, _ := w.cat.ByName("P")
	w.add(rRel, "a")
	w.add(pRel, "a", "b")

	red, err := Reduce(w.m)
	if err != nil {
		t.Fatal(err)
	}
	if !red.M.IsGAV() {
		t.Fatal("reduced mapping not GAV")
	}
	prov, err := chase.GAV(red.M, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Violations) != 0 {
		t.Fatalf("violations on consistent instance: %d", len(prov.Violations))
	}
	// Query: q(x,y) :- S(x,y). The null must be extractable as b.
	sRel, _ := w.cat.ByName("S")
	q := &logic.UCQ{Name: "q", Arity: 2, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x"), logic.V("y")},
		Body: []logic.Atom{logic.NewAtom(w.cat, sRel, logic.V("x"), logic.V("y"))},
	}}}
	rq, err := red.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	ans := cq.EvalUCQ(rq, prov.Instance)
	if ans.Len() != 1 || !ans.Contains([]symtab.Value{w.u.Const("a"), w.u.Const("b")}) {
		t.Fatalf("rewritten query answers = %d, want {(a,b)}", ans.Len())
	}
}

func TestReduceLavKeyInconsistent(t *testing.T) {
	w := lavKeyWorld()
	pRel, _ := w.cat.ByName("P")
	w.add(pRel, "a", "b")
	w.add(pRel, "a", "c")

	red, err := Reduce(w.m)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := chase.GAV(red.M, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Violations) == 0 {
		t.Fatal("no violations on inconsistent instance")
	}
	if chase.HasSolution(w.m, w.src) {
		t.Fatal("native chase disagrees: has solution")
	}
}

// clusterWorld mimics the knownIsoforms pattern: transcripts are assigned
// existential cluster ids, and egds merge clusters of transcripts sharing a
// gene.
func clusterWorld() *tw {
	w := newTW()
	tr := w.srcRel("Tr", 1)     // transcript
	gene := w.srcRel("Gene", 2) // transcript -> gene symbol
	iso := w.tgtRel("Iso", 2)   // (cluster, transcript)
	ann := w.tgtRel("Ann", 2)   // (transcript, gene)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, tr, logic.V("t"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, iso, logic.V("c"), logic.V("t"))}, Label: "mkcluster"},
		{Body: []logic.Atom{logic.NewAtom(w.cat, gene, logic.V("t"), logic.V("g"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, ann, logic.V("t"), logic.V("g"))}, Label: "copygene"},
	}
	// Same gene symbol -> same cluster.
	w.m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{
			logic.NewAtom(w.cat, ann, logic.V("t1"), logic.V("g")),
			logic.NewAtom(w.cat, ann, logic.V("t2"), logic.V("g")),
			logic.NewAtom(w.cat, iso, logic.V("c1"), logic.V("t1")),
			logic.NewAtom(w.cat, iso, logic.V("c2"), logic.V("t2")),
		},
		L: logic.V("c1"), R: logic.V("c2"), Label: "cluster",
	}}
	return w
}

func TestReduceClusterQuery(t *testing.T) {
	w := clusterWorld()
	trRel, _ := w.cat.ByName("Tr")
	gRel, _ := w.cat.ByName("Gene")
	w.add(trRel, "t1")
	w.add(trRel, "t2")
	w.add(trRel, "t3")
	w.add(gRel, "t1", "BRCA1")
	w.add(gRel, "t2", "BRCA1")
	w.add(gRel, "t3", "TP53")

	red, err := Reduce(w.m)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := chase.GAV(red.M, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Violations) != 0 {
		t.Fatal("cluster merging should not violate")
	}
	// q(a,b) :- Iso(c,a), Iso(c,b): pairs in the same cluster.
	isoRel, _ := w.cat.ByName("Iso")
	q := &logic.UCQ{Name: "q", Arity: 2, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("a"), logic.V("b")},
		Body: []logic.Atom{
			logic.NewAtom(w.cat, isoRel, logic.V("c"), logic.V("a")),
			logic.NewAtom(w.cat, isoRel, logic.V("c"), logic.V("b")),
		},
	}}}
	rq, err := red.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	ans := cq.EvalUCQ(rq, prov.Instance)
	// Expected pairs: (t1,t1),(t2,t2),(t3,t3),(t1,t2),(t2,t1) = 5.
	if ans.Len() != 5 {
		t.Fatalf("cluster pairs = %d, want 5: %v", ans.Len(), ans.Tuples())
	}
	if !ans.Contains([]symtab.Value{w.u.Const("t1"), w.u.Const("t2")}) {
		t.Fatal("missing merged pair (t1,t2)")
	}
	if ans.Contains([]symtab.Value{w.u.Const("t1"), w.u.Const("t3")}) {
		t.Fatal("spurious pair (t1,t3)")
	}
	// Compare against the native chase.
	native, err := chase.Native(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	nativeAns := cq.EvalUCQ(q, native).WithoutNulls()
	if nativeAns.Len() != ans.Len() {
		t.Fatalf("native %d answers vs reduced %d", nativeAns.Len(), ans.Len())
	}
}

func TestReduceStatsGrowth(t *testing.T) {
	w := clusterWorld()
	red, err := Reduce(w.m)
	if err != nil {
		t.Fatal(err)
	}
	orig := w.m.Stats()
	got := red.M.Stats()
	if got.STTgds < orig.STTgds || got.TargetTgds == 0 {
		t.Fatalf("unexpected reduced sizes: %+v vs %+v", got, orig)
	}
	if len(red.M.TEgds) != 1 {
		t.Fatalf("reduced egds = %d, want 1 master egd", len(red.M.TEgds))
	}
}

// TestReduceAgainstNativeChase cross-validates solution existence and
// query answers between the native GLAV chase and the reduced GAV chase on
// random weakly-acyclic mappings with existentials.
func TestReduceAgainstNativeChase(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	trials, skipped := 0, 0
	for trial := 0; trial < 120; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{Existentials: true, TargetTgds: 1})
		src := testkit.RandomInstance(rng, w, 4+rng.Intn(6), 3)

		red, err := Reduce(w.M)
		if err != nil {
			t.Fatalf("trial %d: reduce: %v", trial, err)
		}
		prov, err := chase.GAV(red.M, src)
		if err != nil {
			t.Fatalf("trial %d: gav chase: %v", trial, err)
		}
		reducedConsistent := len(prov.Violations) == 0

		nativeResult, nativeErr := chase.Native(w.M, src)
		nativeConsistent := nativeErr == nil

		if reducedConsistent != nativeConsistent {
			t.Fatalf("trial %d: consistency disagreement: native=%v reduced=%v\nmapping egds=%d st=%d",
				trial, nativeConsistent, reducedConsistent, len(w.M.TEgds), len(w.M.ST))
		}
		if !nativeConsistent {
			skipped++
			continue
		}
		trials++
		// Compare query answers on the consistent instance.
		for qi := 0; qi < 3; qi++ {
			q := testkit.RandomQuery(rng, w, "q")
			rq, err := red.RewriteQuery(q)
			if err != nil {
				t.Fatalf("trial %d: rewrite: %v", trial, err)
			}
			want := cq.EvalUCQ(q, nativeResult).WithoutNulls()
			var got *cq.AnswerSet
			if len(rq.Clauses) == 0 {
				got = cq.NewAnswerSet()
			} else {
				got = cq.EvalUCQ(rq, prov.Instance)
			}
			if got.Len() != want.Len() {
				t.Fatalf("trial %d query %d: native %d answers, reduced %d\nquery: %s",
					trial, qi, want.Len(), got.Len(), q.String(w.Cat, w.U))
			}
			for _, tup := range want.Tuples() {
				if !got.Contains(tup) {
					t.Fatalf("trial %d query %d: missing answer", trial, qi)
				}
			}
		}
	}
	if trials < 20 {
		t.Fatalf("too few consistent trials: %d (skipped %d)", trials, skipped)
	}
}

func TestReduceIdempotentOnSharedCatalog(t *testing.T) {
	// Reducing the same mapping twice must reuse the shaped/EQ relations
	// already declared in the shared catalog rather than failing.
	w := clusterWorld()
	r1, err := Reduce(w.m)
	if err != nil {
		t.Fatal(err)
	}
	before := w.cat.Len()
	r2, err := Reduce(w.m)
	if err != nil {
		t.Fatalf("second reduction failed: %v", err)
	}
	if w.cat.Len() != before {
		t.Fatalf("second reduction declared %d new relations", w.cat.Len()-before)
	}
	s1, s2 := r1.M.Stats(), r2.M.Stats()
	if s1 != s2 {
		t.Fatalf("reductions differ: %+v vs %+v", s1, s2)
	}
}

func TestRewriteQueryRejectsSourceRelations(t *testing.T) {
	w := clusterWorld()
	red, err := Reduce(w.m)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := w.cat.ByName("Tr")
	q := &logic.UCQ{Name: "bad", Arity: 1, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{logic.NewAtom(w.cat, tr, logic.V("x"))},
	}}}
	if _, err := red.RewriteQuery(q); err == nil {
		t.Fatal("query over source relation accepted")
	}
}
