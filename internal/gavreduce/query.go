package gavreduce

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/logic"
)

// RewriteQuery compiles a UCQ over the original target schema into a UCQ
// over the reduced target schema with
//
//	XR-Certain(q, I, Orig) = XR-Certain(q̂, I, M)
//
// restricted, as usual for certain answers, to tuples of constants.
//
// Each clause body is expanded over every reachable shape assignment, with
// joins rewritten through EQ relations. A head variable whose home shape is
// a skolem shape is extracted through EQ[s|const] — its value is a certain
// constant only when the null it denotes has been equated to a constant.
//
// The returned UCQ may have zero clauses when no expansion can yield
// constant answers; callers must treat that as "no answers".
func (r *Reduction) RewriteQuery(q *logic.UCQ) (*logic.UCQ, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if r.Identity {
		return q, nil
	}
	out := &logic.UCQ{Name: q.Name, Arity: q.Arity}
	for ci := range q.Clauses {
		c := &q.Clauses[ci]
		for _, a := range c.Body {
			if !r.Orig.Target.Contains(a.Rel) {
				return nil, fmt.Errorf("gavreduce: query %s mentions non-target relation %s",
					q.Name, r.Orig.Cat.ByID(a.Rel).Name)
			}
		}
		r.expandBody(c.Body, false, func(e *expansion) {
			head := make([]logic.Term, 0, len(c.Head))
			atoms := e.atoms
			for _, t := range c.Head {
				if !t.IsVar() {
					head = append(head, t)
					continue
				}
				h := e.home[t.Var]
				if h.IsConst() {
					head = append(head, e.homeVars[t.Var][0])
					continue
				}
				// Skolem-shaped answer variable: certain only if equated to
				// a constant; extract through EQ[h|c].
				xc := e.freshVars(1)[0]
				eqArgs := append(append([]logic.Term{}, e.homeVars[t.Var]...), xc)
				atoms = append(atoms, logic.Atom{Rel: r.eqRel(h, r.shapes.konst).ID, Terms: eqArgs})
				head = append(head, xc)
			}
			out.Clauses = append(out.Clauses, logic.CQ{Head: head, Body: atoms})
		})
	}
	if len(out.Clauses) == 0 {
		return out, nil
	}
	// Shape expansion produces redundant clauses (e.g. EQ-indirected
	// variants subsumed by direct ones); minimize each clause to its core
	// and drop subsumed clauses (Chandra–Merlin).
	return cq.MinimizeUCQ(r.Orig.Cat, out), nil
}
