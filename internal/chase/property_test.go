package chase

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/instance"
	"repro/internal/testkit"
)

// TestChaseMonotonicityProperty checks the paper's "monotonicity of the
// chase": for glav+wa-glav mappings without egds, I' ⊆ I implies
// chase(I') ⊆ chase(I).
func TestChaseMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		w := testkit.RandomMapping(rng, testkit.Options{Existentials: trial%2 == 0, TargetTgds: 1, Egds: 1})
		w.M.TEgds = nil // monotonicity is stated for tgd-only mappings
		full := testkit.RandomInstance(rng, w, 6+rng.Intn(4), 3)

		// Random sub-instance.
		sub := instance.New(w.Cat)
		for _, f := range full.Facts() {
			if rng.Intn(2) == 0 {
				sub.AddFact(f)
			}
		}
		// Compare via the reduced GAV chase (deterministic, no nulls), which
		// decides derivability of ground target facts.
		jFull, err := Native(w.M, full)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		jSub, err := Native(w.M, sub)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Null-free facts of chase(sub) must appear in chase(full); facts
		// with nulls must have a homomorphic image (we check the null-free
		// ones, which is the certain-answer-relevant half).
		for _, f := range jSub.Facts() {
			if f.HasNull() {
				continue
			}
			if !jFull.ContainsFact(f) {
				t.Fatalf("trial %d: chase not monotone on %s", trial, f.String(w.Cat, w.U))
			}
		}
	}
}

// TestGAVChaseDeterministic: chasing the same instance twice yields the
// same facts and the same violation count.
func TestGAVChaseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := testkit.RandomMapping(rng, testkit.Options{TargetTgds: 1})
	src := testkit.RandomInstance(rng, w, 8, 3)
	p1, err := GAV(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GAV(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Instance.Equal(p2.Instance) {
		t.Fatal("GAV chase nondeterministic in facts")
	}
	if len(p1.Violations) != len(p2.Violations) {
		t.Fatal("GAV chase nondeterministic in violations")
	}
}

// TestSupportClosureMonotone: the support closure of a superset of seeds
// contains the closure of the seeds (quick-checked over random seed picks).
func TestSupportClosureMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	w := testkit.RandomMapping(rng, testkit.Options{TargetTgds: 1})
	src := testkit.RandomInstance(rng, w, 10, 3)
	prov, err := GAV(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	n := prov.NumFacts()
	if n == 0 {
		t.Skip("empty chase")
	}
	f := func(seedBits, extraBits uint16) bool {
		var small, big []FactID
		for i := 0; i < n && i < 16; i++ {
			if seedBits&(1<<i) != 0 {
				small = append(small, FactID(i))
				big = append(big, FactID(i))
			} else if extraBits&(1<<i) != 0 {
				big = append(big, FactID(i))
			}
		}
		cs := prov.SupportClosure(small)
		cb := prov.SupportClosure(big)
		for g := range cs {
			if !cb[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInfluenceDualToClosure: g ∈ SupportClosure({f}) iff f ∈ Influence({g})
// — influence is the reverse reachability of the closure.
func TestInfluenceDualToClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	w := testkit.RandomMapping(rng, testkit.Options{TargetTgds: 1})
	src := testkit.RandomInstance(rng, w, 10, 3)
	prov, err := GAV(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	n := prov.NumFacts()
	for i := 0; i < n; i++ {
		closure := prov.SupportClosure([]FactID{FactID(i)})
		for g := range closure {
			infl := prov.Influence(map[FactID]bool{g: true})
			if !infl[FactID(i)] {
				t.Fatalf("duality violated: %d in closure of %d but %d not influenced by %d", g, i, i, g)
			}
		}
	}
}

// TestSafeDerivableSubsetOfAll: excluding facts can only shrink the
// derivable set, and excluding nothing derives everything.
func TestSafeDerivableSubsetOfAll(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	w := testkit.RandomMapping(rng, testkit.Options{TargetTgds: 1})
	src := testkit.RandomInstance(rng, w, 10, 3)
	prov, err := GAV(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	all := prov.SafeDerivable(nil)
	if len(all) != prov.NumFacts() {
		t.Fatalf("derivable-with-nothing-excluded = %d, want all %d", len(all), prov.NumFacts())
	}
	n := prov.NumFacts()
	f := func(bits uint16) bool {
		excl := make(map[FactID]bool)
		for i := 0; i < n && i < 16; i++ {
			if bits&(1<<i) != 0 {
				excl[FactID(i)] = true
			}
		}
		d := prov.SafeDerivable(excl)
		for g := range d {
			if excl[g] || !all[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
