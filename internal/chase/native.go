// Package chase implements the chase procedure in two flavours:
//
//   - Native: the standard (restricted) chase for glav+(wa-glav, egd)
//     mappings, introducing labeled nulls for existential variables and
//     unifying values when egds fire. Used for ground truth, solution
//     existence, and universal-solution construction (Fagin et al. 2005).
//
//   - GAV provenance chase: a datalog fixpoint for gav+(gav, egd) mappings
//     that records every ground derivation (the paper's support sets,
//     Definition 4) and every egd violation; this powers repair envelopes
//     and the segmentary pipeline.
package chase

import (
	"errors"
	"fmt"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/symtab"
)

// ErrNoSolution is returned when an egd attempts to equate two distinct
// constants, i.e. the chase fails and the source instance has no solution.
var ErrNoSolution = errors.New("chase: egd failure, no solution exists")

// maxRounds bounds the number of chase rounds as a safety net against
// non-terminating inputs. Weakly acyclic chases converge in rounds bounded
// by the derivation depth, which is far below this for any realistic
// mapping; inputs that legitimately need deeper iteration (e.g. transitive
// closure over a path of thousands of edges expressed without doubling)
// would need the constant raised.
const maxRounds = 2_000

// Native runs the standard chase of src with m and returns the combined
// instance I ∪ J where J is the canonical universal solution. It returns
// ErrNoSolution if an egd fails. The mapping's target tgds should be weakly
// acyclic for guaranteed termination.
//
// The result contains the (possibly value-rewritten) source facts alongside
// target facts; restrict to m.Target for J alone.
func Native(m *mapping.Mapping, src *instance.Instance) (*instance.Instance, error) {
	work := src.Clone()
	tgds := m.AllTgds()

	for round := 0; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("chase: did not terminate after %d rounds (mapping not weakly acyclic?)", maxRounds)
		}
		changed := false
		// Tgd phase: fire every unsatisfied trigger.
		for _, d := range tgds {
			if applyTGD(d, work, m.U) {
				changed = true
			}
		}
		// Egd phase: collect all equalities demanded by egds, merge.
		merged, err := applyEGDs(m.TEgds, work)
		if err != nil {
			return nil, err
		}
		if merged {
			changed = true
		}
		if !changed {
			return work, nil
		}
	}
}

// HasSolution reports whether src has a solution w.r.t. m (for weakly
// acyclic mappings, iff the chase succeeds).
func HasSolution(m *mapping.Mapping, src *instance.Instance) bool {
	_, err := Native(m, src)
	return err == nil
}

// applyTGD fires every trigger of d whose head is not already satisfied,
// adding fresh nulls for existential variables. Reports whether any fact
// was added.
func applyTGD(d *logic.TGD, work *instance.Instance, u *symtab.Universe) bool {
	plan := cq.Compile(d.Body, work)
	type trigger struct{ env []symtab.Value }
	var triggers []trigger
	plan.ForEach(work, func(env []symtab.Value) bool {
		triggers = append(triggers, trigger{env: append([]symtab.Value(nil), env...)})
		return true
	})
	added := false
	for _, tr := range triggers {
		sub := make(map[string]symtab.Value, len(plan.VarSlot))
		for v, slot := range plan.VarSlot {
			sub[v] = tr.env[slot]
		}
		if headSatisfied(d.Head, sub, work) {
			continue
		}
		// Fire: fresh nulls for existential variables.
		for _, y := range d.ExistentialVars() {
			sub[y] = u.FreshNull()
		}
		for _, a := range d.Head {
			args := make([]symtab.Value, len(a.Terms))
			for i, t := range a.Terms {
				if t.IsVar() {
					args[i] = sub[t.Var]
				} else {
					args[i] = t.Val
				}
			}
			if work.Add(a.Rel, args) {
				added = true
			}
		}
	}
	return added
}

// headSatisfied reports whether sub extends to a substitution of the head's
// existential variables making every head atom a fact of work (the
// restricted-chase applicability test).
func headSatisfied(head []logic.Atom, sub map[string]symtab.Value, work *instance.Instance) bool {
	ext := make(map[string]symtab.Value)
	return matchHead(head, 0, sub, ext, work)
}

func matchHead(head []logic.Atom, i int, sub, ext map[string]symtab.Value, work *instance.Instance) bool {
	if i == len(head) {
		return true
	}
	a := head[i]
	pattern := make([]symtab.Value, len(a.Terms))
	var free []int
	for j, t := range a.Terms {
		switch {
		case !t.IsVar():
			pattern[j] = t.Val
		default:
			if v, ok := sub[t.Var]; ok {
				pattern[j] = v
			} else if v, ok := ext[t.Var]; ok {
				pattern[j] = v
			} else {
				pattern[j] = symtab.None
				free = append(free, j)
			}
		}
	}
	if len(free) == 0 {
		return work.Contains(a.Rel, pattern) && matchHead(head, i+1, sub, ext, work)
	}
	for _, tup := range work.Match(a.Rel, pattern) {
		var bound []string
		ok := true
		for _, j := range free {
			v := a.Terms[j].Var
			if prev, exists := ext[v]; exists {
				if prev != tup[j] {
					ok = false
					break
				}
				continue
			}
			ext[v] = tup[j]
			bound = append(bound, v)
		}
		if ok && matchHead(head, i+1, sub, ext, work) {
			return true
		}
		for _, v := range bound {
			delete(ext, v)
		}
	}
	return false
}

// applyEGDs finds every violated ground egd, merges the demanded values via
// union-find, and rewrites the instance. It returns whether anything merged,
// or ErrNoSolution on a constant/constant conflict.
func applyEGDs(egds []*logic.EGD, work *instance.Instance) (bool, error) {
	uf := newUnionFind()
	demand := false
	for _, d := range egds {
		plan := cq.Compile(d.Body, work)
		var fail error
		plan.ForEach(work, func(env []symtab.Value) bool {
			l := egdSide(d.L, plan, env)
			r := egdSide(d.R, plan, env)
			if l == r {
				return true
			}
			demand = true
			if err := uf.union(l, r); err != nil {
				fail = err
				return false
			}
			return true
		})
		if fail != nil {
			return false, fail
		}
	}
	if !demand {
		return false, nil
	}
	// Rewrite the instance through the union-find representatives.
	rewrite := uf.mapping()
	if len(rewrite) == 0 {
		return false, nil
	}
	merged := instance.ApplyValueMap(work, rewrite)
	// Replace work's contents in place.
	for _, f := range work.Facts() {
		work.RemoveFact(f)
	}
	work.AddAll(merged)
	return true, nil
}

func egdSide(t logic.Term, plan *cq.Plan, env []symtab.Value) symtab.Value {
	if t.IsVar() {
		return env[plan.VarSlot[t.Var]]
	}
	return t.Val
}

// unionFind merges values with the invariant that a class containing a
// constant is represented by that constant; merging two distinct constants
// is an error (egd failure).
type unionFind struct {
	parent map[symtab.Value]symtab.Value
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[symtab.Value]symtab.Value)}
}

func (uf *unionFind) find(v symtab.Value) symtab.Value {
	p, ok := uf.parent[v]
	if !ok || p == v {
		return v
	}
	root := uf.find(p)
	uf.parent[v] = root
	return root
}

func (uf *unionFind) union(a, b symtab.Value) error {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return nil
	}
	if ra.IsConst() && rb.IsConst() {
		return ErrNoSolution
	}
	// Keep a constant as representative; otherwise keep the smaller null id.
	switch {
	case ra.IsConst():
		uf.parent[rb] = ra
	case rb.IsConst():
		uf.parent[ra] = rb
	case ra > rb: // both nulls; prefer the earlier null (greater Value is earlier... nulls are negative; -1 > -2, null 1 earlier)
		uf.parent[rb] = ra
	default:
		uf.parent[ra] = rb
	}
	return nil
}

// mapping returns the non-identity value rewrites.
func (uf *unionFind) mapping() map[symtab.Value]symtab.Value {
	out := make(map[symtab.Value]symtab.Value)
	for v := range uf.parent {
		if r := uf.find(v); r != v {
			out[v] = r
		}
	}
	return out
}
