// Package chase implements the chase procedure in two flavours:
//
//   - Native: the standard (restricted) chase for glav+(wa-glav, egd)
//     mappings, introducing labeled nulls for existential variables and
//     unifying values when egds fire. Used for ground truth, solution
//     existence, and universal-solution construction (Fagin et al. 2005).
//
//   - GAV provenance chase: a datalog fixpoint for gav+(gav, egd) mappings
//     that records every ground derivation (the paper's support sets,
//     Definition 4) and every egd violation; this powers repair envelopes
//     and the segmentary pipeline.
//
// Both flavours are driven semi-naively (Abiteboul/Hull/Vianu): rules
// compile once per chase, a rule is re-evaluated only when a relation in
// its body gained tuples since the rule's generation watermark, and each
// evaluation enumerates only the matches that use at least one such delta
// tuple. Collected matches are applied in ascending generation-rank order,
// which reproduces the enumeration order of the naive fixpoint exactly, so
// the semi-naive chase is byte-identical to the naive one (same null
// naming, same fact interning order, same support sets and violations).
// The naive strategy is retained behind Options.Strategy as the reference
// for equivalence tests.
package chase

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// ErrNoSolution is returned when an egd attempts to equate two distinct
// constants, i.e. the chase fails and the source instance has no solution.
var ErrNoSolution = errors.New("chase: egd failure, no solution exists")

// maxRounds bounds the number of chase rounds as a safety net against
// non-terminating inputs. Weakly acyclic chases converge in rounds bounded
// by the derivation depth, which is far below this for any realistic
// mapping; inputs that legitimately need deeper iteration (e.g. transitive
// closure over a path of thousands of edges expressed without doubling)
// would need the constant raised.
const maxRounds = 2_000

// Strategy selects the fixpoint evaluation scheme.
type Strategy int

const (
	// StrategySemiNaive (the default) re-evaluates a rule only when a body
	// relation changed, restricted to delta-touching bindings.
	StrategySemiNaive Strategy = iota
	// StrategyNaive re-enumerates every rule against the full instance each
	// round. Retained as the reference implementation for equivalence tests;
	// both strategies produce byte-identical output.
	StrategyNaive
)

// Stats reports what one chase run did. All counters are deterministic for
// a given (mapping, source, strategy).
type Stats struct {
	Rounds     int // fixpoint rounds executed
	RuleEvals  int // rule evaluations actually performed
	RuleSkips  int // evaluations skipped by the rule→relation dependency index
	Triggers   int // tgd matches applied (fired or support-recorded)
	DeltaFacts int // facts added by the chase (beyond the source)

	TgdDuration       time.Duration // time enumerating and applying tgds
	EgdDuration       time.Duration // Native: time evaluating egds and rewriting
	ViolationDuration time.Duration // GAV: time in the final violation scan
}

// Options configures a chase run.
type Options struct {
	Strategy Strategy
	// Stats, when non-nil, is filled in with run counters and timings.
	Stats *Stats
}

// Native runs the standard chase of src with m and returns the combined
// instance I ∪ J where J is the canonical universal solution. It returns
// ErrNoSolution if an egd fails. The mapping's target tgds should be weakly
// acyclic for guaranteed termination.
//
// The result contains the (possibly value-rewritten) source facts alongside
// target facts; restrict to m.Target for J alone.
func Native(m *mapping.Mapping, src *instance.Instance) (*instance.Instance, error) {
	return NativeWithOptions(m, src, Options{})
}

// NativeWithOptions is Native with an explicit strategy and stats sink.
func NativeWithOptions(m *mapping.Mapping, src *instance.Instance, opt Options) (*instance.Instance, error) {
	st := opt.Stats
	if st == nil {
		st = &Stats{}
	}
	naive := opt.Strategy == StrategyNaive
	work := src.Clone()

	tgds := m.AllTgds()
	tgdExecs := make([]*tgdExec, len(tgds))
	for i, d := range tgds {
		tgdExecs[i] = compileTGD(d)
	}
	egdExecs := make([]*egdExec, len(m.TEgds))
	for i, d := range m.TEgds {
		egdExecs[i] = compileEGD(d)
	}

	for round := 0; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("chase: did not terminate after %d rounds (mapping not weakly acyclic?)", maxRounds)
		}
		st.Rounds++
		changed := false
		evaluated := false
		// Tgd phase: fire every unsatisfied trigger.
		t0 := time.Now()
		for _, te := range tgdExecs {
			ev, added := te.apply(work, m.U, naive, st)
			evaluated = evaluated || ev
			changed = changed || added
		}
		st.TgdDuration += time.Since(t0)
		// Egd phase: collect all equalities demanded by egds, merge.
		t0 = time.Now()
		evEgd, merged, err := applyEGDs(egdExecs, work, naive, st)
		st.EgdDuration += time.Since(t0)
		if err != nil {
			return nil, err
		}
		evaluated = evaluated || evEgd
		changed = changed || merged
		if naive {
			if !changed {
				return work, nil
			}
		} else if !evaluated {
			// Every rule was up to date with the instance generation:
			// fixpoint (changed rules re-check one cheap round later).
			return work, nil
		}
	}
}

// HasSolution reports whether src has a solution w.r.t. m (for weakly
// acyclic mappings, iff the chase succeeds).
func HasSolution(m *mapping.Mapping, src *instance.Instance) bool {
	_, err := Native(m, src)
	return err == nil
}

// headExec is one precompiled head atom: a constant template plus, per
// position, the body-variable environment slot or the existential index.
type headExec struct {
	rel    schema.RelID
	consts []symtab.Value // constant per position, None where a variable
	slot   []int          // body env slot per position, -1 otherwise
	extIdx []int          // existential index per position, -1 otherwise
}

// tgdExec is one compiled tgd: a reusable body plan, the head templates,
// the body relation set for the dependency index, the semi-naive watermark,
// and per-instance scratch buffers (an exec is used by one chase at a time).
type tgdExec struct {
	d         *logic.TGD
	plan      *cq.Plan
	bodyRels  []schema.RelID
	watermark uint64
	started   bool // evaluated at least once (watermark is meaningful)

	heads    []headExec
	numExt   int
	ext      []symtab.Value   // existential bindings, None = unbound
	patterns [][]symtab.Value // per head atom, for headSatisfied
	free     [][]int          // per head atom, unbound existential positions
	boundExt [][]int          // per head atom, ext indices bound at this depth
}

func compileTGD(d *logic.TGD) *tgdExec {
	te := &tgdExec{d: d, plan: cq.Compile(d.Body)}
	te.bodyRels = te.plan.Relations()
	exts := d.ExistentialVars() // sorted: fresh-null assignment order
	te.numExt = len(exts)
	te.ext = make([]symtab.Value, len(exts))
	extIdx := make(map[string]int, len(exts))
	for i, v := range exts {
		extIdx[v] = i
	}
	for _, a := range d.Head {
		h := headExec{
			rel:    a.Rel,
			consts: make([]symtab.Value, len(a.Terms)),
			slot:   make([]int, len(a.Terms)),
			extIdx: make([]int, len(a.Terms)),
		}
		for j, t := range a.Terms {
			h.slot[j], h.extIdx[j] = -1, -1
			switch {
			case !t.IsVar():
				h.consts[j] = t.Val
			default:
				if s, ok := te.plan.VarSlot[t.Var]; ok {
					h.slot[j] = s
				} else {
					h.extIdx[j] = extIdx[t.Var]
				}
				h.consts[j] = symtab.None
			}
		}
		te.heads = append(te.heads, h)
		te.patterns = append(te.patterns, make([]symtab.Value, len(a.Terms)))
		te.free = append(te.free, nil)
		te.boundExt = append(te.boundExt, nil)
	}
	return te
}

// hasDelta reports whether any body relation gained tuples since the
// watermark (always true for a never-evaluated rule).
func (te *tgdExec) hasDelta(work *instance.Instance) bool {
	if !te.started {
		return true
	}
	for _, r := range te.bodyRels {
		if work.RelGen(r) > te.watermark {
			return true
		}
	}
	return false
}

// trigger is one collected body match: the environment and its generation
// rank (gens of the matched body tuples, indexed by body atom). Applying
// triggers in ascending join-order rank reproduces naive enumeration order.
type trigger struct {
	env  []symtab.Value
	rank []uint64
}

func sortTriggers(trig []trigger, order []int) {
	sort.Slice(trig, func(i, j int) bool {
		return rankLess(trig[i].rank, trig[j].rank, order)
	})
}

// rankLess compares generation ranks lexicographically along the join
// order. Ranks are unique per match (tuple generations are globally
// unique), so the order is total and the sort deterministic.
func rankLess(a, b []uint64, order []int) bool {
	for _, pos := range order {
		if a[pos] != b[pos] {
			return a[pos] < b[pos]
		}
	}
	return false
}

// apply evaluates the tgd (semi-naively unless naive) and fires every
// collected trigger whose head is not already satisfied, adding fresh nulls
// for existential variables. It reports whether the rule was evaluated at
// all and whether any fact was added.
func (te *tgdExec) apply(work *instance.Instance, u *symtab.Universe, naive bool, st *Stats) (evaluated, added bool) {
	old := te.watermark
	if naive {
		old = 0
	} else if !te.hasDelta(work) {
		st.RuleSkips++
		return false, false
	}
	cur := work.Gen()
	st.RuleEvals++
	te.started = true
	var trig []trigger
	var evalOrder []int
	te.plan.ForEachDelta(work, old, func(env []symtab.Value, rank []uint64, order []int) bool {
		evalOrder = order
		trig = append(trig, trigger{
			env:  append([]symtab.Value(nil), env...),
			rank: append([]uint64(nil), rank...),
		})
		return true
	})
	te.watermark = cur
	sortTriggers(trig, evalOrder)
	for _, tr := range trig {
		if te.headSatisfied(work, tr.env) {
			continue
		}
		st.Triggers++
		// Fire: fresh nulls for existential variables, in sorted
		// existential-variable order (te.ext is indexed in that order).
		for i := range te.ext {
			te.ext[i] = u.FreshNull()
		}
		for hi := range te.heads {
			h := &te.heads[hi]
			args := make([]symtab.Value, len(h.consts))
			for j := range args {
				switch {
				case h.slot[j] >= 0:
					args[j] = tr.env[h.slot[j]]
				case h.extIdx[j] >= 0:
					args[j] = te.ext[h.extIdx[j]]
				default:
					args[j] = h.consts[j]
				}
			}
			if work.Add(h.rel, args) {
				added = true
				st.DeltaFacts++
			}
		}
	}
	return true, added
}

// headSatisfied reports whether env extends to a substitution of the head's
// existential variables making every head atom a fact of work (the
// restricted-chase applicability test).
func (te *tgdExec) headSatisfied(work *instance.Instance, env []symtab.Value) bool {
	for i := range te.ext {
		te.ext[i] = symtab.None
	}
	return te.matchHead(work, 0, env)
}

func (te *tgdExec) matchHead(work *instance.Instance, i int, env []symtab.Value) bool {
	if i == len(te.heads) {
		return true
	}
	h := &te.heads[i]
	pattern := te.patterns[i]
	free := te.free[i][:0]
	for j := range pattern {
		switch {
		case h.slot[j] >= 0:
			pattern[j] = env[h.slot[j]]
		case h.extIdx[j] >= 0:
			if v := te.ext[h.extIdx[j]]; v != symtab.None {
				pattern[j] = v
			} else {
				pattern[j] = symtab.None
				free = append(free, j)
			}
		default:
			pattern[j] = h.consts[j]
		}
	}
	te.free[i] = free
	if len(free) == 0 {
		return work.Contains(h.rel, pattern) && te.matchHead(work, i+1, env)
	}
	found := false
	work.ForEachMatch(h.rel, pattern, 0, ^uint64(0), func(tup []symtab.Value, _ uint64) bool {
		bound := te.boundExt[i][:0]
		ok := true
		for _, j := range free {
			e := h.extIdx[j]
			if v := te.ext[e]; v != symtab.None {
				if v != tup[j] {
					ok = false
					break
				}
				continue
			}
			te.ext[e] = tup[j]
			bound = append(bound, e)
		}
		te.boundExt[i] = bound
		if ok && te.matchHead(work, i+1, env) {
			found = true
			return false
		}
		for _, e := range bound {
			te.ext[e] = symtab.None
		}
		return true
	})
	return found
}

// egdExec is one compiled egd: a reusable body plan plus the semi-naive
// watermark.
type egdExec struct {
	d         *logic.EGD
	plan      *cq.Plan
	bodyRels  []schema.RelID
	watermark uint64
	started   bool // evaluated at least once (watermark is meaningful)
}

func compileEGD(d *logic.EGD) *egdExec {
	ee := &egdExec{d: d, plan: cq.Compile(d.Body)}
	ee.bodyRels = ee.plan.Relations()
	return ee
}

func (ee *egdExec) hasDelta(work *instance.Instance) bool {
	if !ee.started {
		return true
	}
	for _, r := range ee.bodyRels {
		if work.RelGen(r) > ee.watermark {
			return true
		}
	}
	return false
}

// applyEGDs finds every newly violated ground egd, merges the demanded
// values via union-find, and rewrites the instance in place (touching only
// tuples containing a remapped value). It reports whether any egd was
// evaluated, whether anything merged, or ErrNoSolution on a
// constant/constant conflict.
//
// Restricting to delta bindings is sound: a violating pair among pre-
// watermark tuples was enumerated when those tuples were last new, merged,
// and rewritten — after which its two sides are equal, and value rewriting
// can never make equal sides unequal again.
func applyEGDs(egds []*egdExec, work *instance.Instance, naive bool, st *Stats) (evaluated, merged bool, err error) {
	uf := newUnionFind()
	demand := false
	// All egds are evaluated against the same frozen instance; the rewrite
	// happens once at the end, so every watermark advances to the same
	// generation.
	cur := work.Gen()
	for _, ee := range egds {
		old := ee.watermark
		if naive {
			old = 0
		} else if !ee.hasDelta(work) {
			st.RuleSkips++
			continue
		}
		st.RuleEvals++
		ee.started = true
		evaluated = true
		var fail error
		lTerm, rTerm := ee.d.L, ee.d.R
		ee.plan.ForEachDelta(work, old, func(env []symtab.Value, _ []uint64, _ []int) bool {
			l := egdSide(lTerm, ee.plan, env)
			r := egdSide(rTerm, ee.plan, env)
			if l == r {
				return true
			}
			demand = true
			if err := uf.union(l, r); err != nil {
				fail = err
				return false
			}
			return true
		})
		ee.watermark = cur
		if fail != nil {
			return evaluated, false, fail
		}
	}
	if !demand {
		return evaluated, false, nil
	}
	// Rewrite the instance through the union-find representatives, in
	// place: only tuples containing a remapped value are removed and
	// re-inserted (with fresh generations, making them the next round's
	// delta).
	rewrite := uf.mapping()
	if len(rewrite) == 0 {
		return evaluated, false, nil
	}
	work.RewriteValues(rewrite)
	return evaluated, true, nil
}

func egdSide(t logic.Term, plan *cq.Plan, env []symtab.Value) symtab.Value {
	if t.IsVar() {
		return env[plan.VarSlot[t.Var]]
	}
	return t.Val
}

// unionFind merges values with the invariant that a class containing a
// constant is represented by that constant; merging two distinct constants
// is an error (egd failure). Representatives are order-independent: the
// final representative of a class is its constant, or among nulls the
// largest Value (= earliest-created null).
type unionFind struct {
	parent map[symtab.Value]symtab.Value
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[symtab.Value]symtab.Value)}
}

// find returns the representative of v, compressing the path iteratively
// (merge chains can be long enough to make recursion a stack hazard).
func (uf *unionFind) find(v symtab.Value) symtab.Value {
	root := v
	for {
		p, ok := uf.parent[root]
		if !ok || p == root {
			break
		}
		root = p
	}
	for v != root {
		next := uf.parent[v]
		uf.parent[v] = root
		v = next
	}
	return root
}

func (uf *unionFind) union(a, b symtab.Value) error {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return nil
	}
	if ra.IsConst() && rb.IsConst() {
		return ErrNoSolution
	}
	// Keep a constant as representative; otherwise keep the smaller null id.
	switch {
	case ra.IsConst():
		uf.parent[rb] = ra
	case rb.IsConst():
		uf.parent[ra] = rb
	case ra > rb: // both nulls; prefer the earlier null (greater Value is earlier... nulls are negative; -1 > -2, null 1 earlier)
		uf.parent[rb] = ra
	default:
		uf.parent[ra] = rb
	}
	return nil
}

// mapping returns the non-identity value rewrites. Idempotent by
// construction (images are representatives, which map to themselves), as
// instance.RewriteValues requires.
func (uf *unionFind) mapping() map[symtab.Value]symtab.Value {
	out := make(map[symtab.Value]symtab.Value)
	for v := range uf.parent {
		if r := uf.find(v); r != v {
			out[v] = r
		}
	}
	return out
}
