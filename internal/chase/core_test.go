package chase

import (
	"testing"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/symtab"
)

func TestCoreFoldsRedundantNull(t *testing.T) {
	// {S(a, n), S(a, b)}: n folds onto b — core is {S(a, b)}.
	w := newTW()
	s := w.tgtRel("S", 2)
	in := instance.New(w.cat)
	a, b := w.u.Const("a"), w.u.Const("b")
	n := w.u.FreshNull()
	in.Add(s.ID, []symtab.Value{a, n})
	in.Add(s.ID, []symtab.Value{a, b})
	core := Core(in)
	if core.Len() != 1 || !core.Contains(s.ID, []symtab.Value{a, b}) {
		t.Fatalf("core = %s", core.String(w.u))
	}
}

func TestCoreKeepsNecessaryNulls(t *testing.T) {
	// {S(a, n)} alone: n is not foldable (no other tuple) — core unchanged.
	w := newTW()
	s := w.tgtRel("S", 2)
	in := instance.New(w.cat)
	a := w.u.Const("a")
	n := w.u.FreshNull()
	in.Add(s.ID, []symtab.Value{a, n})
	core := Core(in)
	if core.Len() != 1 || len(core.Nulls()) != 1 {
		t.Fatalf("core = %s", core.String(w.u))
	}
}

func TestCoreChainFolds(t *testing.T) {
	// E(a,n1), E(n1,n2) with E(a,b), E(b,c) present: both nulls fold.
	w := newTW()
	e := w.tgtRel("E", 2)
	in := instance.New(w.cat)
	a, b, c := w.u.Const("a"), w.u.Const("b"), w.u.Const("c")
	n1, n2 := w.u.FreshNull(), w.u.FreshNull()
	in.Add(e.ID, []symtab.Value{a, n1})
	in.Add(e.ID, []symtab.Value{n1, n2})
	in.Add(e.ID, []symtab.Value{a, b})
	in.Add(e.ID, []symtab.Value{b, c})
	core := Core(in)
	if len(core.Nulls()) != 0 {
		t.Fatalf("nulls remain in core: %s", core.String(w.u))
	}
	if core.Len() != 2 {
		t.Fatalf("core size = %d, want 2", core.Len())
	}
}

func TestCoreOfCanonicalSolution(t *testing.T) {
	// Two tgds generating overlapping patterns: R(x) -> ∃z S(x,z) and
	// P(x,y) -> S(x,y). With both R(a) and P(a,b), the canonical solution
	// has S(a,n) and S(a,b); its core is just S(a,b).
	w := newTW()
	r := w.srcRel("R", 1)
	p := w.srcRel("P", 2)
	s := w.tgtRel("S", 2)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("z"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, p, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y"))}},
	}
	w.add(r, "a")
	w.add(p, "a", "b")
	j, err := Native(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	target := j.Restrict(w.m.Target)
	core := Core(target)
	if core.Len() != 1 || len(core.Nulls()) != 0 {
		t.Fatalf("core of canonical solution = %s", core.String(w.u))
	}
	// The core is homomorphically equivalent to the original.
	if _, ok := instance.Homomorphism(target, core); !ok {
		t.Fatal("no homomorphism original -> core")
	}
	if _, ok := instance.Homomorphism(core, target); !ok {
		t.Fatal("no homomorphism core -> original")
	}
}

func TestCoreIdempotent(t *testing.T) {
	w := newTW()
	e := w.tgtRel("E", 2)
	in := instance.New(w.cat)
	a := w.u.Const("a")
	n1, n2 := w.u.FreshNull(), w.u.FreshNull()
	in.Add(e.ID, []symtab.Value{a, n1})
	in.Add(e.ID, []symtab.Value{n1, n2})
	in.Add(e.ID, []symtab.Value{n2, a})
	core := Core(in)
	again := Core(core)
	if !core.Equal(again) {
		t.Fatal("Core not idempotent")
	}
}
